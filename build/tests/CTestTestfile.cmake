# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/ra_test[1]_include.cmake")
include("/root/repo/build/tests/tl_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/fo_eval_test[1]_include.cmake")
include("/root/repo/build/tests/pruning_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/cross_engine_test[1]_include.cmake")
include("/root/repo/build/tests/active_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/builder_test[1]_include.cmake")
include("/root/repo/build/tests/response_test[1]_include.cmake")
include("/root/repo/build/tests/audit_test[1]_include.cmake")
include("/root/repo/build/tests/ra_property_test[1]_include.cmake")
include("/root/repo/build/tests/falsification_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/formula_property_test[1]_include.cmake")
include("/root/repo/build/tests/mixed_types_test[1]_include.cmake")
