# Empty dependencies file for fo_eval_test.
# This may be replaced when dependencies are built.
