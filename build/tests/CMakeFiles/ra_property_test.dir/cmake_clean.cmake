file(REMOVE_RECURSE
  "CMakeFiles/ra_property_test.dir/ra_property_test.cc.o"
  "CMakeFiles/ra_property_test.dir/ra_property_test.cc.o.d"
  "ra_property_test"
  "ra_property_test.pdb"
  "ra_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
