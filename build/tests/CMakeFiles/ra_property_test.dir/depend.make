# Empty dependencies file for ra_property_test.
# This may be replaced when dependencies are built.
