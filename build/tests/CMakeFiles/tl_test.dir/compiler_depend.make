# Empty compiler generated dependencies file for tl_test.
# This may be replaced when dependencies are built.
