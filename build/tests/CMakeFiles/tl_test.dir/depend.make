# Empty dependencies file for tl_test.
# This may be replaced when dependencies are built.
