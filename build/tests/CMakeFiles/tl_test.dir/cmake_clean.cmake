file(REMOVE_RECURSE
  "CMakeFiles/tl_test.dir/tl_test.cc.o"
  "CMakeFiles/tl_test.dir/tl_test.cc.o.d"
  "tl_test"
  "tl_test.pdb"
  "tl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
