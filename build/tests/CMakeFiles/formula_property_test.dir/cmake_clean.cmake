file(REMOVE_RECURSE
  "CMakeFiles/formula_property_test.dir/formula_property_test.cc.o"
  "CMakeFiles/formula_property_test.dir/formula_property_test.cc.o.d"
  "formula_property_test"
  "formula_property_test.pdb"
  "formula_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
