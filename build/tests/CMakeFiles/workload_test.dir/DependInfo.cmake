
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtic_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_naive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_active.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_inc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_response.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_fo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_tl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_history.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
