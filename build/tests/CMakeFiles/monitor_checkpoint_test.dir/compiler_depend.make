# Empty compiler generated dependencies file for monitor_checkpoint_test.
# This may be replaced when dependencies are built.
