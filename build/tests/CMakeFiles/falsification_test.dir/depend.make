# Empty dependencies file for falsification_test.
# This may be replaced when dependencies are built.
