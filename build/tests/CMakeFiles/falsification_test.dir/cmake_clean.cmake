file(REMOVE_RECURSE
  "CMakeFiles/falsification_test.dir/falsification_test.cc.o"
  "CMakeFiles/falsification_test.dir/falsification_test.cc.o.d"
  "falsification_test"
  "falsification_test.pdb"
  "falsification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falsification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
