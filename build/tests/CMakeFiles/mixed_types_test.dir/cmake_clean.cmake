file(REMOVE_RECURSE
  "CMakeFiles/mixed_types_test.dir/mixed_types_test.cc.o"
  "CMakeFiles/mixed_types_test.dir/mixed_types_test.cc.o.d"
  "mixed_types_test"
  "mixed_types_test.pdb"
  "mixed_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
