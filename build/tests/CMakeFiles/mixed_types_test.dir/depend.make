# Empty dependencies file for mixed_types_test.
# This may be replaced when dependencies are built.
