# Empty dependencies file for monitor_shell.
# This may be replaced when dependencies are built.
