file(REMOVE_RECURSE
  "CMakeFiles/monitor_shell.dir/monitor_shell.cpp.o"
  "CMakeFiles/monitor_shell.dir/monitor_shell.cpp.o.d"
  "monitor_shell"
  "monitor_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
