file(REMOVE_RECURSE
  "CMakeFiles/library_loans.dir/library_loans.cpp.o"
  "CMakeFiles/library_loans.dir/library_loans.cpp.o.d"
  "library_loans"
  "library_loans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_loans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
