# Empty compiler generated dependencies file for library_loans.
# This may be replaced when dependencies are built.
