# Empty compiler generated dependencies file for alarm_system.
# This may be replaced when dependencies are built.
