file(REMOVE_RECURSE
  "CMakeFiles/alarm_system.dir/alarm_system.cpp.o"
  "CMakeFiles/alarm_system.dir/alarm_system.cpp.o.d"
  "alarm_system"
  "alarm_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alarm_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
