file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_window.dir/bench_e3_window.cc.o"
  "CMakeFiles/bench_e3_window.dir/bench_e3_window.cc.o.d"
  "bench_e3_window"
  "bench_e3_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
