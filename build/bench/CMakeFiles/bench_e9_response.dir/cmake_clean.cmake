file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_response.dir/bench_e9_response.cc.o"
  "CMakeFiles/bench_e9_response.dir/bench_e9_response.cc.o.d"
  "bench_e9_response"
  "bench_e9_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
