# Empty compiler generated dependencies file for bench_e2_space.
# This may be replaced when dependencies are built.
