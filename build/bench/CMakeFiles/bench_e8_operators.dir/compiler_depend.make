# Empty compiler generated dependencies file for bench_e8_operators.
# This may be replaced when dependencies are built.
