file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_operators.dir/bench_e8_operators.cc.o"
  "CMakeFiles/bench_e8_operators.dir/bench_e8_operators.cc.o.d"
  "bench_e8_operators"
  "bench_e8_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
