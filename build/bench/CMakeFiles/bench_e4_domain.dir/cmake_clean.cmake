file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_domain.dir/bench_e4_domain.cc.o"
  "CMakeFiles/bench_e4_domain.dir/bench_e4_domain.cc.o.d"
  "bench_e4_domain"
  "bench_e4_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
