# Empty compiler generated dependencies file for bench_e1_history_length.
# This may be replaced when dependencies are built.
