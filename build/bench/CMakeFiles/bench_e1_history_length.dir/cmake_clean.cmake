file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_history_length.dir/bench_e1_history_length.cc.o"
  "CMakeFiles/bench_e1_history_length.dir/bench_e1_history_length.cc.o.d"
  "bench_e1_history_length"
  "bench_e1_history_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_history_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
