file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_active.dir/bench_e5_active.cc.o"
  "CMakeFiles/bench_e5_active.dir/bench_e5_active.cc.o.d"
  "bench_e5_active"
  "bench_e5_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
