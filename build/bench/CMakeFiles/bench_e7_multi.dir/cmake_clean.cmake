file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_multi.dir/bench_e7_multi.cc.o"
  "CMakeFiles/bench_e7_multi.dir/bench_e7_multi.cc.o.d"
  "bench_e7_multi"
  "bench_e7_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
