# Empty dependencies file for bench_e7_multi.
# This may be replaced when dependencies are built.
