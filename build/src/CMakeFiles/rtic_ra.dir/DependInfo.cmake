
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ra/ops.cc" "src/CMakeFiles/rtic_ra.dir/ra/ops.cc.o" "gcc" "src/CMakeFiles/rtic_ra.dir/ra/ops.cc.o.d"
  "/root/repo/src/ra/relation.cc" "src/CMakeFiles/rtic_ra.dir/ra/relation.cc.o" "gcc" "src/CMakeFiles/rtic_ra.dir/ra/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtic_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
