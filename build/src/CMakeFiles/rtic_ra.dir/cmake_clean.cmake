file(REMOVE_RECURSE
  "CMakeFiles/rtic_ra.dir/ra/ops.cc.o"
  "CMakeFiles/rtic_ra.dir/ra/ops.cc.o.d"
  "CMakeFiles/rtic_ra.dir/ra/relation.cc.o"
  "CMakeFiles/rtic_ra.dir/ra/relation.cc.o.d"
  "librtic_ra.a"
  "librtic_ra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
