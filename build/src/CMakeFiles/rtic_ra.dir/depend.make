# Empty dependencies file for rtic_ra.
# This may be replaced when dependencies are built.
