file(REMOVE_RECURSE
  "librtic_ra.a"
)
