# Empty compiler generated dependencies file for rtic_storage.
# This may be replaced when dependencies are built.
