
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/codec.cc" "src/CMakeFiles/rtic_storage.dir/storage/codec.cc.o" "gcc" "src/CMakeFiles/rtic_storage.dir/storage/codec.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/rtic_storage.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/rtic_storage.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/domain_tracker.cc" "src/CMakeFiles/rtic_storage.dir/storage/domain_tracker.cc.o" "gcc" "src/CMakeFiles/rtic_storage.dir/storage/domain_tracker.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/rtic_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/rtic_storage.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/update_batch.cc" "src/CMakeFiles/rtic_storage.dir/storage/update_batch.cc.o" "gcc" "src/CMakeFiles/rtic_storage.dir/storage/update_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtic_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
