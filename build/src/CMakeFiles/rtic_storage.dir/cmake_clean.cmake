file(REMOVE_RECURSE
  "CMakeFiles/rtic_storage.dir/storage/codec.cc.o"
  "CMakeFiles/rtic_storage.dir/storage/codec.cc.o.d"
  "CMakeFiles/rtic_storage.dir/storage/database.cc.o"
  "CMakeFiles/rtic_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/rtic_storage.dir/storage/domain_tracker.cc.o"
  "CMakeFiles/rtic_storage.dir/storage/domain_tracker.cc.o.d"
  "CMakeFiles/rtic_storage.dir/storage/table.cc.o"
  "CMakeFiles/rtic_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/rtic_storage.dir/storage/update_batch.cc.o"
  "CMakeFiles/rtic_storage.dir/storage/update_batch.cc.o.d"
  "librtic_storage.a"
  "librtic_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
