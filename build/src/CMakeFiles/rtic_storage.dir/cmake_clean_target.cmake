file(REMOVE_RECURSE
  "librtic_storage.a"
)
