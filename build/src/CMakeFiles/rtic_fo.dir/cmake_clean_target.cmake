file(REMOVE_RECURSE
  "librtic_fo.a"
)
