# Empty compiler generated dependencies file for rtic_fo.
# This may be replaced when dependencies are built.
