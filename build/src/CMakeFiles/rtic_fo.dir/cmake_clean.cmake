file(REMOVE_RECURSE
  "CMakeFiles/rtic_fo.dir/fo/eval.cc.o"
  "CMakeFiles/rtic_fo.dir/fo/eval.cc.o.d"
  "CMakeFiles/rtic_fo.dir/fo/witness.cc.o"
  "CMakeFiles/rtic_fo.dir/fo/witness.cc.o.d"
  "librtic_fo.a"
  "librtic_fo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_fo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
