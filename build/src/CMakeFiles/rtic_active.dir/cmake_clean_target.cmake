file(REMOVE_RECURSE
  "librtic_active.a"
)
