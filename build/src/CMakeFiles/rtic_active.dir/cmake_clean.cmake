file(REMOVE_RECURSE
  "CMakeFiles/rtic_active.dir/engines/active/compiler.cc.o"
  "CMakeFiles/rtic_active.dir/engines/active/compiler.cc.o.d"
  "CMakeFiles/rtic_active.dir/engines/active/rule.cc.o"
  "CMakeFiles/rtic_active.dir/engines/active/rule.cc.o.d"
  "CMakeFiles/rtic_active.dir/engines/active/rule_engine.cc.o"
  "CMakeFiles/rtic_active.dir/engines/active/rule_engine.cc.o.d"
  "librtic_active.a"
  "librtic_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
