# Empty compiler generated dependencies file for rtic_active.
# This may be replaced when dependencies are built.
