# Empty dependencies file for rtic_workload.
# This may be replaced when dependencies are built.
