file(REMOVE_RECURSE
  "librtic_workload.a"
)
