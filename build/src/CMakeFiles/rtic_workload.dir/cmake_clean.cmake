file(REMOVE_RECURSE
  "CMakeFiles/rtic_workload.dir/workload/generators.cc.o"
  "CMakeFiles/rtic_workload.dir/workload/generators.cc.o.d"
  "librtic_workload.a"
  "librtic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
