# Empty dependencies file for rtic_types.
# This may be replaced when dependencies are built.
