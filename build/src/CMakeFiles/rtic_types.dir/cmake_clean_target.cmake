file(REMOVE_RECURSE
  "librtic_types.a"
)
