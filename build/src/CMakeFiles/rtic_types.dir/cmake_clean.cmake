file(REMOVE_RECURSE
  "CMakeFiles/rtic_types.dir/types/schema.cc.o"
  "CMakeFiles/rtic_types.dir/types/schema.cc.o.d"
  "CMakeFiles/rtic_types.dir/types/tuple.cc.o"
  "CMakeFiles/rtic_types.dir/types/tuple.cc.o.d"
  "CMakeFiles/rtic_types.dir/types/value.cc.o"
  "CMakeFiles/rtic_types.dir/types/value.cc.o.d"
  "librtic_types.a"
  "librtic_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
