file(REMOVE_RECURSE
  "librtic_naive.a"
)
