file(REMOVE_RECURSE
  "CMakeFiles/rtic_naive.dir/engines/naive/naive_engine.cc.o"
  "CMakeFiles/rtic_naive.dir/engines/naive/naive_engine.cc.o.d"
  "librtic_naive.a"
  "librtic_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
