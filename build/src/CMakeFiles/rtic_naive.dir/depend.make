# Empty dependencies file for rtic_naive.
# This may be replaced when dependencies are built.
