file(REMOVE_RECURSE
  "CMakeFiles/rtic_monitor.dir/monitor/audit.cc.o"
  "CMakeFiles/rtic_monitor.dir/monitor/audit.cc.o.d"
  "CMakeFiles/rtic_monitor.dir/monitor/monitor.cc.o"
  "CMakeFiles/rtic_monitor.dir/monitor/monitor.cc.o.d"
  "librtic_monitor.a"
  "librtic_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
