file(REMOVE_RECURSE
  "librtic_monitor.a"
)
