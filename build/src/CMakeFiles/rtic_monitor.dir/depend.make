# Empty dependencies file for rtic_monitor.
# This may be replaced when dependencies are built.
