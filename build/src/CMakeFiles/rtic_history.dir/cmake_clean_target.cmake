file(REMOVE_RECURSE
  "librtic_history.a"
)
