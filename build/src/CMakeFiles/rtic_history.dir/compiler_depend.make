# Empty compiler generated dependencies file for rtic_history.
# This may be replaced when dependencies are built.
