file(REMOVE_RECURSE
  "CMakeFiles/rtic_history.dir/history/history.cc.o"
  "CMakeFiles/rtic_history.dir/history/history.cc.o.d"
  "librtic_history.a"
  "librtic_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
