file(REMOVE_RECURSE
  "CMakeFiles/rtic_response.dir/engines/response/response_engine.cc.o"
  "CMakeFiles/rtic_response.dir/engines/response/response_engine.cc.o.d"
  "librtic_response.a"
  "librtic_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
