file(REMOVE_RECURSE
  "librtic_response.a"
)
