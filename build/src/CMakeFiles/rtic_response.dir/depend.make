# Empty dependencies file for rtic_response.
# This may be replaced when dependencies are built.
