# Empty compiler generated dependencies file for rtic_common.
# This may be replaced when dependencies are built.
