file(REMOVE_RECURSE
  "librtic_common.a"
)
