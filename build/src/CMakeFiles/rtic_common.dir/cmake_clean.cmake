file(REMOVE_RECURSE
  "CMakeFiles/rtic_common.dir/common/interval.cc.o"
  "CMakeFiles/rtic_common.dir/common/interval.cc.o.d"
  "CMakeFiles/rtic_common.dir/common/logging.cc.o"
  "CMakeFiles/rtic_common.dir/common/logging.cc.o.d"
  "CMakeFiles/rtic_common.dir/common/rng.cc.o"
  "CMakeFiles/rtic_common.dir/common/rng.cc.o.d"
  "CMakeFiles/rtic_common.dir/common/status.cc.o"
  "CMakeFiles/rtic_common.dir/common/status.cc.o.d"
  "CMakeFiles/rtic_common.dir/common/string_util.cc.o"
  "CMakeFiles/rtic_common.dir/common/string_util.cc.o.d"
  "librtic_common.a"
  "librtic_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
