# Empty compiler generated dependencies file for rtic_inc.
# This may be replaced when dependencies are built.
