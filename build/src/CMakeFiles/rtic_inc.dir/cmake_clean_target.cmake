file(REMOVE_RECURSE
  "librtic_inc.a"
)
