file(REMOVE_RECURSE
  "CMakeFiles/rtic_inc.dir/engines/incremental/compiler.cc.o"
  "CMakeFiles/rtic_inc.dir/engines/incremental/compiler.cc.o.d"
  "CMakeFiles/rtic_inc.dir/engines/incremental/engine.cc.o"
  "CMakeFiles/rtic_inc.dir/engines/incremental/engine.cc.o.d"
  "CMakeFiles/rtic_inc.dir/engines/incremental/pruning.cc.o"
  "CMakeFiles/rtic_inc.dir/engines/incremental/pruning.cc.o.d"
  "librtic_inc.a"
  "librtic_inc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_inc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
