file(REMOVE_RECURSE
  "CMakeFiles/rtic_tl.dir/tl/analyzer.cc.o"
  "CMakeFiles/rtic_tl.dir/tl/analyzer.cc.o.d"
  "CMakeFiles/rtic_tl.dir/tl/ast.cc.o"
  "CMakeFiles/rtic_tl.dir/tl/ast.cc.o.d"
  "CMakeFiles/rtic_tl.dir/tl/lexer.cc.o"
  "CMakeFiles/rtic_tl.dir/tl/lexer.cc.o.d"
  "CMakeFiles/rtic_tl.dir/tl/normalizer.cc.o"
  "CMakeFiles/rtic_tl.dir/tl/normalizer.cc.o.d"
  "CMakeFiles/rtic_tl.dir/tl/parser.cc.o"
  "CMakeFiles/rtic_tl.dir/tl/parser.cc.o.d"
  "CMakeFiles/rtic_tl.dir/tl/printer.cc.o"
  "CMakeFiles/rtic_tl.dir/tl/printer.cc.o.d"
  "librtic_tl.a"
  "librtic_tl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtic_tl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
