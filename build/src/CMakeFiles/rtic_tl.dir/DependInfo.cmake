
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tl/analyzer.cc" "src/CMakeFiles/rtic_tl.dir/tl/analyzer.cc.o" "gcc" "src/CMakeFiles/rtic_tl.dir/tl/analyzer.cc.o.d"
  "/root/repo/src/tl/ast.cc" "src/CMakeFiles/rtic_tl.dir/tl/ast.cc.o" "gcc" "src/CMakeFiles/rtic_tl.dir/tl/ast.cc.o.d"
  "/root/repo/src/tl/lexer.cc" "src/CMakeFiles/rtic_tl.dir/tl/lexer.cc.o" "gcc" "src/CMakeFiles/rtic_tl.dir/tl/lexer.cc.o.d"
  "/root/repo/src/tl/normalizer.cc" "src/CMakeFiles/rtic_tl.dir/tl/normalizer.cc.o" "gcc" "src/CMakeFiles/rtic_tl.dir/tl/normalizer.cc.o.d"
  "/root/repo/src/tl/parser.cc" "src/CMakeFiles/rtic_tl.dir/tl/parser.cc.o" "gcc" "src/CMakeFiles/rtic_tl.dir/tl/parser.cc.o.d"
  "/root/repo/src/tl/printer.cc" "src/CMakeFiles/rtic_tl.dir/tl/printer.cc.o" "gcc" "src/CMakeFiles/rtic_tl.dir/tl/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtic_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
