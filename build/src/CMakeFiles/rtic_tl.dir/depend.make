# Empty dependencies file for rtic_tl.
# This may be replaced when dependencies are built.
