file(REMOVE_RECURSE
  "librtic_tl.a"
)
