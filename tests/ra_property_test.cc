// Randomized algebraic property tests for the relational algebra — the
// identities the evaluator's correctness silently leans on, checked over
// random relations.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ra/ops.h"
#include "tests/test_util.h"

namespace rtic {
namespace {

using testing::IntCols;
using testing::Unwrap;

/// Random relation over the given int columns, values in [0, 4].
Relation RandomRelation(Rng* rng, std::vector<std::string> names,
                        std::size_t max_rows) {
  Relation rel(IntCols(names));
  std::size_t rows = rng->Uniform(max_rows + 1);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Value> vals;
    for (std::size_t c = 0; c < names.size(); ++c) {
      vals.push_back(Value::Int64(rng->UniformInt(0, 4)));
    }
    rel.InsertUnchecked(Tuple(std::move(vals)));
  }
  return rel;
}

/// Reorders a relation's columns (sorted by name) so differently-shaped but
/// equal relations compare equal.
Relation Sorted(const Relation& rel) {
  std::vector<std::string> names = rel.ColumnNames();
  std::sort(names.begin(), names.end());
  return Unwrap(ra::Project(rel, names));
}

class RaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaPropertyTest, JoinIsCommutativeUpToColumnOrder) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    Relation a = RandomRelation(&rng, {"x", "y"}, 12);
    Relation b = RandomRelation(&rng, {"y", "z"}, 12);
    EXPECT_EQ(Sorted(Unwrap(ra::NaturalJoin(a, b))),
              Sorted(Unwrap(ra::NaturalJoin(b, a))));
  }
}

TEST_P(RaPropertyTest, JoinIsAssociative) {
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 20; ++round) {
    Relation a = RandomRelation(&rng, {"x", "y"}, 10);
    Relation b = RandomRelation(&rng, {"y", "z"}, 10);
    Relation c = RandomRelation(&rng, {"z", "w"}, 10);
    Relation left = Unwrap(
        ra::NaturalJoin(Unwrap(ra::NaturalJoin(a, b)), c));
    Relation right = Unwrap(
        ra::NaturalJoin(a, Unwrap(ra::NaturalJoin(b, c))));
    EXPECT_EQ(Sorted(left), Sorted(right));
  }
}

TEST_P(RaPropertyTest, SemiAntiPartitionTheLeftSide) {
  Rng rng(GetParam() + 2000);
  for (int round = 0; round < 20; ++round) {
    Relation a = RandomRelation(&rng, {"x", "y"}, 15);
    Relation b = RandomRelation(&rng, {"y"}, 6);
    Relation semi = Unwrap(ra::SemiJoin(a, b));
    Relation anti = Unwrap(ra::AntiJoin(a, b));
    EXPECT_EQ(semi.size() + anti.size(), a.size());
    EXPECT_EQ(Unwrap(ra::Union(semi, anti)), a);
    EXPECT_TRUE(Unwrap(ra::Intersect(semi, anti)).empty());
  }
}

TEST_P(RaPropertyTest, SemiJoinEqualsJoinProjection) {
  Rng rng(GetParam() + 3000);
  for (int round = 0; round < 20; ++round) {
    Relation a = RandomRelation(&rng, {"x", "y"}, 15);
    Relation b = RandomRelation(&rng, {"y", "z"}, 15);
    Relation semi = Unwrap(ra::SemiJoin(a, b));
    Relation join_proj = Unwrap(
        ra::Project(Unwrap(ra::NaturalJoin(a, b)), a.ColumnNames()));
    EXPECT_EQ(semi, join_proj);
  }
}

TEST_P(RaPropertyTest, UnionIntersectDifferenceLaws) {
  Rng rng(GetParam() + 4000);
  for (int round = 0; round < 20; ++round) {
    Relation a = RandomRelation(&rng, {"x"}, 10);
    Relation b = RandomRelation(&rng, {"x"}, 10);
    Relation u = Unwrap(ra::Union(a, b));
    Relation i = Unwrap(ra::Intersect(a, b));
    Relation d_ab = Unwrap(ra::Difference(a, b));
    Relation d_ba = Unwrap(ra::Difference(b, a));
    // |A ∪ B| = |A| + |B| − |A ∩ B|.
    EXPECT_EQ(u.size() + i.size(), a.size() + b.size());
    // A = (A − B) ∪ (A ∩ B).
    EXPECT_EQ(Unwrap(ra::Union(d_ab, i)), a);
    // (A − B) ∩ (B − A) = ∅.
    EXPECT_TRUE(Unwrap(ra::Intersect(d_ab, d_ba)).empty());
    // Union is idempotent and commutative.
    EXPECT_EQ(Unwrap(ra::Union(a, a)), a);
    EXPECT_EQ(u, Unwrap(ra::Union(b, a)));
  }
}

TEST_P(RaPropertyTest, ProjectionIsMonotoneAndIdempotent) {
  Rng rng(GetParam() + 5000);
  for (int round = 0; round < 20; ++round) {
    Relation a = RandomRelation(&rng, {"x", "y", "z"}, 15);
    Relation p = Unwrap(ra::Project(a, {"x", "y"}));
    EXPECT_LE(p.size(), a.size());
    EXPECT_EQ(Unwrap(ra::Project(p, {"x", "y"})), p);
    // Projecting further commutes with projecting directly.
    EXPECT_EQ(Unwrap(ra::Project(p, {"x"})),
              Unwrap(ra::Project(a, {"x"})));
  }
}

TEST_P(RaPropertyTest, JoinWithProjectionOfSelfIsIdentity) {
  Rng rng(GetParam() + 6000);
  for (int round = 0; round < 20; ++round) {
    Relation a = RandomRelation(&rng, {"x", "y"}, 15);
    // a ⋈ π_x(a) = a (every row's key appears in the projection).
    Relation p = Unwrap(ra::Project(a, {"x"}));
    EXPECT_EQ(Sorted(Unwrap(ra::NaturalJoin(a, p))), Sorted(a));
    EXPECT_EQ(Unwrap(ra::SemiJoin(a, p)), a);
    EXPECT_TRUE(Unwrap(ra::AntiJoin(a, p)).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace rtic
