// Tests for incremental-engine checkpointing: the codec, round-trip
// resumption (a restored engine behaves exactly like an uninterrupted one),
// and validation of malformed/mismatched checkpoints.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engines/incremental/engine.h"
#include "storage/codec.h"
#include "tests/engine_test_util.h"

namespace rtic {
namespace {

using testing::BuildState;
using testing::I;
using testing::PQRSchemas;
using testing::ScenarioStep;
using testing::T;
using testing::Unwrap;

// ---- codec ---------------------------------------------------------------------

TEST(SnapshotCodecTest, IntRoundTrip) {
  StateWriter w;
  w.WriteInt(0);
  w.WriteInt(-42);
  w.WriteInt(1'234'567'890'123LL);
  StateReader r(w.str());
  EXPECT_EQ(Unwrap(r.ReadInt()), 0);
  EXPECT_EQ(Unwrap(r.ReadInt()), -42);
  EXPECT_EQ(Unwrap(r.ReadInt()), 1'234'567'890'123LL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotCodecTest, ValueRoundTripAllTypes) {
  std::vector<Value> values{
      Value::Int64(-7),      Value::Double(0.1),
      Value::Double(-1e300), Value::String(""),
      Value::String("with space and\nnewline"),
      Value::String("123:456 s:9"),  // adversarial: looks like tokens
      Value::Bool(true),     Value::Bool(false)};
  StateWriter w;
  for (const Value& v : values) w.WriteValue(v);
  StateReader r(w.str());
  for (const Value& v : values) {
    EXPECT_EQ(Unwrap(r.ReadValue()), v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotCodecTest, DoubleIsExact) {
  double tricky = 0.1 + 0.2;  // not representable exactly in decimal
  StateWriter w;
  w.WriteValue(Value::Double(tricky));
  StateReader r(w.str());
  EXPECT_EQ(Unwrap(r.ReadValue()).AsDouble(), tricky);
}

TEST(SnapshotCodecTest, TupleRoundTrip) {
  Tuple t{Value::Int64(1), Value::String("a b"), Value::Bool(false)};
  StateWriter w;
  w.WriteTuple(t);
  w.WriteTuple(Tuple{});
  StateReader r(w.str());
  EXPECT_EQ(Unwrap(r.ReadTuple()), t);
  EXPECT_EQ(Unwrap(r.ReadTuple()), Tuple{});
}

TEST(SnapshotCodecTest, MalformedInputsRejected) {
  EXPECT_FALSE(StateReader("").ReadInt().ok());
  EXPECT_FALSE(StateReader("abc").ReadInt().ok());
  EXPECT_FALSE(StateReader("x:1").ReadValue().ok());
  EXPECT_FALSE(StateReader("s:99:short").ReadValue().ok());
  EXPECT_FALSE(StateReader("b:2").ReadValue().ok());
  EXPECT_FALSE(StateReader("d:zzz").ReadValue().ok());
  EXPECT_FALSE(StateReader("3 i:1").ReadTuple().ok());  // arity short
}

// ---- engine save / load ------------------------------------------------------------

std::unique_ptr<IncrementalEngine> MakeDeadlineEngine() {
  tl::FormulaPtr f = Unwrap(tl::ParseFormula(
      "forall a: P(a) implies P(a) since[2, 9] Q(a)"));
  tl::PredicateCatalog catalog;
  for (const auto& [name, schema] : PQRSchemas()) catalog[name] = schema;
  return Unwrap(IncrementalEngine::Create(*f, catalog));
}

std::vector<ScenarioStep> DeadlineHistory(std::uint64_t seed,
                                          std::size_t length,
                                          Timestamp start = 0) {
  Rng rng(seed);
  std::vector<ScenarioStep> steps;
  Timestamp t = start;
  for (std::size_t i = 0; i < length; ++i) {
    t += rng.UniformInt(1, 3);
    ScenarioStep step{t, {}};
    for (std::int64_t a = 0; a <= 2; ++a) {
      if (rng.Bernoulli(0.5)) step.tables["P"].push_back(T(I(a)));
      if (rng.Bernoulli(0.3)) step.tables["Q"].push_back(T(I(a)));
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

TEST(CheckpointTest, RestoredEngineContinuesIdentically) {
  const auto schemas = PQRSchemas();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto original = MakeDeadlineEngine();
    std::vector<ScenarioStep> prefix = DeadlineHistory(seed, 20);
    for (const ScenarioStep& step : prefix) {
      Database state = Unwrap(BuildState(schemas, step));
      (void)Unwrap(original->OnTransition(state, step.t));
    }

    // Checkpoint, then restore into a FRESH engine.
    std::string checkpoint = Unwrap(original->SaveState());
    auto restored = MakeDeadlineEngine();
    RTIC_ASSERT_OK(restored->LoadState(checkpoint));
    EXPECT_EQ(restored->AuxTimestampCount(), original->AuxTimestampCount());
    EXPECT_EQ(restored->StorageRows(), original->StorageRows());

    // Both engines process a continuation; verdicts must match exactly.
    std::vector<ScenarioStep> continuation =
        DeadlineHistory(seed * 31, 20, prefix.back().t);
    for (const ScenarioStep& step : continuation) {
      Database state = Unwrap(BuildState(schemas, step));
      bool v1 = Unwrap(original->OnTransition(state, step.t));
      bool v2 = Unwrap(restored->OnTransition(state, step.t));
      ASSERT_EQ(v1, v2) << "divergence after restore, seed " << seed
                        << " t=" << step.t;
    }
  }
}

TEST(CheckpointTest, CheckpointIsSmallRegardlessOfHistory) {
  const auto schemas = PQRSchemas();
  auto engine = MakeDeadlineEngine();
  std::size_t size_after_short = 0;
  std::vector<ScenarioStep> steps = DeadlineHistory(7, 400);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    Database state = Unwrap(BuildState(schemas, steps[i]));
    (void)Unwrap(engine->OnTransition(state, steps[i].t));
    if (i == 49) size_after_short = Unwrap(engine->SaveState()).size();
  }
  std::size_t size_after_long = Unwrap(engine->SaveState()).size();
  // 8x more history, bounded state: comparable checkpoint size.
  EXPECT_LT(size_after_long, size_after_short * 3);
}

TEST(CheckpointTest, WrongConstraintRejected) {
  const auto schemas = PQRSchemas();
  auto engine = MakeDeadlineEngine();
  Database state = Unwrap(BuildState(schemas, ScenarioStep{1, {}}));
  (void)Unwrap(engine->OnTransition(state, 1));
  std::string checkpoint = Unwrap(engine->SaveState());

  tl::FormulaPtr other = Unwrap(tl::ParseFormula("once P(1)"));
  tl::PredicateCatalog catalog;
  for (const auto& [name, schema] : schemas) catalog[name] = schema;
  auto mismatched = Unwrap(IncrementalEngine::Create(*other, catalog));
  Status s = mismatched->LoadState(checkpoint);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, CorruptCheckpointsRejected) {
  const auto schemas = PQRSchemas();
  auto engine = MakeDeadlineEngine();
  Database state = Unwrap(BuildState(
      schemas, ScenarioStep{1, {{"Q", {T(I(0))}}, {"P", {T(I(0))}}}}));
  (void)Unwrap(engine->OnTransition(state, 1));
  std::string good = Unwrap(engine->SaveState());

  auto fresh = MakeDeadlineEngine();
  EXPECT_FALSE(fresh->LoadState("garbage").ok());
  EXPECT_FALSE(fresh->LoadState("").ok());
  EXPECT_FALSE(
      fresh->LoadState(good.substr(0, good.size() / 2)).ok());  // truncated
  EXPECT_FALSE(fresh->LoadState(good + " 99").ok());            // trailing
  // A failed load leaves the engine usable.
  Database state2 = Unwrap(BuildState(schemas, ScenarioStep{2, {}}));
  EXPECT_TRUE(fresh->OnTransition(state2, 2).ok());
}

TEST(CheckpointTest, FreshEngineCheckpointRoundTrips) {
  auto engine = MakeDeadlineEngine();
  std::string checkpoint = Unwrap(engine->SaveState());
  auto other = MakeDeadlineEngine();
  RTIC_ASSERT_OK(other->LoadState(checkpoint));
}

}  // namespace
}  // namespace rtic
