// Shared helpers for the rtic test suite.

#ifndef RTIC_TESTS_TEST_UTIL_H_
#define RTIC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/result.h"
#include "ra/relation.h"
#include "storage/database.h"
#include "storage/update_batch.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace rtic {
namespace testing {

/// ASSERT that a Status is OK, printing it otherwise.
#define RTIC_ASSERT_OK(expr)                                 \
  do {                                                       \
    ::rtic::Status _s = (expr);                              \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                   \
  } while (0)

#define RTIC_EXPECT_OK(expr)                                 \
  do {                                                       \
    ::rtic::Status _s = (expr);                              \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                   \
  } while (0)

/// Unwraps a Result<T>, failing the test on error.
template <typename T>
T Unwrap(Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return T{};
  return std::move(result).value();
}

// -- value / tuple shorthand ------------------------------------------------

inline Value I(std::int64_t v) { return Value::Int64(v); }
inline Value D(double v) { return Value::Double(v); }
inline Value S(std::string v) { return Value::String(std::move(v)); }
inline Value B(bool v) { return Value::Bool(v); }

inline Tuple T() { return Tuple{}; }
inline Tuple T(Value a) { return Tuple{std::move(a)}; }
inline Tuple T(Value a, Value b) { return Tuple{std::move(a), std::move(b)}; }
inline Tuple T(Value a, Value b, Value c) {
  return Tuple{std::move(a), std::move(b), std::move(c)};
}

/// Integer-typed schema with the given column names.
inline Schema IntSchema(std::vector<std::string> names) {
  std::vector<Column> cols;
  for (auto& n : names) cols.push_back(Column{std::move(n), ValueType::kInt64});
  return Schema(std::move(cols));
}

/// Integer-typed relation columns.
inline std::vector<Column> IntCols(std::vector<std::string> names) {
  std::vector<Column> cols;
  for (auto& n : names) cols.push_back(Column{std::move(n), ValueType::kInt64});
  return cols;
}

/// Builds a relation over int columns from rows of int64 literals.
inline Relation IntRelation(std::vector<std::string> names,
                            std::vector<std::vector<std::int64_t>> rows) {
  Relation rel(IntCols(std::move(names)));
  for (const auto& row : rows) {
    std::vector<Value> vals;
    for (std::int64_t v : row) vals.push_back(Value::Int64(v));
    rel.InsertUnchecked(Tuple(std::move(vals)));
  }
  return rel;
}

}  // namespace testing
}  // namespace rtic

#endif  // RTIC_TESTS_TEST_UTIL_H_
