// Group-commit tests: the GroupCommitter's coalescing protocol, its
// byte-transparency (grouping changes when fsyncs happen, never what bytes
// land), shared-fsync failure fate, and the concurrent-appender path through
// RecoveryManager that the whole feature exists for. The stress tests are
// the suite's TSan targets.

#include <gtest/gtest.h>

#include <barrier>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "monitor/monitor.h"
#include "storage/codec.h"
#include "tests/test_util.h"
#include "wal/file.h"
#include "wal/group_commit.h"
#include "wal/recovery.h"
#include "wal/wal_reader.h"
#include "wal/wal_writer.h"

namespace rtic {
namespace wal {
namespace {

using ::rtic::testing::I;
using ::rtic::testing::T;
using ::rtic::testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_group_commit_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// Batch (thread, i): a one-insert batch whose timestamp encodes its origin,
/// so the WAL contents can be mapped back to per-thread order.
UpdateBatch ThreadBatch(std::size_t thread, std::size_t i) {
  UpdateBatch batch(static_cast<Timestamp>(thread * 1000 + i + 1));
  batch.Insert("Emp", T(I(static_cast<std::int64_t>(thread)),
                        I(static_cast<std::int64_t>(i))));
  return batch;
}

std::string Encoded(const UpdateBatch& batch) {
  StateWriter w;
  batch.EncodeTo(&w);
  return w.str();
}

/// ReplayTarget that accepts everything; these tests drive the manager's
/// append path, not replay.
class NullTarget final : public ReplayTarget {
 public:
  Status RestoreCheckpoint(const std::string&) override {
    return Status::OK();
  }
  Status Replay(const UpdateBatch&) override { return Status::OK(); }
  Result<std::string> CaptureCheckpoint() override {
    return std::string("ckpt");
  }
};

// ---- coalescing --------------------------------------------------------------

// K committers released simultaneously into a wide-open window must be made
// durable by ONE shared fsync covering all K records.
TEST(GroupCommitterTest, WindowCoalescesConcurrentCommittersIntoOneSync) {
  const std::string dir = MakeTempDir();
  constexpr std::size_t kThreads = 8;
  std::unique_ptr<WalWriter> writer = Unwrap(
      WalWriter::Open(DefaultFs(), dir,
                      {.sync_policy = SyncPolicy::kBatch}, /*next_seq=*/1));
  GroupCommitter committer(
      writer.get(), {.sync_policy = SyncPolicy::kAlways,
                     .window_micros = 500 * 1000});  // generous vs scheduling

  std::barrier start(kThreads);
  std::vector<Status> results(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      results[t] = committer.Commit("record-" + std::to_string(t));
    });
  }
  for (auto& th : threads) th.join();
  for (const Status& s : results) RTIC_EXPECT_OK(s);

  GroupCommitter::Stats stats = committer.stats();
  EXPECT_EQ(stats.records, kThreads);
  EXPECT_EQ(stats.syncs, 1u) << "all committers fit inside one window";
  EXPECT_EQ(stats.max_group, kThreads);

  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  WalReader::Record rec;
  std::size_t count = 0;
  while (Unwrap(reader->Next(&rec))) {
    EXPECT_EQ(rec.seq, ++count);
  }
  EXPECT_EQ(count, kThreads);
  EXPECT_FALSE(reader->damage().has_value());
}

// A serial committer never coalesces (there is nobody to share with): every
// record costs one fsync even through the group path.
TEST(GroupCommitterTest, SerialCommitsSyncOncePerRecord) {
  const std::string dir = MakeTempDir();
  std::unique_ptr<WalWriter> writer = Unwrap(
      WalWriter::Open(DefaultFs(), dir,
                      {.sync_policy = SyncPolicy::kBatch}, /*next_seq=*/1));
  GroupCommitter committer(
      writer.get(),
      {.sync_policy = SyncPolicy::kAlways, .window_micros = 100});
  for (int i = 0; i < 5; ++i) {
    std::uint64_t seq = 0;
    RTIC_ASSERT_OK(committer.Commit("r", &seq));
    EXPECT_EQ(seq, static_cast<std::uint64_t>(i + 1));
  }
  GroupCommitter::Stats stats = committer.stats();
  EXPECT_EQ(stats.records, 5u);
  EXPECT_EQ(stats.syncs, 5u);
  EXPECT_EQ(stats.max_group, 1u);
}

// ---- byte transparency -------------------------------------------------------

// Group commit must never change WHAT lands in the log — only when fsyncs
// happen. The same serial record sequence through (a) a plain kAlways
// writer, (b) the group path with window=0, and (c) the group path with a
// real window must produce byte-identical segment files, rotations
// included.
TEST(GroupCommitterTest, GroupPathIsByteIdenticalToDirectWriter) {
  const std::size_t kSegmentBytes = 128;  // force several rotations
  std::vector<std::string> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back("payload-" + std::to_string(i));
  }

  const std::string direct_dir = MakeTempDir();
  {
    std::unique_ptr<WalWriter> writer = Unwrap(WalWriter::Open(
        DefaultFs(), direct_dir,
        {.sync_policy = SyncPolicy::kAlways, .segment_bytes = kSegmentBytes},
        1));
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      RTIC_ASSERT_OK(writer->Append(i + 1, payloads[i]));
    }
  }

  for (const std::uint64_t window : {std::uint64_t{0}, std::uint64_t{100}}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    const std::string dir = MakeTempDir();
    std::unique_ptr<WalWriter> writer = Unwrap(WalWriter::Open(
        DefaultFs(), dir,
        {.sync_policy = SyncPolicy::kBatch, .segment_bytes = kSegmentBytes},
        1));
    GroupCommitter committer(
        writer.get(),
        {.sync_policy = SyncPolicy::kAlways, .window_micros = window});
    for (const std::string& p : payloads) {
      RTIC_ASSERT_OK(committer.Commit(p));
    }

    std::vector<std::string> direct_names =
        Unwrap(DefaultFs()->ListDir(direct_dir));
    std::vector<std::string> group_names = Unwrap(DefaultFs()->ListDir(dir));
    ASSERT_EQ(group_names, direct_names);
    ASSERT_GT(group_names.size(), 1u) << "the workload must rotate";
    for (const std::string& name : group_names) {
      EXPECT_EQ(Unwrap(DefaultFs()->ReadFile(dir + "/" + name)),
                Unwrap(DefaultFs()->ReadFile(direct_dir + "/" + name)))
          << name;
    }
  }
}

// ---- failure fate ------------------------------------------------------------

// A fault inside the SHARED fsync must fail every committer in the group —
// no record in the group may be acked — and break the committer for good.
TEST(GroupCommitterTest, FaultInSharedSyncFailsTheWholeGroup) {
  const std::string dir = MakeTempDir();
  constexpr std::size_t kThreads = 4;
  // Mutating ops with a kBatch writer and no rotation: open (1), then per
  // append a file Append + Flush (2 each), then the shared Sync. Triggering
  // at 2K + 2 lands the fault exactly in the group fsync.
  FaultInjectingFs fs(DefaultFs(), /*trigger_op=*/2 * kThreads + 2,
                      FaultKind::kFailWrite);
  std::unique_ptr<WalWriter> writer = Unwrap(WalWriter::Open(
      &fs, dir, {.sync_policy = SyncPolicy::kBatch}, /*next_seq=*/1));
  GroupCommitter committer(
      writer.get(), {.sync_policy = SyncPolicy::kAlways,
                     .window_micros = 300 * 1000});  // gathers all K

  std::barrier start(kThreads);
  std::vector<Status> results(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      results[t] = committer.Commit("doomed-" + std::to_string(t));
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_TRUE(fs.dead()) << "the trigger op count must hit the shared sync";
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_FALSE(results[t].ok())
        << "committer " << t << " was acked by a failed group fsync";
  }
  // The writer is poisoned and the committer broken: nothing gets through.
  EXPECT_EQ(writer->broken().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(committer.Commit("after").ok());
}

// A fault in one committer's APPEND fails that committer and breaks the
// group (the segment may end in a torn record; appending past it would
// strand durable records beyond the damage).
TEST(GroupCommitterTest, FaultInAppendBreaksTheCommitter) {
  const std::string dir = MakeTempDir();
  // open (1), first append lands (+2) and group-syncs (+1); the second
  // commit's file write — op 5 — faults.
  FaultInjectingFs fs(DefaultFs(), /*trigger_op=*/5, FaultKind::kShortWrite);
  std::unique_ptr<WalWriter> writer = Unwrap(WalWriter::Open(
      &fs, dir, {.sync_policy = SyncPolicy::kBatch}, /*next_seq=*/1));
  GroupCommitter committer(
      writer.get(),
      {.sync_policy = SyncPolicy::kAlways, .window_micros = 0});
  RTIC_ASSERT_OK(committer.Commit("first"));
  EXPECT_FALSE(committer.Commit("torn").ok());
  EXPECT_FALSE(committer.Commit("after").ok());
  GroupCommitter::Stats stats = committer.stats();
  EXPECT_EQ(stats.records, 1u) << "failed appends are not records";
}

// ---- RecoveryManager integration (the TSan stress target) --------------------

// Many threads hammer AppendBatch concurrently. Every acked batch must be
// in the log exactly once, sequence numbers must be contiguous from 1, each
// thread's own batches must appear in its submission order, and the
// committer must have coalesced (fewer fsyncs than records).
TEST(GroupCommitStressTest, ConcurrentAppendersProduceOneContiguousLog) {
  const std::string dir = MakeTempDir() + "/wal";
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 25;

  WalOptions options;
  options.dir = dir;
  options.sync_policy = SyncPolicy::kAlways;
  options.group_commit_window_micros = 2000;
  options.checkpoint_interval = 0;  // appends only; no checkpoint races
  NullTarget target;
  {
    auto manager = Unwrap(RecoveryManager::Open(options, &target));
    ASSERT_NE(manager->group_committer(), nullptr);

    std::barrier start(kThreads);
    std::vector<Status> results(kThreads);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        start.arrive_and_wait();
        for (std::size_t i = 0; i < kPerThread; ++i) {
          Status s = manager->AppendBatch(ThreadBatch(t, i));
          if (!s.ok()) {
            results[t] = s;
            return;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    for (const Status& s : results) RTIC_EXPECT_OK(s);

    EXPECT_EQ(manager->last_seq(), kThreads * kPerThread);
    GroupCommitter::Stats stats = manager->group_committer()->stats();
    EXPECT_EQ(stats.records, kThreads * kPerThread);
    EXPECT_GE(stats.syncs, 1u);
    EXPECT_LT(stats.syncs, stats.records)
        << "concurrent committers must share at least one fsync";
  }

  // Map every logged payload back to (thread, index) and check the log is
  // a contiguous interleaving that preserves each thread's order.
  std::map<std::string, std::pair<std::size_t, std::size_t>> origin;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      origin[Encoded(ThreadBatch(t, i))] = {t, i};
    }
  }
  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  WalReader::Record rec;
  std::uint64_t expected_seq = 0;
  std::vector<std::size_t> next_index(kThreads, 0);
  while (Unwrap(reader->Next(&rec))) {
    EXPECT_EQ(rec.seq, ++expected_seq);
    auto it = origin.find(rec.payload);
    ASSERT_NE(it, origin.end()) << "unknown payload at seq " << rec.seq;
    const auto [t, i] = it->second;
    EXPECT_EQ(i, next_index[t]) << "thread " << t << " order broken";
    ++next_index[t];
    origin.erase(it);
  }
  EXPECT_FALSE(reader->damage().has_value());
  EXPECT_EQ(expected_seq, kThreads * kPerThread);
  EXPECT_TRUE(origin.empty()) << origin.size() << " batches never logged";
}

// ---- durable monitor integration --------------------------------------------

// A monitor with group commit enabled survives a restart exactly like one
// without it.
TEST(GroupCommitMonitorTest, RecoversVerdictForVerdict) {
  const std::string dir = MakeTempDir() + "/wal";
  const std::size_t kBatches = 10;

  auto make_monitor = [&](bool durable) {
    MonitorOptions options;
    if (durable) {
      options.wal_dir = dir;
      options.sync_policy = SyncPolicy::kAlways;
      options.group_commit_window_micros = 500;
      options.checkpoint_interval = 4;
    }
    auto monitor = std::make_unique<ConstraintMonitor>(std::move(options));
    RTIC_EXPECT_OK(
        monitor->CreateTable("Emp", testing::IntSchema({"id", "s"})));
    RTIC_EXPECT_OK(monitor->RegisterConstraint(
        "no_pay_cut",
        "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies s >= s0"));
    return monitor;
  };
  auto make_batch = [](std::size_t i) {
    UpdateBatch batch(static_cast<Timestamp>(i + 1));
    const std::int64_t id = static_cast<std::int64_t>(i % 3);
    batch.Insert("Emp", T(I(id), I(100 - static_cast<std::int64_t>(i))));
    return batch;
  };

  auto reference = make_monitor(/*durable=*/false);
  for (std::size_t i = 0; i < kBatches; ++i) {
    RTIC_ASSERT_OK(reference->ApplyUpdate(make_batch(i)).status());
  }
  {
    auto monitor = make_monitor(/*durable=*/true);
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (std::size_t i = 0; i < kBatches; ++i) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(make_batch(i)).status());
    }
  }
  auto recovered = make_monitor(/*durable=*/true);
  RTIC_ASSERT_OK(recovered->Recover().status());
  EXPECT_EQ(recovered->transition_count(), kBatches);
  EXPECT_EQ(Unwrap(recovered->SaveState()), Unwrap(reference->SaveState()));
}

}  // namespace
}  // namespace wal
}  // namespace rtic
