// Engine tests over non-integer data: string keys, double measurements,
// bool flags — making sure no int-only assumption hides in the encoding,
// the anchors, the codec, or the witnesses.

#include <gtest/gtest.h>

#include "monitor/monitor.h"
#include "tests/engine_test_util.h"

namespace rtic {
namespace {

using testing::B;
using testing::D;
using testing::I;
using testing::S;
using testing::T;
using testing::Unwrap;

std::map<std::string, Schema> MixedSchemas() {
  return {
      {"Session", Schema({Column{"user", ValueType::kString}})},
      {"Login", Schema({Column{"user", ValueType::kString}})},
      {"Reading", Schema({Column{"sensor", ValueType::kString},
                          Column{"celsius", ValueType::kDouble}})},
      {"Enabled", Schema({Column{"sensor", ValueType::kString},
                          Column{"on", ValueType::kBool}})},
  };
}

class MixedTypesTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  std::unique_ptr<ConstraintMonitor> MakeMonitor(
      const std::string& name, const std::string& constraint) {
    MonitorOptions options;
    options.engine = GetParam();
    auto monitor = std::make_unique<ConstraintMonitor>(options);
    for (const auto& [table, schema] : MixedSchemas()) {
      RTIC_EXPECT_OK(monitor->CreateTable(table, schema));
    }
    Status s = monitor->RegisterConstraint(name, constraint);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return monitor;
  }
};

TEST_P(MixedTypesTest, StringKeyedSessionsRequireRecentLogin) {
  auto monitor = MakeMonitor(
      "session_needs_login",
      "forall u: Session(u) implies Session(u) since[0, 30] Login(u)");

  UpdateBatch login(1);
  login.Insert("Login", T(S("ada")));
  login.Insert("Session", T(S("ada")));
  EXPECT_TRUE(Unwrap(monitor->ApplyUpdate(login)).empty());

  UpdateBatch quiet(10);
  quiet.Delete("Login", T(S("ada")));
  EXPECT_TRUE(Unwrap(monitor->ApplyUpdate(quiet)).empty());

  // The session outlives the 30-unit login window.
  EXPECT_TRUE(Unwrap(monitor->Tick(31)).empty());
  std::vector<Violation> v = Unwrap(monitor->Tick(40));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].witnesses[0], T(S("ada")));
}

TEST_P(MixedTypesTest, DoubleThresholdWithStringKeys) {
  auto monitor = MakeMonitor(
      "no_overheat_while_on",
      "forall s, c: Reading(s, c) and Enabled(s, true) implies c < 90.5");

  UpdateBatch ok_state(1);
  ok_state.Insert("Enabled", T(S("boiler"), B(true)));
  ok_state.Insert("Reading", T(S("boiler"), D(89.0)));
  EXPECT_TRUE(Unwrap(monitor->ApplyUpdate(ok_state)).empty());

  UpdateBatch hot(2);
  hot.Delete("Reading", T(S("boiler"), D(89.0)));
  hot.Insert("Reading", T(S("boiler"), D(91.25)));
  std::vector<Violation> v = Unwrap(monitor->ApplyUpdate(hot));
  ASSERT_EQ(v.size(), 1u);
  // Columns sorted: c, s.
  EXPECT_EQ(v[0].witnesses[0], T(D(91.25), S("boiler")));

  // Disabled sensors may run hot.
  UpdateBatch off(3);
  off.Delete("Enabled", T(S("boiler"), B(true)));
  off.Insert("Enabled", T(S("boiler"), B(false)));
  EXPECT_TRUE(Unwrap(monitor->ApplyUpdate(off)).empty());
}

TEST_P(MixedTypesTest, StringOnceWindow) {
  auto monitor = MakeMonitor(
      "login_not_too_old",
      "forall u: Session(u) implies once[0, 5] Login(u)");

  UpdateBatch b1(1);
  b1.Insert("Login", T(S("grace hopper")));  // spaces stress the codec path
  EXPECT_TRUE(Unwrap(monitor->ApplyUpdate(b1)).empty());

  UpdateBatch b2(4);
  b2.Delete("Login", T(S("grace hopper")));
  b2.Insert("Session", T(S("grace hopper")));
  EXPECT_TRUE(Unwrap(monitor->ApplyUpdate(b2)).empty());

  std::vector<Violation> v = Unwrap(monitor->Tick(9));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].witnesses[0], T(S("grace hopper")));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, MixedTypesTest,
    ::testing::Values(EngineKind::kIncremental, EngineKind::kNaive,
                      EngineKind::kActive),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return EngineKindToString(info.param);
    });

TEST(MixedTypesCheckpointTest, StringAnchorsSurviveCheckpoint) {
  MonitorOptions options;
  ConstraintMonitor a(options);
  for (const auto& [table, schema] : MixedSchemas()) {
    RTIC_EXPECT_OK(a.CreateTable(table, schema));
  }
  RTIC_EXPECT_OK(a.RegisterConstraint(
      "c", "forall u: Session(u) implies once[0, 5] Login(u)"));
  UpdateBatch b1(1);
  b1.Insert("Login", T(S("user with spaces")));
  (void)Unwrap(a.ApplyUpdate(b1));

  std::string checkpoint = Unwrap(a.SaveState());

  ConstraintMonitor b(options);
  for (const auto& [table, schema] : MixedSchemas()) {
    RTIC_EXPECT_OK(b.CreateTable(table, schema));
  }
  RTIC_EXPECT_OK(b.RegisterConstraint(
      "c", "forall u: Session(u) implies once[0, 5] Login(u)"));
  RTIC_ASSERT_OK(b.LoadState(checkpoint));

  UpdateBatch b2(4);
  b2.Delete("Login", T(S("user with spaces")));
  b2.Insert("Session", T(S("user with spaces")));
  EXPECT_TRUE(Unwrap(b.ApplyUpdate(b2)).empty());  // anchor survived
  std::vector<Violation> v = Unwrap(b.Tick(9));
  ASSERT_EQ(v.size(), 1u);  // and expires on schedule
}

}  // namespace
}  // namespace rtic
