// Unit tests for the common module: Status/Result, TimeInterval, Rng,
// string utilities.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

#include "common/arena.h"
#include "common/crc32c.h"
#include "common/interval.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "tests/test_util.h"

namespace rtic {
namespace {

using testing::Unwrap;

// ---- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    RTIC_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

// ---- Result ----------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusDegradesToInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto get = []() -> Result<int> { return 7; };
  auto use = [&]() -> Result<int> {
    RTIC_ASSIGN_OR_RETURN(int v, get());
    return v + 1;
  };
  EXPECT_EQ(Unwrap(use()), 8);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto get = []() -> Result<int> { return Status::OutOfRange("nope"); };
  auto use = [&]() -> Result<int> {
    RTIC_ASSIGN_OR_RETURN(int v, get());
    return v + 1;
  };
  EXPECT_EQ(use().status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  auto get = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(5);
  };
  auto r = get();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

// ---- TimeInterval ----------------------------------------------------------

TEST(TimeIntervalTest, DefaultIsAllOfTime) {
  TimeInterval i;
  EXPECT_EQ(i.lo(), 0);
  EXPECT_TRUE(i.unbounded());
  EXPECT_TRUE(i.Contains(0));
  EXPECT_TRUE(i.Contains(1'000'000'000));
}

TEST(TimeIntervalTest, MakeValidates) {
  EXPECT_TRUE(TimeInterval::Make(0, 5).ok());
  EXPECT_TRUE(TimeInterval::Make(3, 3).ok());
  EXPECT_FALSE(TimeInterval::Make(-1, 5).ok());
  EXPECT_FALSE(TimeInterval::Make(5, 3).ok());
}

TEST(TimeIntervalTest, ContainsIsInclusive) {
  TimeInterval i = Unwrap(TimeInterval::Make(2, 5));
  EXPECT_FALSE(i.Contains(1));
  EXPECT_TRUE(i.Contains(2));
  EXPECT_TRUE(i.Contains(5));
  EXPECT_FALSE(i.Contains(6));
}

TEST(TimeIntervalTest, ExpiredOnlyPastUpperBound) {
  TimeInterval i = Unwrap(TimeInterval::Make(2, 5));
  EXPECT_FALSE(i.Expired(5));
  EXPECT_TRUE(i.Expired(6));
  EXPECT_FALSE(TimeInterval::All().Expired(1'000'000));
}

TEST(TimeIntervalTest, ExactlyIsAPoint) {
  TimeInterval i = TimeInterval::Exactly(4);
  EXPECT_FALSE(i.Contains(3));
  EXPECT_TRUE(i.Contains(4));
  EXPECT_FALSE(i.Contains(5));
}

TEST(TimeIntervalTest, ToStringForms) {
  EXPECT_EQ(Unwrap(TimeInterval::Make(1, 9)).ToString(), "[1, 9]");
  EXPECT_EQ(TimeInterval::All().ToString(), "[0, inf)");
}

// ---- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
    if (x != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    std::int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---- string_util -----------------------------------------------------------

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, QuoteStringEscapes) {
  EXPECT_EQ(QuoteString("abc"), "'abc'");
  EXPECT_EQ(QuoteString("it's"), "'it\\'s'");
  EXPECT_EQ(QuoteString("a\\b"), "'a\\\\b'");
}

// ---- Crc32c ----------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVectors) {
  // RFC 3720 (iSCSI) Castagnoli test vectors.
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("a"), 0xC1D04330u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, SeedChainingEqualsWholeBuffer) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t chained =
        Crc32c(data.substr(split), Crc32c(data.substr(0, split)));
    EXPECT_EQ(chained, Crc32c(data)) << "split at " << split;
  }
}

// ---- Arena -----------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.Alloc(24, 8);
  void* b = arena.Alloc(1, 1);
  void* c = arena.Alloc(16, 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  // Writes to one allocation must not clobber another.
  std::memset(a, 0xAA, 24);
  std::memset(c, 0xBB, 16);
  EXPECT_EQ(static_cast<unsigned char*>(a)[23], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(c)[0], 0xBB);
}

TEST(ArenaTest, GrowsPastTheFirstBlock) {
  Arena arena(/*min_block_bytes=*/64);
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Alloc(48, 8);
    ASSERT_NE(p, nullptr);
    std::memset(p, i, 48);  // ASan would catch an undersized block
  }
  EXPECT_GE(arena.capacity_bytes(), 100u * 48u);
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnBlock) {
  Arena arena(/*min_block_bytes=*/64);
  void* p = arena.Alloc(4096, 8);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, 4096);
}

TEST(ArenaTest, ResetReusesCapacity) {
  Arena arena(/*min_block_bytes=*/1024);
  for (int i = 0; i < 32; ++i) arena.AllocSpan<std::int64_t>(16);
  const std::size_t grown = arena.capacity_bytes();
  arena.Reset();
  // Reset keeps the blocks: the same workload must not grow the arena.
  for (int i = 0; i < 32; ++i) arena.AllocSpan<std::int64_t>(16);
  EXPECT_EQ(arena.capacity_bytes(), grown);
}

TEST(ArenaTest, AllocSpanIsTyped) {
  Arena arena;
  std::int32_t* span = arena.AllocSpan<std::int32_t>(7);
  for (int i = 0; i < 7; ++i) span[i] = i * i;
  EXPECT_EQ(span[6], 36);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(span) % alignof(std::int32_t),
            0u);
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  const std::string data = "payload bytes";
  const std::uint32_t clean = Crc32c(data);
  for (std::size_t i = 0; i < data.size() * 8; ++i) {
    std::string flipped = data;
    flipped[i / 8] ^= static_cast<char>(1u << (i % 8));
    EXPECT_NE(Crc32c(flipped), clean) << "bit " << i;
  }
}

}  // namespace
}  // namespace rtic
