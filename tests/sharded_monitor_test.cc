// ShardedMonitor: the differential battery behind the subsystem's core
// promise — verdicts byte-identical to an unsharded serial monitor.
//
// Every comparison runs through a transcript: each transition's violations
// rendered with Violation::ToString in arrival order. The three paper-style
// workloads (alarm, payroll, library — nine constraints, including a
// response constraint with delayed verdicts) are replayed through shard
// counts N in {1, 2, 4} and diffed against the plain ConstraintMonitor,
// in-memory, durable with a mid-stream crash/Recover(), with a cross-shard
// constraint forcing the coordinator up, and with the parallel fan-out
// enabled. A torn-write test advances one shard's WAL behind the sharded
// monitor's back and checks Recover() reconciles the clocks.

#include "shard/sharded_monitor.h"

#include <gtest/gtest.h>

#include <stdlib.h>

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "monitor/monitor.h"
#include "server/client.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace rtic {
namespace shard {
namespace {

using rtic::testing::I;
using rtic::testing::T;
using rtic::testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_shard_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

// Registers the workload's vocabulary and constraints on any monitor.
void SetupWorkload(MonitorLike* monitor, const workload::Workload& w) {
  for (const auto& [name, schema] : w.schema) {
    RTIC_ASSERT_OK(monitor->CreateTable(name, schema));
  }
  for (const auto& [name, text] : w.constraints) {
    RTIC_ASSERT_OK(monitor->RegisterConstraint(name, text));
  }
}

// Applies one batch and appends the rendered verdict to `out`.
void ApplyInto(MonitorLike* monitor, const UpdateBatch& batch,
               std::string* out) {
  auto violations = Unwrap(monitor->ApplyUpdate(batch));
  *out += "t=" + std::to_string(batch.timestamp()) + "\n";
  for (const Violation& v : violations) {
    *out += v.ToString() + "\n";
  }
}

// The full workload as one transcript.
std::string Transcript(MonitorLike* monitor, const workload::Workload& w) {
  std::string out;
  for (const UpdateBatch& batch : w.batches) {
    ApplyInto(monitor, batch, &out);
  }
  return out;
}

std::vector<workload::Workload> PaperWorkloads() {
  workload::AlarmParams alarm;
  alarm.length = 120;
  workload::PayrollParams payroll;
  payroll.length = 120;
  workload::LibraryParams library;
  library.length = 120;
  return {workload::MakeAlarmWorkload(alarm),
          workload::MakePayrollWorkload(payroll),
          workload::MakeLibraryWorkload(library)};
}

// ---- core differential: N in {1, 2, 4} vs unsharded, all workloads ------

TEST(ShardedMonitorTest, DifferentialByteIdenticalInMemory) {
  for (const auto& w : PaperWorkloads()) {
    auto reference = std::make_unique<ConstraintMonitor>();
    SetupWorkload(reference.get(), w);
    const std::string expected = Transcript(reference.get(), w);
    ASSERT_NE(expected.find("violation of"), std::string::npos)
        << "workload produced no violations; the diff would be vacuous";

    for (std::size_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      auto sharded = Unwrap(ShardedMonitor::Create(shards));
      SetupWorkload(sharded.get(), w);
      EXPECT_EQ(sharded->PartitionLocalFraction(), 1.0);
      EXPECT_FALSE(sharded->coordinator_active());
      EXPECT_EQ(Transcript(sharded.get(), w), expected);
      EXPECT_EQ(sharded->current_time(), reference->current_time());
      EXPECT_EQ(sharded->transition_count(), reference->transition_count());
      EXPECT_EQ(sharded->total_violations(), reference->total_violations());
    }
  }
}

TEST(ShardedMonitorTest, DifferentialDurableCrashRecover) {
  workload::LibraryParams params;
  params.length = 80;
  const auto w = workload::MakeLibraryWorkload(params);
  const std::size_t kShards = 4;
  const std::size_t half = w.batches.size() / 2;

  auto reference = std::make_unique<ConstraintMonitor>();
  SetupWorkload(reference.get(), w);
  const std::string expected = Transcript(reference.get(), w);

  const std::string dir = MakeTempDir() + "/wal";
  MonitorOptions options;
  options.wal_dir = dir;
  options.checkpoint_interval = 8;

  std::string transcript;
  {
    auto sharded = Unwrap(ShardedMonitor::Create(kShards, options));
    SetupWorkload(sharded.get(), w);
    RTIC_ASSERT_OK(sharded->Recover().status());
    for (std::size_t i = 0; i < half; ++i) {
      ApplyInto(sharded.get(), w.batches[i], &transcript);
    }
    // Destroyed here without any shutdown protocol: the crash.
  }
  {
    auto sharded = Unwrap(ShardedMonitor::Create(kShards, options));
    SetupWorkload(sharded.get(), w);
    wal::RecoveryStats stats = Unwrap(sharded->Recover());
    EXPECT_FALSE(stats.tail_damaged);
    EXPECT_EQ(sharded->transition_count(), half);
    for (std::size_t i = half; i < w.batches.size(); ++i) {
      ApplyInto(sharded.get(), w.batches[i], &transcript);
    }
    EXPECT_EQ(sharded->total_violations(), reference->total_violations());
  }
  EXPECT_EQ(transcript, expected);
}

// A crash between shard commits leaves the fleet's clocks torn. Simulated
// by driving one shard's directory directly with a plain ConstraintMonitor
// (exactly what the inner shard is) one transition further than the rest.
TEST(ShardedMonitorTest, RecoverReconcilesTornClocks) {
  workload::AlarmParams params;
  params.length = 40;
  const auto w = workload::MakeAlarmWorkload(params);
  const std::string dir = MakeTempDir() + "/wal";
  MonitorOptions options;
  options.wal_dir = dir;

  Timestamp end_time = 0;
  {
    auto sharded = Unwrap(ShardedMonitor::Create(2, options));
    SetupWorkload(sharded.get(), w);
    RTIC_ASSERT_OK(sharded->Recover().status());
    for (const auto& batch : w.batches) {
      RTIC_ASSERT_OK(sharded->ApplyUpdate(batch).status());
    }
    end_time = sharded->current_time();
  }
  {
    // Shard 0 alone commits one more transition — the torn write.
    MonitorOptions inner = options;
    inner.wal_dir = dir + "/shard-0";
    auto lone = std::make_unique<ConstraintMonitor>(inner);
    for (const auto& [name, schema] : w.schema) {
      RTIC_ASSERT_OK(lone->CreateTable(name, schema));
    }
    for (const auto& [name, text] : w.constraints) {
      RTIC_ASSERT_OK(lone->RegisterConstraint(name, text));
    }
    RTIC_ASSERT_OK(lone->Recover().status());
    RTIC_ASSERT_OK(lone->Tick(end_time + 5).status());
  }
  auto sharded = Unwrap(ShardedMonitor::Create(2, options));
  SetupWorkload(sharded.get(), w);
  RTIC_ASSERT_OK(sharded->Recover().status());
  // Every shard caught up to the furthest clock; the monitor keeps going.
  EXPECT_EQ(sharded->current_time(), end_time + 5);
  EXPECT_EQ(sharded->shard(0).current_time(), end_time + 5);
  EXPECT_EQ(sharded->shard(1).current_time(), end_time + 5);
  RTIC_ASSERT_OK(sharded->Tick(end_time + 6).status());
}

// ---- cross-shard coordinator --------------------------------------------

// A constant at the key position makes the constraint cross-shard; the
// coordinator must reproduce the unsharded verdicts for it while the
// partition-local constraints keep running inside the shards.
TEST(ShardedMonitorTest, CrossShardConstraintDifferential) {
  workload::LibraryParams params;
  params.length = 80;
  auto w = workload::MakeLibraryWorkload(params);
  w.constraints.push_back(
      {"patron_seven_is_member", "forall b: Loan(7, b) implies Member(7)"});

  auto reference = std::make_unique<ConstraintMonitor>();
  SetupWorkload(reference.get(), w);
  const std::string expected = Transcript(reference.get(), w);

  auto sharded = Unwrap(ShardedMonitor::Create(3));
  SetupWorkload(sharded.get(), w);
  EXPECT_TRUE(sharded->coordinator_active());
  EXPECT_EQ(sharded->PartitionLocalCount(), w.constraints.size() - 1);
  const auto cls = Unwrap(sharded->ClassificationFor("patron_seven_is_member"));
  EXPECT_EQ(cls.cls, ShardClass::kCrossShard);
  EXPECT_EQ(Transcript(sharded.get(), w), expected);
  EXPECT_EQ(sharded->total_violations(), reference->total_violations());
}

// Registering a cross-shard constraint after updates ran (in-memory mode)
// seeds the coordinator from the union of the shard databases, matching
// the unsharded monitor's late-registration semantics.
TEST(ShardedMonitorTest, LateCrossShardRegistrationSeedsCoordinator) {
  workload::LibraryParams params;
  params.length = 60;
  const auto w = workload::MakeLibraryWorkload(params);
  const std::size_t half = w.batches.size() / 2;
  const char* kName = "patron_seven_is_member";
  const char* kText = "forall b: Loan(7, b) implies Member(7)";

  auto reference = std::make_unique<ConstraintMonitor>();
  SetupWorkload(reference.get(), w);
  auto sharded = Unwrap(ShardedMonitor::Create(4));
  SetupWorkload(sharded.get(), w);

  std::string expected;
  std::string actual;
  for (std::size_t i = 0; i < half; ++i) {
    ApplyInto(reference.get(), w.batches[i], &expected);
    ApplyInto(sharded.get(), w.batches[i], &actual);
  }
  RTIC_ASSERT_OK(reference->RegisterConstraint(kName, kText));
  RTIC_ASSERT_OK(sharded->RegisterConstraint(kName, kText));
  EXPECT_TRUE(sharded->coordinator_active());
  for (std::size_t i = half; i < w.batches.size(); ++i) {
    ApplyInto(reference.get(), w.batches[i], &expected);
    ApplyInto(sharded.get(), w.batches[i], &actual);
  }
  EXPECT_EQ(actual, expected);
}

TEST(ShardedMonitorTest, DurableCrossShardMustPrecedeRecover) {
  const std::string dir = MakeTempDir() + "/wal";
  MonitorOptions options;
  options.wal_dir = dir;
  auto sharded = Unwrap(ShardedMonitor::Create(2, options));
  RTIC_ASSERT_OK(sharded->CreateTable(
      "Loan", rtic::testing::IntSchema({"patron", "book"})));
  RTIC_ASSERT_OK(sharded->CreateTable(
      "Member", rtic::testing::IntSchema({"patron"})));
  RTIC_ASSERT_OK(sharded->Recover().status());
  Status late = sharded->RegisterConstraint(
      "cross", "forall b: Loan(7, b) implies Member(7)");
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  // Partition-local registration stays allowed after Recover().
  RTIC_ASSERT_OK(sharded->RegisterConstraint(
      "members_only", "forall p, b: Loan(p, b) implies Member(p)"));
}

// The same restriction does not bite when the coordinator was brought up
// before Recover(): the full durable round-trip with a cross-shard
// constraint.
TEST(ShardedMonitorTest, DurableCrossShardRoundTrip) {
  workload::LibraryParams params;
  params.length = 50;
  auto w = workload::MakeLibraryWorkload(params);
  w.constraints.push_back(
      {"patron_seven_is_member", "forall b: Loan(7, b) implies Member(7)"});
  const std::size_t half = w.batches.size() / 2;

  auto reference = std::make_unique<ConstraintMonitor>();
  SetupWorkload(reference.get(), w);
  const std::string expected = Transcript(reference.get(), w);

  const std::string dir = MakeTempDir() + "/wal";
  MonitorOptions options;
  options.wal_dir = dir;
  std::string transcript;
  {
    auto sharded = Unwrap(ShardedMonitor::Create(2, options));
    SetupWorkload(sharded.get(), w);
    EXPECT_TRUE(sharded->coordinator_active());
    RTIC_ASSERT_OK(sharded->Recover().status());
    for (std::size_t i = 0; i < half; ++i) {
      ApplyInto(sharded.get(), w.batches[i], &transcript);
    }
  }
  auto sharded = Unwrap(ShardedMonitor::Create(2, options));
  SetupWorkload(sharded.get(), w);
  RTIC_ASSERT_OK(sharded->Recover().status());
  for (std::size_t i = half; i < w.batches.size(); ++i) {
    ApplyInto(sharded.get(), w.batches[i], &transcript);
  }
  EXPECT_EQ(transcript, expected);
}

// ---- parallel fan-out ----------------------------------------------------

TEST(ShardedMonitorTest, ParallelFanOutMatchesSerial) {
  for (const auto& w : PaperWorkloads()) {
    auto serial = Unwrap(ShardedMonitor::Create(4));
    SetupWorkload(serial.get(), w);
    const std::string expected = Transcript(serial.get(), w);

    MonitorOptions options;
    options.num_threads = 3;
    auto parallel = Unwrap(ShardedMonitor::Create(4, options));
    SetupWorkload(parallel.get(), w);
    EXPECT_EQ(Transcript(parallel.get(), w), expected);
  }
}

// ---- guards and stats ----------------------------------------------------

TEST(ShardedMonitorTest, CreateValidatesConfiguration) {
  EXPECT_FALSE(ShardedMonitor::Create(0).ok());
  EXPECT_FALSE(ShardedMonitor::Create(1025).ok());
  MonitorOptions options;
  options.replication_standby = "127.0.0.1:1";
  EXPECT_FALSE(ShardedMonitor::Create(2, std::move(options)).ok());
}

TEST(ShardedMonitorTest, GuardsMirrorUnshardedMonitor) {
  auto sharded = Unwrap(ShardedMonitor::Create(2));
  RTIC_ASSERT_OK(
      sharded->CreateTable("P", rtic::testing::IntSchema({"x"})));
  EXPECT_FALSE(
      sharded->CreateTable("P", rtic::testing::IntSchema({"x"})).ok());
  RTIC_ASSERT_OK(sharded->RegisterConstraint(
      "c", "forall x: P(x) implies P(x)"));
  EXPECT_FALSE(
      sharded->RegisterConstraint("c", "forall x: P(x) implies P(x)").ok());
  // Open formulas are rejected up front.
  EXPECT_FALSE(sharded->RegisterConstraint("open", "P(x)").ok());

  UpdateBatch batch(5);
  batch.Insert("P", T(I(1)));
  RTIC_ASSERT_OK(sharded->ApplyUpdate(batch).status());
  // Tables only before the first update; clocks strictly advance.
  EXPECT_FALSE(
      sharded->CreateTable("Q", rtic::testing::IntSchema({"x"})).ok());
  EXPECT_EQ(sharded->ApplyUpdate(UpdateBatch(5)).status().code(),
            StatusCode::kInvalidArgument);
  // An invalid batch (unknown table) touches no shard.
  UpdateBatch bad(6);
  bad.Insert("Nope", T(I(1)));
  EXPECT_FALSE(sharded->ApplyUpdate(bad).status().ok());
  EXPECT_EQ(sharded->current_time(), 5);

  RTIC_ASSERT_OK(sharded->UnregisterConstraint("c"));
  EXPECT_FALSE(sharded->UnregisterConstraint("c").ok());
  EXPECT_TRUE(sharded->ConstraintNames().empty());
}

TEST(ShardedMonitorTest, StatsAggregateAcrossShards) {
  workload::PayrollParams params;
  params.length = 60;
  const auto w = workload::MakePayrollWorkload(params);

  auto reference = std::make_unique<ConstraintMonitor>();
  SetupWorkload(reference.get(), w);
  (void)Transcript(reference.get(), w);
  auto sharded = Unwrap(ShardedMonitor::Create(4));
  SetupWorkload(sharded.get(), w);
  (void)Transcript(sharded.get(), w);

  const auto expected = reference->Stats();
  const auto actual = sharded->Stats();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].name, expected[i].name);
    EXPECT_EQ(actual[i].transitions, expected[i].transitions);
    EXPECT_EQ(actual[i].violations, expected[i].violations);
  }
  EXPECT_EQ(sharded->TotalStorageRows(), reference->TotalStorageRows());
}

// Regression test: last_check_micros is a wall time, and shard checks run
// concurrently, so the aggregate must be the max across shards — never the
// sum. The old summing aggregation could report a "last check" larger than
// the worst check ever measured (max_check_micros), an impossible reading;
// the invariant below can never trip with the max aggregation.
TEST(ShardedMonitorTest, LastCheckMicrosNeverExceedsMax) {
  workload::PayrollParams params;
  params.length = 60;
  params.num_employees = 200;  // enough per-shard work for nonzero timings
  const auto w = workload::MakePayrollWorkload(params);

  auto sharded = Unwrap(ShardedMonitor::Create(4));
  SetupWorkload(sharded.get(), w);
  for (const UpdateBatch& batch : w.batches) {
    (void)Unwrap(sharded->ApplyUpdate(batch));
    for (const ConstraintStats& s : sharded->Stats()) {
      ASSERT_LE(s.last_check_micros, s.max_check_micros) << s.name;
      ASSERT_LE(s.max_check_micros, s.total_check_micros) << s.name;
    }
  }
}

// ---- server integration --------------------------------------------------

TEST(ShardedServerTest, HelloShardCountRoundTrip) {
  using server::RticClient;
  using server::RticServer;
  using server::ServerOptions;

  auto srv = Unwrap(RticServer::Start(ServerOptions{}));
  const Schema loan = rtic::testing::IntSchema({"patron", "book"});
  const Schema member = rtic::testing::IntSchema({"patron"});
  {
    auto client = Unwrap(RticClient::Connect(srv->address(), "acme", 3));
    RTIC_ASSERT_OK(client->CreateTable("Loan", loan));
    RTIC_ASSERT_OK(client->CreateTable("Member", member));
    RTIC_ASSERT_OK(client->RegisterConstraint(
        "members_only", "forall p, b: Loan(p, b) implies Member(p)"));
    UpdateBatch batch;  // server assigns the timestamp
    batch.Insert("Loan", T(I(1), I(2)));
    auto applied = Unwrap(client->Apply(batch));
    ASSERT_EQ(applied.violations.size(), 1u);
    EXPECT_EQ(applied.violations[0].constraint_name, "members_only");
  }
  // A matching request (3) and a default request (0) both attach ...
  RTIC_ASSERT_OK(RticClient::Connect(srv->address(), "acme", 3).status());
  RTIC_ASSERT_OK(RticClient::Connect(srv->address(), "acme", 0).status());
  // ... a mismatched one is refused with the counts in the message.
  auto mismatch = RticClient::Connect(srv->address(), "acme", 2);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("3 shard"), std::string::npos)
      << mismatch.status().ToString();
  // Requests beyond the per-tenant cap are refused outright.
  EXPECT_FALSE(
      RticClient::Connect(srv->address(), "widgets", server::kMaxTenantShards + 1)
          .ok());
  srv->Stop();
}

TEST(ShardedServerTest, DefaultShardCountBacksNewTenants) {
  using server::RticClient;
  using server::RticServer;
  using server::ServerOptions;

  ServerOptions options;
  options.default_shard_count = 2;
  auto srv = Unwrap(RticServer::Start(std::move(options)));
  {
    auto client = Unwrap(RticClient::Connect(srv->address(), "acme"));
    RTIC_ASSERT_OK(
        client->CreateTable("P", rtic::testing::IntSchema({"x"})));
    RTIC_ASSERT_OK(
        client->RegisterConstraint("c", "forall x: P(x) implies P(x)"));
    UpdateBatch batch;
    batch.Insert("P", T(I(1)));
    auto applied = Unwrap(client->Apply(batch));
    EXPECT_TRUE(applied.violations.empty());
  }
  // The tenant was created with 2 shards, so requesting 2 matches and 1
  // does not.
  RTIC_ASSERT_OK(RticClient::Connect(srv->address(), "acme", 2).status());
  EXPECT_FALSE(RticClient::Connect(srv->address(), "acme", 1).ok());
  srv->Stop();
}

}  // namespace
}  // namespace shard
}  // namespace rtic
