// Tests for monitor-wide checkpointing: database + clock + every checker's
// state survive a save/restore round trip; continuation matches an
// uninterrupted monitor; validation rejects mismatched monitors.

#include <gtest/gtest.h>

#include "monitor/monitor.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace rtic {
namespace {

using testing::I;
using testing::IntSchema;
using testing::T;
using testing::Unwrap;

std::unique_ptr<ConstraintMonitor> AlarmMonitor(
    const workload::Workload& w) {
  auto monitor = std::make_unique<ConstraintMonitor>();
  for (const auto& [name, schema] : w.schema) {
    RTIC_EXPECT_OK(monitor->CreateTable(name, schema));
  }
  for (const auto& [name, text] : w.constraints) {
    RTIC_EXPECT_OK(monitor->RegisterConstraint(name, text));
  }
  return monitor;
}

TEST(MonitorCheckpointTest, ContinuationMatchesUninterruptedRun) {
  workload::AlarmParams params;
  params.length = 120;
  params.num_alarms = 12;
  params.late_prob = 0.2;
  params.seed = 21;
  workload::Workload w = workload::MakeAlarmWorkload(params);

  auto reference = AlarmMonitor(w);
  auto first = AlarmMonitor(w);
  std::unique_ptr<ConstraintMonitor> second;

  const std::size_t half = w.batches.size() / 2;
  for (std::size_t i = 0; i < w.batches.size(); ++i) {
    std::vector<Violation> ref = Unwrap(reference->ApplyUpdate(w.batches[i]));
    if (i < half) {
      std::vector<Violation> got = Unwrap(first->ApplyUpdate(w.batches[i]));
      ASSERT_EQ(got.size(), ref.size()) << "prefix diverged at step " << i;
      if (i == half - 1) {
        std::string checkpoint = Unwrap(first->SaveState());
        first.reset();
        second = AlarmMonitor(w);
        RTIC_ASSERT_OK(second->LoadState(checkpoint));
        EXPECT_EQ(second->current_time(), reference->current_time());
        EXPECT_EQ(second->transition_count(), reference->transition_count());
        EXPECT_EQ(second->database().TotalRows(),
                  reference->database().TotalRows());
      }
    } else {
      std::vector<Violation> got = Unwrap(second->ApplyUpdate(w.batches[i]));
      ASSERT_EQ(got.size(), ref.size())
          << "continuation diverged at step " << i;
      for (std::size_t v = 0; v < got.size(); ++v) {
        EXPECT_EQ(got[v].constraint_name, ref[v].constraint_name);
        EXPECT_EQ(got[v].witnesses, ref[v].witnesses);
      }
    }
  }
  EXPECT_EQ(second->total_violations(), reference->total_violations());
}

// Per-constraint transition/violation counters are monitor state and must
// ride in the checkpoint: a restored monitor's Stats() must stay consistent
// with its restored total_violations().
TEST(MonitorCheckpointTest, PerConstraintCountersSurviveSaveLoad) {
  workload::AlarmParams params;
  params.length = 60;
  params.num_alarms = 8;
  params.late_prob = 0.3;
  params.seed = 33;
  workload::Workload w = workload::MakeAlarmWorkload(params);

  auto original = AlarmMonitor(w);
  for (const UpdateBatch& batch : w.batches) {
    RTIC_ASSERT_OK(original->ApplyUpdate(batch).status());
  }
  ASSERT_GT(original->total_violations(), 0u)
      << "the workload must violate for this test to mean anything";

  auto restored = AlarmMonitor(w);
  RTIC_ASSERT_OK(restored->LoadState(Unwrap(original->SaveState())));

  const std::vector<ConstraintStats> want = original->Stats();
  const std::vector<ConstraintStats> got = restored->Stats();
  ASSERT_EQ(got.size(), want.size());
  std::size_t violation_sum = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].transitions, want[i].transitions) << got[i].name;
    EXPECT_EQ(got[i].violations, want[i].violations) << got[i].name;
    violation_sum += got[i].violations;
  }
  EXPECT_EQ(restored->total_violations(), original->total_violations());
  EXPECT_EQ(violation_sum, restored->total_violations())
      << "per-constraint counters must sum to the monitor total";
}

// Checkpoints from before the counters were persisted (format RTICMON1)
// cannot be restored consistently; they must be rejected with a message
// naming the version, not half-loaded.
TEST(MonitorCheckpointTest, LegacyCheckpointVersionRejected) {
  ConstraintMonitor a;
  RTIC_ASSERT_OK(a.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(
      a.RegisterConstraint("c", "forall a: P(a) implies once P(a)"));
  UpdateBatch b1(1);
  b1.Insert("P", T(I(1)));
  (void)Unwrap(a.ApplyUpdate(b1));
  std::string checkpoint = Unwrap(a.SaveState());

  const std::size_t magic_at = checkpoint.find("RTICMON3");
  ASSERT_NE(magic_at, std::string::npos);
  checkpoint.replace(magic_at, 8, "RTICMON1");

  ConstraintMonitor b;
  RTIC_ASSERT_OK(b.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(
      b.RegisterConstraint("c", "forall a: P(a) implies once P(a)"));
  Status s = b.LoadState(checkpoint);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("RTICMON1"), std::string::npos) << s.ToString();
}

TEST(MonitorCheckpointTest, NaiveEngineMonitorCannotCheckpoint) {
  MonitorOptions options;
  options.engine = EngineKind::kNaive;
  ConstraintMonitor monitor(options);
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(
      monitor.RegisterConstraint("c", "forall a: P(a) implies once P(a)"));
  auto r = monitor.SaveState();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(MonitorCheckpointTest, MismatchedMonitorsRejected) {
  ConstraintMonitor a;
  RTIC_ASSERT_OK(a.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(
      a.RegisterConstraint("c", "forall a: P(a) implies once P(a)"));
  UpdateBatch b1(1);
  b1.Insert("P", T(I(1)));
  (void)Unwrap(a.ApplyUpdate(b1));
  std::string checkpoint = Unwrap(a.SaveState());

  // Missing constraint.
  ConstraintMonitor no_constraint;
  RTIC_ASSERT_OK(no_constraint.CreateTable("P", IntSchema({"a"})));
  EXPECT_FALSE(no_constraint.LoadState(checkpoint).ok());

  // Different table schema.
  ConstraintMonitor wrong_schema;
  RTIC_ASSERT_OK(wrong_schema.CreateTable("P", IntSchema({"a", "b"})));
  RTIC_ASSERT_OK(wrong_schema.RegisterConstraint(
      "c", "forall a, b: P(a, b) implies once P(a, b)"));
  EXPECT_FALSE(wrong_schema.LoadState(checkpoint).ok());

  // Different constraint text (engine-level validation).
  ConstraintMonitor wrong_constraint;
  RTIC_ASSERT_OK(wrong_constraint.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(wrong_constraint.RegisterConstraint(
      "c", "forall a: P(a) implies once[0, 5] P(a)"));
  EXPECT_FALSE(wrong_constraint.LoadState(checkpoint).ok());

  // Garbage.
  ConstraintMonitor ok_monitor;
  RTIC_ASSERT_OK(ok_monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(
      ok_monitor.RegisterConstraint("c", "forall a: P(a) implies once P(a)"));
  EXPECT_FALSE(ok_monitor.LoadState("junk").ok());
  // And the matching monitor loads fine.
  RTIC_ASSERT_OK(ok_monitor.LoadState(checkpoint));
  EXPECT_EQ(ok_monitor.current_time(), 1);
  EXPECT_TRUE(ok_monitor.database().GetTable("P").value()->Contains(T(I(1))));
}

TEST(MonitorCheckpointTest, ResponseConstraintStateSurvives) {
  ConstraintMonitor a;
  RTIC_ASSERT_OK(a.CreateTable("Raise", IntSchema({"x"})));
  RTIC_ASSERT_OK(a.CreateTable("Ack", IntSchema({"x"})));
  RTIC_ASSERT_OK(a.RegisterConstraint(
      "respond", "forall x: Raise(x) implies eventually[0, 6] Ack(x)"));
  UpdateBatch raise(1);
  raise.Insert("Raise", T(I(3)));
  (void)Unwrap(a.ApplyUpdate(raise));
  UpdateBatch clear(2);
  clear.Delete("Raise", T(I(3)));
  (void)Unwrap(a.ApplyUpdate(clear));

  std::string checkpoint = Unwrap(a.SaveState());

  ConstraintMonitor b;
  RTIC_ASSERT_OK(b.CreateTable("Raise", IntSchema({"x"})));
  RTIC_ASSERT_OK(b.CreateTable("Ack", IntSchema({"x"})));
  RTIC_ASSERT_OK(b.RegisterConstraint(
      "respond", "forall x: Raise(x) implies eventually[0, 6] Ack(x)"));
  RTIC_ASSERT_OK(b.LoadState(checkpoint));

  // The restored monitor still remembers the outstanding obligation: the
  // window [1, 7] closes unmet at t=8.
  EXPECT_TRUE(Unwrap(b.Tick(6)).empty());
  std::vector<Violation> v = Unwrap(b.Tick(8));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].witnesses[0], T(I(3)));
}

}  // namespace
}  // namespace rtic
