// Unit tests for the WAL building blocks: record framing, file naming, the
// POSIX file layer, segment writer/reader, and the fault-injecting Fs that
// the crash matrix is built on.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "tests/test_util.h"
#include "wal/file.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"
#include "wal/wal_writer.h"

namespace rtic {
namespace wal {
namespace {

using ::rtic::testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_wal_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void WriteWholeFile(Fs* fs, const std::string& path, std::string_view data) {
  std::unique_ptr<WritableFile> f =
      Unwrap(fs->NewWritableFile(path, /*truncate=*/true));
  RTIC_ASSERT_OK(f->Append(data));
  RTIC_ASSERT_OK(f->Close());
}

// ---- record framing ----------------------------------------------------------

TEST(WalFormatTest, RecordRoundTrip) {
  for (const std::string payload :
       {std::string(), std::string("hello"), std::string(1000, 'x'),
        std::string("\0\xff\n with bytes", 14)}) {
    std::string rec = EncodeRecord(42, payload);
    EXPECT_EQ(rec.size(), kRecordHeaderBytes + payload.size());
    ParsedRecord parsed;
    std::string reason;
    ASSERT_EQ(ParseRecord(rec, 0, &parsed, &reason), ParseOutcome::kRecord)
        << reason;
    EXPECT_EQ(parsed.seq, 42u);
    EXPECT_EQ(parsed.payload, payload);
    EXPECT_EQ(parsed.end_offset, rec.size());
  }
}

TEST(WalFormatTest, BackToBackRecordsParseInSequence) {
  std::string data = EncodeRecord(1, "a") + EncodeRecord(2, "bb");
  ParsedRecord rec;
  ASSERT_EQ(ParseRecord(data, 0, &rec, nullptr), ParseOutcome::kRecord);
  EXPECT_EQ(rec.seq, 1u);
  ASSERT_EQ(ParseRecord(data, rec.end_offset, &rec, nullptr),
            ParseOutcome::kRecord);
  EXPECT_EQ(rec.seq, 2u);
  EXPECT_EQ(ParseRecord(data, rec.end_offset, &rec, nullptr),
            ParseOutcome::kEnd);
}

TEST(WalFormatTest, EveryTornPrefixIsDetected) {
  const std::string rec = EncodeRecord(7, "payload");
  for (std::size_t cut = 1; cut < rec.size(); ++cut) {
    ParsedRecord parsed;
    std::string reason;
    ParseOutcome outcome = ParseRecord(rec.substr(0, cut), 0, &parsed, &reason);
    EXPECT_EQ(outcome, ParseOutcome::kTorn) << "cut at " << cut;
    EXPECT_FALSE(reason.empty());
  }
}

TEST(WalFormatTest, EverySingleByteFlipIsDetected) {
  const std::string rec = EncodeRecord(7, "payload");
  for (std::size_t i = 0; i < rec.size(); ++i) {
    std::string corrupted = rec;
    corrupted[i] ^= 0x01;
    ParsedRecord parsed;
    ParseOutcome outcome = ParseRecord(corrupted, 0, &parsed, nullptr);
    EXPECT_NE(outcome, ParseOutcome::kRecord) << "flip at byte " << i;
  }
}

TEST(WalFormatTest, ImplausibleLengthIsCorruptNotAllocated) {
  // Header declaring a ~4 GiB payload on a tiny file.
  std::string data(kRecordHeaderBytes, '\xff');
  ParsedRecord parsed;
  std::string reason;
  EXPECT_EQ(ParseRecord(data, 0, &parsed, &reason), ParseOutcome::kCorrupt);
}

TEST(WalFormatTest, FileNamesRoundTrip) {
  std::uint64_t seq = 0;
  EXPECT_TRUE(ParseSegmentFileName(SegmentFileName(123), &seq));
  EXPECT_EQ(seq, 123u);
  EXPECT_TRUE(ParseCheckpointFileName(CheckpointFileName(456), &seq));
  EXPECT_EQ(seq, 456u);
  for (const char* bad : {"wal-123.log", "wal-.log", "ckpt-12", "x", "",
                          "wal-00000000000000000123.logx",
                          "ckpt-00000000000000000456.tmp"}) {
    EXPECT_FALSE(ParseSegmentFileName(bad, &seq)) << bad;
    EXPECT_FALSE(ParseCheckpointFileName(bad, &seq)) << bad;
  }
}

// ---- POSIX file layer --------------------------------------------------------

TEST(PosixFsTest, WriteReadListRenameRemove) {
  const std::string dir = MakeTempDir();
  Fs* fs = DefaultFs();
  RTIC_ASSERT_OK(fs->CreateDir(dir));  // already exists: OK
  RTIC_ASSERT_OK(fs->CreateDir(dir + "/sub"));

  WriteWholeFile(fs, dir + "/b.txt", "hello");
  WriteWholeFile(fs, dir + "/a.txt", "world");
  EXPECT_EQ(Unwrap(fs->ReadFile(dir + "/b.txt")), "hello");

  std::vector<std::string> names = Unwrap(fs->ListDir(dir));
  EXPECT_EQ(names, (std::vector<std::string>{"a.txt", "b.txt", "sub"}));

  RTIC_ASSERT_OK(fs->Rename(dir + "/b.txt", dir + "/c.txt"));
  EXPECT_FALSE(Unwrap(fs->FileExists(dir + "/b.txt")));
  EXPECT_TRUE(Unwrap(fs->FileExists(dir + "/c.txt")));

  RTIC_ASSERT_OK(fs->Truncate(dir + "/c.txt", 2));
  EXPECT_EQ(Unwrap(fs->ReadFile(dir + "/c.txt")), "he");

  RTIC_ASSERT_OK(fs->Remove(dir + "/c.txt"));
  EXPECT_FALSE(Unwrap(fs->FileExists(dir + "/c.txt")));
  EXPECT_FALSE(fs->ReadFile(dir + "/missing").ok());
}

TEST(PosixFsTest, AbandonedFileDoesNotFlushItsBuffer) {
  const std::string dir = MakeTempDir();
  Fs* fs = DefaultFs();
  {
    std::unique_ptr<WritableFile> f =
        Unwrap(fs->NewWritableFile(dir + "/f", true));
    RTIC_ASSERT_OK(f->Append("durable"));
    RTIC_ASSERT_OK(f->Flush());
    RTIC_ASSERT_OK(f->Append("lost"));
    // Destroyed without Flush/Close: the second append must vanish, like a
    // crash between the two appends.
  }
  EXPECT_EQ(Unwrap(fs->ReadFile(dir + "/f")), "durable");
}

// ---- writer + reader ---------------------------------------------------------

TEST(WalWriterTest, RotatesSegmentsAndReaderSeesAllRecords) {
  const std::string dir = MakeTempDir();
  WalWriter::Options options;
  options.segment_bytes = 64;  // force frequent rotation
  std::unique_ptr<WalWriter> writer =
      Unwrap(WalWriter::Open(DefaultFs(), dir, options, 1));
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    RTIC_ASSERT_OK(writer->Append(seq, "payload-" + std::to_string(seq)));
  }
  RTIC_ASSERT_OK(writer->Rotate());

  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  EXPECT_GT(reader->segments().size(), 1u);
  WalReader::Record rec;
  std::uint64_t expected = 1;
  while (Unwrap(reader->Next(&rec))) {
    EXPECT_EQ(rec.seq, expected);
    EXPECT_EQ(rec.payload, "payload-" + std::to_string(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 21u);
  EXPECT_FALSE(reader->damage().has_value());
}

TEST(WalWriterTest, RejectsOutOfOrderAppends) {
  const std::string dir = MakeTempDir();
  std::unique_ptr<WalWriter> writer =
      Unwrap(WalWriter::Open(DefaultFs(), dir, {}, 1));
  RTIC_ASSERT_OK(writer->Append(1, "a"));
  EXPECT_FALSE(writer->Append(1, "dup").ok());
  EXPECT_FALSE(writer->Append(3, "skip").ok());
  EXPECT_EQ(writer->next_seq(), 2u);
  EXPECT_FALSE(WalWriter::Open(DefaultFs(), dir, {}, 0).ok());
}

/// Fails exactly one chosen file Append with a torn half-write, then keeps
/// working — unlike FaultInjectingFs, whose trigger kills the whole file
/// system. This models a transient I/O error: the dangerous case for a
/// writer, because later appends would SUCCEED and land durable records
/// beyond the torn bytes, where recovery's torn-tail truncation silently
/// discards them.
class TornOnceFs final : public Fs {
 public:
  TornOnceFs(Fs* base, int fail_append)
      : base_(base), fail_append_(fail_append) {}

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    RTIC_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                          base_->NewWritableFile(path, truncate));
    return std::unique_ptr<WritableFile>(
        std::make_unique<File>(this, std::move(base)));
  }
  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  Status Remove(const std::string& path) override {
    return base_->Remove(path);
  }
  Status Truncate(const std::string& path, std::uint64_t size) override {
    return base_->Truncate(path, size);
  }
  Result<bool> FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }

 private:
  class File final : public WritableFile {
   public:
    File(TornOnceFs* fs, std::unique_ptr<WritableFile> base)
        : fs_(fs), base_(std::move(base)) {}
    Status Append(std::string_view data) override {
      if (++fs_->appends_ == fs_->fail_append_) {
        (void)base_->Append(data.substr(0, data.size() / 2));
        (void)base_->Flush();
        return Status::Internal("transient write error");
      }
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override { return base_->Sync(); }
    Status Close() override { return base_->Close(); }

   private:
    TornOnceFs* fs_;
    std::unique_ptr<WritableFile> base_;
  };

  Fs* base_;
  const int fail_append_;
  int appends_ = 0;
};

// The data-loss regression: after a failed append left a torn record, the
// file system RECOVERS — a writer that kept appending would put durable
// records beyond the tear, and recovery would silently truncate them away.
// The writer must poison itself and refuse.
TEST(WalWriterTest, PoisonsAfterFailedAppendInsteadOfStrandingRecords) {
  const std::string dir = MakeTempDir();
  TornOnceFs fs(DefaultFs(), /*fail_append=*/2);
  WalWriter::Options options;
  options.sync_policy = SyncPolicy::kBatch;
  std::unique_ptr<WalWriter> writer =
      Unwrap(WalWriter::Open(&fs, dir, options, 1));
  RTIC_ASSERT_OK(writer->Append(1, "first record"));
  EXPECT_FALSE(writer->Append(2, "torn record").ok());

  // The fs works again, but every further write must be refused.
  EXPECT_EQ(writer->Append(2, "would strand").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Sync().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Rotate().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(writer->broken().ok());

  // On disk: record 1 followed by the tear, nothing beyond it.
  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  WalReader::Record rec;
  ASSERT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_EQ(rec.payload, "first record");
  EXPECT_FALSE(Unwrap(reader->Next(&rec)));
  ASSERT_TRUE(reader->damage().has_value());
}

TEST(WalWriterTest, PoisonsAfterFailedSync) {
  const std::string dir = MakeTempDir();
  // kBatch writer: open (1), append (2), flush (3); the explicit Sync is
  // op 4 and faults.
  FaultInjectingFs fs(DefaultFs(), /*trigger_op=*/4, FaultKind::kFailWrite);
  WalWriter::Options options;
  options.sync_policy = SyncPolicy::kBatch;
  std::unique_ptr<WalWriter> writer =
      Unwrap(WalWriter::Open(&fs, dir, options, 1));
  RTIC_ASSERT_OK(writer->Append(1, "a"));
  EXPECT_FALSE(writer->Sync().ok());
  // Poisoned, not merely unlucky: the refusal is FailedPrecondition from
  // the writer itself, before the (dead) fs is ever consulted.
  EXPECT_EQ(writer->Append(2, "b").code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(writer->broken().ok());
}

TEST(WalReaderTest, TornTailReportsDamageAtExactOffset) {
  const std::string dir = MakeTempDir();
  std::string good = EncodeRecord(1, "first") + EncodeRecord(2, "second");
  std::string torn = EncodeRecord(3, "third");
  torn.resize(torn.size() - 3);
  WriteWholeFile(DefaultFs(), dir + "/" + SegmentFileName(1), good + torn);

  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  WalReader::Record rec;
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_FALSE(Unwrap(reader->Next(&rec)));
  ASSERT_TRUE(reader->damage().has_value());
  EXPECT_EQ(reader->damage()->segment, SegmentFileName(1));
  EXPECT_EQ(reader->damage()->offset, good.size());
}

TEST(WalReaderTest, DuplicateSequenceNumberIsDamage) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(DefaultFs(), dir + "/" + SegmentFileName(1),
                 EncodeRecord(1, "a") + EncodeRecord(2, "b") +
                     EncodeRecord(2, "b again"));
  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  WalReader::Record rec;
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_FALSE(Unwrap(reader->Next(&rec)));
  ASSERT_TRUE(reader->damage().has_value());
  EXPECT_NE(reader->damage()->reason.find("discontinuity"), std::string::npos);
}

TEST(WalReaderTest, SegmentChainGapIsDamage) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(DefaultFs(), dir + "/" + SegmentFileName(1),
                 EncodeRecord(1, "a"));
  // Records 2..4 missing: next segment claims to start at 5.
  WriteWholeFile(DefaultFs(), dir + "/" + SegmentFileName(5),
                 EncodeRecord(5, "e"));
  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  WalReader::Record rec;
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_FALSE(Unwrap(reader->Next(&rec)));
  ASSERT_TRUE(reader->damage().has_value());
  EXPECT_EQ(reader->damage()->segment, SegmentFileName(5));
  EXPECT_EQ(reader->damage()->offset, 0u);
}

// ---- fault injection ---------------------------------------------------------

TEST(FaultInjectingFsTest, CountsOpsWithoutInjectingWhenDisabled) {
  const std::string dir = MakeTempDir();
  FaultInjectingFs fs(DefaultFs(), /*trigger_op=*/0, FaultKind::kFailWrite);
  WriteWholeFile(&fs, dir + "/f", "data");
  EXPECT_GT(fs.ops(), 0u);
  EXPECT_FALSE(fs.dead());
  EXPECT_EQ(Unwrap(fs.ReadFile(dir + "/f")), "data");
}

TEST(FaultInjectingFsTest, FailWriteLandsNothingThenEverythingFails) {
  const std::string dir = MakeTempDir();
  Fs* posix = DefaultFs();
  // Count the ops of the reference run first.
  FaultInjectingFs counter(posix, 0, FaultKind::kFailWrite);
  WriteWholeFile(&counter, dir + "/ref", "data");

  // Now fail at the Append.
  FaultInjectingFs fs(posix, /*trigger_op=*/2, FaultKind::kFailWrite);
  std::unique_ptr<WritableFile> f =
      Unwrap(fs.NewWritableFile(dir + "/f", true));
  EXPECT_FALSE(f->Append("data").ok());
  EXPECT_TRUE(fs.dead());
  EXPECT_FALSE(f->Close().ok());
  EXPECT_FALSE(fs.ReadFile(dir + "/ref").ok()) << "dead fs must not read";
  EXPECT_EQ(Unwrap(posix->ReadFile(dir + "/f")), "");
}

TEST(FaultInjectingFsTest, ShortWriteLandsAPrefix) {
  const std::string dir = MakeTempDir();
  FaultInjectingFs fs(DefaultFs(), /*trigger_op=*/2, FaultKind::kShortWrite);
  std::unique_ptr<WritableFile> f =
      Unwrap(fs.NewWritableFile(dir + "/f", true));
  EXPECT_FALSE(f->Append("0123456789").ok());
  std::string landed = Unwrap(DefaultFs()->ReadFile(dir + "/f"));
  EXPECT_LT(landed.size(), 10u);
  EXPECT_EQ(landed, std::string("0123456789").substr(0, landed.size()));
}

TEST(FaultInjectingFsTest, BitFlipLandsFullSizeButCorrupted) {
  const std::string dir = MakeTempDir();
  FaultInjectingFs fs(DefaultFs(), /*trigger_op=*/2, FaultKind::kBitFlip);
  std::unique_ptr<WritableFile> f =
      Unwrap(fs.NewWritableFile(dir + "/f", true));
  EXPECT_FALSE(f->Append("0123456789").ok());
  std::string landed = Unwrap(DefaultFs()->ReadFile(dir + "/f"));
  EXPECT_EQ(landed.size(), 10u);
  EXPECT_NE(landed, "0123456789");
}

}  // namespace
}  // namespace wal
}  // namespace rtic
