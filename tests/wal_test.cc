// Unit tests for the WAL building blocks: record framing, file naming, the
// POSIX file layer, segment writer/reader, and the fault-injecting Fs that
// the crash matrix is built on.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "tests/test_util.h"
#include "wal/file.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"
#include "wal/wal_writer.h"

namespace rtic {
namespace wal {
namespace {

using ::rtic::testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_wal_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void WriteWholeFile(Fs* fs, const std::string& path, std::string_view data) {
  std::unique_ptr<WritableFile> f =
      Unwrap(fs->NewWritableFile(path, /*truncate=*/true));
  RTIC_ASSERT_OK(f->Append(data));
  RTIC_ASSERT_OK(f->Close());
}

// ---- record framing ----------------------------------------------------------

TEST(WalFormatTest, RecordRoundTrip) {
  for (const std::string payload :
       {std::string(), std::string("hello"), std::string(1000, 'x'),
        std::string("\0\xff\n with bytes", 14)}) {
    std::string rec = EncodeRecord(42, payload);
    EXPECT_EQ(rec.size(), kRecordHeaderBytes + payload.size());
    ParsedRecord parsed;
    std::string reason;
    ASSERT_EQ(ParseRecord(rec, 0, &parsed, &reason), ParseOutcome::kRecord)
        << reason;
    EXPECT_EQ(parsed.seq, 42u);
    EXPECT_EQ(parsed.payload, payload);
    EXPECT_EQ(parsed.end_offset, rec.size());
  }
}

TEST(WalFormatTest, BackToBackRecordsParseInSequence) {
  std::string data = EncodeRecord(1, "a") + EncodeRecord(2, "bb");
  ParsedRecord rec;
  ASSERT_EQ(ParseRecord(data, 0, &rec, nullptr), ParseOutcome::kRecord);
  EXPECT_EQ(rec.seq, 1u);
  ASSERT_EQ(ParseRecord(data, rec.end_offset, &rec, nullptr),
            ParseOutcome::kRecord);
  EXPECT_EQ(rec.seq, 2u);
  EXPECT_EQ(ParseRecord(data, rec.end_offset, &rec, nullptr),
            ParseOutcome::kEnd);
}

TEST(WalFormatTest, EveryTornPrefixIsDetected) {
  const std::string rec = EncodeRecord(7, "payload");
  for (std::size_t cut = 1; cut < rec.size(); ++cut) {
    ParsedRecord parsed;
    std::string reason;
    ParseOutcome outcome = ParseRecord(rec.substr(0, cut), 0, &parsed, &reason);
    EXPECT_EQ(outcome, ParseOutcome::kTorn) << "cut at " << cut;
    EXPECT_FALSE(reason.empty());
  }
}

TEST(WalFormatTest, EverySingleByteFlipIsDetected) {
  const std::string rec = EncodeRecord(7, "payload");
  for (std::size_t i = 0; i < rec.size(); ++i) {
    std::string corrupted = rec;
    corrupted[i] ^= 0x01;
    ParsedRecord parsed;
    ParseOutcome outcome = ParseRecord(corrupted, 0, &parsed, nullptr);
    EXPECT_NE(outcome, ParseOutcome::kRecord) << "flip at byte " << i;
  }
}

TEST(WalFormatTest, ImplausibleLengthIsCorruptNotAllocated) {
  // Header declaring a ~4 GiB payload on a tiny file.
  std::string data(kRecordHeaderBytes, '\xff');
  ParsedRecord parsed;
  std::string reason;
  EXPECT_EQ(ParseRecord(data, 0, &parsed, &reason), ParseOutcome::kCorrupt);
}

TEST(WalFormatTest, FileNamesRoundTrip) {
  std::uint64_t seq = 0;
  EXPECT_TRUE(ParseSegmentFileName(SegmentFileName(123), &seq));
  EXPECT_EQ(seq, 123u);
  EXPECT_TRUE(ParseCheckpointFileName(CheckpointFileName(456), &seq));
  EXPECT_EQ(seq, 456u);
  for (const char* bad : {"wal-123.log", "wal-.log", "ckpt-12", "x", "",
                          "wal-00000000000000000123.logx",
                          "ckpt-00000000000000000456.tmp"}) {
    EXPECT_FALSE(ParseSegmentFileName(bad, &seq)) << bad;
    EXPECT_FALSE(ParseCheckpointFileName(bad, &seq)) << bad;
  }
}

// ---- POSIX file layer --------------------------------------------------------

TEST(PosixFsTest, WriteReadListRenameRemove) {
  const std::string dir = MakeTempDir();
  Fs* fs = DefaultFs();
  RTIC_ASSERT_OK(fs->CreateDir(dir));  // already exists: OK
  RTIC_ASSERT_OK(fs->CreateDir(dir + "/sub"));

  WriteWholeFile(fs, dir + "/b.txt", "hello");
  WriteWholeFile(fs, dir + "/a.txt", "world");
  EXPECT_EQ(Unwrap(fs->ReadFile(dir + "/b.txt")), "hello");

  std::vector<std::string> names = Unwrap(fs->ListDir(dir));
  EXPECT_EQ(names, (std::vector<std::string>{"a.txt", "b.txt", "sub"}));

  RTIC_ASSERT_OK(fs->Rename(dir + "/b.txt", dir + "/c.txt"));
  EXPECT_FALSE(Unwrap(fs->FileExists(dir + "/b.txt")));
  EXPECT_TRUE(Unwrap(fs->FileExists(dir + "/c.txt")));

  RTIC_ASSERT_OK(fs->Truncate(dir + "/c.txt", 2));
  EXPECT_EQ(Unwrap(fs->ReadFile(dir + "/c.txt")), "he");

  RTIC_ASSERT_OK(fs->Remove(dir + "/c.txt"));
  EXPECT_FALSE(Unwrap(fs->FileExists(dir + "/c.txt")));
  EXPECT_FALSE(fs->ReadFile(dir + "/missing").ok());
}

TEST(PosixFsTest, AbandonedFileDoesNotFlushItsBuffer) {
  const std::string dir = MakeTempDir();
  Fs* fs = DefaultFs();
  {
    std::unique_ptr<WritableFile> f =
        Unwrap(fs->NewWritableFile(dir + "/f", true));
    RTIC_ASSERT_OK(f->Append("durable"));
    RTIC_ASSERT_OK(f->Flush());
    RTIC_ASSERT_OK(f->Append("lost"));
    // Destroyed without Flush/Close: the second append must vanish, like a
    // crash between the two appends.
  }
  EXPECT_EQ(Unwrap(fs->ReadFile(dir + "/f")), "durable");
}

// ---- writer + reader ---------------------------------------------------------

TEST(WalWriterTest, RotatesSegmentsAndReaderSeesAllRecords) {
  const std::string dir = MakeTempDir();
  WalWriter::Options options;
  options.segment_bytes = 64;  // force frequent rotation
  std::unique_ptr<WalWriter> writer =
      Unwrap(WalWriter::Open(DefaultFs(), dir, options, 1));
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    RTIC_ASSERT_OK(writer->Append(seq, "payload-" + std::to_string(seq)));
  }
  RTIC_ASSERT_OK(writer->Rotate());

  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  EXPECT_GT(reader->segments().size(), 1u);
  WalReader::Record rec;
  std::uint64_t expected = 1;
  while (Unwrap(reader->Next(&rec))) {
    EXPECT_EQ(rec.seq, expected);
    EXPECT_EQ(rec.payload, "payload-" + std::to_string(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 21u);
  EXPECT_FALSE(reader->damage().has_value());
}

TEST(WalWriterTest, RejectsOutOfOrderAppends) {
  const std::string dir = MakeTempDir();
  std::unique_ptr<WalWriter> writer =
      Unwrap(WalWriter::Open(DefaultFs(), dir, {}, 1));
  RTIC_ASSERT_OK(writer->Append(1, "a"));
  EXPECT_FALSE(writer->Append(1, "dup").ok());
  EXPECT_FALSE(writer->Append(3, "skip").ok());
  EXPECT_EQ(writer->next_seq(), 2u);
  EXPECT_FALSE(WalWriter::Open(DefaultFs(), dir, {}, 0).ok());
}

TEST(WalReaderTest, TornTailReportsDamageAtExactOffset) {
  const std::string dir = MakeTempDir();
  std::string good = EncodeRecord(1, "first") + EncodeRecord(2, "second");
  std::string torn = EncodeRecord(3, "third");
  torn.resize(torn.size() - 3);
  WriteWholeFile(DefaultFs(), dir + "/" + SegmentFileName(1), good + torn);

  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  WalReader::Record rec;
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_FALSE(Unwrap(reader->Next(&rec)));
  ASSERT_TRUE(reader->damage().has_value());
  EXPECT_EQ(reader->damage()->segment, SegmentFileName(1));
  EXPECT_EQ(reader->damage()->offset, good.size());
}

TEST(WalReaderTest, DuplicateSequenceNumberIsDamage) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(DefaultFs(), dir + "/" + SegmentFileName(1),
                 EncodeRecord(1, "a") + EncodeRecord(2, "b") +
                     EncodeRecord(2, "b again"));
  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  WalReader::Record rec;
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_FALSE(Unwrap(reader->Next(&rec)));
  ASSERT_TRUE(reader->damage().has_value());
  EXPECT_NE(reader->damage()->reason.find("discontinuity"), std::string::npos);
}

TEST(WalReaderTest, SegmentChainGapIsDamage) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(DefaultFs(), dir + "/" + SegmentFileName(1),
                 EncodeRecord(1, "a"));
  // Records 2..4 missing: next segment claims to start at 5.
  WriteWholeFile(DefaultFs(), dir + "/" + SegmentFileName(5),
                 EncodeRecord(5, "e"));
  std::unique_ptr<WalReader> reader = Unwrap(WalReader::Open(DefaultFs(), dir));
  WalReader::Record rec;
  EXPECT_TRUE(Unwrap(reader->Next(&rec)));
  EXPECT_FALSE(Unwrap(reader->Next(&rec)));
  ASSERT_TRUE(reader->damage().has_value());
  EXPECT_EQ(reader->damage()->segment, SegmentFileName(5));
  EXPECT_EQ(reader->damage()->offset, 0u);
}

// ---- fault injection ---------------------------------------------------------

TEST(FaultInjectingFsTest, CountsOpsWithoutInjectingWhenDisabled) {
  const std::string dir = MakeTempDir();
  FaultInjectingFs fs(DefaultFs(), /*trigger_op=*/0, FaultKind::kFailWrite);
  WriteWholeFile(&fs, dir + "/f", "data");
  EXPECT_GT(fs.ops(), 0u);
  EXPECT_FALSE(fs.dead());
  EXPECT_EQ(Unwrap(fs.ReadFile(dir + "/f")), "data");
}

TEST(FaultInjectingFsTest, FailWriteLandsNothingThenEverythingFails) {
  const std::string dir = MakeTempDir();
  Fs* posix = DefaultFs();
  // Count the ops of the reference run first.
  FaultInjectingFs counter(posix, 0, FaultKind::kFailWrite);
  WriteWholeFile(&counter, dir + "/ref", "data");

  // Now fail at the Append.
  FaultInjectingFs fs(posix, /*trigger_op=*/2, FaultKind::kFailWrite);
  std::unique_ptr<WritableFile> f =
      Unwrap(fs.NewWritableFile(dir + "/f", true));
  EXPECT_FALSE(f->Append("data").ok());
  EXPECT_TRUE(fs.dead());
  EXPECT_FALSE(f->Close().ok());
  EXPECT_FALSE(fs.ReadFile(dir + "/ref").ok()) << "dead fs must not read";
  EXPECT_EQ(Unwrap(posix->ReadFile(dir + "/f")), "");
}

TEST(FaultInjectingFsTest, ShortWriteLandsAPrefix) {
  const std::string dir = MakeTempDir();
  FaultInjectingFs fs(DefaultFs(), /*trigger_op=*/2, FaultKind::kShortWrite);
  std::unique_ptr<WritableFile> f =
      Unwrap(fs.NewWritableFile(dir + "/f", true));
  EXPECT_FALSE(f->Append("0123456789").ok());
  std::string landed = Unwrap(DefaultFs()->ReadFile(dir + "/f"));
  EXPECT_LT(landed.size(), 10u);
  EXPECT_EQ(landed, std::string("0123456789").substr(0, landed.size()));
}

TEST(FaultInjectingFsTest, BitFlipLandsFullSizeButCorrupted) {
  const std::string dir = MakeTempDir();
  FaultInjectingFs fs(DefaultFs(), /*trigger_op=*/2, FaultKind::kBitFlip);
  std::unique_ptr<WritableFile> f =
      Unwrap(fs.NewWritableFile(dir + "/f", true));
  EXPECT_FALSE(f->Append("0123456789").ok());
  std::string landed = Unwrap(DefaultFs()->ReadFile(dir + "/f"));
  EXPECT_EQ(landed.size(), 10u);
  EXPECT_NE(landed, "0123456789");
}

}  // namespace
}  // namespace wal
}  // namespace rtic
