// Random Past-MTL formula generation shared by the property-test suites
// (cross-engine agreement, printer round-trips, normalizer preservation).

#ifndef RTIC_TESTS_FORMULA_GEN_H_
#define RTIC_TESTS_FORMULA_GEN_H_

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "tl/ast.h"

namespace rtic {
namespace testing {

using tl::Formula;
using tl::FormulaPtr;

/// Random Past-MTL formula generator. Every generated formula over variable
/// set V has free variables exactly V, which guarantees analyzability
/// (single int type; since-safety by construction).
class FormulaGen {
 public:
  explicit FormulaGen(Rng* rng) : rng_(rng) {}

  FormulaPtr Gen(const std::vector<std::string>& vars, int depth) {
    if (depth <= 0 || rng_->Bernoulli(0.15)) return Leaf(vars);
    switch (rng_->Uniform(8)) {
      case 0:
        return Formula::Not(Gen(vars, depth - 1));
      case 1:
      case 2: {  // binary boolean with a variable split
        auto [l, r] = Split(vars);
        FormulaPtr lhs = Gen(l, depth - 1);
        FormulaPtr rhs = Gen(r, depth - 1);
        switch (rng_->Uniform(3)) {
          case 0:
            return Formula::And(std::move(lhs), std::move(rhs));
          case 1:
            return Formula::Or(std::move(lhs), std::move(rhs));
          default:
            return Formula::Implies(std::move(lhs), std::move(rhs));
        }
      }
      case 3:
        return Formula::Previous(RandomInterval(), Gen(vars, depth - 1));
      case 4:
        return Formula::Once(RandomInterval(), Gen(vars, depth - 1));
      case 5:
        return Formula::Historically(RandomInterval(), Gen(vars, depth - 1));
      case 6: {  // since: free(lhs) ⊆ free(rhs) by construction
        FormulaPtr rhs = Gen(vars, depth - 1);
        FormulaPtr lhs = Gen(Subset(vars), depth - 1);
        return Formula::Since(RandomInterval(), std::move(lhs),
                              std::move(rhs));
      }
      default: {  // existential wrapper keeping the frees
        FormulaPtr body = ExistsLeaf(vars);
        return body;
      }
    }
  }

 private:
  tl::Term Var(const std::string& name) { return tl::Term::Var(name); }
  tl::Term Const() {
    return tl::Term::Const(Value::Int64(rng_->UniformInt(0, 2)));
  }

  FormulaPtr Leaf(const std::vector<std::string>& vars) {
    if (vars.empty()) {
      switch (rng_->Uniform(4)) {
        case 0:
          return Formula::Atom("P", {Const()});
        case 1:
          return Formula::Atom("Q", {Const()});
        case 2:
          return rng_->Bernoulli(0.5) ? Formula::True() : Formula::False();
        default:
          return Formula::Comparison(Const(), RandomCmp(), Const());
      }
    }
    if (vars.size() == 1) {
      const std::string& x = vars[0];
      switch (rng_->Uniform(5)) {
        case 0:
          return Formula::Atom("P", {Var(x)});
        case 1:
          return Formula::Atom("Q", {Var(x)});
        case 2:
          return Formula::Atom("R", {Var(x), Var(x)});
        case 3:
          return Formula::Comparison(Var(x), RandomCmp(), Const());
        default:
          return ExistsLeaf(vars);
      }
    }
    // Two variables.
    const std::string& x = vars[0];
    const std::string& y = vars[1];
    switch (rng_->Uniform(4)) {
      case 0:
        return Formula::Atom("R", {Var(x), Var(y)});
      case 1:
        return Formula::Atom("R", {Var(y), Var(x)});
      case 2:
        return Formula::Comparison(Var(x), RandomCmp(), Var(y));
      default:
        return Formula::And(Formula::Atom("P", {Var(x)}),
                            Formula::Atom("Q", {Var(y)}));
    }
  }

  /// exists z: R(v, z) (or R(z, z) for no vars) — a quantified leaf whose
  /// free variables are exactly `vars`.
  FormulaPtr ExistsLeaf(const std::vector<std::string>& vars) {
    if (vars.empty()) {
      return Formula::Exists(
          {"z"}, Formula::Atom("R", {Var("z"), Var("z")}));
    }
    const std::string& v = vars[rng_->Uniform(vars.size())];
    FormulaPtr atom = rng_->Bernoulli(0.5)
                          ? Formula::Atom("R", {Var(v), Var("z")})
                          : Formula::Atom("R", {Var("z"), Var(v)});
    FormulaPtr body = Formula::Exists({"z"}, std::move(atom));
    if (vars.size() == 1) return body;
    // Both variables must stay free: conjoin an atom over the other one.
    const std::string& other = vars[0] == v ? vars[1] : vars[0];
    return Formula::And(std::move(body), Formula::Atom("P", {Var(other)}));
  }

  tl::CmpOp RandomCmp() {
    static const tl::CmpOp kOps[] = {tl::CmpOp::kEq, tl::CmpOp::kNe,
                                     tl::CmpOp::kLt, tl::CmpOp::kLe,
                                     tl::CmpOp::kGt, tl::CmpOp::kGe};
    return kOps[rng_->Uniform(6)];
  }

  TimeInterval RandomInterval() {
    Timestamp lo = rng_->UniformInt(0, 3);
    if (rng_->Bernoulli(0.25)) return TimeInterval(lo, kTimeInfinity);
    return TimeInterval(lo, lo + rng_->UniformInt(0, 4));
  }

  /// Splits vars into two subsets whose union is vars.
  std::pair<std::vector<std::string>, std::vector<std::string>> Split(
      const std::vector<std::string>& vars) {
    std::vector<std::string> l, r;
    for (const std::string& v : vars) {
      switch (rng_->Uniform(3)) {
        case 0:
          l.push_back(v);
          break;
        case 1:
          r.push_back(v);
          break;
        default:
          l.push_back(v);
          r.push_back(v);
          break;
      }
    }
    return {l, r};
  }

  std::vector<std::string> Subset(const std::vector<std::string>& vars) {
    std::vector<std::string> out;
    for (const std::string& v : vars) {
      if (rng_->Bernoulli(0.6)) out.push_back(v);
    }
    return out;
  }

  Rng* rng_;
};

/// A random closed constraint in one of the common shapes.
FormulaPtr RandomConstraint(Rng* rng) {
  FormulaGen gen(rng);
  switch (rng->Uniform(4)) {
    case 0:
      return Formula::Forall(
          {"x", "y"},
          Formula::Implies(
              Formula::Atom("R", {tl::Term::Var("x"), tl::Term::Var("y")}),
              gen.Gen({"x", "y"}, 3)));
    case 1:
      return Formula::Forall(
          {"x"}, Formula::Implies(Formula::Atom("P", {tl::Term::Var("x")}),
                                  gen.Gen({"x"}, 3)));
    case 2:
      return Formula::Not(Formula::Exists({"x"}, gen.Gen({"x"}, 2)));
    default:
      return gen.Gen({}, 3);
  }
}


}  // namespace testing
}  // namespace rtic

#endif  // RTIC_TESTS_FORMULA_GEN_H_
