// Unit tests for the types module: Value, Schema, Tuple.

#include <gtest/gtest.h>

#include <unordered_set>

#include "tests/test_util.h"
#include "types/intern.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace rtic {
namespace {

using testing::B;
using testing::D;
using testing::I;
using testing::S;
using testing::T;
using testing::Unwrap;

// ---- Value -----------------------------------------------------------------

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(I(1).type(), ValueType::kInt64);
  EXPECT_EQ(D(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(S("x").type(), ValueType::kString);
  EXPECT_EQ(B(true).type(), ValueType::kBool);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(I(-7).AsInt64(), -7);
  EXPECT_DOUBLE_EQ(D(2.25).AsDouble(), 2.25);
  EXPECT_EQ(S("hi").AsString(), "hi");
  EXPECT_TRUE(B(true).AsBool());
}

TEST(ValueTest, EqualityIsTypeSensitive) {
  EXPECT_EQ(I(1), I(1));
  EXPECT_NE(I(1), I(2));
  EXPECT_NE(I(1), D(1.0));  // exact equality distinguishes int from double
  EXPECT_NE(S("1"), I(1));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(I(42).Hash(), I(42).Hash());
  EXPECT_EQ(S("abc").Hash(), S("abc").Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(I(1));
  set.insert(I(1));
  set.insert(D(1.0));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // Type rank first (int < double < string < bool), then payload.
  EXPECT_LT(I(100), D(0.5));
  EXPECT_LT(D(9.0), S("a"));
  EXPECT_LT(S("z"), B(false));
  EXPECT_LT(I(1), I(2));
  EXPECT_LT(S("a"), S("b"));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(I(5).ToString(), "5");
  EXPECT_EQ(S("hi").ToString(), "'hi'");
  EXPECT_EQ(B(false).ToString(), "false");
  EXPECT_EQ(B(true).ToString(), "true");
}

TEST(ValueTest, AsNumericWidens) {
  EXPECT_DOUBLE_EQ(I(3).AsNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(D(3.5).AsNumeric(), 3.5);
}

TEST(CompareValuesTest, SameTypeOrdering) {
  EXPECT_EQ(Unwrap(CompareValues(I(1), I(1))), 0);
  EXPECT_LT(Unwrap(CompareValues(I(1), I(2))), 0);
  EXPECT_GT(Unwrap(CompareValues(S("b"), S("a"))), 0);
  EXPECT_EQ(Unwrap(CompareValues(B(true), B(true))), 0);
}

TEST(CompareValuesTest, NumericMixingWidens) {
  EXPECT_EQ(Unwrap(CompareValues(I(2), D(2.0))), 0);
  EXPECT_LT(Unwrap(CompareValues(I(2), D(2.5))), 0);
  EXPECT_GT(Unwrap(CompareValues(D(3.1), I(3))), 0);
}

TEST(CompareValuesTest, IncompatibleTypesFail) {
  EXPECT_FALSE(CompareValues(I(1), S("1")).ok());
  EXPECT_FALSE(CompareValues(B(true), I(1)).ok());
  EXPECT_FALSE(CompareValues(S("x"), B(false)).ok());
}

TEST(ValueTypeTest, NamesRoundTrip) {
  for (ValueType t : {ValueType::kInt64, ValueType::kDouble,
                      ValueType::kString, ValueType::kBool}) {
    EXPECT_EQ(Unwrap(ValueTypeFromString(ValueTypeToString(t))), t);
  }
  EXPECT_FALSE(ValueTypeFromString("float").ok());
}

TEST(ValueTypeTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric(ValueType::kInt64));
  EXPECT_TRUE(IsNumeric(ValueType::kDouble));
  EXPECT_FALSE(IsNumeric(ValueType::kString));
  EXPECT_FALSE(IsNumeric(ValueType::kBool));
}

// ---- Schema ----------------------------------------------------------------

TEST(SchemaTest, MakeRejectsDuplicates) {
  EXPECT_FALSE(Schema::Make({Column{"a", ValueType::kInt64},
                             Column{"a", ValueType::kString}})
                   .ok());
  EXPECT_FALSE(Schema::Make({Column{"", ValueType::kInt64}}).ok());
  EXPECT_TRUE(Schema::Make({Column{"a", ValueType::kInt64},
                            Column{"b", ValueType::kInt64}})
                  .ok());
}

TEST(SchemaTest, IndexOf) {
  Schema s = testing::IntSchema({"x", "y"});
  EXPECT_EQ(*s.IndexOf("x"), 0u);
  EXPECT_EQ(*s.IndexOf("y"), 1u);
  EXPECT_FALSE(s.IndexOf("z").has_value());
}

TEST(SchemaTest, NamesAndToString) {
  Schema s({Column{"a", ValueType::kInt64}, Column{"b", ValueType::kString}});
  EXPECT_EQ(s.Names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(s.ToString(), "(a: int, b: string)");
}

// ---- Tuple -----------------------------------------------------------------

TEST(TupleTest, EqualityAndHash) {
  EXPECT_EQ(T(I(1), S("a")), T(I(1), S("a")));
  EXPECT_NE(T(I(1), S("a")), T(I(1), S("b")));
  EXPECT_NE(T(I(1)), T(I(1), I(1)));
  EXPECT_EQ(T(I(1), S("a")).Hash(), T(I(1), S("a")).Hash());
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT(T(I(1), I(9)), T(I(2), I(0)));
  EXPECT_LT(T(I(1)), T(I(1), I(0)));  // prefix orders first
  EXPECT_FALSE(T(I(2)) < T(I(1)));
}

TEST(TupleTest, MatchesSchema) {
  Schema s({Column{"a", ValueType::kInt64}, Column{"b", ValueType::kString}});
  EXPECT_TRUE(T(I(1), S("x")).Matches(s));
  EXPECT_FALSE(T(I(1), I(2)).Matches(s));   // wrong type
  EXPECT_FALSE(T(I(1)).Matches(s));         // wrong arity
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(T(I(1), S("a")).ToString(), "(1, 'a')");
  EXPECT_EQ(Tuple{}.ToString(), "()");
}

// ---- Tuple copy-on-write ---------------------------------------------------

TEST(TupleCowTest, CopiesShareStorage) {
  Tuple a = T(I(1), S("x"));
  Tuple b = a;  // O(1): bumps the shared refcount
  EXPECT_EQ(&a.at(0), &b.at(0));
  EXPECT_EQ(a, b);
}

TEST(TupleCowTest, HashIsCachedAndStable) {
  Tuple a = T(I(7), S("abc"), B(true));
  const std::size_t h = TupleHash{}(a);
  EXPECT_EQ(TupleHash{}(a), h);
  Tuple b = a;
  EXPECT_EQ(TupleHash{}(b), h);  // the cache rides along with the rep
  // A structurally equal but independently built tuple hashes the same.
  EXPECT_EQ(TupleHash{}(T(I(7), S("abc"), B(true))), h);
}

TEST(TupleCowTest, EqualityShortcutsDoNotChangeSemantics) {
  Tuple a = T(I(1), I(2));
  Tuple same_rep = a;
  Tuple equal = T(I(1), I(2));
  Tuple differs = T(I(1), I(3));
  EXPECT_EQ(a, same_rep);
  EXPECT_EQ(a, equal);
  EXPECT_NE(a, differs);
  // Force both hashes into the cache, then compare again: the
  // different-cached-hash shortcut must agree with elementwise equality.
  (void)TupleHash{}(a);
  (void)TupleHash{}(differs);
  (void)TupleHash{}(equal);
  EXPECT_EQ(a, equal);
  EXPECT_NE(a, differs);
}

TEST(TupleCowTest, DefaultTupleIsEmpty) {
  Tuple t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t, Tuple{});
  EXPECT_EQ(TupleHash{}(t), TupleHash{}(Tuple{}));
}

// ---- TuplePool -------------------------------------------------------------

TEST(TuplePoolTest, InterningDeduplicates) {
  TuplePool pool;
  Tuple a = pool.Intern(T(I(1), S("x")));
  Tuple b = pool.Intern(T(I(1), S("x")));
  EXPECT_EQ(a, b);
  EXPECT_EQ(&a.at(0), &b.at(0));  // same rep: equality is pointer-cheap
  EXPECT_EQ(pool.size(), 1u);
  Tuple c = pool.Intern(T(I(1), S("y")));
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(TuplePoolTest, SpanInterningMatchesTupleInterning) {
  TuplePool pool;
  const Value v0 = I(42);
  const Value v1 = S("k");
  const Value* span[] = {&v0, &v1};
  Tuple a = pool.Intern(span, 2);
  Tuple b = pool.Intern(T(I(42), S("k")));
  EXPECT_EQ(a, b);
  EXPECT_EQ(&a.at(0), &b.at(0));
  EXPECT_EQ(pool.size(), 1u);
  // Interned tuples carry a precomputed hash equal to the ordinary one.
  EXPECT_EQ(TupleHash{}(a), TupleHash{}(T(I(42), S("k"))));
}

TEST(TuplePoolTest, EmptyTuple) {
  TuplePool pool;
  Tuple a = pool.Intern(nullptr, 0);
  EXPECT_EQ(a, Tuple{});
  EXPECT_EQ(TupleHash{}(a), TupleHash{}(Tuple{}));
}

TEST(TuplePoolTest, SurvivesUseInUnorderedSet) {
  TuplePool pool;
  std::unordered_set<Tuple, TupleHash> set;
  for (int i = 0; i < 100; ++i) {
    set.insert(pool.Intern(T(I(i % 10), I(i % 7))));
  }
  EXPECT_EQ(set.size(), 70u);  // 10 x 7 distinct pairs
  EXPECT_LE(pool.size(), 70u);
}

// ---- Default-Value sentinel ------------------------------------------------

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(ValueSentinelDeathTest, ComparingDefaultConstructedValueAsserts) {
  // A default-constructed Value is a placeholder, not Int64(0); using one
  // in comparison or hashing is a latent bug the debug build traps.
  EXPECT_DEATH(
      {
        Value v;
        Value w = Value::Int64(0);
        bool eq = (v == w);
        (void)eq;
      },
      "default-constructed Value");
}

TEST(ValueSentinelDeathTest, HashingDefaultConstructedValueAsserts) {
  EXPECT_DEATH(
      {
        Value v;
        (void)v.Hash();
      },
      "default-constructed Value");
}
#endif  // !NDEBUG && GTEST_HAS_DEATH_TEST

// Parameterized sweep: hashing and ordering are consistent for every type.
class ValueRoundTripTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTripTest, SelfEqualityAndHashStability) {
  const Value& v = GetParam();
  EXPECT_EQ(v, v);
  EXPECT_EQ(v.Hash(), v.Hash());
  EXPECT_FALSE(v < v);
  Tuple t{v};
  EXPECT_TRUE((t == Tuple{v}));
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ValueRoundTripTest,
    ::testing::Values(Value::Int64(0), Value::Int64(-1),
                      Value::Int64(1'000'000'007), Value::Double(0.0),
                      Value::Double(-2.5), Value::String(""),
                      Value::String("hello world"), Value::Bool(true),
                      Value::Bool(false)));

}  // namespace
}  // namespace rtic
