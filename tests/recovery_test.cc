// Recovery tests: the durable monitor's restart path (checkpoint + WAL tail)
// and the RecoveryManager's edge cases — empty directories, checkpoints
// without logs, logs without checkpoints, damaged tails, duplicate sequence
// numbers, and garbage collection.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "storage/codec.h"
#include "tests/test_util.h"
#include "wal/file.h"
#include "wal/recovery.h"
#include "wal/wal_format.h"

namespace rtic {
namespace {

using testing::I;
using testing::T;
using testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_recovery_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

MonitorOptions DurableOptions(const std::string& dir, std::size_t interval) {
  MonitorOptions options;
  options.wal_dir = dir;
  options.checkpoint_interval = interval;
  options.sync_policy = wal::SyncPolicy::kBatch;
  return options;
}

/// A monitor with one table and one temporal constraint; every instance is
/// configured identically so checkpoints are comparable byte-for-byte.
std::unique_ptr<ConstraintMonitor> MakeMonitor(MonitorOptions options) {
  auto monitor = std::make_unique<ConstraintMonitor>(std::move(options));
  RTIC_EXPECT_OK(monitor->CreateTable("Emp", testing::IntSchema({"id", "s"})));
  RTIC_EXPECT_OK(monitor->RegisterConstraint(
      "no_pay_cut",
      "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies s >= s0"));
  return monitor;
}

/// Deterministic workload batch i (timestamps 1, 2, ...), with occasional
/// salary cuts so some transitions violate the constraint.
UpdateBatch MakeBatch(std::size_t i) {
  UpdateBatch batch(static_cast<Timestamp>(i + 1));
  const std::int64_t id = static_cast<std::int64_t>(i % 5);
  batch.Delete("Emp", T(I(id), I(1000 - static_cast<std::int64_t>(i) + 5)));
  batch.Insert("Emp", T(I(id), I(1000 - static_cast<std::int64_t>(i))));
  return batch;
}

// ---- durable monitor ---------------------------------------------------------

TEST(DurableMonitorTest, FreshDirectoryStartsEmpty) {
  const std::string dir = MakeTempDir();
  auto monitor = MakeMonitor(DurableOptions(dir + "/wal", 4));
  wal::RecoveryStats stats = Unwrap(monitor->Recover());
  EXPECT_EQ(stats.checkpoint_seq, 0u);
  EXPECT_EQ(stats.last_seq, 0u);
  EXPECT_EQ(stats.replayed_batches, 0u);
  EXPECT_FALSE(stats.tail_damaged);
  RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(0)).status());
  EXPECT_EQ(monitor->transition_count(), 1u);
}

TEST(DurableMonitorTest, RequiresRecoverBeforeApply) {
  const std::string dir = MakeTempDir();
  auto monitor = MakeMonitor(DurableOptions(dir + "/wal", 4));
  Result<std::vector<Violation>> r = monitor->ApplyUpdate(MakeBatch(0));
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DurableMonitorTest, RecoverTwiceFails) {
  const std::string dir = MakeTempDir();
  auto monitor = MakeMonitor(DurableOptions(dir + "/wal", 4));
  RTIC_ASSERT_OK(monitor->Recover().status());
  EXPECT_EQ(monitor->Recover().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DurableMonitorTest, RecoverWithoutWalDirFails) {
  auto monitor = MakeMonitor(MonitorOptions{});
  EXPECT_EQ(monitor->Recover().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DurableMonitorTest, NaiveEngineCannotBeDurable) {
  const std::string dir = MakeTempDir();
  MonitorOptions options = DurableOptions(dir + "/wal", 4);
  options.engine = EngineKind::kNaive;
  auto monitor = MakeMonitor(std::move(options));
  EXPECT_EQ(monitor->Recover().status().code(), StatusCode::kUnimplemented);
}

TEST(DurableMonitorTest, RestartReplaysTailAndMatchesUninterruptedRun) {
  const std::string dir = MakeTempDir() + "/wal";
  const std::size_t kBatches = 30;

  // Reference: plain in-memory monitor over the same workload.
  auto reference = MakeMonitor(MonitorOptions{});
  for (std::size_t i = 0; i < kBatches; ++i) {
    RTIC_ASSERT_OK(reference->ApplyUpdate(MakeBatch(i)).status());
  }

  {
    auto monitor = MakeMonitor(DurableOptions(dir, 8));
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (std::size_t i = 0; i < kBatches; ++i) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
    }
    // Destroyed mid-flight: 30 batches = 3 checkpoints (at 8, 16, 24) plus
    // a 6-batch WAL tail.
  }

  auto recovered = MakeMonitor(DurableOptions(dir, 8));
  wal::RecoveryStats stats = Unwrap(recovered->Recover());
  EXPECT_EQ(stats.checkpoint_seq, 24u);
  EXPECT_EQ(stats.last_seq, 30u);
  EXPECT_EQ(stats.replayed_batches, 6u);
  EXPECT_FALSE(stats.tail_damaged);
  EXPECT_EQ(recovered->transition_count(), kBatches);
  EXPECT_EQ(recovered->current_time(), reference->current_time());
  EXPECT_EQ(Unwrap(recovered->SaveState()), Unwrap(reference->SaveState()))
      << "recovered state must be byte-identical to the uninterrupted run";

  // And the recovered monitor keeps going.
  RTIC_ASSERT_OK(recovered->ApplyUpdate(MakeBatch(kBatches)).status());
}

TEST(DurableMonitorTest, CheckpointWithNoWalTail) {
  const std::string dir = MakeTempDir() + "/wal";
  const std::size_t kBatches = 8;
  {
    auto monitor = MakeMonitor(DurableOptions(dir, kBatches));
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (std::size_t i = 0; i < kBatches; ++i) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
    }
    // The last batch checkpointed and GC'd every segment: only the
    // checkpoint file remains.
  }
  std::vector<std::string> names = Unwrap(wal::DefaultFs()->ListDir(dir));
  EXPECT_EQ(names,
            (std::vector<std::string>{wal::CheckpointFileName(kBatches)}));

  auto recovered = MakeMonitor(DurableOptions(dir, kBatches));
  wal::RecoveryStats stats = Unwrap(recovered->Recover());
  EXPECT_EQ(stats.checkpoint_seq, kBatches);
  EXPECT_EQ(stats.replayed_batches, 0u);
  EXPECT_EQ(recovered->transition_count(), kBatches);
}

TEST(DurableMonitorTest, WalWithNoCheckpointReplaysEverything) {
  const std::string dir = MakeTempDir() + "/wal";
  const std::size_t kBatches = 12;
  {
    auto monitor = MakeMonitor(DurableOptions(dir, /*interval=*/0));
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (std::size_t i = 0; i < kBatches; ++i) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
    }
  }
  auto recovered = MakeMonitor(DurableOptions(dir, 0));
  wal::RecoveryStats stats = Unwrap(recovered->Recover());
  EXPECT_EQ(stats.checkpoint_seq, 0u);
  EXPECT_EQ(stats.replayed_batches, kBatches);
  EXPECT_EQ(recovered->transition_count(), kBatches);
}

TEST(DurableMonitorTest, TornTailIsTruncatedAndReanchored) {
  const std::string dir = MakeTempDir() + "/wal";
  const std::size_t kBatches = 10;
  auto reference = MakeMonitor(MonitorOptions{});
  {
    auto monitor = MakeMonitor(DurableOptions(dir, /*interval=*/0));
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (std::size_t i = 0; i < kBatches; ++i) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
      RTIC_ASSERT_OK(reference->ApplyUpdate(MakeBatch(i)).status());
    }
  }
  // Simulate a crash mid-append: glue half a record onto the segment.
  std::vector<std::string> names = Unwrap(wal::DefaultFs()->ListDir(dir));
  ASSERT_EQ(names.size(), 1u);
  std::string torn = wal::EncodeRecord(kBatches + 1, "never finished");
  torn.resize(torn.size() / 2);
  {
    auto f = Unwrap(
        wal::DefaultFs()->NewWritableFile(dir + "/" + names[0], false));
    RTIC_ASSERT_OK(f->Append(torn));
    RTIC_ASSERT_OK(f->Close());
  }

  auto recovered = MakeMonitor(DurableOptions(dir, 0));
  wal::RecoveryStats stats = Unwrap(recovered->Recover());
  EXPECT_TRUE(stats.tail_damaged);
  EXPECT_EQ(stats.truncated_bytes, torn.size());
  EXPECT_EQ(stats.replayed_batches, kBatches);
  EXPECT_EQ(Unwrap(recovered->SaveState()), Unwrap(reference->SaveState()));

  // The damaged tail was truncated and the log re-anchored: a further
  // restart must be clean.
  auto again = MakeMonitor(DurableOptions(dir, 0));
  wal::RecoveryStats stats2 = Unwrap(again->Recover());
  EXPECT_FALSE(stats2.tail_damaged);
  EXPECT_EQ(again->transition_count(), kBatches);
}

TEST(DurableMonitorTest, TimestampsStayMonotonicAcrossRecovery) {
  const std::string dir = MakeTempDir() + "/wal";
  {
    auto monitor = MakeMonitor(DurableOptions(dir, 4));
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (std::size_t i = 0; i < 6; ++i) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
    }
  }
  auto recovered = MakeMonitor(DurableOptions(dir, 4));
  RTIC_ASSERT_OK(recovered->Recover().status());
  EXPECT_EQ(recovered->current_time(), 6);
  // A stale or equal timestamp is rejected exactly as in one uninterrupted
  // run.
  EXPECT_EQ(recovered->ApplyUpdate(UpdateBatch(6)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(recovered->ApplyUpdate(UpdateBatch(3)).status().code(),
            StatusCode::kInvalidArgument);
  RTIC_ASSERT_OK(recovered->ApplyUpdate(UpdateBatch(7)).status());
}

TEST(DurableMonitorTest, GarbageCollectionBoundsFileCount) {
  const std::string dir = MakeTempDir() + "/wal";
  MonitorOptions options = DurableOptions(dir, 4);
  options.wal_segment_bytes = 1;  // rotate after every record
  // Full snapshots only: every checkpoint covers the whole log, so GC can
  // reclaim everything older. (The chain-aware bound with deltas enabled
  // is covered in checkpoint_delta_test.cc.)
  options.checkpoint_delta_chain = 0;
  auto monitor = MakeMonitor(std::move(options));
  RTIC_ASSERT_OK(monitor->Recover().status());
  for (std::size_t i = 0; i < 100; ++i) {
    RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
  }
  std::vector<std::string> names = Unwrap(wal::DefaultFs()->ListDir(dir));
  // At most one checkpoint plus the <= 4 segments since it.
  EXPECT_LE(names.size(), 5u) << "GC must bound the directory size";
}

TEST(DurableMonitorTest, StatsStayConsistentAcrossRecovery) {
  const std::string dir = MakeTempDir() + "/wal";
  const std::size_t kBatches = 30;  // checkpoint at 8/16/24 + 6-batch tail

  std::vector<ConstraintStats> want;
  std::size_t want_total = 0;
  {
    auto monitor = MakeMonitor(DurableOptions(dir, 8));
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (std::size_t i = 0; i < kBatches; ++i) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
    }
    want = monitor->Stats();
    want_total = monitor->total_violations();
    ASSERT_GT(want_total, 0u) << "the workload must violate";
  }

  auto recovered = MakeMonitor(DurableOptions(dir, 8));
  RTIC_ASSERT_OK(recovered->Recover().status());
  EXPECT_EQ(recovered->total_violations(), want_total);
  const std::vector<ConstraintStats> got = recovered->Stats();
  ASSERT_EQ(got.size(), want.size());
  std::size_t violation_sum = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].transitions, want[i].transitions)
        << got[i].name << ": replayed-tail-only counters mean the "
        << "checkpoint dropped them";
    EXPECT_EQ(got[i].violations, want[i].violations) << got[i].name;
    violation_sum += got[i].violations;
  }
  EXPECT_EQ(violation_sum, recovered->total_violations())
      << "Stats() must sum to total_violations() after recovery";
}

/// Fails the first Rename (the checkpoint's atomic install step), then
/// works again — a transient failure that must not cost the batch its
/// verdicts.
class FailRenameOnceFs final : public wal::Fs {
 public:
  explicit FailRenameOnceFs(wal::Fs* base) : base_(base) {}

  Result<std::unique_ptr<wal::WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    return base_->NewWritableFile(path, truncate);
  }
  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    if (!failed_) {
      failed_ = true;
      return Status::Internal("transient rename failure");
    }
    return base_->Rename(from, to);
  }
  Status Remove(const std::string& path) override {
    return base_->Remove(path);
  }
  Status Truncate(const std::string& path, std::uint64_t size) override {
    return base_->Truncate(path, size);
  }
  Result<bool> FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }

  bool failed() const { return failed_; }

 private:
  wal::Fs* base_;
  bool failed_ = false;
};

// A failed periodic checkpoint at the end of ApplyUpdate must not discard
// the batch's computed violations (the batch is already applied, logged,
// and checked); it is logged and retried at the next accepted batch.
TEST(DurableMonitorTest, FailedPeriodicCheckpointKeepsVerdictsAndRetries) {
  const std::string dir = MakeTempDir() + "/wal";
  FailRenameOnceFs fs(wal::DefaultFs());

  auto reference = MakeMonitor(MonitorOptions{});
  MonitorOptions options = DurableOptions(dir, /*interval=*/6);
  options.wal_fs = &fs;
  auto monitor = MakeMonitor(std::move(options));
  RTIC_ASSERT_OK(monitor->Recover().status());

  // Batches 0..4 are clean; batch 5 is the 6th accepted batch — it both
  // violates the constraint AND triggers the periodic checkpoint, whose
  // install rename fails.
  for (std::size_t i = 0; i < 5; ++i) {
    RTIC_ASSERT_OK(reference->ApplyUpdate(MakeBatch(i)).status());
    RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
  }
  std::vector<Violation> want = Unwrap(reference->ApplyUpdate(MakeBatch(5)));
  ASSERT_FALSE(want.empty()) << "batch 5 must violate for this test to bite";
  Result<std::vector<Violation>> got = monitor->ApplyUpdate(MakeBatch(5));
  ASSERT_TRUE(got.ok())
      << "a retryable checkpoint failure must not fail the batch: "
      << got.status().ToString();
  EXPECT_TRUE(fs.failed()) << "the checkpoint install never ran";
  ASSERT_EQ(got.value().size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_EQ(got.value()[v].ToString(), want[v].ToString());
  }

  // The next accepted batch retries the checkpoint, and this time the
  // rename goes through.
  RTIC_ASSERT_OK(reference->ApplyUpdate(MakeBatch(6)).status());
  RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(6)).status());
  monitor.reset();

  auto recovered = MakeMonitor(DurableOptions(dir, 6));
  wal::RecoveryStats stats = Unwrap(recovered->Recover());
  EXPECT_EQ(stats.checkpoint_seq, 7u) << "the retried checkpoint must land";
  EXPECT_EQ(recovered->transition_count(), 7u);
  EXPECT_EQ(Unwrap(recovered->SaveState()), Unwrap(reference->SaveState()));
}

// ---- RecoveryManager edge cases ---------------------------------------------

/// Records every callback; checkpoints are opaque strings.
class FakeTarget final : public wal::ReplayTarget {
 public:
  Status RestoreCheckpoint(const std::string& payload) override {
    restored = payload;
    return Status::OK();
  }
  Status Replay(const UpdateBatch& batch) override {
    replayed.push_back(batch.timestamp());
    return Status::OK();
  }
  Result<std::string> CaptureCheckpoint() override {
    return std::string("fake-checkpoint");
  }

  std::string restored;
  std::vector<Timestamp> replayed;
};

std::string EncodedBatch(std::size_t i) {
  StateWriter w;
  MakeBatch(i).EncodeTo(&w);
  return w.str();
}

void WriteWholeFile(const std::string& path, std::string_view data) {
  auto f = Unwrap(wal::DefaultFs()->NewWritableFile(path, true));
  RTIC_ASSERT_OK(f->Append(data));
  RTIC_ASSERT_OK(f->Close());
}

wal::WalOptions Opts(const std::string& dir) {
  wal::WalOptions options;
  options.dir = dir;
  return options;
}

TEST(RecoveryManagerTest, DuplicateSequenceNumbersTruncateTheTail) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(dir + "/" + wal::SegmentFileName(1),
                 wal::EncodeRecord(1, EncodedBatch(0)) +
                     wal::EncodeRecord(2, EncodedBatch(1)) +
                     wal::EncodeRecord(2, EncodedBatch(1)));
  FakeTarget target;
  auto manager = Unwrap(wal::RecoveryManager::Open(Opts(dir), &target));
  EXPECT_EQ(target.replayed, (std::vector<Timestamp>{1, 2}));
  EXPECT_TRUE(manager->stats().tail_damaged);
  EXPECT_EQ(manager->last_seq(), 2u);
  // The truncation re-anchored the log with a fresh checkpoint.
  EXPECT_EQ(manager->checkpoint_seq(), 2u);
  EXPECT_TRUE(Unwrap(wal::DefaultFs()->FileExists(
      dir + "/" + wal::CheckpointFileName(2))));
}

TEST(RecoveryManagerTest, UndecodablePayloadIsDamageNotACrash) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(dir + "/" + wal::SegmentFileName(1),
                 wal::EncodeRecord(1, EncodedBatch(0)) +
                     wal::EncodeRecord(2, "not a batch at all"));
  FakeTarget target;
  auto manager = Unwrap(wal::RecoveryManager::Open(Opts(dir), &target));
  EXPECT_EQ(target.replayed, (std::vector<Timestamp>{1}));
  EXPECT_TRUE(manager->stats().tail_damaged);
  EXPECT_EQ(manager->last_seq(), 1u);
}

TEST(RecoveryManagerTest, GapBetweenCheckpointAndLogFails) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(dir + "/" + wal::CheckpointFileName(5),
                 wal::EncodeRecord(5, "state"));
  WriteWholeFile(dir + "/" + wal::SegmentFileName(7),
                 wal::EncodeRecord(7, EncodedBatch(6)));
  FakeTarget target;
  Result<std::unique_ptr<wal::RecoveryManager>> manager =
      wal::RecoveryManager::Open(Opts(dir), &target);
  EXPECT_EQ(manager.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryManagerTest, CorruptCheckpointFallsBackToOlderOne) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(dir + "/" + wal::CheckpointFileName(1),
                 wal::EncodeRecord(1, "old-state"));
  std::string corrupt = wal::EncodeRecord(2, "new-state");
  corrupt[4] ^= 0x01;  // break the checksum
  WriteWholeFile(dir + "/" + wal::CheckpointFileName(2), corrupt);
  WriteWholeFile(dir + "/" + wal::SegmentFileName(2),
                 wal::EncodeRecord(2, EncodedBatch(1)));
  FakeTarget target;
  auto manager = Unwrap(wal::RecoveryManager::Open(Opts(dir), &target));
  EXPECT_EQ(target.restored, "old-state");
  EXPECT_EQ(target.replayed, (std::vector<Timestamp>{2}));
  EXPECT_FALSE(Unwrap(wal::DefaultFs()->FileExists(
      dir + "/" + wal::CheckpointFileName(2))))
      << "the corrupt checkpoint must be removed";
}

TEST(RecoveryManagerTest, LeftoverTempFilesAreRemoved) {
  const std::string dir = MakeTempDir();
  WriteWholeFile(dir + "/" + wal::CheckpointFileName(9) + wal::kTempSuffix,
                 "half-written");
  FakeTarget target;
  auto manager = Unwrap(wal::RecoveryManager::Open(Opts(dir), &target));
  EXPECT_EQ(manager->stats().removed_files, 1u);
  EXPECT_EQ(Unwrap(wal::DefaultFs()->ListDir(dir)).size(), 0u);
}

}  // namespace
}  // namespace rtic
