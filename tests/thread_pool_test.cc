// ThreadPool unit tests: every index runs exactly once, batches can be
// reused back-to-back, and degenerate shapes (no workers, empty batch,
// more workers than tasks) all behave.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace rtic {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);

  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);

  std::vector<int> order;
  pool.ParallelFor(5, [&](std::size_t i) {
    // No workers: strictly sequential on the caller, in index order.
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, MoreWorkersThanTasks) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(2);
  pool.ParallelFor(2, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  std::int64_t expected = 0;
  for (std::size_t round = 1; round <= 50; ++round) {
    pool.ParallelFor(round, [&](std::size_t i) {
      sum.fetch_add(static_cast<std::int64_t>(i) + 1,
                    std::memory_order_relaxed);
    });
    expected += static_cast<std::int64_t>(round) *
                static_cast<std::int64_t>(round + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ResultsWrittenByWorkersAreVisibleAfterReturn) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 256;
  std::vector<std::size_t> out(kN, 0);  // plain writes, distinct slots
  pool.ParallelFor(kN, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], i * i) << "index " << i;
  }
}

}  // namespace
}  // namespace rtic
