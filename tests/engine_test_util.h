// Scenario helpers shared by the engine test suites: describe a history as
// full per-state table contents, run it through any checker engine, collect
// the verdict sequence.

#ifndef RTIC_TESTS_ENGINE_TEST_UTIL_H_
#define RTIC_TESTS_ENGINE_TEST_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engines/active/compiler.h"
#include "engines/checker_engine.h"
#include "engines/incremental/engine.h"
#include "engines/naive/naive_engine.h"
#include "monitor/monitor.h"
#include "tests/test_util.h"
#include "tl/parser.h"

namespace rtic {
namespace testing {

/// One history state: a timestamp plus the FULL contents of every table.
struct ScenarioStep {
  Timestamp t;
  std::map<std::string, std::vector<Tuple>> tables;
};

/// Builds a database state with `schemas` and the step's contents.
inline Result<Database> BuildState(
    const std::map<std::string, Schema>& schemas, const ScenarioStep& step) {
  Database db;
  for (const auto& [name, schema] : schemas) {
    RTIC_RETURN_IF_ERROR(db.CreateTable(name, schema));
  }
  for (const auto& [name, rows] : step.tables) {
    RTIC_ASSIGN_OR_RETURN(Table * t, db.GetMutableTable(name));
    for (const Tuple& row : rows) {
      Result<bool> r = t->Insert(row);
      if (!r.ok()) return r.status();
    }
  }
  return db;
}

/// Instantiates a checker of the given kind for `constraint_text`.
inline Result<std::unique_ptr<CheckerEngine>> MakeEngine(
    EngineKind kind, const std::string& constraint_text,
    const std::map<std::string, Schema>& schemas,
    PruningPolicy pruning = PruningPolicy::kFull) {
  RTIC_ASSIGN_OR_RETURN(tl::FormulaPtr formula,
                        tl::ParseFormula(constraint_text));
  tl::PredicateCatalog catalog;
  for (const auto& [name, schema] : schemas) catalog[name] = schema;
  switch (kind) {
    case EngineKind::kNaive: {
      RTIC_ASSIGN_OR_RETURN(std::unique_ptr<NaiveEngine> e,
                            NaiveEngine::Create(*formula, catalog));
      return std::unique_ptr<CheckerEngine>(std::move(e));
    }
    case EngineKind::kIncremental: {
      IncrementalOptions options;
      options.pruning = pruning;
      RTIC_ASSIGN_OR_RETURN(
          std::unique_ptr<IncrementalEngine> e,
          IncrementalEngine::Create(*formula, catalog, options));
      return std::unique_ptr<CheckerEngine>(std::move(e));
    }
    case EngineKind::kActive: {
      ActiveOptions options;
      options.pruning = pruning;
      RTIC_ASSIGN_OR_RETURN(std::unique_ptr<ActiveEngine> e,
                            ActiveEngine::Create(*formula, catalog, options));
      return std::unique_ptr<CheckerEngine>(std::move(e));
    }
  }
  return Status::InvalidArgument("unknown engine kind");
}

/// Runs the scenario, returning the per-state verdicts.
inline Result<std::vector<bool>> RunScenario(
    EngineKind kind, const std::string& constraint_text,
    const std::map<std::string, Schema>& schemas,
    const std::vector<ScenarioStep>& steps,
    PruningPolicy pruning = PruningPolicy::kFull) {
  RTIC_ASSIGN_OR_RETURN(
      std::unique_ptr<CheckerEngine> engine,
      MakeEngine(kind, constraint_text, schemas, pruning));
  std::vector<bool> verdicts;
  for (const ScenarioStep& step : steps) {
    RTIC_ASSIGN_OR_RETURN(Database state, BuildState(schemas, step));
    RTIC_ASSIGN_OR_RETURN(bool holds, engine->OnTransition(state, step.t));
    verdicts.push_back(holds);
  }
  return verdicts;
}

/// Shorthand: unary int tables P, Q and binary R.
inline std::map<std::string, Schema> PQRSchemas() {
  return {{"P", IntSchema({"a"})},
          {"Q", IntSchema({"a"})},
          {"R", IntSchema({"a", "b"})}};
}

}  // namespace testing
}  // namespace rtic

#endif  // RTIC_TESTS_ENGINE_TEST_UTIL_H_
