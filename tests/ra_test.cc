// Unit tests for the relational algebra module, including the zero-column
// boolean-relation conventions every engine relies on.

#include <gtest/gtest.h>

#include "ra/ops.h"
#include "ra/relation.h"
#include "tests/test_util.h"

namespace rtic {
namespace {

using testing::I;
using testing::IntCols;
using testing::IntRelation;
using testing::S;
using testing::T;
using testing::Unwrap;

// ---- Relation basics ---------------------------------------------------------

TEST(RelationTest, TrueAndFalseAreZeroColumnBooleans) {
  EXPECT_TRUE(Relation::True().AsBool());
  EXPECT_FALSE(Relation::False().AsBool());
  EXPECT_EQ(Relation::True().arity(), 0u);
  EXPECT_EQ(Relation::True().size(), 1u);
  EXPECT_EQ(Relation::False().size(), 0u);
}

TEST(RelationTest, MakeRejectsDuplicateColumns) {
  EXPECT_FALSE(Relation::Make(IntCols({"x", "x"})).ok());
  EXPECT_TRUE(Relation::Make(IntCols({"x", "y"})).ok());
}

TEST(RelationTest, InsertTypeChecks) {
  Relation r(IntCols({"x"}));
  RTIC_EXPECT_OK(r.Insert(T(I(1))));
  EXPECT_FALSE(r.Insert(T(S("bad"))).ok());
  EXPECT_FALSE(r.Insert(T(I(1), I(2))).ok());
}

TEST(RelationTest, SortedRowsAreDeterministic) {
  Relation r = IntRelation({"x"}, {{3}, {1}, {2}});
  std::vector<Tuple> rows = r.SortedRows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], T(I(1)));
  EXPECT_EQ(rows[2], T(I(3)));
}

TEST(RelationTest, EqualityIsColumnsAndRows) {
  EXPECT_EQ(IntRelation({"x"}, {{1}, {2}}), IntRelation({"x"}, {{2}, {1}}));
  EXPECT_FALSE(IntRelation({"x"}, {{1}}) == IntRelation({"y"}, {{1}}));
  EXPECT_FALSE(IntRelation({"x"}, {{1}}) == IntRelation({"x"}, {{2}}));
}

// ---- NaturalJoin ---------------------------------------------------------------

TEST(NaturalJoinTest, JoinsOnCommonColumns) {
  Relation a = IntRelation({"x", "y"}, {{1, 10}, {2, 20}});
  Relation b = IntRelation({"y", "z"}, {{10, 100}, {10, 101}, {30, 300}});
  Relation out = Unwrap(ra::NaturalJoin(a, b));
  EXPECT_EQ(out, IntRelation({"x", "y", "z"}, {{1, 10, 100}, {1, 10, 101}}));
}

TEST(NaturalJoinTest, NoCommonColumnsIsCrossProduct) {
  Relation a = IntRelation({"x"}, {{1}, {2}});
  Relation b = IntRelation({"y"}, {{7}});
  Relation out = Unwrap(ra::NaturalJoin(a, b));
  EXPECT_EQ(out, IntRelation({"x", "y"}, {{1, 7}, {2, 7}}));
}

TEST(NaturalJoinTest, TrueIsIdentity) {
  Relation a = IntRelation({"x"}, {{1}, {2}});
  EXPECT_EQ(Unwrap(ra::NaturalJoin(Relation::True(), a)), a);
  // Joining with FALSE annihilates.
  EXPECT_TRUE(Unwrap(ra::NaturalJoin(Relation::False(), a)).empty());
}

TEST(NaturalJoinTest, MismatchedColumnTypesFail) {
  Relation a = IntRelation({"x"}, {{1}});
  Relation b({Column{"x", ValueType::kString}});
  EXPECT_FALSE(ra::NaturalJoin(a, b).ok());
}

TEST(NaturalJoinTest, AllColumnsShared_IsIntersection) {
  Relation a = IntRelation({"x"}, {{1}, {2}, {3}});
  Relation b = IntRelation({"x"}, {{2}, {3}, {4}});
  EXPECT_EQ(Unwrap(ra::NaturalJoin(a, b)), IntRelation({"x"}, {{2}, {3}}));
}

// ---- AntiJoin / SemiJoin -------------------------------------------------------

TEST(AntiJoinTest, RemovesMatchingRows) {
  Relation a = IntRelation({"x", "y"}, {{1, 10}, {2, 20}, {3, 30}});
  Relation b = IntRelation({"x"}, {{2}});
  EXPECT_EQ(Unwrap(ra::AntiJoin(a, b)),
            IntRelation({"x", "y"}, {{1, 10}, {3, 30}}));
}

TEST(AntiJoinTest, NoCommonColumnsActsBoolean) {
  Relation a = IntRelation({"x"}, {{1}, {2}});
  // Non-empty right side with disjoint columns removes everything.
  EXPECT_TRUE(Unwrap(ra::AntiJoin(a, IntRelation({"z"}, {{9}}))).empty());
  // Empty right side keeps everything.
  EXPECT_EQ(Unwrap(ra::AntiJoin(a, IntRelation({"z"}, {}))), a);
  // Zero-column booleans.
  EXPECT_TRUE(Unwrap(ra::AntiJoin(a, Relation::True())).empty());
  EXPECT_EQ(Unwrap(ra::AntiJoin(a, Relation::False())), a);
}

TEST(SemiJoinTest, KeepsMatchingRows) {
  Relation a = IntRelation({"x", "y"}, {{1, 10}, {2, 20}});
  Relation b = IntRelation({"y", "w"}, {{20, 5}});
  EXPECT_EQ(Unwrap(ra::SemiJoin(a, b)), IntRelation({"x", "y"}, {{2, 20}}));
}

TEST(SemiJoinTest, ComplementsAntiJoin) {
  Relation a = IntRelation({"x"}, {{1}, {2}, {3}, {4}});
  Relation b = IntRelation({"x"}, {{2}, {4}, {9}});
  Relation semi = Unwrap(ra::SemiJoin(a, b));
  Relation anti = Unwrap(ra::AntiJoin(a, b));
  EXPECT_EQ(Unwrap(ra::Union(semi, anti)), a);
  EXPECT_EQ(semi.size() + anti.size(), a.size());
}

// ---- Union / Difference / Intersect ----------------------------------------------

TEST(UnionTest, AlignsColumnOrder) {
  Relation a = IntRelation({"x", "y"}, {{1, 2}});
  Relation b = IntRelation({"y", "x"}, {{20, 10}});
  EXPECT_EQ(Unwrap(ra::Union(a, b)),
            IntRelation({"x", "y"}, {{1, 2}, {10, 20}}));
}

TEST(UnionTest, RejectsIncompatibleSchemas) {
  EXPECT_FALSE(ra::Union(IntRelation({"x"}, {}), IntRelation({"y"}, {})).ok());
  EXPECT_FALSE(
      ra::Union(IntRelation({"x"}, {}), IntRelation({"x", "y"}, {})).ok());
}

TEST(DifferenceTest, SubtractsAlignedRows) {
  Relation a = IntRelation({"x", "y"}, {{1, 2}, {3, 4}});
  Relation b = IntRelation({"y", "x"}, {{2, 1}});
  EXPECT_EQ(Unwrap(ra::Difference(a, b)), IntRelation({"x", "y"}, {{3, 4}}));
}

TEST(IntersectTest, KeepsCommonRows) {
  Relation a = IntRelation({"x"}, {{1}, {2}, {3}});
  Relation b = IntRelation({"x"}, {{2}, {3}, {4}});
  EXPECT_EQ(Unwrap(ra::Intersect(a, b)), IntRelation({"x"}, {{2}, {3}}));
}

TEST(BooleanAlgebraOnZeroColumns, WorksAsExpected) {
  Relation t = Relation::True();
  Relation f = Relation::False();
  EXPECT_TRUE(Unwrap(ra::Union(f, t)).AsBool());
  EXPECT_FALSE(Unwrap(ra::Difference(t, t)).AsBool());
  EXPECT_TRUE(Unwrap(ra::Difference(t, f)).AsBool());
  EXPECT_FALSE(Unwrap(ra::Intersect(t, f)).AsBool());
}

// ---- Project / Rename / Select / CrossProduct / FromValues -------------------------

TEST(ProjectTest, CollapsesDuplicates) {
  Relation a = IntRelation({"x", "y"}, {{1, 10}, {1, 20}, {2, 10}});
  EXPECT_EQ(Unwrap(ra::Project(a, {"x"})), IntRelation({"x"}, {{1}, {2}}));
}

TEST(ProjectTest, ReordersColumns) {
  Relation a = IntRelation({"x", "y"}, {{1, 10}});
  EXPECT_EQ(Unwrap(ra::Project(a, {"y", "x"})),
            IntRelation({"y", "x"}, {{10, 1}}));
}

TEST(ProjectTest, ToZeroColumnsYieldsBoolean) {
  EXPECT_TRUE(Unwrap(ra::Project(IntRelation({"x"}, {{1}}), {})).AsBool());
  EXPECT_FALSE(Unwrap(ra::Project(IntRelation({"x"}, {}), {})).AsBool());
}

TEST(ProjectTest, UnknownColumnFails) {
  EXPECT_FALSE(ra::Project(IntRelation({"x"}, {}), {"z"}).ok());
}

TEST(RenameTest, RenamesAndDetectsCollisions) {
  Relation a = IntRelation({"x", "y"}, {{1, 2}});
  Relation renamed = Unwrap(ra::Rename(a, {{"x", "a"}}));
  EXPECT_EQ(renamed, IntRelation({"a", "y"}, {{1, 2}}));
  EXPECT_FALSE(ra::Rename(a, {{"x", "y"}}).ok());
}

TEST(SelectTest, FiltersByPredicate) {
  Relation a = IntRelation({"x"}, {{1}, {2}, {3}});
  Relation out =
      ra::Select(a, [](const Tuple& t) { return t.at(0).AsInt64() >= 2; });
  EXPECT_EQ(out, IntRelation({"x"}, {{2}, {3}}));
}

TEST(CrossProductTest, RequiresDisjointColumns) {
  Relation a = IntRelation({"x"}, {{1}});
  Relation b = IntRelation({"x"}, {{2}});
  EXPECT_FALSE(ra::CrossProduct(a, b).ok());
  EXPECT_EQ(Unwrap(ra::CrossProduct(a, IntRelation({"y"}, {{2}}))),
            IntRelation({"x", "y"}, {{1, 2}}));
}

TEST(FromValuesTest, BuildsSingleColumn) {
  Relation r = ra::FromValues("v", ValueType::kInt64, {I(1), I(2), I(1)});
  EXPECT_EQ(r, IntRelation({"v"}, {{1}, {2}}));
}

}  // namespace
}  // namespace rtic
