// Parallel monitor determinism: ApplyUpdate with num_threads > 1 must
// produce byte-identical violation reports, stats ordering, and database
// state to the serial path, on the same batch stream. Includes a stress
// case (32 constraints x 200 transitions) and a registration-order merge
// check.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "monitor/monitor.h"
#include "tests/test_util.h"

namespace rtic {
namespace {

using testing::I;
using testing::IntSchema;
using testing::T;
using testing::Unwrap;

/// A monitor over int tables P(a), Q(a), R(a, b) with `constraints`
/// registered in order.
std::unique_ptr<ConstraintMonitor> MakeMonitor(
    const std::vector<std::pair<std::string, std::string>>& constraints,
    std::size_t num_threads) {
  MonitorOptions options;
  options.num_threads = num_threads;
  options.max_witnesses = 1000;
  auto monitor = std::make_unique<ConstraintMonitor>(options);
  EXPECT_TRUE(monitor->CreateTable("P", IntSchema({"a"})).ok());
  EXPECT_TRUE(monitor->CreateTable("Q", IntSchema({"a"})).ok());
  EXPECT_TRUE(monitor->CreateTable("R", IntSchema({"a", "b"})).ok());
  for (const auto& [name, text] : constraints) {
    Status s = monitor->RegisterConstraint(name, text);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
  }
  return monitor;
}

/// A varied bank of `n` constraints (temporal and not, forall and not).
std::vector<std::pair<std::string, std::string>> ConstraintBank(int n) {
  std::vector<std::pair<std::string, std::string>> out;
  for (int i = 0; i < n; ++i) {
    const int w = 1 + i / 4;
    std::string text;
    switch (i % 4) {
      case 0:
        text = "forall a: P(a) implies once[0, " + std::to_string(w) +
               "] Q(a)";
        break;
      case 1:
        text = "forall a: P(a) implies P(a) since[0, " + std::to_string(w) +
               "] Q(a)";
        break;
      case 2:
        text = "forall a, b: R(a, b) implies a <= b";
        break;
      default:
        text = "not (exists a: P(a) and not Q(a))";
        break;
    }
    out.emplace_back("c" + std::to_string(i), text);
  }
  return out;
}

/// A deterministic random batch stream over P, Q, R.
std::vector<UpdateBatch> RandomBatches(std::uint64_t seed,
                                       std::size_t length) {
  Rng rng(seed);
  std::vector<UpdateBatch> batches;
  Timestamp t = 0;
  for (std::size_t i = 0; i < length; ++i) {
    t += rng.UniformInt(1, 3);
    UpdateBatch batch(t);
    for (std::int64_t a = 0; a <= 4; ++a) {
      if (rng.Bernoulli(0.25)) batch.Insert("P", T(I(a)));
      if (rng.Bernoulli(0.20)) batch.Delete("P", T(I(a)));
      if (rng.Bernoulli(0.25)) batch.Insert("Q", T(I(a)));
      if (rng.Bernoulli(0.20)) batch.Delete("Q", T(I(a)));
      if (rng.Bernoulli(0.10)) {
        batch.Insert("R", T(I(a), I(rng.UniformInt(0, 4))));
      }
      if (rng.Bernoulli(0.08)) {
        batch.Delete("R", T(I(a), I(rng.UniformInt(0, 4))));
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// Violation reports rendered to a comparable form.
std::vector<std::string> Render(const std::vector<Violation>& violations) {
  std::vector<std::string> out;
  out.reserve(violations.size());
  for (const Violation& v : violations) out.push_back(v.ToString());
  return out;
}

/// Runs the same stream through a serial and an N-thread monitor and
/// asserts identical observable behavior at every transition.
void ExpectSerialParallelIdentical(int num_constraints,
                                   std::size_t num_threads,
                                   std::size_t length,
                                   std::uint64_t seed) {
  const auto constraints = ConstraintBank(num_constraints);
  auto serial = MakeMonitor(constraints, 1);
  auto parallel = MakeMonitor(constraints, num_threads);
  const auto batches = RandomBatches(seed, length);

  for (std::size_t i = 0; i < batches.size(); ++i) {
    SCOPED_TRACE("batch " + std::to_string(i) + " at t=" +
                 std::to_string(batches[i].timestamp()));
    auto v_serial = Unwrap(serial->ApplyUpdate(batches[i]));
    auto v_parallel = Unwrap(parallel->ApplyUpdate(batches[i]));
    ASSERT_EQ(Render(v_serial), Render(v_parallel));
  }

  EXPECT_EQ(serial->total_violations(), parallel->total_violations());
  EXPECT_EQ(serial->TotalStorageRows(), parallel->TotalStorageRows());
  EXPECT_EQ(serial->database().ToString(), parallel->database().ToString());

  // Stats: same constraints in the same registration order with the same
  // counts (timings are machine-dependent and excluded).
  auto s_serial = serial->Stats();
  auto s_parallel = parallel->Stats();
  ASSERT_EQ(s_serial.size(), s_parallel.size());
  for (std::size_t i = 0; i < s_serial.size(); ++i) {
    EXPECT_EQ(s_serial[i].name, s_parallel[i].name);
    EXPECT_EQ(s_serial[i].transitions, s_parallel[i].transitions);
    EXPECT_EQ(s_serial[i].violations, s_parallel[i].violations);
    EXPECT_EQ(s_serial[i].storage_rows, s_parallel[i].storage_rows);
  }
}

TEST(ParallelMonitorTest, TwoThreadsMatchSerial) {
  ExpectSerialParallelIdentical(/*num_constraints=*/6, /*num_threads=*/2,
                                /*length=*/60, /*seed=*/101);
}

TEST(ParallelMonitorTest, EightThreadsMatchSerial) {
  ExpectSerialParallelIdentical(/*num_constraints=*/6, /*num_threads=*/8,
                                /*length=*/60, /*seed=*/202);
}

TEST(ParallelMonitorTest, MoreThreadsThanConstraints) {
  ExpectSerialParallelIdentical(/*num_constraints=*/2, /*num_threads=*/8,
                                /*length=*/40, /*seed=*/303);
}

TEST(ParallelMonitorTest, StressThirtyTwoConstraints200Transitions) {
  ExpectSerialParallelIdentical(/*num_constraints=*/32, /*num_threads=*/8,
                                /*length=*/200, /*seed=*/404);
}

TEST(ParallelMonitorTest, ViolationsMergeInRegistrationOrder) {
  // Both constraints are violated by the same state; the report order must
  // be registration order regardless of which worker finishes first.
  const std::vector<std::pair<std::string, std::string>> constraints = {
      {"first", "forall a: P(a) implies Q(a)"},
      {"second", "not (exists a: P(a))"},
  };
  auto monitor = MakeMonitor(constraints, 8);
  UpdateBatch batch(1);
  batch.Insert("P", T(I(7)));
  auto violations = Unwrap(monitor->ApplyUpdate(batch));
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].constraint_name, "first");
  EXPECT_EQ(violations[1].constraint_name, "second");
}

TEST(ParallelMonitorTest, PureTicksAndEmptyMonitor) {
  // num_threads > 1 with zero constraints and with pure clock ticks.
  MonitorOptions options;
  options.num_threads = 4;
  ConstraintMonitor monitor(options);
  ASSERT_TRUE(monitor.CreateTable("P", IntSchema({"a"})).ok());
  EXPECT_TRUE(Unwrap(monitor.Tick(1)).empty());
  ASSERT_TRUE(
      monitor.RegisterConstraint("c", "forall a: P(a) implies once[0, 2] P(a)")
          .ok());
  EXPECT_TRUE(Unwrap(monitor.Tick(2)).empty());
  EXPECT_EQ(monitor.transition_count(), 2u);
}

TEST(ParallelMonitorTest, LastCheckMicrosIsPopulated) {
  auto monitor = MakeMonitor(ConstraintBank(4), 2);
  for (const UpdateBatch& b : RandomBatches(/*seed=*/505, /*length=*/5)) {
    (void)Unwrap(monitor->ApplyUpdate(b));
  }
  for (const ConstraintStats& s : monitor->Stats()) {
    EXPECT_EQ(s.transitions, 5u);
    EXPECT_GE(s.last_check_micros, 0);
    EXPECT_GE(s.total_check_micros, s.last_check_micros);
  }
}

}  // namespace
}  // namespace rtic
