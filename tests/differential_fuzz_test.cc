// Differential fuzzing: seeded random constraints (tests/formula_gen.h)
// and random delta histories are run simultaneously through
//   * the three standalone engines (naive, incremental, active), and
//   * full monitors in serial (num_threads=1) and parallel (num_threads=8)
//     mode,
// asserting identical verdicts and identical CurrentCounterexamples row
// sets everywhere. A second suite drives the three engine kinds plus the
// parallel monitor over src/workload/generators streams. Every assertion
// message carries the seed so a failure is reproducible from the log.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tests/engine_test_util.h"
#include "tests/formula_gen.h"
#include "workload/generators.h"

namespace rtic {
namespace {

using testing::I;
using testing::IntSchema;
using testing::PQRSchemas;
using testing::RandomConstraint;
using testing::T;
using testing::Unwrap;
using tl::FormulaPtr;

/// One random delta batch over P, Q, R with values in {0, 1, 2}.
UpdateBatch RandomDelta(Rng* rng, Timestamp t) {
  UpdateBatch batch(t);
  for (std::int64_t a = 0; a <= 2; ++a) {
    if (rng->Bernoulli(0.35)) batch.Insert("P", T(I(a)));
    if (rng->Bernoulli(0.25)) batch.Delete("P", T(I(a)));
    if (rng->Bernoulli(0.35)) batch.Insert("Q", T(I(a)));
    if (rng->Bernoulli(0.25)) batch.Delete("Q", T(I(a)));
    for (std::int64_t b = 0; b <= 2; ++b) {
      if (rng->Bernoulli(0.2)) batch.Insert("R", T(I(a), I(b)));
      if (rng->Bernoulli(0.15)) batch.Delete("R", T(I(a), I(b)));
    }
  }
  return batch;
}

/// A monitor over the P/Q/R schema with one registered constraint.
std::unique_ptr<ConstraintMonitor> MakePQRMonitor(
    const tl::Formula& constraint, std::size_t num_threads) {
  MonitorOptions options;
  options.num_threads = num_threads;
  options.max_witnesses = 1000000;  // report full counterexample sets
  auto monitor = std::make_unique<ConstraintMonitor>(options);
  EXPECT_TRUE(monitor->CreateTable("P", IntSchema({"a"})).ok());
  EXPECT_TRUE(monitor->CreateTable("Q", IntSchema({"a"})).ok());
  EXPECT_TRUE(monitor->CreateTable("R", IntSchema({"a", "b"})).ok());
  Status s = monitor->RegisterConstraintFormula("c", constraint);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return monitor;
}

class DifferentialFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DifferentialFuzzTest, EnginesAndParallelMonitorAgree) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const auto schemas = PQRSchemas();
  tl::PredicateCatalog catalog;
  for (const auto& [name, schema] : schemas) catalog[name] = schema;

  for (int round = 0; round < 2; ++round) {
    FormulaPtr constraint = RandomConstraint(&rng);
    const std::string trace = "seed=" + std::to_string(seed) + " round=" +
                              std::to_string(round) + " constraint: " +
                              constraint->ToString();
    SCOPED_TRACE(trace);

    auto naive = Unwrap(NaiveEngine::Create(*constraint, catalog));
    auto incremental =
        Unwrap(IncrementalEngine::Create(*constraint, catalog));
    auto active = Unwrap(ActiveEngine::Create(*constraint, catalog));
    auto serial_monitor = MakePQRMonitor(*constraint, 1);
    auto parallel_monitor = MakePQRMonitor(*constraint, 8);

    // The standalone engines see the same evolving state the monitors
    // maintain internally, reconstructed by applying each delta batch to
    // a mirror database.
    Database mirror;
    for (const auto& [name, schema] : schemas) {
      ASSERT_TRUE(mirror.CreateTable(name, schema).ok());
    }

    Timestamp t = 0;
    for (int step = 0; step < 12; ++step) {
      t += rng.UniformInt(1, 3);
      UpdateBatch batch = RandomDelta(&rng, t);
      ASSERT_TRUE(batch.Apply(&mirror).ok());

      bool v_naive = Unwrap(naive->OnTransition(mirror, t));
      bool v_inc = Unwrap(incremental->OnTransition(mirror, t));
      bool v_act = Unwrap(active->OnTransition(mirror, t));
      auto serial_violations = Unwrap(serial_monitor->ApplyUpdate(batch));
      auto parallel_violations =
          Unwrap(parallel_monitor->ApplyUpdate(batch));

      ASSERT_EQ(v_naive, v_inc) << trace << " naive vs incremental at t="
                                << t;
      ASSERT_EQ(v_naive, v_act) << trace << " naive vs active at t=" << t;
      ASSERT_EQ(v_naive, serial_violations.empty() ? true : false)
          << trace << " naive vs serial monitor at t=" << t;
      ASSERT_EQ(serial_violations.size(), parallel_violations.size())
          << trace << " serial vs parallel monitor at t=" << t;

      if (v_naive) continue;

      // Violated: every checker must report the identical row set.
      Relation c_naive = Unwrap(naive->CurrentCounterexamples(mirror));
      Relation c_inc =
          Unwrap(incremental->CurrentCounterexamples(mirror));
      Relation c_act = Unwrap(active->CurrentCounterexamples(mirror));
      ASSERT_EQ(c_naive, c_inc)
          << trace << " counterexamples naive vs incremental at t=" << t;
      ASSERT_EQ(c_naive, c_act)
          << trace << " counterexamples naive vs active at t=" << t;

      const std::vector<Tuple> expected_rows = c_naive.SortedRows();
      ASSERT_EQ(serial_violations.size(), 1u) << trace;
      ASSERT_EQ(parallel_violations.size(), 1u) << trace;
      for (const auto* violations :
           {&serial_violations, &parallel_violations}) {
        const Violation& v = (*violations)[0];
        EXPECT_EQ(v.timestamp, t) << trace;
        ASSERT_EQ(v.witnesses, expected_rows)
            << trace << " monitor witness rows diverge at t=" << t;
        ASSERT_EQ(v.witness_columns.size(), c_naive.columns().size())
            << trace;
      }
      ASSERT_EQ(serial_violations[0].ToString(),
                parallel_violations[0].ToString())
          << trace << " serial vs parallel report at t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 31));

/// Renders violation reports for sequence comparison.
std::vector<std::string> Render(const std::vector<Violation>& violations) {
  std::vector<std::string> out;
  out.reserve(violations.size());
  for (const Violation& v : violations) out.push_back(v.ToString());
  return out;
}

/// All engine kinds plus the parallel monitor over a generated workload
/// stream: identical violation report sequences everywhere.
void RunWorkloadDifferential(const workload::Workload& w,
                             const std::string& label) {
  struct Variant {
    std::string name;
    EngineKind engine;
    std::size_t num_threads;
  };
  const std::vector<Variant> variants = {
      {"incremental/serial", EngineKind::kIncremental, 1},
      {"incremental/parallel", EngineKind::kIncremental, 8},
      {"naive/serial", EngineKind::kNaive, 1},
      {"naive/parallel", EngineKind::kNaive, 8},
      {"active/parallel", EngineKind::kActive, 8},
  };

  std::vector<std::unique_ptr<ConstraintMonitor>> monitors;
  for (const Variant& variant : variants) {
    MonitorOptions options;
    options.engine = variant.engine;
    options.num_threads = variant.num_threads;
    auto monitor = std::make_unique<ConstraintMonitor>(options);
    for (const auto& [name, schema] : w.schema) {
      ASSERT_TRUE(monitor->CreateTable(name, schema).ok());
    }
    for (const auto& [name, text] : w.constraints) {
      Status s = monitor->RegisterConstraint(name, text);
      ASSERT_TRUE(s.ok()) << label << " " << name << ": " << s.ToString();
    }
    monitors.push_back(std::move(monitor));
  }

  for (std::size_t i = 0; i < w.batches.size(); ++i) {
    SCOPED_TRACE(label + " batch " + std::to_string(i));
    std::vector<std::string> reference;
    for (std::size_t m = 0; m < monitors.size(); ++m) {
      auto violations = Unwrap(monitors[m]->ApplyUpdate(w.batches[i]));
      if (m == 0) {
        reference = Render(violations);
      } else {
        ASSERT_EQ(reference, Render(violations))
            << variants[m].name << " diverges from " << variants[0].name;
      }
    }
  }
}

TEST(WorkloadDifferentialTest, PayrollStreamAllVariantsAgree) {
  workload::PayrollParams params;
  params.num_employees = 20;
  params.length = 120;
  params.seed = 9001;
  RunWorkloadDifferential(workload::MakePayrollWorkload(params),
                          "payroll seed=9001");
}

TEST(WorkloadDifferentialTest, LibraryStreamAllVariantsAgree) {
  workload::LibraryParams params;
  params.num_patrons = 10;
  params.num_books = 30;
  params.length = 100;
  params.seed = 9002;
  RunWorkloadDifferential(workload::MakeLibraryWorkload(params),
                          "library seed=9002");
}

// ---- shared-subplan differentials ------------------------------------------

/// A P/Q/R monitor with several named constraints and configurable
/// subplan sharing.
std::unique_ptr<ConstraintMonitor> MakeSharingMonitor(
    const std::vector<std::pair<std::string, std::string>>& constraints,
    bool shared_subplans, std::size_t num_threads) {
  MonitorOptions options;
  options.shared_subplans = shared_subplans;
  options.num_threads = num_threads;
  options.max_witnesses = 1000000;
  auto monitor = std::make_unique<ConstraintMonitor>(options);
  EXPECT_TRUE(monitor->CreateTable("P", IntSchema({"a"})).ok());
  EXPECT_TRUE(monitor->CreateTable("Q", IntSchema({"a"})).ok());
  EXPECT_TRUE(monitor->CreateTable("R", IntSchema({"a", "b"})).ok());
  for (const auto& [name, text] : constraints) {
    Status s = monitor->RegisterConstraint(name, text);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
  }
  return monitor;
}

class SharedSubplanFuzzTest
    : public ::testing::TestWithParam<std::uint64_t> {};

// Duplicate constraints: the same formula registered under three names.
// With sharing the duplicates coalesce down to one evaluation per
// transition; reports AND full-monitor checkpoints must stay byte-identical
// to the unshared monitor, in both serial and parallel fan-out.
TEST_P(SharedSubplanFuzzTest, DuplicateConstraintsByteIdentical) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  FormulaPtr constraint = RandomConstraint(&rng);
  const std::string text = constraint->ToString();
  const std::string trace = "seed=" + std::to_string(seed) +
                            " constraint: " + text;
  SCOPED_TRACE(trace);
  const std::vector<std::pair<std::string, std::string>> registered = {
      {"c1", text}, {"c2", text}, {"c3", text}};

  auto unshared = MakeSharingMonitor(registered, false, 1);
  auto shared_serial = MakeSharingMonitor(registered, true, 1);
  auto shared_parallel = MakeSharingMonitor(registered, true, 8);

  // Exact duplicates coalesce at least the verdict for every engine after
  // the first (temporal nodes add more).
  const std::vector<ConstraintStats> stats = shared_serial->Stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].shared_subplans, 0u) << trace;
  EXPECT_GE(stats[1].shared_subplans, 1u) << trace;
  EXPECT_GE(stats[2].shared_subplans, 1u) << trace;
  for (const ConstraintStats& s : unshared->Stats()) {
    EXPECT_EQ(s.shared_subplans, 0u) << trace;
  }

  Timestamp t = 0;
  for (int step = 0; step < 12; ++step) {
    t += rng.UniformInt(1, 3);
    UpdateBatch batch = RandomDelta(&rng, t);
    auto v_unshared = Unwrap(unshared->ApplyUpdate(batch));
    auto v_serial = Unwrap(shared_serial->ApplyUpdate(batch));
    auto v_parallel = Unwrap(shared_parallel->ApplyUpdate(batch));
    ASSERT_EQ(Render(v_unshared), Render(v_serial))
        << trace << " shared/serial diverges at t=" << t;
    ASSERT_EQ(Render(v_unshared), Render(v_parallel))
        << trace << " shared/parallel diverges at t=" << t;
  }

  // Checkpoints serialize shared state as if owned: byte-identical blobs.
  const std::string blob_unshared = Unwrap(unshared->SaveState());
  const std::string blob_shared = Unwrap(shared_serial->SaveState());
  ASSERT_EQ(blob_unshared, blob_shared) << trace;

  // A restore detaches engines from shared state; verdicts must still
  // match the unshared monitor afterwards.
  RTIC_ASSERT_OK(shared_serial->LoadState(blob_shared));
  for (const ConstraintStats& s : shared_serial->Stats()) {
    EXPECT_EQ(s.shared_subplans, 0u)
        << trace << " restore must detach " << s.name;
  }
  for (int step = 0; step < 6; ++step) {
    t += rng.UniformInt(1, 3);
    UpdateBatch batch = RandomDelta(&rng, t);
    auto v_unshared = Unwrap(unshared->ApplyUpdate(batch));
    auto v_serial = Unwrap(shared_serial->ApplyUpdate(batch));
    ASSERT_EQ(Render(v_unshared), Render(v_serial))
        << trace << " post-restore diverges at t=" << t;
  }
}

// Distinct constraints with a common temporal subformula: only the
// subformula's state coalesces (no verdict sharing), and unregistering the
// engine that first acquired the shared node (the usual per-transition
// leader) must leave the survivor's verdicts intact.
TEST_P(SharedSubplanFuzzTest, OverlappingSubformulasAgree) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::string trace = "seed=" + std::to_string(seed);
  SCOPED_TRACE(trace);
  // Both constraints contain the subplans "once[0, 5] Q(a)" and
  // "previous P(a)"; the surrounding formulas differ.
  const std::vector<std::pair<std::string, std::string>> registered = {
      {"lhs_p", "forall a: P(a) implies once[0, 5] Q(a) or previous P(a)"},
      {"lhs_r",
       "forall a, b: R(a, b) implies once[0, 5] Q(a) or previous P(a)"}};

  auto unshared = MakeSharingMonitor(registered, false, 1);
  auto shared = MakeSharingMonitor(registered, true, 8);

  const std::vector<ConstraintStats> stats = shared->Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].shared_subplans, 0u);
  // The second engine coalesces both temporal nodes but not the verdict.
  EXPECT_EQ(stats[1].shared_subplans, 2u);

  Timestamp t = 0;
  for (int step = 0; step < 12; ++step) {
    t += rng.UniformInt(1, 3);
    UpdateBatch batch = RandomDelta(&rng, t);
    auto v_unshared = Unwrap(unshared->ApplyUpdate(batch));
    auto v_shared = Unwrap(shared->ApplyUpdate(batch));
    ASSERT_EQ(Render(v_unshared), Render(v_shared))
        << trace << " diverges at t=" << t;
  }

  // Drop the first-registered constraint on both sides; the shared node
  // must keep advancing for the survivor.
  RTIC_ASSERT_OK(unshared->UnregisterConstraint("lhs_p"));
  RTIC_ASSERT_OK(shared->UnregisterConstraint("lhs_p"));
  for (int step = 0; step < 8; ++step) {
    t += rng.UniformInt(1, 3);
    UpdateBatch batch = RandomDelta(&rng, t);
    auto v_unshared = Unwrap(unshared->ApplyUpdate(batch));
    auto v_shared = Unwrap(shared->ApplyUpdate(batch));
    ASSERT_EQ(Render(v_unshared), Render(v_shared))
        << trace << " post-unregister diverges at t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedSubplanFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- erroring engines --------------------------------------------------------

/// Holds on every transition except call number `fail_at`, which errors.
class FailingEngine final : public CheckerEngine {
 public:
  explicit FailingEngine(int fail_at) : fail_at_(fail_at) {}

  Result<bool> OnTransition(const Database&, Timestamp) override {
    if (++calls_ == fail_at_) return Status::Internal("injected check error");
    return true;
  }
  Result<Relation> CurrentCounterexamples(const Database&) override {
    return Relation(std::vector<Column>{});
  }
  std::size_t StorageRows() const override { return 0; }
  const char* name() const override { return "failing"; }

 private:
  const int fail_at_;
  int calls_ = 0;
};

std::unique_ptr<ConstraintMonitor> MakeMonitorWithFailingEngine(
    std::size_t num_threads) {
  MonitorOptions options;
  options.num_threads = num_threads;
  auto monitor = std::make_unique<ConstraintMonitor>(options);
  EXPECT_TRUE(monitor->CreateTable("P", IntSchema({"a"})).ok());
  EXPECT_TRUE(monitor->CreateTable("Q", IntSchema({"a"})).ok());
  // Registration order matters: the failing engine sits BETWEEN two healthy
  // constraints, so a serial path that stopped checking at the error would
  // starve the temporal constraint behind it of a transition.
  RTIC_EXPECT_OK(monitor->RegisterConstraint("a_plain",
                                             "forall a: P(a) implies P(a)"));
  RTIC_EXPECT_OK(monitor->RegisterConstraintEngine(
      "b_failing", std::make_unique<FailingEngine>(/*fail_at=*/2)));
  RTIC_EXPECT_OK(monitor->RegisterConstraint(
      "c_temporal", "forall a: Q(a) implies previous P(a)"));
  return monitor;
}

// One constraint's check error must not desynchronize the OTHER engines
// between the serial and parallel paths. The scenario is built so that
// missing exactly the erroring transition flips a later verdict: P(7) is
// deleted at t=2 (where the failing engine errors), so "previous P(a)" at
// t=3 only reports a violation if the temporal engine saw t=2.
TEST(ErroringEngineDifferentialTest, SerialAndParallelStayIdentical) {
  auto serial = MakeMonitorWithFailingEngine(1);
  auto parallel = MakeMonitorWithFailingEngine(8);

  UpdateBatch insert_p(1);
  insert_p.Insert("P", T(I(7)));
  UpdateBatch delete_p(2);
  delete_p.Delete("P", T(I(7)));
  UpdateBatch insert_q(3);
  insert_q.Insert("Q", T(I(7)));

  // t=1: all healthy.
  EXPECT_TRUE(Unwrap(serial->ApplyUpdate(insert_p)).empty());
  EXPECT_TRUE(Unwrap(parallel->ApplyUpdate(insert_p)).empty());

  // t=2: the failing engine errors; both paths must surface it.
  Result<std::vector<Violation>> serial_err = serial->ApplyUpdate(delete_p);
  Result<std::vector<Violation>> parallel_err =
      parallel->ApplyUpdate(delete_p);
  ASSERT_FALSE(serial_err.ok());
  ASSERT_FALSE(parallel_err.ok());
  EXPECT_EQ(serial_err.status().ToString(), parallel_err.status().ToString());

  // t=3: the temporal constraint must have seen the t=2 deletion in BOTH
  // monitors, so both report the violation.
  auto serial_violations = Unwrap(serial->ApplyUpdate(insert_q));
  auto parallel_violations = Unwrap(parallel->ApplyUpdate(insert_q));
  ASSERT_EQ(serial_violations.size(), 1u)
      << "the temporal engine missed the erroring transition";
  EXPECT_EQ(serial_violations[0].constraint_name, "c_temporal");
  ASSERT_EQ(Render(serial_violations), Render(parallel_violations));

  // And the bookkeeping agrees too.
  const std::vector<ConstraintStats> s_stats = serial->Stats();
  const std::vector<ConstraintStats> p_stats = parallel->Stats();
  ASSERT_EQ(s_stats.size(), p_stats.size());
  for (std::size_t i = 0; i < s_stats.size(); ++i) {
    EXPECT_EQ(s_stats[i].transitions, p_stats[i].transitions)
        << s_stats[i].name;
    EXPECT_EQ(s_stats[i].violations, p_stats[i].violations)
        << s_stats[i].name;
  }
}

}  // namespace
}  // namespace rtic
