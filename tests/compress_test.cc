// Tests for the checkpoint payload codec (common/compress.h): lossless
// round trips over token-shaped and arbitrary data, the stored-mode
// fallback, frame self-description (LooksCompressed), and rejection of
// every kind of damaged frame — a corrupt frame must never decode to
// partial or wrong output.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>

#include "common/compress.h"
#include "tests/test_util.h"

namespace rtic {
namespace {

using testing::Unwrap;

std::string RoundTrip(const std::string& raw) {
  std::string frame = Compress(raw);
  EXPECT_TRUE(LooksCompressed(frame));
  return Unwrap(Decompress(frame));
}

TEST(CompressTest, EmptyInput) { EXPECT_EQ(RoundTrip(""), ""); }

TEST(CompressTest, SingleToken) { EXPECT_EQ(RoundTrip("hello"), "hello"); }

TEST(CompressTest, RepeatedTokensShrink) {
  // Checkpoint payloads are codec tokens: many repeated space-separated
  // words. That is precisely the shape the dictionary+RLE encoder targets.
  std::string raw;
  for (int i = 0; i < 2000; ++i) raw += "5:12345 3:abc ";
  std::string frame = Compress(raw);
  EXPECT_LT(frame.size(), raw.size() / 3)
      << "repetitive token payloads must shrink at least 3x";
  EXPECT_EQ(Unwrap(Decompress(frame)), raw);
}

TEST(CompressTest, PreservesEmptySegmentsAndTrailingSpaces) {
  EXPECT_EQ(RoundTrip("a  b"), "a  b");        // empty token between spaces
  EXPECT_EQ(RoundTrip("a b "), "a b ");        // trailing space
  EXPECT_EQ(RoundTrip(" a"), " a");            // leading space
  EXPECT_EQ(RoundTrip("   "), "   ");          // only spaces
}

TEST(CompressTest, IncompressibleInputUsesStoredModeLosslessly) {
  std::mt19937_64 rng(7);
  std::string raw;
  for (int i = 0; i < 4096; ++i) {
    raw.push_back(static_cast<char>(rng() % 256));
  }
  std::string frame = Compress(raw);
  // Stored mode costs only the fixed header.
  EXPECT_LE(frame.size(), raw.size() + 64);
  EXPECT_EQ(Unwrap(Decompress(frame)), raw);
}

TEST(CompressTest, BinaryBytesInsideTokensSurvive) {
  std::string raw("a\0b \xff\xfe \n\t x", 12);
  EXPECT_EQ(RoundTrip(raw), raw);
}

TEST(CompressTest, RandomTokenStreamsRoundTrip) {
  std::mt19937_64 rng(42);
  const char* words[] = {"8:RTICMON3", "4:base", "12", "0", "3:Emp",
                         "i7",         "",       "s",  "42"};
  for (int iter = 0; iter < 200; ++iter) {
    std::string raw;
    const std::size_t len = rng() % 400;
    for (std::size_t i = 0; i < len; ++i) {
      if (!raw.empty()) raw += ' ';
      raw += words[rng() % (sizeof(words) / sizeof(words[0]))];
    }
    ASSERT_EQ(RoundTrip(raw), raw) << "iteration " << iter;
  }
}

TEST(CompressTest, PlainPayloadsDoNotLookCompressed) {
  EXPECT_FALSE(LooksCompressed(""));
  EXPECT_FALSE(LooksCompressed("8:RTICMON3 4:base 12 "));
  EXPECT_FALSE(LooksCompressed("8:RTICMON2 12 7 0 "));
  EXPECT_FALSE(LooksCompressed("RTICZIP"));  // shorter than the magic
}

TEST(CompressTest, TruncatedFrameRejected) {
  std::string frame = Compress("some payload some payload some payload");
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    Result<std::string> r = Decompress(frame.substr(0, frame.size() - cut));
    EXPECT_FALSE(r.ok()) << "truncating " << cut << " byte(s) must fail";
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(CompressTest, EveryBitFlipRejectedOrLossless) {
  // Flipping any single bit must either be caught (the expected case,
  // via CRC or structural validation) or — never — silently change the
  // decoded payload.
  const std::string raw = "3:abc 3:abc 5:12345 3:abc 0 0 1 ";
  std::string frame = Compress(raw);
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::string damaged = frame;
    damaged[bit / 8] = static_cast<char>(damaged[bit / 8] ^ (1 << (bit % 8)));
    Result<std::string> r = Decompress(damaged);
    if (r.ok()) {
      EXPECT_EQ(r.value(), raw) << "bit " << bit
                                << ": accepted a frame that decodes wrong";
    }
  }
}

TEST(CompressTest, TrailingGarbageRejected) {
  std::string frame = Compress("a b c a b c");
  frame += "x";
  EXPECT_FALSE(Decompress(frame).ok());
}

TEST(CompressTest, GarbageBodyRejected) {
  Result<std::string> r = Decompress("RTICZIP1 this is not a frame body");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompressTest, NestedCompressionIsTransparent) {
  // A compressed frame fed back through Compress still round-trips; the
  // outer layer sees it as incompressible bytes.
  const std::string raw = "token token token token token";
  std::string inner = Compress(raw);
  std::string outer = Compress(inner);
  EXPECT_EQ(Unwrap(Decompress(outer)), inner);
  EXPECT_EQ(Unwrap(Decompress(inner)), raw);
}

}  // namespace
}  // namespace rtic
