// The replication crash matrix: kill either side of a replicated run at
// EVERY mutating operation, and the transport at every outbound frame,
// then require that the surviving configuration converges to the
// uninterrupted reference run verdict-for-verdict and state-for-state.
//
// Three axes:
//
//   A. Primary file-system faults — at every durable write of the
//      primary's monitor AND its shipper (watermark persistence is a
//      fault point like any other), cycling fail/short/bit-flip. When the
//      primary dies the standby is PROMOTED and finishes the workload;
//      its verdicts from that point and its final state must match the
//      reference exactly. Shipped damage (a bit-flipped record mirrored
//      before the CRC check can see it) must fail the session, and
//      promotion's Recover() must truncate it away like any torn tail.
//
//   B. Standby file-system faults — at every mirror write, cycling the
//      same kinds. The standby process "dies"; a NEW standby re-attaches
//      over the same (possibly damaged) mirror directory with a healthy
//      file system and a fresh session, and the run must still converge:
//      every batch replayed, final state identical.
//
//   C. Transport faults — every outbound primary frame is the trigger
//      for drop/truncate (connection killed: promote the lagged standby
//      and finish on it) or duplicate/reorder (silent damage: the run
//      completes and the standby must converge anyway).
//
// RTIC_MATRIX_STRIDE=n subsamples every axis for sanitizer builds.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "monitor/monitor.h"
#include "replication/shipper.h"
#include "replication/standby.h"
#include "replication/transport.h"
#include "tests/test_util.h"
#include "wal/file.h"
#include "workload/generators.h"

namespace rtic {
namespace {

using replication::CreatePipePair;
using replication::FaultInjectingTransport;
using replication::SegmentShipper;
using replication::ShipperOptions;
using replication::StandbyMonitor;
using replication::StandbyOptions;
using replication::Transport;
using replication::TransportFaultKind;
using testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_repl_crash_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

std::string Render(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) out += v.ToString() + "\n";
  return out;
}

std::uint64_t MatrixStride() {
  const char* env = std::getenv("RTIC_MATRIX_STRIDE");
  if (env == nullptr) return 1;
  const long value = std::atol(env);
  return value > 1 ? static_cast<std::uint64_t>(value) : 1;
}

workload::Workload MatrixWorkload() {
  workload::PayrollParams params;
  params.num_employees = 6;
  params.length = 30;
  params.seed = 19;
  return workload::MakePayrollWorkload(params);
}

std::function<Status(ConstraintMonitor*)> ConfigureFor(
    const workload::Workload& wl) {
  return [&wl](ConstraintMonitor* m) -> Status {
    for (const auto& [name, schema] : wl.schema) {
      RTIC_RETURN_IF_ERROR(m->CreateTable(name, schema));
    }
    for (const auto& [name, text] : wl.constraints) {
      RTIC_RETURN_IF_ERROR(m->RegisterConstraint(name, text));
    }
    return Status::OK();
  };
}

// The primary's configuration: aggressive rotation, short delta chains,
// so segment hand-off, chain shipping, and GC all face every fault.
MonitorOptions PrimaryOptions(const std::string& dir, wal::Fs* fs) {
  MonitorOptions options;
  options.wal_dir = dir;
  options.sync_policy = wal::SyncPolicy::kAlways;
  options.checkpoint_interval = 8;
  options.checkpoint_delta_chain = 2;
  options.wal_segment_bytes = 512;
  options.wal_fs = fs;
  return options;
}

std::unique_ptr<ConstraintMonitor> MakePrimary(const workload::Workload& wl,
                                               const std::string& dir,
                                               wal::Fs* fs) {
  auto monitor = std::make_unique<ConstraintMonitor>(PrimaryOptions(dir, fs));
  RTIC_EXPECT_OK(ConfigureFor(wl)(monitor.get()));
  return monitor;
}

StandbyOptions MakeStandbyOptions(const workload::Workload& wl,
                                  const std::string& dir, wal::Fs* fs) {
  StandbyOptions options;
  options.dir = dir;
  options.fs = fs;
  options.configure = ConfigureFor(wl);
  return options;
}

struct Reference {
  std::vector<std::string> verdicts;  // one rendered string per batch
  std::string state;                  // final SaveState
  std::uint64_t primary_ops = 0;      // monitor + shipper fs operations
  std::uint64_t standby_ops = 0;      // mirror fs operations
  std::uint64_t frames = 0;           // outbound primary frames
};

// The uninterrupted replicated run, instrumented with counting-only fault
// injectors on all three axes so each matrix knows its trigger range.
Reference MakeReference(const workload::Workload& wl) {
  Reference ref;
  const std::string proot = MakeTempDir();
  const std::string sroot = MakeTempDir();
  wal::FaultInjectingFs primary_fs(wal::DefaultFs(), 0,
                                   wal::FaultKind::kFailWrite);
  wal::FaultInjectingFs standby_fs(wal::DefaultFs(), 0,
                                   wal::FaultKind::kFailWrite);
  auto [pe, se] = CreatePipePair();
  FaultInjectingTransport transport(std::move(pe), 0,
                                    TransportFaultKind::kDrop);

  auto primary = MakePrimary(wl, proot + "/wal", &primary_fs);
  RTIC_EXPECT_OK(primary->Recover().status());
  ShipperOptions shipper_options;
  shipper_options.dir = proot + "/wal";
  shipper_options.fs = &primary_fs;
  SegmentShipper shipper(shipper_options, &transport);
  auto standby = Unwrap(StandbyMonitor::Attach(
      MakeStandbyOptions(wl, sroot + "/mirror", &standby_fs), se.get()));
  RTIC_EXPECT_OK(shipper.Start());

  for (const UpdateBatch& batch : wl.batches) {
    ref.verdicts.push_back(Render(Unwrap(primary->ApplyUpdate(batch))));
    RTIC_EXPECT_OK(shipper.ShipOnce());
    (void)Unwrap(standby->ProcessPending());
  }
  RTIC_EXPECT_OK(shipper.ShipOnce());
  (void)Unwrap(standby->ProcessPending());
  EXPECT_EQ(standby->replayed_seq(), wl.batches.size());

  ref.state = Unwrap(primary->SaveState());
  ref.primary_ops = primary_fs.ops();
  ref.standby_ops = standby_fs.ops();
  ref.frames = transport.frames();
  std::filesystem::remove_all(proot);
  std::filesystem::remove_all(sroot);
  return ref;
}

// Promotes `standby`, finishes the workload on the promoted monitor, and
// checks the tail verdicts and final state against the reference.
void PromoteAndFinish(StandbyMonitor& standby, const workload::Workload& wl,
                      const Reference& ref, std::size_t acked_bound) {
  auto promoted = Unwrap(standby.Promote());
  const std::size_t recovered = promoted->transition_count();
  ASSERT_LE(recovered, acked_bound + 1)
      << "the standby can never be ahead of the primary's durable batches";
  for (std::size_t j = recovered; j < wl.batches.size(); ++j) {
    const std::string rendered =
        Render(Unwrap(promoted->ApplyUpdate(wl.batches[j])));
    ASSERT_EQ(rendered, ref.verdicts[j]) << "batch " << j;
  }
  ASSERT_EQ(Unwrap(promoted->SaveState()), ref.state);
}

TEST(ReplicationCrashMatrixTest, PrimaryDiesAtEveryFsOpStandbyTakesOver) {
  const workload::Workload wl = MatrixWorkload();
  const Reference ref = MakeReference(wl);
  ASSERT_GT(ref.primary_ops, 2 * wl.batches.size());

  const std::uint64_t stride = MatrixStride();
  for (std::uint64_t trigger = 1; trigger <= ref.primary_ops;
       trigger += stride) {
    const wal::FaultKind kind = static_cast<wal::FaultKind>(trigger % 3);
    SCOPED_TRACE("trigger=" + std::to_string(trigger) +
                 " kind=" + std::to_string(trigger % 3));
    const std::string proot = MakeTempDir();
    const std::string sroot = MakeTempDir();

    wal::FaultInjectingFs fs(wal::DefaultFs(), trigger, kind);
    auto [pe, se] = CreatePipePair();
    auto primary = MakePrimary(wl, proot + "/wal", &fs);
    ShipperOptions shipper_options;
    shipper_options.dir = proot + "/wal";
    shipper_options.fs = &fs;
    SegmentShipper shipper(shipper_options, pe.get());
    auto standby = Unwrap(StandbyMonitor::Attach(
        MakeStandbyOptions(wl, sroot + "/mirror", nullptr), se.get()));

    // Run until the fault surfaces: in the monitor's own durable path, in
    // the shipper's watermark persistence, or — for a bit flip that
    // reached the mirror inside shipped bytes — in the standby's record
    // validation. All three mean "the primary side is gone".
    std::size_t acked = 0;
    bool crashed = false;
    if (!primary->Recover().status().ok() || !shipper.Start().ok()) {
      crashed = true;
    }
    if (!crashed) {
      for (const UpdateBatch& batch : wl.batches) {
        if (!primary->ApplyUpdate(batch).ok()) {
          crashed = true;
          break;
        }
        ++acked;
        if (!shipper.ShipOnce().ok()) {
          crashed = true;
          break;
        }
        if (!standby->ProcessPending().ok()) {
          crashed = true;
          break;
        }
      }
    }
    if (!crashed) {
      ASSERT_EQ(acked, wl.batches.size())
          << "a run can only survive its fault if it hit a retryable "
             "checkpoint write after the last batch was acked";
    }

    PromoteAndFinish(*standby, wl, ref, acked);
    std::filesystem::remove_all(proot);
    std::filesystem::remove_all(sroot);
  }
}

TEST(ReplicationCrashMatrixTest, StandbyDiesAtEveryFsOpAndReattaches) {
  const workload::Workload wl = MatrixWorkload();
  const Reference ref = MakeReference(wl);
  ASSERT_GT(ref.standby_ops, wl.batches.size());

  const std::uint64_t stride = MatrixStride();
  for (std::uint64_t trigger = 1; trigger <= ref.standby_ops;
       trigger += stride) {
    const wal::FaultKind kind = static_cast<wal::FaultKind>(trigger % 3);
    SCOPED_TRACE("trigger=" + std::to_string(trigger) +
                 " kind=" + std::to_string(trigger % 3));
    const std::string proot = MakeTempDir();
    const std::string sroot = MakeTempDir();
    const std::string mirror = sroot + "/mirror";

    auto primary = MakePrimary(wl, proot + "/wal", nullptr);
    RTIC_ASSERT_OK(primary->Recover().status());

    wal::FaultInjectingFs faulty_fs(wal::DefaultFs(), trigger, kind);
    std::unique_ptr<Transport> pe, se;
    std::tie(pe, se) = CreatePipePair();
    std::unique_ptr<SegmentShipper> shipper = std::make_unique<SegmentShipper>(
        ShipperOptions{proot + "/wal"}, pe.get());
    RTIC_ASSERT_OK(shipper->Start());

    // The first standby incarnation runs on the faulty fs; Attach() itself
    // is inside the blast radius.
    std::unique_ptr<StandbyMonitor> standby;
    {
      auto attached = StandbyMonitor::Attach(
          MakeStandbyOptions(wl, mirror, &faulty_fs), se.get());
      if (attached.ok()) standby = std::move(attached).value();
    }

    bool standby_died = standby == nullptr;
    for (const UpdateBatch& batch : wl.batches) {
      Unwrap(primary->ApplyUpdate(batch));
      if (standby_died) continue;  // primary keeps going alone
      if (!shipper->ShipOnce().ok()) {
        // Only the watermark-less sends can fail here: the standby end
        // still holds the pipe open, so a dead shipper means the standby
        // protocol replied garbage — impossible — or the pipe closed.
        standby_died = true;
        continue;
      }
      if (!standby->ProcessPending().ok()) standby_died = true;
    }
    ASSERT_TRUE(standby_died) << "the injected mirror fault must surface";

    // A new standby re-attaches over the same, possibly damaged, mirror
    // with a healthy fs and a fresh session; re-shipping converges it.
    standby.reset();  // old incarnation is gone
    std::tie(pe, se) = CreatePipePair();
    shipper = std::make_unique<SegmentShipper>(
        ShipperOptions{proot + "/wal"}, pe.get());
    auto standby2 = Unwrap(StandbyMonitor::Attach(
        MakeStandbyOptions(wl, mirror, nullptr), se.get()));
    RTIC_ASSERT_OK(shipper->Start());
    for (int i = 0; i < 4; ++i) {
      RTIC_ASSERT_OK(shipper->ShipOnce());
      (void)Unwrap(standby2->ProcessPending());
    }
    ASSERT_EQ(standby2->replayed_seq(), wl.batches.size());
    ASSERT_EQ(Unwrap(standby2->replica().SaveState()), ref.state);
    PromoteAndFinish(*standby2, wl, ref, wl.batches.size());
    std::filesystem::remove_all(proot);
    std::filesystem::remove_all(sroot);
  }
}

TEST(ReplicationCrashMatrixTest, TransportDiesOrDamagesAtEveryFrame) {
  const workload::Workload wl = MatrixWorkload();
  const Reference ref = MakeReference(wl);
  ASSERT_GT(ref.frames, wl.batches.size());

  const std::uint64_t stride = MatrixStride();
  for (std::uint64_t trigger = 1; trigger <= ref.frames; trigger += stride) {
    const auto kind = static_cast<TransportFaultKind>(trigger % 4);
    const bool kills = kind == TransportFaultKind::kDrop ||
                       kind == TransportFaultKind::kTruncate;
    SCOPED_TRACE("trigger=" + std::to_string(trigger) +
                 " kind=" + std::to_string(trigger % 4));
    const std::string proot = MakeTempDir();
    const std::string sroot = MakeTempDir();

    auto [pe, se] = CreatePipePair();
    FaultInjectingTransport transport(std::move(pe), trigger, kind);
    auto primary = MakePrimary(wl, proot + "/wal", nullptr);
    RTIC_ASSERT_OK(primary->Recover().status());
    SegmentShipper shipper(ShipperOptions{proot + "/wal"}, &transport);
    auto standby = Unwrap(StandbyMonitor::Attach(
        MakeStandbyOptions(wl, sroot + "/mirror", nullptr), se.get()));

    std::size_t acked = 0;
    bool session_dead = !shipper.Start().ok();
    for (const UpdateBatch& batch : wl.batches) {
      Unwrap(primary->ApplyUpdate(batch));
      ++acked;
      if (session_dead) continue;  // primary alone; standby lags behind
      if (!shipper.ShipOnce().ok()) {
        session_dead = true;
        continue;
      }
      if (!standby->ProcessPending().ok()) session_dead = true;
    }
    if (kills) {
      ASSERT_TRUE(session_dead) << "a connection-killing fault must surface";
    } else {
      // Silent stream damage: the session survives and converges.
      ASSERT_FALSE(session_dead);
      transport.Close();  // flush a held reordered frame, if any
      (void)Unwrap(standby->ProcessPending());
      ASSERT_EQ(standby->replayed_seq(), wl.batches.size());
    }

    PromoteAndFinish(*standby, wl, ref, acked);
    std::filesystem::remove_all(proot);
    std::filesystem::remove_all(sroot);
  }
}

}  // namespace
}  // namespace rtic
