// Tests for the constraint-language front end: lexer, parser, printer
// round-trips, and the AST utilities.

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tl/ast.h"
#include "tl/lexer.h"
#include "tl/parser.h"

namespace rtic {
namespace tl {
namespace {

using rtic::testing::Unwrap;

// ---- Lexer -----------------------------------------------------------------

TEST(LexerTest, TokenizesPunctuationAndOperators) {
  auto tokens = Unwrap(Tokenize("( ) [ ] , : = != < <= > >="));
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBracket,
                TokenKind::kRBracket, TokenKind::kComma, TokenKind::kColon,
                TokenKind::kEq, TokenKind::kNe, TokenKind::kLt,
                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kEnd}));
}

TEST(LexerTest, KeywordsVersusIdentifiers) {
  auto tokens = Unwrap(Tokenize("not emp once historical"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[2].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdent);  // not the keyword
}

TEST(LexerTest, NumberLiterals) {
  auto tokens = Unwrap(Tokenize("42 -7 3.5 -0.25"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, -7);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 3.5);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, -0.25);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Unwrap(Tokenize("'hello' 'it\\'s' 'a\\\\b'"));
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].text, "a\\b");
}

TEST(LexerTest, CommentsSkippedToEndOfLine) {
  auto tokens = Unwrap(Tokenize("x -- the rest is ignored\ny"));
  ASSERT_EQ(tokens.size(), 3u);  // x, y, end
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].text, "y");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("99999999999999999999").ok());
}

// ---- Parser ----------------------------------------------------------------

TEST(ParserTest, AtomAndComparison) {
  FormulaPtr f = Unwrap(ParseFormula("Emp(e, 100)"));
  EXPECT_EQ(f->kind(), FormulaKind::kAtom);
  EXPECT_EQ(f->predicate(), "Emp");
  ASSERT_EQ(f->terms().size(), 2u);
  EXPECT_TRUE(f->terms()[0].is_variable());
  EXPECT_EQ(f->terms()[1].value(), Value::Int64(100));

  FormulaPtr c = Unwrap(ParseFormula("x <= 5"));
  EXPECT_EQ(c->kind(), FormulaKind::kComparison);
  EXPECT_EQ(c->cmp_op(), CmpOp::kLe);
}

TEST(ParserTest, ZeroArityAtom) {
  FormulaPtr f = Unwrap(ParseFormula("Halted()"));
  EXPECT_EQ(f->kind(), FormulaKind::kAtom);
  EXPECT_TRUE(f->terms().empty());
}

TEST(ParserTest, PrecedenceImpliesIsLoosest) {
  // a() and b() implies c() or d()  ==  (a and b) implies (c or d)
  FormulaPtr f = Unwrap(ParseFormula("a() and b() implies c() or d()"));
  ASSERT_EQ(f->kind(), FormulaKind::kImplies);
  EXPECT_EQ(f->child(0).kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->child(1).kind(), FormulaKind::kOr);
}

TEST(ParserTest, ImpliesIsRightAssociative) {
  FormulaPtr f = Unwrap(ParseFormula("a() implies b() implies c()"));
  ASSERT_EQ(f->kind(), FormulaKind::kImplies);
  EXPECT_EQ(f->child(0).kind(), FormulaKind::kAtom);
  EXPECT_EQ(f->child(1).kind(), FormulaKind::kImplies);
}

TEST(ParserTest, AndBindsTighterThanOr) {
  FormulaPtr f = Unwrap(ParseFormula("a() or b() and c()"));
  ASSERT_EQ(f->kind(), FormulaKind::kOr);
  EXPECT_EQ(f->child(1).kind(), FormulaKind::kAnd);
}

TEST(ParserTest, SinceBindsTighterThanAnd) {
  FormulaPtr f = Unwrap(ParseFormula("a() and b() since c()"));
  ASSERT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->child(1).kind(), FormulaKind::kSince);
}

TEST(ParserTest, SinceIsLeftAssociative) {
  FormulaPtr f = Unwrap(ParseFormula("a() since b() since c()"));
  ASSERT_EQ(f->kind(), FormulaKind::kSince);
  EXPECT_EQ(f->child(0).kind(), FormulaKind::kSince);
}

TEST(ParserTest, UnaryOperatorsBindTightly) {
  FormulaPtr f = Unwrap(ParseFormula("not a() and b()"));
  ASSERT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->child(0).kind(), FormulaKind::kNot);

  FormulaPtr g = Unwrap(ParseFormula("once a() since b()"));
  ASSERT_EQ(g->kind(), FormulaKind::kSince);
  EXPECT_EQ(g->child(0).kind(), FormulaKind::kOnce);
}

TEST(ParserTest, QuantifierBodyExtendsRight) {
  FormulaPtr f = Unwrap(ParseFormula("forall x, y: P(x) implies Q(y)"));
  ASSERT_EQ(f->kind(), FormulaKind::kForall);
  EXPECT_EQ(f->bound_vars(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(f->child(0).kind(), FormulaKind::kImplies);
}

TEST(ParserTest, Intervals) {
  FormulaPtr f = Unwrap(ParseFormula("once[2, 10] P(x)"));
  EXPECT_EQ(f->interval(), TimeInterval(2, 10));

  FormulaPtr g = Unwrap(ParseFormula("once[3, inf] P(x)"));
  EXPECT_EQ(g->interval(), TimeInterval(3, kTimeInfinity));

  FormulaPtr h = Unwrap(ParseFormula("once P(x)"));
  EXPECT_EQ(h->interval(), TimeInterval::All());

  FormulaPtr s = Unwrap(ParseFormula("P(x) since[1, 5] Q(x)"));
  EXPECT_EQ(s->interval(), TimeInterval(1, 5));
}

TEST(ParserTest, BoolConstantsAndBoolTerms) {
  EXPECT_EQ(Unwrap(ParseFormula("true"))->kind(), FormulaKind::kBoolConst);
  EXPECT_TRUE(Unwrap(ParseFormula("true"))->bool_value());
  // In comparison position true/false are constants.
  FormulaPtr f = Unwrap(ParseFormula("flag = true"));
  EXPECT_EQ(f->kind(), FormulaKind::kComparison);
  EXPECT_EQ(f->terms()[1].value(), Value::Bool(true));
}

TEST(ParserTest, StringAndDoubleTerms) {
  FormulaPtr f = Unwrap(ParseFormula("Status(j, 'running') and t > 1.5"));
  EXPECT_EQ(f->kind(), FormulaKind::kAnd);
}

class ParserErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrorTest, Rejects) {
  auto r = ParseFormula(GetParam());
  EXPECT_FALSE(r.ok()) << "input should not parse: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserErrorTest,
    ::testing::Values("", "P(", "P(x", "P(x,)", "forall : P(x)",
                      "forall x P(x)", "x", "x +", "P(x) and", "once[2] P(x)",
                      "once[5, 2] P(x)", "once[-1, 2] P(x)",
                      "P(x) Q(x)", "(P(x)", "P(x))", "x = ", "not",
                      "exists 5: P(x)", "P(x) since", "once[2, ] P(x)"));

// ---- Printer round-trips ----------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParseIsIdentity) {
  FormulaPtr f1 = Unwrap(ParseFormula(GetParam()));
  std::string printed = f1->ToString();
  FormulaPtr f2 = Unwrap(ParseFormula(printed));
  EXPECT_TRUE(f1->Equals(*f2))
      << "original: " << GetParam() << "\nprinted:  " << printed;
  // Printing again is a fixpoint.
  EXPECT_EQ(printed, f2->ToString());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "P(x)", "true", "false", "x = 5", "x != y", "s = 'abc'",
        "t >= 2.5", "flag = true",
        "not P(x)", "not not P(x)",
        "P(x) and Q(x)", "P(x) or Q(x)", "P(x) implies Q(x)",
        "P(x) and Q(x) and R(x)", "P(x) or Q(x) and R(x)",
        "(P(x) or Q(x)) and R(x)",
        "P(x) implies Q(x) implies R(x)",
        "(P(x) implies Q(x)) implies R(x)",
        "forall x: P(x)", "exists x, y: P(x) and Q(y)",
        "forall x: (exists y: P(y)) and Q(x)",
        "not (P(x) and Q(x))",
        "previous P(x)", "previous[1, 3] P(x)",
        "once[0, 10] P(x)", "historically[2, inf] P(x)",
        "P(x) since Q(x)", "P(x) since[1, 5] Q(x)",
        "P(x) since[1, 5] Q(x) since[0, 2] R(x)",
        "once (P(x) and Q(x))",
        "not once[1, 7] P(x)",
        "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies s >= s0",
        "forall a: Ack(a) implies once[0, 10] Raise(a)",
        "forall a: Active(a) implies once[0, 10] not Active(a)",
        "previous once P(x)", "once previous P(x)",
        "historically (P(x) implies Q(x))",
        "eventually[0, 10] P(x)",
        "forall x: P(x) implies eventually[2, 8] Q(x)"));

// ---- AST utilities -----------------------------------------------------------

TEST(AstTest, CloneIsDeepAndEqual) {
  FormulaPtr f = Unwrap(
      ParseFormula("forall x: P(x) and previous[2, 4] Q(x) implies x > 0"));
  FormulaPtr g = f->Clone();
  EXPECT_TRUE(f->Equals(*g));
  EXPECT_NE(f.get(), g.get());
  EXPECT_NE(&f->child(0), &g->child(0));
}

TEST(AstTest, EqualsDistinguishesStructure) {
  FormulaPtr a = Unwrap(ParseFormula("P(x) and Q(x)"));
  FormulaPtr b = Unwrap(ParseFormula("Q(x) and P(x)"));
  FormulaPtr c = Unwrap(ParseFormula("P(x) or Q(x)"));
  FormulaPtr d = Unwrap(ParseFormula("once[1, 2] P(x)"));
  FormulaPtr e = Unwrap(ParseFormula("once[1, 3] P(x)"));
  EXPECT_FALSE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(d->Equals(*e));  // intervals matter
  EXPECT_TRUE(a->Equals(*Unwrap(ParseFormula("P(x) and Q(x)"))));
}

TEST(AstTest, CmpOpHelpers) {
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, -1));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, 0));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, 0));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, 1));
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    for (int c : {-1, 0, 1}) {
      EXPECT_NE(EvalCmp(op, c), EvalCmp(NegateCmp(op), c));
    }
  }
}

TEST(AstTest, IsTemporal) {
  EXPECT_TRUE(IsTemporal(FormulaKind::kPrevious));
  EXPECT_TRUE(IsTemporal(FormulaKind::kOnce));
  EXPECT_TRUE(IsTemporal(FormulaKind::kHistorically));
  EXPECT_TRUE(IsTemporal(FormulaKind::kSince));
  EXPECT_FALSE(IsTemporal(FormulaKind::kAnd));
  EXPECT_FALSE(IsTemporal(FormulaKind::kAtom));
}

}  // namespace
}  // namespace tl
}  // namespace rtic
