// Scenario-registry property battery (the `workload` ctest label): every
// registered family is deterministic in its seed, violation-free when all
// violation dials are zero, monotone in its violation dials, timestamped
// strictly increasingly, registrable on a fresh monitor, and checked
// identically by the naive and incremental engines. docs/SCENARIOS.md
// documents the same families; the registry here is its source of truth.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "tests/test_util.h"
#include "workload/scenarios.h"

namespace rtic {
namespace {

using testing::Unwrap;
using workload::AllScenarios;
using workload::Dial;
using workload::FindScenario;
using workload::MakeScenario;
using workload::ScenarioInfo;
using workload::Workload;

/// Overrides that zero every violation dial (and shorten the run).
std::map<std::string, double> CleanDials(const ScenarioInfo& info,
                                         double length) {
  std::map<std::string, double> overrides{{"length", length}};
  for (const Dial& d : info.dials) {
    if (d.violation_dial) overrides[d.name] = 0.0;
  }
  return overrides;
}

/// Runs a workload through a fresh monitor; returns the full violation
/// transcript (one ToString line per violation, in order).
std::vector<std::string> RunTranscript(const Workload& w, EngineKind kind) {
  MonitorOptions options;
  options.engine = kind;
  ConstraintMonitor monitor(options);
  for (const auto& [name, schema] : w.schema) {
    RTIC_EXPECT_OK(monitor.CreateTable(name, schema));
  }
  for (const auto& [name, text] : w.constraints) {
    Status s = monitor.RegisterConstraint(name, text);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
  }
  std::vector<std::string> transcript;
  for (const UpdateBatch& batch : w.batches) {
    auto v = monitor.ApplyUpdate(batch);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    if (!v.ok()) break;
    for (const Violation& violation : *v) {
      transcript.push_back(violation.ToString());
    }
  }
  return transcript;
}

std::size_t RunViolations(const Workload& w, EngineKind kind) {
  return RunTranscript(w, kind).size();
}

/// Total counterexample witnesses across the run — finer-grained than the
/// per-(constraint, state) report count, so dial effects don't saturate.
std::size_t RunWitnesses(const Workload& w) {
  MonitorOptions options;
  ConstraintMonitor monitor(options);
  for (const auto& [name, schema] : w.schema) {
    RTIC_EXPECT_OK(monitor.CreateTable(name, schema));
  }
  for (const auto& [name, text] : w.constraints) {
    RTIC_EXPECT_OK(monitor.RegisterConstraint(name, text));
  }
  std::size_t witnesses = 0;
  for (const UpdateBatch& batch : w.batches) {
    auto v = monitor.ApplyUpdate(batch);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    if (!v.ok()) break;
    for (const Violation& violation : *v) {
      witnesses += violation.witnesses.size();
    }
  }
  return witnesses;
}

TEST(ScenarioRegistryTest, ListsAllFiveFamilies) {
  std::vector<std::string> names;
  for (const ScenarioInfo& info : AllScenarios()) names.push_back(info.name);
  EXPECT_EQ(names, (std::vector<std::string>{"alarm", "payroll", "library",
                                             "freshness", "commit"}));
  for (const ScenarioInfo& info : AllScenarios()) {
    EXPECT_FALSE(info.summary.empty()) << info.name;
    EXPECT_FALSE(info.dials.empty()) << info.name;
    bool has_violation_dial = false;
    for (const Dial& d : info.dials) {
      EXPECT_FALSE(d.doc.empty()) << info.name << "." << d.name;
      has_violation_dial = has_violation_dial || d.violation_dial;
    }
    EXPECT_TRUE(has_violation_dial) << info.name;
  }
}

TEST(ScenarioRegistryTest, UnknownNamesAndDialsAreRejected) {
  EXPECT_FALSE(MakeScenario("parking").ok());
  EXPECT_FALSE(MakeScenario("freshness", {{"no_such_dial", 1.0}}).ok());
  EXPECT_EQ(FindScenario("nope"), nullptr);
  ASSERT_NE(FindScenario("commit"), nullptr);
}

TEST(ScenarioRegistryTest, DeterministicAcrossRuns) {
  for (const ScenarioInfo& info : AllScenarios()) {
    Workload a = Unwrap(MakeScenario(info.name, {{"length", 60}}));
    Workload b = Unwrap(MakeScenario(info.name, {{"length", 60}}));
    ASSERT_EQ(a.batches.size(), b.batches.size()) << info.name;
    for (std::size_t i = 0; i < a.batches.size(); ++i) {
      EXPECT_EQ(a.batches[i].ToString(), b.batches[i].ToString())
          << info.name << " batch " << i;
    }
    Workload c = Unwrap(MakeScenario(info.name, {{"length", 60}, {"seed", 7}}));
    bool differs = false;
    for (std::size_t i = 0; i < std::min(a.batches.size(), c.batches.size());
         ++i) {
      if (a.batches[i].ToString() != c.batches[i].ToString()) {
        differs = true;
        break;
      }
    }
    EXPECT_TRUE(differs) << info.name << ": seed should change the stream";
  }
}

TEST(ScenarioRegistryTest, TimestampsStrictlyIncrease) {
  for (const ScenarioInfo& info : AllScenarios()) {
    Workload w = Unwrap(MakeScenario(info.name));
    EXPECT_EQ(w.batches.size(), 200u) << info.name;
    Timestamp prev = -1;
    for (const UpdateBatch& b : w.batches) {
      EXPECT_GT(b.timestamp(), prev) << info.name;
      prev = b.timestamp();
    }
  }
}

TEST(ScenarioRegistryTest, RegistersOnFreshMonitor) {
  for (const ScenarioInfo& info : AllScenarios()) {
    Workload w = Unwrap(MakeScenario(info.name, {{"length", 1}}));
    ConstraintMonitor monitor((MonitorOptions()));
    for (const auto& [name, schema] : w.schema) {
      RTIC_EXPECT_OK(monitor.CreateTable(name, schema));
    }
    for (const auto& [name, text] : w.constraints) {
      Status s = monitor.RegisterConstraint(name, text);
      EXPECT_TRUE(s.ok()) << info.name << "/" << name << ": " << s.ToString();
    }
    EXPECT_EQ(monitor.ConstraintNames().size(), w.constraints.size())
        << info.name;
  }
}

TEST(ScenarioRegistryTest, ZeroDialsMeanZeroViolationsOnEveryFamily) {
  for (const ScenarioInfo& info : AllScenarios()) {
    Workload w = Unwrap(MakeScenario(info.name, CleanDials(info, 120)));
    EXPECT_EQ(RunViolations(w, EngineKind::kIncremental), 0u) << info.name;
  }
}

TEST(ScenarioRegistryTest, EveryViolationDialInjectsViolations) {
  for (const ScenarioInfo& info : AllScenarios()) {
    for (const Dial& d : info.dials) {
      if (!d.violation_dial) continue;
      std::map<std::string, double> overrides = CleanDials(info, 150);
      overrides[d.name] = 0.6;
      Workload w = Unwrap(MakeScenario(info.name, overrides));
      EXPECT_GT(RunViolations(w, EngineKind::kIncremental), 0u)
          << info.name << "." << d.name;
    }
  }
}

// The freshness and commit generators draw every delay candidate whether or
// not it is used, so two runs at different dial values share one RNG stream
// and the set of late events only grows with the dial.
TEST(ScenarioRegistryTest, ViolationDialsAreMonotone) {
  struct Case {
    const char* scenario;
    const char* dial;
    const char* size_dial;  // shrunk so one violation per state cannot
    double size;            // saturate the count and flatten the curve
  };
  for (const Case& c : {Case{"freshness", "stale_prob", "num_sensors", 5},
                        Case{"commit", "late_vote_prob", "begin_prob", 0.25},
                        Case{"commit", "late_decide_prob", "begin_prob",
                             0.25}}) {
    const ScenarioInfo* info = FindScenario(c.scenario);
    ASSERT_NE(info, nullptr);
    std::size_t prev = 0;
    bool first = true;
    for (double level : {0.0, 0.3, 0.8}) {
      std::map<std::string, double> overrides = CleanDials(*info, 150);
      overrides[c.size_dial] = c.size;
      overrides[c.dial] = level;
      std::size_t count =
          RunWitnesses(Unwrap(MakeScenario(c.scenario, overrides)));
      if (first) {
        EXPECT_EQ(count, 0u) << c.scenario << "." << c.dial;
      } else {
        EXPECT_GE(count, prev) << c.scenario << "." << c.dial << " at "
                               << level;
      }
      prev = count;
      first = false;
    }
    EXPECT_GT(prev, 0u) << c.scenario << "." << c.dial;
  }
}

// The differential the whole suite leans on: for every family, at default
// (violating) dials, the naive and incremental engines produce identical
// violation transcripts, byte for byte.
TEST(ScenarioDifferentialTest, NaiveMatchesIncrementalPerFamily) {
  for (const ScenarioInfo& info : AllScenarios()) {
    Workload w = Unwrap(MakeScenario(info.name, {{"length", 80}}));
    std::vector<std::string> inc = RunTranscript(w, EngineKind::kIncremental);
    std::vector<std::string> naive = RunTranscript(w, EngineKind::kNaive);
    EXPECT_EQ(inc, naive) << info.name;
  }
}

TEST(ScenarioDifferentialTest, ActiveMatchesIncrementalOnNewFamilies) {
  for (const char* name : {"freshness", "commit"}) {
    Workload w = Unwrap(MakeScenario(name, {{"length", 80}}));
    std::vector<std::string> inc = RunTranscript(w, EngineKind::kIncremental);
    std::vector<std::string> active = RunTranscript(w, EngineKind::kActive);
    EXPECT_EQ(inc, active) << name;
  }
}

// Violation signatures: the dial that was turned is the constraint that
// fires (docs/SCENARIOS.md documents these signatures).
TEST(ScenarioSignatureTest, FreshnessDialsHitTheirConstraints) {
  const ScenarioInfo* info = FindScenario("freshness");
  ASSERT_NE(info, nullptr);

  std::map<std::string, double> stale = CleanDials(*info, 150);
  stale["stale_prob"] = 0.5;
  for (const std::string& line :
       RunTranscript(Unwrap(MakeScenario("freshness", stale)),
                     EngineKind::kIncremental)) {
    EXPECT_NE(line.find("no_stale_reads"), std::string::npos) << line;
  }

  std::map<std::string, double> early = CleanDials(*info, 150);
  early["early_decommission_prob"] = 1.0;
  early["decommission_prob"] = 0.2;
  for (const std::string& line :
       RunTranscript(Unwrap(MakeScenario("freshness", early)),
                     EngineKind::kIncremental)) {
    EXPECT_NE(line.find("decommission_quiesced"), std::string::npos) << line;
  }
}

TEST(ScenarioSignatureTest, CommitLateVotesHitVoteWindow) {
  const ScenarioInfo* info = FindScenario("commit");
  ASSERT_NE(info, nullptr);
  std::map<std::string, double> late = CleanDials(*info, 150);
  late["late_vote_prob"] = 0.5;
  std::vector<std::string> transcript = RunTranscript(
      Unwrap(MakeScenario("commit", late)), EngineKind::kIncremental);
  ASSERT_FALSE(transcript.empty());
  bool saw_vote_window = false;
  for (const std::string& line : transcript) {
    saw_vote_window =
        saw_vote_window || line.find("vote_in_window") != std::string::npos;
  }
  EXPECT_TRUE(saw_vote_window);
}

TEST(ScenarioSignatureTest, CommitLateDecisionsHitDecideDeadline) {
  const ScenarioInfo* info = FindScenario("commit");
  ASSERT_NE(info, nullptr);
  std::map<std::string, double> late = CleanDials(*info, 150);
  late["late_decide_prob"] = 0.5;
  std::vector<std::string> transcript = RunTranscript(
      Unwrap(MakeScenario("commit", late)), EngineKind::kIncremental);
  ASSERT_FALSE(transcript.empty());
  bool saw_decide = false;
  for (const std::string& line : transcript) {
    saw_decide = saw_decide ||
                 line.find("decide_follows_last_vote") != std::string::npos;
  }
  EXPECT_TRUE(saw_decide);
}

}  // namespace
}  // namespace rtic
