// Differential battery for the columnar anchor store (anchor_store.h).
//
// The store replaces the eager map representation (valuation -> timestamp
// vector, pruned whole every transition, current rebuilt from scratch) with
// a dictionary + arena + expiry/maturity wheel that visits only slots whose
// state can change. These tests pin the store to a reference model that
// replays the eager semantics literally:
//
//   * randomized anchor/prune/survivor-filter sequences across all three
//     pruning regimes (finite-window full pruning, expiry-only ablation,
//     unbounded upper bound) must produce identical tables, identical
//     published current relations, and identical mutation deltas — the
//     deltas drive the delta-checkpoint dirty bits, so over- OR
//     under-reporting would change RTICINCD1 bytes;
//   * the checkpoint encoding must stay byte-identical to the former
//     WriteAnchors map encoding;
//   * a store rebuilt through DecodeReplace + Rehydrate must continue
//     evolving exactly like the original (the wheel is derived state);
//   * engine-level: shared-subplan leaders/followers and a shadow engine
//     maintained purely through delta checkpoints stay byte-identical.

#include "engines/incremental/anchor_store.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/rng.h"
#include "engines/incremental/engine.h"
#include "engines/incremental/pruning.h"
#include "engines/incremental/subplan_registry.h"
#include "ra/relation.h"
#include "storage/codec.h"
#include "tests/engine_test_util.h"
#include "tests/test_util.h"
#include "tl/parser.h"

namespace rtic {
namespace {

using inc::AnchorStore;
using testing::I;
using testing::IntCols;
using testing::IntSchema;
using testing::PQRSchemas;
using testing::ScenarioStep;
using testing::T;
using testing::Unwrap;

// ---- reference model ----------------------------------------------------

// Literal replay of the pre-columnar per-transition tail: survivor-filter by
// scanning every entry, append, prune every entry, rebuild `current` from
// scratch, and detect changes by whole-structure comparison.
struct ReferenceStore {
  TimeInterval interval;
  PruningPolicy policy = PruningPolicy::kFull;
  std::vector<std::size_t> projection;  // empty + identity=true for `once`
  bool identity = true;

  std::map<Tuple, std::vector<Timestamp>> anchors;
  std::set<Tuple> current;
  bool anchors_changed = false;
  bool current_changed = false;

  bool Survives(const Tuple& val, const Relation& lhs) const {
    if (identity) return lhs.Contains(val);
    std::vector<Value> proj;
    for (std::size_t c : projection) proj.push_back(val.at(c));
    return lhs.Contains(Tuple(std::move(proj)));
  }

  void Transition(const Relation* lhs, const std::vector<Tuple>& appends,
                  Timestamp t) {
    const auto before_anchors = anchors;
    const auto before_current = current;
    if (lhs != nullptr) {
      for (auto it = anchors.begin(); it != anchors.end();) {
        if (!Survives(it->first, *lhs)) {
          it = anchors.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const Tuple& row : appends) anchors[row].push_back(t);
    current.clear();
    for (auto it = anchors.begin(); it != anchors.end();) {
      PruneTimestamps(&it->second, t, interval, policy);
      if (it->second.empty()) {
        it = anchors.erase(it);
        continue;
      }
      if (AnyInWindow(it->second, t, interval)) current.insert(it->first);
      ++it;
    }
    anchors_changed = anchors != before_anchors;
    current_changed = current != before_current;
  }

  // The former WriteAnchors encoding: map iteration is already sorted.
  void Encode(StateWriter* w) const {
    w->WriteSize(anchors.size());
    for (const auto& [val, ts] : anchors) {
      w->WriteTuple(val);
      w->WriteSize(ts.size());
      for (Timestamp x : ts) w->WriteInt(x);
    }
  }
};

std::vector<std::pair<Tuple, std::vector<Timestamp>>> AsSorted(
    const std::map<Tuple, std::vector<Timestamp>>& m) {
  return {m.begin(), m.end()};
}

std::vector<Tuple> AsSorted(const std::set<Tuple>& s) {
  return {s.begin(), s.end()};
}

struct Regime {
  const char* name;
  TimeInterval interval;
  PruningPolicy policy;
};

const Regime kRegimes[] = {
    {"full[0,8]", TimeInterval(0, 8), PruningPolicy::kFull},
    {"full[3,12]", TimeInterval(3, 12), PruningPolicy::kFull},
    {"full[5,5]", TimeInterval(5, 5), PruningPolicy::kFull},
    {"full[2,inf)", TimeInterval(2, kTimeInfinity), PruningPolicy::kFull},
    {"full[0,inf)", TimeInterval(0, kTimeInfinity), PruningPolicy::kFull},
    {"expiry[0,8]", TimeInterval(0, 8), PruningPolicy::kExpiryOnly},
    {"expiry[3,12]", TimeInterval(3, 12), PruningPolicy::kExpiryOnly},
};

enum class Mode { kOnce, kSinceIdentity, kSinceProjected };

// Drives a store and the reference model in lockstep over a random
// anchor/filter/advance sequence, checking tables, published currents,
// mutation deltas, counters, and (periodically) encoded bytes.
void RunDifferential(const Regime& regime, Mode mode, std::uint64_t seed,
                     int steps) {
  SCOPED_TRACE(std::string(regime.name) + " seed=" + std::to_string(seed));
  const bool since = mode != Mode::kOnce;
  const bool projected = mode == Mode::kSinceProjected;

  // Valuation universe: unary ints for identity modes; pairs whose second
  // component is the lhs key for the projected mode.
  std::vector<Tuple> universe;
  if (projected) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 4; ++j) universe.push_back(T(I(i), I(j)));
    }
  } else {
    for (int i = 0; i < 8; ++i) universe.push_back(T(I(i)));
  }

  AnchorStore store;
  store.Configure(regime.interval, regime.policy);
  ReferenceStore ref;
  ref.interval = regime.interval;
  ref.policy = regime.policy;
  if (since) {
    std::vector<std::size_t> proj;
    if (projected) proj = {1};
    else proj = {0};
    store.ConfigureSince(proj, /*identity=*/!projected);
    ref.projection = proj;
    ref.identity = !projected;
  }

  Relation current(IntCols(projected ? std::vector<std::string>{"a", "b"}
                                     : std::vector<std::string>{"a"}));
  auto make_lhs = [&](Rng* r) {
    Relation lhs(IntCols({"k"}));
    for (int k = 0; k < (projected ? 4 : 8); ++k) {
      if (r->Bernoulli(0.7)) lhs.InsertUnchecked(T(I(k)));
    }
    return lhs;
  };

  Rng rng(seed);
  Relation lhs = make_lhs(&rng);
  Timestamp t = 0;
  for (int step = 0; step < steps; ++step) {
    SCOPED_TRACE("step=" + std::to_string(step));
    // Occasional large jumps force multi-bucket wheel catch-up.
    t += 1 + (rng.Uniform(10) == 0 ? 15 + static_cast<Timestamp>(rng.Uniform(20))
                                   : static_cast<Timestamp>(rng.Uniform(3)));
    std::vector<Tuple> appends;
    for (const Tuple& v : universe) {
      if (rng.Bernoulli(0.3)) appends.push_back(v);
    }
    if (since) {
      // Keeping the same Relation object (shared row storage) exercises the
      // survivor-filter identity fast path; rebuilding forces a full scan.
      if (rng.Bernoulli(0.5)) lhs = make_lhs(&rng);
      store.FilterSurvivors(lhs, &current);
    }
    for (const Tuple& v : appends) store.Append(v, t);
    AnchorStore::Delta delta = store.Advance(t, &current);
    ref.Transition(since ? &lhs : nullptr, appends, t);

    ASSERT_EQ(store.Snapshot(), AsSorted(ref.anchors));
    ASSERT_EQ(current.SortedRows(), AsSorted(ref.current));
    ASSERT_EQ(store.valuations(), ref.anchors.size());
    std::size_t want_ts = 0;
    for (const auto& [val, ts] : ref.anchors) want_ts += ts.size();
    ASSERT_EQ(store.timestamps(), want_ts);
    // The mutation-driven delta must agree with whole-state comparison —
    // these bits choose what a delta checkpoint serializes.
    ASSERT_EQ(delta.anchors_changed, ref.anchors_changed);
    ASSERT_EQ(delta.current_changed, ref.current_changed);

    if (step % 7 == 0) {
      StateWriter got, want;
      store.EncodeSorted(&got);
      ref.Encode(&want);
      ASSERT_EQ(got.str(), want.str());
    }
  }
}

TEST(AnchorStoreDifferentialTest, OnceMatchesEagerReference) {
  for (const Regime& regime : kRegimes) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      RunDifferential(regime, Mode::kOnce, seed, 120);
    }
  }
}

TEST(AnchorStoreDifferentialTest, SinceIdentityMatchesEagerReference) {
  for (const Regime& regime : kRegimes) {
    for (std::uint64_t seed : {4u, 5u, 6u}) {
      RunDifferential(regime, Mode::kSinceIdentity, seed, 120);
    }
  }
}

TEST(AnchorStoreDifferentialTest, SinceProjectedMatchesEagerReference) {
  for (const Regime& regime : kRegimes) {
    for (std::uint64_t seed : {7u, 8u}) {
      RunDifferential(regime, Mode::kSinceProjected, seed, 120);
    }
  }
}

// A decoded + rehydrated store is indistinguishable from the original from
// then on: the wheel and membership flags are fully derived state.
TEST(AnchorStoreDifferentialTest, DecodedStoreContinuesIdentically) {
  for (const Regime& regime : kRegimes) {
    SCOPED_TRACE(regime.name);
    AnchorStore store;
    store.Configure(regime.interval, regime.policy);
    ReferenceStore ref;
    ref.interval = regime.interval;
    ref.policy = regime.policy;
    Relation current(IntCols({"a"}));

    Rng rng(11);
    Timestamp t = 0;
    auto drive = [&](AnchorStore* s, Relation* cur, Timestamp now,
                     const std::vector<Tuple>& appends) {
      for (const Tuple& v : appends) s->Append(v, now);
      return s->Advance(now, cur);
    };
    std::vector<Tuple> universe;
    for (int i = 0; i < 8; ++i) universe.push_back(T(I(i)));

    for (int step = 0; step < 40; ++step) {
      t += 1 + static_cast<Timestamp>(rng.Uniform(4));
      std::vector<Tuple> appends;
      for (const Tuple& v : universe) {
        if (rng.Bernoulli(0.3)) appends.push_back(v);
      }
      drive(&store, &current, t, appends);
      ref.Transition(nullptr, appends, t);
    }

    // Clone through the checkpoint codec.
    StateWriter w;
    store.EncodeSorted(&w);
    const std::string bytes = w.str();
    AnchorStore restored;
    restored.Configure(regime.interval, regime.policy);
    StateReader r(bytes);
    RTIC_ASSERT_OK(restored.DecodeReplace(&r));
    EXPECT_TRUE(r.AtEnd());
    Relation restored_current(IntCols({"a"}));
    for (const Tuple& row : ref.current) {
      restored_current.InsertUnchecked(row);
    }
    restored.Rehydrate(t, restored_current);
    ASSERT_EQ(restored.Snapshot(), store.Snapshot());

    // Both evolve identically afterwards — including long quiet gaps that
    // only the (rebuilt) wheel can handle correctly.
    for (int step = 0; step < 40; ++step) {
      SCOPED_TRACE("post-restore step=" + std::to_string(step));
      t += 1 + (step % 9 == 0 ? 12 : static_cast<Timestamp>(rng.Uniform(4)));
      std::vector<Tuple> appends;
      for (const Tuple& v : universe) {
        if (rng.Bernoulli(0.2)) appends.push_back(v);
      }
      AnchorStore::Delta d1 = drive(&store, &current, t, appends);
      AnchorStore::Delta d2 =
          drive(&restored, &restored_current, t, appends);
      ref.Transition(nullptr, appends, t);
      ASSERT_EQ(store.Snapshot(), AsSorted(ref.anchors));
      ASSERT_EQ(restored.Snapshot(), store.Snapshot());
      ASSERT_EQ(restored_current.SortedRows(), current.SortedRows());
      ASSERT_EQ(d1.anchors_changed, d2.anchors_changed);
      ASSERT_EQ(d1.current_changed, d2.current_changed);
    }
  }
}

TEST(AnchorStoreCodecTest, RejectsDuplicateValuations) {
  StateWriter w;
  w.WriteSize(2);
  w.WriteTuple(T(I(1)));
  w.WriteSize(1);
  w.WriteInt(5);
  w.WriteTuple(T(I(1)));
  w.WriteSize(1);
  w.WriteInt(6);
  AnchorStore store;
  store.Configure(TimeInterval(0, 8), PruningPolicy::kFull);
  StateReader r(w.str());
  Status s = store.DecodeReplace(&r);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate checkpoint anchor valuation"),
            std::string::npos);
}

TEST(AnchorStoreCodecTest, RejectsNonAscendingTimestamps) {
  StateWriter w;
  w.WriteSize(1);
  w.WriteTuple(T(I(1)));
  w.WriteSize(2);
  w.WriteInt(5);
  w.WriteInt(5);
  AnchorStore store;
  store.Configure(TimeInterval(0, 8), PruningPolicy::kFull);
  StateReader r(w.str());
  Status s = store.DecodeReplace(&r);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("checkpoint anchor timestamps not ascending"),
            std::string::npos);
}

// ---- Relation::Erase (new primitive the store's publication relies on) --

TEST(RelationEraseTest, MaintainsMembershipAndIndexes) {
  Relation rel(IntCols({"a", "b"}));
  rel.InsertUnchecked(T(I(1), I(1)));
  rel.InsertUnchecked(T(I(1), I(2)));
  rel.InsertUnchecked(T(I(2), I(1)));
  // Build an index before erasing so index maintenance is observable.
  (void)rel.GetIndex({0});

  EXPECT_TRUE(rel.Erase(T(I(1), I(1))));
  EXPECT_FALSE(rel.Erase(T(I(1), I(1))));  // already gone
  EXPECT_FALSE(rel.Contains(T(I(1), I(1))));
  EXPECT_TRUE(rel.Contains(T(I(1), I(2))));
  EXPECT_EQ(rel.size(), 2u);

  const Relation::Index& idx = rel.GetIndex({0});
  const std::size_t h1 = HashTupleKey(T(I(1)), {0});
  auto it = idx.buckets.find(h1);
  // The erased row's pointer must be gone from its bucket.
  std::size_t live = 0;
  if (it != idx.buckets.end()) {
    for (const Tuple* row : it->second) {
      EXPECT_NE(*row, T(I(1), I(1)));
      ++live;
    }
  }
  EXPECT_EQ(live, 1u);  // (1,2) remains probeable

  // Copy-on-write: erasing from a copy must not disturb the original.
  Relation copy = rel;
  EXPECT_TRUE(copy.Erase(T(I(2), I(1))));
  EXPECT_TRUE(rel.Contains(T(I(2), I(1))));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(copy.size(), 1u);

  // Erasing the last row of a bucket removes the bucket entirely.
  EXPECT_TRUE(copy.Erase(T(I(1), I(2))));
  EXPECT_TRUE(copy.empty());
}

// ---- engine level -------------------------------------------------------

tl::PredicateCatalog PQRCatalog() {
  tl::PredicateCatalog catalog;
  for (const auto& [name, schema] : PQRSchemas()) catalog[name] = schema;
  return catalog;
}

Database RandomPQState(Rng* rng, double p) {
  Database db = Unwrap(testing::BuildState(PQRSchemas(), ScenarioStep{}));
  Table* pt = Unwrap(db.GetMutableTable("P"));
  Table* qt = Unwrap(db.GetMutableTable("Q"));
  for (int v = 0; v < 6; ++v) {
    if (rng->Bernoulli(p)) (void)Unwrap(pt->Insert(T(I(v))));
    if (rng->Bernoulli(p)) (void)Unwrap(qt->Insert(T(I(v))));
  }
  return db;
}

// Shared-subplan leaders and followers must stay verdict- and
// checkpoint-byte-identical to an unshared engine; followers reuse the
// leader's columnar stores instead of maintaining their own.
TEST(AnchorStoreEngineTest, SharedSubplansStayByteIdenticalToUnshared) {
  const std::string text = "forall a: P(a) implies P(a) since[1, 6] Q(a)";
  tl::PredicateCatalog catalog = PQRCatalog();
  tl::FormulaPtr formula = Unwrap(tl::ParseFormula(text));

  auto registry = std::make_shared<inc::SubplanRegistry>();
  IncrementalOptions shared_opts;
  shared_opts.registry = registry;
  auto leader = Unwrap(IncrementalEngine::Create(*formula, catalog,
                                                 shared_opts));
  auto follower = Unwrap(IncrementalEngine::Create(*formula, catalog,
                                                   shared_opts));
  ASSERT_GT(follower->SharedSubplans(), 0u);
  auto solo = Unwrap(IncrementalEngine::Create(*formula, catalog));

  Rng rng(21);
  Timestamp t = 0;
  for (int step = 0; step < 50; ++step) {
    t += 1 + static_cast<Timestamp>(rng.Uniform(3));
    Database db = RandomPQState(&rng, 0.4);
    const bool v_leader = Unwrap(leader->OnTransition(db, t));
    const bool v_follower = Unwrap(follower->OnTransition(db, t));
    const bool v_solo = Unwrap(solo->OnTransition(db, t));
    ASSERT_EQ(v_leader, v_solo) << "step " << step;
    ASSERT_EQ(v_follower, v_solo) << "step " << step;
    if (step % 10 == 0) {
      const std::string want = Unwrap(solo->SaveState());
      ASSERT_EQ(Unwrap(leader->SaveState()), want) << "step " << step;
      ASSERT_EQ(Unwrap(follower->SaveState()), want) << "step " << step;
    }
  }
}

// Regression for the delta-checkpoint contract: a temporal node whose
// anchors and current relation did not change since the last save must not
// be serialized — and with an unbounded upper bound the store must
// recognize re-appeared anchors as no-ops (the earliest anchor dominates).
TEST(AnchorStoreEngineTest, SettledNodesStayOutOfDeltas) {
  const std::string text = "forall a: P(a) implies once[0, inf] Q(a)";
  tl::PredicateCatalog catalog = PQRCatalog();
  tl::FormulaPtr formula = Unwrap(tl::ParseFormula(text));
  auto engine = Unwrap(IncrementalEngine::Create(*formula, catalog));
  engine->BeginDeltaTracking();

  Database db = Unwrap(testing::BuildState(
      PQRSchemas(), ScenarioStep{0, {{"Q", {T(I(1))}}, {"P", {T(I(1))}}}}));
  (void)Unwrap(engine->OnTransition(db, 1));
  (void)Unwrap(engine->SaveStateDelta());
  engine->MarkStateSaved();

  // Same state re-applied: Q(1)'s anchor is dominated by the existing one,
  // so the once-node is untouched; only the clock advances.
  (void)Unwrap(engine->OnTransition(db, 2));
  const std::string quiet_a = Unwrap(engine->SaveStateDelta());
  engine->MarkStateSaved();
  (void)Unwrap(engine->OnTransition(db, 3));
  const std::string quiet_b = Unwrap(engine->SaveStateDelta());
  engine->MarkStateSaved();
  // Two quiet deltas differ only in the clock — identical size means no
  // node payloads were written.
  EXPECT_EQ(quiet_a.size(), quiet_b.size());

  // A genuinely new anchor must grow the delta.
  Database db2 = Unwrap(testing::BuildState(
      PQRSchemas(),
      ScenarioStep{0, {{"Q", {T(I(1)), T(I(2))}}, {"P", {T(I(1))}}}}));
  (void)Unwrap(engine->OnTransition(db2, 4));
  const std::string busy = Unwrap(engine->SaveStateDelta());
  EXPECT_GT(busy.size(), quiet_b.size());
}

// Shadow engine maintained purely through deltas, over temporal constraints
// whose membership flips on QUIET transitions (maturity crossings with no
// anchor mutation: the flags&1-only restore path that must keep the wheel).
// After the delta chain, the shadow continues live and must stay
// byte-identical — this exercises the restored expiry wheel end to end.
TEST(AnchorStoreEngineTest, TemporalShadowTracksViaDeltasAndContinues) {
  const char* kTexts[] = {
      "forall a: P(a) implies once[3, 10] Q(a)",
      "forall a: P(a) implies P(a) since[2, 9] Q(a)",
      "forall a: P(a) implies once[2, inf] Q(a)",
  };
  for (const char* text : kTexts) {
    SCOPED_TRACE(text);
    tl::PredicateCatalog catalog = PQRCatalog();
    tl::FormulaPtr formula = Unwrap(tl::ParseFormula(text));
    auto primary = Unwrap(IncrementalEngine::Create(*formula, catalog));
    auto shadow = Unwrap(IncrementalEngine::Create(*formula, catalog));
    primary->BeginDeltaTracking();
    RTIC_ASSERT_OK(shadow->LoadState(Unwrap(primary->SaveState())));
    primary->MarkStateSaved();

    Rng rng(31);
    Timestamp t = 0;
    for (int step = 1; step <= 45; ++step) {
      t += 1 + static_cast<Timestamp>(rng.Uniform(4));
      // Frequent empty updates create quiet maturity/expiry transitions.
      Database db = RandomPQState(&rng, rng.Bernoulli(0.4) ? 0.0 : 0.4);
      (void)Unwrap(primary->OnTransition(db, t));
      if (step % 5 == 0) {
        std::string delta = Unwrap(primary->SaveStateDelta());
        primary->MarkStateSaved();
        RTIC_ASSERT_OK(shadow->LoadStateDelta(delta));
        ASSERT_EQ(Unwrap(shadow->SaveState()), Unwrap(primary->SaveState()))
            << "shadow diverged at step " << step;
      }
    }
    // Continue both live: the shadow's rebuilt stores (wheel included) must
    // behave exactly like the primary's.
    for (int step = 0; step < 20; ++step) {
      t += 1 + (step % 6 == 0 ? 11 : static_cast<Timestamp>(rng.Uniform(3)));
      Database db = RandomPQState(&rng, 0.35);
      const bool vp = Unwrap(primary->OnTransition(db, t));
      const bool vs = Unwrap(shadow->OnTransition(db, t));
      ASSERT_EQ(vp, vs) << "post-chain step " << step;
    }
    EXPECT_EQ(Unwrap(shadow->SaveState()), Unwrap(primary->SaveState()));
  }
}

// Randomized verdict equivalence against the naive (full-history) engine
// across all anchor regimes, both pruning policies.
TEST(AnchorStoreEngineTest, MatchesNaiveEngineOnRandomHistories) {
  const char* kTexts[] = {
      "forall a: P(a) implies once[0, 6] Q(a)",
      "forall a: P(a) implies once[3, 10] Q(a)",
      "forall a: P(a) implies once[2, inf] Q(a)",
      "forall a: P(a) implies P(a) since[0, 8] Q(a)",
      "forall a: P(a) implies P(a) since[2, 9] Q(a)",
      "forall a: P(a) implies P(a) since[1, inf] Q(a)",
  };
  for (const char* text : kTexts) {
    for (PruningPolicy policy :
         {PruningPolicy::kFull, PruningPolicy::kExpiryOnly}) {
      SCOPED_TRACE(std::string(text) +
                   (policy == PruningPolicy::kFull ? " full" : " expiry"));
      Rng rng(41);
      std::vector<ScenarioStep> steps;
      Timestamp t = 0;
      for (int i = 0; i < 40; ++i) {
        t += 1 + static_cast<Timestamp>(rng.Uniform(4));
        ScenarioStep step;
        step.t = t;
        for (int v = 0; v < 5; ++v) {
          if (rng.Bernoulli(0.35)) step.tables["P"].push_back(T(I(v)));
          if (rng.Bernoulli(0.35)) step.tables["Q"].push_back(T(I(v)));
        }
        steps.push_back(std::move(step));
      }
      std::vector<bool> naive = Unwrap(testing::RunScenario(
          EngineKind::kNaive, text, PQRSchemas(), steps, policy));
      std::vector<bool> incremental = Unwrap(testing::RunScenario(
          EngineKind::kIncremental, text, PQRSchemas(), steps, policy));
      EXPECT_EQ(incremental, naive);
    }
  }
}

// Full checkpoint round-trip over a history long enough for the arena to
// compact and slots to be freed/reallocated: restored engine continues
// byte-identically.
TEST(AnchorStoreEngineTest, CheckpointRoundTripAfterChurn) {
  const std::string text = "forall a: P(a) implies once[1, 7] Q(a)";
  tl::PredicateCatalog catalog = PQRCatalog();
  tl::FormulaPtr formula = Unwrap(tl::ParseFormula(text));
  auto engine = Unwrap(IncrementalEngine::Create(*formula, catalog));

  Rng rng(51);
  Timestamp t = 0;
  for (int step = 0; step < 60; ++step) {
    t += 1 + static_cast<Timestamp>(rng.Uniform(3));
    Database db = RandomPQState(&rng, 0.5);
    (void)Unwrap(engine->OnTransition(db, t));
  }
  const std::string snapshot = Unwrap(engine->SaveState());
  auto restored = Unwrap(IncrementalEngine::Create(*formula, catalog));
  RTIC_ASSERT_OK(restored->LoadState(snapshot));
  ASSERT_EQ(Unwrap(restored->SaveState()), snapshot);
  for (int step = 0; step < 25; ++step) {
    t += 1 + static_cast<Timestamp>(rng.Uniform(3));
    Database db = RandomPQState(&rng, 0.5);
    const bool a = Unwrap(engine->OnTransition(db, t));
    const bool b = Unwrap(restored->OnTransition(db, t));
    ASSERT_EQ(a, b) << "step " << step;
  }
  EXPECT_EQ(Unwrap(restored->SaveState()), Unwrap(engine->SaveState()));
}

// The new observability counters: aux_valuations/aux_anchors reflect the
// stores' live content and settle to the pruned sizes.
TEST(AnchorStoreEngineTest, AuxCountersTrackLiveState) {
  const std::string text = "forall a: P(a) implies once[0, 4] Q(a)";
  tl::PredicateCatalog catalog = PQRCatalog();
  tl::FormulaPtr formula = Unwrap(tl::ParseFormula(text));
  auto engine = Unwrap(IncrementalEngine::Create(*formula, catalog));

  Database db = Unwrap(testing::BuildState(
      PQRSchemas(),
      ScenarioStep{0, {{"Q", {T(I(1)), T(I(2)), T(I(3))}}}}));
  (void)Unwrap(engine->OnTransition(db, 1));
  EXPECT_EQ(engine->AuxValuationCount(), 3u);
  EXPECT_EQ(engine->AuxTimestampCount(), 3u);

  // With lo = 0, dominance keeps one anchor per valuation.
  (void)Unwrap(engine->OnTransition(db, 2));
  EXPECT_EQ(engine->AuxValuationCount(), 3u);
  EXPECT_EQ(engine->AuxTimestampCount(), 3u);

  // Everything expires once the window has passed.
  Database empty = Unwrap(testing::BuildState(PQRSchemas(), ScenarioStep{}));
  (void)Unwrap(engine->OnTransition(empty, 10));
  EXPECT_EQ(engine->AuxValuationCount(), 0u);
  EXPECT_EQ(engine->AuxTimestampCount(), 0u);
}

}  // namespace
}  // namespace rtic
