// Unit tests for the storage module: Table, Database, UpdateBatch,
// DomainTracker, and the history logs.

#include <gtest/gtest.h>

#include "history/history.h"
#include "storage/codec.h"
#include "storage/database.h"
#include "storage/domain_tracker.h"
#include "storage/table.h"
#include "storage/update_batch.h"
#include "tests/test_util.h"

namespace rtic {
namespace {

using testing::I;
using testing::IntSchema;
using testing::S;
using testing::T;
using testing::Unwrap;

// ---- Table -----------------------------------------------------------------

TEST(TableTest, InsertIsSetSemantics) {
  Table t("P", IntSchema({"x"}));
  EXPECT_TRUE(Unwrap(t.Insert(T(I(1)))));
  EXPECT_FALSE(Unwrap(t.Insert(T(I(1)))));  // already present
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, InsertTypeChecks) {
  Table t("P", IntSchema({"x"}));
  EXPECT_FALSE(t.Insert(T(S("no"))).ok());
  EXPECT_FALSE(t.Insert(T(I(1), I(2))).ok());
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableTest, EraseAndContains) {
  Table t("P", IntSchema({"x"}));
  RTIC_ASSERT_OK(t.Insert(T(I(3))).status());
  EXPECT_TRUE(t.Contains(T(I(3))));
  EXPECT_TRUE(t.Erase(T(I(3))));
  EXPECT_FALSE(t.Erase(T(I(3))));  // absent: no-op
  EXPECT_FALSE(t.Contains(T(I(3))));
}

TEST(TableTest, ClearEmpties) {
  Table t("P", IntSchema({"x"}));
  RTIC_ASSERT_OK(t.Insert(T(I(1))).status());
  RTIC_ASSERT_OK(t.Insert(T(I(2))).status());
  t.Clear();
  EXPECT_TRUE(t.empty());
}

// ---- Database ----------------------------------------------------------------

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  EXPECT_TRUE(db.HasTable("P"));
  EXPECT_EQ(db.CreateTable("P", IntSchema({"x"})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.GetTable("P").ok());
  EXPECT_EQ(db.GetTable("Q").status().code(), StatusCode::kNotFound);
  RTIC_ASSERT_OK(db.DropTable("P"));
  EXPECT_FALSE(db.HasTable("P"));
  EXPECT_EQ(db.DropTable("P").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, CopyIsDeepSnapshot) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  RTIC_ASSERT_OK(Unwrap(db.GetMutableTable("P"))->Insert(T(I(1))).status());
  Database snapshot = db;
  RTIC_ASSERT_OK(Unwrap(db.GetMutableTable("P"))->Insert(T(I(2))).status());
  EXPECT_EQ(Unwrap(snapshot.GetTable("P"))->size(), 1u);
  EXPECT_EQ(Unwrap(db.GetTable("P"))->size(), 2u);
}

TEST(DatabaseTest, ActiveDomainCollectsPerType) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable(
      "P", Schema({Column{"x", ValueType::kInt64},
                   Column{"s", ValueType::kString}})));
  Table* p = Unwrap(db.GetMutableTable("P"));
  RTIC_ASSERT_OK(p->Insert(T(I(1), S("a"))).status());
  RTIC_ASSERT_OK(p->Insert(T(I(2), S("a"))).status());
  std::vector<Value> ints = db.ActiveDomain(ValueType::kInt64);
  std::vector<Value> strs = db.ActiveDomain(ValueType::kString);
  EXPECT_EQ(ints.size(), 2u);
  EXPECT_EQ(strs.size(), 1u);
  EXPECT_TRUE(db.ActiveDomain(ValueType::kBool).empty());
}

TEST(DatabaseTest, TotalRowsSumsTables) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  RTIC_ASSERT_OK(db.CreateTable("Q", IntSchema({"x"})));
  RTIC_ASSERT_OK(Unwrap(db.GetMutableTable("P"))->Insert(T(I(1))).status());
  RTIC_ASSERT_OK(Unwrap(db.GetMutableTable("Q"))->Insert(T(I(1))).status());
  RTIC_ASSERT_OK(Unwrap(db.GetMutableTable("Q"))->Insert(T(I(2))).status());
  EXPECT_EQ(db.TotalRows(), 3u);
}

// ---- UpdateBatch -------------------------------------------------------------

TEST(UpdateBatchTest, AppliesDeletesThenInserts) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  RTIC_ASSERT_OK(Unwrap(db.GetMutableTable("P"))->Insert(T(I(1))).status());

  UpdateBatch batch(5);
  batch.Delete("P", T(I(1)));
  batch.Insert("P", T(I(2)));
  RTIC_ASSERT_OK(batch.Apply(&db));

  const Table* p = Unwrap(db.GetTable("P"));
  EXPECT_FALSE(p->Contains(T(I(1))));
  EXPECT_TRUE(p->Contains(T(I(2))));
}

TEST(UpdateBatchTest, DeleteThenInsertOfSameTupleKeepsIt) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  UpdateBatch batch(1);
  batch.Delete("P", T(I(7)));
  batch.Insert("P", T(I(7)));
  RTIC_ASSERT_OK(batch.Apply(&db));
  EXPECT_TRUE(Unwrap(db.GetTable("P"))->Contains(T(I(7))));
}

TEST(UpdateBatchTest, FailsAtomicallyOnUnknownTable) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  UpdateBatch batch(1);
  batch.Insert("P", T(I(1)));
  batch.Insert("Q", T(I(2)));  // unknown
  EXPECT_FALSE(batch.Apply(&db).ok());
  EXPECT_TRUE(Unwrap(db.GetTable("P"))->empty()) << "no partial application";
}

TEST(UpdateBatchTest, FailsAtomicallyOnSchemaMismatch) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  UpdateBatch batch(1);
  batch.Insert("P", T(I(1)));
  batch.Insert("P", T(S("bad")));
  EXPECT_FALSE(batch.Apply(&db).ok());
  EXPECT_TRUE(Unwrap(db.GetTable("P"))->empty());
}

TEST(UpdateBatchTest, AccountingHelpers) {
  UpdateBatch batch(9);
  EXPECT_TRUE(batch.IsEmpty());
  batch.Insert("B", T(I(1)));
  batch.Delete("A", T(I(2)));
  EXPECT_FALSE(batch.IsEmpty());
  EXPECT_EQ(batch.OperationCount(), 2u);
  EXPECT_EQ(batch.TouchedTables(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(batch.timestamp(), 9);
}

// ---- StateWriter / StateReader ---------------------------------------------

TEST(StateCodecTest, ScalarRoundTrip) {
  StateWriter w;
  w.WriteInt(-42);
  w.WriteValue(I(7));
  w.WriteValue(Value::Double(0.1));
  w.WriteValue(S("a b:c "));  // embedded spaces and colons survive
  w.WriteValue(Value::Bool(true));
  w.WriteString("");
  StateReader r(w.str());
  EXPECT_EQ(Unwrap(r.ReadInt()), -42);
  EXPECT_EQ(Unwrap(r.ReadValue()), I(7));
  EXPECT_EQ(Unwrap(r.ReadValue()), Value::Double(0.1));
  EXPECT_EQ(Unwrap(r.ReadValue()), S("a b:c "));
  EXPECT_EQ(Unwrap(r.ReadValue()), Value::Bool(true));
  EXPECT_EQ(Unwrap(r.ReadString()), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(StateCodecTest, TruncatedInputsErrorNotCrash) {
  // Cut a valid payload at every byte boundary: each prefix must either
  // parse (when the cut lands between tokens) or fail cleanly.
  StateWriter w;
  w.WriteTuple(T(I(5), S("xyz"), Value::Bool(false)));
  const std::string full = w.str();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);  // outlives the reader
    StateReader r(prefix);
    Result<Tuple> t = r.ReadTuple();
    if (t.ok()) {
      EXPECT_EQ(*t, T(I(5), S("xyz"), Value::Bool(false)));
    } else {
      EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(StateCodecTest, RejectsBadIntegerTokens) {
  for (const char* input : {"zz", "12x", "--3", "0x10", "999999999999999999999",
                            "", " "}) {
    StateReader r(input);
    EXPECT_FALSE(r.ReadInt().ok()) << "input: " << input;
  }
}

TEST(StateCodecTest, RejectsBadStringLengths) {
  // Oversized, non-numeric, negative, overflowing, and missing lengths.
  for (const char* input : {"10:abc", "x:abc", "-1:abc",
                            "99999999999999999999:abc", "abc"}) {
    StateReader r(input);
    EXPECT_FALSE(r.ReadString().ok()) << "input: " << input;
  }
}

TEST(StateCodecTest, RejectsStringWithWrongDeclaredLength) {
  StateReader r("1:ab ");  // declared 1 byte but 'b' is glued on
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(StateCodecTest, RejectsGarbageValueTokens) {
  for (const char* input : {"zz", "q:1", "b:7", "b:10", "b:", "i:", "i:12x",
                            "d:zz", "s:999:x", ""}) {
    StateReader r(input);
    EXPECT_FALSE(r.ReadValue().ok()) << "input: " << input;
  }
}

TEST(StateCodecTest, RejectsHostileTupleArity) {
  for (const char* input : {"-1", "2000000", "99999999999999999999", "x"}) {
    StateReader r(input);
    EXPECT_FALSE(r.ReadTuple().ok()) << "input: " << input;
  }
}

// ---- UpdateBatch codec -------------------------------------------------------

TEST(UpdateBatchCodecTest, RoundTripsOperationsAndTimestamp) {
  UpdateBatch batch(17);
  batch.Insert("P", T(I(1), S("a")));
  batch.Insert("Q", T(I(2)));
  batch.Delete("P", T(I(3), S("b c")));
  StateWriter w;
  batch.EncodeTo(&w);
  StateReader r(w.str());
  UpdateBatch decoded = Unwrap(UpdateBatch::DecodeFrom(&r));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded.timestamp(), 17);
  EXPECT_EQ(decoded.ToString(), batch.ToString());
}

TEST(UpdateBatchCodecTest, RoundTripsEmptyBatch) {
  UpdateBatch batch(3);
  StateWriter w;
  batch.EncodeTo(&w);
  StateReader r(w.str());
  UpdateBatch decoded = Unwrap(UpdateBatch::DecodeFrom(&r));
  EXPECT_TRUE(decoded.IsEmpty());
  EXPECT_EQ(decoded.timestamp(), 3);
}

TEST(UpdateBatchCodecTest, RejectsBadMagicAndTruncation) {
  {
    StateReader r("4:junk 1 0 0 ");
    EXPECT_FALSE(UpdateBatch::DecodeFrom(&r).ok());
  }
  UpdateBatch batch(5);
  batch.Insert("P", T(I(1)));
  StateWriter w;
  batch.EncodeTo(&w);
  const std::string full = w.str();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);  // outlives the reader
    StateReader r(prefix);
    Result<UpdateBatch> decoded = UpdateBatch::DecodeFrom(&r);
    if (decoded.ok()) {
      EXPECT_EQ(decoded->ToString(), batch.ToString());
    }
  }
}

TEST(UpdateBatchCodecTest, RejectsNegativeCounts) {
  StateReader r("8:RTICBAT1 5 -1 ");
  EXPECT_FALSE(UpdateBatch::DecodeFrom(&r).ok());
}

// ---- DomainTracker -----------------------------------------------------------

TEST(DomainTrackerTest, AbsorbsDatabaseValues) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  RTIC_ASSERT_OK(Unwrap(db.GetMutableTable("P"))->Insert(T(I(5))).status());
  DomainTracker tracker;
  tracker.Absorb(db);
  EXPECT_TRUE(tracker.Contains(I(5)));
  EXPECT_FALSE(tracker.Contains(I(6)));
}

TEST(DomainTrackerTest, IsCumulative) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  Table* p = Unwrap(db.GetMutableTable("P"));
  RTIC_ASSERT_OK(p->Insert(T(I(1))).status());
  DomainTracker tracker;
  tracker.Absorb(db);
  p->Erase(T(I(1)));
  RTIC_ASSERT_OK(p->Insert(T(I(2))).status());
  tracker.Absorb(db);
  // Both the departed and the current value are tracked.
  EXPECT_TRUE(tracker.Contains(I(1)));
  EXPECT_TRUE(tracker.Contains(I(2)));
  EXPECT_EQ(tracker.Values(ValueType::kInt64).size(), 2u);
}

TEST(DomainTrackerTest, AbsorbValuesAndTypeBuckets) {
  DomainTracker tracker;
  tracker.AbsorbValues({I(1), S("a"), I(1)});
  EXPECT_EQ(tracker.size(), 2u);
  EXPECT_EQ(tracker.Values(ValueType::kInt64).size(), 1u);
  EXPECT_EQ(tracker.Values(ValueType::kString).size(), 1u);
  EXPECT_TRUE(tracker.Values(ValueType::kDouble).empty());
}

// ---- HistoryLog / DeltaLog -----------------------------------------------------

TEST(HistoryLogTest, AppendsSnapshotsAndEnforcesMonotonicTime) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  HistoryLog log;
  RTIC_ASSERT_OK(log.Append(db, 1));
  RTIC_ASSERT_OK(Unwrap(db.GetMutableTable("P"))->Insert(T(I(1))).status());
  RTIC_ASSERT_OK(log.Append(db, 4));
  EXPECT_FALSE(log.Append(db, 4).ok());
  EXPECT_FALSE(log.Append(db, 2).ok());

  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.TimeAt(0), 1);
  EXPECT_EQ(log.LatestTime(), 4);
  EXPECT_EQ(Unwrap(log.StateAt(0).GetTable("P"))->size(), 0u);
  EXPECT_EQ(Unwrap(log.StateAt(1).GetTable("P"))->size(), 1u);
  EXPECT_EQ(log.TotalStoredRows(), 1u);
}

TEST(DeltaLogTest, MaterializesByReplay) {
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", IntSchema({"x"})));
  DeltaLog log(db);

  UpdateBatch b1(1);
  b1.Insert("P", T(I(1)));
  UpdateBatch b2(2);
  b2.Insert("P", T(I(2)));
  b2.Delete("P", T(I(1)));
  RTIC_ASSERT_OK(log.Append(b1));
  RTIC_ASSERT_OK(log.Append(b2));

  Database s0 = Unwrap(log.Materialize(0));
  Database s1 = Unwrap(log.Materialize(1));
  EXPECT_TRUE(Unwrap(s0.GetTable("P"))->Contains(T(I(1))));
  EXPECT_FALSE(Unwrap(s1.GetTable("P"))->Contains(T(I(1))));
  EXPECT_TRUE(Unwrap(s1.GetTable("P"))->Contains(T(I(2))));
  EXPECT_FALSE(log.Materialize(2).ok());
}

TEST(DeltaLogTest, RejectsNonMonotonicBatches) {
  DeltaLog log{Database{}};
  RTIC_ASSERT_OK(log.Append(UpdateBatch(3)));
  EXPECT_FALSE(log.Append(UpdateBatch(3)).ok());
  EXPECT_FALSE(log.Append(UpdateBatch(1)).ok());
}

}  // namespace
}  // namespace rtic
