// Open-loop driver tests (the `workload` ctest label): deterministic
// arrival schedules, driver-vs-direct byte identity over the library path,
// and a live server round-trip whose violation transcript matches the
// library run line for line.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "server/client.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "workload/driver.h"
#include "workload/scenarios.h"

namespace rtic {
namespace {

using server::RticClient;
using server::RticServer;
using server::ServerOptions;
using testing::Unwrap;
using workload::AllScenarios;
using workload::ArrivalKind;
using workload::ArrivalSchedule;
using workload::ClientTarget;
using workload::DriverOptions;
using workload::DriverReport;
using workload::DriveTarget;
using workload::MakeScenario;
using workload::MonitorTarget;
using workload::RunOpenLoop;
using workload::ScenarioInfo;
using workload::Workload;

DriverOptions Unpaced() {
  DriverOptions options;
  options.pace = false;
  return options;
}

TEST(ArrivalScheduleTest, DeterministicAndNonDecreasing) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
    DriverOptions options;
    options.arrival = kind;
    options.rate_per_sec = 1000;
    std::vector<double> a = ArrivalSchedule(500, options);
    std::vector<double> b = ArrivalSchedule(500, options);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    EXPECT_GT(a.front(), 0.0);
    options.seed = 7;
    EXPECT_NE(ArrivalSchedule(500, options), a);
  }
}

TEST(ArrivalScheduleTest, PoissonMeanTracksTheRate) {
  DriverOptions options;
  options.rate_per_sec = 2000;
  std::vector<double> s = ArrivalSchedule(4000, options);
  // 4000 arrivals at 2000/s should take about 2 seconds.
  EXPECT_GT(s.back(), 1.5);
  EXPECT_LT(s.back(), 2.5);
}

TEST(ArrivalScheduleTest, BurstyKeepsTheLongRunRate) {
  DriverOptions options;
  options.arrival = ArrivalKind::kBursty;
  options.rate_per_sec = 2000;
  std::vector<double> s = ArrivalSchedule(4000, options);
  // On/off duty-cycling compresses arrivals into bursts but preserves the
  // long-run average rate.
  EXPECT_GT(s.back(), 1.2);
  EXPECT_LT(s.back(), 3.0);
}

// The acceptance check the tentpole names: driving a workload through the
// open-loop driver produces a violation transcript byte-identical to
// applying the batches directly, for every registered family.
TEST(DriverTest, DriverMatchesDirectApplyByteForByte) {
  for (const ScenarioInfo& info : AllScenarios()) {
    Workload w = Unwrap(MakeScenario(info.name, {{"length", 80}}));

    // Direct path.
    ConstraintMonitor direct((MonitorOptions()));
    std::vector<std::string> expected;
    for (const auto& [name, schema] : w.schema) {
      RTIC_ASSERT_OK(direct.CreateTable(name, schema));
    }
    for (const auto& [name, text] : w.constraints) {
      RTIC_ASSERT_OK(direct.RegisterConstraint(name, text));
    }
    for (const UpdateBatch& batch : w.batches) {
      for (const Violation& v : Unwrap(direct.ApplyUpdate(batch))) {
        expected.push_back(v.ToString());
      }
    }

    // Driver path.
    ConstraintMonitor driven((MonitorOptions()));
    MonitorTarget target(&driven);
    RTIC_ASSERT_OK(target.Install(w));
    DriverReport report = Unwrap(RunOpenLoop(w, &target, Unpaced()));

    EXPECT_EQ(report.offered, w.batches.size()) << info.name;
    EXPECT_EQ(report.accepted, w.batches.size()) << info.name;
    EXPECT_EQ(report.overloaded, 0u) << info.name;
    EXPECT_EQ(report.transcript, expected) << info.name;
    EXPECT_EQ(report.violations, expected.size()) << info.name;
  }
}

TEST(DriverTest, ServerRoundTripMatchesLibraryRun) {
  for (const char* name : {"freshness", "commit"}) {
    Workload w = Unwrap(MakeScenario(name, {{"length", 60}}));

    // Library path.
    ConstraintMonitor monitor((MonitorOptions()));
    MonitorTarget library(&monitor);
    RTIC_ASSERT_OK(library.Install(w));
    DriverReport expected = Unwrap(RunOpenLoop(w, &library, Unpaced()));

    // Server path: one session, explicit workload timestamps.
    auto server = Unwrap(RticServer::Start(ServerOptions{}));
    auto client = Unwrap(RticClient::Connect(server->address(), name));
    ClientTarget remote(client.get());
    RTIC_ASSERT_OK(remote.Install(w));
    DriverReport actual = Unwrap(RunOpenLoop(w, &remote, Unpaced()));

    EXPECT_EQ(actual.transcript, expected.transcript) << name;
    EXPECT_EQ(actual.accepted, w.batches.size()) << name;
    EXPECT_EQ(actual.overloaded, 0u) << name;

    // The server really processed every batch.
    auto stats = Unwrap(client->GetStats());
    EXPECT_EQ(stats.transition_count, w.batches.size()) << name;
    EXPECT_EQ(stats.total_violations, expected.violations) << name;
    client->Close();
    server->Stop();
  }
}

TEST(DriverTest, MultiConnectionDrivesEveryBatch) {
  Workload w = Unwrap(MakeScenario("freshness", {{"length", 120}}));
  auto server = Unwrap(RticServer::Start(ServerOptions{}));

  DriverOptions options = Unpaced();
  options.connections = 4;
  options.server_timestamps = true;  // interleaved sends: server assigns
  auto factory = [&]() -> Result<std::unique_ptr<DriveTarget>> {
    auto client = RticClient::Connect(server->address(), "fleet");
    if (!client.ok()) return client.status();
    struct OwningTarget : DriveTarget {
      explicit OwningTarget(std::unique_ptr<RticClient> c)
          : client(std::move(c)), target(client.get()) {}
      Status Install(const Workload& workload) override {
        return target.Install(workload);
      }
      Result<workload::DriveOutcome> Apply(const UpdateBatch& b) override {
        return target.Apply(b);
      }
      std::unique_ptr<RticClient> client;
      ClientTarget target;
    };
    return std::unique_ptr<DriveTarget>(
        new OwningTarget(std::move(*client)));
  };

  // Install once through a setup session.
  auto setup = Unwrap(RticClient::Connect(server->address(), "fleet"));
  ClientTarget install(setup.get());
  RTIC_ASSERT_OK(install.Install(w));

  DriverReport report = Unwrap(RunOpenLoop(w, factory, options));
  EXPECT_EQ(report.offered, w.batches.size());
  EXPECT_EQ(report.accepted + report.overloaded, report.offered);

  // Accepted work is never lost: the tenant committed exactly the accepted
  // transitions.
  auto stats = Unwrap(setup->GetStats());
  EXPECT_EQ(stats.transition_count, report.accepted);
  setup->Close();
  server->Stop();
}

TEST(DriverTest, MultiConnectionRequiresServerTimestamps) {
  Workload w = Unwrap(MakeScenario("alarm", {{"length", 10}}));
  DriverOptions options = Unpaced();
  options.connections = 2;
  auto factory = [&]() -> Result<std::unique_ptr<DriveTarget>> {
    return Status::Internal("factory should not be the failing check");
  };
  Result<DriverReport> r = RunOpenLoop(w, factory, options);
  EXPECT_FALSE(r.ok());
}

TEST(DriverTest, ReportCountersAreConsistent) {
  Workload w = Unwrap(MakeScenario("commit", {{"length", 60}}));
  ConstraintMonitor monitor((MonitorOptions()));
  MonitorTarget target(&monitor);
  RTIC_ASSERT_OK(target.Install(w));
  DriverReport report = Unwrap(RunOpenLoop(w, &target, Unpaced()));
  EXPECT_EQ(report.accepted, w.batches.size());
  EXPECT_EQ(report.violations, monitor.total_violations());
  EXPECT_GE(report.apply_p99_micros, report.apply_p50_micros);
  EXPECT_GT(report.elapsed_seconds, 0.0);
  EXPECT_FALSE(report.ToString().empty());
}

}  // namespace
}  // namespace rtic
