// Table-driven semantics tests for the temporal operators, executed against
// ALL THREE engines (naive full-history, incremental bounded-encoding,
// active trigger program). Every case's verdict sequence is hand-computed
// from the Past-MTL semantics; the three engines must each reproduce it.

#include <gtest/gtest.h>

#include "engines/incremental/engine.h"
#include "tests/engine_test_util.h"

namespace rtic {
namespace {

using testing::I;
using testing::PQRSchemas;
using testing::RunScenario;
using testing::ScenarioStep;
using testing::T;
using testing::Unwrap;

/// A named scenario with its expected verdicts.
struct Case {
  const char* name;
  const char* constraint;
  std::vector<ScenarioStep> steps;
  std::vector<bool> want;
};

std::vector<Case> BuildSemanticsCases();

/// Stable storage: test parameters hold indices into this corpus.
const std::vector<Case>& SemanticsCases() {
  static const std::vector<Case>* cases =
      new std::vector<Case>(BuildSemanticsCases());
  return *cases;
}

std::vector<Case> BuildSemanticsCases() {
  std::vector<Case> cases;

  // -- previous ---------------------------------------------------------------
  cases.push_back(
      {"previous_basic", "previous P(1)",
       {{1, {{"P", {T(I(1))}}}}, {2, {}}, {3, {{"P", {T(I(1))}}}}},
       {false, true, false}});

  cases.push_back(
      {"previous_metric_gap", "previous[2, 3] P(1)",
       {{1, {{"P", {T(I(1))}}}},
        {2, {{"P", {T(I(1))}}}},   // gap 1: outside [2,3]
        {5, {{"P", {T(I(1))}}}},   // gap 3: inside, P held at t=2
        {7, {{"P", {T(I(1))}}}}},  // gap 2: inside, P held at t=5
       {false, false, true, true}});

  cases.push_back(
      {"previous_gap_too_large", "previous[0, 1] P(1)",
       {{1, {{"P", {T(I(1))}}}}, {5, {}}},
       {false, false}});

  // -- once -------------------------------------------------------------------
  cases.push_back(
      {"once_window_expiry", "once[0, 3] P(1)",
       {{1, {{"P", {T(I(1))}}}}, {3, {}}, {4, {}}, {5, {}}, {8, {}}},
       {true, true, true, false, false}});

  cases.push_back(
      {"once_delayed_activation", "once[2, 4] P(1)",
       {{1, {{"P", {T(I(1))}}}}, {2, {}}, {3, {}}, {5, {}}, {6, {}}},
       {false, false, true, true, false}});

  cases.push_back(
      {"once_unbounded", "once[0, inf] P(1)",
       {{1, {}}, {2, {{"P", {T(I(1))}}}}, {9, {}}, {100, {}}},
       {false, true, true, true}});

  cases.push_back(
      {"once_anchor_refresh", "once[0, 2] P(1)",
       {{1, {{"P", {T(I(1))}}}},
        {2, {}},
        {3, {}},
        {4, {{"P", {T(I(1))}}}},
        {6, {}},
        {7, {}}},
       {true, true, true, true, true, false}});

  cases.push_back(
      {"once_point_interval", "once[2, 2] P(1)",
       {{1, {{"P", {T(I(1))}}}}, {2, {}}, {3, {}}, {4, {}}},
       {false, false, true, false}});

  // -- historically -------------------------------------------------------------
  cases.push_back(
      {"historically_window", "historically[0, 2] P(1)",
       {{1, {{"P", {T(I(1))}}}},
        {2, {{"P", {T(I(1))}}}},
        {3, {}},
        {4, {{"P", {T(I(1))}}}},
        {6, {{"P", {T(I(1))}}}}},
       {true, true, false, false, true}});

  cases.push_back(
      {"historically_vacuous_start", "historically[2, inf] P(1)",
       {{1, {{"P", {T(I(1))}}}},
        {2, {{"P", {T(I(1))}}}},   // no state at distance >= 2 yet
        {3, {{"P", {T(I(1))}}}},   // t=1 at distance 2: P(1) held
        {4, {}}},                  // t=1 (d3), t=2 (d2): both held
       {true, true, true, true}});

  cases.push_back(
      {"historically_fails_on_gap_in_body", "historically[0, inf] P(1)",
       {{1, {{"P", {T(I(1))}}}}, {2, {}}, {3, {{"P", {T(I(1))}}}}},
       {true, false, false}});

  // -- since ----------------------------------------------------------------------
  cases.push_back(
      {"since_basic_continuity", "P(1) since[0, inf] Q(1)",
       {{1, {{"P", {T(I(1))}}}},
        {2, {{"Q", {T(I(1))}}}},
        {3, {{"P", {T(I(1))}}}},
        {4, {}},
        {5, {{"P", {T(I(1))}}}}},
       {false, true, true, false, false}});

  cases.push_back(
      {"since_metric_window", "P(1) since[2, 5] Q(1)",
       {{1, {{"Q", {T(I(1))}}}},
        {2, {{"P", {T(I(1))}}}},
        {3, {{"P", {T(I(1))}}}},
        {6, {{"P", {T(I(1))}}}},
        {7, {{"P", {T(I(1))}}}}},
       {false, false, true, true, false}});

  cases.push_back(
      {"since_lhs_failure_kills_anchor", "P(1) since[1, 3] Q(1)",
       {{1, {{"Q", {T(I(1))}}, {"P", {T(I(1))}}}},
        {2, {{"Q", {T(I(1))}}}},  // P fails: anchor@1 dies, new anchor@2
        {3, {{"P", {T(I(1))}}}},
        {5, {{"P", {T(I(1))}}}},
        {6, {{"P", {T(I(1))}}}}},
       {false, false, true, true, false}});

  cases.push_back(
      {"since_anchor_at_current_state", "P(1) since[0, 4] Q(1)",
       {{1, {{"Q", {T(I(1))}}}},     // anchor at the current state: no P
                                     // needed
        {2, {}},                     // P(1) fails: anchor dies
        {3, {{"Q", {T(I(1))}}}}},    // fresh anchor
       {true, false, true}});

  // -- quantified constraints ---------------------------------------------------
  cases.push_back(
      {"forall_salary_pattern",
       "forall a, b: R(a, b) implies previous R(a, b)",
       // t=1 already violates: there is no previous state at all.
       {{1, {{"R", {T(I(1), I(10))}}}},
        {2, {{"R", {T(I(1), I(10))}}}},
        {3, {{"R", {T(I(1), I(10)), T(I(2), I(20))}}}}},
       {false, true, false}});

  cases.push_back(
      {"forall_recent_once",
       "forall a, b: R(a, b) implies once[0, 2] P(a)",
       {{1, {{"P", {T(I(1))}}}},
        {2, {{"R", {T(I(1), I(2))}}}},
        {4, {{"R", {T(I(1), I(2))}}}}},
       {true, true, false}});

  cases.push_back(
      {"deadline_via_since",
       "forall a: P(a) implies P(a) since[0, 3] Q(a)",
       {{1, {{"Q", {T(I(1))}}, {"P", {T(I(1))}}}},
        {2, {{"P", {T(I(1))}}}},
        {4, {{"P", {T(I(1))}}}},
        {5, {{"P", {T(I(1))}}}},   // 4 time units since Q: violation
        {6, {}}},                  // no active entity: vacuously fine
       {true, true, true, false, true}});

  cases.push_back(
      {"per_entity_windows",
       "forall a: P(a) implies once[0, 2] Q(a)",
       {{1, {{"Q", {T(I(1))}}}},
        {2, {{"P", {T(I(1))}}, {"Q", {T(I(2))}}}},
        {3, {{"P", {T(I(1)), T(I(2))}}}},      // 1 ok (d2), 2 ok (d1)
        {4, {{"P", {T(I(1))}}}},               // Q(1) was 3 ago: violation
        {5, {{"P", {T(I(2))}}}}},              // Q(2) was 3 ago: violation
       {true, true, true, false, false}});

  // -- nested temporal operators ---------------------------------------------------
  cases.push_back(
      {"once_of_previous", "once[0, 2] previous P(1)",
       {{1, {{"P", {T(I(1))}}}}, {2, {}}, {3, {}}, {5, {}}},
       {false, true, true, false}});

  cases.push_back(
      {"previous_of_once", "previous once[0, inf] P(1)",
       {{1, {{"P", {T(I(1))}}}}, {2, {}}, {3, {}}},
       {false, true, true}});

  cases.push_back(
      {"since_of_once",
       "P(1) since[0, 2] once[0, 1] Q(1)",
       // once[0,1] Q(1): holds at t where Q held within 1.
       {{1, {{"Q", {T(I(1))}}, {"P", {T(I(1))}}}},   // inner T, anchor@1
        {2, {{"P", {T(I(1))}}}},                     // inner T (d1): anchor@2
        {3, {{"P", {T(I(1))}}}},                     // inner F; anchor@2 d1: T
        {5, {{"P", {T(I(1))}}}}},                    // anchors d>=3: F
       {true, true, true, false}});

  // -- booleans / degenerate ---------------------------------------------------------
  cases.push_back({"constant_true", "true", {{1, {}}, {2, {}}}, {true, true}});

  cases.push_back(
      {"once_false_never_holds", "once[0, inf] false",
       {{1, {}}, {2, {}}},
       {false, false}});

  cases.push_back(
      {"historically_true_always_holds", "historically[0, inf] true",
       {{1, {}}, {5, {}}},
       {true, true}});

  // Negated temporal inside a guarded conjunction.
  cases.push_back(
      {"no_quick_repeat", "forall a: P(a) implies not once[1, 2] P(a)",
       {{1, {{"P", {T(I(1))}}}},
        {2, {{"P", {T(I(1))}}}},    // P(1) also 1 ago: violation
        {4, {{"P", {T(I(1))}}}},    // P(1) 2 ago: violation
        {7, {{"P", {T(I(1))}}}}},   // last P(1) 3 ago: fine
       {true, false, false, true}});

  return cases;
}

struct EngineCase {
  EngineKind kind;
  std::size_t case_index;
};

class OperatorSemanticsTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(OperatorSemanticsTest, VerdictSequenceMatchesHandComputation) {
  const Case& c = SemanticsCases()[GetParam().case_index];
  SCOPED_TRACE(std::string(c.name) + " on " +
               EngineKindToString(GetParam().kind));
  std::vector<bool> got = Unwrap(
      RunScenario(GetParam().kind, c.constraint, PQRSchemas(), c.steps));
  EXPECT_EQ(got, c.want) << "constraint: " << c.constraint;
}

std::vector<EngineCase> AllEngineCases() {
  std::vector<EngineCase> out;
  for (EngineKind kind :
       {EngineKind::kNaive, EngineKind::kIncremental, EngineKind::kActive}) {
    for (std::size_t i = 0; i < SemanticsCases().size(); ++i) {
      out.push_back({kind, i});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllCases, OperatorSemanticsTest,
    ::testing::ValuesIn(AllEngineCases()),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return std::string(EngineKindToString(info.param.kind)) + "_" +
             SemanticsCases()[info.param.case_index].name;
    });

// ---- incremental-engine specifics: the bounded-encoding claims ----------------

TEST(IncrementalEngineTest, CompiledNetworkIsPostOrder) {
  tl::FormulaPtr f = Unwrap(
      tl::ParseFormula("once[0, 5] previous P(1) and (P(2) since Q(2))"));
  tl::PredicateCatalog catalog{{"P", testing::IntSchema({"a"})},
                               {"Q", testing::IntSchema({"a"})}};
  auto engine = Unwrap(IncrementalEngine::Create(*f, catalog));
  const inc::CompiledNetwork& net = engine->network();
  ASSERT_EQ(net.nodes.size(), 3u);
  // Child (previous) precedes parent (once); since is independent.
  EXPECT_EQ(net.nodes[0].node->kind(), tl::FormulaKind::kPrevious);
  EXPECT_EQ(net.nodes[1].node->kind(), tl::FormulaKind::kOnce);
  EXPECT_EQ(net.nodes[2].node->kind(), tl::FormulaKind::kSince);
}

TEST(IncrementalEngineTest, HistoricallyCompilesViaOnce) {
  tl::FormulaPtr f = Unwrap(tl::ParseFormula("historically[0, 5] P(1)"));
  tl::PredicateCatalog catalog{{"P", testing::IntSchema({"a"})}};
  auto engine = Unwrap(IncrementalEngine::Create(*f, catalog));
  ASSERT_EQ(engine->network().nodes.size(), 1u);
  EXPECT_EQ(engine->network().nodes[0].node->kind(), tl::FormulaKind::kOnce);
}

TEST(IncrementalEngineTest, AuxSpaceStaysBoundedOnLongHistory) {
  tl::FormulaPtr f =
      Unwrap(tl::ParseFormula("forall a: P(a) implies once[0, 5] Q(a)"));
  tl::PredicateCatalog catalog{{"P", testing::IntSchema({"a"})},
                               {"Q", testing::IntSchema({"a"})}};
  auto engine = Unwrap(IncrementalEngine::Create(*f, catalog));

  std::map<std::string, Schema> schemas{{"P", testing::IntSchema({"a"})},
                                        {"Q", testing::IntSchema({"a"})}};
  std::size_t max_aux = 0;
  for (Timestamp t = 1; t <= 500; ++t) {
    ScenarioStep step{t, {}};
    // Q(a) for a = t % 4 at every state; P queries them.
    step.tables["Q"] = {T(I(t % 4))};
    step.tables["P"] = {T(I((t + 1) % 4))};
    Database state = Unwrap(testing::BuildState(schemas, step));
    (void)Unwrap(engine->OnTransition(state, t));
    max_aux = std::max(max_aux, engine->AuxTimestampCount());
  }
  // With lo = 0, dominance pruning keeps exactly one timestamp per
  // valuation, and only 4 valuations exist.
  EXPECT_LE(max_aux, 4u);
}

TEST(IncrementalEngineTest, ExpiryOnlyAblationGrowsWithUnboundedWindow) {
  tl::FormulaPtr f =
      Unwrap(tl::ParseFormula("forall a: P(a) implies once[0, inf] Q(a)"));
  tl::PredicateCatalog catalog{{"P", testing::IntSchema({"a"})},
                               {"Q", testing::IntSchema({"a"})}};
  IncrementalOptions options;
  options.pruning = PruningPolicy::kExpiryOnly;
  auto ablated = Unwrap(IncrementalEngine::Create(*f, catalog, options));
  auto pruned = Unwrap(IncrementalEngine::Create(*f, catalog));

  std::map<std::string, Schema> schemas{{"P", testing::IntSchema({"a"})},
                                        {"Q", testing::IntSchema({"a"})}};
  for (Timestamp t = 1; t <= 100; ++t) {
    ScenarioStep step{t, {{"Q", {T(I(1))}}}};
    Database state = Unwrap(testing::BuildState(schemas, step));
    bool a = Unwrap(ablated->OnTransition(state, t));
    bool b = Unwrap(pruned->OnTransition(state, t));
    EXPECT_EQ(a, b) << "policies must agree on verdicts";
  }
  EXPECT_EQ(ablated->AuxTimestampCount(), 100u) << "no pruning: one per state";
  EXPECT_EQ(pruned->AuxTimestampCount(), 1u) << "earliest anchor suffices";
}

TEST(IncrementalEngineTest, RejectsNonMonotonicTimestamps) {
  tl::FormulaPtr f = Unwrap(tl::ParseFormula("once P(1)"));
  tl::PredicateCatalog catalog{{"P", testing::IntSchema({"a"})}};
  auto engine = Unwrap(IncrementalEngine::Create(*f, catalog));
  Database empty;
  RTIC_ASSERT_OK(empty.CreateTable("P", testing::IntSchema({"a"})));
  (void)Unwrap(engine->OnTransition(empty, 5));
  EXPECT_FALSE(engine->OnTransition(empty, 5).ok());
  EXPECT_FALSE(engine->OnTransition(empty, 3).ok());
  EXPECT_TRUE(engine->OnTransition(empty, 6).ok());
}

TEST(IncrementalEngineTest, RejectsOpenFormulas) {
  tl::FormulaPtr f = Unwrap(tl::ParseFormula("P(a)"));
  tl::PredicateCatalog catalog{{"P", testing::IntSchema({"a"})}};
  EXPECT_FALSE(IncrementalEngine::Create(*f, catalog).ok());
}

TEST(IncrementalEngineTest, StorageCountsPreviousNodes) {
  tl::FormulaPtr f = Unwrap(
      tl::ParseFormula("forall a: P(a) implies previous P(a)"));
  tl::PredicateCatalog catalog{{"P", testing::IntSchema({"a"})}};
  auto engine = Unwrap(IncrementalEngine::Create(*f, catalog));
  std::map<std::string, Schema> schemas{{"P", testing::IntSchema({"a"})}};
  ScenarioStep step{1, {{"P", {T(I(1)), T(I(2)), T(I(3))}}}};
  Database state = Unwrap(testing::BuildState(schemas, step));
  (void)Unwrap(engine->OnTransition(state, 1));
  EXPECT_EQ(engine->StorageRows(), 3u);  // prev_body holds 3 valuations
}

}  // namespace
}  // namespace rtic
