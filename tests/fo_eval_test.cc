// Tests for the first-order evaluator on single database states: each
// connective, the safe-range (domain-free) paths, the falsification sets,
// and counterexample extraction.

#include <gtest/gtest.h>

#include "fo/eval.h"
#include "fo/witness.h"
#include "tests/test_util.h"
#include "tl/parser.h"

namespace rtic {
namespace {

using rtic::testing::I;
using rtic::testing::IntRelation;
using rtic::testing::IntSchema;
using rtic::testing::S;
using rtic::testing::T;
using rtic::testing::Unwrap;

/// Fixture: a small personnel database.
///   Emp(id, salary):  (1, 100), (2, 200), (3, 300)
///   Mgr(id):          (2)
///   Name(id, name):   (1, 'ann'), (2, 'bob')
class FoEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RTIC_ASSERT_OK(db_.CreateTable("Emp", IntSchema({"id", "salary"})));
    RTIC_ASSERT_OK(db_.CreateTable("Mgr", IntSchema({"id"})));
    RTIC_ASSERT_OK(db_.CreateTable(
        "Name", Schema({Column{"id", ValueType::kInt64},
                        Column{"name", ValueType::kString}})));
    Table* emp = Unwrap(db_.GetMutableTable("Emp"));
    RTIC_ASSERT_OK(emp->Insert(T(I(1), I(100))).status());
    RTIC_ASSERT_OK(emp->Insert(T(I(2), I(200))).status());
    RTIC_ASSERT_OK(emp->Insert(T(I(3), I(300))).status());
    RTIC_ASSERT_OK(
        Unwrap(db_.GetMutableTable("Mgr"))->Insert(T(I(2))).status());
    Table* name = Unwrap(db_.GetMutableTable("Name"));
    RTIC_ASSERT_OK(name->Insert(T(I(1), S("ann"))).status());
    RTIC_ASSERT_OK(name->Insert(T(I(2), S("bob"))).status());
  }

  tl::PredicateCatalog Catalog() {
    tl::PredicateCatalog catalog;
    for (const std::string& name : db_.TableNames()) {
      catalog[name] = Unwrap(db_.GetTable(name))->schema();
    }
    return catalog;
  }

  /// Parses, analyzes, and evaluates `text` against the fixture state.
  Relation Eval(const std::string& text) {
    formula_ = Unwrap(tl::ParseFormula(text));
    analysis_ = Unwrap(tl::Analyze(*formula_, Catalog()));
    fo::EvalContext ctx;
    ctx.db = &db_;
    ctx.analysis = &analysis_;
    return Unwrap(fo::Evaluate(*formula_, ctx));
  }

  bool EvalBool(const std::string& text) {
    Relation r = Eval(text);
    EXPECT_EQ(r.arity(), 0u) << text << " is not closed";
    return r.AsBool();
  }

  Relation Counterexamples(const std::string& text) {
    formula_ = Unwrap(tl::ParseFormula(text));
    analysis_ = Unwrap(tl::Analyze(*formula_, Catalog()));
    fo::EvalContext ctx;
    ctx.db = &db_;
    ctx.analysis = &analysis_;
    return Unwrap(fo::ComputeCounterexamples(*formula_, ctx));
  }

  Database db_;
  tl::FormulaPtr formula_;
  tl::Analysis analysis_;
};

// ---- leaves ------------------------------------------------------------------

TEST_F(FoEvalTest, AtomScan) {
  EXPECT_EQ(Eval("Mgr(x)"), IntRelation({"x"}, {{2}}));
}

TEST_F(FoEvalTest, AtomWithConstant) {
  EXPECT_EQ(Eval("Emp(e, 200)"), IntRelation({"e"}, {{2}}));
  EXPECT_TRUE(Eval("Emp(e, 999)").empty());
}

TEST_F(FoEvalTest, AtomWithRepeatedVariable) {
  Table* emp = Unwrap(db_.GetMutableTable("Emp"));
  RTIC_ASSERT_OK(emp->Insert(T(I(7), I(7))).status());
  EXPECT_EQ(Eval("Emp(x, x)"), IntRelation({"x"}, {{7}}));
}

TEST_F(FoEvalTest, ClosedAtomIsBoolean) {
  EXPECT_TRUE(EvalBool("Mgr(2)"));
  EXPECT_FALSE(EvalBool("Mgr(1)"));
}

TEST_F(FoEvalTest, BoolConstants) {
  EXPECT_TRUE(EvalBool("true"));
  EXPECT_FALSE(EvalBool("false"));
}

TEST_F(FoEvalTest, ConstantComparison) {
  EXPECT_TRUE(EvalBool("3 > 2"));
  EXPECT_FALSE(EvalBool("2 != 2"));
  EXPECT_TRUE(EvalBool("'a' < 'b'"));
}

// ---- conjunction: generators + filters ------------------------------------------

TEST_F(FoEvalTest, JoinOnSharedVariable) {
  EXPECT_EQ(Eval("Emp(x, s) and Mgr(x)"), IntRelation({"s", "x"}, {{200, 2}}));
}

TEST_F(FoEvalTest, ComparisonFiltersBoundRows) {
  EXPECT_EQ(Eval("Emp(x, s) and s > 150"),
            IntRelation({"s", "x"}, {{200, 2}, {300, 3}}));
}

TEST_F(FoEvalTest, VariableToVariableComparison) {
  EXPECT_EQ(Eval("Emp(x, s) and Emp(y, t) and s < t and x != y").size(), 3u);
}

TEST_F(FoEvalTest, NegatedAtomViaAntiJoin) {
  EXPECT_EQ(Eval("Emp(x, s) and not Mgr(x)"),
            IntRelation({"s", "x"}, {{100, 1}, {300, 3}}));
}

TEST_F(FoEvalTest, NegatedConjunctionInsideAnd) {
  // not (Mgr(x) and s = 200) keeps employees that are not (manager w/ 200).
  EXPECT_EQ(Eval("Emp(x, s) and not (Mgr(x) and s = 200)"),
            IntRelation({"s", "x"}, {{100, 1}, {300, 3}}));
}

TEST_F(FoEvalTest, ImpliesInsideAndActsAsFilter) {
  // Mgr(x) implies s = 200: holds for non-managers and for 2/200.
  EXPECT_EQ(Eval("Emp(x, s) and (Mgr(x) implies s = 200)").size(), 3u);
  EXPECT_EQ(Eval("Emp(x, s) and (Mgr(x) implies s = 999)").size(), 2u);
}

// ---- disjunction -----------------------------------------------------------------

TEST_F(FoEvalTest, UnionOfSameColumns) {
  EXPECT_EQ(Eval("Mgr(x) or Emp(x, 100)"), IntRelation({"x"}, {{1}, {2}}));
}

TEST_F(FoEvalTest, ClosedOr) {
  EXPECT_TRUE(EvalBool("Mgr(2) or Mgr(9)"));
  EXPECT_FALSE(EvalBool("Mgr(8) or Mgr(9)"));
}

// ---- quantifiers -----------------------------------------------------------------

TEST_F(FoEvalTest, ExistsProjects) {
  EXPECT_EQ(Eval("exists s: Emp(x, s) and s >= 200"),
            IntRelation({"x"}, {{2}, {3}}));
}

TEST_F(FoEvalTest, ClosedExists) {
  EXPECT_TRUE(EvalBool("exists x: Mgr(x)"));
  EXPECT_FALSE(EvalBool("exists x: Emp(x, 150)"));
}

TEST_F(FoEvalTest, ForallOverImplication) {
  EXPECT_TRUE(EvalBool("forall x, s: Emp(x, s) implies s >= 100"));
  EXPECT_FALSE(EvalBool("forall x, s: Emp(x, s) implies s >= 150"));
}

TEST_F(FoEvalTest, ForallWithConjunctionAntecedent) {
  EXPECT_TRUE(EvalBool("forall x, s: Emp(x, s) and Mgr(x) implies s = 200"));
}

TEST_F(FoEvalTest, NestedQuantifiers) {
  // Every manager has a name.
  EXPECT_TRUE(EvalBool("forall x: Mgr(x) implies (exists n: Name(x, n))"));
  // Not every employee has a name (3 has none).
  EXPECT_FALSE(
      EvalBool("forall x, s: Emp(x, s) implies (exists n: Name(x, n))"));
}

TEST_F(FoEvalTest, ForallReturnsRelationWhenOpen) {
  // For which salaries s does every employee with salary s satisfy Mgr?
  Relation r = Eval("forall x: Emp(x, s) implies Mgr(x)");
  // s ranges over the active domain; all s except 100 and 300 qualify
  // (s=200 -> emp 2 is a manager; s not a salary -> vacuous).
  EXPECT_TRUE(r.Contains(T(I(200))));
  EXPECT_FALSE(r.Contains(T(I(100))));
  EXPECT_FALSE(r.Contains(T(I(300))));
  EXPECT_TRUE(r.Contains(T(I(1))));  // vacuously true
}

// ---- negation --------------------------------------------------------------------

TEST_F(FoEvalTest, StandaloneNotUsesDomainComplement) {
  Relation r = Eval("not Mgr(x)");
  // Complement over the active int domain: {1,2,3,100,200,300} minus {2}.
  EXPECT_EQ(r.size(), 5u);
  EXPECT_FALSE(r.Contains(T(I(2))));
  EXPECT_TRUE(r.Contains(T(I(100))));
}

TEST_F(FoEvalTest, ClosedNegations) {
  EXPECT_TRUE(EvalBool("not Mgr(3)"));
  EXPECT_FALSE(EvalBool("not (exists x: Mgr(x))"));
  EXPECT_TRUE(EvalBool("not not Mgr(2)"));
}

TEST_F(FoEvalTest, DeMorganEquivalence) {
  EXPECT_EQ(EvalBool("not (Mgr(2) and Mgr(3))"),
            EvalBool("not Mgr(2) or not Mgr(3)"));
  EXPECT_EQ(EvalBool("not (Mgr(2) or Mgr(3))"),
            EvalBool("not Mgr(2) and not Mgr(3)"));
}

TEST_F(FoEvalTest, ImpliesEquivalentToNotOr) {
  for (const char* lhs : {"Mgr(2)", "Mgr(3)"}) {
    for (const char* rhs : {"Mgr(2)", "Mgr(3)"}) {
      std::string imp = std::string(lhs) + " implies " + rhs;
      std::string nor = std::string("not ") + lhs + " or " + rhs;
      EXPECT_EQ(EvalBool(imp), EvalBool(nor)) << imp;
    }
  }
}

// ---- mixed-type evaluation ----------------------------------------------------

TEST_F(FoEvalTest, StringColumnsEvaluate) {
  Relation r = Eval("Name(x, n) and n = 'bob'");
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(T(S("bob"), I(2))));
}

// ---- error paths ----------------------------------------------------------------

TEST_F(FoEvalTest, TemporalWithoutResolverFails) {
  formula_ = Unwrap(tl::ParseFormula("once Mgr(x)"));
  analysis_ = Unwrap(tl::Analyze(*formula_, Catalog()));
  fo::EvalContext ctx;
  ctx.db = &db_;
  ctx.analysis = &analysis_;
  auto r = fo::Evaluate(*formula_, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(FoEvalTest, MissingContextFails) {
  formula_ = Unwrap(tl::ParseFormula("true"));
  fo::EvalContext ctx;
  EXPECT_FALSE(fo::Evaluate(*formula_, ctx).ok());
}

// ---- counterexamples ---------------------------------------------------------

TEST_F(FoEvalTest, CounterexamplesForViolatedForall) {
  Relation c = Counterexamples("forall x, s: Emp(x, s) implies s >= 150");
  EXPECT_EQ(c.size(), 1u);
  // Columns sorted: s, x.
  EXPECT_TRUE(c.Contains(T(I(100), I(1))));
}

TEST_F(FoEvalTest, CounterexamplesEmptyWhenSatisfied) {
  Relation c = Counterexamples("forall x, s: Emp(x, s) implies s >= 100");
  EXPECT_TRUE(c.empty());
}

TEST_F(FoEvalTest, CounterexamplesForNestedForalls) {
  Relation c =
      Counterexamples("forall x: forall s: Emp(x, s) implies s >= 150");
  EXPECT_EQ(c.size(), 1u);
}

TEST_F(FoEvalTest, CounterexamplesForNonForallIsBoolean) {
  Relation c = Counterexamples("exists x: Mgr(x)");
  EXPECT_EQ(c.arity(), 0u);
  EXPECT_FALSE(c.AsBool());  // formula holds -> no counterexample
}

// ---- domain handling -----------------------------------------------------------

TEST_F(FoEvalTest, TrackerWidensQuantificationDomain) {
  // 777 is not a formula constant and not in the current state, so only a
  // tracker that once absorbed it can make the existential true.
  formula_ = Unwrap(tl::ParseFormula("exists x: not Mgr(x) and x > 500"));
  analysis_ = Unwrap(tl::Analyze(*formula_, Catalog()));

  fo::EvalContext ctx;
  ctx.db = &db_;
  ctx.analysis = &analysis_;
  EXPECT_FALSE(Unwrap(fo::Evaluate(*formula_, ctx)).AsBool());

  DomainTracker tracker;
  tracker.Absorb(db_);
  tracker.AbsorbValues({I(777)});
  ctx.domain = &tracker;
  EXPECT_TRUE(Unwrap(fo::Evaluate(*formula_, ctx)).AsBool());
}

TEST_F(FoEvalTest, FormulaConstantsJoinTheDomain) {
  // 42 occurs in the formula, so the existential can reach it.
  EXPECT_TRUE(EvalBool("exists x: x = 42"));
}

TEST_F(FoEvalTest, ExtraConstantsJoinTheDomain) {
  formula_ = Unwrap(tl::ParseFormula("exists x: not Mgr(x) and not Emp(x, x)"));
  analysis_ = Unwrap(tl::Analyze(*formula_, Catalog()));
  std::vector<Value> extras{I(555)};
  fo::EvalContext ctx;
  ctx.db = &db_;
  ctx.analysis = &analysis_;
  ctx.extra_constants = &extras;
  EXPECT_TRUE(Unwrap(fo::Evaluate(*formula_, ctx)).AsBool());
}

}  // namespace
}  // namespace rtic
