// Randomized language-level property tests:
//   * print-parse round trip: every generated formula survives
//     PrintFormula -> ParseFormula structurally intact;
//   * normalizer preservation: NormalizeForEngines (and EliminateImplies)
//     keep the semantics — the naive engine run on the original and on the
//     normalized constraint produces identical verdict sequences.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/engine_test_util.h"
#include "tests/formula_gen.h"
#include "tl/normalizer.h"
#include "tl/parser.h"

namespace rtic {
namespace {

using testing::BuildState;
using testing::FormulaGen;
using testing::I;
using testing::PQRSchemas;
using testing::RandomConstraint;
using testing::ScenarioStep;
using testing::T;
using testing::Unwrap;
using tl::FormulaPtr;

class FormulaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormulaPropertyTest, PrintParseRoundTrip) {
  Rng rng(GetParam() * 7919);
  FormulaGen gen(&rng);
  for (int round = 0; round < 25; ++round) {
    FormulaPtr f;
    switch (rng.Uniform(3)) {
      case 0:
        f = gen.Gen({"x"}, 4);
        break;
      case 1:
        f = gen.Gen({"x", "y"}, 4);
        break;
      default:
        f = RandomConstraint(&rng);
        break;
    }
    std::string printed = f->ToString();
    auto reparsed = tl::ParseFormula(printed);
    ASSERT_TRUE(reparsed.ok())
        << "printed form does not reparse: " << printed << "\n"
        << reparsed.status().ToString();
    EXPECT_TRUE(f->Equals(**reparsed))
        << "round trip changed structure:\n  " << printed << "\n  "
        << (*reparsed)->ToString();
    EXPECT_EQ(printed, (*reparsed)->ToString());
  }
}

TEST_P(FormulaPropertyTest, NormalizationPreservesVerdicts) {
  Rng rng(GetParam() * 104729);
  const auto schemas = PQRSchemas();
  tl::PredicateCatalog catalog;
  for (const auto& [name, schema] : schemas) catalog[name] = schema;

  for (int round = 0; round < 2; ++round) {
    FormulaPtr original = RandomConstraint(&rng);
    FormulaPtr normalized = tl::NormalizeForEngines(*original);
    FormulaPtr no_implies = tl::EliminateImplies(*original);
    SCOPED_TRACE("constraint: " + original->ToString());

    auto e_orig = Unwrap(NaiveEngine::Create(*original, catalog));
    auto e_norm = Unwrap(NaiveEngine::Create(*normalized, catalog));
    auto e_noimp = Unwrap(NaiveEngine::Create(*no_implies, catalog));

    Timestamp t = 0;
    for (int i = 0; i < 8; ++i) {
      t += rng.UniformInt(1, 3);
      ScenarioStep step{t, {}};
      for (std::int64_t a = 0; a <= 2; ++a) {
        if (rng.Bernoulli(0.4)) step.tables["P"].push_back(T(I(a)));
        if (rng.Bernoulli(0.4)) step.tables["Q"].push_back(T(I(a)));
        for (std::int64_t b = 0; b <= 2; ++b) {
          if (rng.Bernoulli(0.3)) step.tables["R"].push_back(T(I(a), I(b)));
        }
      }
      Database state = Unwrap(BuildState(schemas, step));
      bool v1 = Unwrap(e_orig->OnTransition(state, t));
      bool v2 = Unwrap(e_norm->OnTransition(state, t));
      bool v3 = Unwrap(e_noimp->OnTransition(state, t));
      ASSERT_EQ(v1, v2) << "NormalizeForEngines changed semantics at t=" << t;
      ASSERT_EQ(v1, v3) << "EliminateImplies changed semantics at t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulaPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace rtic
