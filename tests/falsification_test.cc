// Tests for the falsification-set evaluator (EvaluateFalsifications): the
// fast path behind violation witnesses. Checks the defining identity
// BadSet(φ) = Domain^free(φ) − Evaluate(φ) on random formulas and states,
// and that implication-shaped formulas never enumerate a domain product
// (observed through result completeness on values outside small domains).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fo/eval.h"
#include "ra/ops.h"
#include "tests/test_util.h"
#include "tl/parser.h"

namespace rtic {
namespace {

using testing::I;
using testing::IntSchema;
using testing::T;
using testing::Unwrap;

class FalsificationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RTIC_ASSERT_OK(db_.CreateTable("P", IntSchema({"a"})));
    RTIC_ASSERT_OK(db_.CreateTable("Q", IntSchema({"a"})));
    RTIC_ASSERT_OK(db_.CreateTable("R", IntSchema({"a", "b"})));
  }

  tl::PredicateCatalog Catalog() {
    tl::PredicateCatalog catalog;
    for (const std::string& name : db_.TableNames()) {
      catalog[name] = Unwrap(db_.GetTable(name))->schema();
    }
    return catalog;
  }

  /// Fills tables randomly with values in [0, 3].
  void Randomize(Rng* rng) {
    for (const char* t : {"P", "Q"}) {
      Table* table = Unwrap(db_.GetMutableTable(t));
      table->Clear();
      for (std::int64_t a = 0; a <= 3; ++a) {
        if (rng->Bernoulli(0.5)) {
          RTIC_ASSERT_OK(table->Insert(T(I(a))).status());
        }
      }
    }
    Table* r = Unwrap(db_.GetMutableTable("R"));
    r->Clear();
    for (std::int64_t a = 0; a <= 3; ++a) {
      for (std::int64_t b = 0; b <= 3; ++b) {
        if (rng->Bernoulli(0.3)) {
          RTIC_ASSERT_OK(r->Insert(T(I(a), I(b))).status());
        }
      }
    }
  }

  fo::EvalContext Ctx() {
    fo::EvalContext ctx;
    ctx.db = &db_;
    ctx.analysis = &analysis_;
    return ctx;
  }

  /// Evaluates both the satisfaction and falsification sets of `text` and
  /// checks they partition the domain product exactly.
  void CheckPartition(const std::string& text) {
    formula_ = Unwrap(tl::ParseFormula(text));
    analysis_ = Unwrap(tl::Analyze(*formula_, Catalog()));
    Relation sat = Unwrap(fo::Evaluate(*formula_, Ctx()));
    Relation bad = Unwrap(fo::EvaluateFalsifications(*formula_, Ctx()));

    // Domain product over the formula's free variables.
    Relation domain = Relation::True();
    for (const Column& col : analysis_.ColumnsFor(*formula_)) {
      Relation d = ra::FromValues(col.name, col.type,
                                  fo::ActiveDomain(Ctx(), col.type));
      domain = Unwrap(ra::CrossProduct(domain, d));
    }
    EXPECT_EQ(bad, Unwrap(ra::Difference(domain, sat)))
        << text << "\nsat: " << sat.ToString()
        << "\nbad: " << bad.ToString();
    EXPECT_TRUE(Unwrap(ra::Intersect(sat, bad)).empty()) << text;
  }

  Database db_;
  tl::FormulaPtr formula_;
  tl::Analysis analysis_;
};

TEST_F(FalsificationTest, PartitionHoldsOnRandomStates) {
  const char* corpus[] = {
      "P(x)",
      "not P(x)",
      "P(x) and Q(x)",
      "P(x) or Q(x)",
      "P(x) implies Q(x)",
      "P(x) implies x >= 2",
      "R(x, y) implies x <= y",
      "R(x, y) implies P(x) and Q(y)",
      "not P(x) or Q(x)",
      "P(x) and not Q(x)",
      "(P(x) implies Q(x)) and (Q(x) implies P(x))",
      "exists y: R(x, y)",
      "forall y: R(x, y) implies Q(y)",
      "P(x) implies (exists y: R(x, y) and y != x)",
      "x = 2",
      "x != 2 and P(x)",
  };
  Rng rng(314);
  for (int round = 0; round < 8; ++round) {
    Randomize(&rng);
    for (const char* text : corpus) {
      CheckPartition(text);
    }
  }
}

TEST_F(FalsificationTest, ClosedFormulaFalsificationIsBooleanComplement) {
  Rng rng(99);
  Randomize(&rng);
  for (const char* text :
       {"exists x: P(x)", "forall x: P(x) implies Q(x)",
        "not (exists x: P(x) and not Q(x))"}) {
    formula_ = Unwrap(tl::ParseFormula(text));
    analysis_ = Unwrap(tl::Analyze(*formula_, Catalog()));
    bool sat = Unwrap(fo::Evaluate(*formula_, Ctx())).AsBool();
    bool bad = Unwrap(fo::EvaluateFalsifications(*formula_, Ctx())).AsBool();
    EXPECT_NE(sat, bad) << text;
  }
}

TEST_F(FalsificationTest, ImplicationWitnessesComeFromTheAntecedent) {
  // Values outside every "domain" would be invisible to a complement-based
  // implementation only if the antecedent didn't generate them; check the
  // generated path picks up exactly the antecedent rows that fail.
  Table* r = Unwrap(db_.GetMutableTable("R"));
  RTIC_ASSERT_OK(r->Insert(T(I(1), I(5))).status());
  RTIC_ASSERT_OK(r->Insert(T(I(2), I(1))).status());

  formula_ = Unwrap(tl::ParseFormula("R(x, y) implies x <= y"));
  analysis_ = Unwrap(tl::Analyze(*formula_, Catalog()));
  Relation bad = Unwrap(fo::EvaluateFalsifications(*formula_, Ctx()));
  EXPECT_EQ(bad.size(), 1u);
  EXPECT_TRUE(bad.Contains(T(I(2), I(1))));
}

}  // namespace
}  // namespace rtic
