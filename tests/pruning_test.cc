// Property tests for the bounded-history-encoding pruning rules — the heart
// of the paper's space claim. The central invariant: for EVERY future query
// time, the pruned anchor list answers the window-membership query exactly
// like the unpruned list would.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "engines/incremental/pruning.h"

namespace rtic {
namespace {

std::vector<Timestamp> Pruned(std::vector<Timestamp> ts, Timestamp now,
                              TimeInterval interval, PruningPolicy policy) {
  PruneTimestamps(&ts, now, interval, policy);
  return ts;
}

// ---- basic behaviour ---------------------------------------------------------

TEST(PruningTest, ExpiryDropsAnchorsPastTheWindow) {
  std::vector<Timestamp> ts =
      Pruned({1, 5, 9}, 20, TimeInterval(0, 10), PruningPolicy::kExpiryOnly);
  // now - ts > 10 expires ts < 10: drops 1, 5, 9.
  EXPECT_TRUE(ts.empty());

  ts = Pruned({1, 12, 15}, 20, TimeInterval(0, 10),
              PruningPolicy::kExpiryOnly);
  EXPECT_EQ(ts, (std::vector<Timestamp>{12, 15}));
}

TEST(PruningTest, ExpiryKeepsBoundaryAnchor) {
  // now - ts == hi is still inside the window.
  std::vector<Timestamp> ts =
      Pruned({10}, 20, TimeInterval(0, 10), PruningPolicy::kExpiryOnly);
  EXPECT_EQ(ts, (std::vector<Timestamp>{10}));
}

TEST(PruningTest, ExpiryOnlyNeverPrunesUnboundedIntervals) {
  std::vector<Timestamp> ts = Pruned({1, 2, 3}, 1000, TimeInterval::All(),
                                     PruningPolicy::kExpiryOnly);
  EXPECT_EQ(ts.size(), 3u);
}

TEST(PruningTest, UnboundedFullPruningKeepsOnlyEarliest) {
  std::vector<Timestamp> ts =
      Pruned({3, 7, 12}, 15, TimeInterval(2, kTimeInfinity),
             PruningPolicy::kFull);
  EXPECT_EQ(ts, (std::vector<Timestamp>{3}));
}

TEST(PruningTest, ZeroLowerBoundKeepsOnlyLatest) {
  // All anchors are mature when lo = 0; the newest dominates.
  std::vector<Timestamp> ts =
      Pruned({3, 7, 12}, 15, TimeInterval(0, 100), PruningPolicy::kFull);
  EXPECT_EQ(ts, (std::vector<Timestamp>{12}));
}

TEST(PruningTest, ImmatureAnchorsAreAllKept) {
  // lo = 10: anchors younger than 10 are immature; one mature survivor.
  std::vector<Timestamp> ts =
      Pruned({1, 3, 12, 14}, 20, TimeInterval(10, 100), PruningPolicy::kFull);
  // Mature: 1, 3 (age >= 10) -> keep 3. Immature: 12, 14 kept.
  EXPECT_EQ(ts, (std::vector<Timestamp>{3, 12, 14}));
}

TEST(PruningTest, SingletonAndEmptyListsUntouched) {
  EXPECT_TRUE(
      Pruned({}, 10, TimeInterval(0, 5), PruningPolicy::kFull).empty());
  EXPECT_EQ(
      Pruned({8}, 10, TimeInterval(0, 5), PruningPolicy::kFull).size(), 1u);
}

// ---- AnyInWindow ----------------------------------------------------------------

TEST(AnyInWindowTest, ChecksInclusiveWindow) {
  std::vector<Timestamp> ts{5, 9};
  EXPECT_TRUE(AnyInWindow(ts, 10, TimeInterval(0, 5)));    // 9 in [5,10]
  EXPECT_TRUE(AnyInWindow(ts, 10, TimeInterval(1, 5)));    // 9 in [5,9]
  EXPECT_TRUE(AnyInWindow(ts, 10, TimeInterval(5, 5)));    // 5 in [5,5]
  EXPECT_FALSE(AnyInWindow(ts, 10, TimeInterval(2, 3)));   // [7,8] empty
  EXPECT_TRUE(AnyInWindow(ts, 10, TimeInterval(3, kTimeInfinity)));
  EXPECT_FALSE(AnyInWindow(ts, 10, TimeInterval(6, kTimeInfinity)));
  EXPECT_FALSE(AnyInWindow({}, 10, TimeInterval::All()));
}

// ---- the key property: pruning is invisible to all future queries ---------------

struct PruningCase {
  Timestamp lo;
  Timestamp hi;  // kTimeInfinity for unbounded
};

class PruningEquivalenceTest : public ::testing::TestWithParam<PruningCase> {};

TEST_P(PruningEquivalenceTest, PrunedAnswersEveryFutureQueryIdentically) {
  const PruningCase& pc = GetParam();
  TimeInterval interval(pc.lo, pc.hi);
  Rng rng(pc.lo * 131 + (pc.hi == kTimeInfinity ? 977 : pc.hi));

  for (int round = 0; round < 200; ++round) {
    // Random ascending anchor list and a current time at/after the last.
    std::vector<Timestamp> anchors;
    Timestamp t = rng.UniformInt(0, 5);
    std::size_t n = 1 + rng.Uniform(8);
    for (std::size_t i = 0; i < n; ++i) {
      anchors.push_back(t);
      t += rng.UniformInt(1, 6);
    }
    Timestamp now = anchors.back() + rng.UniformInt(0, 4);

    std::vector<Timestamp> pruned = anchors;
    PruneTimestamps(&pruned, now, interval, PruningPolicy::kFull);

    // Sanity: the pruned list is a subset, still ascending.
    for (std::size_t i = 1; i < pruned.size(); ++i) {
      EXPECT_LT(pruned[i - 1], pruned[i]);
    }

    // Every future query time answers identically (probe a generous range).
    Timestamp horizon =
        now + (pc.hi == kTimeInfinity ? 40 : pc.hi + 5);
    for (Timestamp q = now; q <= horizon; ++q) {
      EXPECT_EQ(AnyInWindow(anchors, q, interval),
                AnyInWindow(pruned, q, interval))
          << "query time " << q << " now " << now << " interval "
          << interval.ToString();
    }
  }
}

TEST_P(PruningEquivalenceTest, PrunedSizeIsBounded) {
  const PruningCase& pc = GetParam();
  TimeInterval interval(pc.lo, pc.hi);
  Rng rng(pc.lo * 31 + (pc.hi == kTimeInfinity ? 7 : pc.hi));

  for (int round = 0; round < 100; ++round) {
    std::vector<Timestamp> anchors;
    Timestamp t = 0;
    for (int i = 0; i < 200; ++i) {  // long, dense history
      anchors.push_back(t);
      t += rng.UniformInt(1, 2);
    }
    Timestamp now = anchors.back();
    std::vector<Timestamp> pruned = anchors;
    PruneTimestamps(&pruned, now, interval, PruningPolicy::kFull);

    if (pc.hi == kTimeInfinity || pc.lo == 0) {
      EXPECT_LE(pruned.size(), 1u);
    } else {
      // 1 mature + at most one anchor per distinct timestamp younger than
      // lo: bounded by the interval, not by the history length (200).
      EXPECT_LE(pruned.size(), static_cast<std::size_t>(pc.lo) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Windows, PruningEquivalenceTest,
    ::testing::Values(PruningCase{0, 0}, PruningCase{0, 5},
                      PruningCase{1, 5}, PruningCase{3, 3},
                      PruningCase{2, 10}, PruningCase{5, 6},
                      PruningCase{0, kTimeInfinity},
                      PruningCase{4, kTimeInfinity},
                      PruningCase{10, 20}, PruningCase{1, 1}));

TEST(PruningTest, ExpiryOnlyAlsoPreservesQueries) {
  // The ablation policy must also be query-equivalent (it just keeps more).
  Rng rng(4242);
  TimeInterval interval(2, 9);
  for (int round = 0; round < 100; ++round) {
    std::vector<Timestamp> anchors;
    Timestamp t = rng.UniformInt(0, 3);
    for (int i = 0; i < 10; ++i) {
      anchors.push_back(t);
      t += rng.UniformInt(1, 4);
    }
    Timestamp now = anchors.back();
    std::vector<Timestamp> pruned = anchors;
    PruneTimestamps(&pruned, now, interval, PruningPolicy::kExpiryOnly);
    for (Timestamp q = now; q <= now + 15; ++q) {
      EXPECT_EQ(AnyInWindow(anchors, q, interval),
                AnyInWindow(pruned, q, interval));
    }
  }
}

}  // namespace
}  // namespace rtic
