// Tests for the ConstraintMonitor facade: registration, update application,
// violation reporting with witnesses, clock ticks, engine selection, and
// error paths.

#include <gtest/gtest.h>

#include "monitor/monitor.h"
#include "tests/test_util.h"

namespace rtic {
namespace {

using testing::I;
using testing::IntSchema;
using testing::S;
using testing::T;
using testing::Unwrap;

class MonitorTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  MonitorOptions Options() {
    MonitorOptions options;
    options.engine = GetParam();
    return options;
  }
};

TEST_P(MonitorTest, EndToEndPayCutDetection) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("Emp", IntSchema({"id", "salary"})));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "no_pay_cut",
      "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies s >= s0"));

  UpdateBatch hire(1);
  hire.Insert("Emp", T(I(1), I(100)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(hire)).empty());

  UpdateBatch cut(2);
  cut.Delete("Emp", T(I(1), I(100)));
  cut.Insert("Emp", T(I(1), I(90)));
  std::vector<Violation> v = Unwrap(monitor.ApplyUpdate(cut));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].constraint_name, "no_pay_cut");
  EXPECT_EQ(v[0].timestamp, 2);
  EXPECT_EQ(v[0].witness_columns,
            (std::vector<std::string>{"e", "s", "s0"}));
  ASSERT_EQ(v[0].witnesses.size(), 1u);
  EXPECT_EQ(v[0].witnesses[0], T(I(1), I(90), I(100)));
  EXPECT_EQ(monitor.total_violations(), 1u);
}

TEST_P(MonitorTest, TickCanCauseDeadlineViolation) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("Active", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.CreateTable("Raise", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "deadline",
      "forall a: Active(a) implies Active(a) since[0, 5] Raise(a)"));

  UpdateBatch raise(1);
  raise.Insert("Raise", T(I(7)));
  raise.Insert("Active", T(I(7)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(raise)).empty());

  UpdateBatch clear_event(2);
  clear_event.Delete("Raise", T(I(7)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(clear_event)).empty());

  // Nothing changes, but the clock passes the deadline.
  EXPECT_TRUE(Unwrap(monitor.Tick(6)).empty());
  std::vector<Violation> v = Unwrap(monitor.Tick(7));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].witnesses[0], T(I(7)));
}

TEST_P(MonitorTest, MultipleConstraintsReportIndependently) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.CreateTable("Q", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "p_needs_q", "forall a: P(a) implies Q(a)"));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "q_once_p", "forall a: Q(a) implies once P(a)"));
  EXPECT_EQ(monitor.ConstraintNames(),
            (std::vector<std::string>{"p_needs_q", "q_once_p"}));

  UpdateBatch b(1);
  b.Insert("P", T(I(1)));  // violates p_needs_q
  b.Insert("Q", T(I(2)));  // violates q_once_p
  std::vector<Violation> v = Unwrap(monitor.ApplyUpdate(b));
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].constraint_name, "p_needs_q");
  EXPECT_EQ(v[1].constraint_name, "q_once_p");
}

TEST_P(MonitorTest, WitnessLimitIsApplied) {
  MonitorOptions options = Options();
  options.max_witnesses = 2;
  ConstraintMonitor monitor(options);
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "never_p", "forall a: P(a) implies false"));
  UpdateBatch b(1);
  for (int i = 0; i < 5; ++i) b.Insert("P", T(I(i)));
  std::vector<Violation> v = Unwrap(monitor.ApplyUpdate(b));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].witnesses.size(), 2u);
}

TEST_P(MonitorTest, RegistrationErrors) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  // Parse error.
  EXPECT_FALSE(monitor.RegisterConstraint("bad", "P(").ok());
  // Unknown predicate.
  EXPECT_FALSE(monitor.RegisterConstraint("bad", "forall a: Zz(a)").ok());
  // Open formula.
  EXPECT_FALSE(monitor.RegisterConstraint("bad", "P(a)").ok());
  // Duplicate name.
  RTIC_ASSERT_OK(monitor.RegisterConstraint("ok", "forall a: P(a) implies true"));
  EXPECT_EQ(
      monitor.RegisterConstraint("ok", "forall a: P(a) implies true").code(),
      StatusCode::kAlreadyExists);
}

TEST_P(MonitorTest, TimestampsMustAdvance) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  (void)Unwrap(monitor.ApplyUpdate(UpdateBatch(5)));
  EXPECT_FALSE(monitor.ApplyUpdate(UpdateBatch(5)).ok());
  EXPECT_FALSE(monitor.ApplyUpdate(UpdateBatch(4)).ok());
  EXPECT_TRUE(monitor.ApplyUpdate(UpdateBatch(6)).ok());
  EXPECT_EQ(monitor.current_time(), 6);
  EXPECT_EQ(monitor.transition_count(), 2u);
}

TEST_P(MonitorTest, TablesLockedAfterFirstUpdate) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  (void)Unwrap(monitor.ApplyUpdate(UpdateBatch(1)));
  EXPECT_EQ(monitor.CreateTable("Q", IntSchema({"a"})).code(),
            StatusCode::kFailedPrecondition);
}

TEST_P(MonitorTest, WarningsSurfaceAtRegistration) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "warned", "not (exists a: not P(a))"));
  std::vector<std::string> warnings = Unwrap(monitor.WarningsFor("warned"));
  EXPECT_FALSE(warnings.empty());
  EXPECT_FALSE(monitor.WarningsFor("unknown").ok());
}

TEST_P(MonitorTest, DomainConstantsWidenQuantification) {
  MonitorOptions options = Options();
  options.domain_constants = {I(10), I(11)};
  ConstraintMonitor monitor(options);
  RTIC_ASSERT_OK(monitor.CreateTable("Seen", IntSchema({"a"})));
  // "every registered id has been seen" — ids live only in the options.
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "all_seen", "not (exists a: a >= 10 and a <= 11 and not Seen(a))"));
  UpdateBatch b1(1);
  b1.Insert("Seen", T(I(10)));
  std::vector<Violation> v = Unwrap(monitor.ApplyUpdate(b1));
  EXPECT_EQ(v.size(), 1u);  // 11 not seen
  UpdateBatch b2(2);
  b2.Insert("Seen", T(I(11)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(b2)).empty());
}

TEST_P(MonitorTest, ViolationToStringIsReadable) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(
      monitor.RegisterConstraint("never", "forall a: P(a) implies false"));
  UpdateBatch b(3);
  b.Insert("P", T(I(9)));
  std::vector<Violation> v = Unwrap(monitor.ApplyUpdate(b));
  ASSERT_EQ(v.size(), 1u);
  std::string s = v[0].ToString();
  EXPECT_NE(s.find("never"), std::string::npos);
  EXPECT_NE(s.find("time 3"), std::string::npos);
  EXPECT_NE(s.find("(9)"), std::string::npos);
}

TEST_P(MonitorTest, StorageAccountingIsVisible) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "c", "forall a: P(a) implies once[0, inf] P(a)"));
  UpdateBatch b(1);
  b.Insert("P", T(I(1)));
  (void)Unwrap(monitor.ApplyUpdate(b));
  EXPECT_GT(monitor.TotalStorageRows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, MonitorTest,
    ::testing::Values(EngineKind::kIncremental, EngineKind::kNaive,
                      EngineKind::kActive),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return EngineKindToString(info.param);
    });

TEST_P(MonitorTest, StatsAccumulatePerConstraint) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(
      monitor.RegisterConstraint("always_ok", "forall a: P(a) implies true"));
  RTIC_ASSERT_OK(
      monitor.RegisterConstraint("never_ok", "forall a: P(a) implies false"));

  UpdateBatch b1(1);
  b1.Insert("P", T(I(1)));
  (void)Unwrap(monitor.ApplyUpdate(b1));
  (void)Unwrap(monitor.Tick(2));

  std::vector<ConstraintStats> stats = monitor.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "always_ok");
  EXPECT_EQ(stats[0].transitions, 2u);
  EXPECT_EQ(stats[0].violations, 0u);
  EXPECT_EQ(stats[1].name, "never_ok");
  EXPECT_EQ(stats[1].transitions, 2u);
  EXPECT_EQ(stats[1].violations, 2u);
  EXPECT_GE(stats[1].max_check_micros, 0);
  EXPECT_GE(stats[1].MeanCheckMicros(), 0.0);
  EXPECT_NE(stats[1].ToString().find("never_ok"), std::string::npos);
}

TEST_P(MonitorTest, UnregisterStopsChecking) {
  ConstraintMonitor monitor(Options());
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(
      monitor.RegisterConstraint("never", "forall a: P(a) implies false"));
  UpdateBatch b1(1);
  b1.Insert("P", T(I(1)));
  EXPECT_EQ(Unwrap(monitor.ApplyUpdate(b1)).size(), 1u);

  RTIC_ASSERT_OK(monitor.UnregisterConstraint("never"));
  EXPECT_EQ(monitor.UnregisterConstraint("never").code(),
            StatusCode::kNotFound);
  UpdateBatch b2(2);
  b2.Insert("P", T(I(2)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(b2)).empty());
  EXPECT_TRUE(monitor.ConstraintNames().empty());
  // Re-registration under the same name starts fresh.
  RTIC_ASSERT_OK(
      monitor.RegisterConstraint("never", "forall a: P(a) implies false"));
}

// The shared-subplan pass must coalesce known-identical temporal subplans
// across constraints and report the count through ConstraintStats.
TEST(MonitorSharingTest, CoalescesKnownIdenticalSubplans) {
  MonitorOptions options;  // shared_subplans defaults to true
  ConstraintMonitor monitor(options);
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.CreateTable("Q", IntSchema({"a"})));
  // Both constraints contain the identical subplan "once[0, 5] Q(a)"; the
  // second also duplicates the first's "previous P(a)".
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "c1", "forall a: P(a) implies once[0, 5] Q(a) or previous P(a)"));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "c2", "forall a: Q(a) implies once[0, 5] Q(a) or previous P(a)"));
  // An exact duplicate of c1 additionally coalesces the verdict.
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "c3", "forall a: P(a) implies once[0, 5] Q(a) or previous P(a)"));

  const std::vector<ConstraintStats> stats = monitor.Stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].shared_subplans, 0u);  // first acquirer owns everything
  EXPECT_EQ(stats[1].shared_subplans, 2u);  // once + previous nodes
  EXPECT_EQ(stats[2].shared_subplans, 3u);  // both nodes + the verdict

  // Sharing stays correct through actual transitions.
  UpdateBatch b1(1);
  b1.Insert("P", T(I(1)));
  EXPECT_EQ(Unwrap(monitor.ApplyUpdate(b1)).size(), 2u);  // c1 and c3
  UpdateBatch b2(2);
  b2.Insert("Q", T(I(1)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(b2)).empty());
}

TEST(MonitorSharingTest, SharingOffKeepsEnginesPrivate) {
  MonitorOptions options;
  options.shared_subplans = false;
  ConstraintMonitor monitor(options);
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "c1", "forall a: P(a) implies once[0, 5] P(a)"));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "c2", "forall a: P(a) implies once[0, 5] P(a)"));
  for (const ConstraintStats& s : monitor.Stats()) {
    EXPECT_EQ(s.shared_subplans, 0u) << s.name;
  }
}

// Constraints registered mid-stream have seen a shorter history, so they
// must NOT coalesce with engines registered at an earlier epoch — their
// auxiliary state legitimately differs.
TEST(MonitorSharingTest, LateRegistrationDoesNotCoalesce) {
  ConstraintMonitor monitor;
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "early", "forall a: P(a) implies once[0, 100] P(a)"));
  UpdateBatch b1(1);
  b1.Insert("P", T(I(1)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(b1)).empty());

  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "late", "forall a: P(a) implies once[0, 100] P(a)"));
  const std::vector<ConstraintStats> stats = monitor.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[1].shared_subplans, 0u) << "late registrant must not "
                                             "coalesce across epochs";

  // Both engines keep checking independently after the late registration.
  UpdateBatch b2(2);
  b2.Delete("P", T(I(1)));
  b2.Insert("P", T(I(2)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(b2)).empty());
}

TEST(MonitorOptionsTest, EngineKindNames) {
  EXPECT_STREQ(EngineKindToString(EngineKind::kIncremental), "incremental");
  EXPECT_STREQ(EngineKindToString(EngineKind::kNaive), "naive");
  EXPECT_STREQ(EngineKindToString(EngineKind::kActive), "active");
}

}  // namespace
}  // namespace rtic
