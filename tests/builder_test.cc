// Tests for the fluent formula builder: built trees are structurally equal
// to their parsed counterparts and interoperate with the monitor.

#include <gtest/gtest.h>

#include "monitor/monitor.h"
#include "tests/test_util.h"
#include "tl/builder.h"
#include "tl/parser.h"

namespace rtic {
namespace tl {
namespace {

using namespace rtic::tl::build;  // NOLINT: the builder is designed for this
using rtic::testing::I;
using rtic::testing::IntSchema;
using rtic::testing::T;
using rtic::testing::Unwrap;

void ExpectSameAsParsed(const FormulaPtr& built, const std::string& text) {
  FormulaPtr parsed = Unwrap(ParseFormula(text));
  EXPECT_TRUE(built->Equals(*parsed))
      << "built:  " << built->ToString() << "\nparsed: " << text;
}

TEST(BuilderTest, AtomsAndComparisons) {
  ExpectSameAsParsed(Atom("P", {V("x"), C(int64_t{5})}), "P(x, 5)");
  ExpectSameAsParsed(Eq(V("x"), C("abc")), "x = 'abc'");
  ExpectSameAsParsed(Ge(V("s"), V("s0")), "s >= s0");
  ExpectSameAsParsed(Lt(C(1.5), V("t")), "1.5 < t");
  ExpectSameAsParsed(Ne(V("b"), C(true)), "b != true");
}

TEST(BuilderTest, Connectives) {
  ExpectSameAsParsed(Atom("P", {V("x")}) && Atom("Q", {V("x")}),
                     "P(x) and Q(x)");
  ExpectSameAsParsed(Atom("P", {V("x")}) || !Atom("Q", {V("x")}),
                     "P(x) or not Q(x)");
  ExpectSameAsParsed(
      (Atom("P", {V("x")}) >>= Atom("Q", {V("x")})),
      "P(x) implies Q(x)");
}

TEST(BuilderTest, OperatorPrecedenceMatchesLanguage) {
  // && binds tighter than >>= in C++ just like `and` vs `implies`.
  FormulaPtr built =
      (Atom("A", {}) && Atom("B", {}) >>= Atom("C", {}) || Atom("D", {}));
  ExpectSameAsParsed(built, "A() and B() implies C() or D()");
}

TEST(BuilderTest, QuantifiersAndTemporal) {
  ExpectSameAsParsed(Forall({"x"}, Atom("P", {V("x")})), "forall x: P(x)");
  ExpectSameAsParsed(Exists({"x", "y"}, Atom("R", {V("x"), V("y")})),
                     "exists x, y: R(x, y)");
  ExpectSameAsParsed(Previous(Atom("P", {V("x")})), "previous P(x)");
  ExpectSameAsParsed(Once(Within(10), Atom("P", {V("x")})),
                     "once[0, 10] P(x)");
  ExpectSameAsParsed(Historically(Window(2, 5), Atom("P", {V("x")})),
                     "historically[2, 5] P(x)");
  ExpectSameAsParsed(
      Since(After(3), Atom("P", {V("x")}), Atom("Q", {V("x")})),
      "P(x) since[3, inf] Q(x)");
}

TEST(BuilderTest, RealisticConstraint) {
  FormulaPtr built = Forall(
      {"e", "s", "s0"},
      (Atom("Emp", {V("e"), V("s")}) &&
       Previous(Atom("Emp", {V("e"), V("s0")}))) >>=
          Ge(V("s"), V("s0")));
  ExpectSameAsParsed(built,
                     "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) "
                     "implies s >= s0");
}

TEST(BuilderTest, BuiltFormulaWorksInMonitor) {
  ConstraintMonitor monitor;
  RTIC_ASSERT_OK(monitor.CreateTable("P", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.CreateTable("Q", IntSchema({"a"})));
  FormulaPtr constraint =
      Forall({"a"}, Atom("P", {V("a")}) >>=
                        Once(Within(5), Atom("Q", {V("a")})));
  RTIC_ASSERT_OK(monitor.RegisterConstraintFormula("built", *constraint));

  UpdateBatch b1(1);
  b1.Insert("Q", T(I(1)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(b1)).empty());
  UpdateBatch b2(8);
  b2.Delete("Q", T(I(1)));  // Q(1) left the state at t=1's aftermath
  b2.Insert("P", T(I(1)));
  std::vector<Violation> v = Unwrap(monitor.ApplyUpdate(b2));
  ASSERT_EQ(v.size(), 1u);  // Q(1) was 7 > 5 time units ago
  EXPECT_EQ(v[0].witnesses[0], T(I(1)));
}

TEST(BuilderTest, IntervalHelpers) {
  EXPECT_EQ(Within(7), TimeInterval(0, 7));
  EXPECT_EQ(Window(2, 9), TimeInterval(2, 9));
  EXPECT_EQ(After(4), TimeInterval(4, kTimeInfinity));
}

}  // namespace
}  // namespace tl
}  // namespace rtic
