// Log-shipping replication: wire format, transports, shipper/standby
// sessions, GC retention, and promotion.
//
// The pipe-based tests drive the shipper and standby by hand on one
// thread, so every interleaving is explicit; the TCP test exercises the
// real MonitorOptions wiring (background ship thread + length-prefixed
// socket transport) end to end and is the suite's TSan target.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "monitor/monitor.h"
#include "replication/repl_format.h"
#include "replication/shipper.h"
#include "replication/standby.h"
#include "replication/tcp_transport.h"
#include "replication/transport.h"
#include "tests/test_util.h"
#include "wal/file.h"
#include "wal/wal_format.h"
#include "workload/generators.h"

namespace rtic {
namespace {

using replication::CreatePipePair;
using replication::EncodeAck;
using replication::EncodeFileChunk;
using replication::EncodeFrame;
using replication::EncodeHello;
using replication::FaultInjectingTransport;
using replication::Frame;
using replication::FrameType;
using replication::ParseFrame;
using replication::SegmentShipper;
using replication::ShipperOptions;
using replication::StandbyMonitor;
using replication::StandbyOptions;
using replication::TcpConnect;
using replication::TcpListener;
using replication::Transport;
using replication::TransportFaultKind;
using testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_repl_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

std::string Render(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) out += v.ToString() + "\n";
  return out;
}

workload::Workload SmallPayroll(std::uint64_t seed = 5,
                                std::size_t length = 40) {
  workload::PayrollParams params;
  params.num_employees = 6;
  params.length = length;
  params.seed = seed;
  return workload::MakePayrollWorkload(params);
}

std::function<Status(ConstraintMonitor*)> ConfigureFor(
    const workload::Workload& wl) {
  return [&wl](ConstraintMonitor* m) -> Status {
    for (const auto& [name, schema] : wl.schema) {
      RTIC_RETURN_IF_ERROR(m->CreateTable(name, schema));
    }
    for (const auto& [name, text] : wl.constraints) {
      RTIC_RETURN_IF_ERROR(m->RegisterConstraint(name, text));
    }
    return Status::OK();
  };
}

MonitorOptions PrimaryOptions(const std::string& dir) {
  MonitorOptions options;
  options.wal_dir = dir;
  options.sync_policy = wal::SyncPolicy::kAlways;
  options.checkpoint_interval = 10;
  return options;
}

std::unique_ptr<ConstraintMonitor> MakePrimary(const workload::Workload& wl,
                                               MonitorOptions options) {
  auto monitor = std::make_unique<ConstraintMonitor>(std::move(options));
  RTIC_EXPECT_OK(ConfigureFor(wl)(monitor.get()));
  auto stats = monitor->Recover();
  RTIC_EXPECT_OK(stats.status());
  return monitor;
}

StandbyOptions MakeStandbyOptions(const workload::Workload& wl,
                                  const std::string& dir) {
  StandbyOptions options;
  options.dir = dir;
  options.configure = ConfigureFor(wl);
  return options;
}

// One manual replication round: ship everything new, let the standby
// handle it, and return the acknowledgement to the shipper.
void Pump(SegmentShipper& shipper, StandbyMonitor& standby) {
  RTIC_ASSERT_OK(shipper.ShipOnce());
  (void)Unwrap(standby.ProcessPending());
  RTIC_ASSERT_OK(shipper.DrainAcks());
}

// -- wire format ------------------------------------------------------------

TEST(ReplFormatTest, FramesRoundTrip) {
  Frame hello = Unwrap(ParseFrame(EncodeHello("primary")));
  EXPECT_EQ(hello.type, FrameType::kHello);
  EXPECT_EQ(hello.name, "primary");
  EXPECT_EQ(hello.arg, 0u);
  EXPECT_TRUE(hello.body.empty());

  Frame chunk = Unwrap(ParseFrame(
      EncodeFileChunk("wal-00000000000000000001.log", 4096, "payload")));
  EXPECT_EQ(chunk.type, FrameType::kFileChunk);
  EXPECT_EQ(chunk.name, "wal-00000000000000000001.log");
  EXPECT_EQ(chunk.arg, 4096u);
  EXPECT_EQ(chunk.body, "payload");

  Frame ack = Unwrap(ParseFrame(EncodeAck(42)));
  EXPECT_EQ(ack.type, FrameType::kAck);
  EXPECT_EQ(ack.arg, 42u);

  // An empty chunk (a file touched but not grown) is legal.
  Frame empty = Unwrap(ParseFrame(EncodeFileChunk("f", 0, "")));
  EXPECT_TRUE(empty.body.empty());
}

TEST(ReplFormatTest, EveryBitFlipAndTruncationIsRejected) {
  const std::string frame = EncodeFileChunk("wal-x", 9, "some bytes");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string damaged = frame;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    EXPECT_FALSE(ParseFrame(damaged).ok()) << "flip at byte " << i;
  }
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(ParseFrame(std::string_view(frame).substr(0, len)).ok())
        << "truncated to " << len;
  }
  EXPECT_FALSE(ParseFrame(frame + "x").ok()) << "trailing byte";
}

TEST(ReplFormatTest, UnknownTypeRejectedUnknownVersionParses) {
  Frame f;
  f.type = static_cast<FrameType>(9);
  EXPECT_FALSE(ParseFrame(EncodeFrame(f)).ok());

  // A future version parses (the header layout is fixed); the session
  // layer is responsible for refusing it.
  Frame v2;
  v2.version = 2;
  v2.type = FrameType::kHello;
  v2.name = "primary";
  Frame parsed = Unwrap(ParseFrame(EncodeFrame(v2)));
  EXPECT_EQ(parsed.version, 2);
}

// -- transports -------------------------------------------------------------

TEST(PipeTransportTest, DeliversInOrderAndReportsCleanClose) {
  auto [a, b] = CreatePipePair();
  std::string got;
  EXPECT_FALSE(Unwrap(b->TryRecv(&got)));  // nothing queued yet

  RTIC_ASSERT_OK(a->Send("one"));
  RTIC_ASSERT_OK(a->Send("two"));
  ASSERT_TRUE(Unwrap(b->Recv(&got)));
  EXPECT_EQ(got, "one");
  ASSERT_TRUE(Unwrap(b->TryRecv(&got)));
  EXPECT_EQ(got, "two");

  RTIC_ASSERT_OK(b->Send("back"));
  ASSERT_TRUE(Unwrap(a->Recv(&got)));
  EXPECT_EQ(got, "back");

  a->Close();
  EXPECT_FALSE(Unwrap(b->Recv(&got)));   // clean close, queue drained
  EXPECT_FALSE(b->Send("late").ok());    // peer is gone
}

TEST(FaultInjectingTransportTest, CountsAndKillsAndDamages) {
  {  // trigger 0: count only
    auto [a, b] = CreatePipePair();
    FaultInjectingTransport t(std::move(a), 0, TransportFaultKind::kDrop);
    RTIC_ASSERT_OK(t.Send("x"));
    RTIC_ASSERT_OK(t.Send("y"));
    EXPECT_EQ(t.frames(), 2u);
    EXPECT_FALSE(t.dead());
  }
  {  // kDrop: frame vanishes, connection dies
    auto [a, b] = CreatePipePair();
    FaultInjectingTransport t(std::move(a), 2, TransportFaultKind::kDrop);
    RTIC_ASSERT_OK(t.Send("first"));
    EXPECT_FALSE(t.Send("second").ok());
    EXPECT_TRUE(t.dead());
    EXPECT_FALSE(t.Send("third").ok());
    std::string got;
    ASSERT_TRUE(Unwrap(b->Recv(&got)));
    EXPECT_EQ(got, "first");
    EXPECT_FALSE(Unwrap(b->Recv(&got)));  // closed after the fault
  }
  {  // kTruncate: a prefix arrives, then the connection dies
    auto [a, b] = CreatePipePair();
    FaultInjectingTransport t(std::move(a), 1, TransportFaultKind::kTruncate);
    EXPECT_FALSE(t.Send("abcdef").ok());
    std::string got;
    ASSERT_TRUE(Unwrap(b->Recv(&got)));
    EXPECT_EQ(got, "abc");
    EXPECT_FALSE(Unwrap(b->Recv(&got)));
  }
  {  // kDuplicate: delivered twice, connection survives
    auto [a, b] = CreatePipePair();
    FaultInjectingTransport t(std::move(a), 1, TransportFaultKind::kDuplicate);
    RTIC_ASSERT_OK(t.Send("dup"));
    RTIC_ASSERT_OK(t.Send("next"));
    std::string got;
    ASSERT_TRUE(Unwrap(b->Recv(&got)));
    EXPECT_EQ(got, "dup");
    ASSERT_TRUE(Unwrap(b->Recv(&got)));
    EXPECT_EQ(got, "dup");
    ASSERT_TRUE(Unwrap(b->Recv(&got)));
    EXPECT_EQ(got, "next");
  }
  {  // kReorder: swaps with the next frame; Close flushes a held frame
    auto [a, b] = CreatePipePair();
    FaultInjectingTransport t(std::move(a), 1, TransportFaultKind::kReorder);
    RTIC_ASSERT_OK(t.Send("held"));
    RTIC_ASSERT_OK(t.Send("jumped"));
    std::string got;
    ASSERT_TRUE(Unwrap(b->Recv(&got)));
    EXPECT_EQ(got, "jumped");
    ASSERT_TRUE(Unwrap(b->Recv(&got)));
    EXPECT_EQ(got, "held");
  }
  {  // kReorder with no following frame: Close delivers it
    auto [a, b] = CreatePipePair();
    FaultInjectingTransport t(std::move(a), 1, TransportFaultKind::kReorder);
    RTIC_ASSERT_OK(t.Send("only"));
    t.Close();
    std::string got;
    ASSERT_TRUE(Unwrap(b->Recv(&got)));
    EXPECT_EQ(got, "only");
    EXPECT_FALSE(Unwrap(b->Recv(&got)));
  }
}

TEST(TcpTransportTest, FramesCrossALocalSocket) {
  auto listener = Unwrap(TcpListener::Listen(0));
  ASSERT_NE(listener->port(), 0);
  auto client = Unwrap(
      TcpConnect("127.0.0.1:" + std::to_string(listener->port())));
  auto server = Unwrap(listener->Accept());

  std::string got;
  EXPECT_FALSE(Unwrap(server->TryRecv(&got)));

  RTIC_ASSERT_OK(client->Send(EncodeHello("primary")));
  RTIC_ASSERT_OK(client->Send(std::string(70000, 'z')));  // multi-read frame
  ASSERT_TRUE(Unwrap(server->Recv(&got)));
  EXPECT_EQ(Unwrap(ParseFrame(got)).name, "primary");
  ASSERT_TRUE(Unwrap(server->Recv(&got)));
  EXPECT_EQ(got.size(), 70000u);

  RTIC_ASSERT_OK(server->Send(EncodeAck(7)));
  ASSERT_TRUE(Unwrap(client->Recv(&got)));
  EXPECT_EQ(Unwrap(ParseFrame(got)).arg, 7u);

  client->Close();
  EXPECT_FALSE(Unwrap(server->Recv(&got)));  // clean close
}

// -- shipper + standby over a pipe ------------------------------------------

TEST(ReplicationPipeTest, EndToEndVerdictsStateAndPromotion) {
  const workload::Workload wl = SmallPayroll();
  const std::string proot = MakeTempDir();
  const std::string sroot = MakeTempDir();
  auto [primary_end, standby_end] = CreatePipePair();

  auto primary = MakePrimary(wl, PrimaryOptions(proot + "/wal"));
  SegmentShipper shipper(ShipperOptions{proot + "/wal"}, primary_end.get());

  std::vector<std::string> replica_verdicts;
  StandbyOptions sopts = MakeStandbyOptions(wl, sroot + "/mirror");
  sopts.on_replay = [&](std::uint64_t seq, const UpdateBatch&,
                        const std::vector<Violation>& violations) {
    EXPECT_EQ(seq, replica_verdicts.size() + 1);  // contiguous live stream
    replica_verdicts.push_back(Render(violations));
  };
  auto standby = Unwrap(StandbyMonitor::Attach(sopts, standby_end.get()));
  RTIC_ASSERT_OK(shipper.Start());

  std::vector<std::string> primary_verdicts;
  for (const UpdateBatch& batch : wl.batches) {
    primary_verdicts.push_back(Render(Unwrap(primary->ApplyUpdate(batch))));
    Pump(shipper, *standby);
  }
  Pump(shipper, *standby);  // final acks

  EXPECT_EQ(standby->replayed_seq(), wl.batches.size());
  EXPECT_EQ(replica_verdicts, primary_verdicts);
  EXPECT_EQ(shipper.acked_seq(), wl.batches.size());
  EXPECT_GT(shipper.stats().files_shipped, 0u);

  // The replica is the primary, state-for-state.
  const std::string primary_state = Unwrap(primary->SaveState());
  EXPECT_EQ(Unwrap(standby->replica().SaveState()), primary_state);

  // The persisted watermark matches what the standby acknowledged.
  const std::string wm = Unwrap(wal::DefaultFs()->ReadFile(
      proot + "/wal/" + wal::kShipWatermarkFileName));
  std::uint64_t acked = 0;
  ASSERT_TRUE(wal::ParseShipWatermark(wm, &acked));
  EXPECT_EQ(acked, wl.batches.size());

  // Promotion recovers a real durable monitor from the mirror.
  auto promoted = Unwrap(standby->Promote());
  EXPECT_EQ(promoted->transition_count(), wl.batches.size());
  EXPECT_EQ(Unwrap(promoted->SaveState()), primary_state);
}

TEST(ReplicationPipeTest, ReattachSkipsReshippedBytesAndResumes) {
  const workload::Workload wl = SmallPayroll(/*seed=*/9, /*length=*/30);
  const std::string proot = MakeTempDir();
  const std::string sroot = MakeTempDir();
  const std::string wal_dir = proot + "/wal";
  const std::string mirror = sroot + "/mirror";
  const std::size_t half = wl.batches.size() / 2;

  auto primary = MakePrimary(wl, PrimaryOptions(wal_dir));

  {  // First session: replicate the first half, then the standby "dies".
    auto [pe, se] = CreatePipePair();
    SegmentShipper shipper(ShipperOptions{wal_dir}, pe.get());
    auto standby =
        Unwrap(StandbyMonitor::Attach(MakeStandbyOptions(wl, mirror),
                                      se.get()));
    RTIC_ASSERT_OK(shipper.Start());
    for (std::size_t i = 0; i < half; ++i) {
      Unwrap(primary->ApplyUpdate(wl.batches[i]));
      Pump(shipper, *standby);
    }
    EXPECT_EQ(standby->replayed_seq(), half);
  }

  // Second session over the SAME mirror: Attach() catches up from disk
  // alone, and the new shipper's full re-ship is absorbed idempotently.
  auto [pe, se] = CreatePipePair();
  SegmentShipper shipper(ShipperOptions{wal_dir}, pe.get());
  auto standby = Unwrap(
      StandbyMonitor::Attach(MakeStandbyOptions(wl, mirror), se.get()));
  EXPECT_EQ(standby->replayed_seq(), half);
  const std::uint64_t replayed_at_attach = standby->stats().records_replayed;

  RTIC_ASSERT_OK(shipper.Start());
  Pump(shipper, *standby);
  Pump(shipper, *standby);
  EXPECT_EQ(standby->stats().records_replayed, replayed_at_attach)
      << "re-shipped bytes must not replay again";
  EXPECT_GT(standby->stats().chunks_skipped, 0u);

  // The session then carries the second half live.
  for (std::size_t i = half; i < wl.batches.size(); ++i) {
    Unwrap(primary->ApplyUpdate(wl.batches[i]));
    Pump(shipper, *standby);
  }
  EXPECT_EQ(standby->replayed_seq(), wl.batches.size());
  EXPECT_EQ(Unwrap(standby->replica().SaveState()),
            Unwrap(primary->SaveState()));
}

TEST(ReplicationPipeTest, DuplicatedAndReorderedChunksAreAbsorbed) {
  for (const TransportFaultKind kind :
       {TransportFaultKind::kDuplicate, TransportFaultKind::kReorder}) {
    for (const std::uint64_t trigger : {2u, 3u, 5u}) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                   " trigger=" + std::to_string(trigger));
      const workload::Workload wl = SmallPayroll(/*seed=*/13, /*length=*/20);
      const std::string proot = MakeTempDir();
      const std::string sroot = MakeTempDir();
      auto [pe, se] = CreatePipePair();
      FaultInjectingTransport faulty(std::move(pe), trigger, kind);

      auto primary = MakePrimary(wl, PrimaryOptions(proot + "/wal"));
      SegmentShipper shipper(ShipperOptions{proot + "/wal"}, &faulty);
      auto standby = Unwrap(StandbyMonitor::Attach(
          MakeStandbyOptions(wl, sroot + "/mirror"), se.get()));
      RTIC_ASSERT_OK(shipper.Start());

      for (const UpdateBatch& batch : wl.batches) {
        Unwrap(primary->ApplyUpdate(batch));
        Pump(shipper, *standby);
      }
      faulty.Close();  // flush a held reordered frame, if any
      Unwrap(standby->ProcessPending());

      EXPECT_EQ(standby->replayed_seq(), wl.batches.size());
      EXPECT_EQ(Unwrap(standby->replica().SaveState()),
                Unwrap(primary->SaveState()));
      std::filesystem::remove_all(proot);
      std::filesystem::remove_all(sroot);
    }
  }
}

TEST(ReplicationPipeTest, TornFrameFailsSessionAndReattachConverges) {
  const workload::Workload wl = SmallPayroll(/*seed=*/17, /*length=*/20);
  const std::string proot = MakeTempDir();
  const std::string sroot = MakeTempDir();
  const std::string wal_dir = proot + "/wal";
  const std::string mirror = sroot + "/mirror";

  auto primary = MakePrimary(wl, PrimaryOptions(wal_dir));
  std::size_t applied = 0;

  {  // Session 1: the third outbound frame arrives torn.
    auto [pe, se] = CreatePipePair();
    FaultInjectingTransport faulty(std::move(pe), 3,
                                   TransportFaultKind::kTruncate);
    SegmentShipper shipper(ShipperOptions{wal_dir}, &faulty);
    auto standby = Unwrap(
        StandbyMonitor::Attach(MakeStandbyOptions(wl, mirror), se.get()));
    RTIC_ASSERT_OK(shipper.Start());

    bool session_died = false;
    for (const UpdateBatch& batch : wl.batches) {
      Unwrap(primary->ApplyUpdate(batch));
      ++applied;
      if (!shipper.ShipOnce().ok()) {
        session_died = true;
        break;
      }
      if (!standby->ProcessPending().ok()) {
        session_died = true;
        break;
      }
    }
    ASSERT_TRUE(session_died) << "the truncate fault must surface";
  }

  // Finish the workload unreplicated, then a fresh session converges.
  for (; applied < wl.batches.size(); ++applied) {
    Unwrap(primary->ApplyUpdate(wl.batches[applied]));
  }
  auto [pe, se] = CreatePipePair();
  SegmentShipper shipper(ShipperOptions{wal_dir}, pe.get());
  auto standby = Unwrap(
      StandbyMonitor::Attach(MakeStandbyOptions(wl, mirror), se.get()));
  RTIC_ASSERT_OK(shipper.Start());
  Pump(shipper, *standby);
  Pump(shipper, *standby);
  EXPECT_EQ(standby->replayed_seq(), wl.batches.size());
  EXPECT_EQ(Unwrap(standby->replica().SaveState()),
            Unwrap(primary->SaveState()));
}

TEST(ReplicationPipeTest, LateAttachBootstrapsFromCheckpointChain) {
  const workload::Workload wl = SmallPayroll(/*seed=*/21, /*length=*/60);
  const std::string proot = MakeTempDir();
  const std::string sroot = MakeTempDir();
  const std::string wal_dir = proot + "/wal";

  // A primary that rotates and checkpoints aggressively, so by the time
  // the standby attaches, GC has unlinked the early segments and the only
  // route to the past is the shipped base+delta chain.
  MonitorOptions options = PrimaryOptions(wal_dir);
  options.checkpoint_interval = 5;
  options.checkpoint_delta_chain = 2;
  options.wal_segment_bytes = 256;
  auto primary = MakePrimary(wl, options);
  for (const UpdateBatch& batch : wl.batches) {
    Unwrap(primary->ApplyUpdate(batch));
  }
  bool first_segment_gone = true;
  for (const std::string& name :
       Unwrap(wal::DefaultFs()->ListDir(wal_dir))) {
    if (name == "wal-00000000000000000001.log") first_segment_gone = false;
  }
  ASSERT_TRUE(first_segment_gone)
      << "precondition: GC must have unlinked the first segment";

  auto [pe, se] = CreatePipePair();
  SegmentShipper shipper(ShipperOptions{wal_dir}, pe.get());
  auto standby = Unwrap(StandbyMonitor::Attach(
      MakeStandbyOptions(wl, sroot + "/mirror"), se.get()));
  RTIC_ASSERT_OK(shipper.Start());
  for (int i = 0; i < 4; ++i) Pump(shipper, *standby);

  EXPECT_GT(standby->stats().checkpoints_installed, 0u)
      << "a late attach can only reach the past through the chain";
  EXPECT_EQ(standby->replayed_seq(), wl.batches.size());
  EXPECT_EQ(shipper.acked_seq(), wl.batches.size());

  const std::string primary_state = Unwrap(primary->SaveState());
  EXPECT_EQ(Unwrap(standby->replica().SaveState()), primary_state);
  auto promoted = Unwrap(standby->Promote());
  EXPECT_EQ(promoted->transition_count(), wl.batches.size());
  EXPECT_EQ(Unwrap(promoted->SaveState()), primary_state);
}

// -- GC retention (the ship watermark) --------------------------------------

// GC must never unlink a sealed segment the standby has not acknowledged,
// even across a primary restart: the watermark file persists the floor.
TEST(ReplicationGcTest, UnackedSegmentsSurviveGcAndRestart) {
  const workload::Workload wl = SmallPayroll(/*seed=*/25, /*length=*/60);
  MonitorOptions options;  // configured per-directory below
  options.sync_policy = wal::SyncPolicy::kAlways;
  options.checkpoint_interval = 5;
  options.checkpoint_delta_chain = 0;  // full snapshots: GC is eager
  options.wal_segment_bytes = 256;

  const std::string kFirstSegment = "wal-00000000000000000001.log";
  auto count_segments = [](const std::string& dir) {
    std::size_t n = 0;
    for (const std::string& name : Unwrap(wal::DefaultFs()->ListDir(dir))) {
      if (name.rfind("wal-", 0) == 0) ++n;
    }
    return n;
  };
  auto has_first = [&](const std::string& dir) {
    return Unwrap(wal::DefaultFs()->FileExists(dir + "/" + kFirstSegment));
  };

  // Baseline: no watermark file, GC reclaims freely.
  const std::string baseline_root = MakeTempDir();
  {
    MonitorOptions o = options;
    o.wal_dir = baseline_root + "/wal";
    auto m = MakePrimary(wl, o);
    for (const UpdateBatch& b : wl.batches) Unwrap(m->ApplyUpdate(b));
    ASSERT_FALSE(has_first(o.wal_dir)) << "baseline GC must reclaim";
  }

  // With a watermark of 0 (a standby exists but has acked nothing),
  // every sealed segment survives.
  const std::string root = MakeTempDir();
  const std::string wal_dir = root + "/wal";
  wal::Fs* fs = wal::DefaultFs();
  RTIC_ASSERT_OK(fs->CreateDir(wal_dir));
  {
    auto f = Unwrap(fs->NewWritableFile(
        wal_dir + "/" + wal::kShipWatermarkFileName, /*truncate=*/true));
    RTIC_ASSERT_OK(f->Append(wal::EncodeShipWatermark(0)));
    RTIC_ASSERT_OK(f->Sync());
    RTIC_ASSERT_OK(f->Close());
  }
  const std::size_t half = wl.batches.size() / 2;
  {
    MonitorOptions o = options;
    o.wal_dir = wal_dir;
    auto m = MakePrimary(wl, o);
    for (std::size_t i = 0; i < half; ++i) Unwrap(m->ApplyUpdate(wl.batches[i]));
    EXPECT_TRUE(has_first(wal_dir)) << "unacked segments must be retained";
  }

  // Across a primary restart the persisted floor still holds.
  {
    MonitorOptions o = options;
    o.wal_dir = wal_dir;
    auto m = MakePrimary(wl, o);
    for (std::size_t i = m->transition_count(); i < wl.batches.size(); ++i) {
      Unwrap(m->ApplyUpdate(wl.batches[i]));
    }
    EXPECT_TRUE(has_first(wal_dir))
        << "retention must survive a primary restart";
    const std::size_t retained = count_segments(wal_dir);
    EXPECT_GT(retained, 3u);

    // Once the standby acks everything, the next checkpoint's GC sweep
    // reclaims the backlog.
    {
      auto f = Unwrap(fs->NewWritableFile(
          wal_dir + "/" + wal::kShipWatermarkFileName, /*truncate=*/true));
      RTIC_ASSERT_OK(
          f->Append(wal::EncodeShipWatermark(std::uint64_t{1} << 40)));
      RTIC_ASSERT_OK(f->Sync());
      RTIC_ASSERT_OK(f->Close());
    }
    // Ticks are full transitions (logged, checkpointed), so a handful of
    // them drives the next GC sweep without perturbing the tables.
    const Timestamp base_time = m->current_time();
    for (Timestamp t = 1; t <= 20; ++t) Unwrap(m->Tick(base_time + t));
    EXPECT_LT(count_segments(wal_dir), retained)
        << "an acked backlog must be reclaimed";
    EXPECT_FALSE(has_first(wal_dir));
  }
}

// -- the real wiring: TCP + background ship thread --------------------------

TEST(ReplicationTcpTest, BackgroundShipperReplicatesAndPromotes) {
  const workload::Workload wl = SmallPayroll(/*seed=*/31, /*length=*/40);
  auto listener = Unwrap(TcpListener::Listen(0));
  const std::string address =
      "127.0.0.1:" + std::to_string(listener->port());
  const std::string proot = MakeTempDir();
  const std::string sroot = MakeTempDir();

  std::string primary_state;
  Status primary_status = Status::OK();
  std::thread primary_thread([&] {
    MonitorOptions options = PrimaryOptions(proot + "/wal");
    options.replication_standby = address;
    options.ship_interval_micros = 1000;
    auto monitor = std::make_unique<ConstraintMonitor>(std::move(options));
    primary_status = ConfigureFor(wl)(monitor.get());
    if (!primary_status.ok()) return;
    primary_status = monitor->Recover().status();
    if (!primary_status.ok()) return;
    for (const UpdateBatch& batch : wl.batches) {
      auto result = monitor->ApplyUpdate(batch);
      if (!result.ok()) {
        primary_status = result.status();
        return;
      }
    }
    auto state = monitor->SaveState();
    if (!state.ok()) {
      primary_status = state.status();
      return;
    }
    primary_state = std::move(state).value();
    // Destruction stops the ship thread, flushes, ships the tail, closes.
  });

  auto endpoint = Unwrap(listener->Accept());
  auto standby = Unwrap(StandbyMonitor::Attach(
      MakeStandbyOptions(wl, sroot + "/mirror"), endpoint.get()));
  RTIC_EXPECT_OK(standby->Run());  // serves until the primary closes
  primary_thread.join();
  RTIC_ASSERT_OK(primary_status);

  EXPECT_EQ(standby->replayed_seq(), wl.batches.size());
  auto promoted = Unwrap(standby->Promote());
  EXPECT_EQ(promoted->transition_count(), wl.batches.size());
  EXPECT_EQ(Unwrap(promoted->SaveState()), primary_state);
}

}  // namespace
}  // namespace rtic
