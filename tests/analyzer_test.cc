// Tests for the static analyzer: free variables, type inference, safety
// checks, warnings; and for the normalizer rewrites.

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "tl/analyzer.h"
#include "tl/normalizer.h"
#include "tl/parser.h"

namespace rtic {
namespace tl {
namespace {

using rtic::testing::Unwrap;

PredicateCatalog TestCatalog() {
  PredicateCatalog catalog;
  catalog["Emp"] = Schema({Column{"id", ValueType::kInt64},
                           Column{"salary", ValueType::kInt64}});
  catalog["Name"] = Schema({Column{"id", ValueType::kInt64},
                            Column{"name", ValueType::kString}});
  catalog["Temp"] = Schema({Column{"sensor", ValueType::kInt64},
                            Column{"celsius", ValueType::kDouble}});
  catalog["Flag"] = Schema({Column{"on", ValueType::kBool}});
  catalog["P"] = Schema({Column{"x", ValueType::kInt64}});
  catalog["Q"] = Schema({Column{"x", ValueType::kInt64}});
  catalog["R"] = Schema({Column{"x", ValueType::kInt64},
                         Column{"y", ValueType::kInt64}});
  return catalog;
}

Analysis AnalyzeText(const std::string& text, const Formula** root_out,
                     FormulaPtr* keep) {
  *keep = Unwrap(ParseFormula(text));
  *root_out = keep->get();
  return Unwrap(Analyze(**keep, TestCatalog()));
}

// ---- free variables ----------------------------------------------------------

TEST(AnalyzerTest, FreeVarsOfAtomsAndComparisons) {
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("R(x, y) and x < 5", &root, &f);
  EXPECT_EQ(a.FreeVars(*root), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(a.FreeVars(root->child(0)),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(a.FreeVars(root->child(1)), (std::vector<std::string>{"x"}));
}

TEST(AnalyzerTest, QuantifiersBindVariables) {
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("exists y: R(x, y)", &root, &f);
  EXPECT_EQ(a.FreeVars(*root), (std::vector<std::string>{"x"}));
  EXPECT_FALSE(a.IsClosed(*root));

  Analysis b = AnalyzeText("forall x: exists y: R(x, y)", &root, &f);
  EXPECT_TRUE(b.IsClosed(*root));
}

TEST(AnalyzerTest, RepeatedVariableInAtom) {
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("R(x, x)", &root, &f);
  EXPECT_EQ(a.FreeVars(*root), (std::vector<std::string>{"x"}));
}

TEST(AnalyzerTest, ColumnsForUsesInferredTypes) {
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("Name(i, n)", &root, &f);
  std::vector<Column> cols = a.ColumnsFor(*root);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0].name, "i");
  EXPECT_EQ(cols[0].type, ValueType::kInt64);
  EXPECT_EQ(cols[1].name, "n");
  EXPECT_EQ(cols[1].type, ValueType::kString);
}

// ---- type inference ------------------------------------------------------------

TEST(AnalyzerTest, InfersFromAtomPositions) {
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("Emp(e, s) and s > 1000", &root, &f);
  EXPECT_EQ(a.var_types().at("e"), ValueType::kInt64);
  EXPECT_EQ(a.var_types().at("s"), ValueType::kInt64);
}

TEST(AnalyzerTest, InfersThroughComparisons) {
  // y only appears compared with a string constant.
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("exists y: Name(i, n) and y = 'boss' and n = y",
                           &root, &f);
  EXPECT_EQ(a.var_types().at("y"), ValueType::kString);
}

TEST(AnalyzerTest, TypeConflictAcrossAtomsFails) {
  FormulaPtr f = Unwrap(ParseFormula("Emp(e, v) and Name(e, v)"));
  auto r = Analyze(*f, TestCatalog());
  EXPECT_FALSE(r.ok());
}

TEST(AnalyzerTest, IncomparableTypesFail) {
  FormulaPtr f = Unwrap(ParseFormula("Name(i, n) and n > 5"));
  EXPECT_FALSE(Analyze(*f, TestCatalog()).ok());
}

TEST(AnalyzerTest, NumericMixingIsAllowed) {
  FormulaPtr f = Unwrap(ParseFormula("Temp(s, c) and c > 20"));
  EXPECT_TRUE(Analyze(*f, TestCatalog()).ok());
}

TEST(AnalyzerTest, BoolOrderingComparisonFails) {
  FormulaPtr f = Unwrap(ParseFormula("Flag(b) and b > false"));
  EXPECT_FALSE(Analyze(*f, TestCatalog()).ok());
  FormulaPtr g = Unwrap(ParseFormula("Flag(b) and b = true"));
  EXPECT_TRUE(Analyze(*g, TestCatalog()).ok());
}

TEST(AnalyzerTest, UninferrableVariableFails) {
  FormulaPtr f = Unwrap(ParseFormula("exists z: z = z"));
  EXPECT_FALSE(Analyze(*f, TestCatalog()).ok());
}

TEST(AnalyzerTest, ConstantMustMatchColumnType) {
  FormulaPtr f = Unwrap(ParseFormula("Emp(1, 'x')"));
  EXPECT_FALSE(Analyze(*f, TestCatalog()).ok());
  FormulaPtr g = Unwrap(ParseFormula("Emp(1, 100)"));
  EXPECT_TRUE(Analyze(*g, TestCatalog()).ok());
}

// ---- structural checks ----------------------------------------------------------

TEST(AnalyzerTest, UnknownPredicateFails) {
  FormulaPtr f = Unwrap(ParseFormula("Nope(x)"));
  auto r = Analyze(*f, TestCatalog());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Nope"), std::string::npos);
}

TEST(AnalyzerTest, ArityMismatchFails) {
  FormulaPtr f = Unwrap(ParseFormula("Emp(x)"));
  EXPECT_FALSE(Analyze(*f, TestCatalog()).ok());
  FormulaPtr g = Unwrap(ParseFormula("P(x, y)"));
  EXPECT_FALSE(Analyze(*g, TestCatalog()).ok());
}

TEST(AnalyzerTest, DuplicateQuantifiedVariableFails) {
  FormulaPtr f = Unwrap(ParseFormula("forall x, x: P(x)"));
  EXPECT_FALSE(Analyze(*f, TestCatalog()).ok());
}

TEST(AnalyzerTest, UnsafeSinceFails) {
  // free(lhs) ⊄ free(rhs): y occurs only on the left.
  FormulaPtr f = Unwrap(ParseFormula("R(x, y) since P(x)"));
  auto r = Analyze(*f, TestCatalog());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unsafe since"), std::string::npos);
}

TEST(AnalyzerTest, SafeSincePasses) {
  FormulaPtr f = Unwrap(ParseFormula("P(x) since R(x, y)"));
  EXPECT_TRUE(Analyze(*f, TestCatalog()).ok());
  FormulaPtr g = Unwrap(ParseFormula("P(x) since Q(x)"));
  EXPECT_TRUE(Analyze(*g, TestCatalog()).ok());
}

// ---- warnings --------------------------------------------------------------------

TEST(AnalyzerTest, ShadowingWarns) {
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("forall x: P(x) and (exists x: Q(x))", &root, &f);
  ASSERT_FALSE(a.warnings().empty());
  EXPECT_NE(a.warnings()[0].find("shadows"), std::string::npos);
}

TEST(AnalyzerTest, UnusedQuantifiedVariableWarns) {
  // The inner y is bound but unused; it is typed via the outer occurrence
  // (variable names have one type per constraint).
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("P(y) and (exists y: Q(3))", &root, &f);
  bool found = false;
  for (const std::string& w : a.warnings()) {
    if (w.find("does not occur") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, UnusedAndUntypedQuantifiedVariableFails) {
  // An unused quantified variable with no other occurrence cannot be typed.
  FormulaPtr f = Unwrap(ParseFormula("forall x, y: P(x) implies Q(x)"));
  EXPECT_FALSE(Analyze(*f, TestCatalog()).ok());
}

TEST(AnalyzerTest, NonRangeRestrictedExistentialWarns) {
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("exists x: not P(x)", &root, &f);
  bool found = false;
  for (const std::string& w : a.warnings()) {
    if (w.find("range-restricted") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, RangeRestrictedExistentialDoesNotWarn) {
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("exists x: P(x) and not Q(x)", &root, &f);
  for (const std::string& w : a.warnings()) {
    EXPECT_EQ(w.find("range-restricted"), std::string::npos) << w;
  }
}

TEST(AnalyzerTest, CollectsConstants) {
  FormulaPtr f;
  const Formula* root;
  Analysis a = AnalyzeText("Emp(e, 100) and e != 7", &root, &f);
  ASSERT_EQ(a.constants().size(), 2u);
}

// ---- Normalizer -------------------------------------------------------------------

TEST(NormalizerTest, EliminateImplies) {
  FormulaPtr f = Unwrap(ParseFormula("P(x) implies Q(x)"));
  FormulaPtr n = EliminateImplies(*f);
  FormulaPtr want = Unwrap(ParseFormula("not P(x) or Q(x)"));
  EXPECT_TRUE(n->Equals(*want)) << n->ToString();
}

TEST(NormalizerTest, EliminateImpliesIsRecursive) {
  FormulaPtr f = Unwrap(ParseFormula("once (P(x) implies Q(x))"));
  FormulaPtr n = EliminateImplies(*f);
  FormulaPtr want = Unwrap(ParseFormula("once (not P(x) or Q(x))"));
  EXPECT_TRUE(n->Equals(*want)) << n->ToString();
}

TEST(NormalizerTest, RewriteHistorically) {
  FormulaPtr f = Unwrap(ParseFormula("historically[2, 9] P(x)"));
  FormulaPtr n = RewriteHistorically(*f);
  FormulaPtr want = Unwrap(ParseFormula("not once[2, 9] not P(x)"));
  EXPECT_TRUE(n->Equals(*want)) << n->ToString();
}

TEST(NormalizerTest, SimplifyDoubleNegation) {
  FormulaPtr f = Unwrap(ParseFormula("not not P(x)"));
  EXPECT_TRUE(SimplifyDoubleNegation(*f)->Equals(
      *Unwrap(ParseFormula("P(x)"))));
  FormulaPtr g = Unwrap(ParseFormula("not not not P(x)"));
  EXPECT_TRUE(SimplifyDoubleNegation(*g)->Equals(
      *Unwrap(ParseFormula("not P(x)"))));
}

TEST(NormalizerTest, NormalizeForEnginesRemovesHistoricallyKeepsImplies) {
  FormulaPtr f = Unwrap(ParseFormula(
      "forall x: P(x) implies historically[0, 5] (Q(x) implies R(x, x))"));
  FormulaPtr n = NormalizeForEngines(*f);
  // historically is compiled away; implies survives (the evaluator's
  // fast falsification path depends on it).
  bool saw_implies = false;
  std::function<void(const Formula&)> check = [&](const Formula& node) {
    if (node.kind() == FormulaKind::kImplies) saw_implies = true;
    EXPECT_NE(node.kind(), FormulaKind::kHistorically);
    for (std::size_t i = 0; i < node.num_children(); ++i) {
      check(node.child(i));
    }
  };
  check(*n);
  EXPECT_TRUE(saw_implies);
}

TEST(NormalizerTest, PreservesIntervals) {
  FormulaPtr f = Unwrap(ParseFormula("historically[3, 7] P(x)"));
  FormulaPtr n = NormalizeForEngines(*f);
  // not once[3,7] not P(x)
  ASSERT_EQ(n->kind(), FormulaKind::kNot);
  ASSERT_EQ(n->child(0).kind(), FormulaKind::kOnce);
  EXPECT_EQ(n->child(0).interval(), TimeInterval(3, 7));
}

}  // namespace
}  // namespace tl
}  // namespace rtic
