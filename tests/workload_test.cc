// Tests for the workload generators and end-to-end monitor runs over them:
// determinism, violation-free baselines, injected-violation detection, and
// event-table hygiene.

#include <gtest/gtest.h>

#include "monitor/monitor.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace rtic {
namespace {

using testing::Unwrap;
using workload::AlarmParams;
using workload::LibraryParams;
using workload::MakeAlarmWorkload;
using workload::MakeLibraryWorkload;
using workload::MakePayrollWorkload;
using workload::PayrollParams;
using workload::Workload;

/// Runs a workload through a monitor; returns the total violation count.
std::size_t RunWorkload(const Workload& w, EngineKind kind) {
  MonitorOptions options;
  options.engine = kind;
  ConstraintMonitor monitor(options);
  for (const auto& [name, schema] : w.schema) {
    RTIC_EXPECT_OK(monitor.CreateTable(name, schema));
  }
  for (const auto& [name, text] : w.constraints) {
    Status s = monitor.RegisterConstraint(name, text);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
  }
  for (const UpdateBatch& batch : w.batches) {
    auto v = monitor.ApplyUpdate(batch);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    if (!v.ok()) return 0;
  }
  return monitor.total_violations();
}

TEST(WorkloadTest, GeneratorsAreDeterministic) {
  AlarmParams params;
  params.length = 50;
  Workload a = MakeAlarmWorkload(params);
  Workload b = MakeAlarmWorkload(params);
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].timestamp(), b.batches[i].timestamp());
    EXPECT_EQ(a.batches[i].ToString(), b.batches[i].ToString());
  }
  params.seed = 99;
  Workload c = MakeAlarmWorkload(params);
  bool all_equal = a.batches.size() == c.batches.size();
  if (all_equal) {
    all_equal = false;
    for (std::size_t i = 0; i < a.batches.size(); ++i) {
      if (a.batches[i].ToString() != c.batches[i].ToString()) {
        all_equal = false;
        break;
      }
      all_equal = true;
    }
  }
  EXPECT_FALSE(all_equal) << "different seed should change the stream";
}

TEST(WorkloadTest, TimestampsStrictlyIncrease) {
  for (const Workload& w :
       {MakeAlarmWorkload({}), MakePayrollWorkload({}),
        MakeLibraryWorkload({})}) {
    Timestamp prev = -1;
    for (const UpdateBatch& b : w.batches) {
      EXPECT_GT(b.timestamp(), prev);
      prev = b.timestamp();
    }
  }
}

TEST(WorkloadTest, BatchesApplyCleanly) {
  Workload w = MakeLibraryWorkload({});
  Database db;
  for (const auto& [name, schema] : w.schema) {
    RTIC_ASSERT_OK(db.CreateTable(name, schema));
  }
  for (const UpdateBatch& b : w.batches) {
    RTIC_ASSERT_OK(b.Apply(&db));
  }
}

TEST(WorkloadTest, EventTablesHoldOnlyCurrentEvents) {
  // Raise/Ack rows inserted at state i are deleted at state i+1.
  AlarmParams params;
  params.length = 60;
  Workload w = MakeAlarmWorkload(params);
  Database db;
  for (const auto& [name, schema] : w.schema) {
    RTIC_ASSERT_OK(db.CreateTable(name, schema));
  }
  for (std::size_t i = 0; i < w.batches.size(); ++i) {
    RTIC_ASSERT_OK(w.batches[i].Apply(&db));
    // An event row present now must have been inserted by THIS batch.
    const auto& inserts = w.batches[i].inserts();
    for (const char* table : {"Raise", "Ack"}) {
      const Table* t = Unwrap(db.GetTable(table));
      std::size_t inserted =
          inserts.count(table) > 0 ? inserts.at(table).size() : 0;
      EXPECT_LE(t->size(), inserted) << table << " leaks events at step " << i;
    }
  }
}

TEST(WorkloadTest, CleanAlarmRunHasNoViolations) {
  AlarmParams params;
  params.length = 80;
  params.late_prob = 0.0;
  EXPECT_EQ(RunWorkload(MakeAlarmWorkload(params), EngineKind::kIncremental),
            0u);
}

TEST(WorkloadTest, LateAcksViolateTheDeadline) {
  AlarmParams params;
  params.length = 120;
  params.late_prob = 0.5;
  EXPECT_GT(RunWorkload(MakeAlarmWorkload(params), EngineKind::kIncremental),
            0u);
}

TEST(WorkloadTest, CleanPayrollRunHasNoViolations) {
  PayrollParams params;
  params.length = 80;
  params.num_employees = 30;
  params.cut_prob = 0.0;
  params.early_raise_prob = 0.0;
  EXPECT_EQ(
      RunWorkload(MakePayrollWorkload(params), EngineKind::kIncremental), 0u);
}

TEST(WorkloadTest, PayCutsAreDetected) {
  PayrollParams params;
  params.length = 120;
  params.num_employees = 30;
  params.cut_prob = 0.5;
  params.early_raise_prob = 0.0;
  EXPECT_GT(
      RunWorkload(MakePayrollWorkload(params), EngineKind::kIncremental), 0u);
}

TEST(WorkloadTest, CleanLibraryRunHasNoViolations) {
  LibraryParams params;
  params.length = 80;
  params.nonmember_prob = 0.0;
  params.late_return_prob = 0.0;
  EXPECT_EQ(
      RunWorkload(MakeLibraryWorkload(params), EngineKind::kIncremental), 0u);
}

TEST(WorkloadTest, RogueLoansAreDetected) {
  LibraryParams params;
  params.length = 120;
  params.nonmember_prob = 0.6;
  params.late_return_prob = 0.0;
  EXPECT_GT(
      RunWorkload(MakeLibraryWorkload(params), EngineKind::kIncremental), 0u);
}

TEST(WorkloadTest, EnginesAgreeOnWorkloadViolationCounts) {
  AlarmParams params;
  params.length = 40;
  params.num_alarms = 10;
  params.late_prob = 0.3;
  Workload w = MakeAlarmWorkload(params);
  std::size_t inc = RunWorkload(w, EngineKind::kIncremental);
  std::size_t naive = RunWorkload(w, EngineKind::kNaive);
  std::size_t act = RunWorkload(w, EngineKind::kActive);
  EXPECT_EQ(inc, naive);
  EXPECT_EQ(inc, act);
}

}  // namespace
}  // namespace rtic
