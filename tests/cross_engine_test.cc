// Randomized cross-engine property suite: generate random constraints and
// random histories; the naive full-history evaluator (executable semantics),
// the incremental bounded-encoding engine, and the active trigger engine
// must produce identical verdicts at every state — and identical
// counterexample sets whenever a constraint is violated. The incremental
// engine is additionally run with pruning disabled (ablation) and must agree
// with itself.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tests/engine_test_util.h"
#include "tests/formula_gen.h"
#include "tl/printer.h"

namespace rtic {
namespace {

using testing::BuildState;
using testing::I;
using testing::MakeEngine;
using testing::PQRSchemas;
using testing::RandomConstraint;
using testing::ScenarioStep;
using testing::T;
using testing::Unwrap;
using tl::Formula;
using tl::FormulaPtr;

/// A random history over P, Q, R with values in {0, 1, 2}.
std::vector<ScenarioStep> RandomHistory(Rng* rng, std::size_t length) {
  std::vector<ScenarioStep> steps;
  Timestamp t = 0;
  for (std::size_t i = 0; i < length; ++i) {
    t += rng->UniformInt(1, 3);
    ScenarioStep step{t, {}};
    for (std::int64_t a = 0; a <= 2; ++a) {
      if (rng->Bernoulli(0.4)) step.tables["P"].push_back(T(I(a)));
      if (rng->Bernoulli(0.4)) step.tables["Q"].push_back(T(I(a)));
      for (std::int64_t b = 0; b <= 2; ++b) {
        if (rng->Bernoulli(0.3)) step.tables["R"].push_back(T(I(a), I(b)));
      }
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

class CrossEngineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngineTest, AllEnginesAgreeOnRandomConstraintsAndHistories) {
  Rng rng(GetParam());
  const auto schemas = PQRSchemas();

  for (int round = 0; round < 3; ++round) {
    FormulaPtr constraint = RandomConstraint(&rng);
    const std::string text = constraint->ToString();
    SCOPED_TRACE("constraint: " + text);

    tl::PredicateCatalog catalog;
    for (const auto& [name, schema] : schemas) catalog[name] = schema;

    auto naive = Unwrap(NaiveEngine::Create(*constraint, catalog));
    auto incremental =
        Unwrap(IncrementalEngine::Create(*constraint, catalog));
    IncrementalOptions ablated_options;
    ablated_options.pruning = PruningPolicy::kExpiryOnly;
    auto ablated = Unwrap(
        IncrementalEngine::Create(*constraint, catalog, ablated_options));
    auto active = Unwrap(ActiveEngine::Create(*constraint, catalog));

    std::vector<ScenarioStep> steps = RandomHistory(&rng, 10);
    for (const ScenarioStep& step : steps) {
      Database state = Unwrap(BuildState(schemas, step));
      bool v_naive = Unwrap(naive->OnTransition(state, step.t));
      bool v_inc = Unwrap(incremental->OnTransition(state, step.t));
      bool v_abl = Unwrap(ablated->OnTransition(state, step.t));
      bool v_act = Unwrap(active->OnTransition(state, step.t));
      ASSERT_EQ(v_naive, v_inc)
          << "naive vs incremental at t=" << step.t << " on " << text;
      ASSERT_EQ(v_naive, v_abl)
          << "naive vs ablated at t=" << step.t << " on " << text;
      ASSERT_EQ(v_naive, v_act)
          << "naive vs active at t=" << step.t << " on " << text;

      if (!v_naive) {
        Relation c_naive = Unwrap(naive->CurrentCounterexamples(state));
        Relation c_inc = Unwrap(incremental->CurrentCounterexamples(state));
        Relation c_act = Unwrap(active->CurrentCounterexamples(state));
        ASSERT_EQ(c_naive, c_inc)
            << "counterexamples diverge at t=" << step.t << " on " << text;
        ASSERT_EQ(c_naive, c_act)
            << "counterexamples diverge at t=" << step.t << " on " << text;
      }
    }

    // The ablation retains at least as much auxiliary state as the
    // bounded encoding.
    EXPECT_GE(ablated->AuxTimestampCount(), incremental->AuxTimestampCount());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineTest,
                         ::testing::Range<std::uint64_t>(1, 41));

// A long-history agreement test on a fixed realistic constraint, checking
// that pruning-induced state loss never changes verdicts.
TEST(CrossEngineLongHistoryTest, DeadlineConstraintAgreesOver300States) {
  const auto schemas = PQRSchemas();
  tl::PredicateCatalog catalog;
  for (const auto& [name, schema] : schemas) catalog[name] = schema;
  FormulaPtr constraint = Unwrap(
      tl::ParseFormula("forall a: P(a) implies P(a) since[2, 9] Q(a)"));

  auto naive = Unwrap(NaiveEngine::Create(*constraint, catalog));
  auto incremental = Unwrap(IncrementalEngine::Create(*constraint, catalog));

  Rng rng(777);
  Timestamp t = 0;
  for (int i = 0; i < 300; ++i) {
    t += rng.UniformInt(1, 2);
    ScenarioStep step{t, {}};
    for (std::int64_t a = 0; a <= 1; ++a) {
      if (rng.Bernoulli(0.5)) step.tables["P"].push_back(T(I(a)));
      if (rng.Bernoulli(0.3)) step.tables["Q"].push_back(T(I(a)));
    }
    Database state = Unwrap(BuildState(schemas, step));
    bool v_naive = Unwrap(naive->OnTransition(state, t));
    bool v_inc = Unwrap(incremental->OnTransition(state, t));
    ASSERT_EQ(v_naive, v_inc) << "divergence at t=" << t;
  }
  // Bounded encoding: aux size is small; naive stored the whole history.
  EXPECT_LE(incremental->AuxTimestampCount(), 2u * 3u);
  EXPECT_GT(naive->StorageRows(), 100u);
}

// Directed coverage for CurrentCounterexamples in the two situations the
// randomized suite only exercises on violation: the result after a
// *passing* transition (must be empty, with the forall columns intact),
// and the zero-column result for constraints that are not of
// `forall ...:` shape.

std::unique_ptr<CheckerEngine> MakeKind(EngineKind kind,
                                        const std::string& text) {
  return Unwrap(MakeEngine(kind, text, PQRSchemas()));
}

TEST(CrossEngineCounterexampleTest, EmptyAfterPassingTransition) {
  const std::string text = "forall x: P(x) implies Q(x)";
  const auto schemas = PQRSchemas();
  for (EngineKind kind :
       {EngineKind::kNaive, EngineKind::kIncremental, EngineKind::kActive}) {
    SCOPED_TRACE(EngineKindToString(kind));
    auto engine = MakeKind(kind, text);

    // t=1: passes (P ⊆ Q). Counterexamples must be empty but keep the
    // forall variable as its column.
    Database s1 = Unwrap(BuildState(schemas, {1, {{"P", {T(I(1))}},
                                                 {"Q", {T(I(1))}}}}));
    ASSERT_TRUE(Unwrap(engine->OnTransition(s1, 1)));
    Relation c1 = Unwrap(engine->CurrentCounterexamples(s1));
    EXPECT_EQ(c1.size(), 0u);
    ASSERT_EQ(c1.columns().size(), 1u);
    EXPECT_EQ(c1.columns()[0].name, "x");

    // t=2: fails for x=2 only.
    Database s2 = Unwrap(BuildState(
        schemas, {2, {{"P", {T(I(1)), T(I(2))}}, {"Q", {T(I(1))}}}}));
    ASSERT_FALSE(Unwrap(engine->OnTransition(s2, 2)));
    Relation c2 = Unwrap(engine->CurrentCounterexamples(s2));
    EXPECT_EQ(c2.SortedRows(), std::vector<Tuple>{T(I(2))});

    // t=3: passes again — the counterexample set must drain back to
    // empty, not retain the previous state's witnesses.
    Database s3 = Unwrap(BuildState(schemas, {3, {{"Q", {T(I(1))}}}}));
    ASSERT_TRUE(Unwrap(engine->OnTransition(s3, 3)));
    Relation c3 = Unwrap(engine->CurrentCounterexamples(s3));
    EXPECT_EQ(c3.size(), 0u);
  }
}

TEST(CrossEngineCounterexampleTest, TemporalConstraintEmptyAfterPass) {
  const std::string text = "forall a: P(a) implies once[0, 5] Q(a)";
  const auto schemas = PQRSchemas();
  for (EngineKind kind :
       {EngineKind::kNaive, EngineKind::kIncremental, EngineKind::kActive}) {
    SCOPED_TRACE(EngineKindToString(kind));
    auto engine = MakeKind(kind, text);

    Database s1 = Unwrap(BuildState(schemas, {1, {{"Q", {T(I(4))}}}}));
    ASSERT_TRUE(Unwrap(engine->OnTransition(s1, 1)));

    // t=3: P(4) is justified by Q(4) at t=1 (within the window): passes.
    Database s2 = Unwrap(BuildState(schemas, {3, {{"P", {T(I(4))}}}}));
    ASSERT_TRUE(Unwrap(engine->OnTransition(s2, 3)));
    Relation c2 = Unwrap(engine->CurrentCounterexamples(s2));
    EXPECT_EQ(c2.size(), 0u);
    ASSERT_EQ(c2.columns().size(), 1u);
    EXPECT_EQ(c2.columns()[0].name, "a");

    // t=8: the window [0, 5] has expired: fails with witness a=4.
    Database s3 = Unwrap(BuildState(schemas, {8, {{"P", {T(I(4))}}}}));
    ASSERT_FALSE(Unwrap(engine->OnTransition(s3, 8)));
    Relation c3 = Unwrap(engine->CurrentCounterexamples(s3));
    EXPECT_EQ(c3.SortedRows(), std::vector<Tuple>{T(I(4))});
  }
}

TEST(CrossEngineCounterexampleTest, NonForallConstraintHasZeroColumns) {
  // Equivalent to `forall a: P(a) implies Q(a)` but written without an
  // outermost forall, so counterexamples degrade to a zero-column
  // relation: empty when the constraint holds, non-empty when violated.
  const std::string text = "not (exists a: P(a) and not Q(a))";
  const auto schemas = PQRSchemas();

  auto naive = MakeKind(EngineKind::kNaive, text);
  auto incremental = MakeKind(EngineKind::kIncremental, text);
  auto active = MakeKind(EngineKind::kActive, text);

  // Passing state.
  Database pass = Unwrap(BuildState(schemas, {1, {{"P", {T(I(1))}},
                                                  {"Q", {T(I(1))}}}}));
  ASSERT_TRUE(Unwrap(naive->OnTransition(pass, 1)));
  ASSERT_TRUE(Unwrap(incremental->OnTransition(pass, 1)));
  ASSERT_TRUE(Unwrap(active->OnTransition(pass, 1)));
  Relation p_naive = Unwrap(naive->CurrentCounterexamples(pass));
  EXPECT_TRUE(p_naive.columns().empty());
  EXPECT_EQ(p_naive.size(), 0u);
  EXPECT_EQ(p_naive, Unwrap(incremental->CurrentCounterexamples(pass)));
  EXPECT_EQ(p_naive, Unwrap(active->CurrentCounterexamples(pass)));

  // Violating state.
  Database fail = Unwrap(BuildState(schemas, {2, {{"P", {T(I(2))}}}}));
  ASSERT_FALSE(Unwrap(naive->OnTransition(fail, 2)));
  ASSERT_FALSE(Unwrap(incremental->OnTransition(fail, 2)));
  ASSERT_FALSE(Unwrap(active->OnTransition(fail, 2)));
  Relation f_naive = Unwrap(naive->CurrentCounterexamples(fail));
  EXPECT_TRUE(f_naive.columns().empty());
  EXPECT_GT(f_naive.size(), 0u);
  EXPECT_EQ(f_naive, Unwrap(incremental->CurrentCounterexamples(fail)));
  EXPECT_EQ(f_naive, Unwrap(active->CurrentCounterexamples(fail)));
}

}  // namespace
}  // namespace rtic
