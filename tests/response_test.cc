// Tests for bounded-future response constraints: shape validation, the
// obligation life cycle (trigger / discharge / expire), delayed-verdict
// attribution, and a randomized comparison against an offline reference
// checker that sees the whole history at once.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "engines/response/response_engine.h"
#include "monitor/monitor.h"
#include "tests/engine_test_util.h"

namespace rtic {
namespace {

using testing::BuildState;
using testing::I;
using testing::IntSchema;
using testing::PQRSchemas;
using testing::ScenarioStep;
using testing::T;
using testing::Unwrap;

tl::PredicateCatalog PQRCatalog() {
  tl::PredicateCatalog catalog;
  for (const auto& [name, schema] : PQRSchemas()) catalog[name] = schema;
  return catalog;
}

std::unique_ptr<ResponseEngine> MakeResponse(const std::string& text) {
  tl::FormulaPtr f = Unwrap(tl::ParseFormula(text));
  return Unwrap(ResponseEngine::Create(*f, PQRCatalog()));
}

// ---- shape validation --------------------------------------------------------

TEST(ResponseShapeTest, AcceptsCanonicalShape) {
  EXPECT_TRUE(MakeResponse(
                  "forall a: P(a) implies eventually[0, 10] Q(a)") != nullptr);
}

TEST(ResponseShapeTest, LooksLikeDetector) {
  tl::FormulaPtr yes = Unwrap(tl::ParseFormula(
      "forall a: P(a) implies eventually[0, 5] Q(a)"));
  tl::FormulaPtr no1 = Unwrap(tl::ParseFormula(
      "forall a: P(a) implies once[0, 5] Q(a)"));
  tl::FormulaPtr no2 = Unwrap(tl::ParseFormula("forall a: P(a) implies Q(a)"));
  EXPECT_TRUE(ResponseEngine::LooksLikeResponseConstraint(*yes));
  EXPECT_FALSE(ResponseEngine::LooksLikeResponseConstraint(*no1));
  EXPECT_FALSE(ResponseEngine::LooksLikeResponseConstraint(*no2));
}

TEST(ResponseShapeTest, RejectsUnboundedWindow) {
  tl::FormulaPtr f = Unwrap(tl::ParseFormula(
      "forall a: P(a) implies eventually[0, inf] Q(a)"));
  auto r = ResponseEngine::Create(*f, PQRCatalog());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bounded"), std::string::npos);
}

TEST(ResponseShapeTest, RejectsWrongShape) {
  for (const char* text : {
           "forall a: P(a) and eventually[0, 5] Q(a)",
           "forall a: eventually[0, 5] Q(a)",
           "forall a: P(a) implies Q(a)",
       }) {
    tl::FormulaPtr f = Unwrap(tl::ParseFormula(text));
    EXPECT_FALSE(ResponseEngine::Create(*f, PQRCatalog()).ok()) << text;
  }
}

TEST(ResponseShapeTest, RejectsTemporalBodies) {
  tl::FormulaPtr f1 = Unwrap(tl::ParseFormula(
      "forall a: once P(a) implies eventually[0, 5] Q(a)"));
  EXPECT_EQ(ResponseEngine::Create(*f1, PQRCatalog()).status().code(),
            StatusCode::kUnimplemented);
  tl::FormulaPtr f2 = Unwrap(tl::ParseFormula(
      "forall a: P(a) implies eventually[0, 5] once Q(a)"));
  EXPECT_EQ(ResponseEngine::Create(*f2, PQRCatalog()).status().code(),
            StatusCode::kUnimplemented);
}

TEST(ResponseShapeTest, RejectsUnboundResponseVariables) {
  tl::FormulaPtr f = Unwrap(tl::ParseFormula(
      "forall a, b: P(a) implies eventually[0, 5] R(a, b)"));
  auto r = ResponseEngine::Create(*f, PQRCatalog());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not bound by the trigger"),
            std::string::npos);
}

TEST(ResponseShapeTest, PastEnginesRejectEventually) {
  tl::FormulaPtr f = Unwrap(tl::ParseFormula(
      "forall a: P(a) implies eventually[0, 5] Q(a)"));
  EXPECT_FALSE(IncrementalEngine::Create(*f, PQRCatalog()).ok());
}

// ---- obligation life cycle ---------------------------------------------------------

TEST(ResponseEngineTest, DischargedWithinWindow) {
  auto engine = MakeResponse("forall a: P(a) implies eventually[0, 5] Q(a)");
  const auto schemas = PQRSchemas();
  // Trigger at t=1; response at t=4 (distance 3): no violation ever.
  std::vector<ScenarioStep> steps{
      {1, {{"P", {T(I(7))}}}}, {4, {{"Q", {T(I(7))}}}}, {10, {}}, {20, {}}};
  for (const ScenarioStep& step : steps) {
    Database state = Unwrap(BuildState(schemas, step));
    EXPECT_TRUE(Unwrap(engine->OnTransition(state, step.t)))
        << "at t=" << step.t;
  }
  EXPECT_EQ(engine->PendingObligations(), 0u);
}

TEST(ResponseEngineTest, ExpiryAttributedToWindowCloseState) {
  auto engine = MakeResponse("forall a: P(a) implies eventually[0, 5] Q(a)");
  const auto schemas = PQRSchemas();
  // Trigger at t=1, never answered. The window [1, 6] closes at the first
  // state with distance >= 5: t=7.
  std::vector<std::pair<Timestamp, bool>> script{
      {1, true}, {3, true}, {7, false}, {9, true}};
  for (auto [t, want] : script) {
    ScenarioStep step{t, {}};
    if (t == 1) step.tables["P"] = {T(I(7))};
    Database state = Unwrap(BuildState(schemas, step));
    EXPECT_EQ(Unwrap(engine->OnTransition(state, t)), want) << "t=" << t;
    if (!want) {
      Relation c = Unwrap(engine->CurrentCounterexamples(state));
      EXPECT_TRUE(c.Contains(T(I(7))));
      ASSERT_EQ(engine->LastExpired().size(), 1u);
      EXPECT_EQ(engine->LastExpired()[0].trigger_time, 1);
    }
  }
}

TEST(ResponseEngineTest, ImmediateResponseDischargesAtZeroDistance) {
  auto engine = MakeResponse("forall a: P(a) implies eventually[0, 5] Q(a)");
  const auto schemas = PQRSchemas();
  ScenarioStep step{1, {{"P", {T(I(2))}}, {"Q", {T(I(2))}}}};
  Database state = Unwrap(BuildState(schemas, step));
  EXPECT_TRUE(Unwrap(engine->OnTransition(state, 1)));
  EXPECT_EQ(engine->PendingObligations(), 0u);
}

TEST(ResponseEngineTest, EarlyResponseDoesNotCountWhenLoPositive) {
  auto engine = MakeResponse("forall a: P(a) implies eventually[2, 5] Q(a)");
  const auto schemas = PQRSchemas();
  // Response at distance 1 (< lo): does not discharge; window closes unmet.
  std::vector<std::pair<ScenarioStep, bool>> script{
      {{1, {{"P", {T(I(3))}}}}, true},
      {{2, {{"Q", {T(I(3))}}}}, true},   // too early
      {{8, {}}, false},                  // distance 7 >= 5: expired
  };
  for (auto& [step, want] : script) {
    Database state = Unwrap(BuildState(schemas, step));
    EXPECT_EQ(Unwrap(engine->OnTransition(state, step.t)), want)
        << "t=" << step.t;
  }
}

TEST(ResponseEngineTest, PerEntityObligations) {
  auto engine = MakeResponse("forall a: P(a) implies eventually[0, 4] Q(a)");
  const auto schemas = PQRSchemas();
  // Entities 1 and 2 triggered at t=1; only 1 answered.
  std::vector<ScenarioStep> steps{
      {1, {{"P", {T(I(1)), T(I(2))}}}},
      {3, {{"Q", {T(I(1))}}}},
      {6, {}},  // distance 5 >= 4: entity 2 expires
  };
  Database s0 = Unwrap(BuildState(schemas, steps[0]));
  EXPECT_TRUE(Unwrap(engine->OnTransition(s0, 1)));
  EXPECT_EQ(engine->PendingObligations(), 2u);
  Database s1 = Unwrap(BuildState(schemas, steps[1]));
  EXPECT_TRUE(Unwrap(engine->OnTransition(s1, 3)));
  EXPECT_EQ(engine->PendingObligations(), 1u);
  Database s2 = Unwrap(BuildState(schemas, steps[2]));
  EXPECT_FALSE(Unwrap(engine->OnTransition(s2, 6)));
  Relation c = Unwrap(engine->CurrentCounterexamples(s2));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.Contains(T(I(2))));
}

TEST(ResponseEngineTest, RepeatedTriggersAreIndependentObligations) {
  auto engine = MakeResponse("forall a: P(a) implies eventually[0, 3] Q(a)");
  const auto schemas = PQRSchemas();
  // Trigger at 1 and 3; a response at 4 is within both windows ([1,4] and
  // [3,6]): both discharged at once.
  for (auto [t, p, q] : {std::tuple<Timestamp, bool, bool>{1, true, false},
                         {3, true, false},
                         {4, false, true},
                         {10, false, false}}) {
    ScenarioStep step{t, {}};
    if (p) step.tables["P"] = {T(I(5))};
    if (q) step.tables["Q"] = {T(I(5))};
    Database state = Unwrap(BuildState(schemas, step));
    EXPECT_TRUE(Unwrap(engine->OnTransition(state, t))) << "t=" << t;
  }
  EXPECT_EQ(engine->PendingObligations(), 0u);
}

TEST(ResponseEngineTest, ObligationSpaceIsBounded) {
  auto engine = MakeResponse("forall a: P(a) implies eventually[0, 5] Q(a)");
  const auto schemas = PQRSchemas();
  // P(0..2) triggers at every state, Q answers every state: discharged
  // immediately; pending stays 0 regardless of history length.
  for (Timestamp t = 1; t <= 300; ++t) {
    ScenarioStep step{t, {{"P", {T(I(0)), T(I(1)), T(I(2))}},
                          {"Q", {T(I(0)), T(I(1)), T(I(2))}}}};
    Database state = Unwrap(BuildState(schemas, step));
    (void)Unwrap(engine->OnTransition(state, t));
    EXPECT_LE(engine->StorageRows(), 3u * 6u);
  }
}

// ---- monitor integration ---------------------------------------------------------

TEST(ResponseMonitorTest, RoutedAutomatically) {
  ConstraintMonitor monitor;  // engine kind irrelevant for response
  RTIC_ASSERT_OK(monitor.CreateTable("Raise", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.CreateTable("Ack", IntSchema({"a"})));
  RTIC_ASSERT_OK(monitor.RegisterConstraint(
      "respond", "forall a: Raise(a) implies eventually[0, 10] Ack(a)"));

  UpdateBatch raise(1);
  raise.Insert("Raise", T(I(42)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(raise)).empty());

  UpdateBatch clear(2);
  clear.Delete("Raise", T(I(42)));
  EXPECT_TRUE(Unwrap(monitor.ApplyUpdate(clear)).empty());

  EXPECT_TRUE(Unwrap(monitor.Tick(10)).empty());  // distance 9 < 10
  std::vector<Violation> v = Unwrap(monitor.Tick(11));  // distance 10: closed
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].timestamp, 11);
  EXPECT_EQ(v[0].witnesses[0], T(I(42)));
}

// ---- randomized comparison with an offline reference -------------------------------

/// Offline reference: with the whole history known, obligation (ν, i) is
/// met iff some state j >= i has t_j - t_i in [a, b] and response(ν)@j.
/// An unmet obligation is reported at the first state k with
/// t_k - t_i >= b. Returns the set of (report_state_index, entity).
std::set<std::pair<std::size_t, std::int64_t>> OfflineExpected(
    const std::vector<ScenarioStep>& steps, Timestamp lo, Timestamp hi) {
  std::set<std::pair<std::size_t, std::int64_t>> out;
  auto holds = [&](std::size_t j, const char* table, std::int64_t a) {
    auto it = steps[j].tables.find(table);
    if (it == steps[j].tables.end()) return false;
    for (const Tuple& row : it->second) {
      if (row.at(0).AsInt64() == a) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < steps.size(); ++i) {
    for (std::int64_t a = 0; a <= 2; ++a) {
      if (!holds(i, "P", a)) continue;
      bool met = false;
      for (std::size_t j = i; j < steps.size(); ++j) {
        Timestamp d = steps[j].t - steps[i].t;
        if (d > hi) break;
        if (d >= lo && holds(j, "Q", a)) {
          met = true;
          break;
        }
      }
      if (met) continue;
      for (std::size_t k = i; k < steps.size(); ++k) {
        if (steps[k].t - steps[i].t >= hi) {
          out.emplace(k, a);
          break;
        }
      }
      // If the history ends before the window closes, the obligation is
      // still open: not reported (matches the online engine).
    }
  }
  return out;
}

class ResponseRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResponseRandomTest, OnlineMatchesOfflineReference) {
  Rng rng(GetParam());
  const Timestamp lo = rng.UniformInt(0, 2);
  const Timestamp hi = lo + rng.UniformInt(1, 6);
  std::string text = "forall a: P(a) implies eventually[" +
                     std::to_string(lo) + ", " + std::to_string(hi) +
                     "] Q(a)";
  auto engine = MakeResponse(text);
  const auto schemas = PQRSchemas();

  std::vector<ScenarioStep> steps;
  Timestamp t = 0;
  for (int i = 0; i < 30; ++i) {
    t += rng.UniformInt(1, 3);
    ScenarioStep step{t, {}};
    for (std::int64_t a = 0; a <= 2; ++a) {
      if (rng.Bernoulli(0.3)) step.tables["P"].push_back(T(I(a)));
      if (rng.Bernoulli(0.3)) step.tables["Q"].push_back(T(I(a)));
    }
    steps.push_back(std::move(step));
  }

  std::set<std::pair<std::size_t, std::int64_t>> got;
  for (std::size_t k = 0; k < steps.size(); ++k) {
    Database state = Unwrap(BuildState(schemas, steps[k]));
    bool ok = Unwrap(engine->OnTransition(state, steps[k].t));
    if (!ok) {
      for (const auto& e : engine->LastExpired()) {
        got.emplace(k, e.valuation.at(0).AsInt64());
      }
    } else {
      EXPECT_TRUE(engine->LastExpired().empty());
    }
  }
  EXPECT_EQ(got, OfflineExpected(steps, lo, hi)) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseRandomTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace rtic
