// RTIC server: protocol hardening, session lifecycle, multi-client
// determinism, and admission control.
//
// The wire-format tests mirror replication_test.cc's damage style (every
// byte flipped, every truncation) across all eleven RTICSRV1 frame types.
// The concurrency test checks the server's core promise: N clients
// interleaving on one tenant produce verdicts byte-identical to applying
// the same batches serially through the library. The admission test uses a
// gate file system (Sync blocks on a condition variable) to hold the
// tenant worker mid-apply deterministically — no sleeps deciding outcomes.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "monitor/monitor.h"
#include "replication/tcp_transport.h"
#include "replication/transport.h"
#include "server/client.h"
#include "server/server.h"
#include "server/server_format.h"
#include "storage/codec.h"
#include "tests/test_util.h"
#include "wal/file.h"

namespace rtic {
namespace {

using replication::TcpConnect;
using replication::Transport;
using server::DecodeError;
using server::DecodeSchemaPayload;
using server::DecodeStatsPayload;
using server::DecodeVerdictPayload;
using server::EncodeApplyBatch;
using server::EncodeCreateTable;
using server::EncodeGetStats;
using server::EncodeHello;
using server::EncodeMessage;
using server::EncodeRegisterConstraint;
using server::EncodeSchemaPayload;
using server::EncodeStatsPayload;
using server::EncodeVerdictPayload;
using server::Message;
using server::MessageType;
using server::ParseMessage;
using server::RticClient;
using server::RticServer;
using server::ServerOptions;
using server::StatsReply;
using server::Verdict;
using testing::I;
using testing::IntSchema;
using testing::T;
using testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_server_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

std::string Render(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) out += v.ToString() + "\n";
  return out;
}

// The running example: employees whose salary must never drop.
constexpr char kNoPayCut[] =
    "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies s >= s0";

Status SetUpPayroll(RticClient* client) {
  RTIC_RETURN_IF_ERROR(client->CreateTable("Emp", IntSchema({"e", "s"})));
  return client->RegisterConstraint("no_pay_cut", kNoPayCut);
}

UpdateBatch EmpBatch(std::int64_t employee, std::int64_t salary,
                     Timestamp ts = 0) {
  UpdateBatch batch(ts);
  batch.Insert("Emp", T(I(employee), I(salary)));
  return batch;
}

// -- wire format ------------------------------------------------------------

TEST(ServerFormatTest, MessagesRoundTrip) {
  Message hello = Unwrap(ParseMessage(EncodeHello("acme")));
  EXPECT_EQ(hello.type, MessageType::kHello);
  EXPECT_EQ(hello.name, "acme");
  EXPECT_EQ(hello.version, server::kServerProtocolVersion);

  Message create = Unwrap(
      ParseMessage(EncodeCreateTable("Emp", IntSchema({"e", "s"}))));
  EXPECT_EQ(create.type, MessageType::kCreateTable);
  EXPECT_EQ(create.name, "Emp");
  Schema schema = Unwrap(DecodeSchemaPayload(create.body));
  EXPECT_EQ(schema, IntSchema({"e", "s"}));

  Message apply = Unwrap(ParseMessage(EncodeApplyBatch(EmpBatch(1, 50, 7))));
  EXPECT_EQ(apply.type, MessageType::kApplyBatch);
  StateReader r(apply.body);
  UpdateBatch batch = Unwrap(UpdateBatch::DecodeFrom(&r));
  EXPECT_EQ(batch.timestamp(), 7);
  EXPECT_EQ(batch.OperationCount(), 1u);

  Message over = Unwrap(ParseMessage(server::EncodeOverloaded(16)));
  EXPECT_EQ(over.type, MessageType::kOverloaded);
  EXPECT_EQ(over.arg, 16u);

  Message error = Unwrap(
      ParseMessage(server::EncodeError(Status::NotFound("no such table"))));
  Status decoded = DecodeError(error);
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.message(), "no such table");
}

// One representative frame per RTICSRV1 type; every single-bit damage and
// every truncation must be rejected by the parser.
TEST(ServerFormatTest, EveryBitFlipAndTruncationIsRejectedPerType) {
  Violation violation;
  violation.constraint_name = "c";
  violation.timestamp = 3;
  violation.witness_columns = {"e"};
  violation.witnesses = {T(I(9))};

  ConstraintMonitor monitor;
  RTIC_ASSERT_OK(monitor.CreateTable("Emp", IntSchema({"e", "s"})));

  const std::vector<std::string> frames = {
      EncodeHello("acme"),
      EncodeCreateTable("Emp", IntSchema({"e", "s"})),
      EncodeRegisterConstraint("no_pay_cut", kNoPayCut),
      EncodeApplyBatch(EmpBatch(1, 50, 7)),
      EncodeGetStats(),
      server::EncodeHelloOk(64),
      server::EncodeOk(),
      server::EncodeVerdict(7, {violation}),
      server::EncodeStatsReply(monitor),
      server::EncodeError(Status::NotFound("x")),
      server::EncodeOverloaded(16),
  };
  ASSERT_EQ(frames.size(), 11u);  // one per MessageType

  for (std::size_t f = 0; f < frames.size(); ++f) {
    const std::string& frame = frames[f];
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string damaged = frame;
        damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
        EXPECT_FALSE(ParseMessage(damaged).ok())
            << "frame " << f << " flip bit " << bit << " of byte " << byte;
      }
    }
    for (std::size_t len = 0; len < frame.size(); ++len) {
      EXPECT_FALSE(ParseMessage(std::string_view(frame).substr(0, len)).ok())
          << "frame " << f << " truncated to " << len;
    }
    EXPECT_FALSE(ParseMessage(frame + "x").ok()) << "frame " << f
                                                 << " trailing byte";
  }
}

TEST(ServerFormatTest, UnknownTypeRejectedUnknownVersionParses) {
  Message bad;
  bad.type = static_cast<MessageType>(12);
  EXPECT_FALSE(ParseMessage(EncodeMessage(bad)).ok());

  // A future version parses (the layout is fixed); the session layer is
  // responsible for refusing it — see VersionMismatchRefusedAtSessionStart.
  Message v2;
  v2.version = 2;
  v2.type = MessageType::kHello;
  v2.name = "acme";
  Message parsed = Unwrap(ParseMessage(EncodeMessage(v2)));
  EXPECT_EQ(parsed.version, 2);
}

TEST(ServerFormatTest, PayloadCodecsRoundTripAndRejectDamage) {
  // Verdict: two violations, one with witnesses.
  Violation a;
  a.constraint_name = "no_pay_cut";
  a.timestamp = 5;
  a.witness_columns = {"e", "s", "s0"};
  a.witnesses = {T(I(1), I(40), I(50)), T(I(2), I(30), I(60))};
  Violation b;
  b.constraint_name = "other";
  b.timestamp = 5;
  std::string payload = EncodeVerdictPayload(5, {a, b});
  Verdict verdict = Unwrap(DecodeVerdictPayload(payload));
  EXPECT_EQ(verdict.timestamp, 5);
  ASSERT_EQ(verdict.violations.size(), 2u);
  EXPECT_EQ(verdict.violations[0].ToString(), a.ToString());
  EXPECT_EQ(verdict.violations[1].ToString(), b.ToString());
  EXPECT_FALSE(DecodeVerdictPayload(payload + " junk").ok());
  EXPECT_FALSE(DecodeVerdictPayload(payload.substr(0, 10)).ok());

  // Stats.
  StatsReply stats;
  stats.transition_count = 12;
  stats.current_time = 99;
  stats.total_violations = 3;
  stats.constraints.push_back({"no_pay_cut", 12, 3, 7, 4, 6});
  StatsReply round = Unwrap(DecodeStatsPayload(EncodeStatsPayload(stats)));
  EXPECT_EQ(round.transition_count, 12u);
  EXPECT_EQ(round.current_time, 99);
  EXPECT_EQ(round.total_violations, 3u);
  ASSERT_EQ(round.constraints.size(), 1u);
  EXPECT_EQ(round.constraints[0].name, "no_pay_cut");
  EXPECT_EQ(round.constraints[0].storage_rows, 7u);
  EXPECT_EQ(round.constraints[0].aux_valuations, 4u);
  EXPECT_EQ(round.constraints[0].aux_anchors, 6u);

  // Schema: bad column type rejected.
  StateWriter w;
  w.WriteSize(1);
  w.WriteString("c");
  w.WriteInt(17);
  EXPECT_FALSE(DecodeSchemaPayload(w.str()).ok());
}

// -- session lifecycle ------------------------------------------------------

TEST(ServerSessionTest, StartOnBoundPortFailsCleanly) {
  auto server = Unwrap(RticServer::Start(ServerOptions{}));
  ServerOptions taken;
  taken.port = server->port();
  // Listen fails on the occupied port and the partially-constructed server
  // is destroyed before listener_ was ever set; that teardown must produce
  // an error Result, not a crash.
  Result<std::unique_ptr<RticServer>> second = RticServer::Start(taken);
  EXPECT_FALSE(second.ok());
  server->Stop();
}

TEST(ServerSessionTest, HandshakeRequestsAndServerAssignedTimestamps) {
  auto server = Unwrap(RticServer::Start(ServerOptions{}));
  auto client = Unwrap(RticClient::Connect(server->address(), "acme"));
  EXPECT_EQ(client->queue_capacity(), 64u);
  RTIC_ASSERT_OK(SetUpPayroll(client.get()));

  // Timestamp 0 asks the server to assign current_time + 1.
  RticClient::ApplyResult first = Unwrap(client->Apply(EmpBatch(1, 50)));
  EXPECT_FALSE(first.overloaded);
  EXPECT_EQ(first.timestamp, 1);
  EXPECT_TRUE(first.violations.empty());

  // A pay cut at the assigned time 2 must be reported with witnesses.
  RticClient::ApplyResult cut = Unwrap(client->Apply(EmpBatch(1, 40)));
  EXPECT_EQ(cut.timestamp, 2);
  ASSERT_EQ(cut.violations.size(), 1u);
  EXPECT_EQ(cut.violations[0].constraint_name, "no_pay_cut");
  EXPECT_EQ(cut.violations[0].timestamp, 2);

  // Explicit timestamps still work and the clock follows them. Rows
  // accumulate, so the t=2 pay cut stays violated at this state too.
  RticClient::ApplyResult jump = Unwrap(client->Apply(EmpBatch(2, 70, 10)));
  EXPECT_EQ(jump.timestamp, 10);

  StatsReply stats = Unwrap(client->GetStats());
  EXPECT_EQ(stats.transition_count, 3u);
  EXPECT_EQ(stats.current_time, 10);
  EXPECT_EQ(stats.total_violations, 2u);
  ASSERT_EQ(stats.constraints.size(), 1u);
  EXPECT_EQ(stats.constraints[0].name, "no_pay_cut");
  EXPECT_EQ(stats.constraints[0].violations, 2u);

  client->Close();
  server->Stop();
}

TEST(ServerSessionTest, VersionMismatchRefusedAtSessionStart) {
  auto server = Unwrap(RticServer::Start(ServerOptions{}));
  auto transport = Unwrap(TcpConnect(server->address()));

  Message hello;
  hello.version = 2;
  hello.type = MessageType::kHello;
  hello.name = "acme";
  RTIC_ASSERT_OK(transport->Send(EncodeMessage(hello)));

  std::string bytes;
  ASSERT_TRUE(Unwrap(transport->Recv(&bytes)));
  Message reply = Unwrap(ParseMessage(bytes));
  ASSERT_EQ(reply.type, MessageType::kError);
  Status refused = DecodeError(reply);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  // The refusal names both the offered and the spoken version.
  EXPECT_NE(refused.message().find("version 2"), std::string::npos)
      << refused.message();
  EXPECT_NE(refused.message().find("version 1"), std::string::npos)
      << refused.message();

  // The refusal is fatal: the server hangs up.
  EXPECT_FALSE(Unwrap(transport->Recv(&bytes)));
  server->Stop();
}

TEST(ServerSessionTest, RequestLevelErrorsLeaveTheSessionOpen) {
  auto server = Unwrap(RticServer::Start(ServerOptions{}));
  auto client = Unwrap(RticClient::Connect(server->address(), "acme"));
  RTIC_ASSERT_OK(SetUpPayroll(client.get()));
  (void)Unwrap(client->Apply(EmpBatch(1, 50, 5)));

  // Stale timestamp: refused, but the session keeps working.
  EXPECT_FALSE(client->Apply(EmpBatch(1, 60, 3)).ok());
  // Unknown table: same.
  UpdateBatch bad;
  bad.Insert("Nope", T(I(1)));
  EXPECT_FALSE(client->Apply(bad).ok());
  // Duplicate table: same.
  EXPECT_FALSE(client->CreateTable("Emp", IntSchema({"x"})).ok());

  RticClient::ApplyResult after = Unwrap(client->Apply(EmpBatch(1, 60)));
  EXPECT_EQ(after.timestamp, 6);
  StatsReply stats = Unwrap(client->GetStats());
  EXPECT_EQ(stats.transition_count, 2u);
  server->Stop();
}

TEST(ServerSessionTest, GarbageFrameIsFatalOnlyToItsOwnSession) {
  auto server = Unwrap(RticServer::Start(ServerOptions{}));
  auto healthy = Unwrap(RticClient::Connect(server->address(), "acme"));
  RTIC_ASSERT_OK(SetUpPayroll(healthy.get()));

  auto rogue = Unwrap(TcpConnect(server->address()));
  RTIC_ASSERT_OK(rogue->Send(EncodeHello("acme")));
  std::string bytes;
  ASSERT_TRUE(Unwrap(rogue->Recv(&bytes)));  // hello-ok
  RTIC_ASSERT_OK(rogue->Send("this is not an RTICSRV1 frame"));
  ASSERT_TRUE(Unwrap(rogue->Recv(&bytes)));
  Message reply = Unwrap(ParseMessage(bytes));
  EXPECT_EQ(reply.type, MessageType::kError);
  EXPECT_FALSE(Unwrap(rogue->Recv(&bytes)));  // server hung up on rogue

  // The healthy session on the same tenant is untouched.
  RticClient::ApplyResult applied = Unwrap(healthy->Apply(EmpBatch(1, 50)));
  EXPECT_EQ(applied.timestamp, 1);
  server->Stop();
}

// A client killed mid-frame (its last length prefix promises more bytes
// than ever arrive) poisons only its own session: the partial frame is
// dropped, nothing is applied, and other sessions continue.
TEST(ServerSessionTest, ClientKilledMidFramePoisonsOnlyItsOwnSession) {
  auto server = Unwrap(RticServer::Start(ServerOptions{}));
  auto healthy = Unwrap(RticClient::Connect(server->address(), "acme"));
  RTIC_ASSERT_OK(SetUpPayroll(healthy.get()));
  (void)Unwrap(healthy->Apply(EmpBatch(1, 50)));

  // Hand-rolled socket so we can die mid-message.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  auto send_all = [fd](const std::string& data) {
    std::size_t done = 0;
    while (done < data.size()) {
      ssize_t w = ::send(fd, data.data() + done, data.size() - done,
                         MSG_NOSIGNAL);
      ASSERT_GT(w, 0);
      done += static_cast<std::size_t>(w);
    }
  };
  auto with_prefix = [](const std::string& frame) {
    std::string out;
    std::uint32_t n = static_cast<std::uint32_t>(frame.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
    }
    return out + frame;
  };
  send_all(with_prefix(EncodeHello("acme")));
  // Read the hello-ok (4-byte size, then the frame) so the apply that
  // follows is unambiguously mid-stream.
  std::string reply_bytes(4, '\0');
  std::size_t got = 0;
  while (got < 4) {
    ssize_t r = ::recv(fd, reply_bytes.data() + got, 4 - got, 0);
    ASSERT_GT(r, 0);
    got += static_cast<std::size_t>(r);
  }
  std::uint32_t reply_len = 0;
  for (int i = 0; i < 4; ++i) {
    reply_len |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(reply_bytes[i]))
                 << (8 * i);
  }
  std::string reply(reply_len, '\0');
  got = 0;
  while (got < reply_len) {
    ssize_t r = ::recv(fd, reply.data() + got, reply_len - got, 0);
    ASSERT_GT(r, 0);
    got += static_cast<std::size_t>(r);
  }
  EXPECT_EQ(Unwrap(ParseMessage(reply)).type, MessageType::kHelloOk);

  // Send only a prefix of an apply frame, then die.
  std::string apply = with_prefix(EncodeApplyBatch(EmpBatch(1, 1)));
  send_all(apply.substr(0, apply.size() / 2));
  ::close(fd);

  // The healthy session keeps working and the torn apply never landed.
  RticClient::ApplyResult applied = Unwrap(healthy->Apply(EmpBatch(1, 60)));
  EXPECT_EQ(applied.timestamp, 2);
  StatsReply stats = Unwrap(healthy->GetStats());
  EXPECT_EQ(stats.transition_count, 2u);
  server->Stop();
}

TEST(ServerSessionTest, TenantsAreIsolated) {
  auto server = Unwrap(RticServer::Start(ServerOptions{}));
  auto acme = Unwrap(RticClient::Connect(server->address(), "acme"));
  auto globex = Unwrap(RticClient::Connect(server->address(), "globex"));
  RTIC_ASSERT_OK(SetUpPayroll(acme.get()));

  // globex has no Emp table and no history of its own.
  EXPECT_FALSE(globex->Apply(EmpBatch(1, 50)).ok());
  RTIC_ASSERT_OK(globex->CreateTable("Emp", IntSchema({"e", "s"})));
  (void)Unwrap(acme->Apply(EmpBatch(1, 50)));
  (void)Unwrap(acme->Apply(EmpBatch(1, 40)));  // acme violation

  StatsReply acme_stats = Unwrap(acme->GetStats());
  StatsReply globex_stats = Unwrap(globex->GetStats());
  EXPECT_EQ(acme_stats.transition_count, 2u);
  EXPECT_EQ(acme_stats.total_violations, 1u);
  EXPECT_EQ(globex_stats.transition_count, 0u);
  EXPECT_EQ(globex_stats.total_violations, 0u);
  EXPECT_TRUE(globex_stats.constraints.empty());

  // Bad tenant names are refused at hello.
  EXPECT_FALSE(RticClient::Connect(server->address(), "../etc").ok());
  EXPECT_FALSE(RticClient::Connect(server->address(), "").ok());
  server->Stop();
}

TEST(ServerSessionTest, StopWithLiveSessionsShutsDownCleanly) {
  auto server = Unwrap(RticServer::Start(ServerOptions{}));
  auto client = Unwrap(RticClient::Connect(server->address(), "acme"));
  RTIC_ASSERT_OK(SetUpPayroll(client.get()));
  (void)Unwrap(client->Apply(EmpBatch(1, 50)));

  server->Stop();  // client still connected and idle

  // The torn-down session surfaces as an error, not a hang.
  EXPECT_FALSE(client->Apply(EmpBatch(1, 60)).ok());
  // New connections are refused (connection refused or immediate close).
  auto late = RticClient::Connect(server->address(), "acme");
  EXPECT_FALSE(late.ok());
}

// -- multi-client determinism -----------------------------------------------

// N clients interleave batches on one tenant with server-assigned
// timestamps. Collecting every (assigned timestamp, batch, rendered
// verdict) and replaying the batches serially through the library in
// timestamp order must reproduce each verdict byte for byte.
TEST(ServerConcurrencyTest, ConcurrentClientsMatchSerialLibraryByteForByte) {
  constexpr int kClients = 6;
  constexpr int kBatchesPerClient = 8;

  auto server = Unwrap(RticServer::Start(ServerOptions{}));
  {
    auto setup = Unwrap(RticClient::Connect(server->address(), "acme"));
    RTIC_ASSERT_OK(SetUpPayroll(setup.get()));
  }

  struct Applied {
    Timestamp timestamp;
    UpdateBatch batch;
    std::string rendered;
  };
  std::vector<std::vector<Applied>> per_client(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, &server, &per_client] {
      auto client = Unwrap(RticClient::Connect(server->address(), "acme"));
      for (int j = 0; j < kBatchesPerClient; ++j) {
        // Salaries drift down so pay-cut violations actually occur.
        UpdateBatch batch = EmpBatch(c, 100 - j * 3);
        RticClient::ApplyResult applied = Unwrap(client->Apply(batch));
        ASSERT_FALSE(applied.overloaded);  // queue is deeper than 6 clients
        batch.set_timestamp(applied.timestamp);
        per_client[c].push_back(
            Applied{applied.timestamp, batch, Render(applied.violations)});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server->Stop();

  // Assigned timestamps must be exactly 1..N*M, each used once.
  std::vector<Applied> all;
  for (auto& v : per_client) {
    for (Applied& a : v) all.push_back(std::move(a));
  }
  std::sort(all.begin(), all.end(),
            [](const Applied& x, const Applied& y) {
              return x.timestamp < y.timestamp;
            });
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kClients * kBatchesPerClient));
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].timestamp, static_cast<Timestamp>(i + 1));
  }

  // Serial replay through the library.
  ConstraintMonitor serial;
  RTIC_ASSERT_OK(serial.CreateTable("Emp", IntSchema({"e", "s"})));
  RTIC_ASSERT_OK(serial.RegisterConstraint("no_pay_cut", kNoPayCut));
  for (const Applied& a : all) {
    std::vector<Violation> violations = Unwrap(serial.ApplyUpdate(a.batch));
    EXPECT_EQ(Render(violations), a.rendered)
        << "divergence at timestamp " << a.timestamp;
  }
}

// -- admission control ------------------------------------------------------

// A file system whose Sync() blocks while the gate is closed. Closing the
// gate freezes the tenant worker inside its current durable apply, so the
// test controls exactly when the queue backs up and when it drains.
class GateFs final : public wal::Fs {
 public:
  explicit GateFs(wal::Fs* base) : base_(base) {}

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  int waiters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return waiters_;
  }

  Result<std::unique_ptr<wal::WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    auto file = base_->NewWritableFile(path, truncate);
    if (!file.ok()) return file.status();
    return std::unique_ptr<wal::WritableFile>(
        new GateFile(std::move(file).value(), this));
  }
  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  Status Remove(const std::string& path) override {
    return base_->Remove(path);
  }
  Status SyncDir(const std::string& dir) override {
    return base_->SyncDir(dir);
  }
  Status Truncate(const std::string& path, std::uint64_t size) override {
    return base_->Truncate(path, size);
  }
  Result<bool> FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }

 private:
  class GateFile final : public wal::WritableFile {
   public:
    GateFile(std::unique_ptr<wal::WritableFile> base, GateFs* fs)
        : base_(std::move(base)), fs_(fs) {}
    Status Append(std::string_view data) override {
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      fs_->WaitThroughGate();
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    std::unique_ptr<wal::WritableFile> base_;
    GateFs* fs_;
  };

  void WaitThroughGate() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiters_;
    cv_.wait(lock, [this] { return open_; });
    --waiters_;
  }

  wal::Fs* base_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = true;    // guarded by mu_
  int waiters_ = 0;     // guarded by mu_
};

// Deterministic overload: hold the worker mid-apply behind the gate, fill
// the tiny queue, and every further batch is refused with OVERLOADED while
// every accepted batch's verdict is eventually delivered.
TEST(ServerAdmissionTest, OverloadIsDeterministicAndAcceptedWorkDrains) {
  GateFs gate(wal::DefaultFs());
  ServerOptions options;
  options.queue_capacity = 2;
  options.monitor_options.wal_dir = MakeTempDir();
  options.monitor_options.wal_fs = &gate;
  options.monitor_options.sync_policy = wal::SyncPolicy::kAlways;
  options.monitor_options.checkpoint_interval = 0;  // only appends sync
  auto server = Unwrap(RticServer::Start(options));

  // Setup (gate open): registrations plus one durable apply, which also
  // runs the tenant's lazy Recover().
  auto setup = Unwrap(RticClient::Connect(server->address(), "acme"));
  RTIC_ASSERT_OK(SetUpPayroll(setup.get()));
  (void)Unwrap(setup->Apply(EmpBatch(0, 100)));

  // Eight raw sessions so responses can be read independently of sends.
  constexpr int kConns = 8;
  std::vector<std::unique_ptr<Transport>> conns;
  std::string bytes;
  for (int i = 0; i < kConns; ++i) {
    auto t = Unwrap(TcpConnect(server->address()));
    RTIC_ASSERT_OK(t->Send(EncodeHello("acme")));
    ASSERT_TRUE(Unwrap(t->Recv(&bytes)));
    ASSERT_EQ(Unwrap(ParseMessage(bytes)).type, MessageType::kHelloOk);
    conns.push_back(std::move(t));
  }

  // Freeze the worker: close the gate, send one apply, and wait until the
  // worker is provably blocked inside that apply's Sync.
  gate.CloseGate();
  RTIC_ASSERT_OK(conns[0]->Send(EncodeApplyBatch(EmpBatch(1, 101))));
  while (gate.waiters() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The worker holds batch #0; capacity is 2, so of the seven batches
  // below exactly two are admitted and exactly five are refused — no
  // timing involved, only the queue bound.
  for (int i = 1; i < kConns; ++i) {
    RTIC_ASSERT_OK(conns[i]->Send(EncodeApplyBatch(EmpBatch(1, 101 + i))));
  }
  int overloaded = 0;
  std::vector<bool> refused(kConns, false);
  while (overloaded < kConns - 3) {
    for (int i = 1; i < kConns; ++i) {
      if (refused[i]) continue;
      Result<bool> got = conns[i]->TryRecv(&bytes);
      if (got.ok() && got.value()) {
        Message reply = Unwrap(ParseMessage(bytes));
        ASSERT_EQ(reply.type, MessageType::kOverloaded)
            << "conn " << i << " got type "
            << static_cast<int>(reply.type) << " while the gate was closed";
        EXPECT_EQ(reply.arg, 2u);  // the queue capacity, for backoff hints
        refused[i] = true;
        ++overloaded;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(overloaded, 5);
  EXPECT_EQ(gate.waiters(), 1);  // worker still inside batch #0's Sync

  // Open the gate: the worker finishes batch #0 and drains the two
  // admitted batches. Every accepted batch's verdict arrives.
  gate.OpenGate();
  int verdicts = 0;
  for (int i = 0; i < kConns; ++i) {
    if (i > 0 && refused[i]) continue;
    ASSERT_TRUE(Unwrap(conns[i]->Recv(&bytes))) << "conn " << i;
    Message reply = Unwrap(ParseMessage(bytes));
    EXPECT_EQ(reply.type, MessageType::kVerdict) << "conn " << i;
    ++verdicts;
  }
  EXPECT_EQ(verdicts, 3);

  // Setup apply + the three admitted applies, nothing more, nothing lost.
  StatsReply stats = Unwrap(setup->GetStats());
  EXPECT_EQ(stats.transition_count, 4u);
  for (auto& conn : conns) conn->Close();
  server->Stop();
}

}  // namespace
}  // namespace rtic
