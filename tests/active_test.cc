// Tests for the active-DBMS substrate (ECA rules, rule engine) and the
// trigger-program realization of constraint checking.

#include <gtest/gtest.h>

#include "engines/active/compiler.h"
#include "engines/active/rule_engine.h"
#include "tests/engine_test_util.h"

namespace rtic {
namespace {

using testing::I;
using testing::IntSchema;
using testing::T;
using testing::Unwrap;

// ---- Rule matching and guards ------------------------------------------------

TEST(RuleTest, MatchesWatchedTables) {
  active::Rule rule("r", 0);
  rule.OnTables({"A", "B"});
  EXPECT_TRUE(rule.Matches({"B"}));
  EXPECT_TRUE(rule.Matches({"C", "A"}));
  EXPECT_FALSE(rule.Matches({"C"}));
  EXPECT_FALSE(rule.Matches({}));
}

TEST(RuleTest, NoWatchListMatchesEverything) {
  active::Rule rule("r", 0);
  EXPECT_TRUE(rule.Matches({}));
  EXPECT_TRUE(rule.Matches({"X"}));
}

TEST(RuleTest, DefaultConditionPasses) {
  active::Rule rule("r", 0);
  active::RuleContext ctx;
  EXPECT_TRUE(Unwrap(rule.CheckCondition(ctx)));
  RTIC_EXPECT_OK(rule.RunAction(ctx));  // no action: no-op
}

// ---- RuleEngine ---------------------------------------------------------------

TEST(RuleEngineTest, FiresInPriorityOrder) {
  active::RuleEngine engine;
  std::vector<std::string> fired;
  for (auto [name, prio] : {std::pair<const char*, int>{"late", 5},
                            {"early", 1},
                            {"middle", 3}}) {
    active::Rule rule(name, prio);
    std::string n = name;
    rule.Do([&fired, n](const active::RuleContext&) {
      fired.push_back(n);
      return Status::OK();
    });
    RTIC_ASSERT_OK(engine.AddRule(std::move(rule)));
  }
  Database state;
  (void)Unwrap(engine.ProcessTransition(state, 1));
  EXPECT_EQ(fired, (std::vector<std::string>{"early", "middle", "late"}));
}

TEST(RuleEngineTest, EventFilteringByTouchedTables) {
  active::RuleEngine engine;
  int fired_a = 0, fired_any = 0;
  active::Rule on_a("on_a", 0);
  on_a.OnTables({"A"}).Do([&](const active::RuleContext&) {
    ++fired_a;
    return Status::OK();
  });
  active::Rule always("always", 1);
  always.Do([&](const active::RuleContext&) {
    ++fired_any;
    return Status::OK();
  });
  RTIC_ASSERT_OK(engine.AddRule(std::move(on_a)));
  RTIC_ASSERT_OK(engine.AddRule(std::move(always)));

  Database state;
  (void)Unwrap(engine.ProcessTransition(state, 1, {"B"}));
  (void)Unwrap(engine.ProcessTransition(state, 2, {"A"}));
  (void)Unwrap(engine.ProcessTransition(state, 3, {}));
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_any, 3);
}

TEST(RuleEngineTest, ConditionGuardsAction) {
  active::RuleEngine engine;
  int fired = 0;
  active::Rule rule("guarded", 0);
  rule.When([](const active::RuleContext& ctx) -> Result<bool> {
        return ctx.now >= 10;
      })
      .Do([&](const active::RuleContext&) {
        ++fired;
        return Status::OK();
      });
  RTIC_ASSERT_OK(engine.AddRule(std::move(rule)));
  Database state;
  (void)Unwrap(engine.ProcessTransition(state, 5));
  (void)Unwrap(engine.ProcessTransition(state, 10));
  EXPECT_EQ(fired, 1);
}

TEST(RuleEngineTest, ContextCarriesTimestamps) {
  active::RuleEngine engine;
  std::vector<std::pair<Timestamp, Timestamp>> seen;
  active::Rule rule("observer", 0);
  rule.Do([&](const active::RuleContext& ctx) {
    seen.emplace_back(ctx.now, ctx.has_prev ? ctx.prev : -1);
    return Status::OK();
  });
  RTIC_ASSERT_OK(engine.AddRule(std::move(rule)));
  Database state;
  (void)Unwrap(engine.ProcessTransition(state, 3));
  (void)Unwrap(engine.ProcessTransition(state, 7));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<Timestamp, Timestamp>{3, -1}));
  EXPECT_EQ(seen[1], (std::pair<Timestamp, Timestamp>{7, 3}));
}

TEST(RuleEngineTest, ActionsMutateTheStore) {
  active::RuleEngine engine;
  RTIC_ASSERT_OK(
      engine.mutable_store()->CreateTable("log", IntSchema({"t"})));
  active::Rule rule("logger", 0);
  rule.Do([](const active::RuleContext& ctx) {
    return ctx.store->GetMutableTable("log")
        .value()
        ->Insert(T(I(ctx.now)))
        .status();
  });
  RTIC_ASSERT_OK(engine.AddRule(std::move(rule)));
  Database state;
  (void)Unwrap(engine.ProcessTransition(state, 1));
  (void)Unwrap(engine.ProcessTransition(state, 2));
  EXPECT_EQ(Unwrap(engine.store().GetTable("log"))->size(), 2u);
}

TEST(RuleEngineTest, RejectsDuplicateRules) {
  active::RuleEngine engine;
  RTIC_ASSERT_OK(engine.AddRule(active::Rule("r", 0)));
  EXPECT_EQ(engine.AddRule(active::Rule("r", 0)).code(),
            StatusCode::kAlreadyExists);
  RTIC_ASSERT_OK(engine.AddRule(active::Rule("r", 1)));  // other priority ok
}

TEST(RuleEngineTest, RejectsNonMonotonicTime) {
  active::RuleEngine engine;
  Database state;
  (void)Unwrap(engine.ProcessTransition(state, 5));
  EXPECT_FALSE(engine.ProcessTransition(state, 5).ok());
  EXPECT_FALSE(engine.ProcessTransition(state, 4).ok());
}

TEST(RuleEngineTest, ActionErrorAborts) {
  active::RuleEngine engine;
  int later_fired = 0;
  active::Rule bad("bad", 0);
  bad.Do([](const active::RuleContext&) {
    return Status::Internal("kaboom");
  });
  active::Rule after("after", 1);
  after.Do([&](const active::RuleContext&) {
    ++later_fired;
    return Status::OK();
  });
  RTIC_ASSERT_OK(engine.AddRule(std::move(bad)));
  RTIC_ASSERT_OK(engine.AddRule(std::move(after)));
  Database state;
  EXPECT_FALSE(engine.ProcessTransition(state, 1).ok());
  EXPECT_EQ(later_fired, 0);
}

// ---- ActiveEngine (constraint -> trigger program) --------------------------------

TEST(ActiveEngineTest, GeneratesOneRulePerTemporalNodePlusCheck) {
  tl::FormulaPtr f = Unwrap(tl::ParseFormula(
      "forall a: P(a) implies once[0, 3] previous Q(a)"));
  tl::PredicateCatalog catalog{{"P", IntSchema({"a"})},
                               {"Q", IntSchema({"a"})}};
  auto engine = Unwrap(ActiveEngine::Create(*f, catalog));
  // previous + once maintenance rules, then the check rule.
  ASSERT_EQ(engine->rule_engine().rules().size(), 3u);
  EXPECT_EQ(engine->rule_engine().rules().back().name(), "check_constraint");
}

TEST(ActiveEngineTest, StoreTablesRealizeTheEncoding) {
  tl::FormulaPtr f =
      Unwrap(tl::ParseFormula("forall a: P(a) implies once[0, 3] Q(a)"));
  tl::PredicateCatalog catalog{{"P", IntSchema({"a"})},
                               {"Q", IntSchema({"a"})}};
  auto engine = Unwrap(ActiveEngine::Create(*f, catalog));
  const Database& store = engine->rule_engine().store();
  EXPECT_TRUE(store.HasTable("cur_0"));
  EXPECT_TRUE(store.HasTable("aux_0"));
  EXPECT_TRUE(store.HasTable("__violations"));
}

TEST(ActiveEngineTest, ViolationLogAccumulates) {
  std::map<std::string, Schema> schemas{{"P", IntSchema({"a"})},
                                        {"Q", IntSchema({"a"})}};
  tl::PredicateCatalog catalog{{"P", IntSchema({"a"})},
                               {"Q", IntSchema({"a"})}};
  tl::FormulaPtr f =
      Unwrap(tl::ParseFormula("forall a: P(a) implies once[0, 2] Q(a)"));
  auto engine = Unwrap(ActiveEngine::Create(*f, catalog));

  // Q(1)@1; P(1)@2 ok; P(1)@5 violation (Q too old); P(1)@6 violation.
  for (auto [t, p, q] : {std::tuple<Timestamp, bool, bool>{1, false, true},
                         {2, true, false},
                         {5, true, false},
                         {6, true, false}}) {
    testing::ScenarioStep step{t, {}};
    if (p) step.tables["P"] = {T(I(1))};
    if (q) step.tables["Q"] = {T(I(1))};
    Database state = Unwrap(testing::BuildState(schemas, step));
    (void)Unwrap(engine->OnTransition(state, t));
  }
  EXPECT_EQ(engine->ViolationLog(), (std::vector<Timestamp>{5, 6}));
}

TEST(ActiveEngineTest, ReservedVariableNameRejected) {
  tl::PredicateCatalog catalog{{"P", IntSchema({"a"})}};
  tl::FormulaPtr f = Unwrap(tl::ParseFormula("forall __ts__: P(__ts__) "
                                             "implies once P(__ts__)"));
  EXPECT_FALSE(ActiveEngine::Create(*f, catalog).ok());
}

}  // namespace
}  // namespace rtic
