// Shard classifier: verdict table over the paper-style constraint suites
// (alarm, payroll, library — the nine constraints every workload generator
// emits) plus the adversarial shapes that must NOT classify partition-local:
// active-domain falsification, atoms keyed by different variables,
// constants at key positions, exists-rooted formulas, re-bound key
// variables, and domain-padded comparisons. The classifier is the safety
// gate of the whole sharded monitor — a wrong kPartitionLocal verdict is a
// silent correctness bug, so the cross-shard cases here are as load-bearing
// as the local ones.

#include "shard/classifier.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "shard/partitioner.h"
#include "tests/test_util.h"
#include "tl/analyzer.h"
#include "tl/parser.h"
#include "workload/generators.h"

namespace rtic {
namespace shard {
namespace {

using rtic::testing::IntSchema;
using rtic::testing::Unwrap;

// Classifies `text` against `catalog` with every table keyed on column 0.
Classification ClassifyText(const std::string& text,
                            const tl::PredicateCatalog& catalog) {
  auto formula = Unwrap(tl::ParseFormula(text));
  auto analysis = Unwrap(tl::Analyze(*formula, catalog));
  Partitioner partitioner(4);
  for (const auto& [table, schema] : catalog) {
    RTIC_EXPECT_OK(partitioner.AddTable(table, schema, 0));
  }
  return Unwrap(Classify(*formula, analysis, partitioner));
}

tl::PredicateCatalog AlarmCatalog() {
  return {{"Raise", IntSchema({"alarm"})},
          {"Ack", IntSchema({"alarm"})},
          {"Active", IntSchema({"alarm"})}};
}

tl::PredicateCatalog PayrollCatalog() {
  return {{"Emp", IntSchema({"id", "salary"})},
          {"Raise", IntSchema({"id"})}};
}

tl::PredicateCatalog LibraryCatalog() {
  return {{"Member", IntSchema({"patron"})},
          {"Loan", IntSchema({"patron", "book"})},
          {"Out", IntSchema({"patron", "book"})}};
}

// The full verdict table: every constraint the three workload generators
// emit (the paper-style E1-E9 suites) is partition-local under column-0
// keys, keyed by the entity variable.
TEST(ShardClassifierTest, PaperSuiteVerdictTable) {
  struct Row {
    const char* name;
    std::string text;
    tl::PredicateCatalog catalog;
    const char* key_var;
  };
  workload::AlarmParams alarm;
  workload::PayrollParams payroll;
  workload::LibraryParams library;
  const auto alarm_w = workload::MakeAlarmWorkload(alarm);
  const auto payroll_w = workload::MakePayrollWorkload(payroll);
  const auto library_w = workload::MakeLibraryWorkload(library);

  std::vector<Row> rows;
  for (const auto& [name, text] : alarm_w.constraints) {
    rows.push_back({name.c_str(), text, AlarmCatalog(), "a"});
  }
  for (const auto& [name, text] : payroll_w.constraints) {
    rows.push_back({name.c_str(), text, PayrollCatalog(), "e"});
  }
  for (const auto& [name, text] : library_w.constraints) {
    rows.push_back({name.c_str(), text, LibraryCatalog(), "p"});
  }
  ASSERT_EQ(rows.size(), 9u);

  std::size_t local = 0;
  for (const Row& row : rows) {
    SCOPED_TRACE(std::string(row.name) + ": " + row.text);
    const Classification cls = ClassifyText(row.text, row.catalog);
    EXPECT_EQ(cls.cls, ShardClass::kPartitionLocal) << cls.reason;
    EXPECT_EQ(cls.key_var, row.key_var);
    EXPECT_FALSE(cls.reason.empty());
    if (cls.local()) ++local;
  }
  // The headline number of E16: the whole paper suite shards perfectly.
  EXPECT_EQ(local, rows.size()) << "partition-local fraction " << local << "/"
                                << rows.size();
}

TEST(ShardClassifierTest, NoAtomsIsLocal) {
  const Classification cls = ClassifyText("1 <= 2", AlarmCatalog());
  EXPECT_EQ(cls.cls, ShardClass::kPartitionLocal);
  EXPECT_TRUE(cls.key_var.empty());
}

// `forall a: Active(a)` falsifies by complementing against the active
// domain — a shard only sees its own slice of the domain, so per-shard
// falsification would silently drop counterexamples. The analyzer emits NO
// warning for this shape (its range-restriction pass only covers
// exists-bound variables); the classifier's own domain-safety mirror must
// catch it.
TEST(ShardClassifierTest, BareAtomFalsificationIsCrossShard) {
  const Classification cls =
      ClassifyText("forall a: Active(a)", AlarmCatalog());
  EXPECT_EQ(cls.cls, ShardClass::kCrossShard);
  EXPECT_NE(cls.reason.find("active-domain"), std::string::npos)
      << cls.reason;
}

// The consequent's variable is not bound by the antecedent, so evaluation
// domain-pads the missing column — again warning-free, again unsound
// per shard.
TEST(ShardClassifierTest, DomainPaddedConsequentIsCrossShard) {
  const Classification cls = ClassifyText(
      "forall e, s, y: Emp(e, s) implies y >= 0", PayrollCatalog());
  EXPECT_EQ(cls.cls, ShardClass::kCrossShard);
  EXPECT_NE(cls.reason.find("active-domain"), std::string::npos)
      << cls.reason;
}

TEST(ShardClassifierTest, ExistsRootedIsCrossShard) {
  const Classification cls =
      ClassifyText("exists a: Raise(a) and Ack(a)", AlarmCatalog());
  EXPECT_EQ(cls.cls, ShardClass::kCrossShard);
  EXPECT_NE(cls.reason.find("forall"), std::string::npos) << cls.reason;
}

// Loan keyed by p, Member keyed by m: tuples for one violation live on two
// different shards.
TEST(ShardClassifierTest, DifferingKeyVariablesIsCrossShard) {
  const Classification cls = ClassifyText(
      "forall p, b, m: Loan(p, b) and Member(m) implies p = m",
      LibraryCatalog());
  EXPECT_EQ(cls.cls, ShardClass::kCrossShard);
}

// A constant at the key position pins that atom to one shard while the
// forall variable ranges over all of them.
TEST(ShardClassifierTest, ConstantAtKeyPositionIsCrossShard) {
  const Classification cls = ClassifyText(
      "forall b: Loan(7, b) implies Member(7)", LibraryCatalog());
  EXPECT_EQ(cls.cls, ShardClass::kCrossShard);
}

// The key variable re-quantified inside the body no longer names one
// partition across all atoms.
TEST(ShardClassifierTest, ReboundKeyVariableIsCrossShard) {
  const Classification cls = ClassifyText(
      "forall a: Ack(a) implies (exists a: Raise(a))", AlarmCatalog());
  EXPECT_EQ(cls.cls, ShardClass::kCrossShard);
}

// Different tables keyed on different columns: Loan(p, b) keyed by column 1
// (the book) cannot co-locate with Member(p) keyed by column 0.
TEST(ShardClassifierTest, KeyColumnMismatchIsCrossShard) {
  auto formula =
      Unwrap(tl::ParseFormula("forall p, b: Loan(p, b) implies Member(p)"));
  auto analysis = Unwrap(tl::Analyze(*formula, LibraryCatalog()));
  Partitioner partitioner(4);
  RTIC_EXPECT_OK(
      partitioner.AddTable("Member", IntSchema({"patron"}), 0));
  RTIC_EXPECT_OK(
      partitioner.AddTable("Loan", IntSchema({"patron", "book"}), 1));
  RTIC_EXPECT_OK(partitioner.AddTable("Out", IntSchema({"patron", "book"}), 0));
  const Classification cls =
      Unwrap(Classify(*formula, analysis, partitioner));
  EXPECT_EQ(cls.cls, ShardClass::kCrossShard);
}

// ... but keying Loan AND Out by the book while Member stays patron-keyed
// still fails; keying everything consistently by column 0 succeeds (the
// verdict table above). This pins that the classifier consults the
// partitioner rather than assuming column 0.
TEST(ShardClassifierTest, RespectsDeclaredKeyColumns) {
  auto formula = Unwrap(tl::ParseFormula(
      "forall p, b: Out(p, b) implies Out(p, b) since[0, 30] Loan(p, b)"));
  auto analysis = Unwrap(tl::Analyze(*formula, LibraryCatalog()));
  Partitioner partitioner(4);
  RTIC_EXPECT_OK(partitioner.AddTable("Member", IntSchema({"patron"}), 0));
  RTIC_EXPECT_OK(
      partitioner.AddTable("Loan", IntSchema({"patron", "book"}), 1));
  RTIC_EXPECT_OK(
      partitioner.AddTable("Out", IntSchema({"patron", "book"}), 1));
  const Classification cls =
      Unwrap(Classify(*formula, analysis, partitioner));
  // Keyed by the book on both atoms: still one key variable, still local.
  EXPECT_EQ(cls.cls, ShardClass::kPartitionLocal);
  EXPECT_EQ(cls.key_var, "b");
}

TEST(ShardClassifierTest, UnknownTableFails) {
  auto formula = Unwrap(tl::ParseFormula("forall a: Active(a) implies Active(a)"));
  auto analysis = Unwrap(tl::Analyze(*formula, AlarmCatalog()));
  Partitioner partitioner(2);  // no tables declared
  auto result = Classify(*formula, analysis, partitioner);
  EXPECT_FALSE(result.ok());
}

TEST(ShardClassifierTest, CollectAtomsSyntaxOrder) {
  auto formula = Unwrap(tl::ParseFormula(
      "forall p, b: Loan(p, b) implies Member(p)"));
  auto atoms = CollectAtoms(*formula);
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0]->predicate(), "Loan");
  EXPECT_EQ(atoms[1]->predicate(), "Member");
}

TEST(StableValueHashTest, TypeTagged) {
  // Equal payload bits across types must not collide structurally.
  EXPECT_NE(StableValueHash(Value::Int64(1)),
            StableValueHash(Value::Double(1.0)));
  EXPECT_NE(StableValueHash(Value::Int64(49)),
            StableValueHash(Value::String("1")));
  // Deterministic across calls (and, by construction, across processes).
  EXPECT_EQ(StableValueHash(Value::String("alarm-17")),
            StableValueHash(Value::String("alarm-17")));
}

TEST(PartitionerTest, RoutesByDeclaredKeyColumn) {
  Partitioner partitioner(4);
  RTIC_EXPECT_OK(
      partitioner.AddTable("Loan", IntSchema({"patron", "book"}), 0));
  const auto t = rtic::testing::T(rtic::testing::I(5), rtic::testing::I(9));
  const std::size_t shard = Unwrap(partitioner.ShardOf("Loan", t));
  EXPECT_EQ(shard, partitioner.ShardOfKey(Value::Int64(5)));
  EXPECT_LT(shard, 4u);
  // Redeclaration is refused: the mapping backs durable directories.
  EXPECT_FALSE(
      partitioner.AddTable("Loan", IntSchema({"patron", "book"}), 1).ok());
  // Arity mismatch is caught.
  EXPECT_FALSE(
      partitioner.ShardOf("Loan", rtic::testing::T(rtic::testing::I(5))).ok());
  EXPECT_FALSE(partitioner.ShardOf("Nope", t).ok());
}

}  // namespace
}  // namespace shard
}  // namespace rtic
