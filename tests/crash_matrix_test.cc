// The crash matrix: for EVERY mutating file-system operation in a durable
// payroll run, kill the "process" at exactly that operation (cycling through
// fail/short/bit-flip faults), recover from disk with a healthy file system,
// finish the workload, and require
//
//   1. the recovered transition count is i or i+1, where i is the number of
//      batches acked before the crash (the one in flight may or may not
//      have become durable — never anything else),
//   2. every violation reported after recovery matches the uninterrupted
//      reference run exactly, and
//   3. the final checkpoint payload is byte-identical to the reference's.
//
// A fault can also land inside a periodic checkpoint write, which the
// monitor logs and retries instead of failing the batch — then the run
// completes without a crash and every batch must be acked.
//
// The matrix runs twice: once on the direct kAlways path and once with
// group commit enabled, so the shared-fsync path faces the same exhaustive
// fault sweep. This is the subsystem's end-to-end correctness argument: no
// fault point loses an acked batch, resurrects an unacked one, or perturbs
// checking.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "tests/test_util.h"
#include "wal/file.h"
#include "workload/generators.h"

namespace rtic {
namespace {

using testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_crash_matrix_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

struct MatrixParams {
  std::size_t num_employees = 10;
  std::size_t length = 200;
  std::uint64_t seed = 7;
  std::size_t checkpoint_interval = 25;
  std::uint64_t group_commit_window_micros = 0;
  std::size_t checkpoint_delta_chain = 8;  // the default: deltas active
  bool checkpoint_compression = false;
};

workload::Workload MakeWorkload(const MatrixParams& p) {
  workload::PayrollParams params;
  params.num_employees = p.num_employees;
  params.length = p.length;
  params.seed = p.seed;
  return workload::MakePayrollWorkload(params);
}

std::unique_ptr<ConstraintMonitor> MakeMonitor(const workload::Workload& wl,
                                               const MatrixParams& p,
                                               const std::string& dir,
                                               wal::Fs* fs) {
  MonitorOptions options;
  options.wal_dir = dir;
  options.sync_policy = wal::SyncPolicy::kAlways;
  options.checkpoint_interval = p.checkpoint_interval;
  options.group_commit_window_micros = p.group_commit_window_micros;
  options.checkpoint_delta_chain = p.checkpoint_delta_chain;
  options.checkpoint_compression = p.checkpoint_compression;
  options.wal_fs = fs;
  auto monitor = std::make_unique<ConstraintMonitor>(std::move(options));
  for (const auto& [name, schema] : wl.schema) {
    RTIC_EXPECT_OK(monitor->CreateTable(name, schema));
  }
  for (const auto& [name, text] : wl.constraints) {
    RTIC_EXPECT_OK(monitor->RegisterConstraint(name, text));
  }
  return monitor;
}

std::string Render(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) out += v.ToString() + "\n";
  return out;
}

// Sanitizer builds can subsample the matrix: RTIC_MATRIX_STRIDE=n tests
// every n-th trigger (with a rotating offset so repeated runs still cover
// different operations). Unset or 1 means exhaustive.
std::uint64_t MatrixStride() {
  const char* env = std::getenv("RTIC_MATRIX_STRIDE");
  if (env == nullptr) return 1;
  const long value = std::atol(env);
  return value > 1 ? static_cast<std::uint64_t>(value) : 1;
}

void RunCrashMatrix(const MatrixParams& params) {
  const workload::Workload wl = MakeWorkload(params);

  // Reference: an uninterrupted durable run through a counting-only
  // fault-injecting fs, giving per-batch violations, the final state, and
  // the total number of mutating fs operations to attack.
  std::vector<std::string> reference_violations;
  std::string reference_state;
  std::uint64_t total_ops = 0;
  {
    const std::string dir = MakeTempDir();
    wal::FaultInjectingFs fs(wal::DefaultFs(), /*trigger_op=*/0,
                             wal::FaultKind::kFailWrite);
    auto monitor = MakeMonitor(wl, params, dir + "/wal", &fs);
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (const UpdateBatch& batch : wl.batches) {
      reference_violations.push_back(
          Render(Unwrap(monitor->ApplyUpdate(batch))));
    }
    reference_state = Unwrap(monitor->SaveState());
    total_ops = fs.ops();
    std::filesystem::remove_all(dir);
  }
  ASSERT_GT(total_ops, 2 * wl.batches.size())
      << "kAlways must append and sync every batch";

  const std::uint64_t stride = MatrixStride();
  for (std::uint64_t trigger = 1; trigger <= total_ops; trigger += stride) {
    const wal::FaultKind kind = static_cast<wal::FaultKind>(trigger % 3);
    const std::string root = MakeTempDir();
    const std::string dir = root + "/wal";
    SCOPED_TRACE("trigger=" + std::to_string(trigger) +
                 " kind=" + std::to_string(trigger % 3));

    // Run until the injected fault surfaces as an ApplyUpdate error. A
    // fault confined to the final batch's periodic checkpoint is logged
    // and swallowed (the batch itself is already durable), so the loop can
    // also complete cleanly — then every batch must have been acked.
    std::size_t acked = 0;
    {
      wal::FaultInjectingFs fs(wal::DefaultFs(), trigger, kind);
      auto monitor = MakeMonitor(wl, params, dir, &fs);
      RTIC_ASSERT_OK(monitor->Recover().status());
      bool crashed = false;
      for (const UpdateBatch& batch : wl.batches) {
        if (!monitor->ApplyUpdate(batch).ok()) {
          crashed = true;
          break;
        }
        ++acked;
      }
      if (!crashed) {
        ASSERT_EQ(acked, wl.batches.size())
            << "a run can only survive its fault if the fault hit a "
               "retryable checkpoint write after the last batch was acked";
      }
      // The monitor is abandoned here — buffered bytes die with it.
    }

    // Recover on a healthy file system and finish the workload.
    auto monitor = MakeMonitor(wl, params, dir, nullptr);
    wal::RecoveryStats stats = Unwrap(monitor->Recover());
    const std::size_t recovered = monitor->transition_count();
    ASSERT_TRUE(recovered == acked || recovered == acked + 1)
        << "acked " << acked << " but recovered " << recovered
        << " (checkpoint_seq " << stats.checkpoint_seq << ", last_seq "
        << stats.last_seq << ")";
    for (std::size_t j = recovered; j < wl.batches.size(); ++j) {
      std::string rendered = Render(Unwrap(monitor->ApplyUpdate(
          wl.batches[j])));
      ASSERT_EQ(rendered, reference_violations[j]) << "batch " << j;
    }
    ASSERT_EQ(Unwrap(monitor->SaveState()), reference_state);
    std::filesystem::remove_all(root);
  }
}

// The default configuration: delta checkpoints active (chain limit 8), so
// the sweep attacks every fault point of base writes, delta writes, chain
// garbage collection, and the directory fsyncs that make renames/unlinks
// durable.
TEST(CrashMatrixTest, EveryFaultPointRecoversExactly) {
  RunCrashMatrix(MatrixParams{});
}

// The same sweep with group commit armed AND compressed checkpoints. The
// matrix driver is serial, so every group has size one — what this buys is
// exhaustive fault coverage of the group-commit code path itself: the
// writer running kBatch underneath, the shared Sync() issued by the
// GroupCommitter, and the committer's poisoned-on-failure states all face
// every possible fault point, and recovery must still be
// verdict-for-verdict identical. Compression rides along so every fault
// point also crosses the compressed-frame encode/decode path (final-state
// comparisons use the uncompressed SaveState, so byte-identity still
// holds).
TEST(CrashMatrixTest, GroupCommitEveryFaultPointRecoversExactly) {
  MatrixParams params;
  params.num_employees = 8;
  params.length = 80;
  params.seed = 11;
  params.checkpoint_interval = 10;
  params.group_commit_window_micros = 100;
  params.checkpoint_compression = true;
  RunCrashMatrix(params);
}

// A short-chain sweep with compression on the direct path: chain limit 2
// forces frequent base/delta alternation, so base-forcing, chain GC, and
// fallback-to-base recovery face every fault point at high frequency.
TEST(CrashMatrixTest, ShortChainCompressedEveryFaultPointRecoversExactly) {
  MatrixParams params;
  params.num_employees = 8;
  params.length = 80;
  params.seed = 23;
  params.checkpoint_interval = 10;
  params.checkpoint_delta_chain = 2;
  params.checkpoint_compression = true;
  RunCrashMatrix(params);
}

}  // namespace
}  // namespace rtic
