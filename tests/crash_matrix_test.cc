// The crash matrix: for EVERY mutating file-system operation in a 200-batch
// durable payroll run, kill the "process" at exactly that operation (cycling
// through fail/short/bit-flip faults), recover from disk with a healthy file
// system, finish the workload, and require
//
//   1. the recovered transition count is i or i+1, where i is the number of
//      batches acked before the crash (the one in flight may or may not
//      have become durable — never anything else),
//   2. every violation reported after recovery matches the uninterrupted
//      reference run exactly, and
//   3. the final checkpoint payload is byte-identical to the reference's.
//
// This is the subsystem's end-to-end correctness argument: no fault point
// loses an acked batch, resurrects an unacked one, or perturbs checking.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "tests/test_util.h"
#include "wal/file.h"
#include "workload/generators.h"

namespace rtic {
namespace {

using testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_crash_matrix_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

workload::Workload MakeWorkload() {
  workload::PayrollParams params;
  params.num_employees = 10;
  params.length = 200;
  params.seed = 7;
  return workload::MakePayrollWorkload(params);
}

std::unique_ptr<ConstraintMonitor> MakeMonitor(const workload::Workload& wl,
                                               const std::string& dir,
                                               wal::Fs* fs) {
  MonitorOptions options;
  options.wal_dir = dir;
  options.sync_policy = wal::SyncPolicy::kAlways;
  options.checkpoint_interval = 25;
  options.wal_fs = fs;
  auto monitor = std::make_unique<ConstraintMonitor>(std::move(options));
  for (const auto& [name, schema] : wl.schema) {
    RTIC_EXPECT_OK(monitor->CreateTable(name, schema));
  }
  for (const auto& [name, text] : wl.constraints) {
    RTIC_EXPECT_OK(monitor->RegisterConstraint(name, text));
  }
  return monitor;
}

std::string Render(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) out += v.ToString() + "\n";
  return out;
}

TEST(CrashMatrixTest, EveryFaultPointRecoversExactly) {
  const workload::Workload wl = MakeWorkload();

  // Reference: an uninterrupted durable run through a counting-only
  // fault-injecting fs, giving per-batch violations, the final state, and
  // the total number of mutating fs operations to attack.
  std::vector<std::string> reference_violations;
  std::string reference_state;
  std::uint64_t total_ops = 0;
  {
    const std::string dir = MakeTempDir();
    wal::FaultInjectingFs fs(wal::DefaultFs(), /*trigger_op=*/0,
                             wal::FaultKind::kFailWrite);
    auto monitor = MakeMonitor(wl, dir + "/wal", &fs);
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (const UpdateBatch& batch : wl.batches) {
      reference_violations.push_back(
          Render(Unwrap(monitor->ApplyUpdate(batch))));
    }
    reference_state = Unwrap(monitor->SaveState());
    total_ops = fs.ops();
    std::filesystem::remove_all(dir);
  }
  ASSERT_GT(total_ops, 2 * wl.batches.size())
      << "kAlways must append and sync every batch";

  for (std::uint64_t trigger = 1; trigger <= total_ops; ++trigger) {
    const wal::FaultKind kind = static_cast<wal::FaultKind>(trigger % 3);
    const std::string root = MakeTempDir();
    const std::string dir = root + "/wal";
    SCOPED_TRACE("trigger=" + std::to_string(trigger) +
                 " kind=" + std::to_string(trigger % 3));

    // Run until the injected fault surfaces as an ApplyUpdate error.
    std::size_t acked = 0;
    {
      wal::FaultInjectingFs fs(wal::DefaultFs(), trigger, kind);
      auto monitor = MakeMonitor(wl, dir, &fs);
      RTIC_ASSERT_OK(monitor->Recover().status());
      bool crashed = false;
      for (const UpdateBatch& batch : wl.batches) {
        if (!monitor->ApplyUpdate(batch).ok()) {
          crashed = true;
          break;
        }
        ++acked;
      }
      ASSERT_TRUE(crashed) << "every mutating op belongs to some batch";
      // The monitor is abandoned here — buffered bytes die with it.
    }

    // Recover on a healthy file system and finish the workload.
    auto monitor = MakeMonitor(wl, dir, nullptr);
    wal::RecoveryStats stats = Unwrap(monitor->Recover());
    const std::size_t recovered = monitor->transition_count();
    ASSERT_TRUE(recovered == acked || recovered == acked + 1)
        << "acked " << acked << " but recovered " << recovered
        << " (checkpoint_seq " << stats.checkpoint_seq << ", last_seq "
        << stats.last_seq << ")";
    for (std::size_t j = recovered; j < wl.batches.size(); ++j) {
      std::string rendered = Render(Unwrap(monitor->ApplyUpdate(
          wl.batches[j])));
      ASSERT_EQ(rendered, reference_violations[j]) << "batch " << j;
    }
    ASSERT_EQ(Unwrap(monitor->SaveState()), reference_state);
    std::filesystem::remove_all(root);
  }
}

}  // namespace
}  // namespace rtic
