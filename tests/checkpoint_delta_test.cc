// Delta-checkpoint tests: incremental (base + delta chain) checkpoints and
// compressed checkpoint frames, from the engine level up through durable
// end-to-end restarts.
//
//   * a restart over a base+delta chain restores byte-identical state and
//     continues verdict-for-verdict like an uninterrupted run,
//   * the chain limit forces fresh bases; garbage collection never removes
//     a base (or the WAL back to it) while deltas still reference it, so a
//     lost or corrupt delta degrades to base + longer replay, never data
//     loss,
//   * pre-delta RTICMON2 checkpoint files still recover,
//   * compressed and uncompressed checkpoints interoperate freely and
//     recover byte-identically, and corrupt compressed frames are rejected,
//   * delta payload size scales with churn, not state size.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/compress.h"
#include "engines/incremental/engine.h"
#include "monitor/monitor.h"
#include "storage/codec.h"
#include "tests/test_util.h"
#include "tl/parser.h"
#include "wal/file.h"
#include "wal/wal_format.h"
#include "workload/generators.h"

namespace rtic {
namespace {

using testing::I;
using testing::T;
using testing::Unwrap;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rtic_ckpt_delta_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

struct Cfg {
  std::size_t interval = 4;
  std::size_t delta_chain = 8;
  bool compression = false;
};

MonitorOptions DurableOptions(const std::string& dir, const Cfg& cfg) {
  MonitorOptions options;
  options.wal_dir = dir;
  options.checkpoint_interval = cfg.interval;
  options.checkpoint_delta_chain = cfg.delta_chain;
  options.checkpoint_compression = cfg.compression;
  options.sync_policy = wal::SyncPolicy::kBatch;
  return options;
}

/// One table, one temporal constraint; identical across instances so
/// checkpoints compare byte-for-byte.
std::unique_ptr<ConstraintMonitor> MakeMonitor(MonitorOptions options) {
  auto monitor = std::make_unique<ConstraintMonitor>(std::move(options));
  RTIC_EXPECT_OK(monitor->CreateTable("Emp", testing::IntSchema({"id", "s"})));
  RTIC_EXPECT_OK(monitor->RegisterConstraint(
      "no_pay_cut",
      "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies s >= s0"));
  return monitor;
}

/// Deterministic churn batch i (timestamps 1, 2, ...) over 5 hot rows.
UpdateBatch MakeBatch(std::size_t i) {
  UpdateBatch batch(static_cast<Timestamp>(i + 1));
  const std::int64_t id = static_cast<std::int64_t>(i % 5);
  batch.Delete("Emp", T(I(id), I(1000 - static_cast<std::int64_t>(i) + 5)));
  batch.Insert("Emp", T(I(id), I(1000 - static_cast<std::int64_t>(i))));
  return batch;
}

struct DirCensus {
  std::vector<std::pair<std::uint64_t, std::string>> bases;
  std::vector<std::pair<std::uint64_t, std::string>> deltas;  // seq, name
  std::vector<std::uint64_t> segment_first_seqs;
};

DirCensus Census(const std::string& dir) {
  DirCensus out;
  for (const std::string& name : Unwrap(wal::DefaultFs()->ListDir(dir))) {
    std::uint64_t seq = 0, parent = 0;
    if (wal::ParseCheckpointFileName(name, &seq)) {
      out.bases.emplace_back(seq, name);
    } else if (wal::ParseDeltaCheckpointFileName(name, &seq, &parent)) {
      out.deltas.emplace_back(seq, name);
    } else if (wal::ParseSegmentFileName(name, &seq)) {
      out.segment_first_seqs.push_back(seq);
    }
  }
  return out;
}

// ---- file naming --------------------------------------------------------

TEST(DeltaFileNameTest, RoundTripsAndRejectsMalformedNames) {
  const std::string name = wal::DeltaCheckpointFileName(42, 17);
  std::uint64_t seq = 0, parent = 0;
  ASSERT_TRUE(wal::ParseDeltaCheckpointFileName(name, &seq, &parent));
  EXPECT_EQ(seq, 42u);
  EXPECT_EQ(parent, 17u);
  // A delta name must NOT parse as a base checkpoint: pre-delta builds
  // list the directory with the strict parser and must ignore delta files
  // rather than misread them.
  EXPECT_FALSE(wal::ParseCheckpointFileName(name, &seq));
  // Parent must precede the delta.
  EXPECT_FALSE(
      wal::ParseDeltaCheckpointFileName(wal::DeltaCheckpointFileName(17, 17),
                                        &seq, &parent));
  EXPECT_FALSE(wal::ParseDeltaCheckpointFileName("ckpt-42.d17", &seq,
                                                 &parent));  // unpadded
  EXPECT_FALSE(wal::ParseDeltaCheckpointFileName(
      wal::CheckpointFileName(42), &seq, &parent));
}

// ---- engine-level deltas ------------------------------------------------

// Differential check: an engine maintained purely through SaveStateDelta /
// LoadStateDelta stays byte-identical to the engine it shadows.
TEST(EngineDeltaTest, ShadowEngineTracksViaDeltasByteIdentically) {
  const std::string text =
      "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies s >= s0";
  tl::PredicateCatalog catalog;
  catalog["Emp"] = testing::IntSchema({"id", "s"});
  tl::FormulaPtr formula = Unwrap(tl::ParseFormula(text));

  auto primary = Unwrap(IncrementalEngine::Create(*formula, catalog));
  auto shadow = Unwrap(IncrementalEngine::Create(*formula, catalog));
  primary->BeginDeltaTracking();
  // Anchor the shadow on a full snapshot, then feed it only deltas.
  RTIC_ASSERT_OK(shadow->LoadState(Unwrap(primary->SaveState())));
  primary->MarkStateSaved();

  std::mt19937_64 rng(99);
  Database db;
  RTIC_ASSERT_OK(db.CreateTable("Emp", testing::IntSchema({"id", "s"})));
  for (int step = 1; step <= 60; ++step) {
    Table* table = Unwrap(db.GetMutableTable("Emp"));
    const std::int64_t id = static_cast<std::int64_t>(rng() % 6);
    const std::int64_t s = static_cast<std::int64_t>(rng() % 50);
    if (rng() % 3 == 0) table->Clear();
    (void)Unwrap(table->Insert(T(I(id), I(s))));
    (void)primary->OnTransition(db, step);
    if (step % 7 == 0) {
      std::string delta = Unwrap(primary->SaveStateDelta());
      primary->MarkStateSaved();
      RTIC_ASSERT_OK(shadow->LoadStateDelta(delta));
      ASSERT_EQ(Unwrap(shadow->SaveState()), Unwrap(primary->SaveState()))
          << "shadow diverged at step " << step;
    }
  }
}

TEST(EngineDeltaTest, DeltaOntoWrongParentRejected) {
  const std::string text = "forall a: P(a) implies once P(a)";
  tl::PredicateCatalog catalog;
  catalog["P"] = testing::IntSchema({"a"});
  tl::FormulaPtr formula = Unwrap(tl::ParseFormula(text));

  auto a = Unwrap(IncrementalEngine::Create(*formula, catalog));
  auto b = Unwrap(IncrementalEngine::Create(*formula, catalog));
  a->BeginDeltaTracking();
  a->MarkStateSaved();

  Database db;
  RTIC_ASSERT_OK(db.CreateTable("P", testing::IntSchema({"a"})));
  Table* table = Unwrap(db.GetMutableTable("P"));
  (void)Unwrap(table->Insert(T(I(1))));
  (void)a->OnTransition(db, 1);
  std::string delta = Unwrap(a->SaveStateDelta());
  // b is still at its initial state, which is NOT the delta's parent (the
  // parent saw value 1 absorbed into the domain)... the initial state has
  // an empty domain, so the chain check fires.
  (void)Unwrap(table->Insert(T(I(2))));
  (void)b->OnTransition(db, 1);
  Status s = b->LoadStateDelta(delta);
  EXPECT_FALSE(s.ok());
}

// ---- monitor-level deltas (no WAL) --------------------------------------

TEST(MonitorDeltaTest, StackedDeltasRestoreAndContinueIdentically) {
  auto reference = MakeMonitor(MonitorOptions{});
  auto primary = MakeMonitor(MonitorOptions{});
  primary->BeginDeltaTracking();

  std::string base;
  std::vector<std::string> deltas;
  for (std::size_t i = 0; i < 24; ++i) {
    std::vector<Violation> want = Unwrap(reference->ApplyUpdate(MakeBatch(i)));
    std::vector<Violation> got = Unwrap(primary->ApplyUpdate(MakeBatch(i)));
    ASSERT_EQ(got.size(), want.size());
    if (i == 7) {
      base = Unwrap(primary->SaveState());
      // SaveState is const and must not move the delta baseline; re-anchor
      // explicitly the way the durable checkpoint path does.
      RTIC_ASSERT_OK(primary->LoadState(base));
    } else if (i > 7 && i % 4 == 3) {
      deltas.push_back(Unwrap(primary->SaveStateDelta()));
    }
  }
  ASSERT_GE(deltas.size(), 3u);

  auto restored = MakeMonitor(MonitorOptions{});
  RTIC_ASSERT_OK(restored->LoadState(base));
  for (const std::string& delta : deltas) {
    RTIC_ASSERT_OK(restored->LoadStateDelta(delta));
  }
  EXPECT_EQ(Unwrap(restored->SaveState()), Unwrap(primary->SaveState()));
  EXPECT_EQ(restored->transition_count(), primary->transition_count());
  EXPECT_EQ(restored->total_violations(), primary->total_violations());

  // And the restored monitor continues exactly like the reference.
  for (std::size_t i = 24; i < 30; ++i) {
    std::vector<Violation> want = Unwrap(reference->ApplyUpdate(MakeBatch(i)));
    std::vector<Violation> got = Unwrap(restored->ApplyUpdate(MakeBatch(i)));
    ASSERT_EQ(got.size(), want.size()) << "diverged at step " << i;
  }
}

TEST(MonitorDeltaTest, DeltaOntoWrongParentRejected) {
  auto a = MakeMonitor(MonitorOptions{});
  a->BeginDeltaTracking();
  RTIC_ASSERT_OK(a->ApplyUpdate(MakeBatch(0)).status());
  std::string base = Unwrap(a->SaveState());
  RTIC_ASSERT_OK(a->LoadState(base));
  RTIC_ASSERT_OK(a->ApplyUpdate(MakeBatch(1)).status());
  std::string delta = Unwrap(a->SaveStateDelta());

  // A monitor that never saw batch 0 is not the delta's parent.
  auto b = MakeMonitor(MonitorOptions{});
  Status s = b->LoadStateDelta(delta);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);

  // Neither is one that already advanced past it.
  auto c = MakeMonitor(MonitorOptions{});
  RTIC_ASSERT_OK(c->LoadState(base));
  RTIC_ASSERT_OK(c->ApplyUpdate(MakeBatch(1)).status());
  EXPECT_EQ(c->LoadStateDelta(delta).code(),
            StatusCode::kFailedPrecondition);

  // The parent itself accepts it.
  auto d = MakeMonitor(MonitorOptions{});
  RTIC_ASSERT_OK(d->LoadState(base));
  RTIC_ASSERT_OK(d->LoadStateDelta(delta));
  EXPECT_EQ(Unwrap(d->SaveState()), Unwrap(a->SaveState()));
}

TEST(MonitorDeltaTest, DeltaRejectedByLoadStateAndViceVersa) {
  auto a = MakeMonitor(MonitorOptions{});
  a->BeginDeltaTracking();
  RTIC_ASSERT_OK(a->ApplyUpdate(MakeBatch(0)).status());
  std::string base = Unwrap(a->SaveState());
  RTIC_ASSERT_OK(a->LoadState(base));
  RTIC_ASSERT_OK(a->ApplyUpdate(MakeBatch(1)).status());
  std::string delta = Unwrap(a->SaveStateDelta());

  auto b = MakeMonitor(MonitorOptions{});
  EXPECT_EQ(b->LoadState(delta).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(b->LoadStateDelta(base).code(), StatusCode::kInvalidArgument);
}

// Delta payloads are priced by churn: a monitor with a large quiet table
// and a few hot rows writes deltas orders of magnitude smaller than its
// full snapshot. Dirty tracking is relation-granular — a constraint's aux
// relations are rewritten whole once any of their rows change — so the
// quiet bulk lives in a table no constraint references, the shape the
// delta design targets (hot working set small, archival state large).
TEST(MonitorDeltaTest, DeltaBytesScaleWithChurnNotStateSize) {
  auto monitor = MakeMonitor(MonitorOptions{});
  RTIC_ASSERT_OK(
      monitor->CreateTable("Ref", testing::IntSchema({"k", "v"})));
  // Big quiet state: 5000 rows touched once, never again.
  UpdateBatch bulk(1);
  for (std::int64_t i = 0; i < 5000; ++i) {
    bulk.Insert("Ref", T(I(i), I(10'000 + i)));
  }
  RTIC_ASSERT_OK(monitor->ApplyUpdate(bulk).status());
  monitor->BeginDeltaTracking();
  const std::string base = Unwrap(monitor->SaveState());
  RTIC_ASSERT_OK(monitor->LoadState(base));

  // Small churn: 4 batches over 5 hot rows.
  for (std::size_t i = 0; i < 4; ++i) {
    RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i + 1)).status());
  }
  const std::string delta = Unwrap(monitor->SaveStateDelta());
  EXPECT_LT(delta.size() * 20, base.size())
      << "delta (" << delta.size() << " bytes) must be far smaller than the "
      << "full snapshot (" << base.size() << " bytes)";
}

// ---- durable end-to-end -------------------------------------------------

/// Runs `total` batches durably under `cfg` with a restart after every
/// `restart_every` batches, and requires the surviving monitor to match a
/// plain in-memory reference byte-for-byte at the end.
void RunRestartLoop(const Cfg& cfg, std::size_t total,
                    std::size_t restart_every) {
  const std::string dir = MakeTempDir() + "/wal";
  auto reference = MakeMonitor(MonitorOptions{});
  std::unique_ptr<ConstraintMonitor> monitor;
  std::size_t applied = 0;
  while (applied < total) {
    monitor = MakeMonitor(DurableOptions(dir, cfg));
    RTIC_ASSERT_OK(monitor->Recover().status());
    ASSERT_EQ(monitor->transition_count(), applied)
        << "restart lost or resurrected batches";
    const std::size_t stop = std::min(total, applied + restart_every);
    for (; applied < stop; ++applied) {
      std::vector<Violation> want =
          Unwrap(reference->ApplyUpdate(MakeBatch(applied)));
      std::vector<Violation> got =
          Unwrap(monitor->ApplyUpdate(MakeBatch(applied)));
      ASSERT_EQ(got.size(), want.size()) << "diverged at batch " << applied;
    }
  }
  EXPECT_EQ(Unwrap(monitor->SaveState()), Unwrap(reference->SaveState()));
}

TEST(DurableDeltaTest, RestartsOverDeltaChainsMatchUninterruptedRun) {
  RunRestartLoop(Cfg{/*interval=*/4, /*delta_chain=*/8,
                     /*compression=*/false},
                 /*total=*/50, /*restart_every=*/9);
}

TEST(DurableDeltaTest, CompressedRestartsMatchUninterruptedRun) {
  RunRestartLoop(Cfg{/*interval=*/4, /*delta_chain=*/8,
                     /*compression=*/true},
                 /*total=*/50, /*restart_every=*/9);
}

TEST(DurableDeltaTest, ChainLimitForcesNewBase) {
  const std::string dir = MakeTempDir() + "/wal";
  Cfg cfg;
  cfg.interval = 2;
  cfg.delta_chain = 3;
  auto monitor = MakeMonitor(DurableOptions(dir, cfg));
  RTIC_ASSERT_OK(monitor->Recover().status());
  // Checkpoints at seq 2,4,6,...: base(2), deltas 4,6,8, base(10), ...
  for (std::size_t i = 0; i < 20; ++i) {
    RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
  }
  DirCensus census = Census(dir);
  ASSERT_EQ(census.bases.size(), 1u)
      << "GC must keep exactly the live chain's base";
  EXPECT_EQ(census.bases[0].first, 18u);
  ASSERT_EQ(census.deltas.size(), 1u);
  EXPECT_EQ(census.deltas[0].first, 20u);
  const CheckpointStats& stats = monitor->checkpoint_stats();
  EXPECT_EQ(stats.bases, 3u);   // seq 2, 10, 18
  EXPECT_EQ(stats.deltas, 7u);  // seq 4,6,8, 12,14,16, 20
  EXPECT_EQ(stats.failures, 0u);
}

TEST(DurableDeltaTest, GcRetainsBaseAndWalWhileDeltasReferenceThem) {
  const std::string dir = MakeTempDir() + "/wal";
  Cfg cfg;
  cfg.interval = 3;
  cfg.delta_chain = 8;
  auto monitor = MakeMonitor(DurableOptions(dir, cfg));
  RTIC_ASSERT_OK(monitor->Recover().status());
  for (std::size_t i = 0; i < 15; ++i) {  // base(3) + deltas 6,9,12,15
    RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
  }
  DirCensus census = Census(dir);
  ASSERT_EQ(census.bases.size(), 1u);
  EXPECT_EQ(census.bases[0].first, 3u)
      << "the base must survive while deltas chain to it";
  EXPECT_EQ(census.deltas.size(), 4u);
  // The WAL back to the base must survive too: if any delta is later lost,
  // recovery needs base + replay of everything after seq 3.
  std::sort(census.segment_first_seqs.begin(),
            census.segment_first_seqs.end());
  ASSERT_FALSE(census.segment_first_seqs.empty());
  EXPECT_LE(census.segment_first_seqs.front(), 4u)
      << "segments covering records since the base must not be collected";
}

TEST(DurableDeltaTest, CorruptOrMissingDeltaFallsBackToBaseWithoutLoss) {
  for (const bool compress : {false, true}) {
  for (const bool remove : {false, true}) {
    SCOPED_TRACE(std::string(remove ? "delta removed" : "delta bit-flipped") +
                 (compress ? " (compressed)" : ""));
    const std::string dir = MakeTempDir() + "/wal";
    Cfg cfg;
    cfg.interval = 3;
    cfg.compression = compress;
    auto reference = MakeMonitor(MonitorOptions{});
    {
      auto monitor = MakeMonitor(DurableOptions(dir, cfg));
      RTIC_ASSERT_OK(monitor->Recover().status());
      for (std::size_t i = 0; i < 14; ++i) {
        RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
      }
    }
    for (std::size_t i = 0; i < 14; ++i) {
      RTIC_ASSERT_OK(reference->ApplyUpdate(MakeBatch(i)).status());
    }
    // Damage the newest delta (the chain tip).
    DirCensus census = Census(dir);
    ASSERT_FALSE(census.deltas.empty());
    std::sort(census.deltas.begin(), census.deltas.end());
    const std::string tip = dir + "/" + census.deltas.back().second;
    if (remove) {
      RTIC_ASSERT_OK(wal::DefaultFs()->Remove(tip));
    } else {
      std::string content = Unwrap(wal::DefaultFs()->ReadFile(tip));
      content[content.size() / 2] =
          static_cast<char>(content[content.size() / 2] ^ 0x40);
      auto file = Unwrap(
          wal::DefaultFs()->NewWritableFile(tip, /*truncate=*/true));
      RTIC_ASSERT_OK(file->Append(content));
      RTIC_ASSERT_OK(file->Close());
    }

    auto recovered = MakeMonitor(DurableOptions(dir, cfg));
    wal::RecoveryStats stats = Unwrap(recovered->Recover());
    EXPECT_EQ(recovered->transition_count(), 14u)
        << "conservative WAL retention must make a lost delta loss-free";
    EXPECT_GT(stats.replayed_batches, 0u)
        << "the fallback path replays the tail the damaged delta covered";
    EXPECT_EQ(Unwrap(recovered->SaveState()), Unwrap(reference->SaveState()));
  }
  }
}

TEST(DurableDeltaTest, OrphanDeltaWithMissingParentIsEvicted) {
  const std::string dir = MakeTempDir() + "/wal";
  Cfg cfg;
  cfg.interval = 3;
  auto monitor = MakeMonitor(DurableOptions(dir, cfg));
  RTIC_ASSERT_OK(monitor->Recover().status());
  for (std::size_t i = 0; i < 7; ++i) {
    RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
  }
  monitor.reset();
  // Forge a tip delta whose parent checkpoint never existed.
  const std::string orphan = wal::DeltaCheckpointFileName(999, 998);
  auto file = Unwrap(wal::DefaultFs()->NewWritableFile(dir + "/" + orphan,
                                                       /*truncate=*/true));
  RTIC_ASSERT_OK(file->Append(wal::EncodeRecord(999, "garbage payload")));
  RTIC_ASSERT_OK(file->Close());

  auto recovered = MakeMonitor(DurableOptions(dir, cfg));
  RTIC_ASSERT_OK(recovered->Recover().status());
  EXPECT_EQ(recovered->transition_count(), 7u);
  EXPECT_FALSE(Unwrap(wal::DefaultFs()->FileExists(dir + "/" + orphan)))
      << "the unusable orphan must be evicted, not retried forever";
}

// Forward compatibility: a checkpoint file recorded by the previous build
// (RTICMON2 payload, no kind token, never compressed) must still recover.
TEST(DurableDeltaTest, LegacyRticmon2CheckpointFileStillRecovers) {
  const std::string dir = MakeTempDir() + "/wal";
  Cfg cfg;
  cfg.interval = 4;
  cfg.delta_chain = 0;  // the legacy build wrote only full snapshots
  auto reference = MakeMonitor(MonitorOptions{});
  {
    auto monitor = MakeMonitor(DurableOptions(dir, cfg));
    RTIC_ASSERT_OK(monitor->Recover().status());
    for (std::size_t i = 0; i < 10; ++i) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
    }
  }
  for (std::size_t i = 0; i < 10; ++i) {
    RTIC_ASSERT_OK(reference->ApplyUpdate(MakeBatch(i)).status());
  }

  // Rewrite the checkpoint file's payload to the RTICMON2 layout: same
  // body, no "base" kind token, RTICMON2 magic.
  DirCensus census = Census(dir);
  ASSERT_EQ(census.bases.size(), 1u);
  const std::string path = dir + "/" + census.bases[0].second;
  std::string content = Unwrap(wal::DefaultFs()->ReadFile(path));
  wal::ParsedRecord rec;
  std::string reason;
  ASSERT_EQ(wal::ParseRecord(content, 0, &rec, &reason),
            wal::ParseOutcome::kRecord)
      << reason;
  const std::string prefix = "8:RTICMON3 4:base ";
  ASSERT_EQ(rec.payload.substr(0, prefix.size()), prefix);
  const std::string legacy =
      "8:RTICMON2 " + rec.payload.substr(prefix.size());
  {
    auto file = Unwrap(
        wal::DefaultFs()->NewWritableFile(path, /*truncate=*/true));
    RTIC_ASSERT_OK(file->Append(wal::EncodeRecord(rec.seq, legacy)));
    RTIC_ASSERT_OK(file->Close());
  }

  // The new build — deltas and compression enabled — recovers it and
  // carries on.
  Cfg new_cfg;
  new_cfg.interval = 4;
  new_cfg.compression = true;
  auto recovered = MakeMonitor(DurableOptions(dir, new_cfg));
  RTIC_ASSERT_OK(recovered->Recover().status());
  EXPECT_EQ(recovered->transition_count(), 10u);
  EXPECT_EQ(Unwrap(recovered->SaveState()), Unwrap(reference->SaveState()));
  for (std::size_t i = 10; i < 14; ++i) {
    RTIC_ASSERT_OK(recovered->ApplyUpdate(MakeBatch(i)).status());
    RTIC_ASSERT_OK(reference->ApplyUpdate(MakeBatch(i)).status());
  }
  EXPECT_EQ(Unwrap(recovered->SaveState()), Unwrap(reference->SaveState()));
}

TEST(DurableDeltaTest, CompressionShrinksCheckpointFilesOnDisk) {
  // Same workload, compressed vs uncompressed directories; compare what
  // actually hit the disk.
  std::uint64_t plain_bytes = 0, compressed_bytes = 0;
  for (const bool compress : {false, true}) {
    const std::string dir = MakeTempDir() + "/wal";
    Cfg cfg;
    cfg.interval = 8;
    cfg.delta_chain = 0;  // compare full snapshots
    cfg.compression = compress;
    auto monitor = MakeMonitor(DurableOptions(dir, cfg));
    RTIC_ASSERT_OK(monitor->Recover().status());
    // Realistic bulk state repeats values heavily (salary bands, badge
    // ranges, amounts in cents); build 2000 distinct rows over a small
    // alphabet of full-width values so the dictionary coder sees the
    // repetition it targets.
    UpdateBatch bulk(1);
    for (std::int64_t i = 0; i < 2000; ++i) {
      bulk.Insert("Emp", T(I(1'000'100 + i % 50),
                           I(1'000'000'000 + (i / 50) * 25'000)));
    }
    RTIC_ASSERT_OK(monitor->ApplyUpdate(bulk).status());
    for (std::size_t i = 1; i < 8; ++i) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(i)).status());
    }
    const CheckpointStats& stats = monitor->checkpoint_stats();
    ASSERT_EQ(stats.bases, 1u);
    (compress ? compressed_bytes : plain_bytes) = stats.base_bytes;
    // The on-disk payload's shape matches the option.
    DirCensus census = Census(dir);
    ASSERT_EQ(census.bases.size(), 1u);
    std::string content = Unwrap(
        wal::DefaultFs()->ReadFile(dir + "/" + census.bases[0].second));
    wal::ParsedRecord rec;
    std::string reason;
    ASSERT_EQ(wal::ParseRecord(content, 0, &rec, &reason),
              wal::ParseOutcome::kRecord);
    EXPECT_EQ(LooksCompressed(rec.payload), compress);
  }
  EXPECT_LT(compressed_bytes * 3, plain_bytes)
      << "compression must shrink checkpoint payloads at least 3x "
      << "(compressed " << compressed_bytes << ", plain " << plain_bytes
      << ")";
}

TEST(DurableDeltaTest, CompressionFlipsInteroperateAcrossRestarts) {
  const std::string dir = MakeTempDir() + "/wal";
  auto reference = MakeMonitor(MonitorOptions{});
  std::size_t applied = 0;
  // off -> on -> off: every restart must read whatever the previous
  // configuration wrote.
  for (const bool compress : {false, true, false}) {
    Cfg cfg;
    cfg.interval = 3;
    cfg.compression = compress;
    auto monitor = MakeMonitor(DurableOptions(dir, cfg));
    RTIC_ASSERT_OK(monitor->Recover().status());
    ASSERT_EQ(monitor->transition_count(), applied);
    for (std::size_t i = 0; i < 8; ++i, ++applied) {
      RTIC_ASSERT_OK(monitor->ApplyUpdate(MakeBatch(applied)).status());
      RTIC_ASSERT_OK(reference->ApplyUpdate(MakeBatch(applied)).status());
    }
    ASSERT_EQ(Unwrap(monitor->SaveState()), Unwrap(reference->SaveState()));
  }
}

// Property test: random alarm workloads, with a mid-run restart, compressed
// and uncompressed side by side — the recovered states must be
// byte-identical to each other and to an uninterrupted reference.
TEST(DurableDeltaTest, RandomWorkloadsRecoverByteIdenticallyUnderCompression) {
  for (std::uint64_t seed : {3u, 17u, 58u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    workload::AlarmParams params;
    params.length = 60;
    params.num_alarms = 6;
    params.late_prob = 0.25;
    params.seed = seed;
    workload::Workload wl = workload::MakeAlarmWorkload(params);

    auto build = [&wl](MonitorOptions options) {
      auto monitor = std::make_unique<ConstraintMonitor>(std::move(options));
      for (const auto& [name, schema] : wl.schema) {
        RTIC_EXPECT_OK(monitor->CreateTable(name, schema));
      }
      for (const auto& [name, text] : wl.constraints) {
        RTIC_EXPECT_OK(monitor->RegisterConstraint(name, text));
      }
      return monitor;
    };

    auto reference = build(MonitorOptions{});
    for (const UpdateBatch& batch : wl.batches) {
      RTIC_ASSERT_OK(reference->ApplyUpdate(batch).status());
    }

    for (const bool compress : {false, true}) {
      SCOPED_TRACE(compress ? "compressed" : "plain");
      const std::string dir = MakeTempDir() + "/wal";
      Cfg cfg;
      cfg.interval = 5;
      cfg.compression = compress;
      const std::size_t half = wl.batches.size() / 2;
      {
        auto monitor = build(DurableOptions(dir, cfg));
        RTIC_ASSERT_OK(monitor->Recover().status());
        for (std::size_t i = 0; i < half; ++i) {
          RTIC_ASSERT_OK(monitor->ApplyUpdate(wl.batches[i]).status());
        }
      }
      auto monitor = build(DurableOptions(dir, cfg));
      RTIC_ASSERT_OK(monitor->Recover().status());
      ASSERT_EQ(monitor->transition_count(), half);
      for (std::size_t i = half; i < wl.batches.size(); ++i) {
        RTIC_ASSERT_OK(monitor->ApplyUpdate(wl.batches[i]).status());
      }
      ASSERT_EQ(Unwrap(monitor->SaveState()), Unwrap(reference->SaveState()));
    }
  }
}

}  // namespace
}  // namespace rtic
