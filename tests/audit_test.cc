// Tests for offline history auditing: agreement with the online monitor,
// response-constraint routing, and report formatting.

#include <gtest/gtest.h>

#include "monitor/audit.h"
#include "monitor/monitor.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace rtic {
namespace {

using testing::I;
using testing::IntSchema;
using testing::T;
using testing::Unwrap;

DeltaLog RecordedPayCutHistory() {
  Database initial;
  RTIC_EXPECT_OK(initial.CreateTable("Emp", IntSchema({"id", "salary"})));
  DeltaLog log(initial);

  UpdateBatch hire(1);
  hire.Insert("Emp", T(I(1), I(100)));
  RTIC_EXPECT_OK(log.Append(hire));

  UpdateBatch raise(4);
  raise.Delete("Emp", T(I(1), I(100)));
  raise.Insert("Emp", T(I(1), I(120)));
  RTIC_EXPECT_OK(log.Append(raise));

  UpdateBatch cut(7);
  cut.Delete("Emp", T(I(1), I(120)));
  cut.Insert("Emp", T(I(1), I(80)));
  RTIC_EXPECT_OK(log.Append(cut));
  return log;
}

TEST(AuditTest, FindsViolatingStates) {
  DeltaLog log = RecordedPayCutHistory();
  std::vector<AuditReport> reports = Unwrap(AuditHistory(
      log, {{"no_pay_cut",
             "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies "
             "s >= s0"}}));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdicts, (std::vector<bool>{true, true, false}));
  EXPECT_EQ(reports[0].violating_times, (std::vector<Timestamp>{7}));
  EXPECT_NE(reports[0].ToString().find("t=7"), std::string::npos);
}

TEST(AuditTest, MultipleConstraintsAudited) {
  DeltaLog log = RecordedPayCutHistory();
  std::vector<AuditReport> reports = Unwrap(AuditHistory(
      log, {{"no_pay_cut",
             "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies "
             "s >= s0"},
            {"someone_employed", "exists e, s: Emp(e, s)"}}));
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].violating_times.size(), 1u);
  EXPECT_TRUE(reports[1].violating_times.empty());
}

TEST(AuditTest, ResponseConstraintsRoute) {
  Database initial;
  RTIC_EXPECT_OK(initial.CreateTable("Raise", IntSchema({"a"})));
  RTIC_EXPECT_OK(initial.CreateTable("Ack", IntSchema({"a"})));
  DeltaLog log(initial);
  UpdateBatch raise(1);
  raise.Insert("Raise", T(I(9)));
  RTIC_EXPECT_OK(log.Append(raise));
  UpdateBatch clear(2);
  clear.Delete("Raise", T(I(9)));
  RTIC_EXPECT_OK(log.Append(clear));
  RTIC_EXPECT_OK(log.Append(UpdateBatch(20)));  // window [1, 6] closed

  std::vector<AuditReport> reports = Unwrap(AuditHistory(
      log, {{"respond",
             "forall a: Raise(a) implies eventually[0, 5] Ack(a)"}}));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].violating_times, (std::vector<Timestamp>{20}));
}

TEST(AuditTest, AgreesWithOnlineMonitorOnWorkload) {
  workload::AlarmParams params;
  params.length = 60;
  params.num_alarms = 10;
  params.late_prob = 0.3;
  params.seed = 5;
  workload::Workload w = workload::MakeAlarmWorkload(params);

  // Record the workload into a delta log.
  Database initial;
  for (const auto& [name, schema] : w.schema) {
    RTIC_EXPECT_OK(initial.CreateTable(name, schema));
  }
  DeltaLog log(initial);
  for (const UpdateBatch& b : w.batches) RTIC_EXPECT_OK(log.Append(b));

  // Online run.
  ConstraintMonitor monitor;
  for (const auto& [name, schema] : w.schema) {
    RTIC_EXPECT_OK(monitor.CreateTable(name, schema));
  }
  for (const auto& [name, text] : w.constraints) {
    RTIC_EXPECT_OK(monitor.RegisterConstraint(name, text));
  }
  std::map<std::string, std::vector<Timestamp>> online;
  for (const UpdateBatch& b : w.batches) {
    for (const Violation& v : Unwrap(monitor.ApplyUpdate(b))) {
      online[v.constraint_name].push_back(v.timestamp);
    }
  }

  // Offline audit must flag exactly the same states per constraint.
  std::vector<AuditReport> reports =
      Unwrap(AuditHistory(log, w.constraints));
  for (const AuditReport& r : reports) {
    EXPECT_EQ(r.violating_times, online[r.constraint_name])
        << r.constraint_name;
  }
}

TEST(AuditTest, BadConstraintFails) {
  DeltaLog log = RecordedPayCutHistory();
  EXPECT_FALSE(AuditHistory(log, {{"bad", "Nope(x)"}}).ok());
  EXPECT_FALSE(AuditHistory(log, {{"bad", "("}}).ok());
}

}  // namespace
}  // namespace rtic
