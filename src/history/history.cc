#include "history/history.h"

namespace rtic {

Status HistoryLog::Append(const Database& state, Timestamp t) {
  if (!times_.empty() && t <= times_.back()) {
    return Status::InvalidArgument(
        "history timestamps must be strictly increasing: " +
        std::to_string(t) + " after " + std::to_string(times_.back()));
  }
  states_.push_back(state);
  times_.push_back(t);
  return Status::OK();
}

std::size_t HistoryLog::TotalStoredRows() const {
  std::size_t n = 0;
  for (const Database& db : states_) n += db.TotalRows();
  return n;
}

Status DeltaLog::Append(UpdateBatch batch) {
  if (!batches_.empty() && batch.timestamp() <= batches_.back().timestamp()) {
    return Status::InvalidArgument(
        "batch timestamps must be strictly increasing");
  }
  batches_.push_back(std::move(batch));
  return Status::OK();
}

Result<Database> DeltaLog::Materialize(std::size_t i) const {
  if (i >= batches_.size()) {
    return Status::OutOfRange("no transition " + std::to_string(i) +
                              " in a delta log of size " +
                              std::to_string(batches_.size()));
  }
  Database db = initial_;
  for (std::size_t k = 0; k <= i; ++k) {
    RTIC_RETURN_IF_ERROR(batches_[k].Apply(&db));
  }
  return db;
}

}  // namespace rtic
