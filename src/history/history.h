// History storage.
//
// HistoryLog keeps a *full snapshot* of every state — exactly the storage
// profile of the naive (non-bounded) checking approach the paper argues
// against; its memory accounting is what experiment E2 measures.
//
// DeltaLog keeps the initial state plus the update batches and can
// re-materialize any state by replay (used by tests and workload tooling).

#ifndef RTIC_HISTORY_HISTORY_H_
#define RTIC_HISTORY_HISTORY_H_

#include <vector>

#include "common/interval.h"
#include "common/result.h"
#include "storage/database.h"
#include "storage/update_batch.h"

namespace rtic {

/// Sequence of timestamped full database snapshots.
class HistoryLog {
 public:
  /// Appends a deep copy of `state` at time `t`. Timestamps must be strictly
  /// increasing.
  Status Append(const Database& state, Timestamp t);

  /// Number of stored states.
  std::size_t size() const { return states_.size(); }
  bool empty() const { return states_.empty(); }

  /// The i-th state / its timestamp. Requires i < size().
  const Database& StateAt(std::size_t i) const { return states_[i]; }
  Timestamp TimeAt(std::size_t i) const { return times_[i]; }

  /// Timestamp of the newest state. Requires !empty().
  Timestamp LatestTime() const { return times_.back(); }

  /// Total rows stored across every snapshot — the naive approach's space.
  std::size_t TotalStoredRows() const;

 private:
  std::vector<Database> states_;
  std::vector<Timestamp> times_;
};

/// Initial state plus the batches that evolve it; states re-materialized on
/// demand by replay.
class DeltaLog {
 public:
  explicit DeltaLog(Database initial) : initial_(std::move(initial)) {}

  /// Appends a batch. Timestamps must be strictly increasing.
  Status Append(UpdateBatch batch);

  /// Number of recorded transitions (states = transitions; the initial
  /// database is the pre-history state, not a monitored state).
  std::size_t size() const { return batches_.size(); }

  const UpdateBatch& BatchAt(std::size_t i) const { return batches_[i]; }
  const Database& initial() const { return initial_; }

  /// The state after applying batches [0..i]. Requires i < size().
  Result<Database> Materialize(std::size_t i) const;

 private:
  Database initial_;
  std::vector<UpdateBatch> batches_;
};

}  // namespace rtic

#endif  // RTIC_HISTORY_HISTORY_H_
