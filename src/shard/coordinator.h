// CrossShardCoordinator: the full-stream fallback for constraints the
// classifier cannot prove partition-local.
//
// The coordinator wraps one ordinary ConstraintMonitor that sees EVERY
// transition unrouted (the whole batch, every tick), so a cross-shard
// constraint checks against exactly the state an unsharded monitor would
// hold. It is lazily activated: a sharded monitor whose constraints all
// classify partition-local never constructs it and pays zero coordinator
// overhead (no duplicate WAL, no shadow database).
//
// Late activation (first cross-shard constraint registered after updates
// have been applied, in-memory mode only) seeds the coordinator's
// database with the union of the shard databases via one synthetic batch
// at the current timestamp — after which registering the constraint sees
// precisely what an unsharded monitor would show a late-registered
// constraint: the current state, an empty temporal past. A durable
// coordinator cannot be seeded this way (its WAL must cover its state),
// so durable sharded monitors require cross-shard constraints to be
// registered before Recover().
//
// This header also hosts the deterministic violation merge: the function
// that folds per-shard verdicts for a partition-local constraint into
// the byte-identical unsharded report.

#ifndef RTIC_SHARD_COORDINATOR_H_
#define RTIC_SHARD_COORDINATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "monitor/monitor.h"
#include "storage/database.h"

namespace rtic {
namespace shard {

/// A table known to the sharded monitor (replayed into the coordinator
/// at activation).
struct TableDef {
  std::string name;
  Schema schema;
  std::size_t key_column = 0;
};

/// Merges one partition-local constraint's per-shard violations (the
/// entries named `name` in each shard's report, if any) into the
/// unsharded report. Witness lists are per-shard sorted prefixes of
/// disjoint row sets, so: concatenate, sort, dedupe, truncate to
/// `max_witnesses`. Byte-identical to the single monitor because any row
/// in the global sorted top-K has fewer than K predecessors globally, a
/// fortiori within its own shard — per-shard truncation to K never drops
/// a globally surviving row. Returns false when no shard violated.
bool MergeShardViolations(const std::string& name,
                          const std::vector<std::vector<Violation>>& per_shard,
                          std::size_t max_witnesses, Violation* merged);

/// The lazily constructed full-stream monitor for cross-shard
/// constraints.
class CrossShardCoordinator {
 public:
  /// `options` configure the inner monitor when it is activated. The
  /// caller pre-rewrites wal_dir (empty, or `<root>/shard-coord`).
  explicit CrossShardCoordinator(MonitorOptions options)
      : options_(std::move(options)) {}

  bool active() const { return monitor_ != nullptr; }

  /// The inner monitor; nullptr until Activate().
  ConstraintMonitor* monitor() { return monitor_.get(); }
  const ConstraintMonitor* monitor() const { return monitor_.get(); }

  /// Constructs the inner monitor and declares `tables` in it. No-op
  /// when already active.
  Status Activate(const std::vector<TableDef>& tables);

  /// In-memory late activation only: installs the union of the shard
  /// databases as one batch at timestamp `t`, advancing the inner clock
  /// to match the sharded monitor's. Must run before any cross-shard
  /// constraint is registered (the seed batch must not be checked).
  Status Seed(const std::vector<const Database*>& shard_dbs, Timestamp t);

  /// Forwards a table created after activation.
  Status CreateTable(const std::string& name, Schema schema);

 private:
  MonitorOptions options_;
  std::unique_ptr<ConstraintMonitor> monitor_;
};

}  // namespace shard
}  // namespace rtic

#endif  // RTIC_SHARD_COORDINATOR_H_
