// Partitioner: maps tuples to shards by a per-table partition key.
//
// Every table declares one key column (default: column 0). A tuple lives
// on shard StableValueHash(key value) % shard_count. The hash is our own
// FNV-1a over a canonical byte encoding of the value — deliberately NOT
// std::hash — so the mapping is stable across processes, platforms, and
// standard libraries: a durable shard directory written by one binary
// must route the same key to the same shard in every later binary, or
// recovery would scatter a key's history across shards.
//
// The paper's auxiliary relations partition naturally by domain value:
// all history any constraint keeps about key value v (once/since
// anchors, previous-state rows) concerns tuples whose key is v, so
// co-locating every table's v-rows on one shard makes whole constraints
// checkable shard-locally (see classifier.h for the exact condition).

#ifndef RTIC_SHARD_PARTITIONER_H_
#define RTIC_SHARD_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace rtic {
namespace shard {

/// Process-stable 64-bit FNV-1a over a type-tagged canonical encoding of
/// the value. Int64(1), Double(1.0), and String("1") hash differently
/// (equality is type-sensitive, so the hash must be too).
std::uint64_t StableValueHash(const Value& value);

/// The partition map: table name -> key column index, plus the shard
/// arithmetic. Immutable per table once declared.
class Partitioner {
 public:
  explicit Partitioner(std::size_t shard_count) : shard_count_(shard_count) {}

  std::size_t shard_count() const { return shard_count_; }

  /// Declares `table`'s partition key. The column must exist in `schema`.
  /// Fails on redeclaration (the mapping backs durable directories and
  /// must never change under live data).
  Status AddTable(const std::string& table, const Schema& schema,
                  std::size_t key_column);

  /// True iff the table has been declared.
  bool HasTable(const std::string& table) const;

  /// Key column index of `table`; NotFound if undeclared.
  Result<std::size_t> KeyColumn(const std::string& table) const;

  /// Shard owning `tuple` of `table`. The tuple must match the declared
  /// schema's arity (checked; value typing is the caller's concern).
  Result<std::size_t> ShardOf(const std::string& table,
                              const Tuple& tuple) const;

  /// Shard owning a bare key value (tuples with this key in any table
  /// keyed on an equal value co-locate here).
  std::size_t ShardOfKey(const Value& key) const {
    return static_cast<std::size_t>(StableValueHash(key) %
                                    static_cast<std::uint64_t>(shard_count_));
  }

  /// Declared tables, sorted.
  std::vector<std::string> TableNames() const;

 private:
  struct Entry {
    std::size_t key_column = 0;
    std::size_t arity = 0;
  };

  std::size_t shard_count_;
  std::map<std::string, Entry> tables_;
};

}  // namespace shard
}  // namespace rtic

#endif  // RTIC_SHARD_PARTITIONER_H_
