// ShardedMonitor: a MonitorLike that horizontally partitions one logical
// monitor across N inner ConstraintMonitors ("shards").
//
// Each table declares a partition key column (default 0); the router
// sends every tuple to shard StableValueHash(key) % N, and every shard
// sees every timestamp (empty sub-batches are clock ticks — metric
// temporal operators move with the clock, so shards must tick in
// lockstep). Constraints are classified at registration (see
// classifier.h): partition-local ones are registered on every shard and
// checked against co-partitioned state only; everything else goes to the
// lazily activated cross-shard coordinator, a full-stream inner monitor.
// Per-shard verdicts are merged deterministically in registration order,
// byte-identical to an unsharded ConstraintMonitor over the same history
// (tests/sharded_monitor_test.cc proves this differentially).
//
// Durability: with MonitorOptions::wal_dir = <root>, shard k logs and
// checkpoints under <root>/shard-<k> and the coordinator (if activated)
// under <root>/shard-coord — N+1 independent WAL/checkpoint chains.
// Recover() creates the directories, recovers every inner monitor, and
// reconciles clocks: a crash inside ApplyUpdate can leave some shards
// one transition ahead (each shard commits its own WAL; there is no
// cross-shard atomic commit), in which case laggards are caught up with
// a clock tick and the divergence is logged. Restrictions in durable
// mode: cross-shard constraints must be registered before Recover()
// (the coordinator's WAL cannot adopt state it never logged), and
// replication_standby is rejected (ship each shard's directory
// individually instead).
//
// Threading: MonitorOptions::num_threads > 1 fans ApplyUpdate across the
// shards (and the coordinator) on a pool; each inner monitor runs its
// own constraints serially (num_threads is forced to 1 inside). Results
// are merged in registration order, so the parallel path is
// byte-identical to the serial one.

#ifndef RTIC_SHARD_SHARDED_MONITOR_H_
#define RTIC_SHARD_SHARDED_MONITOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "monitor/monitor.h"
#include "monitor/monitor_iface.h"
#include "shard/classifier.h"
#include "shard/coordinator.h"
#include "shard/partitioner.h"

namespace rtic {
namespace shard {

class ShardedMonitor : public MonitorLike {
 public:
  /// Validates the configuration (1 <= shard_count <= 1024, no
  /// replication) and builds the shard fleet. `options` apply to every
  /// shard except: wal_dir becomes `<wal_dir>/shard-<k>`, num_threads is
  /// forced to 1 inside each shard (see header comment), and
  /// replication_standby must be empty.
  static Result<std::unique_ptr<ShardedMonitor>> Create(
      std::size_t shard_count, MonitorOptions options = {});

  ~ShardedMonitor() override = default;

  ShardedMonitor(const ShardedMonitor&) = delete;
  ShardedMonitor& operator=(const ShardedMonitor&) = delete;

  // ---- MonitorLike ------------------------------------------------------

  /// Creates the table on every shard, partitioned by column 0.
  Status CreateTable(const std::string& name, Schema schema) override;

  /// Parses, analyzes, classifies, and registers the constraint —
  /// on every shard (partition-local) or on the coordinator
  /// (cross-shard).
  Status RegisterConstraint(const std::string& name,
                            const std::string& text) override;

  /// Durable mode only: recovers every shard (and the coordinator),
  /// reconciling clocks after torn cross-shard writes. Merged per-
  /// constraint violation counters are reconstructed as the max over
  /// shards — a lower bound of the true merged count when one
  /// transition's violations spanned shards (the coordinator's counters
  /// are exact).
  Result<wal::RecoveryStats> Recover() override;

  /// Routes the batch, applies every sub-batch (plus the full batch to
  /// the active coordinator) in lockstep, and merges the verdicts. The
  /// batch is validated up front so an invalid batch touches no shard;
  /// in durable mode a shard's WAL failure can still leave earlier
  /// shards one transition ahead (reconciled by Recover()).
  Result<std::vector<Violation>> ApplyUpdate(const UpdateBatch& batch) override;

  Result<std::vector<Violation>> Tick(Timestamp t) override;

  Timestamp current_time() const override { return current_time_; }
  std::size_t transition_count() const override { return transition_count_; }
  std::size_t total_violations() const override { return total_violations_; }
  std::vector<std::string> ConstraintNames() const override;

  /// Registration-order stats. Partition-local entries aggregate across
  /// shards (times/storage sum, worst check is the max of maxes);
  /// violations/transitions are the merged monitor-level counters.
  std::vector<ConstraintStats> Stats() const override;

  std::size_t TotalStorageRows() const override;

  // ---- sharding surface -------------------------------------------------

  /// CreateTable with an explicit partition key column.
  Status CreateTablePartitioned(const std::string& name, Schema schema,
                                std::size_t key_column);

  /// Stops checking a constraint everywhere it was registered.
  Status UnregisterConstraint(const std::string& name);

  std::size_t shard_count() const { return shards_.size(); }

  /// Shard k's inner monitor (tests and benchmarks inspect state).
  const ConstraintMonitor& shard(std::size_t k) const { return *shards_[k]; }

  /// True once a cross-shard constraint forced the coordinator up.
  bool coordinator_active() const { return coordinator_.active(); }

  /// How `name` classified at registration.
  Result<Classification> ClassificationFor(const std::string& name) const;

  /// Registered constraints that classified partition-local.
  std::size_t PartitionLocalCount() const;

  /// PartitionLocalCount() / registered count (1.0 when none registered —
  /// an empty monitor needs no coordinator).
  double PartitionLocalFraction() const;

 private:
  struct Entry {
    std::string name;
    Classification cls;
    std::size_t transitions = 0;  // transitions since registration (merged)
    std::size_t violations = 0;   // violated transitions (merged)
  };

  ShardedMonitor(MonitorOptions options, std::size_t shard_count);

  bool durable() const { return !options_.wal_dir.empty(); }

  /// Brings the coordinator up (first cross-shard registration), seeding
  /// it from the shard databases when updates already ran (in-memory
  /// mode only).
  Status EnsureCoordinator();

  MonitorOptions options_;  // wal_dir is the ROOT directory
  Partitioner partitioner_;
  std::vector<TableDef> tables_;
  std::vector<std::unique_ptr<ConstraintMonitor>> shards_;
  CrossShardCoordinator coordinator_;
  std::unique_ptr<ThreadPool> pool_;  // non-null iff num_threads > 1
  std::vector<Entry> entries_;        // registration order
  Timestamp current_time_ = 0;
  std::size_t transition_count_ = 0;
  std::size_t total_violations_ = 0;
  bool recovered_ = false;
};

}  // namespace shard
}  // namespace rtic

#endif  // RTIC_SHARD_SHARDED_MONITOR_H_
