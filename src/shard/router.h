// Router: splits one UpdateBatch into per-shard sub-batches along the
// partition map.
//
// Every sub-batch carries the original timestamp even when it ends up
// empty: shards tick in LOCKSTEP. Metric temporal operators (previous[I],
// once[I], since[I]) change truth values with the clock alone, so a shard
// that skipped a "quiet" transition would disagree with the unsharded
// monitor about interval membership. An empty sub-batch is exactly a
// clock tick for its shard.

#ifndef RTIC_SHARD_ROUTER_H_
#define RTIC_SHARD_ROUTER_H_

#include <vector>

#include "common/result.h"
#include "shard/partitioner.h"
#include "storage/update_batch.h"

namespace rtic {
namespace shard {

/// Splits `batch` into `partitioner.shard_count()` sub-batches, routing
/// each insert/delete to the shard owning its tuple's partition key.
/// Relative operation order within a table is preserved per shard. Fails
/// (without partial output) on a table the partitioner does not know or
/// an arity-mismatched tuple; callers validate batches against a shard
/// database first for the better schema error message.
Result<std::vector<UpdateBatch>> RouteBatch(const UpdateBatch& batch,
                                            const Partitioner& partitioner);

}  // namespace shard
}  // namespace rtic

#endif  // RTIC_SHARD_ROUTER_H_
