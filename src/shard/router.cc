#include "shard/router.h"

namespace rtic {
namespace shard {

Result<std::vector<UpdateBatch>> RouteBatch(const UpdateBatch& batch,
                                            const Partitioner& partitioner) {
  std::vector<UpdateBatch> out;
  out.reserve(partitioner.shard_count());
  for (std::size_t k = 0; k < partitioner.shard_count(); ++k) {
    out.emplace_back(batch.timestamp());
  }
  for (const auto& [table, tuples] : batch.deletes()) {
    for (const Tuple& tuple : tuples) {
      RTIC_ASSIGN_OR_RETURN(std::size_t k, partitioner.ShardOf(table, tuple));
      out[k].Delete(table, tuple);
    }
  }
  for (const auto& [table, tuples] : batch.inserts()) {
    for (const Tuple& tuple : tuples) {
      RTIC_ASSIGN_OR_RETURN(std::size_t k, partitioner.ShardOf(table, tuple));
      out[k].Insert(table, tuple);
    }
  }
  return out;
}

}  // namespace shard
}  // namespace rtic
