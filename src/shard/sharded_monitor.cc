#include "shard/sharded_monitor.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <map>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "shard/router.h"
#include "tl/parser.h"

namespace rtic {
namespace shard {
namespace {

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("sharded monitor: cannot create directory " +
                            path);
  }
  return Status::OK();
}

std::string ShardDir(const std::string& root, std::size_t k) {
  return root + "/shard-" + std::to_string(k);
}

}  // namespace

ShardedMonitor::ShardedMonitor(MonitorOptions options, std::size_t shard_count)
    : options_(std::move(options)),
      partitioner_(shard_count),
      coordinator_([&] {
        MonitorOptions coord = options_;
        coord.num_threads = 1;
        if (!coord.wal_dir.empty()) coord.wal_dir += "/shard-coord";
        return coord;
      }()) {
  shards_.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    MonitorOptions per_shard = options_;
    per_shard.num_threads = 1;
    if (!per_shard.wal_dir.empty()) {
      per_shard.wal_dir = ShardDir(options_.wal_dir, k);
    }
    shards_.push_back(std::make_unique<ConstraintMonitor>(per_shard));
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1);
  }
}

Result<std::unique_ptr<ShardedMonitor>> ShardedMonitor::Create(
    std::size_t shard_count, MonitorOptions options) {
  if (shard_count == 0) {
    return Status::InvalidArgument("sharded monitor needs at least 1 shard");
  }
  if (shard_count > 1024) {
    return Status::InvalidArgument(
        "shard_count " + std::to_string(shard_count) +
        " exceeds the supported maximum of 1024");
  }
  if (!options.replication_standby.empty()) {
    return Status::InvalidArgument(
        "log-shipping replication is not supported on a sharded monitor; "
        "ship each shard's directory individually");
  }
  return std::unique_ptr<ShardedMonitor>(
      new ShardedMonitor(std::move(options), shard_count));
}

Status ShardedMonitor::CreateTable(const std::string& name, Schema schema) {
  return CreateTablePartitioned(name, std::move(schema), 0);
}

Status ShardedMonitor::CreateTablePartitioned(const std::string& name,
                                              Schema schema,
                                              std::size_t key_column) {
  if (transition_count_ > 0) {
    return Status::FailedPrecondition(
        "tables must be created before the first update");
  }
  RTIC_RETURN_IF_ERROR(partitioner_.AddTable(name, schema, key_column));
  for (auto& shard : shards_) {
    RTIC_RETURN_IF_ERROR(shard->CreateTable(name, schema));
  }
  if (coordinator_.active()) {
    RTIC_RETURN_IF_ERROR(coordinator_.CreateTable(name, schema));
  }
  tables_.push_back(TableDef{name, std::move(schema), key_column});
  return Status::OK();
}

Status ShardedMonitor::EnsureCoordinator() {
  if (coordinator_.active()) return Status::OK();
  if (durable() && recovered_) {
    return Status::FailedPrecondition(
        "cross-shard constraints must be registered before Recover() on a "
        "durable sharded monitor (the coordinator's WAL cannot adopt state "
        "it never logged)");
  }
  RTIC_RETURN_IF_ERROR(coordinator_.Activate(tables_));
  if (!durable() && transition_count_ > 0) {
    std::vector<const Database*> dbs;
    dbs.reserve(shards_.size());
    for (const auto& shard : shards_) dbs.push_back(&shard->database());
    RTIC_RETURN_IF_ERROR(coordinator_.Seed(dbs, current_time_));
  }
  return Status::OK();
}

Status ShardedMonitor::RegisterConstraint(const std::string& name,
                                          const std::string& text) {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return Status::AlreadyExists("constraint already registered: " + name);
    }
  }
  RTIC_ASSIGN_OR_RETURN(tl::FormulaPtr formula, tl::ParseFormula(text));

  tl::PredicateCatalog catalog;
  for (const TableDef& t : tables_) catalog[t.name] = t.schema;
  RTIC_ASSIGN_OR_RETURN(tl::Analysis analysis, tl::Analyze(*formula, catalog));
  if (!analysis.IsClosed(*formula)) {
    return Status::InvalidArgument("constraint '" + name +
                                   "' must be a closed formula");
  }

  RTIC_ASSIGN_OR_RETURN(Classification cls,
                        Classify(*formula, analysis, partitioner_));
  if (cls.local()) {
    for (auto& shard : shards_) {
      RTIC_RETURN_IF_ERROR(shard->RegisterConstraint(name, text));
    }
  } else {
    RTIC_RETURN_IF_ERROR(EnsureCoordinator());
    RTIC_RETURN_IF_ERROR(coordinator_.monitor()->RegisterConstraint(name,
                                                                    text));
  }
  entries_.push_back(Entry{name, std::move(cls), 0, 0});
  return Status::OK();
}

Status ShardedMonitor::UnregisterConstraint(const std::string& name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name != name) continue;
    if (it->cls.local()) {
      for (auto& shard : shards_) {
        RTIC_RETURN_IF_ERROR(shard->UnregisterConstraint(name));
      }
    } else {
      RTIC_RETURN_IF_ERROR(coordinator_.monitor()->UnregisterConstraint(name));
    }
    entries_.erase(it);
    return Status::OK();
  }
  return Status::NotFound("no such constraint: " + name);
}

Result<wal::RecoveryStats> ShardedMonitor::Recover() {
  if (!durable()) {
    return Status::FailedPrecondition(
        "Recover() requires MonitorOptions::wal_dir");
  }
  if (recovered_) {
    return Status::FailedPrecondition("Recover() already ran");
  }
  if (transition_count_ > 0) {
    return Status::FailedPrecondition(
        "Recover() must run before the first update");
  }
  RTIC_RETURN_IF_ERROR(MakeDir(options_.wal_dir));
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    RTIC_RETURN_IF_ERROR(MakeDir(ShardDir(options_.wal_dir, k)));
  }
  if (coordinator_.active()) {
    RTIC_RETURN_IF_ERROR(MakeDir(options_.wal_dir + "/shard-coord"));
  }

  std::vector<ConstraintMonitor*> inners;
  for (auto& shard : shards_) inners.push_back(shard.get());
  if (coordinator_.active()) inners.push_back(coordinator_.monitor());

  wal::RecoveryStats merged;
  for (ConstraintMonitor* m : inners) {
    RTIC_ASSIGN_OR_RETURN(wal::RecoveryStats s, m->Recover());
    merged.checkpoint_seq = std::max(merged.checkpoint_seq, s.checkpoint_seq);
    merged.last_seq = std::max(merged.last_seq, s.last_seq);
    merged.replayed_batches += s.replayed_batches;
    merged.tail_damaged = merged.tail_damaged || s.tail_damaged;
    merged.truncated_bytes += s.truncated_bytes;
    merged.removed_files += s.removed_files;
    merged.checkpoint_chain =
        std::max(merged.checkpoint_chain, s.checkpoint_chain);
  }

  // Clock reconciliation: a crash between per-shard WAL commits leaves
  // laggards one transition behind. Tick them forward so metric temporal
  // operators agree on the clock again; the caught-up tick's verdicts are
  // dropped (the leading shards reported that transition before the
  // crash).
  Timestamp max_time = 0;
  for (ConstraintMonitor* m : inners) {
    max_time = std::max(max_time, m->current_time());
  }
  for (ConstraintMonitor* m : inners) {
    if (m->current_time() == max_time) continue;
    RTIC_LOG(Warning) << "sharded recovery: inner monitor at t="
                      << m->current_time() << " lags the fleet at t="
                      << max_time << " (torn cross-shard write); ticking "
                      << "forward";
    RTIC_RETURN_IF_ERROR(m->Tick(max_time).status());
  }
  current_time_ = max_time;
  transition_count_ = 0;
  for (ConstraintMonitor* m : inners) {
    transition_count_ = std::max(transition_count_, m->transition_count());
  }

  // Reconstruct merged per-constraint counters. A shard counts the
  // transitions at which IT saw a violation; the merged count is the
  // number of transitions at which ANY shard did — not recoverable
  // exactly from per-shard totals, so take the max (a lower bound; the
  // coordinator's counters are exact).
  std::vector<std::map<std::string, ConstraintStats>> shard_stats;
  for (const auto& shard : shards_) {
    std::map<std::string, ConstraintStats> by_name;
    for (ConstraintStats& s : shard->Stats()) by_name[s.name] = s;
    shard_stats.push_back(std::move(by_name));
  }
  std::map<std::string, ConstraintStats> coord_stats;
  if (coordinator_.active()) {
    for (ConstraintStats& s : coordinator_.monitor()->Stats()) {
      coord_stats[s.name] = s;
    }
  }
  total_violations_ = 0;
  for (Entry& e : entries_) {
    e.transitions = 0;
    e.violations = 0;
    if (e.cls.local()) {
      for (const auto& by_name : shard_stats) {
        auto it = by_name.find(e.name);
        if (it == by_name.end()) continue;
        e.transitions = std::max(e.transitions, it->second.transitions);
        e.violations = std::max(e.violations, it->second.violations);
      }
    } else {
      auto it = coord_stats.find(e.name);
      if (it != coord_stats.end()) {
        e.transitions = it->second.transitions;
        e.violations = it->second.violations;
      }
    }
    total_violations_ += e.violations;
  }

  recovered_ = true;
  return merged;
}

Result<std::vector<Violation>> ShardedMonitor::ApplyUpdate(
    const UpdateBatch& batch) {
  if (durable() && !recovered_) {
    return Status::FailedPrecondition(
        "durable monitor: call Recover() before applying updates");
  }
  if (batch.timestamp() <= current_time_) {
    return Status::InvalidArgument(
        "batch timestamp " + std::to_string(batch.timestamp()) +
        " does not advance the clock past " + std::to_string(current_time_));
  }
  // Validate against shard 0 (every shard holds identical schemas) so an
  // invalid batch is rejected before ANY shard applies anything.
  RTIC_RETURN_IF_ERROR(batch.Validate(shards_[0]->database()));
  RTIC_ASSIGN_OR_RETURN(std::vector<UpdateBatch> routed,
                        RouteBatch(batch, partitioner_));

  const std::size_t tasks = shards_.size() + (coordinator_.active() ? 1 : 0);
  std::vector<std::optional<Result<std::vector<Violation>>>> results(tasks);
  auto run = [&](std::size_t i) {
    if (i < shards_.size()) {
      results[i] = shards_[i]->ApplyUpdate(routed[i]);
    } else {
      results[i] = coordinator_.monitor()->ApplyUpdate(batch);
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(tasks, run);
  } else {
    for (std::size_t i = 0; i < tasks; ++i) run(i);
  }
  for (const auto& r : results) {
    if (!r->ok()) return r->status();
  }

  current_time_ = batch.timestamp();
  ++transition_count_;

  std::vector<std::vector<Violation>> shard_reports;
  shard_reports.reserve(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    shard_reports.push_back(std::move(*results[k]).value());
  }
  std::vector<Violation> coord_report;
  if (coordinator_.active()) {
    coord_report = std::move(*results.back()).value();
  }

  std::vector<Violation> out;
  for (Entry& e : entries_) {
    ++e.transitions;
    if (e.cls.local()) {
      Violation merged;
      if (MergeShardViolations(e.name, shard_reports, options_.max_witnesses,
                               &merged)) {
        ++e.violations;
        ++total_violations_;
        out.push_back(std::move(merged));
      }
    } else {
      for (Violation& v : coord_report) {
        if (v.constraint_name != e.name) continue;
        ++e.violations;
        ++total_violations_;
        out.push_back(std::move(v));
        break;
      }
    }
  }
  return out;
}

Result<std::vector<Violation>> ShardedMonitor::Tick(Timestamp t) {
  return ApplyUpdate(UpdateBatch(t));
}

std::vector<std::string> ShardedMonitor::ConstraintNames() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::vector<ConstraintStats> ShardedMonitor::Stats() const {
  std::vector<std::map<std::string, ConstraintStats>> shard_stats;
  for (const auto& shard : shards_) {
    std::map<std::string, ConstraintStats> by_name;
    for (ConstraintStats& s : shard->Stats()) by_name[s.name] = s;
    shard_stats.push_back(std::move(by_name));
  }
  std::map<std::string, ConstraintStats> coord_stats;
  if (coordinator_.active()) {
    for (ConstraintStats& s : coordinator_.monitor()->Stats()) {
      coord_stats[s.name] = s;
    }
  }

  std::vector<ConstraintStats> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    ConstraintStats s;
    s.name = e.name;
    s.transitions = e.transitions;
    s.violations = e.violations;
    if (e.cls.local()) {
      for (const auto& by_name : shard_stats) {
        auto it = by_name.find(e.name);
        if (it == by_name.end()) continue;
        s.total_check_micros += it->second.total_check_micros;
        s.max_check_micros =
            std::max(s.max_check_micros, it->second.max_check_micros);
        // Shard checks run concurrently, so the transition's wall time is
        // the slowest shard's — summing would mix per-shard wall times into
        // a number no single check ever took (and disagree with
        // max_check_micros, which already takes the max).
        s.last_check_micros =
            std::max(s.last_check_micros, it->second.last_check_micros);
        s.storage_rows += it->second.storage_rows;
        s.shared_subplans =
            std::max(s.shared_subplans, it->second.shared_subplans);
        // Each shard's aux tables cover its own key partition; the
        // constraint's totals are their sums.
        s.aux_valuations += it->second.aux_valuations;
        s.aux_anchors += it->second.aux_anchors;
      }
    } else {
      auto it = coord_stats.find(e.name);
      if (it != coord_stats.end()) {
        s.total_check_micros = it->second.total_check_micros;
        s.max_check_micros = it->second.max_check_micros;
        s.last_check_micros = it->second.last_check_micros;
        s.storage_rows = it->second.storage_rows;
        s.shared_subplans = it->second.shared_subplans;
        s.aux_valuations = it->second.aux_valuations;
        s.aux_anchors = it->second.aux_anchors;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t ShardedMonitor::TotalStorageRows() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->TotalStorageRows();
  if (coordinator_.active()) {
    total += coordinator_.monitor()->TotalStorageRows();
  }
  return total;
}

Result<Classification> ShardedMonitor::ClassificationFor(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e.cls;
  }
  return Status::NotFound("no such constraint: " + name);
}

std::size_t ShardedMonitor::PartitionLocalCount() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.cls.local() ? 1 : 0;
  return n;
}

double ShardedMonitor::PartitionLocalFraction() const {
  if (entries_.empty()) return 1.0;
  return static_cast<double>(PartitionLocalCount()) /
         static_cast<double>(entries_.size());
}

}  // namespace shard
}  // namespace rtic
