#include "shard/coordinator.h"

#include <algorithm>

namespace rtic {
namespace shard {

bool MergeShardViolations(const std::string& name,
                          const std::vector<std::vector<Violation>>& per_shard,
                          std::size_t max_witnesses, Violation* merged) {
  bool found = false;
  for (const std::vector<Violation>& report : per_shard) {
    for (const Violation& v : report) {
      if (v.constraint_name != name) continue;
      if (!found) {
        found = true;
        merged->constraint_name = v.constraint_name;
        merged->timestamp = v.timestamp;
        merged->witness_columns = v.witness_columns;
        merged->witnesses.clear();
      }
      merged->witnesses.insert(merged->witnesses.end(), v.witnesses.begin(),
                               v.witnesses.end());
    }
  }
  if (!found) return false;
  // Shards hold disjoint key ranges, so rows collide only for constraints
  // that evaluate identically everywhere (no-atom formulas); sort+unique
  // restores the single-monitor list in both cases.
  std::sort(merged->witnesses.begin(), merged->witnesses.end());
  merged->witnesses.erase(
      std::unique(merged->witnesses.begin(), merged->witnesses.end()),
      merged->witnesses.end());
  if (merged->witnesses.size() > max_witnesses) {
    merged->witnesses.resize(max_witnesses);
  }
  return true;
}

Status CrossShardCoordinator::Activate(const std::vector<TableDef>& tables) {
  if (monitor_ != nullptr) return Status::OK();
  auto monitor = std::make_unique<ConstraintMonitor>(options_);
  for (const TableDef& t : tables) {
    RTIC_RETURN_IF_ERROR(monitor->CreateTable(t.name, t.schema));
  }
  monitor_ = std::move(monitor);
  return Status::OK();
}

Status CrossShardCoordinator::Seed(
    const std::vector<const Database*>& shard_dbs, Timestamp t) {
  if (monitor_ == nullptr) {
    return Status::FailedPrecondition("coordinator not active");
  }
  if (!monitor_->ConstraintNames().empty()) {
    return Status::Internal(
        "coordinator seeding must precede constraint registration");
  }
  UpdateBatch seed(t);
  for (const Database* db : shard_dbs) {
    for (const std::string& table : db->TableNames()) {
      RTIC_ASSIGN_OR_RETURN(const Table* rows, db->GetTable(table));
      for (const Tuple& row : rows->rows()) {
        seed.Insert(table, row);
      }
    }
  }
  return monitor_->ApplyUpdate(seed).status();
}

Status CrossShardCoordinator::CreateTable(const std::string& name,
                                          Schema schema) {
  if (monitor_ == nullptr) {
    return Status::FailedPrecondition("coordinator not active");
  }
  return monitor_->CreateTable(name, std::move(schema));
}

}  // namespace shard
}  // namespace rtic
