// Constraint classification for the sharded monitor: decide, at
// registration time and by static formula analysis alone, whether a
// constraint can be checked entirely inside each shard (partition-local)
// or needs the cross-shard coordinator's global state.
//
// A constraint is PARTITION-LOCAL when its violation set provably
// decomposes into a disjoint union of per-shard violation sets under the
// table partitioning. The sufficient condition implemented here:
//
//   1. The formula is a (possibly empty) outermost `forall` chain over a
//      body with no further occurrence of the key variable as a binder.
//   2. Every atom R(t1..tk) carries the SAME outer-forall variable x at
//      R's partition-key position (so for any binding of x, every tuple
//      any atom can match — now or anywhere in the past — lives on shard
//      hash(x)).
//   3. Counterexample evaluation is provably active-domain-free: a
//      static mirror of fo/eval.cc's strategy shows every variable's
//      bindings come from the co-located atoms themselves, never from
//      the (per-shard, hence partial) active domain. The analyzer's
//      range-restriction warnings are NOT sufficient here — they cover
//      only `exists`-bound variables, while the evaluator's complement
//      and extension fallbacks also fire for universally quantified
//      ones (e.g. `forall x: P(x)` falsifies over the domain) without
//      any warning.
//
// Under 1-3, for a fixed key value v the subformula's satisfaction at
// every state depends only on tuples keyed v — all routed to shard
// hash(v) at every timestamp (shards tick in lockstep) — so the global
// counterexample set is the disjoint union of the shards' sets and a
// merge in sorted order reproduces the unsharded verdict byte for byte.
// Formulas with no atoms at all are also local: they evaluate
// identically on every shard and the merge deduplicates.
//
// Everything else (atoms keyed by different variables, constants at key
// positions, `exists`-rooted formulas, active-domain fallback) is
// CROSS-SHARD and is routed to the coordinator. The classifier is
// deliberately conservative: a wrong kLocal is a correctness bug, a
// wrong kCross only costs performance.

#ifndef RTIC_SHARD_CLASSIFIER_H_
#define RTIC_SHARD_CLASSIFIER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "shard/partitioner.h"
#include "tl/analyzer.h"
#include "tl/ast.h"

namespace rtic {
namespace shard {

enum class ShardClass {
  kPartitionLocal,  // checked independently inside every shard
  kCrossShard,      // checked by the coordinator over global state
};

const char* ShardClassToString(ShardClass c);

/// One constraint's verdict, with the evidence.
struct Classification {
  ShardClass cls = ShardClass::kCrossShard;

  /// The common partition-key variable (kPartitionLocal with atoms only).
  std::string key_var;

  /// Why the constraint classified the way it did (one line, for logs,
  /// tests, and the E16 report).
  std::string reason;

  bool local() const { return cls == ShardClass::kPartitionLocal; }
};

/// All atoms of `formula` in syntax order (pre-order walk).
std::vector<const tl::Formula*> CollectAtoms(const tl::Formula& formula);

/// Classifies `formula` against the partition map. Fails only if an atom
/// references a table the partitioner does not know (callers register
/// tables first; the analyzer catches unknown predicates earlier with a
/// better message). `analysis` must be the analysis of this exact tree.
Result<Classification> Classify(const tl::Formula& formula,
                                const tl::Analysis& analysis,
                                const Partitioner& partitioner);

}  // namespace shard
}  // namespace rtic

#endif  // RTIC_SHARD_CLASSIFIER_H_
