#include "shard/partitioner.h"

#include <cstring>

namespace rtic {
namespace shard {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void FnvMix(std::uint64_t* h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t StableValueHash(const Value& value) {
  std::uint64_t h = kFnvOffset;
  const auto tag = static_cast<unsigned char>(value.type());
  FnvMix(&h, &tag, 1);
  switch (value.type()) {
    case ValueType::kInt64: {
      // Fixed-width little-endian payload, independent of host byte order.
      std::uint64_t v = static_cast<std::uint64_t>(value.AsInt64());
      unsigned char bytes[8];
      for (int i = 0; i < 8; ++i) bytes[i] = (v >> (8 * i)) & 0xff;
      FnvMix(&h, bytes, 8);
      break;
    }
    case ValueType::kDouble: {
      std::uint64_t v = 0;
      double d = value.AsDouble();
      std::memcpy(&v, &d, sizeof(v));
      unsigned char bytes[8];
      for (int i = 0; i < 8; ++i) bytes[i] = (v >> (8 * i)) & 0xff;
      FnvMix(&h, bytes, 8);
      break;
    }
    case ValueType::kString: {
      const std::string& s = value.AsString();
      FnvMix(&h, s.data(), s.size());
      break;
    }
    case ValueType::kBool: {
      const unsigned char b = value.AsBool() ? 1 : 0;
      FnvMix(&h, &b, 1);
      break;
    }
  }
  return h;
}

Status Partitioner::AddTable(const std::string& table, const Schema& schema,
                             std::size_t key_column) {
  if (shard_count_ == 0) {
    return Status::InvalidArgument("partitioner: shard_count must be > 0");
  }
  if (key_column >= schema.size()) {
    return Status::InvalidArgument(
        "partition key column " + std::to_string(key_column) +
        " out of range for table " + table + " with " +
        std::to_string(schema.size()) + " columns");
  }
  auto [it, inserted] =
      tables_.emplace(table, Entry{key_column, schema.size()});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("partition key for table " + table +
                                 " already declared");
  }
  return Status::OK();
}

bool Partitioner::HasTable(const std::string& table) const {
  return tables_.count(table) > 0;
}

Result<std::size_t> Partitioner::KeyColumn(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no partition key declared for table " + table);
  }
  return it->second.key_column;
}

Result<std::size_t> Partitioner::ShardOf(const std::string& table,
                                         const Tuple& tuple) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no partition key declared for table " + table);
  }
  if (tuple.size() != it->second.arity) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match table " + table + " (" +
        std::to_string(it->second.arity) + " columns)");
  }
  return ShardOfKey(tuple.at(it->second.key_column));
}

std::vector<std::string> Partitioner::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) out.push_back(name);
  return out;
}

}  // namespace shard
}  // namespace rtic
