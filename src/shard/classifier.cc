#include "shard/classifier.h"

#include <algorithm>

namespace rtic {
namespace shard {
namespace {

using tl::Formula;
using tl::FormulaKind;

void CollectAtomsInto(const Formula& f, std::vector<const Formula*>* out) {
  if (f.kind() == FormulaKind::kAtom) {
    out->push_back(&f);
    return;
  }
  for (std::size_t i = 0; i < f.num_children(); ++i) {
    CollectAtomsInto(f.child(i), out);
  }
}

/// True iff any quantifier in `f` (at any depth) binds `var`.
bool RebindsVar(const Formula& f, const std::string& var) {
  if (f.kind() == FormulaKind::kExists || f.kind() == FormulaKind::kForall) {
    const auto& vars = f.bound_vars();
    if (std::find(vars.begin(), vars.end(), var) != vars.end()) return true;
  }
  for (std::size_t i = 0; i < f.num_children(); ++i) {
    if (RebindsVar(f.child(i), var)) return true;
  }
  return false;
}

/// Static mirror of fo/eval.cc's evaluation strategy, answering one
/// question: can evaluating this (sub)formula ever touch the active
/// domain (DomainRelation / ExtendToColumns / a variable comparison
/// materialized over the domain)? The analyzer's range-restriction
/// warnings cover only `exists`-bound variables; the evaluator's
/// complement and extension fallbacks fire in more places (bare atoms in
/// falsifying position, implications whose consequent introduces
/// variables, ...), and a per-shard active domain is a strict subset of
/// the global one — so any domain touch makes per-shard evaluation
/// diverge from the unsharded run and forces kCrossShard.
///
/// The four predicates correspond 1:1 to Eval / BadSet / FilterSat /
/// FilterFalse in fo/eval.cc; each `false` case below is a code path
/// there that calls DomainRelation or ExtendToColumns with a non-empty
/// column set. `kEventually` mirrors the response-constraint engine,
/// which matches rows of the response subformula (never complements it).
class DomainSafety {
 public:
  explicit DomainSafety(const tl::Analysis& analysis) : analysis_(analysis) {}

  /// Why the formula was ruled unsafe (set by the first failing check).
  const std::string& why() const { return why_; }

  bool EvalSafe(const Formula& f) {
    switch (f.kind()) {
      case FormulaKind::kBoolConst:
      case FormulaKind::kAtom:
        return true;
      case FormulaKind::kComparison:
        // Eval of a comparison with a variable materializes the domain.
        return ClosedOr(f, "comparison '" + f.ToString() +
                               "' evaluated over the active domain");
      case FormulaKind::kNot:
        return FalsSafe(f.child(0));
      case FormulaKind::kAnd:
        return AndSafe(f);
      case FormulaKind::kOr:
        // EvalOr extends both sides to the union of their variables.
        return EvalSafe(f.child(0)) && EvalSafe(f.child(1)) &&
               SameVars(f.child(0), f.child(1),
                        "'or' branches bind different variables; the "
                        "evaluator pads the difference from the active "
                        "domain");
      case FormulaKind::kImplies:
        // Eval(a -> b) complements the falsification set over the domain.
        return ClosedOr(f, "implication '" + f.ToString() +
                               "' satisfied-set needs a domain complement") &&
               FalsSafe(f);
      case FormulaKind::kExists:
        return EvalSafe(f.child(0));
      case FormulaKind::kForall:
        return ClosedOr(f, "nested 'forall' satisfied-set needs a domain "
                           "complement") &&
               FalsSafe(f.child(0));
      case FormulaKind::kPrevious:
      case FormulaKind::kOnce:
      case FormulaKind::kHistorically:
      case FormulaKind::kEventually:
        return EvalSafe(f.child(0));
      case FormulaKind::kSince:
        return EvalSafe(f.child(0)) && EvalSafe(f.child(1));
    }
    return Fail("unhandled formula kind");
  }

  bool FalsSafe(const Formula& f) {
    switch (f.kind()) {
      case FormulaKind::kBoolConst:
        return true;
      case FormulaKind::kNot:
        return EvalSafe(f.child(0));
      case FormulaKind::kImplies: {
        const Formula& a = f.child(0);
        const Formula& b = f.child(1);
        // falsify(a -> b): generate Eval(a), extend to free(f), filter by
        // b failing. The extension draws any variable b introduces from
        // the active domain.
        if (!EvalSafe(a)) return false;
        if (!Covers(analysis_.FreeVars(a), analysis_.FreeVars(f))) {
          return Fail("consequent of '" + f.ToString() +
                      "' uses variables the antecedent does not bind; the "
                      "evaluator pads them from the active domain");
        }
        return FilterFalseSafe(b);
      }
      case FormulaKind::kAnd:
        // falsify(a and b) extends each side's falsifications to the
        // union of variables.
        return FalsSafe(f.child(0)) && FalsSafe(f.child(1)) &&
               SameVars(f.child(0), f.child(1),
                        "'and' falsifications pad differing variables from "
                        "the active domain");
      case FormulaKind::kOr: {
        const Formula& a = f.child(0);
        const Formula& b = f.child(1);
        const auto& fa = analysis_.FreeVars(a);
        const auto& fb = analysis_.FreeVars(b);
        if (Covers(fa, fb)) return FalsSafe(a) && FilterFalseSafe(b);
        if (Covers(fb, fa)) return FalsSafe(b) && FilterFalseSafe(a);
        return FalsSafe(a) && FalsSafe(b);  // natural join, no extension
      }
      case FormulaKind::kForall:
        return FalsSafe(f.child(0));
      case FormulaKind::kComparison:
        return ClosedOr(f, "comparison '" + f.ToString() +
                               "' falsified over the active domain");
      case FormulaKind::kAtom:
      case FormulaKind::kExists:
      case FormulaKind::kPrevious:
      case FormulaKind::kOnce:
      case FormulaKind::kHistorically:
      case FormulaKind::kSince:
        // Genuine complement: domain product minus the satisfaction set.
        return ClosedOr(f, "falsifying '" + f.ToString() +
                               "' complements over the active domain") &&
               EvalSafe(f);
      case FormulaKind::kEventually:
        return EvalSafe(f.child(0));
    }
    return Fail("unhandled formula kind");
  }

  bool FilterSatSafe(const Formula& g) {
    switch (g.kind()) {
      case FormulaKind::kBoolConst:
      case FormulaKind::kComparison:  // filters bound rows, no domain
        return true;
      case FormulaKind::kNot:
        return FilterFalseSafe(g.child(0));
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        return FilterSatSafe(g.child(0)) && FilterSatSafe(g.child(1));
      case FormulaKind::kImplies:
        return FilterFalseSafe(g.child(0)) && FilterSatSafe(g.child(1));
      case FormulaKind::kForall:
        return FalsSafe(g.child(0));  // anti-join against the bad set
      case FormulaKind::kExists:
        return EvalSafe(g.child(0));  // semi-join against the body
      case FormulaKind::kAtom:
      case FormulaKind::kPrevious:
      case FormulaKind::kOnce:
      case FormulaKind::kHistorically:
      case FormulaKind::kSince:
      case FormulaKind::kEventually:
        return EvalSafe(g);  // semi-join against the satisfaction set
    }
    return Fail("unhandled formula kind");
  }

  bool FilterFalseSafe(const Formula& g) {
    switch (g.kind()) {
      case FormulaKind::kBoolConst:
      case FormulaKind::kComparison:
        return true;
      case FormulaKind::kNot:
        return FilterSatSafe(g.child(0));
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        return FilterFalseSafe(g.child(0)) && FilterFalseSafe(g.child(1));
      case FormulaKind::kImplies:
        return FilterSatSafe(g.child(0)) && FilterFalseSafe(g.child(1));
      case FormulaKind::kForall:
        return FalsSafe(g.child(0));  // semi-join against the bad set
      case FormulaKind::kExists:
        return EvalSafe(g.child(0));  // anti-join against the body
      case FormulaKind::kAtom:
      case FormulaKind::kPrevious:
      case FormulaKind::kOnce:
      case FormulaKind::kHistorically:
      case FormulaKind::kSince:
        return EvalSafe(g);  // anti-join against the satisfaction set
      case FormulaKind::kEventually:
        // Response engine: obligations discharge by matching rows of the
        // response subformula; nothing is complemented.
        return EvalSafe(g.child(0));
    }
    return Fail("unhandled formula kind");
  }

 private:
  // Mirror of EvalAnd: generator conjuncts join bottom-up; every other
  // conjunct must be covered by generator-bound variables or the
  // evaluator pads the gap from the active domain.
  bool AndSafe(const Formula& f) {
    std::vector<const Formula*> conjuncts;
    FlattenAnd(f, &conjuncts);
    std::vector<std::string> bound;
    for (const Formula* c : conjuncts) {
      if (!IsGenerator(c->kind())) continue;
      if (!EvalSafe(*c)) return false;
      const auto& vars = analysis_.FreeVars(*c);
      bound.insert(bound.end(), vars.begin(), vars.end());
    }
    std::sort(bound.begin(), bound.end());
    bound.erase(std::unique(bound.begin(), bound.end()), bound.end());
    for (const Formula* c : conjuncts) {
      if (IsGenerator(c->kind())) continue;
      if (!Covers(bound, analysis_.FreeVars(*c))) {
        return Fail("conjunct '" + c->ToString() +
                    "' uses variables no atom in the conjunction binds; "
                    "the evaluator pads them from the active domain");
      }
      if (!FilterSatSafe(*c)) return false;
    }
    return true;
  }

  static void FlattenAnd(const Formula& f, std::vector<const Formula*>* out) {
    if (f.kind() == FormulaKind::kAnd) {
      FlattenAnd(f.child(0), out);
      FlattenAnd(f.child(1), out);
    } else {
      out->push_back(&f);
    }
  }

  static bool IsGenerator(FormulaKind kind) {
    switch (kind) {
      case FormulaKind::kAtom:
      case FormulaKind::kExists:
      case FormulaKind::kOr:
      case FormulaKind::kBoolConst:
      case FormulaKind::kPrevious:
      case FormulaKind::kOnce:
      case FormulaKind::kHistorically:
      case FormulaKind::kSince:
        return true;
      default:
        return false;
    }
  }

  static bool Covers(const std::vector<std::string>& big,
                     const std::vector<std::string>& small) {
    for (const std::string& v : small) {
      if (!std::binary_search(big.begin(), big.end(), v)) return false;
    }
    return true;
  }

  bool SameVars(const Formula& a, const Formula& b, const std::string& msg) {
    const auto& fa = analysis_.FreeVars(a);
    const auto& fb = analysis_.FreeVars(b);
    if (Covers(fa, fb) && Covers(fb, fa)) return true;
    return Fail(msg);
  }

  bool ClosedOr(const Formula& f, const std::string& msg) {
    if (analysis_.FreeVars(f).empty()) return true;
    return Fail(msg);
  }

  bool Fail(const std::string& msg) {
    if (why_.empty()) why_ = msg;
    return false;
  }

  const tl::Analysis& analysis_;
  std::string why_;
};

Classification Cross(std::string reason) {
  Classification c;
  c.cls = ShardClass::kCrossShard;
  c.reason = std::move(reason);
  return c;
}

Classification Local(std::string key_var, std::string reason) {
  Classification c;
  c.cls = ShardClass::kPartitionLocal;
  c.key_var = std::move(key_var);
  c.reason = std::move(reason);
  return c;
}

}  // namespace

const char* ShardClassToString(ShardClass c) {
  switch (c) {
    case ShardClass::kPartitionLocal:
      return "partition-local";
    case ShardClass::kCrossShard:
      return "cross-shard";
  }
  return "?";
}

std::vector<const tl::Formula*> CollectAtoms(const tl::Formula& formula) {
  std::vector<const tl::Formula*> out;
  CollectAtomsInto(formula, &out);
  return out;
}

Result<Classification> Classify(const tl::Formula& formula,
                                const tl::Analysis& analysis,
                                const Partitioner& partitioner) {
  // Shadowing breaks the single-binder reasoning below (an inner atom's
  // key occurrence could refer to a different binder of the same name).
  for (const std::string& w : analysis.warnings()) {
    if (w.find("shadows") != std::string::npos) {
      return Cross("quantifier shadowing: " + w);
    }
  }

  // Rule 3: counterexample evaluation must never touch the active
  // domain. Per-shard active domains are strict subsets of the global
  // one, so a domain-dependent formula evaluates differently inside a
  // shard than over the full database. This subsumes the analyzer's
  // range-restriction warnings (which cover only `exists`-bound
  // variables) — the evaluator's complement/extension fallbacks fire for
  // universally quantified variables too, silently.
  DomainSafety safety(analysis);
  const tl::Formula* body = &formula;
  std::vector<std::string> outer_vars;
  while (body->kind() == tl::FormulaKind::kForall) {
    outer_vars.insert(outer_vars.end(), body->bound_vars().begin(),
                      body->bound_vars().end());
    body = &body->child(0);
  }
  if (!safety.FalsSafe(*body)) {
    return Cross("active-domain dependence: " + safety.why());
  }

  std::vector<const tl::Formula*> atoms = CollectAtoms(formula);
  if (atoms.empty()) {
    // No atoms and domain-free (checked above): a constant under any
    // database, identical on every shard.
    return Local("", "no atoms; evaluates identically on every shard");
  }

  // Rule 1: the counterexample search ranges over an outermost forall
  // chain; a closed formula with atoms but no outer forall (e.g. an
  // `exists`-rooted one) is globally satisfied when ANY shard holds a
  // witness, which no single shard can decide.
  if (outer_vars.empty()) {
    return Cross("no outermost forall: per-shard verdicts do not compose");
  }

  // Rule 2: every atom keyed by one common outer-forall variable.
  std::string key_var;
  for (const tl::Formula* atom : atoms) {
    RTIC_ASSIGN_OR_RETURN(std::size_t key_col,
                          partitioner.KeyColumn(atom->predicate()));
    if (key_col >= atom->terms().size()) {
      return Status::Internal("atom " + atom->predicate() +
                              " arity below its partition key column");
    }
    const tl::Term& key_term = atom->terms()[key_col];
    if (key_term.is_constant()) {
      return Cross("atom " + atom->predicate() +
                   " has a constant at its partition-key position");
    }
    if (key_var.empty()) {
      key_var = key_term.name();
    } else if (key_var != key_term.name()) {
      return Cross("atoms keyed by different variables ('" + key_var +
                   "' vs '" + key_term.name() + "')");
    }
  }
  if (std::find(outer_vars.begin(), outer_vars.end(), key_var) ==
      outer_vars.end()) {
    return Cross("key variable '" + key_var +
                 "' is not bound by the outermost forall");
  }
  // Rule 1 tail: the key variable must have exactly one binder (the outer
  // chain); a rebinding below would decouple inner atoms from the outer
  // key. (Shadowing warnings catch the name-reuse case; this also rejects
  // a same-name forall nested under the body without shadowing an atom.)
  if (RebindsVar(*body, key_var)) {
    return Cross("key variable '" + key_var + "' is re-quantified in the body");
  }

  return Local(key_var, "all " + std::to_string(atoms.size()) +
                            " atoms keyed by forall variable '" + key_var +
                            "'");
}

}  // namespace shard
}  // namespace rtic
