// Abstract syntax of the constraint language: first-order metric past
// temporal logic (Past MTL) over database atoms.
//
//   φ ::= R(t̄) | t ⊙ t | true | false
//       | not φ | φ and φ | φ or φ | φ implies φ
//       | exists x̄: φ | forall x̄: φ
//       | previous[I] φ | once[I] φ | historically[I] φ | φ since[I] φ
//
// Formulas are immutable trees owned through unique_ptr; Clone() produces
// deep copies. Engines identify temporal subformulas by node address, so a
// compiled engine owns its own clone of the (normalized) constraint.

#ifndef RTIC_TL_AST_H_
#define RTIC_TL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/interval.h"
#include "types/value.h"

namespace rtic {
namespace tl {

/// A term: either a variable or a typed constant.
class Term {
 public:
  /// Variable reference.
  static Term Var(std::string name);

  /// Typed constant.
  static Term Const(Value value);

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }

  /// Variable name; requires is_variable().
  const std::string& name() const { return name_; }

  /// Constant value; requires is_constant().
  const Value& value() const { return value_; }

  bool operator==(const Term& o) const;

  /// Source form: variable name or constant literal.
  std::string ToString() const;

 private:
  bool is_variable_ = false;
  std::string name_;
  Value value_;
};

/// Comparison operators usable between terms.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Token text of a comparison operator ("=", "!=", "<", "<=", ">", ">=").
const char* CmpOpToString(CmpOp op);

/// Applies the comparison to an already-computed three-way result.
bool EvalCmp(CmpOp op, int three_way);

/// The negated operator (kEq <-> kNe, kLt <-> kGe, kLe <-> kGt).
CmpOp NegateCmp(CmpOp op);

/// Node discriminator.
enum class FormulaKind {
  kBoolConst,     // true / false
  kAtom,          // R(t1, ..., tk)
  kComparison,    // t1 op t2
  kNot,           // not φ
  kAnd,           // φ and ψ
  kOr,            // φ or ψ
  kImplies,       // φ implies ψ
  kExists,        // exists x1..xk: φ
  kForall,        // forall x1..xk: φ
  kPrevious,      // previous[I] φ
  kOnce,          // once[I] φ        (◆_I)
  kHistorically,  // historically[I] φ (■_I)
  kSince,         // φ since[I] ψ
  kEventually,    // eventually[I] φ  (◇_I, bounded future; response
                  // constraints only — see engines/response)
};

/// Stable name of a formula kind (for diagnostics).
const char* FormulaKindToString(FormulaKind kind);

/// True for the four PAST metric temporal kinds (eventually is future).
bool IsTemporal(FormulaKind kind);

/// True for the bounded-future kind (kEventually).
bool IsFutureTemporal(FormulaKind kind);

class Formula;
using FormulaPtr = std::unique_ptr<Formula>;

/// Immutable formula tree node.
class Formula {
 public:
  // -- Factories ----------------------------------------------------------
  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr Atom(std::string predicate, std::vector<Term> terms);
  static FormulaPtr Comparison(Term lhs, CmpOp op, Term rhs);
  static FormulaPtr Not(FormulaPtr child);
  static FormulaPtr And(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Or(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Implies(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Exists(std::vector<std::string> vars, FormulaPtr body);
  static FormulaPtr Forall(std::vector<std::string> vars, FormulaPtr body);
  static FormulaPtr Previous(TimeInterval interval, FormulaPtr body);
  static FormulaPtr Once(TimeInterval interval, FormulaPtr body);
  static FormulaPtr Historically(TimeInterval interval, FormulaPtr body);
  static FormulaPtr Since(TimeInterval interval, FormulaPtr lhs,
                          FormulaPtr rhs);
  static FormulaPtr Eventually(TimeInterval interval, FormulaPtr body);

  // -- Accessors (each requires the matching kind) -------------------------
  FormulaKind kind() const { return kind_; }

  /// kBoolConst payload.
  bool bool_value() const { return bool_value_; }

  /// kAtom payload.
  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& terms() const { return terms_; }

  /// kComparison payload: terms()[0] op terms()[1].
  CmpOp cmp_op() const { return cmp_op_; }

  /// Quantifier payload.
  const std::vector<std::string>& bound_vars() const { return bound_vars_; }

  /// Temporal payload.
  const TimeInterval& interval() const { return interval_; }

  /// Children. Unary kinds: child(0). Binary: child(0), child(1).
  /// since: child(0)=lhs, child(1)=rhs.
  std::size_t num_children() const { return children_.size(); }
  const Formula& child(std::size_t i) const { return *children_[i]; }

  /// Deep copy.
  FormulaPtr Clone() const;

  /// Structural equality (kind, payloads, children).
  bool Equals(const Formula& o) const;

  /// Parseable source form (see printer.cc for the grammar's precedence).
  std::string ToString() const;

 private:
  Formula() = default;

  FormulaKind kind_ = FormulaKind::kBoolConst;
  bool bool_value_ = false;
  std::string predicate_;
  std::vector<Term> terms_;
  CmpOp cmp_op_ = CmpOp::kEq;
  std::vector<std::string> bound_vars_;
  TimeInterval interval_;
  std::vector<FormulaPtr> children_;
};

}  // namespace tl
}  // namespace rtic

#endif  // RTIC_TL_AST_H_
