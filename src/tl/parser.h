// Recursive-descent parser for the constraint language.
//
// Precedence, loosest to tightest:
//   implies (right-assoc)  <  or  <  and  <  since (left-assoc)  <  unary
// Unary operators (not, previous, once, historically) and quantifiers bind
// tightly; quantifier bodies extend maximally to the right after the colon:
//
//   forall e, s: Emp(e, s) implies s >= 0
//   forall a: Ack(a) implies once[0, 10] Raise(a)
//   forall x: Open(x) since[1, inf] Init(x) implies Live(x)
//
// Intervals: [lo, hi] with hi an integer or `inf`; omitted means [0, inf].

#ifndef RTIC_TL_PARSER_H_
#define RTIC_TL_PARSER_H_

#include <string>

#include "common/result.h"
#include "tl/ast.h"

namespace rtic {
namespace tl {

/// Parses a complete formula; fails on trailing input.
Result<FormulaPtr> ParseFormula(const std::string& input);

}  // namespace tl
}  // namespace rtic

#endif  // RTIC_TL_PARSER_H_
