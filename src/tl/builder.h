// Fluent C++ construction of constraint formulas — the programmatic
// alternative to the textual language, for applications that generate
// constraints (the benchmark harness, config-driven policies, ...):
//
//   using namespace rtic::tl::build;
//   FormulaPtr f = Forall({"e", "s", "s0"},
//       (Atom("Emp", {V("e"), V("s")}) &&
//        Previous(Atom("Emp", {V("e"), V("s0")})))
//       >>= Ge(V("s"), V("s0")));
//
// Operators: && (and), || (or), ! (not), >>= (implies; chosen for its
// right-associativity matching the language). All helpers are thin wrappers
// over the Formula factories, so built trees are indistinguishable from
// parsed ones.

#ifndef RTIC_TL_BUILDER_H_
#define RTIC_TL_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "tl/ast.h"

namespace rtic {
namespace tl {
namespace build {

// ---- terms -----------------------------------------------------------------

/// Variable term.
inline Term V(std::string name) { return Term::Var(std::move(name)); }

/// Constant terms.
inline Term C(std::int64_t v) { return Term::Const(Value::Int64(v)); }
inline Term C(double v) { return Term::Const(Value::Double(v)); }
inline Term C(const char* v) { return Term::Const(Value::String(v)); }
inline Term C(std::string v) {
  return Term::Const(Value::String(std::move(v)));
}
inline Term C(bool v) { return Term::Const(Value::Bool(v)); }

// ---- leaves -----------------------------------------------------------------

inline FormulaPtr True() { return Formula::True(); }
inline FormulaPtr False() { return Formula::False(); }

inline FormulaPtr Atom(std::string predicate, std::vector<Term> terms) {
  return Formula::Atom(std::move(predicate), std::move(terms));
}

inline FormulaPtr Eq(Term a, Term b) {
  return Formula::Comparison(std::move(a), CmpOp::kEq, std::move(b));
}
inline FormulaPtr Ne(Term a, Term b) {
  return Formula::Comparison(std::move(a), CmpOp::kNe, std::move(b));
}
inline FormulaPtr Lt(Term a, Term b) {
  return Formula::Comparison(std::move(a), CmpOp::kLt, std::move(b));
}
inline FormulaPtr Le(Term a, Term b) {
  return Formula::Comparison(std::move(a), CmpOp::kLe, std::move(b));
}
inline FormulaPtr Gt(Term a, Term b) {
  return Formula::Comparison(std::move(a), CmpOp::kGt, std::move(b));
}
inline FormulaPtr Ge(Term a, Term b) {
  return Formula::Comparison(std::move(a), CmpOp::kGe, std::move(b));
}

// ---- connectives -------------------------------------------------------------

inline FormulaPtr operator&&(FormulaPtr a, FormulaPtr b) {
  return Formula::And(std::move(a), std::move(b));
}
inline FormulaPtr operator||(FormulaPtr a, FormulaPtr b) {
  return Formula::Or(std::move(a), std::move(b));
}
inline FormulaPtr operator!(FormulaPtr a) {
  return Formula::Not(std::move(a));
}
/// Implication; >>= is right-associative like `implies`.
inline FormulaPtr operator>>=(FormulaPtr a, FormulaPtr b) {
  return Formula::Implies(std::move(a), std::move(b));
}

inline FormulaPtr Implies(FormulaPtr a, FormulaPtr b) {
  return Formula::Implies(std::move(a), std::move(b));
}

// ---- quantifiers ---------------------------------------------------------------

inline FormulaPtr Forall(std::vector<std::string> vars, FormulaPtr body) {
  return Formula::Forall(std::move(vars), std::move(body));
}
inline FormulaPtr Exists(std::vector<std::string> vars, FormulaPtr body) {
  return Formula::Exists(std::move(vars), std::move(body));
}

// ---- temporal operators -----------------------------------------------------------

inline FormulaPtr Previous(FormulaPtr body) {
  return Formula::Previous(TimeInterval::All(), std::move(body));
}
inline FormulaPtr Previous(TimeInterval i, FormulaPtr body) {
  return Formula::Previous(i, std::move(body));
}
inline FormulaPtr Once(FormulaPtr body) {
  return Formula::Once(TimeInterval::All(), std::move(body));
}
inline FormulaPtr Once(TimeInterval i, FormulaPtr body) {
  return Formula::Once(i, std::move(body));
}
inline FormulaPtr Historically(FormulaPtr body) {
  return Formula::Historically(TimeInterval::All(), std::move(body));
}
inline FormulaPtr Historically(TimeInterval i, FormulaPtr body) {
  return Formula::Historically(i, std::move(body));
}
inline FormulaPtr Since(FormulaPtr lhs, FormulaPtr rhs) {
  return Formula::Since(TimeInterval::All(), std::move(lhs), std::move(rhs));
}
inline FormulaPtr Since(TimeInterval i, FormulaPtr lhs, FormulaPtr rhs) {
  return Formula::Since(i, std::move(lhs), std::move(rhs));
}

/// Interval shorthand: Within(10) = [0, 10]; Window(2, 10) = [2, 10];
/// After(3) = [3, inf).
inline TimeInterval Within(Timestamp hi) { return TimeInterval(0, hi); }
inline TimeInterval Window(Timestamp lo, Timestamp hi) {
  return TimeInterval(lo, hi);
}
inline TimeInterval After(Timestamp lo) {
  return TimeInterval(lo, kTimeInfinity);
}

}  // namespace build
}  // namespace tl
}  // namespace rtic

#endif  // RTIC_TL_BUILDER_H_
