#include "tl/ast.h"

#include "tl/printer.h"

namespace rtic {
namespace tl {

Term Term::Var(std::string name) {
  Term t;
  t.is_variable_ = true;
  t.name_ = std::move(name);
  return t;
}

Term Term::Const(Value value) {
  Term t;
  t.is_variable_ = false;
  t.value_ = std::move(value);
  return t;
}

bool Term::operator==(const Term& o) const {
  if (is_variable_ != o.is_variable_) return false;
  if (is_variable_) return name_ == o.name_;
  return value_ == o.value_;
}

std::string Term::ToString() const {
  return is_variable_ ? name_ : value_.ToString();
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, int three_way) {
  switch (op) {
    case CmpOp::kEq:
      return three_way == 0;
    case CmpOp::kNe:
      return three_way != 0;
    case CmpOp::kLt:
      return three_way < 0;
    case CmpOp::kLe:
      return three_way <= 0;
    case CmpOp::kGt:
      return three_way > 0;
    case CmpOp::kGe:
      return three_way >= 0;
  }
  return false;
}

CmpOp NegateCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return op;
}

const char* FormulaKindToString(FormulaKind kind) {
  switch (kind) {
    case FormulaKind::kBoolConst:
      return "bool";
    case FormulaKind::kAtom:
      return "atom";
    case FormulaKind::kComparison:
      return "comparison";
    case FormulaKind::kNot:
      return "not";
    case FormulaKind::kAnd:
      return "and";
    case FormulaKind::kOr:
      return "or";
    case FormulaKind::kImplies:
      return "implies";
    case FormulaKind::kExists:
      return "exists";
    case FormulaKind::kForall:
      return "forall";
    case FormulaKind::kPrevious:
      return "previous";
    case FormulaKind::kOnce:
      return "once";
    case FormulaKind::kHistorically:
      return "historically";
    case FormulaKind::kSince:
      return "since";
    case FormulaKind::kEventually:
      return "eventually";
  }
  return "?";
}

bool IsTemporal(FormulaKind kind) {
  return kind == FormulaKind::kPrevious || kind == FormulaKind::kOnce ||
         kind == FormulaKind::kHistorically || kind == FormulaKind::kSince;
}

bool IsFutureTemporal(FormulaKind kind) {
  return kind == FormulaKind::kEventually;
}

FormulaPtr Formula::True() {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kBoolConst;
  f->bool_value_ = true;
  return f;
}

FormulaPtr Formula::False() {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kBoolConst;
  f->bool_value_ = false;
  return f;
}

FormulaPtr Formula::Atom(std::string predicate, std::vector<Term> terms) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kAtom;
  f->predicate_ = std::move(predicate);
  f->terms_ = std::move(terms);
  return f;
}

FormulaPtr Formula::Comparison(Term lhs, CmpOp op, Term rhs) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kComparison;
  f->cmp_op_ = op;
  f->terms_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::Not(FormulaPtr child) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kNot;
  f->children_.push_back(std::move(child));
  return f;
}

FormulaPtr Formula::And(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kAnd;
  f->children_.push_back(std::move(lhs));
  f->children_.push_back(std::move(rhs));
  return f;
}

FormulaPtr Formula::Or(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kOr;
  f->children_.push_back(std::move(lhs));
  f->children_.push_back(std::move(rhs));
  return f;
}

FormulaPtr Formula::Implies(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kImplies;
  f->children_.push_back(std::move(lhs));
  f->children_.push_back(std::move(rhs));
  return f;
}

FormulaPtr Formula::Exists(std::vector<std::string> vars, FormulaPtr body) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kExists;
  f->bound_vars_ = std::move(vars);
  f->children_.push_back(std::move(body));
  return f;
}

FormulaPtr Formula::Forall(std::vector<std::string> vars, FormulaPtr body) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kForall;
  f->bound_vars_ = std::move(vars);
  f->children_.push_back(std::move(body));
  return f;
}

FormulaPtr Formula::Previous(TimeInterval interval, FormulaPtr body) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kPrevious;
  f->interval_ = interval;
  f->children_.push_back(std::move(body));
  return f;
}

FormulaPtr Formula::Once(TimeInterval interval, FormulaPtr body) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kOnce;
  f->interval_ = interval;
  f->children_.push_back(std::move(body));
  return f;
}

FormulaPtr Formula::Historically(TimeInterval interval, FormulaPtr body) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kHistorically;
  f->interval_ = interval;
  f->children_.push_back(std::move(body));
  return f;
}

FormulaPtr Formula::Eventually(TimeInterval interval, FormulaPtr body) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kEventually;
  f->interval_ = interval;
  f->children_.push_back(std::move(body));
  return f;
}

FormulaPtr Formula::Since(TimeInterval interval, FormulaPtr lhs,
                          FormulaPtr rhs) {
  auto f = FormulaPtr(new Formula());
  f->kind_ = FormulaKind::kSince;
  f->interval_ = interval;
  f->children_.push_back(std::move(lhs));
  f->children_.push_back(std::move(rhs));
  return f;
}

FormulaPtr Formula::Clone() const {
  auto f = FormulaPtr(new Formula());
  f->kind_ = kind_;
  f->bool_value_ = bool_value_;
  f->predicate_ = predicate_;
  f->terms_ = terms_;
  f->cmp_op_ = cmp_op_;
  f->bound_vars_ = bound_vars_;
  f->interval_ = interval_;
  f->children_.reserve(children_.size());
  for (const auto& c : children_) f->children_.push_back(c->Clone());
  return f;
}

bool Formula::Equals(const Formula& o) const {
  if (kind_ != o.kind_) return false;
  if (bool_value_ != o.bool_value_) return false;
  if (predicate_ != o.predicate_) return false;
  if (!(terms_ == o.terms_)) return false;
  if (cmp_op_ != o.cmp_op_) return false;
  if (bound_vars_ != o.bound_vars_) return false;
  if (!(interval_ == o.interval_)) return false;
  if (children_.size() != o.children_.size()) return false;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*o.children_[i])) return false;
  }
  return true;
}

std::string Formula::ToString() const { return PrintFormula(*this); }

}  // namespace tl
}  // namespace rtic
