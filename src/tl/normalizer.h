// Semantics-preserving rewrites that prepare a constraint for the
// incremental (bounded-history-encoding) compiler:
//   * historically-rewrite:     historically[I] φ  =>  not once[I] not φ
//   * double-negation removal:  not not φ     =>  φ
// `implies` is deliberately NOT eliminated: the evaluator's falsification
// sets are generated from implication antecedents (the safe-range fast
// path), which an `(not φ) or ψ` rewrite would destroy. EliminateImplies
// remains available as a standalone utility.
//
// The naive engine evaluates the *original* formula, so the equivalence of
// normalized and original semantics is independently testable.

#ifndef RTIC_TL_NORMALIZER_H_
#define RTIC_TL_NORMALIZER_H_

#include "tl/ast.h"

namespace rtic {
namespace tl {

/// Returns an equivalent formula using only {bool, atom, comparison, not,
/// and, or, exists, forall, previous, once, since}.
FormulaPtr NormalizeForEngines(const Formula& formula);

/// Rewrites `φ implies ψ` to `(not φ) or ψ` throughout.
FormulaPtr EliminateImplies(const Formula& formula);

/// Rewrites `historically[I] φ` to `not once[I] not φ` throughout.
FormulaPtr RewriteHistorically(const Formula& formula);

/// Removes `not not φ` throughout.
FormulaPtr SimplifyDoubleNegation(const Formula& formula);

}  // namespace tl
}  // namespace rtic

#endif  // RTIC_TL_NORMALIZER_H_
