// Static analysis of constraint formulas:
//   * name resolution against a predicate catalog (arity + column types),
//   * variable type inference (every variable name has one type per
//     constraint; conflicts are errors),
//   * safety checks: `φ since ψ` requires free(φ) ⊆ free(ψ) so the
//     operator's auxiliary relation is well defined,
//   * range-restriction (safe-range) diagnostics: variables whose bindings
//     can only come from the active domain produce warnings, not errors —
//     evaluation falls back to active-domain semantics,
//   * constant collection (the formula's contribution to the active domain).
//
// The Analysis object is keyed by node address, so it is valid only for the
// exact Formula tree that was analyzed (clones must be re-analyzed).

#ifndef RTIC_TL_ANALYZER_H_
#define RTIC_TL_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "tl/ast.h"

namespace rtic {
namespace tl {

/// Predicate name -> column schema, the database vocabulary a constraint may
/// mention.
using PredicateCatalog = std::map<std::string, Schema>;

/// Immutable result of analyzing one formula tree.
class Analysis {
 public:
  /// Sorted free-variable names of `node` (must belong to the analyzed tree).
  const std::vector<std::string>& FreeVars(const Formula& node) const;

  /// Free variables of `node` as typed columns, in sorted-name order — the
  /// column layout every evaluator uses for this node's satisfaction
  /// relation. Precomputed per node at analysis time (hot path: evaluators
  /// ask for this on every visit).
  const std::vector<Column>& ColumnsFor(const Formula& node) const;

  /// The inferred type of every variable name in the constraint.
  const std::map<std::string, ValueType>& var_types() const {
    return var_types_;
  }

  /// All constants appearing in the formula (atoms and comparisons).
  const std::vector<Value>& constants() const { return constants_; }

  /// Non-fatal diagnostics (unused quantified variables, shadowing,
  /// non-range-restricted variables relying on active-domain semantics).
  const std::vector<std::string>& warnings() const { return warnings_; }

  /// True iff the analyzed formula has no free variables.
  bool IsClosed(const Formula& root) const { return FreeVars(root).empty(); }

 private:
  friend Result<Analysis> Analyze(const Formula& root,
                                  const PredicateCatalog& catalog);

  std::map<const Formula*, std::vector<std::string>> free_vars_;
  std::map<const Formula*, std::vector<Column>> columns_;
  std::map<std::string, ValueType> var_types_;
  std::vector<Value> constants_;
  std::vector<std::string> warnings_;
};

/// Analyzes `root` against `catalog`. Errors (unknown predicate, arity or
/// type conflicts, uninferrable variable types, unsafe since) are returned
/// as InvalidArgument.
Result<Analysis> Analyze(const Formula& root, const PredicateCatalog& catalog);

}  // namespace tl
}  // namespace rtic

#endif  // RTIC_TL_ANALYZER_H_
