#include "tl/printer.h"

#include "tl/ast.h"

namespace rtic {
namespace tl {

namespace {

// Binding strength. A child is parenthesized when its own precedence is
// lower than what its context requires.
//   implies: 1,  or: 2,  and: 3,  since: 4,  unary: 5,  primary: 6.
// Quantifier bodies extend maximally to the right, so a quantifier used as
// an operand of anything tighter than implies needs parentheses: level 1.
int Precedence(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kImplies:
      return 1;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return 1;
    case FormulaKind::kOr:
      return 2;
    case FormulaKind::kAnd:
      return 3;
    case FormulaKind::kSince:
      return 4;
    case FormulaKind::kNot:
    case FormulaKind::kPrevious:
    case FormulaKind::kOnce:
    case FormulaKind::kHistorically:
    case FormulaKind::kEventually:
      return 5;
    case FormulaKind::kBoolConst:
    case FormulaKind::kAtom:
    case FormulaKind::kComparison:
      return 6;
  }
  return 6;
}

std::string IntervalSuffix(const TimeInterval& interval) {
  if (interval == TimeInterval::All()) return "";
  std::string out = "[" + std::to_string(interval.lo()) + ", ";
  if (interval.unbounded()) {
    out += "inf]";
  } else {
    out += std::to_string(interval.hi()) + "]";
  }
  return out;
}

std::string Print(const Formula& f, int min_prec);

std::string PrintChild(const Formula& f, int min_prec) {
  std::string s = Print(f, min_prec);
  if (Precedence(f) < min_prec) return "(" + s + ")";
  return s;
}

std::string Print(const Formula& f, int /*min_prec*/) {
  switch (f.kind()) {
    case FormulaKind::kBoolConst:
      return f.bool_value() ? "true" : "false";
    case FormulaKind::kAtom: {
      std::string out = f.predicate() + "(";
      for (std::size_t i = 0; i < f.terms().size(); ++i) {
        if (i > 0) out += ", ";
        out += f.terms()[i].ToString();
      }
      out += ")";
      return out;
    }
    case FormulaKind::kComparison:
      return f.terms()[0].ToString() + " " + CmpOpToString(f.cmp_op()) + " " +
             f.terms()[1].ToString();
    case FormulaKind::kNot:
      return "not " + PrintChild(f.child(0), 5);
    case FormulaKind::kAnd:
      return PrintChild(f.child(0), 3) + " and " + PrintChild(f.child(1), 4);
    case FormulaKind::kOr:
      return PrintChild(f.child(0), 2) + " or " + PrintChild(f.child(1), 3);
    case FormulaKind::kImplies:
      return PrintChild(f.child(0), 2) + " implies " +
             PrintChild(f.child(1), 1);
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::string out = f.kind() == FormulaKind::kExists ? "exists " : "forall ";
      for (std::size_t i = 0; i < f.bound_vars().size(); ++i) {
        if (i > 0) out += ", ";
        out += f.bound_vars()[i];
      }
      out += ": " + PrintChild(f.child(0), 1);
      return out;
    }
    case FormulaKind::kPrevious:
      return "previous" + IntervalSuffix(f.interval()) + " " +
             PrintChild(f.child(0), 5);
    case FormulaKind::kOnce:
      return "once" + IntervalSuffix(f.interval()) + " " +
             PrintChild(f.child(0), 5);
    case FormulaKind::kHistorically:
      return "historically" + IntervalSuffix(f.interval()) + " " +
             PrintChild(f.child(0), 5);
    case FormulaKind::kEventually:
      return "eventually" + IntervalSuffix(f.interval()) + " " +
             PrintChild(f.child(0), 5);
    case FormulaKind::kSince:
      return PrintChild(f.child(0), 5) + " since" +
             IntervalSuffix(f.interval()) + " " + PrintChild(f.child(1), 5);
  }
  return "?";
}

}  // namespace

std::string PrintFormula(const Formula& formula) { return Print(formula, 1); }

}  // namespace tl
}  // namespace rtic
