// Pretty-printer: produces source text that reparses to a structurally equal
// formula (round-trip property is tested).

#ifndef RTIC_TL_PRINTER_H_
#define RTIC_TL_PRINTER_H_

#include <string>

namespace rtic {
namespace tl {

class Formula;

/// Source form with minimal parentheses.
std::string PrintFormula(const Formula& formula);

}  // namespace tl
}  // namespace rtic

#endif  // RTIC_TL_PRINTER_H_
