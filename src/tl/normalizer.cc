#include "tl/normalizer.h"

namespace rtic {
namespace tl {

namespace {

/// Rebuilds `f` with children produced by `rewrite` (post-order transform).
template <typename Fn>
FormulaPtr Rebuild(const Formula& f, const Fn& rewrite) {
  switch (f.kind()) {
    case FormulaKind::kBoolConst:
      return f.bool_value() ? Formula::True() : Formula::False();
    case FormulaKind::kAtom:
      return Formula::Atom(f.predicate(), f.terms());
    case FormulaKind::kComparison:
      return Formula::Comparison(f.terms()[0], f.cmp_op(), f.terms()[1]);
    case FormulaKind::kNot:
      return Formula::Not(rewrite(f.child(0)));
    case FormulaKind::kAnd:
      return Formula::And(rewrite(f.child(0)), rewrite(f.child(1)));
    case FormulaKind::kOr:
      return Formula::Or(rewrite(f.child(0)), rewrite(f.child(1)));
    case FormulaKind::kImplies:
      return Formula::Implies(rewrite(f.child(0)), rewrite(f.child(1)));
    case FormulaKind::kExists:
      return Formula::Exists(f.bound_vars(), rewrite(f.child(0)));
    case FormulaKind::kForall:
      return Formula::Forall(f.bound_vars(), rewrite(f.child(0)));
    case FormulaKind::kPrevious:
      return Formula::Previous(f.interval(), rewrite(f.child(0)));
    case FormulaKind::kOnce:
      return Formula::Once(f.interval(), rewrite(f.child(0)));
    case FormulaKind::kHistorically:
      return Formula::Historically(f.interval(), rewrite(f.child(0)));
    case FormulaKind::kSince:
      return Formula::Since(f.interval(), rewrite(f.child(0)),
                            rewrite(f.child(1)));
    case FormulaKind::kEventually:
      return Formula::Eventually(f.interval(), rewrite(f.child(0)));
  }
  return f.Clone();
}

}  // namespace

FormulaPtr EliminateImplies(const Formula& formula) {
  auto rec = [](const Formula& f) { return EliminateImplies(f); };
  if (formula.kind() == FormulaKind::kImplies) {
    return Formula::Or(Formula::Not(EliminateImplies(formula.child(0))),
                       EliminateImplies(formula.child(1)));
  }
  return Rebuild(formula, rec);
}

FormulaPtr RewriteHistorically(const Formula& formula) {
  auto rec = [](const Formula& f) { return RewriteHistorically(f); };
  if (formula.kind() == FormulaKind::kHistorically) {
    return Formula::Not(Formula::Once(
        formula.interval(),
        Formula::Not(RewriteHistorically(formula.child(0)))));
  }
  return Rebuild(formula, rec);
}

FormulaPtr SimplifyDoubleNegation(const Formula& formula) {
  auto rec = [](const Formula& f) { return SimplifyDoubleNegation(f); };
  if (formula.kind() == FormulaKind::kNot &&
      formula.child(0).kind() == FormulaKind::kNot) {
    return SimplifyDoubleNegation(formula.child(0).child(0));
  }
  return Rebuild(formula, rec);
}

FormulaPtr NormalizeForEngines(const Formula& formula) {
  // `implies` is kept: the evaluator handles it natively and its
  // falsification set is generated from the antecedent (the fast path);
  // rewriting it into `not ... or ...` would force domain complements.
  FormulaPtr step = RewriteHistorically(formula);
  return SimplifyDoubleNegation(*step);
}

}  // namespace tl
}  // namespace rtic
