#include "tl/parser.h"

#include <optional>
#include <utility>
#include <vector>

#include "tl/lexer.h"

namespace rtic {
namespace tl {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<FormulaPtr> Parse() {
    RTIC_ASSIGN_OR_RETURN(FormulaPtr f, ParseImplies());
    if (!AtEnd()) {
      return Error("unexpected trailing input starting with " +
                   Describe(Peek()));
    }
    return f;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  static std::string Describe(const Token& t) {
    std::string out = TokenKindToString(t.kind);
    if (!t.text.empty()) out += " '" + t.text + "'";
    return out;
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(Peek().offset) + ": " + msg);
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(std::string("expected ") + TokenKindToString(kind) +
                   ", found " + Describe(Peek()));
    }
    Advance();
    return Status::OK();
  }

  // implies := or ('implies' implies)?      right-associative
  Result<FormulaPtr> ParseImplies() {
    RTIC_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseOr());
    if (Peek().IsKeyword("implies")) {
      Advance();
      RTIC_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseImplies());
      return Formula::Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // or := and ('or' and)*
  Result<FormulaPtr> ParseOr() {
    RTIC_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      RTIC_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseAnd());
      lhs = Formula::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // and := since ('and' since)*
  Result<FormulaPtr> ParseAnd() {
    RTIC_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseSince());
    while (Peek().IsKeyword("and")) {
      Advance();
      RTIC_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseSince());
      lhs = Formula::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // since := unary ('since' interval? unary)*     left-associative
  Result<FormulaPtr> ParseSince() {
    RTIC_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseUnary());
    while (Peek().IsKeyword("since")) {
      Advance();
      RTIC_ASSIGN_OR_RETURN(TimeInterval interval, ParseOptionalInterval());
      RTIC_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUnary());
      lhs = Formula::Since(interval, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FormulaPtr> ParseUnary() {
    const Token& t = Peek();
    if (t.IsKeyword("not")) {
      Advance();
      RTIC_ASSIGN_OR_RETURN(FormulaPtr body, ParseUnary());
      return Formula::Not(std::move(body));
    }
    if (t.IsKeyword("previous") || t.IsKeyword("once") ||
        t.IsKeyword("historically") || t.IsKeyword("eventually")) {
      std::string op = t.text;
      Advance();
      RTIC_ASSIGN_OR_RETURN(TimeInterval interval, ParseOptionalInterval());
      RTIC_ASSIGN_OR_RETURN(FormulaPtr body, ParseUnary());
      if (op == "previous") return Formula::Previous(interval, std::move(body));
      if (op == "once") return Formula::Once(interval, std::move(body));
      if (op == "eventually") {
        return Formula::Eventually(interval, std::move(body));
      }
      return Formula::Historically(interval, std::move(body));
    }
    if (t.IsKeyword("forall") || t.IsKeyword("exists")) {
      bool is_forall = t.text == "forall";
      Advance();
      std::vector<std::string> vars;
      for (;;) {
        if (Peek().kind != TokenKind::kIdent) {
          return Error("expected variable name in quantifier, found " +
                       Describe(Peek()));
        }
        vars.push_back(Advance().text);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      RTIC_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      RTIC_ASSIGN_OR_RETURN(FormulaPtr body, ParseImplies());
      if (is_forall) return Formula::Forall(std::move(vars), std::move(body));
      return Formula::Exists(std::move(vars), std::move(body));
    }
    return ParsePrimary();
  }

  Result<FormulaPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kLParen) {
      Advance();
      RTIC_ASSIGN_OR_RETURN(FormulaPtr f, ParseImplies());
      RTIC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return f;
    }
    // Atom: IDENT '(' ... ')'.
    if (t.kind == TokenKind::kIdent && Peek(1).kind == TokenKind::kLParen) {
      std::string predicate = Advance().text;
      Advance();  // '('
      std::vector<Term> terms;
      if (Peek().kind != TokenKind::kRParen) {
        for (;;) {
          RTIC_ASSIGN_OR_RETURN(Term term, ParseTerm());
          terms.push_back(std::move(term));
          if (Peek().kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      RTIC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Formula::Atom(std::move(predicate), std::move(terms));
    }
    // Bare true/false (when not part of a comparison).
    if ((t.IsKeyword("true") || t.IsKeyword("false")) &&
        !IsCmpToken(Peek(1).kind)) {
      bool v = t.text == "true";
      Advance();
      return v ? Formula::True() : Formula::False();
    }
    // Comparison: term op term.
    RTIC_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    std::optional<CmpOp> op = TakeCmpOp();
    if (!op.has_value()) {
      return Error("expected comparison operator after term '" +
                   lhs.ToString() + "'");
    }
    RTIC_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Formula::Comparison(std::move(lhs), *op, std::move(rhs));
  }

  static bool IsCmpToken(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return true;
      default:
        return false;
    }
  }

  std::optional<CmpOp> TakeCmpOp() {
    switch (Peek().kind) {
      case TokenKind::kEq:
        Advance();
        return CmpOp::kEq;
      case TokenKind::kNe:
        Advance();
        return CmpOp::kNe;
      case TokenKind::kLt:
        Advance();
        return CmpOp::kLt;
      case TokenKind::kLe:
        Advance();
        return CmpOp::kLe;
      case TokenKind::kGt:
        Advance();
        return CmpOp::kGt;
      case TokenKind::kGe:
        Advance();
        return CmpOp::kGe;
      default:
        return std::nullopt;
    }
  }

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIdent: {
        std::string name = Advance().text;
        return Term::Var(std::move(name));
      }
      case TokenKind::kInt: {
        std::int64_t v = Advance().int_value;
        return Term::Const(Value::Int64(v));
      }
      case TokenKind::kDouble: {
        double v = Advance().double_value;
        return Term::Const(Value::Double(v));
      }
      case TokenKind::kString: {
        std::string v = Advance().text;
        return Term::Const(Value::String(std::move(v)));
      }
      case TokenKind::kKeyword:
        if (t.text == "true" || t.text == "false") {
          bool v = Advance().text == "true";
          return Term::Const(Value::Bool(v));
        }
        break;
      default:
        break;
    }
    return Error("expected term, found " + Describe(Peek()));
  }

  // interval := '[' INT ',' (INT | 'inf') ']'; absent => [0, inf].
  Result<TimeInterval> ParseOptionalInterval() {
    if (Peek().kind != TokenKind::kLBracket) return TimeInterval::All();
    Advance();
    if (Peek().kind != TokenKind::kInt) {
      return Error("expected integer interval bound, found " +
                   Describe(Peek()));
    }
    Timestamp lo = Advance().int_value;
    RTIC_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    Timestamp hi;
    if (Peek().IsKeyword("inf")) {
      Advance();
      hi = kTimeInfinity;
    } else if (Peek().kind == TokenKind::kInt) {
      hi = Advance().int_value;
    } else {
      return Error("expected integer or 'inf' interval bound, found " +
                   Describe(Peek()));
    }
    RTIC_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    RTIC_ASSIGN_OR_RETURN(TimeInterval interval, TimeInterval::Make(lo, hi));
    return interval;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<FormulaPtr> ParseFormula(const std::string& input) {
  RTIC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace tl
}  // namespace rtic
