// Lexer for the constraint language. Produces a flat token stream; the
// recursive-descent parser consumes it. `--` starts a comment to end of line.

#ifndef RTIC_TL_LEXER_H_
#define RTIC_TL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace rtic {
namespace tl {

/// Token categories. Keywords are lexed as kKeyword with the keyword text in
/// `text` (not, and, or, implies, forall, exists, previous, once,
/// historically, since, true, false, inf).
enum class TokenKind {
  kIdent,
  kKeyword,
  kInt,       // integer literal (int_value)
  kDouble,    // floating literal (double_value)
  kString,    // quoted string literal, unescaped (text)
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,     // ,
  kColon,     // :
  kEq,        // =
  kNe,        // !=
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kEnd,       // end of input
};

/// Readable token-kind name for error messages.
const char* TokenKindToString(TokenKind kind);

/// One lexed token with its source offset (byte position, for diagnostics).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::size_t offset = 0;

  /// True for kKeyword with the given spelling.
  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

/// Tokenizes `input`. The returned vector always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace tl
}  // namespace rtic

#endif  // RTIC_TL_LEXER_H_
