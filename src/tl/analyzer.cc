#include "tl/analyzer.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace rtic {
namespace tl {

namespace {

/// Recursive worker carrying shared analysis state.
class AnalyzerImpl {
 public:
  explicit AnalyzerImpl(const PredicateCatalog& catalog)
      : catalog_(catalog) {}

  Status Run(const Formula& root) {
    RTIC_RETURN_IF_ERROR(CollectFreeVarsAndChecks(root, {}));
    // Type inference to fixpoint: comparisons may propagate types in either
    // direction, so iterate until stable.
    bool changed = true;
    while (changed) {
      changed = false;
      RTIC_RETURN_IF_ERROR(InferTypes(root, &changed));
    }
    // Every variable must end up typed (needed for active-domain ranging).
    for (const auto& [node, vars] : free_vars_) {
      (void)node;
      for (const std::string& v : vars) {
        if (var_types_.count(v) == 0) {
          return Status::InvalidArgument(
              "cannot infer the type of variable '" + v +
              "': it occurs in no database atom and no comparison "
              "determines it");
        }
      }
    }
    RTIC_RETURN_IF_ERROR(CheckBoundVarTypes(root));
    CheckRangeRestriction(root);
    return Status::OK();
  }

 private:
  // Pass 1: free variables (with scoping), structural checks, constants.
  Status CollectFreeVarsAndChecks(const Formula& f,
                                  std::vector<std::string> bound_stack) {
    std::set<std::string> free;
    switch (f.kind()) {
      case FormulaKind::kBoolConst:
        break;
      case FormulaKind::kAtom: {
        auto it = catalog_.find(f.predicate());
        if (it == catalog_.end()) {
          return Status::InvalidArgument("unknown predicate: " +
                                         f.predicate());
        }
        const Schema& schema = it->second;
        if (f.terms().size() != schema.size()) {
          return Status::InvalidArgument(
              "predicate " + f.predicate() + " expects " +
              std::to_string(schema.size()) + " arguments, got " +
              std::to_string(f.terms().size()));
        }
        for (const Term& t : f.terms()) {
          if (t.is_variable()) {
            free.insert(t.name());
          } else {
            constants_.push_back(t.value());
          }
        }
        break;
      }
      case FormulaKind::kComparison:
        for (const Term& t : f.terms()) {
          if (t.is_variable()) {
            free.insert(t.name());
          } else {
            constants_.push_back(t.value());
          }
        }
        break;
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        std::unordered_set<std::string> seen;
        for (const std::string& v : f.bound_vars()) {
          if (!seen.insert(v).second) {
            return Status::InvalidArgument(
                "variable '" + v + "' bound twice by the same quantifier");
          }
          if (std::find(bound_stack.begin(), bound_stack.end(), v) !=
              bound_stack.end()) {
            warnings_.push_back("variable '" + v +
                                      "' shadows an outer quantifier");
          }
        }
        std::vector<std::string> inner_stack = bound_stack;
        inner_stack.insert(inner_stack.end(), f.bound_vars().begin(),
                           f.bound_vars().end());
        RTIC_RETURN_IF_ERROR(
            CollectFreeVarsAndChecks(f.child(0), inner_stack));
        const auto& body_free = free_vars_.at(&f.child(0));
        free.insert(body_free.begin(), body_free.end());
        for (const std::string& v : f.bound_vars()) {
          if (free.erase(v) == 0) {
            warnings_.push_back("quantified variable '" + v +
                                      "' does not occur in its scope");
          }
        }
        break;
      }
      default: {
        for (std::size_t i = 0; i < f.num_children(); ++i) {
          RTIC_RETURN_IF_ERROR(
              CollectFreeVarsAndChecks(f.child(i), bound_stack));
          const auto& child_free = free_vars_.at(&f.child(i));
          free.insert(child_free.begin(), child_free.end());
        }
        break;
      }
    }
    if (f.kind() == FormulaKind::kSince) {
      const auto& lhs_free = free_vars_.at(&f.child(0));
      const auto& rhs_free = free_vars_.at(&f.child(1));
      for (const std::string& v : lhs_free) {
        if (!std::binary_search(rhs_free.begin(), rhs_free.end(), v)) {
          return Status::InvalidArgument(
              "unsafe since: variable '" + v +
              "' is free in the left-hand side but not in the right-hand "
              "side (free(lhs) must be a subset of free(rhs))");
        }
      }
    }
    free_vars_[&f] =
        std::vector<std::string>(free.begin(), free.end());
    return Status::OK();
  }

  Status AssignType(const std::string& var, ValueType type, bool* changed) {
    auto it = var_types_.find(var);
    if (it == var_types_.end()) {
      var_types_[var] = type;
      *changed = true;
      return Status::OK();
    }
    if (it->second != type) {
      // Numeric mixing is allowed in comparisons but a variable still has
      // exactly one type; an int/double clash across atoms is a conflict.
      return Status::InvalidArgument(
          "variable '" + var + "' used with conflicting types " +
          ValueTypeToString(it->second) + " and " + ValueTypeToString(type));
    }
    return Status::OK();
  }

  static bool Comparable(ValueType a, ValueType b) {
    return a == b || (IsNumeric(a) && IsNumeric(b));
  }

  // Pass 2 (fixpoint step): assign variable types from atoms and
  // comparisons; check constant/column compatibility.
  Status InferTypes(const Formula& f, bool* changed) {
    switch (f.kind()) {
      case FormulaKind::kAtom: {
        const Schema& schema = catalog_.at(f.predicate());
        for (std::size_t i = 0; i < f.terms().size(); ++i) {
          const Term& t = f.terms()[i];
          ValueType want = schema.column(i).type;
          if (t.is_variable()) {
            RTIC_RETURN_IF_ERROR(AssignType(t.name(), want, changed));
          } else if (t.value().type() != want) {
            return Status::InvalidArgument(
                "constant " + t.value().ToString() + " at argument " +
                std::to_string(i + 1) + " of " + f.predicate() +
                " must have type " + ValueTypeToString(want));
          }
        }
        break;
      }
      case FormulaKind::kComparison: {
        const Term& a = f.terms()[0];
        const Term& b = f.terms()[1];
        auto type_of = [&](const Term& t) -> std::optional<ValueType> {
          if (t.is_constant()) return t.value().type();
          auto it = var_types_.find(t.name());
          if (it == var_types_.end()) return std::nullopt;
          return it->second;
        };
        std::optional<ValueType> ta = type_of(a);
        std::optional<ValueType> tb = type_of(b);
        if (ta && tb) {
          if (!Comparable(*ta, *tb)) {
            return Status::InvalidArgument(
                "comparison " + f.ToString() + " mixes incompatible types " +
                ValueTypeToString(*ta) + " and " + ValueTypeToString(*tb));
          }
          // Ordering comparisons on bools are rejected (only =, != allowed).
          if ((*ta == ValueType::kBool || *tb == ValueType::kBool) &&
              f.cmp_op() != CmpOp::kEq && f.cmp_op() != CmpOp::kNe) {
            return Status::InvalidArgument(
                "ordering comparison on bool values: " + f.ToString());
          }
        } else if (ta && !tb && b.is_variable()) {
          RTIC_RETURN_IF_ERROR(AssignType(b.name(), *ta, changed));
        } else if (tb && !ta && a.is_variable()) {
          RTIC_RETURN_IF_ERROR(AssignType(a.name(), *tb, changed));
        }
        break;
      }
      default:
        for (std::size_t i = 0; i < f.num_children(); ++i) {
          RTIC_RETURN_IF_ERROR(InferTypes(f.child(i), changed));
        }
        break;
    }
    return Status::OK();
  }

  // Quantified variables must also be typed (they may not be free anywhere).
  Status CheckBoundVarTypes(const Formula& f) {
    if (f.kind() == FormulaKind::kExists || f.kind() == FormulaKind::kForall) {
      for (const std::string& v : f.bound_vars()) {
        if (var_types_.count(v) == 0) {
          return Status::InvalidArgument(
              "cannot infer the type of quantified variable '" + v + "'");
        }
      }
    }
    for (std::size_t i = 0; i < f.num_children(); ++i) {
      RTIC_RETURN_IF_ERROR(CheckBoundVarTypes(f.child(i)));
    }
    return Status::OK();
  }

  // Safe-range analysis: the set of variables guaranteed to be bound by a
  // positive database atom (or equality with a constant / bound variable).
  // Variables outside this set fall back to active-domain ranging; warn so
  // the user knows evaluation may enumerate the domain.
  std::set<std::string> CheckRangeRestriction(const Formula& f) {
    switch (f.kind()) {
      case FormulaKind::kBoolConst:
        return {};
      case FormulaKind::kAtom: {
        std::set<std::string> rr;
        for (const Term& t : f.terms()) {
          if (t.is_variable()) rr.insert(t.name());
        }
        return rr;
      }
      case FormulaKind::kComparison: {
        std::set<std::string> rr;
        if (f.cmp_op() == CmpOp::kEq) {
          const Term& a = f.terms()[0];
          const Term& b = f.terms()[1];
          if (a.is_variable() && b.is_constant()) rr.insert(a.name());
          if (b.is_variable() && a.is_constant()) rr.insert(b.name());
        }
        return rr;
      }
      case FormulaKind::kNot:
        CheckRangeRestriction(f.child(0));
        return {};
      case FormulaKind::kAnd: {
        std::set<std::string> l = CheckRangeRestriction(f.child(0));
        std::set<std::string> r = CheckRangeRestriction(f.child(1));
        l.insert(r.begin(), r.end());
        return l;
      }
      case FormulaKind::kOr: {
        std::set<std::string> l = CheckRangeRestriction(f.child(0));
        std::set<std::string> r = CheckRangeRestriction(f.child(1));
        std::set<std::string> both;
        for (const std::string& v : l) {
          if (r.count(v)) both.insert(v);
        }
        return both;
      }
      case FormulaKind::kImplies:
        CheckRangeRestriction(f.child(0));
        CheckRangeRestriction(f.child(1));
        return {};
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        std::set<std::string> rr = CheckRangeRestriction(f.child(0));
        if (f.kind() == FormulaKind::kExists) {
          for (const std::string& v : f.bound_vars()) {
            if (rr.count(v) == 0) {
              warnings_.push_back(
                  "variable '" + v +
                  "' is not range-restricted; evaluation enumerates the "
                  "active domain");
            }
            rr.erase(v);
          }
        } else {
          for (const std::string& v : f.bound_vars()) rr.erase(v);
        }
        return rr;
      }
      case FormulaKind::kPrevious:
      case FormulaKind::kOnce:
      case FormulaKind::kHistorically:
      case FormulaKind::kEventually:
        return CheckRangeRestriction(f.child(0));
      case FormulaKind::kSince: {
        CheckRangeRestriction(f.child(0));
        return CheckRangeRestriction(f.child(1));
      }
    }
    return {};
  }

  const PredicateCatalog& catalog_;

 public:
  std::map<const Formula*, std::vector<std::string>> free_vars_;
  std::map<std::string, ValueType> var_types_;
  std::vector<Value> constants_;
  std::vector<std::string> warnings_;
};

}  // namespace

const std::vector<std::string>& Analysis::FreeVars(const Formula& node) const {
  static const std::vector<std::string> kEmpty;
  auto it = free_vars_.find(&node);
  if (it == free_vars_.end()) return kEmpty;
  return it->second;
}

const std::vector<Column>& Analysis::ColumnsFor(const Formula& node) const {
  static const std::vector<Column> kEmpty;
  auto it = columns_.find(&node);
  if (it == columns_.end()) return kEmpty;
  return it->second;
}

Result<Analysis> Analyze(const Formula& root,
                         const PredicateCatalog& catalog) {
  AnalyzerImpl impl(catalog);
  RTIC_RETURN_IF_ERROR(impl.Run(root));
  Analysis analysis;
  analysis.free_vars_ = std::move(impl.free_vars_);
  analysis.var_types_ = std::move(impl.var_types_);
  analysis.constants_ = std::move(impl.constants_);
  analysis.warnings_ = std::move(impl.warnings_);
  for (const auto& [node, vars] : analysis.free_vars_) {
    std::vector<Column> cols;
    cols.reserve(vars.size());
    for (const std::string& v : vars) {
      cols.push_back(Column{v, analysis.var_types_.at(v)});
    }
    analysis.columns_.emplace(node, std::move(cols));
  }
  return analysis;
}

}  // namespace tl
}  // namespace rtic
