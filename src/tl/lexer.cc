#include "tl/lexer.h"

#include <cctype>
#include <unordered_set>

namespace rtic {
namespace tl {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kDouble:
      return "double";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "not",  "and",  "or",       "implies",      "forall", "exists",
      "previous", "once", "historically", "since", "eventually",
      "true",  "false", "inf"};
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();

  auto push = [&](TokenKind kind, std::size_t offset, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comment: "--" to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    std::size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      if (Keywords().count(word) > 0) {
        push(TokenKind::kKeyword, start, std::move(word));
      } else {
        push(TokenKind::kIdent, start, std::move(word));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      ++i;  // consume first digit or '-'
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      bool is_double = false;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      std::string num = input.substr(start, i - start);
      Token t;
      t.offset = start;
      t.text = num;
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::stod(num);
      } else {
        t.kind = TokenKind::kInt;
        try {
          t.int_value = std::stoll(num);
        } catch (const std::out_of_range&) {
          return Status::InvalidArgument("integer literal out of range: " +
                                         num);
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\\' && i + 1 < n) {
          text += input[i + 1];
          i += 2;
          continue;
        }
        if (input[i] == '\'') {
          closed = true;
          ++i;
          break;
        }
        text += input[i];
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      push(TokenKind::kString, start, std::move(text));
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, start);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, start);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        continue;
      case ':':
        push(TokenKind::kColon, start);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
          continue;
        }
        return Status::InvalidArgument("unexpected '!' at offset " +
                                       std::to_string(start));
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        continue;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(start));
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace tl
}  // namespace rtic
