// RticClient: the library-side handle for one RTICSRV1 session.
//
//   auto client = Unwrap(RticClient::Connect(server->address(), "acme"));
//   client->CreateTable("Emp", schema);
//   client->RegisterConstraint("no_pay_cut", "forall ...");
//   UpdateBatch batch;                       // timestamp 0: server assigns
//   batch.Insert("Emp", {...});
//   auto applied = Unwrap(client->Apply(batch));
//   if (applied.overloaded) { /* admission control refused; retry later */ }
//   else                    { /* applied.timestamp, applied.violations */ }
//
// One client is one session: strictly request/response, NOT thread-safe —
// concurrency comes from connecting more clients, which is exactly what
// the server multiplexes. Server-side errors come back as the Status the
// server produced (same code, same message).

#ifndef RTIC_SERVER_CLIENT_H_
#define RTIC_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "replication/transport.h"
#include "server/server_format.h"

namespace rtic {
namespace server {

class RticClient {
 public:
  /// Connects to "host:port" and performs the hello handshake for
  /// `tenant`. Fails with the server's error if it refuses the session.
  /// `shard_count` asks the server to back a NEW tenant with a sharded
  /// monitor of that many shards (0 = server default); a nonzero count
  /// against an existing tenant must match how it was created.
  static Result<std::unique_ptr<RticClient>> Connect(
      const std::string& address, const std::string& tenant,
      std::uint64_t shard_count = 0);

  RticClient(const RticClient&) = delete;
  RticClient& operator=(const RticClient&) = delete;

  /// The tenant's admission queue capacity, from the hello response.
  std::uint64_t queue_capacity() const { return queue_capacity_; }

  Status CreateTable(const std::string& table, const Schema& schema);
  Status RegisterConstraint(const std::string& name, const std::string& text);

  /// Outcome of one Apply: either the batch was admitted and checked
  /// (timestamp + violations are the verdict) or admission control
  /// refused it (overloaded=true, nothing was applied).
  struct ApplyResult {
    bool overloaded = false;
    Timestamp timestamp = 0;
    std::vector<Violation> violations;
  };

  /// Applies one batch. A batch with timestamp 0 asks the server to
  /// assign current_time + 1; the result carries the assigned timestamp.
  Result<ApplyResult> Apply(const UpdateBatch& batch);

  Result<StatsReply> GetStats();

  /// Hangs up. Further calls fail; the server ends the session.
  void Close();

 private:
  explicit RticClient(std::unique_ptr<replication::Transport> transport)
      : transport_(std::move(transport)) {}

  /// Sends one request frame and reads one response. kError responses
  /// become the carried Status.
  Result<Message> RoundTrip(const std::string& frame);

  std::unique_ptr<replication::Transport> transport_;
  std::uint64_t queue_capacity_ = 0;
};

}  // namespace server
}  // namespace rtic

#endif  // RTIC_SERVER_CLIENT_H_
