// RticServer: the multi-client TCP front-end of the constraint monitor.
//
//   ServerOptions opts;                    // port 0 = ephemeral
//   auto server = Unwrap(RticServer::Start(opts));
//   ... clients connect to server->address() (see server/client.h) ...
//   server->Stop();
//
// Architecture. One accept loop, one thread per client session, one
// monitor per tenant namespace owned by exactly one worker thread — a
// plain ConstraintMonitor, or a shard::ShardedMonitor when the server's
// default_shard_count or the session's hello asks for one. Sessions never touch a monitor directly: each request becomes a
// job on the tenant's BoundedQueue, the worker executes jobs in arrival
// order against its monitor (which therefore needs no locking), and the
// session thread waits for the pre-encoded response frame. The queue bound
// is the admission decision — when a tenant's worker falls behind,
// ApplyBatch requests are refused with OVERLOADED instead of buffering
// without bound, while control requests (create table, register
// constraint, stats) wait for space. Accepted batches always drain, even
// through Stop(), so no accepted batch's violations are lost.
//
// Timestamps. A monitor demands strictly increasing timestamps, which
// concurrent clients cannot coordinate on. A batch sent with timestamp 0
// is stamped current_time + 1 by the worker at execution; the verdict
// response carries the assigned timestamp.
//
// Durability. When monitor_options.wal_dir is set, each tenant logs to
// <wal_dir>/<tenant>/ and the worker runs Recover() right before the
// tenant's first batch — so tables and constraints registered earlier on
// the session are covered. Register everything before the first ApplyBatch
// on durable tenants.

#ifndef RTIC_SERVER_SERVER_H_
#define RTIC_SERVER_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "monitor/monitor.h"
#include "replication/tcp_transport.h"
#include "server/server_format.h"

namespace rtic {
namespace server {

struct ServerOptions {
  /// Port to listen on (127.0.0.1); 0 binds an ephemeral port — read it
  /// back with port().
  std::uint16_t port = 0;

  /// Per-tenant admission queue bound. A tenant with this many requests
  /// in flight refuses further ApplyBatch requests with OVERLOADED.
  std::size_t queue_capacity = 64;

  /// Template for every tenant's monitor. A non-empty wal_dir makes
  /// tenants durable, each under its own <wal_dir>/<tenant> subdirectory.
  MonitorOptions monitor_options;

  /// Shards for tenants whose hello does not request a count (arg 0).
  /// 0 keeps the plain single ConstraintMonitor; N >= 1 gives new tenants
  /// an N-shard ShardedMonitor (durable tenants then log under
  /// <wal_dir>/<tenant>/shard-<k>). A hello may request its own count, up
  /// to kMaxTenantShards; a nonzero request against an existing tenant
  /// must match how the tenant was created.
  std::size_t default_shard_count = 0;
};

/// Upper bound on a tenant's shard count (a hello requesting more is
/// refused — shard directories and worker fan-out are per tenant).
inline constexpr std::size_t kMaxTenantShards = 64;

class RticServer {
 public:
  /// Binds, listens, and starts the accept loop.
  static Result<std::unique_ptr<RticServer>> Start(ServerOptions options);

  ~RticServer();
  RticServer(const RticServer&) = delete;
  RticServer& operator=(const RticServer&) = delete;

  std::uint16_t port() const { return listener_->port(); }

  /// "127.0.0.1:<port>", ready for RticClient::Connect / TcpConnect.
  std::string address() const;

  /// Stops accepting, closes every live session, drains each tenant's
  /// accepted jobs, and joins all threads. Idempotent; also run by the
  /// destructor.
  void Stop();

 private:
  struct Job;
  struct Tenant;
  struct Session;

  explicit RticServer(ServerOptions options);

  void AcceptLoop();
  void SessionLoop(std::shared_ptr<replication::Transport> transport);
  std::string HandleRequest(Tenant* tenant, const Message& msg);

  /// Queues `work` for the tenant's worker and waits for its response
  /// frame. With admission=true a full queue yields OVERLOADED instead of
  /// waiting.
  std::string RunOnWorker(Tenant* tenant, std::function<std::string()> work,
                          bool admission);

  /// Finds or creates the named tenant (monitor + worker thread).
  /// `requested_shards` is the hello's arg: 0 accepts the server default
  /// (or the existing tenant as-is); nonzero creates the tenant with that
  /// many shards or fails if an existing tenant was created differently.
  Result<Tenant*> GetTenant(const std::string& name,
                            std::uint64_t requested_shards);

  static void WorkerLoop(Tenant* tenant);
  void StopInternal();

  ServerOptions options_;
  std::unique_ptr<replication::TcpListener> listener_;
  std::thread accept_thread_;
  std::once_flag stop_once_;

  std::mutex mu_;
  bool stopping_ = false;  // guarded by mu_
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;  // guarded by mu_
  std::vector<Session> sessions_;  // guarded by mu_
};

}  // namespace server
}  // namespace rtic

#endif  // RTIC_SERVER_SERVER_H_
