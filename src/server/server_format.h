// Wire format of the RTIC server's request/response protocol.
//
// Every message between an RticClient and an RticServer session is one
// RTICSRV1 frame: the replication layout (repl_format.h FrameSpec) under
// the server's own magic and type range, carried by the same transports
// (the length-prefixed TCP transport adds its u32 LE frame-size prefix on
// the wire). The protocol is strictly request/response per session: the
// client sends one request frame and reads exactly one response frame
// before sending the next.
//
//   [magic "RTICSRV1" 8][crc32c u32 LE]
//   [version u8][type u8][arg u64 LE][name_len u32 LE][body_len u32 LE]
//   [name bytes][body bytes]
//
// Requests (client -> server):
//   kHello              — session start; `name` is the tenant namespace,
//                         `arg` the requested shard count for the tenant's
//                         monitor (0 = server default; nonzero on an
//                         existing tenant must match how it was created).
//                         Must be the first frame of a session.
//   kCreateTable        — `name` is the table, `body` an encoded Schema.
//   kRegisterConstraint — `name` is the constraint, `body` its text.
//   kApplyBatch         — `body` is an RTICBAT1 token payload (the WAL
//                         record codec). timestamp 0 asks the server to
//                         assign current_time + 1 (multi-client sessions
//                         cannot know the tenant's clock).
//   kGetStats           — no payload; snapshot of the tenant's counters.
//
// Responses (server -> client):
//   kHelloOk    — `name` is "rtic-server", `arg` the tenant's admission
//                 queue capacity.
//   kOk         — request succeeded, nothing to return.
//   kVerdict    — ApplyBatch succeeded; `arg` is the violation count,
//                 `body` the encoded verdict (applied timestamp +
//                 violations with witnesses).
//   kStats      — `body` is an encoded StatsReply.
//   kError      — `arg` is the StatusCode, `body` the message. Fatal
//                 errors (bad hello, unparseable frame) also end the
//                 session; request-level errors (e.g. a stale timestamp)
//                 leave it open.
//   kOverloaded — admission control refused the batch: the tenant's
//                 submission queue is full. `arg` is the queue capacity.
//                 The session stays open; the client may retry.
//
// Version rule (same split as replication): any version parses, but a
// version != kServerProtocolVersion must be refused at session start with
// a kError naming both versions, before any other request is served.

#ifndef RTIC_SERVER_SERVER_FORMAT_H_
#define RTIC_SERVER_SERVER_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "monitor/monitor.h"
#include "replication/repl_format.h"
#include "types/schema.h"

namespace rtic {
namespace server {

inline constexpr char kServerFrameMagic[] = "RTICSRV1";  // 8 bytes
inline constexpr std::uint8_t kServerProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  kHello = 1,
  kCreateTable = 2,
  kRegisterConstraint = 3,
  kApplyBatch = 4,
  kGetStats = 5,
  kHelloOk = 6,
  kOk = 7,
  kVerdict = 8,
  kStats = 9,
  kError = 10,
  kOverloaded = 11,
};

/// The RTICSRV1 frame family (layout shared with RTICSHP1).
inline constexpr replication::FrameSpec kServerFrameSpec{
    kServerFrameMagic, "server frame", 1, 11};

/// A parsed server frame.
struct Message {
  std::uint8_t version = kServerProtocolVersion;
  MessageType type = MessageType::kHello;
  std::uint64_t arg = 0;
  std::string name;
  std::string body;
};

std::string EncodeMessage(const Message& msg);

/// Parses one whole frame; trailing bytes are corruption. Any version
/// parses — the session layer refuses mismatches (see file comment).
Result<Message> ParseMessage(std::string_view data);

// -- request/response constructors ------------------------------------------

std::string EncodeHello(std::string_view tenant,
                        std::uint64_t shard_count = 0);
std::string EncodeCreateTable(std::string_view table, const Schema& schema);
std::string EncodeRegisterConstraint(std::string_view name,
                                     std::string_view text);
std::string EncodeApplyBatch(const UpdateBatch& batch);
std::string EncodeGetStats();
std::string EncodeHelloOk(std::uint64_t queue_capacity);
std::string EncodeOk();
std::string EncodeVerdict(Timestamp timestamp,
                          const std::vector<Violation>& violations);
std::string EncodeStatsReply(const MonitorLike& monitor);
std::string EncodeError(const Status& status);
std::string EncodeOverloaded(std::uint64_t queue_capacity);

// -- payload codecs ---------------------------------------------------------

/// Schema payload: column count, then per column name + ValueType.
std::string EncodeSchemaPayload(const Schema& schema);
Result<Schema> DecodeSchemaPayload(std::string_view payload);

/// Verdict payload: applied timestamp, then the violations with their
/// witness columns and witness tuples — enough for the client to rebuild
/// each Violation byte-for-byte (ToString-identical to the server's).
struct Verdict {
  Timestamp timestamp = 0;
  std::vector<Violation> violations;
};
std::string EncodeVerdictPayload(Timestamp timestamp,
                                 const std::vector<Violation>& violations);
Result<Verdict> DecodeVerdictPayload(std::string_view payload);

/// Stats payload: tenant-wide counters plus per-constraint counters in
/// registration order (a subset of ConstraintStats — the cross-process
/// surface carries counts, not this process's timings).
struct StatsReply {
  std::uint64_t transition_count = 0;
  Timestamp current_time = 0;
  std::uint64_t total_violations = 0;
  struct ConstraintCounters {
    std::string name;
    std::uint64_t transitions = 0;
    std::uint64_t violations = 0;
    std::uint64_t storage_rows = 0;
    std::uint64_t aux_valuations = 0;
    std::uint64_t aux_anchors = 0;
  };
  std::vector<ConstraintCounters> constraints;
};
std::string EncodeStatsPayload(const StatsReply& stats);
Result<StatsReply> DecodeStatsPayload(std::string_view payload);

/// Rebuilds the Status a kError frame carries (arg = code, body = message).
Status DecodeError(const Message& msg);

}  // namespace server
}  // namespace rtic

#endif  // RTIC_SERVER_SERVER_FORMAT_H_
