// BoundedQueue: the server's admission-control primitive.
//
// A fixed-capacity MPSC work queue. Session threads push, the tenant's
// worker thread pops. TryPush is the admission decision: when the queue is
// full the caller gets `false` immediately and answers the client with
// OVERLOADED instead of buffering without bound. Stop() wakes everyone;
// already-accepted items still drain through Pop() so accepted work is
// never silently dropped.

#ifndef RTIC_SERVER_BOUNDED_QUEUE_H_
#define RTIC_SERVER_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rtic {
namespace server {

// Outcome of a non-blocking push: kFull is the overload signal (client may
// retry later), kStopped means the queue is shutting down for good.
enum class PushResult { kOk, kFull, kStopped };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Enqueues without waiting.
  PushResult TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return PushResult::kStopped;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Enqueues, waiting for space. False only when stopped.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [this] { return stopped_ || items_.size() < capacity_; });
      if (stopped_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues, waiting for an item. After Stop(), keeps returning the
  /// already-accepted items until the queue is drained, then nullopt.
  std::optional<T> Pop() {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopped_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Rejects all future pushes and wakes blocked callers. Idempotent.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;     // guarded by mu_
  bool stopped_ = false;    // guarded by mu_
};

}  // namespace server
}  // namespace rtic

#endif  // RTIC_SERVER_BOUNDED_QUEUE_H_
