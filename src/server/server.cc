#include "server/server.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <atomic>
#include <cerrno>
#include <future>
#include <optional>
#include <utility>

#include "server/bounded_queue.h"
#include "shard/sharded_monitor.h"
#include "storage/codec.h"

namespace rtic {
namespace server {
namespace {

Status SessionError(const std::string& what) {
  return Status::FailedPrecondition("server session: " + what);
}

// Tenant names become WAL subdirectory names, so keep them to a safe
// alphabet (no separators, no dot-dot, no empties).
bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

// One queued request: the worker runs `work` (which touches the tenant's
// monitor) and fulfills `reply` with the encoded response frame.
struct RticServer::Job {
  std::function<std::string()> work;
  std::promise<std::string> reply;
};

struct RticServer::Tenant {
  explicit Tenant(std::size_t queue_capacity) : queue(queue_capacity) {}

  std::unique_ptr<MonitorLike> monitor;
  std::size_t shard_count = 0;  // 0: plain ConstraintMonitor
  bool durable = false;
  bool recovered = false;  // worker thread only
  BoundedQueue<Job> queue;
  std::thread worker;
};

struct RticServer::Session {
  std::shared_ptr<replication::Transport> transport;
  std::shared_ptr<std::atomic<bool>> done;
  std::thread thread;
};

RticServer::RticServer(ServerOptions options) : options_(std::move(options)) {}

RticServer::~RticServer() { Stop(); }

Result<std::unique_ptr<RticServer>> RticServer::Start(ServerOptions options) {
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("server: queue_capacity must be > 0");
  }
  std::unique_ptr<RticServer> server(new RticServer(std::move(options)));
  RTIC_ASSIGN_OR_RETURN(server->listener_,
                        replication::TcpListener::Listen(server->options_.port));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

std::string RticServer::address() const {
  return "127.0.0.1:" + std::to_string(port());
}

void RticServer::Stop() {
  std::call_once(stop_once_, [this] { StopInternal(); });
}

void RticServer::StopInternal() {
  // Start() can fail before listener_ is set (e.g. the port is already
  // bound); the destructor still runs Stop() on that partial server.
  if (listener_) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<Session> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    sessions.swap(sessions_);
  }
  // Wake sessions blocked in Recv(); then stop the queues so workers drain
  // the accepted jobs — fulfilling the replies sessions are waiting on —
  // and exit.
  for (Session& s : sessions) s.transport->Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, tenant] : tenants_) tenant->queue.Stop();
  }
  for (Session& s : sessions) {
    if (s.thread.joinable()) s.thread.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, tenant] : tenants_) {
    if (tenant->worker.joinable()) tenant->worker.join();
  }
}

void RticServer::AcceptLoop() {
  for (;;) {
    Result<std::unique_ptr<replication::Transport>> accepted =
        listener_->Accept();
    if (!accepted.ok()) return;  // listener closed (server stopping)
    std::shared_ptr<replication::Transport> transport(
        std::move(accepted).value());

    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      transport->Close();
      return;
    }
    // Reap sessions whose clients already went away, so a long-lived
    // server's session list tracks live connections, not history.
    for (std::size_t i = 0; i < sessions_.size();) {
      if (sessions_[i].done->load()) {
        sessions_[i].thread.join();
        if (i != sessions_.size() - 1) {
          sessions_[i] = std::move(sessions_.back());
        }
        sessions_.pop_back();
      } else {
        ++i;
      }
    }
    Session session;
    session.transport = transport;
    session.done = std::make_shared<std::atomic<bool>>(false);
    session.thread = std::thread([this, transport, done = session.done] {
      SessionLoop(transport);
      transport->Close();  // hang up once the session is over
      done->store(true);
    });
    sessions_.push_back(std::move(session));
  }
}

void RticServer::SessionLoop(
    std::shared_ptr<replication::Transport> transport) {
  // Handshake: the first frame must be a current-version hello naming the
  // tenant. Anything else is fatal to the session (and only this session).
  std::string bytes;
  Result<bool> got = transport->Recv(&bytes);
  if (!got.ok() || !got.value()) return;  // died before hello
  Result<Message> hello = ParseMessage(bytes);
  if (!hello.ok()) {
    (void)transport->Send(EncodeError(hello.status()));
    return;
  }
  if (hello->version != kServerProtocolVersion) {
    (void)transport->Send(EncodeError(SessionError(
        "protocol version " + std::to_string(hello->version) +
        " not supported (this server speaks version " +
        std::to_string(kServerProtocolVersion) + ")")));
    return;
  }
  if (hello->type != MessageType::kHello) {
    (void)transport->Send(EncodeError(SessionError(
        "expected hello, got frame type " +
        std::to_string(static_cast<int>(hello->type)))));
    return;
  }
  Result<Tenant*> tenant = GetTenant(hello->name, hello->arg);
  if (!tenant.ok()) {
    (void)transport->Send(EncodeError(tenant.status()));
    return;
  }
  if (!transport->Send(EncodeHelloOk(options_.queue_capacity)).ok()) return;

  for (;;) {
    got = transport->Recv(&bytes);
    // EOF — including a client cut mid-frame, whose partial trailing
    // message the transport drops — ends only this session.
    if (!got.ok() || !got.value()) return;
    Result<Message> msg = ParseMessage(bytes);
    if (!msg.ok()) {
      // A frame that fails magic/checksum/length checks means the stream
      // itself can't be trusted: report and hang up.
      (void)transport->Send(EncodeError(msg.status()));
      return;
    }
    if (!transport->Send(HandleRequest(tenant.value(), msg.value())).ok()) {
      return;
    }
  }
}

std::string RticServer::HandleRequest(Tenant* tenant, const Message& msg) {
  switch (msg.type) {
    case MessageType::kCreateTable: {
      Result<Schema> schema = DecodeSchemaPayload(msg.body);
      if (!schema.ok()) return EncodeError(schema.status());
      return RunOnWorker(
          tenant,
          [tenant, table = msg.name, schema = std::move(schema).value()] {
            Status s = tenant->monitor->CreateTable(table, schema);
            return s.ok() ? EncodeOk() : EncodeError(s);
          },
          /*admission=*/false);
    }

    case MessageType::kRegisterConstraint:
      return RunOnWorker(
          tenant,
          [tenant, name = msg.name, text = msg.body] {
            Status s = tenant->monitor->RegisterConstraint(name, text);
            return s.ok() ? EncodeOk() : EncodeError(s);
          },
          /*admission=*/false);

    case MessageType::kApplyBatch: {
      StateReader r(msg.body);
      Result<UpdateBatch> batch = UpdateBatch::DecodeFrom(&r);
      if (!batch.ok()) return EncodeError(batch.status());
      if (!r.AtEnd()) {
        return EncodeError(
            Status::InvalidArgument("server payload: trailing bytes after "
                                    "batch"));
      }
      return RunOnWorker(
          tenant,
          [tenant, batch = std::move(batch).value()]() mutable {
            if (tenant->durable && !tenant->recovered) {
              Result<wal::RecoveryStats> recovered =
                  tenant->monitor->Recover();
              if (!recovered.ok()) return EncodeError(recovered.status());
              tenant->recovered = true;
            }
            if (batch.timestamp() == 0) {
              batch.set_timestamp(tenant->monitor->current_time() + 1);
            }
            Result<std::vector<Violation>> violations =
                tenant->monitor->ApplyUpdate(batch);
            if (!violations.ok()) return EncodeError(violations.status());
            return EncodeVerdict(batch.timestamp(), violations.value());
          },
          /*admission=*/true);
    }

    case MessageType::kGetStats:
      return RunOnWorker(
          tenant, [tenant] { return EncodeStatsReply(*tenant->monitor); },
          /*admission=*/false);

    case MessageType::kHello:
      return EncodeError(SessionError("duplicate hello"));

    default:
      return EncodeError(SessionError(
          "frame type " + std::to_string(static_cast<int>(msg.type)) +
          " is a response, not a request"));
  }
}

std::string RticServer::RunOnWorker(Tenant* tenant,
                                    std::function<std::string()> work,
                                    bool admission) {
  Job job;
  job.work = std::move(work);
  std::future<std::string> reply = job.reply.get_future();
  if (admission) {
    switch (tenant->queue.TryPush(std::move(job))) {
      case PushResult::kOk:
        break;
      case PushResult::kFull:
        return EncodeOverloaded(options_.queue_capacity);
      case PushResult::kStopped:
        return EncodeError(SessionError("server shutting down"));
    }
  } else if (!tenant->queue.Push(std::move(job))) {
    return EncodeError(SessionError("server shutting down"));
  }
  return reply.get();
}

Result<RticServer::Tenant*> RticServer::GetTenant(
    const std::string& name, std::uint64_t requested_shards) {
  if (!ValidTenantName(name)) {
    return Status::InvalidArgument(
        "server session: bad tenant name '" + name +
        "' (want 1-128 chars of [A-Za-z0-9_-])");
  }
  if (requested_shards > kMaxTenantShards) {
    return Status::InvalidArgument(
        "server session: shard count " + std::to_string(requested_shards) +
        " exceeds the per-tenant maximum of " +
        std::to_string(kMaxTenantShards));
  }
  auto matches = [&](const Tenant& t) {
    return requested_shards == 0 ||
           requested_shards == static_cast<std::uint64_t>(t.shard_count);
  };
  const std::size_t shard_count =
      requested_shards != 0 ? static_cast<std::size_t>(requested_shards)
                            : options_.default_shard_count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return SessionError("server shutting down");
    auto it = tenants_.find(name);
    if (it != tenants_.end()) {
      if (!matches(*it->second)) {
        return SessionError(
            "tenant '" + name + "' exists with " +
            std::to_string(it->second->shard_count) +
            " shards; hello requested " + std::to_string(requested_shards));
      }
      return it->second.get();
    }
  }

  // Construct outside mu_: tenant creation touches disk (WAL dir, monitor
  // state) and must not stall the accept loop or other sessions' handshakes.
  MonitorOptions monitor_options = options_.monitor_options;
  auto tenant = std::make_unique<Tenant>(options_.queue_capacity);
  tenant->shard_count = shard_count;
  if (!monitor_options.wal_dir.empty()) {
    monitor_options.wal_dir += "/" + name;
    if (::mkdir(monitor_options.wal_dir.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return Status::Internal("server: cannot create tenant wal dir " +
                              monitor_options.wal_dir);
    }
    tenant->durable = true;
  }
  if (shard_count > 0) {
    // ShardedMonitor::Recover() creates the shard-<k> subdirectories
    // under the tenant directory made above.
    RTIC_ASSIGN_OR_RETURN(
        tenant->monitor,
        shard::ShardedMonitor::Create(shard_count,
                                      std::move(monitor_options)));
  } else {
    tenant->monitor =
        std::make_unique<ConstraintMonitor>(std::move(monitor_options));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return SessionError("server shutting down");
  auto it = tenants_.find(name);
  if (it != tenants_.end()) {
    // Lost a creation race; the winner's shape must still match.
    if (!matches(*it->second)) {
      return SessionError(
          "tenant '" + name + "' exists with " +
          std::to_string(it->second->shard_count) +
          " shards; hello requested " + std::to_string(requested_shards));
    }
    return it->second.get();
  }
  // The worker must only exist once the tenant is reachable via tenants_,
  // so StopInternal always sees (and joins) every spawned worker.
  tenant->worker = std::thread([t = tenant.get()] { WorkerLoop(t); });
  Tenant* raw = tenant.get();
  tenants_.emplace(name, std::move(tenant));
  return raw;
}

void RticServer::WorkerLoop(Tenant* tenant) {
  while (std::optional<Job> job = tenant->queue.Pop()) {
    job->reply.set_value(job->work());
  }
}

}  // namespace server
}  // namespace rtic
