#include "server/client.h"

#include <utility>

#include "replication/tcp_transport.h"

namespace rtic {
namespace server {
namespace {

Status UnexpectedReply(const Message& msg) {
  return Status::Internal("server client: unexpected reply type " +
                          std::to_string(static_cast<int>(msg.type)));
}

}  // namespace

Result<std::unique_ptr<RticClient>> RticClient::Connect(
    const std::string& address, const std::string& tenant,
    std::uint64_t shard_count) {
  RTIC_ASSIGN_OR_RETURN(std::unique_ptr<replication::Transport> transport,
                        replication::TcpConnect(address));
  std::unique_ptr<RticClient> client(new RticClient(std::move(transport)));
  RTIC_ASSIGN_OR_RETURN(Message reply,
                        client->RoundTrip(EncodeHello(tenant, shard_count)));
  if (reply.type != MessageType::kHelloOk) return UnexpectedReply(reply);
  client->queue_capacity_ = reply.arg;
  return client;
}

Status RticClient::CreateTable(const std::string& table,
                               const Schema& schema) {
  RTIC_ASSIGN_OR_RETURN(Message reply,
                        RoundTrip(EncodeCreateTable(table, schema)));
  if (reply.type != MessageType::kOk) return UnexpectedReply(reply);
  return Status::OK();
}

Status RticClient::RegisterConstraint(const std::string& name,
                                      const std::string& text) {
  RTIC_ASSIGN_OR_RETURN(Message reply,
                        RoundTrip(EncodeRegisterConstraint(name, text)));
  if (reply.type != MessageType::kOk) return UnexpectedReply(reply);
  return Status::OK();
}

Result<RticClient::ApplyResult> RticClient::Apply(const UpdateBatch& batch) {
  RTIC_ASSIGN_OR_RETURN(Message reply, RoundTrip(EncodeApplyBatch(batch)));
  ApplyResult result;
  if (reply.type == MessageType::kOverloaded) {
    result.overloaded = true;
    return result;
  }
  if (reply.type != MessageType::kVerdict) return UnexpectedReply(reply);
  RTIC_ASSIGN_OR_RETURN(Verdict verdict, DecodeVerdictPayload(reply.body));
  result.timestamp = verdict.timestamp;
  result.violations = std::move(verdict.violations);
  return result;
}

Result<StatsReply> RticClient::GetStats() {
  RTIC_ASSIGN_OR_RETURN(Message reply, RoundTrip(EncodeGetStats()));
  if (reply.type != MessageType::kStats) return UnexpectedReply(reply);
  return DecodeStatsPayload(reply.body);
}

void RticClient::Close() { transport_->Close(); }

Result<Message> RticClient::RoundTrip(const std::string& frame) {
  RTIC_RETURN_IF_ERROR(transport_->Send(frame));
  std::string bytes;
  RTIC_ASSIGN_OR_RETURN(bool got, transport_->Recv(&bytes));
  if (!got) {
    return Status::Internal("server client: connection closed mid-request");
  }
  RTIC_ASSIGN_OR_RETURN(Message reply, ParseMessage(bytes));
  if (reply.type == MessageType::kError) return DecodeError(reply);
  return reply;
}

}  // namespace server
}  // namespace rtic
