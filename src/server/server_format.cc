#include "server/server_format.h"

#include <utility>

#include "storage/codec.h"

namespace rtic {
namespace server {
namespace {

Status BadPayload(const std::string& what) {
  return Status::InvalidArgument("server payload: " + what);
}

// Reads a non-negative count token.
Result<std::size_t> ReadCount(StateReader* r, const char* what) {
  RTIC_ASSIGN_OR_RETURN(std::int64_t n, r->ReadInt());
  if (n < 0) {
    return BadPayload(std::string("negative ") + what + " count");
  }
  return static_cast<std::size_t>(n);
}

Message FromRaw(replication::RawFrame raw) {
  Message msg;
  msg.version = raw.version;
  msg.type = static_cast<MessageType>(raw.type);
  msg.arg = raw.arg;
  msg.name = std::move(raw.name);
  msg.body = std::move(raw.body);
  return msg;
}

std::string Encode(MessageType type, std::uint64_t arg, std::string name,
                   std::string body) {
  replication::RawFrame raw;
  raw.version = kServerProtocolVersion;
  raw.type = static_cast<std::uint8_t>(type);
  raw.arg = arg;
  raw.name = std::move(name);
  raw.body = std::move(body);
  return EncodeFrameWith(kServerFrameSpec, raw);
}

}  // namespace

std::string EncodeMessage(const Message& msg) {
  replication::RawFrame raw;
  raw.version = msg.version;
  raw.type = static_cast<std::uint8_t>(msg.type);
  raw.arg = msg.arg;
  raw.name = msg.name;
  raw.body = msg.body;
  return EncodeFrameWith(kServerFrameSpec, raw);
}

Result<Message> ParseMessage(std::string_view data) {
  Result<replication::RawFrame> raw =
      ParseFrameWith(kServerFrameSpec, data);
  if (!raw.ok()) return raw.status();
  return FromRaw(std::move(raw).value());
}

std::string EncodeHello(std::string_view tenant, std::uint64_t shard_count) {
  return Encode(MessageType::kHello, shard_count, std::string(tenant), "");
}

std::string EncodeCreateTable(std::string_view table, const Schema& schema) {
  return Encode(MessageType::kCreateTable, 0, std::string(table),
                EncodeSchemaPayload(schema));
}

std::string EncodeRegisterConstraint(std::string_view name,
                                     std::string_view text) {
  return Encode(MessageType::kRegisterConstraint, 0, std::string(name),
                std::string(text));
}

std::string EncodeApplyBatch(const UpdateBatch& batch) {
  StateWriter w;
  batch.EncodeTo(&w);
  return Encode(MessageType::kApplyBatch, 0, "", w.str());
}

std::string EncodeGetStats() {
  return Encode(MessageType::kGetStats, 0, "", "");
}

std::string EncodeHelloOk(std::uint64_t queue_capacity) {
  return Encode(MessageType::kHelloOk, queue_capacity, "rtic-server", "");
}

std::string EncodeOk() { return Encode(MessageType::kOk, 0, "", ""); }

std::string EncodeVerdict(Timestamp timestamp,
                          const std::vector<Violation>& violations) {
  return Encode(MessageType::kVerdict, violations.size(), "",
                EncodeVerdictPayload(timestamp, violations));
}

std::string EncodeStatsReply(const MonitorLike& monitor) {
  StatsReply reply;
  reply.transition_count = monitor.transition_count();
  reply.current_time = monitor.current_time();
  reply.total_violations = monitor.total_violations();
  for (const ConstraintStats& s : monitor.Stats()) {
    StatsReply::ConstraintCounters c;
    c.name = s.name;
    c.transitions = s.transitions;
    c.violations = s.violations;
    c.storage_rows = s.storage_rows;
    c.aux_valuations = s.aux_valuations;
    c.aux_anchors = s.aux_anchors;
    reply.constraints.push_back(std::move(c));
  }
  return Encode(MessageType::kStats, 0, "", EncodeStatsPayload(reply));
}

std::string EncodeError(const Status& status) {
  return Encode(MessageType::kError,
                static_cast<std::uint64_t>(status.code()), "",
                status.message());
}

std::string EncodeOverloaded(std::uint64_t queue_capacity) {
  return Encode(MessageType::kOverloaded, queue_capacity, "",
                "submission queue full");
}

std::string EncodeSchemaPayload(const Schema& schema) {
  StateWriter w;
  w.WriteSize(schema.size());
  for (const Column& col : schema.columns()) {
    w.WriteString(col.name);
    w.WriteInt(static_cast<std::int64_t>(col.type));
  }
  return w.str();
}

Result<Schema> DecodeSchemaPayload(std::string_view payload) {
  StateReader r(payload);
  RTIC_ASSIGN_OR_RETURN(std::size_t n, ReadCount(&r, "column"));
  std::vector<Column> columns;
  columns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RTIC_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    RTIC_ASSIGN_OR_RETURN(std::int64_t type, r.ReadInt());
    if (type < 0 || type > static_cast<std::int64_t>(ValueType::kBool)) {
      return BadPayload("unknown column type " + std::to_string(type));
    }
    columns.push_back(Column{std::move(name), static_cast<ValueType>(type)});
  }
  if (!r.AtEnd()) return BadPayload("trailing bytes after schema");
  return Schema::Make(std::move(columns));
}

std::string EncodeVerdictPayload(Timestamp timestamp,
                                 const std::vector<Violation>& violations) {
  StateWriter w;
  w.WriteInt(timestamp);
  w.WriteSize(violations.size());
  for (const Violation& v : violations) {
    w.WriteString(v.constraint_name);
    w.WriteInt(v.timestamp);
    w.WriteSize(v.witness_columns.size());
    for (const std::string& c : v.witness_columns) w.WriteString(c);
    w.WriteSize(v.witnesses.size());
    for (const Tuple& t : v.witnesses) w.WriteTuple(t);
  }
  return w.str();
}

Result<Verdict> DecodeVerdictPayload(std::string_view payload) {
  StateReader r(payload);
  Verdict verdict;
  RTIC_ASSIGN_OR_RETURN(verdict.timestamp, r.ReadInt());
  RTIC_ASSIGN_OR_RETURN(std::size_t n, ReadCount(&r, "violation"));
  verdict.violations.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Violation v;
    RTIC_ASSIGN_OR_RETURN(v.constraint_name, r.ReadString());
    RTIC_ASSIGN_OR_RETURN(v.timestamp, r.ReadInt());
    RTIC_ASSIGN_OR_RETURN(std::size_t cols, ReadCount(&r, "witness column"));
    v.witness_columns.reserve(cols);
    for (std::size_t j = 0; j < cols; ++j) {
      RTIC_ASSIGN_OR_RETURN(std::string c, r.ReadString());
      v.witness_columns.push_back(std::move(c));
    }
    RTIC_ASSIGN_OR_RETURN(std::size_t rows, ReadCount(&r, "witness"));
    v.witnesses.reserve(rows);
    for (std::size_t j = 0; j < rows; ++j) {
      RTIC_ASSIGN_OR_RETURN(Tuple t, r.ReadTuple());
      v.witnesses.push_back(std::move(t));
    }
    verdict.violations.push_back(std::move(v));
  }
  if (!r.AtEnd()) return BadPayload("trailing bytes after verdict");
  return verdict;
}

std::string EncodeStatsPayload(const StatsReply& stats) {
  StateWriter w;
  w.WriteSize(stats.transition_count);
  w.WriteInt(stats.current_time);
  w.WriteSize(stats.total_violations);
  w.WriteSize(stats.constraints.size());
  for (const StatsReply::ConstraintCounters& c : stats.constraints) {
    w.WriteString(c.name);
    w.WriteSize(c.transitions);
    w.WriteSize(c.violations);
    w.WriteSize(c.storage_rows);
    w.WriteSize(c.aux_valuations);
    w.WriteSize(c.aux_anchors);
  }
  return w.str();
}

Result<StatsReply> DecodeStatsPayload(std::string_view payload) {
  StateReader r(payload);
  StatsReply stats;
  RTIC_ASSIGN_OR_RETURN(std::size_t transitions,
                        ReadCount(&r, "transition"));
  stats.transition_count = transitions;
  RTIC_ASSIGN_OR_RETURN(stats.current_time, r.ReadInt());
  RTIC_ASSIGN_OR_RETURN(std::size_t total, ReadCount(&r, "violation"));
  stats.total_violations = total;
  RTIC_ASSIGN_OR_RETURN(std::size_t n, ReadCount(&r, "constraint"));
  stats.constraints.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StatsReply::ConstraintCounters c;
    RTIC_ASSIGN_OR_RETURN(c.name, r.ReadString());
    RTIC_ASSIGN_OR_RETURN(std::size_t ct, ReadCount(&r, "transition"));
    c.transitions = ct;
    RTIC_ASSIGN_OR_RETURN(std::size_t cv, ReadCount(&r, "violation"));
    c.violations = cv;
    RTIC_ASSIGN_OR_RETURN(std::size_t cs, ReadCount(&r, "storage row"));
    c.storage_rows = cs;
    RTIC_ASSIGN_OR_RETURN(std::size_t av, ReadCount(&r, "aux valuation"));
    c.aux_valuations = av;
    RTIC_ASSIGN_OR_RETURN(std::size_t aa, ReadCount(&r, "aux anchor"));
    c.aux_anchors = aa;
    stats.constraints.push_back(std::move(c));
  }
  if (!r.AtEnd()) return BadPayload("trailing bytes after stats");
  return stats;
}

Status DecodeError(const Message& msg) {
  if (msg.arg == 0 ||
      msg.arg > static_cast<std::uint64_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal("server error with unknown code " +
                            std::to_string(msg.arg) + ": " + msg.body);
  }
  return Status(static_cast<StatusCode>(msg.arg), msg.body);
}

}  // namespace server
}  // namespace rtic
