// RecoveryManager: the durability engine behind ConstraintMonitor.
//
// Bounded history encoding (the paper's central property) makes the whole
// checker state a small, self-contained blob, so durability is simply
//
//   checkpoint (one framed record = monitor SaveState)
//     + WAL tail (the UpdateBatches applied since that checkpoint)
//
// and recovery is O(checkpoint size + tail length) — never a replay of the
// full history. The manager owns that lifecycle: on Open() it restores the
// newest valid checkpoint, replays the WAL tail through a ReplayTarget,
// truncates any torn/corrupt suffix (logged, never fatal), and afterwards
// appends each accepted batch to the log and periodically rewrites the
// checkpoint, garbage-collecting fully-covered segments.

#ifndef RTIC_WAL_RECOVERY_H_
#define RTIC_WAL_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "storage/update_batch.h"
#include "wal/file.h"
#include "wal/group_commit.h"
#include "wal/wal_writer.h"

namespace rtic {
namespace wal {

/// Durability configuration (mirrored by MonitorOptions).
struct WalOptions {
  /// Directory holding segment and checkpoint files; created if absent.
  std::string dir;
  SyncPolicy sync_policy = SyncPolicy::kBatch;
  /// Group-commit gathering window in microseconds; 0 (the default) keeps
  /// the direct per-append path. Non-zero routes AppendBatch through a
  /// GroupCommitter so concurrent appenders under SyncPolicy::kAlways
  /// share fsyncs (see wal/group_commit.h).
  std::uint64_t group_commit_window_micros = 0;
  /// Batches between checkpoints; 0 disables periodic checkpointing.
  std::size_t checkpoint_interval = 64;
  /// Maximum delta checkpoints chained onto one base snapshot before
  /// PlanCheckpoint() forces a new base. 0 disables delta checkpoints
  /// (every checkpoint is a full base, the pre-RTICMON3 behavior). Larger
  /// values bound checkpoint cost by churn for longer, at the price of
  /// recovery installing a longer chain and segment GC retaining the WAL
  /// back to the base.
  std::size_t delta_chain_limit = 8;
  /// Segment rotation threshold in bytes.
  std::size_t segment_bytes = 4u << 20;
  /// File system to use; nullptr means DefaultFs(). Tests substitute a
  /// FaultInjectingFs here.
  Fs* fs = nullptr;
};

/// What Open() found and did.
struct RecoveryStats {
  std::uint64_t checkpoint_seq = 0;  // 0: started without a checkpoint
  std::uint64_t last_seq = 0;        // newest durable record (0: empty log)
  std::size_t replayed_batches = 0;  // WAL-tail records replayed
  bool tail_damaged = false;         // a torn/corrupt tail was truncated
  std::uint64_t truncated_bytes = 0;  // bytes cut from the damaged file
  std::size_t removed_files = 0;      // temp leftovers, damaged or GC'd files
  std::size_t checkpoint_chain = 0;   // checkpoint files installed (0 = none,
                                      // 1 = base only, n = base + n-1 deltas)
};

/// What the RecoveryManager replays into. ConstraintMonitor adapts itself
/// to this interface (see monitor.cc); tests use lightweight fakes.
class ReplayTarget {
 public:
  virtual ~ReplayTarget() = default;

  /// Installs a base checkpoint payload (monitor LoadState).
  virtual Status RestoreCheckpoint(const std::string& payload) = 0;

  /// Applies a delta checkpoint payload on top of the state installed by
  /// RestoreCheckpoint and any earlier deltas of the same chain (monitor
  /// LoadStateDelta). Targets that never write delta checkpoints can keep
  /// the default.
  virtual Status RestoreCheckpointDelta(const std::string& payload) {
    (void)payload;
    return Status::Unimplemented(
        "this ReplayTarget does not support delta checkpoints");
  }

  /// Re-applies one logged batch (monitor ApplyUpdate, checks included).
  virtual Status Replay(const UpdateBatch& batch) = 0;

  /// Serializes the current state (monitor SaveState) — used to re-anchor
  /// the log with a fresh checkpoint after a damaged tail was truncated.
  virtual Result<std::string> CaptureCheckpoint() = 0;
};

class RecoveryManager {
 public:
  /// Runs recovery against `target` and returns a manager ready to append.
  /// Corrupt checkpoints and torn/corrupt WAL tails are repaired (removed or
  /// truncated, with a warning log), not errors; a sequence gap between the
  /// checkpoint and the first surviving WAL record is FailedPrecondition.
  static Result<std::unique_ptr<RecoveryManager>> Open(
      const WalOptions& options, ReplayTarget* target);

  /// Flushes any buffered tail records (best-effort) so a clean shutdown
  /// loses nothing even under SyncPolicy::kNone. On a dead (faulted) file
  /// system the flush fails and buffered bytes are dropped, like a crash.
  ~RecoveryManager();

  /// Appends one batch to the log, durable per the sync policy. On failure
  /// the batch must be treated as not applied (the caller never acked it).
  ///
  /// Thread safety: AppendBatch may be called concurrently with itself
  /// (that is what group commit coalesces); everything else on this class
  /// — Open, WriteCheckpoint, ShouldCheckpoint, destruction — must be
  /// externally quiesced against in-flight appends.
  Status AppendBatch(const UpdateBatch& batch);

  /// The group committer, or nullptr when group commit is off
  /// (group_commit_window_micros == 0). Exposed for benchmarks and tests
  /// that assert coalescing behavior.
  const GroupCommitter* group_committer() const { return group_.get(); }

  /// True when checkpoint_interval accepted batches have accumulated since
  /// the last checkpoint.
  bool ShouldCheckpoint() const;

  /// What the next checkpoint should be: a full base snapshot, or a delta
  /// chaining to `parent_seq` (the current checkpoint). Deltas are planned
  /// while a base exists and the chain is shorter than delta_chain_limit.
  struct CheckpointPlan {
    bool delta = false;
    std::uint64_t parent_seq = 0;  // meaningful iff delta
  };
  CheckpointPlan PlanCheckpoint() const;

  /// Durably installs `payload` as a base checkpoint covering every record
  /// appended so far, then garbage-collects covered segments and
  /// checkpoint files no longer part of the live chain.
  Status WriteCheckpoint(const std::string& payload);

  /// Durably installs `payload` as a delta checkpoint chaining to
  /// `parent_seq`, which must equal checkpoint_seq() (enforced so a stale
  /// caller cannot fork the chain). Covered segments older than the base
  /// are garbage-collected; the base and intermediate deltas stay.
  Status WriteCheckpointDelta(const std::string& payload,
                              std::uint64_t parent_seq);

  const RecoveryStats& stats() const { return stats_; }
  std::uint64_t last_seq() const { return last_seq_; }
  std::uint64_t checkpoint_seq() const { return checkpoint_seq_; }
  std::uint64_t base_seq() const { return base_seq_; }
  std::size_t chain_length() const { return chain_length_; }

 private:
  RecoveryManager(Fs* fs, WalOptions options)
      : fs_(fs), options_(std::move(options)) {}

  /// Restores the newest checkpoint chain (base + deltas) whose files all
  /// validate into `target`; removes files that fail validation or whose
  /// parent link is broken, falling back to older chains.
  Status RestoreLatestCheckpoint(ReplayTarget* target);

  /// Logs `reason`, unlinks checkpoint file `name`, counts the removal.
  Status RemoveCheckpointFile(const std::string& name,
                              const std::string& reason);

  /// Writes `payload` as checkpoint file `name` for sequence `seq`:
  /// temp file + fsync + rename + directory fsync.
  Status WriteCheckpointFile(const std::string& name, std::uint64_t seq,
                             const std::string& payload);

  /// Replays the WAL tail through `target`, truncating damage.
  Status ReplayTail(ReplayTarget* target);

  /// Removes the damaged suffix starting at `segment`/`offset` and every
  /// later segment file.
  Status TruncateDamage(const std::string& segment, std::uint64_t offset,
                        const std::string& reason);

  /// Deletes segment files fully covered by the base checkpoint and
  /// checkpoint files no longer part of the live chain. Segments covering
  /// records in (base_seq_, checkpoint_seq_] are retained so that a chain
  /// member lost later degrades to base + full tail replay, never data
  /// loss. When a replication ship watermark exists (see
  /// wal::kShipWatermarkFileName), segments holding records the standby
  /// has not acknowledged are retained too, even across a primary restart.
  /// Ends with a directory fsync when anything was unlinked.
  Status CollectGarbage();

  /// The ship-watermark retention floor: the highest seq GC may consider
  /// covered. Max when no watermark file exists, 0 (retain everything)
  /// when the file is unreadable.
  Result<std::uint64_t> ShipRetentionFloor();

  Fs* fs_;
  WalOptions options_;
  std::unique_ptr<WalWriter> writer_;
  std::unique_ptr<GroupCommitter> group_;  // non-null iff window > 0
  std::mutex append_mu_;  // serializes AppendBatch bookkeeping (and the
                          // writer itself on the direct, non-group path)
  std::uint64_t checkpoint_seq_ = 0;
  std::uint64_t base_seq_ = 0;     // base snapshot anchoring the live chain
  std::size_t chain_length_ = 0;   // deltas stacked on that base
  std::uint64_t last_seq_ = 0;
  std::size_t batches_since_checkpoint_ = 0;
  RecoveryStats stats_;
};

}  // namespace wal
}  // namespace rtic

#endif  // RTIC_WAL_RECOVERY_H_
