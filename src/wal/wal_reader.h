// WalReader: iterates the records of a WAL directory in sequence order,
// stopping cleanly at the first torn, corrupt, or chain-breaking record
// (duplicate or skipped sequence number) — everything from that byte on is
// the damaged tail, which RecoveryManager truncates.

#ifndef RTIC_WAL_WAL_READER_H_
#define RTIC_WAL_WAL_READER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "wal/file.h"

namespace rtic {
namespace wal {

class WalReader {
 public:
  struct Record {
    std::uint64_t seq = 0;
    std::string payload;
    /// Where the record came from, so a caller that rejects a
    /// frame-valid payload can truncate at exactly this point.
    std::string segment;       // file name within the directory
    std::uint64_t offset = 0;  // byte offset of the record's header
  };

  /// The first unusable byte of the log.
  struct Damage {
    std::string segment;       // file name within the directory
    std::uint64_t offset = 0;  // valid bytes in that file end here
    std::uint64_t file_bytes = 0;
    std::string reason;
  };

  struct SegmentInfo {
    std::string name;
    std::uint64_t first_seq = 0;
  };

  /// Scans `dir` for segment files. Non-segment files are ignored.
  static Result<std::unique_ptr<WalReader>> Open(Fs* fs,
                                                 const std::string& dir);

  /// Reads the next record. Returns false at the end of the log — either
  /// its clean end or the first damaged byte (see damage()). Non-OK only
  /// for real I/O failures, never for corruption.
  Result<bool> Next(Record* out);

  /// Set iff iteration stopped at damage instead of the clean end.
  const std::optional<Damage>& damage() const { return damage_; }

  /// Discovered segments, sorted by first sequence number.
  const std::vector<SegmentInfo>& segments() const { return segments_; }

 private:
  WalReader(Fs* fs, std::string dir, std::vector<SegmentInfo> segments)
      : fs_(fs), dir_(std::move(dir)), segments_(std::move(segments)) {}

  Fs* fs_;
  std::string dir_;
  std::vector<SegmentInfo> segments_;
  std::size_t index_ = 0;       // segment being read
  bool loaded_ = false;         // content_ holds segments_[index_]
  std::string content_;
  std::size_t offset_ = 0;
  std::uint64_t expected_seq_ = 0;  // 0 until the first record is read
  std::optional<Damage> damage_;
};

}  // namespace wal
}  // namespace rtic

#endif  // RTIC_WAL_WAL_READER_H_
