#include "wal/wal_reader.h"

#include <algorithm>

#include "wal/wal_format.h"

namespace rtic {
namespace wal {

Result<std::unique_ptr<WalReader>> WalReader::Open(Fs* fs,
                                                   const std::string& dir) {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  std::vector<SegmentInfo> segments;
  for (const std::string& name : names) {
    std::uint64_t first_seq = 0;
    if (ParseSegmentFileName(name, &first_seq)) {
      segments.push_back(SegmentInfo{name, first_seq});
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.first_seq < b.first_seq;
            });
  return std::unique_ptr<WalReader>(
      new WalReader(fs, dir, std::move(segments)));
}

Result<bool> WalReader::Next(Record* out) {
  if (damage_) return false;
  while (index_ < segments_.size()) {
    const SegmentInfo& seg = segments_[index_];
    if (!loaded_) {
      // A segment whose name does not continue the chain means records in
      // between are missing; its content is unusable.
      if (expected_seq_ != 0 && seg.first_seq != expected_seq_) {
        damage_ = Damage{seg.name, 0, 0,
                         "segment starts at seq " +
                             std::to_string(seg.first_seq) + ", expected " +
                             std::to_string(expected_seq_)};
        return false;
      }
      RTIC_ASSIGN_OR_RETURN(content_, fs_->ReadFile(dir_ + "/" + seg.name));
      loaded_ = true;
      offset_ = 0;
    }
    ParsedRecord rec;
    std::string reason;
    switch (ParseRecord(content_, offset_, &rec, &reason)) {
      case ParseOutcome::kEnd:
        ++index_;
        loaded_ = false;
        continue;
      case ParseOutcome::kTorn:
      case ParseOutcome::kCorrupt:
        damage_ = Damage{seg.name, offset_, content_.size(), reason};
        return false;
      case ParseOutcome::kRecord:
        break;
    }
    std::uint64_t expected =
        expected_seq_ != 0 ? expected_seq_ : seg.first_seq;
    if (rec.seq != expected) {
      damage_ = Damage{seg.name, offset_, content_.size(),
                       "sequence discontinuity: found seq " +
                           std::to_string(rec.seq) + ", expected " +
                           std::to_string(expected)};
      return false;
    }
    out->seq = rec.seq;
    out->payload = std::move(rec.payload);
    out->segment = seg.name;
    out->offset = offset_;
    offset_ = rec.end_offset;
    expected_seq_ = rec.seq + 1;
    return true;
  }
  return false;
}

}  // namespace wal
}  // namespace rtic
