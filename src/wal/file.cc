#include "wal/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace rtic {
namespace wal {
namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  // No flush: an abandoned handle models a crashed owner (see file.h).
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    buffer_.append(data);
    return Status::OK();
  }

  Status Flush() override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    const char* p = buffer_.data();
    std::size_t left = buffer_.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    buffer_.clear();
    return Status::OK();
  }

  Status Sync() override {
    RTIC_RETURN_IF_ERROR(Flush());
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
    return Status::OK();
  }

  Status Close() override {
    RTIC_RETURN_IF_ERROR(Flush());
    if (::close(fd_) != 0) {
      fd_ = -1;
      return ErrnoStatus("close", path_);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
  std::string buffer_;
};

class PosixFs final : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_CREAT | O_WRONLY | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path);
    std::string out;
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = ErrnoStatus("read", path);
        ::close(fd);
        return s;
      }
      if (n == 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return ErrnoStatus("opendir", dir);
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", dir);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open", dir);
    if (::fsync(fd) != 0) {
      Status s = ErrnoStatus("fsync", dir);
      ::close(fd);
      return s;
    }
    ::close(fd);
    return Status::OK();
  }

  Status Truncate(const std::string& path, std::uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path);
    }
    return Status::OK();
  }

  Result<bool> FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

Status DeadFsError() {
  return Status::Internal("fault-injected file system is dead");
}

}  // namespace

Fs* DefaultFs() {
  static PosixFs* fs = new PosixFs;
  return fs;
}

// ---- FaultInjectingFs -------------------------------------------------------

/// A WritableFile whose operations are accounted (and killed) by the owning
/// FaultInjectingFs.
class FaultInjectingFile final : public WritableFile {
 public:
  FaultInjectingFile(FaultInjectingFs* fs, std::unique_ptr<WritableFile> base)
      : fs_(fs), base_(std::move(base)) {}

  // The base destructor closes without flushing, which is the wanted
  // crashed-process behavior.
  ~FaultInjectingFile() override = default;

  Status Append(std::string_view data) override {
    RTIC_ASSIGN_OR_RETURN(bool inject, fs_->BeginOp());
    if (!inject) return base_->Append(data);
    switch (fs_->kind_) {
      case FaultKind::kFailWrite:
        break;  // nothing lands
      case FaultKind::kShortWrite: {
        // A prefix lands OS-side: the classic torn record.
        (void)base_->Append(data.substr(0, data.size() / 2));
        (void)base_->Flush();
        break;
      }
      case FaultKind::kBitFlip: {
        // The full record lands but one byte is corrupted; only the
        // checksum can tell.
        std::string corrupted(data);
        if (!corrupted.empty()) corrupted[corrupted.size() / 2] ^= 0x20;
        (void)base_->Append(corrupted);
        (void)base_->Flush();
        break;
      }
    }
    return Status::Internal("injected write fault");
  }

  Status Flush() override {
    RTIC_ASSIGN_OR_RETURN(bool inject, fs_->BeginOp());
    if (inject) return Status::Internal("injected flush fault");
    return base_->Flush();
  }

  Status Sync() override {
    RTIC_ASSIGN_OR_RETURN(bool inject, fs_->BeginOp());
    if (inject) return Status::Internal("injected sync fault");
    return base_->Sync();
  }

  Status Close() override {
    if (fs_->dead()) return DeadFsError();  // drop buffered bytes, like a crash
    return base_->Close();
  }

 private:
  FaultInjectingFs* fs_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingFs::FaultInjectingFs(Fs* base, std::uint64_t trigger_op,
                                   FaultKind kind)
    : base_(base), trigger_op_(trigger_op), kind_(kind) {}

std::uint64_t FaultInjectingFs::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultInjectingFs::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

Result<bool> FaultInjectingFs::BeginOp() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return DeadFsError();
  ++ops_;
  if (trigger_op_ != 0 && ops_ == trigger_op_) {
    dead_ = true;
    return true;
  }
  return false;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFs::NewWritableFile(
    const std::string& path, bool truncate) {
  RTIC_ASSIGN_OR_RETURN(bool inject, BeginOp());
  if (inject) return Status::Internal("injected open fault");
  RTIC_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                        base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingFile>(this, std::move(base)));
}

Result<std::string> FaultInjectingFs::ReadFile(const std::string& path) {
  if (dead()) return DeadFsError();
  return base_->ReadFile(path);
}

Result<std::vector<std::string>> FaultInjectingFs::ListDir(
    const std::string& dir) {
  if (dead()) return DeadFsError();
  return base_->ListDir(dir);
}

Status FaultInjectingFs::CreateDir(const std::string& dir) {
  if (dead()) return DeadFsError();
  return base_->CreateDir(dir);
}

Status FaultInjectingFs::Rename(const std::string& from,
                                const std::string& to) {
  RTIC_ASSIGN_OR_RETURN(bool inject, BeginOp());
  if (inject) return Status::Internal("injected rename fault");
  return base_->Rename(from, to);
}

Status FaultInjectingFs::Remove(const std::string& path) {
  RTIC_ASSIGN_OR_RETURN(bool inject, BeginOp());
  if (inject) return Status::Internal("injected remove fault");
  return base_->Remove(path);
}

Status FaultInjectingFs::SyncDir(const std::string& dir) {
  // Counted as a mutating operation: a crash at (or after) the directory
  // fsync is exactly the lost-dirent window the crash matrix must cover —
  // the rename/unlink may or may not have reached the platter.
  RTIC_ASSIGN_OR_RETURN(bool inject, BeginOp());
  if (inject) return Status::Internal("injected directory sync fault");
  return base_->SyncDir(dir);
}

Status FaultInjectingFs::Truncate(const std::string& path,
                                  std::uint64_t size) {
  RTIC_ASSIGN_OR_RETURN(bool inject, BeginOp());
  if (inject) return Status::Internal("injected truncate fault");
  return base_->Truncate(path, size);
}

Result<bool> FaultInjectingFs::FileExists(const std::string& path) {
  if (dead()) return DeadFsError();
  return base_->FileExists(path);
}

}  // namespace wal
}  // namespace rtic
