#include "wal/recovery.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "storage/codec.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"

namespace rtic {
namespace wal {
namespace {

bool HasTempSuffix(std::string_view name) {
  constexpr std::string_view kSuffix = kTempSuffix;
  return name.size() > kSuffix.size() &&
         name.substr(name.size() - kSuffix.size()) == kSuffix;
}

}  // namespace

Result<std::unique_ptr<RecoveryManager>> RecoveryManager::Open(
    const WalOptions& options, ReplayTarget* target) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WalOptions::dir must be set");
  }
  if (target == nullptr) {
    return Status::InvalidArgument("RecoveryManager needs a ReplayTarget");
  }
  Fs* fs = options.fs != nullptr ? options.fs : DefaultFs();
  RTIC_RETURN_IF_ERROR(fs->CreateDir(options.dir));
  std::unique_ptr<RecoveryManager> mgr(new RecoveryManager(fs, options));

  // Interrupted checkpoint writes never got renamed into place; drop them.
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs->ListDir(options.dir));
  for (const std::string& name : names) {
    if (HasTempSuffix(name)) {
      RTIC_RETURN_IF_ERROR(fs->Remove(options.dir + "/" + name));
      ++mgr->stats_.removed_files;
    }
  }

  RTIC_RETURN_IF_ERROR(mgr->RestoreLatestCheckpoint(target));
  RTIC_RETURN_IF_ERROR(mgr->ReplayTail(target));

  WalWriter::Options writer_options;
  writer_options.sync_policy = options.sync_policy;
  writer_options.segment_bytes = options.segment_bytes;
  const bool group_commit = options.group_commit_window_micros > 0;
  if (group_commit && options.sync_policy == SyncPolicy::kAlways) {
    // The GroupCommitter issues the fsyncs: the writer pushes each record
    // to the OS at append and fsyncs closed segments at rotation, so the
    // only un-synced bytes are the open segment's current group.
    writer_options.sync_policy = SyncPolicy::kBatch;
  }
  RTIC_ASSIGN_OR_RETURN(mgr->writer_,
                        WalWriter::Open(fs, options.dir, writer_options,
                                        mgr->last_seq_ + 1));
  if (group_commit) {
    GroupCommitter::Options group_options;
    group_options.sync_policy = options.sync_policy;
    group_options.window_micros = options.group_commit_window_micros;
    mgr->group_ = std::make_unique<GroupCommitter>(mgr->writer_.get(),
                                                   group_options);
  }

  // A truncated tail leaves records beyond the checkpoint whose original
  // suffix is gone. Re-anchor the log with a fresh checkpoint at last_seq
  // so the contiguous-chain invariant holds for the next recovery.
  if (mgr->stats_.tail_damaged && mgr->last_seq_ > mgr->checkpoint_seq_) {
    RTIC_ASSIGN_OR_RETURN(std::string payload, target->CaptureCheckpoint());
    RTIC_RETURN_IF_ERROR(mgr->WriteCheckpoint(payload));
  }
  mgr->stats_.checkpoint_seq = mgr->checkpoint_seq_;
  mgr->stats_.last_seq = mgr->last_seq_;
  return mgr;
}

RecoveryManager::~RecoveryManager() {
  // Clean shutdown: push any buffered tail records out of the process so
  // they survive the exit (kNone buffers whole records, kBatch may hold an
  // unsynced segment). Best-effort — on a crashed (dead) file system the
  // close fails and the buffered bytes die with the process, as they should.
  if (writer_ != nullptr) {
    Status s = writer_->Rotate();
    if (!s.ok()) {
      RTIC_LOG(Warning) << "wal: close without flush: " << s.ToString();
    }
  }
}

Status RecoveryManager::RestoreLatestCheckpoint(ReplayTarget* target) {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs_->ListDir(options_.dir));
  std::vector<std::pair<std::uint64_t, std::string>> checkpoints;
  for (const std::string& name : names) {
    std::uint64_t seq = 0;
    if (ParseCheckpointFileName(name, &seq)) checkpoints.emplace_back(seq, name);
  }
  std::sort(checkpoints.rbegin(), checkpoints.rend());
  for (const auto& [seq, name] : checkpoints) {
    const std::string path = options_.dir + "/" + name;
    RTIC_ASSIGN_OR_RETURN(std::string content, fs_->ReadFile(path));
    ParsedRecord rec;
    std::string reason;
    ParseOutcome outcome = ParseRecord(content, 0, &rec, &reason);
    if (outcome != ParseOutcome::kRecord) {
      // fall through to removal
    } else if (rec.seq != seq) {
      reason = "record seq " + std::to_string(rec.seq) +
               " does not match file name";
    } else if (rec.end_offset != content.size()) {
      reason = "trailing bytes after the checkpoint record";
    } else {
      RTIC_RETURN_IF_ERROR(target->RestoreCheckpoint(rec.payload));
      checkpoint_seq_ = seq;
      break;
    }
    RTIC_LOG(Warning) << "wal: removing invalid checkpoint " << name << " ("
                      << reason << ")";
    RTIC_RETURN_IF_ERROR(fs_->Remove(path));
    ++stats_.removed_files;
  }
  stats_.checkpoint_seq = checkpoint_seq_;
  last_seq_ = checkpoint_seq_;
  return Status::OK();
}

Status RecoveryManager::ReplayTail(ReplayTarget* target) {
  RTIC_ASSIGN_OR_RETURN(std::unique_ptr<WalReader> reader,
                        WalReader::Open(fs_, options_.dir));
  bool first = true;
  WalReader::Record rec;
  while (true) {
    RTIC_ASSIGN_OR_RETURN(bool has_record, reader->Next(&rec));
    if (!has_record) break;
    if (first && rec.seq > checkpoint_seq_ + 1) {
      // Records between the checkpoint and the log's start are simply
      // missing — not corruption we can truncate away. Refuse to guess.
      return Status::FailedPrecondition(
          "WAL gap: checkpoint covers up to seq " +
          std::to_string(checkpoint_seq_) + " but the log starts at seq " +
          std::to_string(rec.seq));
    }
    first = false;
    if (rec.seq <= checkpoint_seq_) continue;  // already in the checkpoint
    StateReader payload_reader(rec.payload);
    Result<UpdateBatch> batch = UpdateBatch::DecodeFrom(&payload_reader);
    std::string damage_reason;
    if (!batch.ok()) {
      damage_reason = batch.status().message();
    } else if (!payload_reader.AtEnd()) {
      damage_reason = "trailing tokens after the update batch";
    }
    if (!damage_reason.empty()) {
      // The frame checksum passed but the payload is not a batch: treat the
      // record as the first damaged byte, like a torn tail.
      return TruncateDamage(rec.segment, rec.offset, damage_reason);
    }
    RTIC_RETURN_IF_ERROR(target->Replay(*batch));
    last_seq_ = rec.seq;
    ++stats_.replayed_batches;
  }
  if (reader->damage().has_value()) {
    const WalReader::Damage& damage = *reader->damage();
    return TruncateDamage(damage.segment, damage.offset, damage.reason);
  }
  batches_since_checkpoint_ = stats_.replayed_batches;
  return Status::OK();
}

Status RecoveryManager::TruncateDamage(const std::string& segment,
                                       std::uint64_t offset,
                                       const std::string& reason) {
  stats_.tail_damaged = true;
  std::uint64_t damaged_first_seq = 0;
  ParseSegmentFileName(segment, &damaged_first_seq);
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs_->ListDir(options_.dir));
  for (const std::string& name : names) {
    std::uint64_t first_seq = 0;
    if (!ParseSegmentFileName(name, &first_seq)) continue;
    if (first_seq <= damaged_first_seq) continue;
    RTIC_RETURN_IF_ERROR(fs_->Remove(options_.dir + "/" + name));
    ++stats_.removed_files;
  }
  const std::string path = options_.dir + "/" + segment;
  RTIC_ASSIGN_OR_RETURN(std::string content, fs_->ReadFile(path));
  if (content.size() > offset) {
    stats_.truncated_bytes += content.size() - offset;
  }
  if (offset == 0) {
    RTIC_RETURN_IF_ERROR(fs_->Remove(path));
    ++stats_.removed_files;
  } else {
    RTIC_RETURN_IF_ERROR(fs_->Truncate(path, offset));
  }
  RTIC_LOG(Warning) << "wal: damaged tail in " << segment << " at offset "
                    << offset << " (" << reason << "); truncated "
                    << stats_.truncated_bytes << " byte(s), removed "
                    << stats_.removed_files << " file(s)";
  batches_since_checkpoint_ = stats_.replayed_batches;
  return Status::OK();
}

Status RecoveryManager::AppendBatch(const UpdateBatch& batch) {
  StateWriter payload;
  batch.EncodeTo(&payload);
  if (group_ != nullptr) {
    // The committer serializes writer access itself; holding append_mu_
    // across Commit would defeat the gathering window.
    std::uint64_t seq = 0;
    RTIC_RETURN_IF_ERROR(group_->Commit(payload.str(), &seq));
    std::lock_guard<std::mutex> lock(append_mu_);
    last_seq_ = std::max(last_seq_, seq);
    ++batches_since_checkpoint_;
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(append_mu_);
  RTIC_RETURN_IF_ERROR(writer_->Append(writer_->next_seq(), payload.str()));
  last_seq_ = writer_->next_seq() - 1;
  ++batches_since_checkpoint_;
  return Status::OK();
}

bool RecoveryManager::ShouldCheckpoint() const {
  return options_.checkpoint_interval > 0 &&
         batches_since_checkpoint_ >= options_.checkpoint_interval;
}

Status RecoveryManager::WriteCheckpoint(const std::string& payload) {
  const std::uint64_t seq = last_seq_;
  if (seq == 0) {
    return Status::FailedPrecondition(
        "nothing to checkpoint: no record has been appended");
  }
  // Close the open segment first so every segment file holds only records
  // <= seq, making garbage collection a plain deletion of all of them.
  RTIC_RETURN_IF_ERROR(writer_->Rotate());
  const std::string name = CheckpointFileName(seq);
  const std::string tmp_path = options_.dir + "/" + name + kTempSuffix;
  {
    RTIC_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          fs_->NewWritableFile(tmp_path, /*truncate=*/true));
    RTIC_RETURN_IF_ERROR(file->Append(EncodeRecord(seq, payload)));
    RTIC_RETURN_IF_ERROR(file->Sync());
    RTIC_RETURN_IF_ERROR(file->Close());
  }
  RTIC_RETURN_IF_ERROR(fs_->Rename(tmp_path, options_.dir + "/" + name));
  checkpoint_seq_ = seq;
  batches_since_checkpoint_ = 0;
  return CollectGarbage();
}

Status RecoveryManager::CollectGarbage() {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs_->ListDir(options_.dir));
  for (const std::string& name : names) {
    std::uint64_t seq = 0;
    const bool stale_segment = ParseSegmentFileName(name, &seq);
    const bool stale_checkpoint =
        !stale_segment && ParseCheckpointFileName(name, &seq) &&
        seq < checkpoint_seq_;
    if (!stale_segment && !stale_checkpoint) continue;
    RTIC_RETURN_IF_ERROR(fs_->Remove(options_.dir + "/" + name));
  }
  return Status::OK();
}

}  // namespace wal
}  // namespace rtic
