#include "wal/recovery.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "storage/codec.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"

namespace rtic {
namespace wal {
namespace {

bool HasTempSuffix(std::string_view name) {
  constexpr std::string_view kSuffix = kTempSuffix;
  return name.size() > kSuffix.size() &&
         name.substr(name.size() - kSuffix.size()) == kSuffix;
}

/// One checkpoint file found on disk: a base (`ckpt-<seq>`) or a delta
/// (`ckpt-<seq>.d<parent>`) chaining to the checkpoint at `parent`.
struct CkptEntry {
  std::uint64_t seq = 0;
  std::uint64_t parent = 0;  // meaningful iff is_delta
  bool is_delta = false;
  std::string name;
};

}  // namespace

Result<std::unique_ptr<RecoveryManager>> RecoveryManager::Open(
    const WalOptions& options, ReplayTarget* target) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WalOptions::dir must be set");
  }
  if (target == nullptr) {
    return Status::InvalidArgument("RecoveryManager needs a ReplayTarget");
  }
  Fs* fs = options.fs != nullptr ? options.fs : DefaultFs();
  RTIC_RETURN_IF_ERROR(fs->CreateDir(options.dir));
  std::unique_ptr<RecoveryManager> mgr(new RecoveryManager(fs, options));

  // Interrupted checkpoint writes never got renamed into place; drop them.
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs->ListDir(options.dir));
  for (const std::string& name : names) {
    if (HasTempSuffix(name)) {
      RTIC_RETURN_IF_ERROR(fs->Remove(options.dir + "/" + name));
      ++mgr->stats_.removed_files;
    }
  }

  RTIC_RETURN_IF_ERROR(mgr->RestoreLatestCheckpoint(target));
  RTIC_RETURN_IF_ERROR(mgr->ReplayTail(target));

  WalWriter::Options writer_options;
  writer_options.sync_policy = options.sync_policy;
  writer_options.segment_bytes = options.segment_bytes;
  const bool group_commit = options.group_commit_window_micros > 0;
  if (group_commit && options.sync_policy == SyncPolicy::kAlways) {
    // The GroupCommitter issues the fsyncs: the writer pushes each record
    // to the OS at append and fsyncs closed segments at rotation, so the
    // only un-synced bytes are the open segment's current group.
    writer_options.sync_policy = SyncPolicy::kBatch;
  }
  RTIC_ASSIGN_OR_RETURN(mgr->writer_,
                        WalWriter::Open(fs, options.dir, writer_options,
                                        mgr->last_seq_ + 1));
  if (group_commit) {
    GroupCommitter::Options group_options;
    group_options.sync_policy = options.sync_policy;
    group_options.window_micros = options.group_commit_window_micros;
    mgr->group_ = std::make_unique<GroupCommitter>(mgr->writer_.get(),
                                                   group_options);
  }

  // A truncated tail leaves records beyond the checkpoint whose original
  // suffix is gone. Re-anchor the log with a fresh checkpoint at last_seq
  // so the contiguous-chain invariant holds for the next recovery.
  if (mgr->stats_.tail_damaged && mgr->last_seq_ > mgr->checkpoint_seq_) {
    RTIC_ASSIGN_OR_RETURN(std::string payload, target->CaptureCheckpoint());
    RTIC_RETURN_IF_ERROR(mgr->WriteCheckpoint(payload));
  }
  mgr->stats_.checkpoint_seq = mgr->checkpoint_seq_;
  mgr->stats_.last_seq = mgr->last_seq_;
  return mgr;
}

RecoveryManager::~RecoveryManager() {
  // Clean shutdown: push any buffered tail records out of the process so
  // they survive the exit (kNone buffers whole records, kBatch may hold an
  // unsynced segment). Best-effort — on a crashed (dead) file system the
  // close fails and the buffered bytes die with the process, as they should.
  if (writer_ != nullptr) {
    Status s = writer_->Rotate();
    if (!s.ok()) {
      RTIC_LOG(Warning) << "wal: close without flush: " << s.ToString();
    }
  }
}

Status RecoveryManager::RemoveCheckpointFile(const std::string& name,
                                             const std::string& reason) {
  RTIC_LOG(Warning) << "wal: removing invalid checkpoint " << name << " ("
                    << reason << ")";
  RTIC_RETURN_IF_ERROR(fs_->Remove(options_.dir + "/" + name));
  ++stats_.removed_files;
  return Status::OK();
}

Status RecoveryManager::RestoreLatestCheckpoint(ReplayTarget* target) {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs_->ListDir(options_.dir));
  std::vector<CkptEntry> entries;
  for (const std::string& name : names) {
    CkptEntry e;
    e.name = name;
    if (ParseCheckpointFileName(name, &e.seq)) {
      entries.push_back(std::move(e));
    } else if (ParseDeltaCheckpointFileName(name, &e.seq, &e.parent)) {
      e.is_delta = true;
      entries.push_back(std::move(e));
    }
  }
  // Newest first; a base sorts ahead of a delta at the same seq so the
  // self-contained snapshot wins ties.
  std::sort(entries.begin(), entries.end(),
            [](const CkptEntry& a, const CkptEntry& b) {
              if (a.seq != b.seq) return a.seq > b.seq;
              return a.is_delta < b.is_delta;
            });

  // Pick the newest entry whose parent chain resolves down to a base with
  // every member file parseable, then install base + deltas in order. Any
  // broken link evicts the offending file and restarts the selection — the
  // common fallback is the chain's own base plus a longer WAL replay, which
  // segment GC retains exactly for this reason (see CollectGarbage).
  bool installed = false;
  while (!entries.empty() && !installed) {
    // Chain membership, tip first; chain[members-1] is the base.
    std::vector<std::size_t> chain;
    std::size_t cursor = 0;  // entries[0] is the newest → the tip
    bool broken = false;
    while (true) {
      chain.push_back(cursor);
      if (!entries[cursor].is_delta) break;
      const std::uint64_t want = entries[cursor].parent;
      std::size_t next = entries.size();
      for (std::size_t i = 0; i < entries.size(); ++i) {
        // The sort already put a base before a delta of equal seq.
        if (entries[i].seq == want) {
          next = i;
          break;
        }
      }
      if (next == entries.size()) {
        RTIC_RETURN_IF_ERROR(RemoveCheckpointFile(
            entries[cursor].name,
            "delta's parent checkpoint seq " + std::to_string(want) +
                " is missing"));
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(cursor));
        broken = true;
        break;
      }
      cursor = next;
    }
    if (broken) continue;

    // Validate every member frame before touching the target, so a corrupt
    // delta discovered mid-chain never leaves a half-installed state.
    std::vector<std::string> payloads(chain.size());
    std::size_t bad = chain.size();
    for (std::size_t k = 0; k < chain.size(); ++k) {
      const CkptEntry& e = entries[chain[k]];
      RTIC_ASSIGN_OR_RETURN(std::string content,
                            fs_->ReadFile(options_.dir + "/" + e.name));
      ParsedRecord rec;
      std::string reason;
      ParseOutcome outcome = ParseRecord(content, 0, &rec, &reason);
      if (outcome != ParseOutcome::kRecord) {
        // reason already set by ParseRecord
      } else if (rec.seq != e.seq) {
        reason = "record seq " + std::to_string(rec.seq) +
                 " does not match file name";
      } else if (rec.end_offset != content.size()) {
        reason = "trailing bytes after the checkpoint record";
      } else {
        payloads[k] = std::move(rec.payload);
        continue;
      }
      RTIC_RETURN_IF_ERROR(RemoveCheckpointFile(e.name, reason));
      bad = chain[k];
      break;
    }
    if (bad != chain.size()) {
      entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(bad));
      continue;
    }

    // Install: base first, then deltas ascending. A target-level rejection
    // (e.g. a delta chaining to a different logical state) evicts that file
    // and restarts; the retried chain re-installs its base from scratch, so
    // partial progress here cannot leak into the next attempt.
    bool rejected = false;
    for (std::size_t k = chain.size(); k-- > 0;) {
      const CkptEntry& e = entries[chain[k]];
      Status s = e.is_delta
                     ? target->RestoreCheckpointDelta(payloads[k])
                     : target->RestoreCheckpoint(payloads[k]);
      if (!s.ok()) {
        RTIC_RETURN_IF_ERROR(RemoveCheckpointFile(e.name, s.message()));
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(chain[k]));
        rejected = true;
        break;
      }
    }
    if (rejected) continue;

    checkpoint_seq_ = entries[chain[0]].seq;
    base_seq_ = entries[chain.back()].seq;
    chain_length_ = chain.size() - 1;
    stats_.checkpoint_chain = chain.size();
    installed = true;
  }
  stats_.checkpoint_seq = checkpoint_seq_;
  last_seq_ = checkpoint_seq_;
  return Status::OK();
}

Status RecoveryManager::ReplayTail(ReplayTarget* target) {
  RTIC_ASSIGN_OR_RETURN(std::unique_ptr<WalReader> reader,
                        WalReader::Open(fs_, options_.dir));
  bool first = true;
  WalReader::Record rec;
  while (true) {
    RTIC_ASSIGN_OR_RETURN(bool has_record, reader->Next(&rec));
    if (!has_record) break;
    if (first && rec.seq > checkpoint_seq_ + 1) {
      // Records between the checkpoint and the log's start are simply
      // missing — not corruption we can truncate away. Refuse to guess.
      return Status::FailedPrecondition(
          "WAL gap: checkpoint covers up to seq " +
          std::to_string(checkpoint_seq_) + " but the log starts at seq " +
          std::to_string(rec.seq));
    }
    first = false;
    if (rec.seq <= checkpoint_seq_) continue;  // already in the checkpoint
    StateReader payload_reader(rec.payload);
    Result<UpdateBatch> batch = UpdateBatch::DecodeFrom(&payload_reader);
    std::string damage_reason;
    if (!batch.ok()) {
      damage_reason = batch.status().message();
    } else if (!payload_reader.AtEnd()) {
      damage_reason = "trailing tokens after the update batch";
    }
    if (!damage_reason.empty()) {
      // The frame checksum passed but the payload is not a batch: treat the
      // record as the first damaged byte, like a torn tail.
      return TruncateDamage(rec.segment, rec.offset, damage_reason);
    }
    RTIC_RETURN_IF_ERROR(target->Replay(*batch));
    last_seq_ = rec.seq;
    ++stats_.replayed_batches;
  }
  if (reader->damage().has_value()) {
    const WalReader::Damage& damage = *reader->damage();
    return TruncateDamage(damage.segment, damage.offset, damage.reason);
  }
  batches_since_checkpoint_ = stats_.replayed_batches;
  return Status::OK();
}

Status RecoveryManager::TruncateDamage(const std::string& segment,
                                       std::uint64_t offset,
                                       const std::string& reason) {
  stats_.tail_damaged = true;
  std::uint64_t damaged_first_seq = 0;
  ParseSegmentFileName(segment, &damaged_first_seq);
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs_->ListDir(options_.dir));
  for (const std::string& name : names) {
    std::uint64_t first_seq = 0;
    if (!ParseSegmentFileName(name, &first_seq)) continue;
    if (first_seq <= damaged_first_seq) continue;
    RTIC_RETURN_IF_ERROR(fs_->Remove(options_.dir + "/" + name));
    ++stats_.removed_files;
  }
  const std::string path = options_.dir + "/" + segment;
  RTIC_ASSIGN_OR_RETURN(std::string content, fs_->ReadFile(path));
  if (content.size() > offset) {
    stats_.truncated_bytes += content.size() - offset;
  }
  if (offset == 0) {
    RTIC_RETURN_IF_ERROR(fs_->Remove(path));
    ++stats_.removed_files;
  } else {
    RTIC_RETURN_IF_ERROR(fs_->Truncate(path, offset));
  }
  RTIC_LOG(Warning) << "wal: damaged tail in " << segment << " at offset "
                    << offset << " (" << reason << "); truncated "
                    << stats_.truncated_bytes << " byte(s), removed "
                    << stats_.removed_files << " file(s)";
  batches_since_checkpoint_ = stats_.replayed_batches;
  return Status::OK();
}

Status RecoveryManager::AppendBatch(const UpdateBatch& batch) {
  StateWriter payload;
  batch.EncodeTo(&payload);
  if (group_ != nullptr) {
    // The committer serializes writer access itself; holding append_mu_
    // across Commit would defeat the gathering window.
    std::uint64_t seq = 0;
    RTIC_RETURN_IF_ERROR(group_->Commit(payload.str(), &seq));
    std::lock_guard<std::mutex> lock(append_mu_);
    last_seq_ = std::max(last_seq_, seq);
    ++batches_since_checkpoint_;
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(append_mu_);
  RTIC_RETURN_IF_ERROR(writer_->Append(writer_->next_seq(), payload.str()));
  last_seq_ = writer_->next_seq() - 1;
  ++batches_since_checkpoint_;
  return Status::OK();
}

bool RecoveryManager::ShouldCheckpoint() const {
  return options_.checkpoint_interval > 0 &&
         batches_since_checkpoint_ >= options_.checkpoint_interval;
}

RecoveryManager::CheckpointPlan RecoveryManager::PlanCheckpoint() const {
  CheckpointPlan plan;
  if (options_.delta_chain_limit > 0 && checkpoint_seq_ > 0 &&
      chain_length_ < options_.delta_chain_limit) {
    plan.delta = true;
    plan.parent_seq = checkpoint_seq_;
  }
  return plan;
}

Status RecoveryManager::WriteCheckpointFile(const std::string& name,
                                            std::uint64_t seq,
                                            const std::string& payload) {
  const std::string tmp_path = options_.dir + "/" + name + kTempSuffix;
  {
    RTIC_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          fs_->NewWritableFile(tmp_path, /*truncate=*/true));
    RTIC_RETURN_IF_ERROR(file->Append(EncodeRecord(seq, payload)));
    RTIC_RETURN_IF_ERROR(file->Sync());
    RTIC_RETURN_IF_ERROR(file->Close());
  }
  RTIC_RETURN_IF_ERROR(fs_->Rename(tmp_path, options_.dir + "/" + name));
  // The rename made the data durable but not the directory entry: a crash
  // before the directory itself reaches disk can lose the new name, and
  // would be fatal once GC has unlinked the files the lost name superseded.
  return fs_->SyncDir(options_.dir);
}

Status RecoveryManager::WriteCheckpoint(const std::string& payload) {
  const std::uint64_t seq = last_seq_;
  if (seq == 0) {
    return Status::FailedPrecondition(
        "nothing to checkpoint: no record has been appended");
  }
  // Close the open segment first so every segment file holds only records
  // <= seq, making garbage collection a byte-range decision on whole files.
  RTIC_RETURN_IF_ERROR(writer_->Rotate());
  RTIC_RETURN_IF_ERROR(WriteCheckpointFile(CheckpointFileName(seq), seq,
                                           payload));
  checkpoint_seq_ = seq;
  base_seq_ = seq;
  chain_length_ = 0;
  batches_since_checkpoint_ = 0;
  return CollectGarbage();
}

Status RecoveryManager::WriteCheckpointDelta(const std::string& payload,
                                             std::uint64_t parent_seq) {
  if (parent_seq == 0 || parent_seq != checkpoint_seq_) {
    return Status::InvalidArgument(
        "delta checkpoint parent seq " + std::to_string(parent_seq) +
        " does not match the current checkpoint seq " +
        std::to_string(checkpoint_seq_));
  }
  const std::uint64_t seq = last_seq_;
  if (seq <= parent_seq) {
    return Status::FailedPrecondition(
        "nothing to checkpoint: no record appended since seq " +
        std::to_string(parent_seq));
  }
  RTIC_RETURN_IF_ERROR(writer_->Rotate());
  RTIC_RETURN_IF_ERROR(WriteCheckpointFile(
      DeltaCheckpointFileName(seq, parent_seq), seq, payload));
  checkpoint_seq_ = seq;
  ++chain_length_;
  batches_since_checkpoint_ = 0;
  return CollectGarbage();
}

Result<std::uint64_t> RecoveryManager::ShipRetentionFloor() {
  const std::string path =
      options_.dir + "/" + std::string(kShipWatermarkFileName);
  RTIC_ASSIGN_OR_RETURN(bool exists, fs_->FileExists(path));
  if (!exists) {
    // No standby has ever attached; nothing constrains GC.
    return std::numeric_limits<std::uint64_t>::max();
  }
  RTIC_ASSIGN_OR_RETURN(std::string data, fs_->ReadFile(path));
  std::uint64_t acked = 0;
  if (!ParseShipWatermark(data, &acked)) {
    // A damaged watermark could hide an arbitrarily low ack; the only safe
    // reading is "nothing acknowledged yet".
    RTIC_LOG(Warning) << "wal: corrupt ship watermark " << path
                      << "; retaining all segments";
    return std::uint64_t{0};
  }
  return acked;
}

Status RecoveryManager::CollectGarbage() {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs_->ListDir(options_.dir));
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::vector<std::string> stale;
  for (const std::string& name : names) {
    std::uint64_t seq = 0;
    std::uint64_t parent = 0;
    if (ParseSegmentFileName(name, &seq)) {
      segments.emplace_back(seq, name);
    } else if (ParseCheckpointFileName(name, &seq) && seq < base_seq_) {
      stale.push_back(name);
    } else if (ParseDeltaCheckpointFileName(name, &seq, &parent) &&
               seq <= base_seq_) {
      // A delta at the base's own seq is superseded by the self-contained
      // snapshot; older deltas belong to a dead chain.
      stale.push_back(name);
    }
  }
  // A segment is garbage only when every record it can hold is covered by
  // the BASE snapshot, not merely the chain tip: if a delta file is later
  // lost or corrupted, recovery falls back to the base and replays these
  // very segments. Records in segment i extend to just before the next
  // segment's first seq (the current checkpoint seq for the newest one,
  // thanks to the pre-checkpoint Rotate).
  //
  // A standby adds a second floor: once a ship watermark exists, a segment
  // holding any record the standby has not acknowledged must survive, even
  // across a primary restart — the file is re-read on every pass rather
  // than cached so a restarted primary honors the watermark its previous
  // incarnation persisted.
  RTIC_ASSIGN_OR_RETURN(std::uint64_t ship_floor, ShipRetentionFloor());
  std::sort(segments.begin(), segments.end());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::uint64_t covered_end = i + 1 < segments.size()
                                          ? segments[i + 1].first - 1
                                          : checkpoint_seq_;
    if (covered_end <= base_seq_ && covered_end <= ship_floor) {
      stale.push_back(segments[i].second);
    }
  }
  for (const std::string& name : stale) {
    RTIC_RETURN_IF_ERROR(fs_->Remove(options_.dir + "/" + name));
  }
  // Unlinks are directory mutations too: make the reclaimed space and the
  // absence of dead chain members durable before acking the checkpoint.
  if (!stale.empty()) RTIC_RETURN_IF_ERROR(fs_->SyncDir(options_.dir));
  return Status::OK();
}

}  // namespace wal
}  // namespace rtic
