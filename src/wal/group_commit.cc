#include "wal/group_commit.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace rtic {
namespace wal {

Status GroupCommitter::Commit(std::string_view payload, std::uint64_t* seq) {
  std::unique_lock<std::mutex> lock(mu_);
  RTIC_RETURN_IF_ERROR(broken_);

  // Arrival order is append order: the record is framed and handed to the
  // writer under the lock, so sequence numbers never interleave.
  const std::uint64_t my_seq = writer_->next_seq();
  Status append = writer_->Append(my_seq, payload);
  if (!append.ok()) {
    // The writer poisoned itself; fail every gathered and future commit.
    broken_ = append;
    cv_.notify_all();
    return append;
  }
  appended_seq_ = my_seq;
  ++stats_.records;
  if (seq != nullptr) *seq = my_seq;

  if (options_.sync_policy != SyncPolicy::kAlways) {
    // kNone/kBatch durability is entirely the writer's per-append
    // behavior; there is no per-record fsync to coalesce.
    return Status::OK();
  }

  while (durable_seq_ < my_seq) {
    RTIC_RETURN_IF_ERROR(broken_);
    if (leader_active_) {
      // A leader is gathering; it captures the group end under this mutex
      // after its window closes, so it will sync this record too.
      cv_.wait(lock);
      continue;
    }
    // Become the leader: hold the group open so concurrent committers can
    // append behind us, then make everything appended so far durable with
    // one fsync.
    leader_active_ = true;
    if (options_.window_micros > 0) {
      cv_.wait_for(lock, std::chrono::microseconds(options_.window_micros),
                   [this] { return !broken_.ok(); });
      if (!broken_.ok()) {
        leader_active_ = false;
        cv_.notify_all();
        return broken_;
      }
    }
    const std::uint64_t group_end = appended_seq_;
    const std::uint64_t group_size = group_end - durable_seq_;
    // The fsync runs under the mutex: the writer (and its file buffer) is
    // single-threaded by construction. Committers arriving meanwhile queue
    // on the mutex and coalesce into the next group.
    Status sync = writer_->Sync();
    leader_active_ = false;
    if (!sync.ok()) {
      // One shared fsync, one shared fate: every record in the group is
      // non-durable and every waiter sees the failure.
      broken_ = sync;
      cv_.notify_all();
      return sync;
    }
    durable_seq_ = group_end;
    ++stats_.syncs;
    stats_.max_group = std::max(stats_.max_group, group_size);
    cv_.notify_all();
  }
  return Status::OK();
}

GroupCommitter::Stats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wal
}  // namespace rtic
