// File-system abstraction for the durability subsystem.
//
// The WAL writer, reader, and recovery manager never touch POSIX directly;
// they go through `Fs`, so tests can substitute `FaultInjectingFs` and kill
// the "process" at any chosen write operation — the basis of the
// deterministic crash matrix in tests/crash_matrix_test.cc.
//
// Durability contract of `WritableFile`:
//   Append  — buffers bytes in the file object (nothing reaches the OS yet),
//   Flush   — pushes the buffer to the OS (survives process death),
//   Sync    — Flush + fsync (survives OS/power death),
//   Close   — Flush + close.
// The destructor deliberately does NOT flush: an abandoned file behaves like
// one owned by a crashed process, which is exactly what crash tests need.

#ifndef RTIC_WAL_FILE_H_
#define RTIC_WAL_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace rtic {
namespace wal {

/// An append-only file handle (see the durability contract above).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Minimal file-system surface used by the WAL.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens `path` for appending; `truncate` discards existing content.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file into a string.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Entry names (not paths) in `dir`, sorted; "." and ".." excluded.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// Creates `dir` (one level); succeeds if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  /// Atomically replaces `to` with `from`.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// Fsyncs the directory itself so renames and unlinks inside it survive
  /// power loss (rename-into-place is atomic, but the new directory entry
  /// lives in the directory's own blocks). The default is a no-op so thin
  /// test wrappers keep working; file systems with real durability override
  /// it.
  virtual Status SyncDir(const std::string& dir) {
    (void)dir;
    return Status::OK();
  }

  /// Truncates `path` to `size` bytes.
  virtual Status Truncate(const std::string& path, std::uint64_t size) = 0;

  virtual Result<bool> FileExists(const std::string& path) = 0;
};

/// The process-wide POSIX implementation.
Fs* DefaultFs();

/// What a fault injection does to the triggering write operation.
enum class FaultKind {
  kFailWrite,   // the operation has no effect
  kShortWrite,  // an Append lands only a prefix of its bytes (torn record)
  kBitFlip,     // an Append lands fully but with one byte corrupted
};

/// Wraps another Fs and kills it at a chosen mutating operation: operation
/// number `trigger_op` (1-based; 0 disables injection and only counts)
/// applies `kind`'s partial effect and fails, and every operation after it
/// fails outright — the file system behaves as if the process died mid-call.
/// Mutating operations are counted; reads and CreateDir are passed through
/// (but also fail once dead). The fault accounting is thread-safe, so
/// concurrent committers (group commit) can be attacked; the files handed
/// out inherit the base Fs's (lack of) internal synchronization.
class FaultInjectingFs final : public Fs {
 public:
  FaultInjectingFs(Fs* base, std::uint64_t trigger_op, FaultKind kind);

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Status Truncate(const std::string& path, std::uint64_t size) override;
  Result<bool> FileExists(const std::string& path) override;

  /// Mutating operations seen so far (use a disabled run to size a matrix).
  std::uint64_t ops() const;

  /// True once the fault has fired (every later operation fails).
  bool dead() const;

 private:
  friend class FaultInjectingFile;

  /// Accounts one mutating operation. Returns true when this operation is
  /// the trigger (the caller applies the fault's partial effect and fails);
  /// returns a non-OK status when the fs is already dead.
  Result<bool> BeginOp();

  Fs* base_;
  const std::uint64_t trigger_op_;
  const FaultKind kind_;
  mutable std::mutex mu_;
  std::uint64_t ops_ = 0;   // guarded by mu_
  bool dead_ = false;       // guarded by mu_
};

}  // namespace wal
}  // namespace rtic

#endif  // RTIC_WAL_FILE_H_
