#include "wal/wal_format.h"

#include <cinttypes>
#include <cstdio>

#include "common/crc32c.h"

namespace rtic {
namespace wal {
namespace {

void PutFixed32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutFixed64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t GetFixed32(std::string_view data, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetFixed64(std::string_view data, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

bool ParseNumberedName(std::string_view name, std::string_view prefix,
                       std::string_view suffix, std::uint64_t* number) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  std::uint64_t v = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *number = v;
  return true;
}

}  // namespace

std::string EncodeRecord(std::uint64_t seq, std::string_view payload) {
  std::string seq_bytes;
  PutFixed64(&seq_bytes, seq);
  std::uint32_t crc = Crc32c(seq_bytes);
  crc = Crc32c(payload, crc);

  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size());
  PutFixed32(&out, static_cast<std::uint32_t>(payload.size()));
  PutFixed32(&out, crc);
  out += seq_bytes;
  out.append(payload);
  return out;
}

ParseOutcome ParseRecord(std::string_view data, std::size_t offset,
                         ParsedRecord* out, std::string* reason) {
  if (offset == data.size()) return ParseOutcome::kEnd;
  if (data.size() - offset < kRecordHeaderBytes) {
    if (reason) *reason = "torn record header";
    return ParseOutcome::kTorn;
  }
  std::uint32_t len = GetFixed32(data, offset);
  std::uint32_t stored_crc = GetFixed32(data, offset + 4);
  if (len > kMaxRecordBytes) {
    if (reason) *reason = "implausible record length " + std::to_string(len);
    return ParseOutcome::kCorrupt;
  }
  if (data.size() - offset - kRecordHeaderBytes < len) {
    if (reason) *reason = "torn record payload";
    return ParseOutcome::kTorn;
  }
  std::string_view checked =
      data.substr(offset + 8, 8 + static_cast<std::size_t>(len));
  if (Crc32c(checked) != stored_crc) {
    if (reason) *reason = "checksum mismatch";
    return ParseOutcome::kCorrupt;
  }
  out->seq = GetFixed64(data, offset + 8);
  out->payload.assign(data.substr(offset + kRecordHeaderBytes, len));
  out->end_offset = offset + kRecordHeaderBytes + len;
  return ParseOutcome::kRecord;
}

std::string SegmentFileName(std::uint64_t first_seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", first_seq);
  return buf;
}

std::string CheckpointFileName(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%020" PRIu64, seq);
  return buf;
}

bool ParseSegmentFileName(std::string_view name, std::uint64_t* first_seq) {
  return ParseNumberedName(name, "wal-", ".log", first_seq);
}

bool ParseCheckpointFileName(std::string_view name, std::uint64_t* seq) {
  return ParseNumberedName(name, "ckpt-", "", seq);
}

std::string DeltaCheckpointFileName(std::uint64_t seq,
                                    std::uint64_t parent_seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ckpt-%020" PRIu64 ".d%020" PRIu64, seq,
                parent_seq);
  return buf;
}

bool ParseDeltaCheckpointFileName(std::string_view name, std::uint64_t* seq,
                                  std::uint64_t* parent_seq) {
  constexpr std::size_t kSeqDigits = 20;
  constexpr std::string_view kPrefix = "ckpt-";
  // Split "ckpt-<seq>.d<parent>" at the ".d" and reuse the strict
  // fixed-width number parser for both halves.
  const std::size_t split = kPrefix.size() + kSeqDigits;
  if (name.size() != split + 2 + kSeqDigits) return false;
  if (name.substr(split, 2) != ".d") return false;
  if (!ParseNumberedName(name.substr(0, split), kPrefix, "", seq)) {
    return false;
  }
  if (!ParseNumberedName(name.substr(split + 2), "", "", parent_seq)) {
    return false;
  }
  return *parent_seq < *seq;
}

namespace {
constexpr std::string_view kShipWatermarkPayload = "rtic-ship-watermark";
}  // namespace

std::string EncodeShipWatermark(std::uint64_t acked_seq) {
  return EncodeRecord(acked_seq, kShipWatermarkPayload);
}

bool ParseShipWatermark(std::string_view data, std::uint64_t* acked_seq) {
  ParsedRecord rec;
  if (ParseRecord(data, 0, &rec, nullptr) != ParseOutcome::kRecord) {
    return false;
  }
  if (rec.payload != kShipWatermarkPayload) return false;
  if (rec.end_offset != data.size()) return false;
  *acked_seq = rec.seq;
  return true;
}

}  // namespace wal
}  // namespace rtic
