// GroupCommitter: amortizes the WAL's dominant durable-path cost — the
// per-record fsync of SyncPolicy::kAlways — across concurrent committers.
//
// Callers hand in encoded records; the committer appends them to the
// underlying WalWriter in arrival order and coalesces every record that
// arrives within a short window (Options::window_micros), or that queues
// up while a prior fsync is in flight, into a single Sync(). Each caller
// is woken only once its own record is durable, so the ack contract of
// SyncPolicy::kAlways is unchanged — what changes is that one fsync now
// covers a whole group instead of one record.
//
// Failure semantics: the shared fsync either lands the whole group or
// fails the whole group. A failed append or sync poisons the underlying
// writer (see WalWriter::Append) and breaks the committer — every waiting
// and subsequent Commit returns the failure, exactly as if the process had
// crashed at that operation. Recovery then sees an ordinary torn tail.
//
// Under SyncPolicy::kNone or kBatch there is nothing to coalesce (those
// policies do not fsync per record); Commit simply appends with the
// writer's own policy and returns.

#ifndef RTIC_WAL_GROUP_COMMIT_H_
#define RTIC_WAL_GROUP_COMMIT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "common/result.h"
#include "wal/wal_writer.h"

namespace rtic {
namespace wal {

class GroupCommitter {
 public:
  struct Options {
    /// The caller-facing durability policy. Only kAlways engages group
    /// fsyncs; kNone/kBatch pass through to the writer's own behavior.
    SyncPolicy sync_policy = SyncPolicy::kAlways;

    /// How long the group leader holds the group open for more arrivals
    /// before issuing the shared fsync. 0 means no gathering: the leader
    /// syncs immediately after its own append (concurrent committers that
    /// queued behind the fsync still coalesce into the next one).
    std::uint64_t window_micros = 0;
  };

  /// Coalescing counters, for benchmarks and tests.
  struct Stats {
    std::uint64_t records = 0;    // records appended through Commit
    std::uint64_t syncs = 0;      // shared fsyncs issued
    std::uint64_t max_group = 0;  // most records made durable by one sync
  };

  /// The committer appends through `writer` (not owned). When the
  /// caller-facing policy is kAlways the writer should be configured with
  /// SyncPolicy::kBatch: each record reaches the OS at append and closed
  /// segments are fsynced at rotation, while the committer issues the
  /// group fsync for the open segment.
  GroupCommitter(WalWriter* writer, Options options)
      : writer_(writer), options_(options) {}

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Appends `payload` as the next record (arrival order = sequence order)
  /// and returns once the record is durable per the sync policy. Safe to
  /// call from any number of threads concurrently; `seq` (optional)
  /// receives the record's sequence number. After any failure the
  /// committer is broken and every call returns the first error.
  Status Commit(std::string_view payload, std::uint64_t* seq = nullptr);

  Stats stats() const;

 private:
  WalWriter* writer_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t appended_seq_ = 0;  // last record handed to the writer
  std::uint64_t durable_seq_ = 0;   // all records <= this are fsynced
  bool leader_active_ = false;      // a leader is gathering its window
  Status broken_;                   // first failure; non-OK breaks everything
  Stats stats_;
};

}  // namespace wal
}  // namespace rtic

#endif  // RTIC_WAL_GROUP_COMMIT_H_
