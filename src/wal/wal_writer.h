// WalWriter: appends framed records to segment files, rotating at a size
// threshold. Payload-agnostic — the RecoveryManager feeds it encoded
// UpdateBatches and checkpoint blobs go through their own path.

#ifndef RTIC_WAL_WAL_WRITER_H_
#define RTIC_WAL_WAL_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "wal/file.h"

namespace rtic {
namespace wal {

/// When an appended record becomes durable.
enum class SyncPolicy {
  kNone,    // buffered in-process; flushed to the OS only at rotation/close
  kBatch,   // pushed to the OS per record; fsync at rotation and checkpoints
  kAlways,  // fsync per record
};

/// Stable policy name ("none", "batch", "always").
const char* SyncPolicyToString(SyncPolicy policy);

class WalWriter {
 public:
  struct Options {
    SyncPolicy sync_policy = SyncPolicy::kBatch;
    std::size_t segment_bytes = 4u << 20;  // rotate past this size
  };

  /// Creates a writer whose next record is `next_seq` (>= 1). Segment files
  /// are created lazily at the first append, named by the first sequence
  /// number they will contain; a leftover file with that name (possible
  /// only after a crash that wrote no durable record into it) is clobbered.
  static Result<std::unique_ptr<WalWriter>> Open(Fs* fs, std::string dir,
                                                 Options options,
                                                 std::uint64_t next_seq);

  /// Appends one record. `seq` must equal next_seq() — the log never skips
  /// or repeats a sequence number.
  ///
  /// A failed append (or sync, or rotation) POISONS the writer: the open
  /// segment may end in a torn record, and appending past it would put
  /// durable records beyond the damage, where recovery's torn-tail
  /// truncation would silently discard them. Every later Append/Sync/Rotate
  /// fails with FailedPrecondition; the open file is abandoned unflushed
  /// (crash semantics). Sequence-order violations are rejected without
  /// poisoning — nothing touched the file.
  Status Append(std::uint64_t seq, std::string_view payload);

  /// Flush + fsync the open segment (no-op when none is open). A failure
  /// poisons the writer (see Append).
  Status Sync();

  /// Closes the open segment; the next Append starts a fresh one. Called at
  /// checkpoints so a checkpoint covers whole segments, making garbage
  /// collection a plain file deletion. A failure poisons the writer.
  Status Rotate();

  /// Non-OK once the writer is poisoned (the first error it surfaced).
  const Status& broken() const { return broken_; }

  std::uint64_t next_seq() const { return next_seq_; }

  /// Name of the open segment file; empty when none is open.
  const std::string& current_segment() const { return current_name_; }

 private:
  WalWriter(Fs* fs, std::string dir, Options options, std::uint64_t next_seq)
      : fs_(fs),
        dir_(std::move(dir)),
        options_(options),
        next_seq_(next_seq) {}

  /// Records `error`, abandons the open file without flushing, and returns
  /// `error` (the triggering caller sees the original failure).
  Status Poison(Status error);

  Fs* fs_;
  std::string dir_;
  Options options_;
  std::uint64_t next_seq_;
  std::unique_ptr<WritableFile> current_;
  std::string current_name_;
  std::size_t current_bytes_ = 0;
  Status broken_;  // non-OK once poisoned
};

}  // namespace wal
}  // namespace rtic

#endif  // RTIC_WAL_WAL_WRITER_H_
