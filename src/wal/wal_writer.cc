#include "wal/wal_writer.h"

#include "wal/wal_format.h"

namespace rtic {
namespace wal {

const char* SyncPolicyToString(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNone:
      return "none";
    case SyncPolicy::kBatch:
      return "batch";
    case SyncPolicy::kAlways:
      return "always";
  }
  return "?";
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Fs* fs, std::string dir,
                                                   Options options,
                                                   std::uint64_t next_seq) {
  if (next_seq == 0) {
    return Status::InvalidArgument("WAL sequence numbers start at 1");
  }
  if (options.segment_bytes == 0) {
    return Status::InvalidArgument("segment_bytes must be positive");
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fs, std::move(dir), options, next_seq));
}

Status WalWriter::Append(std::uint64_t seq, std::string_view payload) {
  RTIC_RETURN_IF_ERROR(broken_);
  if (seq != next_seq_) {
    // Caller bug caught before the file is touched; no poisoning needed.
    return Status::InvalidArgument(
        "WAL append out of order: got seq " + std::to_string(seq) +
        ", expected " + std::to_string(next_seq_));
  }
  if (!current_) {
    const std::string name = SegmentFileName(seq);
    Result<std::unique_ptr<WritableFile>> file =
        fs_->NewWritableFile(dir_ + "/" + name, /*truncate=*/true);
    if (!file.ok()) return Poison(file.status());
    current_ = std::move(file).value();
    current_name_ = name;
    current_bytes_ = 0;
  }
  std::string record = EncodeRecord(seq, payload);
  Status write = current_->Append(record);
  if (write.ok()) {
    switch (options_.sync_policy) {
      case SyncPolicy::kNone:
        break;
      case SyncPolicy::kBatch:
        write = current_->Flush();
        break;
      case SyncPolicy::kAlways:
        write = current_->Sync();
        break;
    }
  }
  if (!write.ok()) return Poison(std::move(write));
  current_bytes_ += record.size();
  ++next_seq_;
  if (current_bytes_ >= options_.segment_bytes) {
    RTIC_RETURN_IF_ERROR(Rotate());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  RTIC_RETURN_IF_ERROR(broken_);
  if (!current_) return Status::OK();
  Status s = current_->Sync();
  if (!s.ok()) return Poison(std::move(s));
  return Status::OK();
}

Status WalWriter::Rotate() {
  RTIC_RETURN_IF_ERROR(broken_);
  if (!current_) return Status::OK();
  if (options_.sync_policy != SyncPolicy::kNone) {
    Status sync = current_->Sync();
    if (!sync.ok()) return Poison(std::move(sync));
  }
  Status close = current_->Close();
  current_.reset();
  current_name_.clear();
  current_bytes_ = 0;
  if (!close.ok()) {
    broken_ = Status::FailedPrecondition("WAL writer poisoned by: " +
                                         close.ToString());
    return close;
  }
  return Status::OK();
}

Status WalWriter::Poison(Status error) {
  broken_ = Status::FailedPrecondition("WAL writer poisoned by: " +
                                       error.ToString());
  // Abandon the open file unflushed: whatever the failed operation left
  // behind (possibly a torn record) must stay the end of this segment.
  current_.reset();
  current_name_.clear();
  current_bytes_ = 0;
  return error;
}

}  // namespace wal
}  // namespace rtic
