#include "wal/wal_writer.h"

#include "wal/wal_format.h"

namespace rtic {
namespace wal {

const char* SyncPolicyToString(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNone:
      return "none";
    case SyncPolicy::kBatch:
      return "batch";
    case SyncPolicy::kAlways:
      return "always";
  }
  return "?";
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Fs* fs, std::string dir,
                                                   Options options,
                                                   std::uint64_t next_seq) {
  if (next_seq == 0) {
    return Status::InvalidArgument("WAL sequence numbers start at 1");
  }
  if (options.segment_bytes == 0) {
    return Status::InvalidArgument("segment_bytes must be positive");
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fs, std::move(dir), options, next_seq));
}

Status WalWriter::Append(std::uint64_t seq, std::string_view payload) {
  if (seq != next_seq_) {
    return Status::InvalidArgument(
        "WAL append out of order: got seq " + std::to_string(seq) +
        ", expected " + std::to_string(next_seq_));
  }
  if (!current_) {
    current_name_ = SegmentFileName(seq);
    RTIC_ASSIGN_OR_RETURN(
        current_, fs_->NewWritableFile(dir_ + "/" + current_name_,
                                       /*truncate=*/true));
    current_bytes_ = 0;
  }
  std::string record = EncodeRecord(seq, payload);
  RTIC_RETURN_IF_ERROR(current_->Append(record));
  switch (options_.sync_policy) {
    case SyncPolicy::kNone:
      break;
    case SyncPolicy::kBatch:
      RTIC_RETURN_IF_ERROR(current_->Flush());
      break;
    case SyncPolicy::kAlways:
      RTIC_RETURN_IF_ERROR(current_->Sync());
      break;
  }
  current_bytes_ += record.size();
  ++next_seq_;
  if (current_bytes_ >= options_.segment_bytes) {
    RTIC_RETURN_IF_ERROR(Rotate());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (!current_) return Status::OK();
  return current_->Sync();
}

Status WalWriter::Rotate() {
  if (!current_) return Status::OK();
  if (options_.sync_policy != SyncPolicy::kNone) {
    RTIC_RETURN_IF_ERROR(current_->Sync());
  }
  Status close = current_->Close();
  current_.reset();
  current_name_.clear();
  current_bytes_ = 0;
  return close;
}

}  // namespace wal
}  // namespace rtic
