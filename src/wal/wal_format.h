// On-disk format of the write-ahead log.
//
// A log is a directory of segment files `wal-<seq>.log` (named by the first
// sequence number they contain) plus at most a couple of checkpoint files
// `ckpt-<seq>` (a whole-monitor state covering every record up to and
// including <seq>). Both hold length-prefixed, CRC32C-framed records:
//
//   [payload_len u32 LE][crc32c u32 LE][seq u64 LE][payload bytes]
//
// where the checksum covers the seq field and the payload. Sequence numbers
// start at 1 and increase by exactly 1 across the whole log; a record whose
// frame is incomplete (torn), whose checksum fails, or whose sequence number
// breaks the chain marks the end of the usable log.

#ifndef RTIC_WAL_WAL_FORMAT_H_
#define RTIC_WAL_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rtic {
namespace wal {

inline constexpr std::size_t kRecordHeaderBytes = 16;

/// Upper bound on a record payload; a parsed length above this is treated
/// as corruption rather than attempted as an allocation.
inline constexpr std::size_t kMaxRecordBytes = std::size_t{1} << 30;

/// Suffix of not-yet-renamed checkpoint files; leftovers are deleted on
/// recovery.
inline constexpr char kTempSuffix[] = ".tmp";

/// Frames one record.
std::string EncodeRecord(std::uint64_t seq, std::string_view payload);

enum class ParseOutcome {
  kRecord,  // a whole, checksum-valid record was parsed
  kEnd,     // offset is exactly the end of the data
  kTorn,    // the data ends mid-header or mid-payload
  kCorrupt  // checksum mismatch or implausible length
};

struct ParsedRecord {
  std::uint64_t seq = 0;
  std::string payload;
  std::size_t end_offset = 0;  // offset just past this record
};

/// Parses the record starting at `offset`. On kTorn/kCorrupt, `reason`
/// (optional) receives a one-line description.
ParseOutcome ParseRecord(std::string_view data, std::size_t offset,
                         ParsedRecord* out, std::string* reason);

/// `wal-<first_seq, 20 digits>.log`.
std::string SegmentFileName(std::uint64_t first_seq);

/// `ckpt-<seq, 20 digits>` — a full base snapshot.
std::string CheckpointFileName(std::uint64_t seq);

/// `ckpt-<seq, 20 digits>.d<parent_seq, 20 digits>` — a delta checkpoint
/// chaining to the checkpoint at `parent_seq` (base or earlier delta).
/// Deliberately not matched by ParseCheckpointFileName, so recovery code
/// that predates delta chains ignores (rather than misreads) these files.
std::string DeltaCheckpointFileName(std::uint64_t seq,
                                    std::uint64_t parent_seq);

bool ParseSegmentFileName(std::string_view name, std::uint64_t* first_seq);
bool ParseCheckpointFileName(std::string_view name, std::uint64_t* seq);

/// Requires parent_seq < seq (anything else is not a valid delta name).
bool ParseDeltaCheckpointFileName(std::string_view name, std::uint64_t* seq,
                                  std::uint64_t* parent_seq);

/// Name of the replication ship watermark in a primary's WAL directory: the
/// highest sequence number the standby has acknowledged as durably
/// mirrored, persisted so garbage collection keeps unacknowledged segments
/// even across a primary restart. Absent file = no standby has ever
/// attached = GC is unrestricted. The helpers reuse the record framing
/// (seq = acked sequence number, fixed payload) so damage is detectable.
inline constexpr char kShipWatermarkFileName[] = "ship-watermark";

std::string EncodeShipWatermark(std::uint64_t acked_seq);

/// False when `data` is not exactly one valid watermark record.
bool ParseShipWatermark(std::string_view data, std::uint64_t* acked_seq);

}  // namespace wal
}  // namespace rtic

#endif  // RTIC_WAL_WAL_FORMAT_H_
