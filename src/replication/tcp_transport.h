// Minimal length-prefixed TCP transport.
//
// Each frame travels as [frame_size u32 LE][frame bytes] over a blocking
// POSIX stream socket. The standby listens (TcpListener), the primary
// connects (TcpConnect with a "host:port" address). Port 0 binds an
// ephemeral port — read it back with TcpListener::port(), which the tests
// and the two-process example use to avoid fixed-port collisions.

#ifndef RTIC_REPLICATION_TCP_TRANSPORT_H_
#define RTIC_REPLICATION_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "replication/transport.h"

namespace rtic {
namespace replication {

/// Accepts standby-side connections.
class TcpListener {
 public:
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).
  static Result<std::unique_ptr<TcpListener>> Listen(std::uint16_t port);

  /// The bound port (useful after Listen(0)).
  std::uint16_t port() const { return port_; }

  /// Blocks for one inbound connection. After Close() it fails with
  /// FailedPrecondition instead.
  Result<std::unique_ptr<Transport>> Accept();

  /// Shuts the listening socket down, waking a concurrently blocked
  /// Accept() (which then fails with FailedPrecondition). Idempotent and
  /// safe to call from another thread — this is how a server's shutdown
  /// path unblocks its accept loop.
  void Close();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  std::uint16_t port_;
  std::atomic<bool> closed_{false};
};

/// Connects to a standby at "host:port" (numeric IPv4 host or "localhost").
Result<std::unique_ptr<Transport>> TcpConnect(const std::string& address);

}  // namespace replication
}  // namespace rtic

#endif  // RTIC_REPLICATION_TCP_TRANSPORT_H_
