// Wire format of the log-shipping replication stream.
//
// Every message between a primary's SegmentShipper and a StandbyMonitor is
// one frame:
//
//   [magic "RTICSHP1" 8][crc32c u32 LE]
//   [version u8][type u8][arg u64 LE][name_len u32 LE][body_len u32 LE]
//   [name bytes][body bytes]
//
// The checksum covers everything after the crc field (version through the
// last body byte), so a frame is verifiable before any of its fields are
// trusted. Transports deliver whole frames; the length-prefixed TCP
// transport adds its own u32 LE frame-size prefix on the wire.
//
// Frame types:
//   kHello     — session start; `name` is the sender's role ("primary" or
//                "standby"), arg and body are empty. Both sides send one.
//   kFileChunk — `body` is the byte range [arg, arg + body_len) of the WAL
//                directory entry `name` (a segment, or a whole checkpoint
//                file shipped at arg == 0).
//   kAck       — standby -> primary; arg is the highest WAL sequence number
//                the standby has durably mirrored and replayed.
//
// Rejection rules (see docs/FORMATS.md): wrong magic, unknown type, a
// length that exceeds the delivered bytes or kMaxFrameBytes, or a checksum
// mismatch parse as kInvalidArgument; a version other than
// kProtocolVersion parses but must be refused by the session layer with
// kFailedPrecondition.
//
// The byte layout is shared with other RTIC frame families (the server's
// RTICSRV1 request/response protocol in src/server/server_format.h): a
// FrameSpec names a family's magic and valid type range, and
// EncodeFrameWith/ParseFrameWith implement the layout once for all of
// them. EncodeFrame/ParseFrame are the replication family's instance.

#ifndef RTIC_REPLICATION_REPL_FORMAT_H_
#define RTIC_REPLICATION_REPL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace rtic {
namespace replication {

inline constexpr char kFrameMagic[] = "RTICSHP1";  // 8 bytes on the wire
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 8 + 4 + 1 + 1 + 8 + 4 + 4;

/// Upper bound on name + body; anything larger is corruption, not data.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 30;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kFileChunk = 2,
  kAck = 3,
};

struct Frame {
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kHello;
  std::uint64_t arg = 0;     // chunk byte offset / acked sequence number
  std::string name;          // file name (chunks) or role (hello)
  std::string body;          // file bytes (chunks only)
};

/// One RTIC frame family: the shared layout under a family-specific magic
/// and type range. `magic` must be exactly 8 bytes; `what` prefixes parse
/// errors ("replication frame", "server frame").
struct FrameSpec {
  const char* magic;
  const char* what;
  std::uint8_t min_type;
  std::uint8_t max_type;
};

/// The RTICSHP1 replication family.
inline constexpr FrameSpec kReplicationFrameSpec{kFrameMagic,
                                                 "replication frame", 1, 3};

/// A raw frame of any family: the generic layout with the type carried as
/// an unvalidated byte (each family narrows it to its own enum).
struct RawFrame {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t type = 0;
  std::uint64_t arg = 0;
  std::string name;
  std::string body;
};

std::string EncodeFrameWith(const FrameSpec& spec, const RawFrame& frame);

/// Parses one whole frame of `spec`'s family. `data` must be exactly one
/// frame; trailing bytes are corruption.
Result<RawFrame> ParseFrameWith(const FrameSpec& spec, std::string_view data);

std::string EncodeFrame(const Frame& frame);

/// Parses one whole frame (the transport's unit of delivery). `data` must
/// be exactly one frame; trailing bytes are corruption.
Result<Frame> ParseFrame(std::string_view data);

std::string EncodeHello(std::string_view role);
std::string EncodeFileChunk(std::string_view name, std::uint64_t offset,
                            std::string_view bytes);
std::string EncodeAck(std::uint64_t acked_seq);

}  // namespace replication
}  // namespace rtic

#endif  // RTIC_REPLICATION_REPL_FORMAT_H_
