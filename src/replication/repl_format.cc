#include "replication/repl_format.h"

#include <cstring>
#include <utility>

#include "common/crc32c.h"

namespace rtic {
namespace replication {
namespace {

void PutFixed32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutFixed64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetFixed32(std::string_view data, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetFixed64(std::string_view data, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

constexpr std::size_t kMagicBytes = 8;
constexpr std::size_t kCrcOffset = kMagicBytes;
constexpr std::size_t kCheckedOffset = kMagicBytes + 4;

Status BadFrame(const FrameSpec& spec, const std::string& what) {
  return Status::InvalidArgument(std::string(spec.what) + ": " + what);
}

}  // namespace

std::string EncodeFrameWith(const FrameSpec& spec, const RawFrame& frame) {
  std::string checked;
  checked.push_back(static_cast<char>(frame.version));
  checked.push_back(static_cast<char>(frame.type));
  PutFixed64(&checked, frame.arg);
  PutFixed32(&checked, static_cast<std::uint32_t>(frame.name.size()));
  PutFixed32(&checked, static_cast<std::uint32_t>(frame.body.size()));
  checked.append(frame.name);
  checked.append(frame.body);

  std::string out;
  out.reserve(kCheckedOffset + checked.size());
  out.append(spec.magic, kMagicBytes);
  PutFixed32(&out, Crc32c(checked));
  out.append(checked);
  return out;
}

Result<RawFrame> ParseFrameWith(const FrameSpec& spec,
                                std::string_view data) {
  if (data.size() < kFrameHeaderBytes) {
    return BadFrame(spec, "short frame (" + std::to_string(data.size()) +
                    " bytes)");
  }
  if (std::memcmp(data.data(), spec.magic, kMagicBytes) != 0) {
    return BadFrame(spec, "bad magic");
  }
  std::uint32_t stored_crc = GetFixed32(data, kCrcOffset);
  std::string_view checked = data.substr(kCheckedOffset);
  if (Crc32c(checked) != stored_crc) {
    return BadFrame(spec, "checksum mismatch");
  }

  RawFrame frame;
  frame.version = static_cast<std::uint8_t>(checked[0]);
  frame.type = static_cast<std::uint8_t>(checked[1]);
  if (frame.type < spec.min_type || frame.type > spec.max_type) {
    return BadFrame(spec, "unknown type " + std::to_string(frame.type));
  }
  frame.arg = GetFixed64(checked, 2);
  std::uint64_t name_len = GetFixed32(checked, 10);
  std::uint64_t body_len = GetFixed32(checked, 14);
  if (name_len + body_len > kMaxFrameBytes) {
    return BadFrame(spec, "implausible length");
  }
  std::size_t fixed = 1 + 1 + 8 + 4 + 4;
  if (checked.size() != fixed + name_len + body_len) {
    return BadFrame(spec, "length mismatch (have " +
                    std::to_string(checked.size() - fixed) + " payload, "
                    "header claims " + std::to_string(name_len + body_len) +
                    ")");
  }
  frame.name.assign(checked.substr(fixed, name_len));
  frame.body.assign(checked.substr(fixed + name_len, body_len));
  return frame;
}

std::string EncodeFrame(const Frame& frame) {
  RawFrame raw;
  raw.version = frame.version;
  raw.type = static_cast<std::uint8_t>(frame.type);
  raw.arg = frame.arg;
  raw.name = frame.name;
  raw.body = frame.body;
  return EncodeFrameWith(kReplicationFrameSpec, raw);
}

Result<Frame> ParseFrame(std::string_view data) {
  Result<RawFrame> raw = ParseFrameWith(kReplicationFrameSpec, data);
  if (!raw.ok()) return raw.status();
  Frame frame;
  frame.version = raw->version;
  frame.type = static_cast<FrameType>(raw->type);
  frame.arg = raw->arg;
  frame.name = std::move(raw->name);
  frame.body = std::move(raw->body);
  return frame;
}

std::string EncodeHello(std::string_view role) {
  Frame frame;
  frame.type = FrameType::kHello;
  frame.name.assign(role);
  return EncodeFrame(frame);
}

std::string EncodeFileChunk(std::string_view name, std::uint64_t offset,
                            std::string_view bytes) {
  Frame frame;
  frame.type = FrameType::kFileChunk;
  frame.arg = offset;
  frame.name.assign(name);
  frame.body.assign(bytes);
  return EncodeFrame(frame);
}

std::string EncodeAck(std::uint64_t acked_seq) {
  Frame frame;
  frame.type = FrameType::kAck;
  frame.arg = acked_seq;
  return EncodeFrame(frame);
}

}  // namespace replication
}  // namespace rtic
