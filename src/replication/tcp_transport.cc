#include "replication/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

namespace rtic {
namespace replication {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal("tcp transport: " + what + ": " +
                          std::string(strerror(errno)));
}

// One connected stream socket carrying [size u32 LE][frame] messages.
// Send and Recv are independently locked so a shipper thread and an ack
// drain never interleave partial writes or reads. Close() may race with a
// blocked Recv() on another thread: it only shuts the socket down (waking
// the reader with EOF) and leaves the descriptor itself to the destructor,
// so no thread ever sees a recycled fd.
class TcpEndpoint final : public Transport {
 public:
  explicit TcpEndpoint(int fd) : fd_(fd) {}

  ~TcpEndpoint() override {
    Close();
    ::close(fd_);
  }

  Status Send(const std::string& frame) override {
    std::lock_guard<std::mutex> lock(send_mu_);
    if (closed_.load()) {
      return Status::FailedPrecondition("tcp transport: closed");
    }
    unsigned char size[4];
    std::uint32_t n = static_cast<std::uint32_t>(frame.size());
    for (int i = 0; i < 4; ++i) size[i] = (n >> (8 * i)) & 0xff;
    Status s = WriteAll(reinterpret_cast<const char*>(size), 4);
    if (!s.ok()) return s;
    return WriteAll(frame.data(), frame.size());
  }

  Result<bool> Recv(std::string* frame) override {
    std::lock_guard<std::mutex> lock(recv_mu_);
    return RecvLocked(frame, /*blocking=*/true);
  }

  Result<bool> TryRecv(std::string* frame) override {
    std::lock_guard<std::mutex> lock(recv_mu_);
    return RecvLocked(frame, /*blocking=*/false);
  }

  void Close() override {
    if (closed_.exchange(true)) return;
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  Status WriteAll(const char* data, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      ssize_t w = ::send(fd_, data + done, n - done, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno("send");
      }
      done += static_cast<std::size_t>(w);
    }
    return Status::OK();
  }

  // Reads whatever is available into buf_; with blocking=false returns
  // immediately when the socket has nothing ready. Returns false on EOF.
  Result<bool> FillSome(bool blocking) {
    if (!blocking) {
      struct pollfd pfd = {fd_, POLLIN, 0};
      int r = ::poll(&pfd, 1, 0);
      if (r < 0) return Errno("poll");
      if (r == 0) return false;  // nothing ready, not EOF
    }
    char chunk[4096];
    ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0) {
      if (errno == EINTR) return true;
      return Errno("recv");
    }
    if (r == 0) {
      eof_ = true;
      return true;
    }
    buf_.append(chunk, static_cast<std::size_t>(r));
    return true;
  }

  Result<bool> RecvLocked(std::string* frame, bool blocking) {
    if (closed_.load()) {
      return Status::FailedPrecondition("tcp transport: closed");
    }
    for (;;) {
      if (buf_.size() >= 4) {
        std::uint32_t n = 0;
        for (int i = 0; i < 4; ++i) {
          n |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(buf_[i]))
               << (8 * i);
        }
        if (buf_.size() >= 4 + static_cast<std::size_t>(n)) {
          frame->assign(buf_, 4, n);
          buf_.erase(0, 4 + static_cast<std::size_t>(n));
          return true;
        }
      }
      if (eof_) return false;  // clean close (a trailing partial message is
                               // indistinguishable from a cut — dropped)
      Result<bool> progressed = FillSome(blocking);
      if (!progressed.ok()) return progressed.status();
      if (!blocking && !*progressed && !eof_) return false;
    }
  }

  const int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
  std::mutex recv_mu_;
  std::string buf_;   // guarded by recv_mu_
  bool eof_ = false;  // guarded by recv_mu_
};

}  // namespace

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return Errno("bind");
  }
  // A server-grade backlog: a burst of clients connecting at once (E15
  // runs 32+) must not see resets while the accept loop catches up.
  if (::listen(fd, SOMAXCONN) < 0) {
    ::close(fd);
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    ::close(fd);
    return Errno("getsockname");
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

Result<std::unique_ptr<Transport>> TcpListener::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (closed_.load()) {
      if (fd >= 0) ::close(fd);  // the Close() wake-up connection
      return Status::FailedPrecondition("tcp transport: listener closed");
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::unique_ptr<Transport>(std::make_unique<TcpEndpoint>(fd));
  }
}

void TcpListener::Close() {
  if (closed_.exchange(true)) return;
  // shutdown() wakes a blocked accept() on Linux; the self-connection
  // below covers platforms (and kernels) where it does not. The fd itself
  // stays open until the destructor so a racing Accept() never sees a
  // recycled descriptor.
  ::shutdown(fd_, SHUT_RDWR);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) {
    struct sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    (void)::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr));
    ::close(fd);
  }
}

Result<std::unique_ptr<Transport>> TcpConnect(const std::string& address) {
  std::size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("tcp transport: address '" + address +
                                   "' is not host:port");
  }
  std::string host = address.substr(0, colon);
  int port = 0;
  try {
    port = std::stoi(address.substr(colon + 1));
  } catch (...) {
    port = -1;
  }
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("tcp transport: bad port in '" + address +
                                   "'");
  }
  if (host == "localhost" || host.empty()) host = "127.0.0.1";

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("tcp transport: host '" + host +
                                   "' is not a numeric IPv4 address");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return Errno("connect to " + address);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Transport>(std::make_unique<TcpEndpoint>(fd));
}

}  // namespace replication
}  // namespace rtic
