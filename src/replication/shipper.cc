#include "replication/shipper.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "replication/repl_format.h"
#include "wal/wal_format.h"

namespace rtic {
namespace replication {
namespace {

bool IsCheckpointName(const std::string& name) {
  std::uint64_t seq = 0;
  std::uint64_t parent = 0;
  return wal::ParseCheckpointFileName(name, &seq) ||
         wal::ParseDeltaCheckpointFileName(name, &seq, &parent);
}

bool IsSegmentName(const std::string& name) {
  std::uint64_t seq = 0;
  return wal::ParseSegmentFileName(name, &seq);
}

}  // namespace

SegmentShipper::SegmentShipper(ShipperOptions options, Transport* transport)
    : options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : wal::DefaultFs()),
      transport_(transport) {}

Status SegmentShipper::Start() {
  RTIC_RETURN_IF_ERROR(transport_->Send(EncodeHello("primary")));
  ++stats_.frames_sent;
  if (!options_.persist_watermark) return Status::OK();
  // Retention starts at attach: persist "nothing acknowledged" unless a
  // previous session already recorded a (necessarily monotonic) watermark.
  const std::string path =
      options_.dir + "/" + std::string(wal::kShipWatermarkFileName);
  RTIC_ASSIGN_OR_RETURN(bool exists, fs_->FileExists(path));
  if (exists) return Status::OK();
  return PersistWatermark(0);
}

Status SegmentShipper::DrainAcks() {
  for (;;) {
    std::string raw;
    RTIC_ASSIGN_OR_RETURN(bool got, transport_->TryRecv(&raw));
    if (!got) return Status::OK();
    RTIC_ASSIGN_OR_RETURN(Frame frame, ParseFrame(raw));
    if (frame.version != kProtocolVersion) {
      return Status::FailedPrecondition(
          "replication: standby speaks protocol version " +
          std::to_string(frame.version) + ", this primary speaks " +
          std::to_string(kProtocolVersion));
    }
    switch (frame.type) {
      case FrameType::kHello:
        break;  // the standby's side of the handshake
      case FrameType::kAck:
        ++stats_.acks_seen;
        if (frame.arg > acked_seq_) acked_seq_ = frame.arg;
        break;
      case FrameType::kFileChunk:
        return Status::InvalidArgument(
            "replication: standby sent a file chunk");
    }
  }
}

Status SegmentShipper::ShipFile(const std::string& name,
                                std::uint64_t from_offset,
                                const std::string& bytes) {
  RTIC_RETURN_IF_ERROR(transport_->Send(
      EncodeFileChunk(name, from_offset,
                      std::string_view(bytes).substr(from_offset))));
  ++stats_.frames_sent;
  stats_.bytes_sent += bytes.size() - from_offset;
  ++stats_.files_shipped;
  return Status::OK();
}

Status SegmentShipper::ShipOnce() {
  RTIC_RETURN_IF_ERROR(DrainAcks());
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs_->ListDir(options_.dir));
  // ListDir is sorted, so checkpoint files ("ckpt-") ship before segments
  // ("wal-") — a late-attaching standby installs the chain first and
  // replays only the uncovered tail.
  for (const std::string& name : names) {
    if (IsCheckpointName(name)) {
      if (shipped_.count(name) != 0) continue;
      Result<std::string> bytes = fs_->ReadFile(options_.dir + "/" + name);
      if (!bytes.ok()) continue;  // GC won the race; a newer chain follows
      RTIC_RETURN_IF_ERROR(ShipFile(name, 0, *bytes));
      shipped_[name] = bytes->size();
    } else if (IsSegmentName(name)) {
      Result<std::string> bytes = fs_->ReadFile(options_.dir + "/" + name);
      if (!bytes.ok()) continue;
      std::uint64_t& offset = shipped_[name];
      if (bytes->size() > offset) {
        RTIC_RETURN_IF_ERROR(ShipFile(name, offset, *bytes));
        offset = bytes->size();
      }
    }
  }
  // Forget files GC has unlinked so the session map stays bounded
  // (ListDir returns sorted names).
  for (auto it = shipped_.begin(); it != shipped_.end();) {
    if (std::binary_search(names.begin(), names.end(), it->first)) {
      ++it;
    } else {
      it = shipped_.erase(it);
    }
  }
  RTIC_RETURN_IF_ERROR(DrainAcks());
  if (options_.persist_watermark &&
      (acked_seq_ > persisted_ || !have_persisted_)) {
    RTIC_RETURN_IF_ERROR(PersistWatermark(acked_seq_));
  }
  return Status::OK();
}

Status SegmentShipper::WaitForAck(std::uint64_t seq,
                                  std::uint64_t timeout_micros) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros);
  for (;;) {
    RTIC_RETURN_IF_ERROR(DrainAcks());
    if (options_.persist_watermark &&
        (acked_seq_ > persisted_ || !have_persisted_)) {
      RTIC_RETURN_IF_ERROR(PersistWatermark(acked_seq_));
    }
    if (acked_seq_ >= seq) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "replication: standby acked " + std::to_string(acked_seq_) +
          " of " + std::to_string(seq) + " before the wait timed out");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

Status SegmentShipper::PersistWatermark(std::uint64_t seq) {
  const std::string path =
      options_.dir + "/" + std::string(wal::kShipWatermarkFileName);
  const std::string tmp_path = path + wal::kTempSuffix;
  {
    RTIC_ASSIGN_OR_RETURN(std::unique_ptr<wal::WritableFile> file,
                          fs_->NewWritableFile(tmp_path, /*truncate=*/true));
    RTIC_RETURN_IF_ERROR(file->Append(wal::EncodeShipWatermark(seq)));
    RTIC_RETURN_IF_ERROR(file->Sync());
    RTIC_RETURN_IF_ERROR(file->Close());
  }
  RTIC_RETURN_IF_ERROR(fs_->Rename(tmp_path, path));
  RTIC_RETURN_IF_ERROR(fs_->SyncDir(options_.dir));
  have_persisted_ = true;
  persisted_ = seq;
  return Status::OK();
}

}  // namespace replication
}  // namespace rtic
