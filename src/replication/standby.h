// StandbyMonitor: the warm-standby side of log-shipping replication.
//
// The standby mirrors the primary's WAL directory file-for-file into its
// own directory, verifying the record framing's CRCs as bytes arrive, and
// continuously replays every complete shipped batch through an in-memory
// replica ConstraintMonitor — the same ApplyUpdate path recovery uses, so
// the replica's verdict stream is the primary's. Shipped checkpoint files
// (base + delta chains) bootstrap a late-attaching replica past records
// the primary has already garbage-collected. The standby acknowledges the
// highest sequence number that is both durably mirrored and replayed;
// the primary's GC retains everything newer (see shipper.h).
//
// Chunk handling is idempotent, which is what makes the transport's
// at-most-once-per-connection guarantee enough: a duplicated chunk is
// skipped (its bytes are already durable), a re-shipped file after a
// reconnect is skipped the same way, an out-of-order chunk is stashed
// until the mirror reaches its offset, and a torn frame fails the session
// before any byte reaches the mirror. Attach() repairs standby-side crash
// damage (torn or corrupt mirror tails are truncated, invalid mirrored
// checkpoint files removed) before replaying, so re-attaching after a
// standby crash converges back to the primary's stream.
//
// Promote() is genuinely Recover()-equivalent: it builds a fresh durable
// ConstraintMonitor over the mirror directory and runs Recover(), so a
// promoted standby takes over at the primary's last durable group-commit
// batch that reached the mirror — with the same checkpoint chain, the
// same truncation rules, and the same verdicts as a primary restart.

#ifndef RTIC_REPLICATION_STANDBY_H_
#define RTIC_REPLICATION_STANDBY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "monitor/monitor.h"
#include "replication/transport.h"
#include "wal/file.h"

namespace rtic {
namespace replication {

struct StandbyOptions {
  /// The standby's mirror directory; created if absent.
  std::string dir;
  /// File system; nullptr means wal::DefaultFs(). Tests substitute a
  /// FaultInjectingFs to crash the standby at any mirror write.
  wal::Fs* fs = nullptr;
  /// Configuration for the replica and the promoted monitor. wal_dir,
  /// wal_fs, and replication fields are overridden internally.
  MonitorOptions monitor_options;
  /// Registers the tables and constraints (the schema is not shipped; a
  /// standby is configured like its primary). Called on the replica at
  /// Attach() and on the promoted monitor in Promote().
  std::function<Status(ConstraintMonitor*)> configure;
  /// Optional: observes every replayed batch and its violations, in
  /// sequence order — the standby's live verdict stream.
  std::function<void(std::uint64_t seq, const UpdateBatch& batch,
                     const std::vector<Violation>& violations)>
      on_replay;
};

struct StandbyStats {
  std::uint64_t frames_received = 0;
  std::uint64_t chunks_applied = 0;    // chunks that added mirror bytes
  std::uint64_t chunks_skipped = 0;    // duplicates / already-mirrored
  std::uint64_t chunks_stashed = 0;    // out-of-order, held for later
  std::uint64_t records_replayed = 0;  // batches applied to the replica
  std::uint64_t checkpoints_installed = 0;
  std::uint64_t acks_sent = 0;
};

class StandbyMonitor {
 public:
  /// Builds the replica (monitor_options + configure), repairs and replays
  /// whatever an earlier session left in the mirror directory, and binds
  /// the transport. The endpoint must outlive the standby.
  static Result<std::unique_ptr<StandbyMonitor>> Attach(
      StandbyOptions options, Transport* transport);

  /// Blocks for one frame and handles it. Returns false when the session
  /// is over — the primary closed cleanly, or it vanished mid-session (an
  /// outbound reply could not be delivered); a protocol violation,
  /// unparseable frame, or mirror write failure is an error (the session
  /// is dead; the mirror stays valid and a new Attach() over the same
  /// directory resumes).
  Result<bool> ProcessOne();

  /// Handles every frame already queued without blocking; returns the
  /// number handled.
  Result<std::size_t> ProcessPending();

  /// Serves until the primary closes the connection.
  Status Run();

  /// Takes over: closes the transport and recovers a fresh durable
  /// ConstraintMonitor from the mirror directory (see file comment).
  Result<std::unique_ptr<ConstraintMonitor>> Promote();

  /// Highest sequence number durably mirrored and replayed so far.
  std::uint64_t replayed_seq() const { return replica_->transition_count(); }

  /// The live replica (read-only; owned by the standby until Promote).
  const ConstraintMonitor& replica() const { return *replica_; }

  const StandbyStats& stats() const { return stats_; }

 private:
  /// Bookkeeping for one mirrored segment file.
  struct SegmentState {
    std::uint64_t durable = 0;  // bytes in the mirror file
    std::string tail;           // durable bytes not yet consumed as records
  };

  /// One validated checkpoint file durably present in the mirror.
  struct CkptInfo {
    std::uint64_t seq = 0;
    std::uint64_t parent = 0;  // meaningful iff is_delta
    bool is_delta = false;
    std::string payload;  // the unframed checkpoint payload
  };

  StandbyMonitor(StandbyOptions options, Transport* transport);

  static bool ParseCkptName(const std::string& name, CkptInfo* info);

  /// Unframes a mirrored checkpoint file: exactly one record whose
  /// sequence number matches the file name.
  static bool UnframeCkpt(const std::string& name, const std::string& bytes,
                          CkptInfo* info);

  Status BuildReplica();

  /// Repairs the mirror directory (truncate torn/corrupt segment tails,
  /// remove invalid checkpoint files) and replays its contents into the
  /// replica: newest valid checkpoint chain first, then every applicable
  /// record.
  Status CatchUpFromMirror();

  Status HandleFrame(const std::string& raw);
  Status HandleChunk(const std::string& name, std::uint64_t offset,
                     const std::string& bytes);
  Status HandleCheckpointChunk(const std::string& name,
                               const std::string& bytes);
  Status AppendSegmentBytes(const std::string& name,
                            const std::string& bytes);

  /// Replays every complete, in-sequence record buffered in the segment
  /// tails; stops at a gap (waiting for a stashed or future chunk).
  Status ApplyBufferedRecords();

  /// Advances the replica over the newest mirrored checkpoint chain: the
  /// greatest base ahead of the replica, then every delta whose parent
  /// link matches exactly. Used at Attach() and when a late-attach gap
  /// proves the records below the chain no longer exist on the primary.
  Status InstallBestChain();

  Status ApplyRecordPayload(std::uint64_t seq, const std::string& payload);

  /// What to acknowledge: max(replayed records, durably mirrored chain
  /// tip) — either suffices for Promote() to restore that far.
  std::uint64_t AckValue() const;

  Status SendAckIfAdvanced();

  /// Sends `frame`, converting a send failure into "the peer is gone"
  /// (`peer_gone_`): the session then ends as if the primary had closed,
  /// since everything the frame would have told it is already durable in
  /// the mirror.
  void SendToPeer(const std::string& frame);

  StandbyOptions options_;
  wal::Fs* fs_;
  Transport* transport_;
  std::unique_ptr<ConstraintMonitor> replica_;
  std::map<std::string, SegmentState> segments_;  // sorted = sequence order
  std::map<std::string, std::uint64_t> ckpt_sizes_;  // mirrored ckpt files
  std::map<std::string, CkptInfo> mirrored_ckpts_;   // validated, durable
  // Out-of-order chunks keyed by (file, required mirror size).
  std::map<std::pair<std::string, std::uint64_t>, std::string> stashed_;
  std::uint64_t last_acked_ = 0;
  bool sent_first_ack_ = false;
  bool peer_gone_ = false;  // an outbound send failed; session is over
  StandbyStats stats_;
};

}  // namespace replication
}  // namespace rtic

#endif  // RTIC_REPLICATION_STANDBY_H_
