#include "replication/standby.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "replication/repl_format.h"
#include "storage/codec.h"
#include "wal/wal_format.h"

namespace rtic {
namespace replication {

bool StandbyMonitor::ParseCkptName(const std::string& name, CkptInfo* info) {
  if (wal::ParseCheckpointFileName(name, &info->seq)) {
    info->is_delta = false;
    return true;
  }
  if (wal::ParseDeltaCheckpointFileName(name, &info->seq, &info->parent)) {
    info->is_delta = true;
    return true;
  }
  return false;
}

bool StandbyMonitor::UnframeCkpt(const std::string& name,
                                 const std::string& bytes, CkptInfo* info) {
  if (!ParseCkptName(name, info)) return false;
  wal::ParsedRecord rec;
  if (wal::ParseRecord(bytes, 0, &rec, nullptr) !=
      wal::ParseOutcome::kRecord) {
    return false;
  }
  if (rec.seq != info->seq || rec.end_offset != bytes.size()) return false;
  info->payload = std::move(rec.payload);
  return true;
}

StandbyMonitor::StandbyMonitor(StandbyOptions options, Transport* transport)
    : options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : wal::DefaultFs()),
      transport_(transport) {}

Result<std::unique_ptr<StandbyMonitor>> StandbyMonitor::Attach(
    StandbyOptions options, Transport* transport) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("StandbyOptions::dir must be set");
  }
  if (!options.configure) {
    return Status::InvalidArgument(
        "StandbyOptions::configure must register the primary's tables and "
        "constraints");
  }
  if (transport == nullptr) {
    return Status::InvalidArgument("StandbyMonitor needs a transport");
  }
  std::unique_ptr<StandbyMonitor> standby(
      new StandbyMonitor(std::move(options), transport));
  RTIC_RETURN_IF_ERROR(standby->BuildReplica());
  RTIC_RETURN_IF_ERROR(standby->CatchUpFromMirror());
  return standby;
}

Status StandbyMonitor::BuildReplica() {
  MonitorOptions opts = options_.monitor_options;
  // The replica is purely in-memory: the mirror directory belongs to the
  // shipping protocol until Promote() recovers from it.
  opts.wal_dir.clear();
  opts.wal_fs = nullptr;
  opts.replication_standby.clear();
  replica_ = std::make_unique<ConstraintMonitor>(opts);
  return options_.configure(replica_.get());
}

Status StandbyMonitor::CatchUpFromMirror() {
  RTIC_RETURN_IF_ERROR(fs_->CreateDir(options_.dir));
  RTIC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        fs_->ListDir(options_.dir));

  // Checkpoint files: validate each; a file a standby crash left torn or
  // corrupt is removed (the next session re-ships it).
  for (const std::string& name : names) {
    CkptInfo info;
    if (!ParseCkptName(name, &info)) continue;
    const std::string path = options_.dir + "/" + name;
    RTIC_ASSIGN_OR_RETURN(std::string bytes, fs_->ReadFile(path));
    if (!UnframeCkpt(name, bytes, &info)) {
      RTIC_LOG(Warning) << "standby: removing damaged mirrored checkpoint "
                        << name;
      RTIC_RETURN_IF_ERROR(fs_->Remove(path));
      continue;
    }
    ckpt_sizes_[name] = bytes.size();
    mirrored_ckpts_[name] = std::move(info);
  }

  // Segment files: sequential mirror appends mean crash damage sits at a
  // file's tail; truncate it away so live overlap-healing (which assumes
  // the mirrored prefix is exactly the primary's prefix) stays sound.
  for (const std::string& name : names) {
    std::uint64_t first_seq = 0;
    if (!wal::ParseSegmentFileName(name, &first_seq)) continue;
    const std::string path = options_.dir + "/" + name;
    RTIC_ASSIGN_OR_RETURN(std::string bytes, fs_->ReadFile(path));
    std::size_t offset = 0;
    wal::ParsedRecord rec;
    wal::ParseOutcome outcome;
    while ((outcome = wal::ParseRecord(bytes, offset, &rec, nullptr)) ==
           wal::ParseOutcome::kRecord) {
      offset = rec.end_offset;
    }
    if (outcome != wal::ParseOutcome::kEnd) {
      RTIC_LOG(Warning) << "standby: truncating damaged mirror tail of "
                        << name << " at offset " << offset;
      if (offset == 0) {
        RTIC_RETURN_IF_ERROR(fs_->Remove(path));
        continue;
      }
      RTIC_RETURN_IF_ERROR(fs_->Truncate(path, offset));
      bytes.resize(offset);
    }
    SegmentState state;
    state.durable = bytes.size();
    state.tail = std::move(bytes);
    segments_[name] = std::move(state);
  }

  // Bootstrap from the newest mirrored chain, then replay the tail. (A
  // mirror holding the whole log from seq 1 replays identically without
  // this, but a late-attached mirror has only the chain plus the
  // uncovered tail.)
  RTIC_RETURN_IF_ERROR(InstallBestChain());
  return ApplyBufferedRecords();
}

Status StandbyMonitor::InstallBestChain() {
  // Greatest base that advances the replica, then every delta whose parent
  // link matches exactly. Checkpoints are monotonic on the primary, so the
  // greatest mirrored base anchors the newest mirrored chain.
  const CkptInfo* base = nullptr;
  for (const auto& [name, info] : mirrored_ckpts_) {
    if (info.is_delta) continue;
    if (info.seq <= replica_->transition_count()) continue;
    if (base == nullptr || info.seq > base->seq) base = &info;
  }
  if (base != nullptr) {
    RTIC_RETURN_IF_ERROR(replica_->LoadState(base->payload));
    ++stats_.checkpoints_installed;
  }
  for (;;) {
    const CkptInfo* next = nullptr;
    for (const auto& [name, info] : mirrored_ckpts_) {
      if (info.is_delta && info.parent == replica_->transition_count()) {
        next = &info;
        break;
      }
    }
    if (next == nullptr) break;
    Status s = replica_->LoadStateDelta(next->payload);
    if (!s.ok()) {
      // A delta that fails against its exact parent state chains to a
      // logical state this replica never reached (e.g. files from two
      // primary generations); fall back to record replay.
      RTIC_LOG(Warning) << "standby: mirrored delta at seq " << next->seq
                        << " rejected (" << s.ToString()
                        << "); replaying records instead";
      break;
    }
    ++stats_.checkpoints_installed;
  }
  return Status::OK();
}

Result<bool> StandbyMonitor::ProcessOne() {
  if (peer_gone_) return false;
  std::string raw;
  RTIC_ASSIGN_OR_RETURN(bool got, transport_->Recv(&raw));
  if (!got) return false;
  RTIC_RETURN_IF_ERROR(HandleFrame(raw));
  return !peer_gone_;
}

Result<std::size_t> StandbyMonitor::ProcessPending() {
  std::size_t handled = 0;
  for (;;) {
    if (peer_gone_) return handled;
    std::string raw;
    RTIC_ASSIGN_OR_RETURN(bool got, transport_->TryRecv(&raw));
    if (!got) return handled;
    RTIC_RETURN_IF_ERROR(HandleFrame(raw));
    ++handled;
  }
}

Status StandbyMonitor::Run() {
  for (;;) {
    RTIC_ASSIGN_OR_RETURN(bool open, ProcessOne());
    if (!open) return Status::OK();
  }
}

Status StandbyMonitor::HandleFrame(const std::string& raw) {
  ++stats_.frames_received;
  RTIC_ASSIGN_OR_RETURN(Frame frame, ParseFrame(raw));
  if (frame.version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "replication: primary speaks protocol version " +
        std::to_string(frame.version) + ", this standby speaks " +
        std::to_string(kProtocolVersion));
  }
  switch (frame.type) {
    case FrameType::kHello: {
      SendToPeer(EncodeHello("standby"));
      if (peer_gone_) return Status::OK();
      // First ack tells a reconnecting primary where this mirror already
      // is, so its watermark resumes without waiting for new chunks.
      SendToPeer(EncodeAck(AckValue()));
      if (peer_gone_) return Status::OK();
      last_acked_ = AckValue();
      sent_first_ack_ = true;
      ++stats_.acks_sent;
      return Status::OK();
    }
    case FrameType::kAck:
      return Status::InvalidArgument("replication: primary sent an ack");
    case FrameType::kFileChunk: {
      RTIC_RETURN_IF_ERROR(HandleChunk(frame.name, frame.arg, frame.body));
      return SendAckIfAdvanced();
    }
  }
  return Status::Internal("replication: unreachable frame type");
}

Status StandbyMonitor::HandleChunk(const std::string& name,
                                   std::uint64_t offset,
                                   const std::string& bytes) {
  CkptInfo ckpt_probe;
  std::uint64_t first_seq = 0;
  if (ParseCkptName(name, &ckpt_probe)) {
    if (offset != 0) {
      return Status::InvalidArgument(
          "replication: checkpoint chunk for " + name +
          " at nonzero offset " + std::to_string(offset));
    }
    return HandleCheckpointChunk(name, bytes);
  }
  if (!wal::ParseSegmentFileName(name, &first_seq)) {
    // Unknown directory entry (e.g. a future file kind): mirroring it
    // would be harmless but replaying it is undefined; skip.
    ++stats_.chunks_skipped;
    return Status::OK();
  }

  SegmentState& state = segments_[name];
  if (offset + bytes.size() <= state.durable) {
    ++stats_.chunks_skipped;  // duplicate or re-ship of mirrored bytes
    return Status::OK();
  }
  if (offset > state.durable) {
    stashed_[{name, offset}] = bytes;
    ++stats_.chunks_stashed;
    return Status::OK();
  }
  // The mirrored prefix is the primary's prefix (both are the file's bytes
  // in order), so only the unseen suffix is appended.
  RTIC_RETURN_IF_ERROR(
      AppendSegmentBytes(name, bytes.substr(state.durable - offset)));
  // A reordered chunk may now be contiguous; stale stash entries (covered
  // by what is already durable) are dropped.
  for (;;) {
    bool advanced = false;
    for (auto it = stashed_.begin(); it != stashed_.end();) {
      if (it->first.first != name) {
        ++it;
        continue;
      }
      const std::uint64_t at = it->first.second;
      if (at + it->second.size() <= state.durable) {
        it = stashed_.erase(it);
        continue;
      }
      if (at <= state.durable) {
        std::string pending = std::move(it->second);
        it = stashed_.erase(it);
        RTIC_RETURN_IF_ERROR(AppendSegmentBytes(
            name, pending.substr(state.durable - at)));
        advanced = true;
        break;  // iterator invalidated relative to durable; rescan
      }
      ++it;
    }
    if (!advanced) break;
  }
  return ApplyBufferedRecords();
}

Status StandbyMonitor::AppendSegmentBytes(const std::string& name,
                                          const std::string& bytes) {
  SegmentState& state = segments_[name];
  const std::string path = options_.dir + "/" + name;
  {
    RTIC_ASSIGN_OR_RETURN(
        std::unique_ptr<wal::WritableFile> file,
        fs_->NewWritableFile(path, /*truncate=*/state.durable == 0));
    RTIC_RETURN_IF_ERROR(file->Append(bytes));
    RTIC_RETURN_IF_ERROR(file->Sync());
    RTIC_RETURN_IF_ERROR(file->Close());
  }
  state.durable += bytes.size();
  state.tail += bytes;
  ++stats_.chunks_applied;
  return Status::OK();
}

Status StandbyMonitor::HandleCheckpointChunk(const std::string& name,
                                             const std::string& bytes) {
  auto it = ckpt_sizes_.find(name);
  if (it != ckpt_sizes_.end() && it->second == bytes.size()) {
    ++stats_.chunks_skipped;  // re-ship of a file already mirrored
    return Status::OK();
  }
  CkptInfo info;
  if (!UnframeCkpt(name, bytes, &info)) {
    // The frame checksum passed, so these are the bytes the primary sent —
    // a primary shipping an invalid checkpoint file is a protocol error,
    // not line noise.
    return Status::InvalidArgument(
        "replication: shipped checkpoint " + name + " is not valid");
  }
  const std::string path = options_.dir + "/" + name;
  {
    RTIC_ASSIGN_OR_RETURN(std::unique_ptr<wal::WritableFile> file,
                          fs_->NewWritableFile(path, /*truncate=*/true));
    RTIC_RETURN_IF_ERROR(file->Append(bytes));
    RTIC_RETURN_IF_ERROR(file->Sync());
    RTIC_RETURN_IF_ERROR(file->Close());
  }
  ckpt_sizes_[name] = bytes.size();
  mirrored_ckpts_[name] = std::move(info);
  ++stats_.chunks_applied;
  return ApplyBufferedRecords();
}

Status StandbyMonitor::ApplyBufferedRecords() {
  for (;;) {
    bool progress = false;
    bool beyond_gap = false;  // a buffered record past replayed+1 exists
    for (auto& [name, state] : segments_) {
      std::size_t offset = 0;
      for (;;) {
        wal::ParsedRecord rec;
        std::string reason;
        wal::ParseOutcome outcome =
            wal::ParseRecord(state.tail, offset, &rec, &reason);
        if (outcome == wal::ParseOutcome::kRecord) {
          const std::uint64_t next = replica_->transition_count() + 1;
          if (rec.seq < next) {
            offset = rec.end_offset;  // covered by a checkpoint or replayed
            continue;
          }
          if (rec.seq == next) {
            RTIC_RETURN_IF_ERROR(ApplyRecordPayload(rec.seq, rec.payload));
            offset = rec.end_offset;
            progress = true;
            continue;
          }
          beyond_gap = true;
          break;
        }
        if (outcome == wal::ParseOutcome::kEnd ||
            outcome == wal::ParseOutcome::kTorn) {
          break;  // wait for the next contiguous chunk
        }
        return Status::InvalidArgument("replication: mirror damage in " +
                                       name + ": " + reason);
      }
      state.tail.erase(0, offset);
      if (beyond_gap) break;  // later files are even further ahead
    }
    if (progress) continue;
    if (beyond_gap) {
      // Chunks ship in file order within a session, so a buffered record
      // beyond the gap means the records below it no longer exist on the
      // primary (garbage-collected before this standby attached). Jump
      // the replica forward over the mirrored checkpoint chain.
      const std::uint64_t before = replica_->transition_count();
      RTIC_RETURN_IF_ERROR(InstallBestChain());
      if (replica_->transition_count() > before) continue;
    }
    return Status::OK();
  }
}

Status StandbyMonitor::ApplyRecordPayload(std::uint64_t seq,
                                          const std::string& payload) {
  StateReader reader(payload);
  Result<UpdateBatch> batch = UpdateBatch::DecodeFrom(&reader);
  if (!batch.ok()) {
    return Status::InvalidArgument(
        "replication: shipped record " + std::to_string(seq) +
        " is not an update batch: " + batch.status().message());
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "replication: shipped record " + std::to_string(seq) +
        " has trailing tokens");
  }
  RTIC_ASSIGN_OR_RETURN(std::vector<Violation> violations,
                        replica_->ApplyUpdate(*batch));
  ++stats_.records_replayed;
  if (options_.on_replay) options_.on_replay(seq, *batch, violations);
  return Status::OK();
}

std::uint64_t StandbyMonitor::AckValue() const {
  // What the primary may stop retaining: everything at or below the
  // replica's position is replayed from durably mirrored bytes, and
  // everything at or below the mirrored chain tip is recoverable from the
  // chain alone (Promote() restores it even if the replica never replayed
  // that far live).
  std::uint64_t ack = replica_->transition_count();
  std::uint64_t tip = 0;
  for (const auto& [name, info] : mirrored_ckpts_) {
    if (!info.is_delta && info.seq > tip) tip = info.seq;
  }
  if (tip > 0) {
    for (;;) {
      bool extended = false;
      for (const auto& [name, info] : mirrored_ckpts_) {
        if (info.is_delta && info.parent == tip) {
          tip = info.seq;
          extended = true;
          break;
        }
      }
      if (!extended) break;
    }
  }
  return std::max(ack, tip);
}

Status StandbyMonitor::SendAckIfAdvanced() {
  const std::uint64_t ack = AckValue();
  if (sent_first_ack_ && ack <= last_acked_) return Status::OK();
  SendToPeer(EncodeAck(ack));
  if (peer_gone_) return Status::OK();
  last_acked_ = ack;
  sent_first_ack_ = true;
  ++stats_.acks_sent;
  return Status::OK();
}

void StandbyMonitor::SendToPeer(const std::string& frame) {
  Status s = transport_->Send(frame);
  if (!s.ok()) {
    // The chunk that prompted this reply is already durable in the
    // mirror, so a vanished peer costs nothing: end the session the way
    // a clean close would, and let the next Attach() resynchronize.
    RTIC_LOG(Warning) << "standby: peer unreachable (" << s.ToString()
                      << "); ending session";
    peer_gone_ = true;
  }
}

Result<std::unique_ptr<ConstraintMonitor>> StandbyMonitor::Promote() {
  transport_->Close();
  MonitorOptions opts = options_.monitor_options;
  opts.wal_dir = options_.dir;
  opts.wal_fs = options_.fs;
  // The promoted monitor is a primary now; it does not ship to itself.
  opts.replication_standby.clear();
  auto monitor = std::make_unique<ConstraintMonitor>(opts);
  RTIC_RETURN_IF_ERROR(options_.configure(monitor.get()));
  RTIC_ASSIGN_OR_RETURN(wal::RecoveryStats stats, monitor->Recover());
  (void)stats;
  return monitor;
}

}  // namespace replication
}  // namespace rtic
