// SegmentShipper: the primary side of log-shipping replication.
//
// The WAL's segments are immutable once written, checksummed per record,
// and named by the first sequence number they contain, so shipping is a
// byte-range copy: each ShipOnce() pass lists the WAL directory, sends any
// checkpoint file (base or delta) the session has not shipped yet as one
// whole-file chunk, and sends the newly appended byte range of every
// segment. The standby acknowledges the highest sequence number it has
// durably mirrored and replayed; the shipper persists that watermark in
// the WAL directory (wal::kShipWatermarkFileName) so garbage collection
// never unlinks an unacknowledged segment, even across a primary restart.
//
// A shipper session is stateless on the wire: after a reconnect (new
// shipper over a new transport) everything present on the primary is
// shipped again from offset 0, and the standby's idempotent chunk handling
// (see standby.h) skips bytes it already has. Files that vanish between
// the directory listing and the read (GC racing the scan) are skipped.

#ifndef RTIC_REPLICATION_SHIPPER_H_
#define RTIC_REPLICATION_SHIPPER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "replication/transport.h"
#include "wal/file.h"

namespace rtic {
namespace replication {

struct ShipperOptions {
  /// The primary's WAL directory (the one its RecoveryManager writes).
  std::string dir;
  /// File system; nullptr means wal::DefaultFs(). Tests substitute a
  /// FaultInjectingFs so watermark persistence is a crash-matrix fault
  /// point like every other durable write.
  wal::Fs* fs = nullptr;
  /// When false, acknowledgements are tracked in memory only and GC is
  /// not constrained (useful for fire-and-forget mirroring).
  bool persist_watermark = true;
};

struct ShipperStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;   // file bytes only, excluding frame headers
  std::uint64_t files_shipped = 0;  // checkpoint files + segments touched
  std::uint64_t acks_seen = 0;
};

class SegmentShipper {
 public:
  /// The transport endpoint must outlive the shipper.
  SegmentShipper(ShipperOptions options, Transport* transport);

  /// Opens the session: sends the primary hello. The standby's reply is
  /// consumed by the next DrainAcks/ShipOnce, so a single-threaded caller
  /// never deadlocks on the handshake.
  Status Start();

  /// One shipping pass: drain acknowledgements, list the WAL directory,
  /// ship unshipped checkpoint files and new segment bytes, drain again,
  /// and persist the watermark if it advanced. Fails when the transport
  /// is dead or the session saw a protocol violation (wrong version,
  /// unparseable frame from the standby).
  Status ShipOnce();

  /// Consumes every frame the standby has queued without blocking.
  Status DrainAcks();

  /// Polls acknowledgements until the standby has acked `seq`, the
  /// session errors, or `timeout_micros` elapses (DeadlineExceeded).
  /// Persists the watermark on any advance. A clean primary shutdown
  /// calls this after its final ShipOnce so the standby confirms the
  /// tail before the connection closes under it.
  Status WaitForAck(std::uint64_t seq, std::uint64_t timeout_micros);

  /// Highest sequence number the standby has acknowledged this session.
  std::uint64_t acked_seq() const { return acked_seq_; }

  const ShipperStats& stats() const { return stats_; }

 private:
  Status PersistWatermark(std::uint64_t seq);
  Status ShipFile(const std::string& name, std::uint64_t from_offset,
                  const std::string& bytes);

  ShipperOptions options_;
  wal::Fs* fs_;
  Transport* transport_;
  std::map<std::string, std::uint64_t> shipped_;  // file -> bytes shipped
  std::uint64_t acked_seq_ = 0;
  bool have_persisted_ = false;   // a watermark write happened this session
  std::uint64_t persisted_ = 0;   // last value written
  ShipperStats stats_;
};

}  // namespace replication
}  // namespace rtic

#endif  // RTIC_REPLICATION_SHIPPER_H_
