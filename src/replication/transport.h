// Byte-stream transports for log-shipping replication.
//
// A Transport carries whole frames (see repl_format.h) between a primary
// and a standby. Delivery is ordered and at-most-once per endpoint; the
// frame codec's checksum catches in-flight damage, and the standby's
// idempotent chunk handling absorbs duplicates and re-ships after a
// reconnect. Two implementations live here:
//
//   - CreatePipePair: an in-process queue pair for tests and benchmarks
//     (thread-safe; Recv blocks until a frame or peer close).
//   - FaultInjectingTransport: wraps another endpoint and damages the
//     stream at a chosen frame — the replication analogue of
//     wal::FaultInjectingFs, driving the crash matrix's transport axis.
//
// The minimal TCP transport is in tcp_transport.h.

#ifndef RTIC_REPLICATION_TRANSPORT_H_
#define RTIC_REPLICATION_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/result.h"

namespace rtic {
namespace replication {

/// One endpoint of a bidirectional frame stream.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues one whole frame to the peer. Fails once the connection is
  /// closed or dead.
  virtual Status Send(const std::string& frame) = 0;

  /// Blocks for the next frame. Returns false (with `frame` untouched) on
  /// clean close by the peer; non-OK on a dead connection.
  virtual Result<bool> Recv(std::string* frame) = 0;

  /// Non-blocking Recv: returns true with a frame, or false when none is
  /// ready (closed and drained also reports false — callers distinguish
  /// via a final blocking Recv if they care).
  virtual Result<bool> TryRecv(std::string* frame) = 0;

  /// Closes this endpoint; the peer's pending frames stay readable and
  /// its subsequent Recv reports clean close.
  virtual void Close() = 0;
};

/// Two connected in-process endpoints (first <-> second).
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreatePipePair();

/// What a transport fault does to the triggering outbound frame.
enum class TransportFaultKind {
  kDrop,       // the frame vanishes and the connection dies (link cut)
  kTruncate,   // the peer receives only a prefix, then the connection dies
  kDuplicate,  // the frame is delivered twice (connection stays up)
  kReorder,    // the frame swaps places with the next outbound frame
};

/// Wraps an endpoint and applies `kind` to outbound frame number
/// `trigger_frame` (1-based; 0 disables injection and only counts). kDrop
/// and kTruncate kill the connection: the triggering Send fails and every
/// later Send fails outright, like a cut link. kDuplicate and kReorder are
/// silent stream damage — Send succeeds and the connection stays up, so
/// tests can assert the frame codec and the standby's idempotency absorb
/// them. Recv/TryRecv pass through untouched.
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> base,
                          std::uint64_t trigger_frame,
                          TransportFaultKind kind);

  Status Send(const std::string& frame) override;
  Result<bool> Recv(std::string* frame) override;
  Result<bool> TryRecv(std::string* frame) override;
  void Close() override;

  /// Outbound frames seen so far (use a disabled run to size a matrix).
  std::uint64_t frames() const { return frames_; }

  /// True once a connection-killing fault has fired.
  bool dead() const { return dead_; }

 private:
  std::unique_ptr<Transport> base_;
  const std::uint64_t trigger_frame_;
  const TransportFaultKind kind_;
  std::uint64_t frames_ = 0;
  bool dead_ = false;
  bool have_held_ = false;  // kReorder: trigger frame held for the next Send
  std::string held_;
};

}  // namespace replication
}  // namespace rtic

#endif  // RTIC_REPLICATION_TRANSPORT_H_
