#include "replication/transport.h"

#include <condition_variable>
#include <deque>
#include <mutex>

namespace rtic {
namespace replication {
namespace {

// Shared state of one direction-agnostic pipe: two queues, one per
// direction, plus per-endpoint closed flags.
struct PipeCore {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> queue[2];  // queue[i] holds frames headed TO end i
  bool closed[2] = {false, false};
};

class PipeEndpoint final : public Transport {
 public:
  PipeEndpoint(std::shared_ptr<PipeCore> core, int end)
      : core_(std::move(core)), end_(end) {}

  ~PipeEndpoint() override { Close(); }

  Status Send(const std::string& frame) override {
    std::lock_guard<std::mutex> lock(core_->mu);
    if (core_->closed[end_]) {
      return Status::FailedPrecondition("pipe transport: endpoint closed");
    }
    if (core_->closed[1 - end_]) {
      return Status::FailedPrecondition("pipe transport: peer closed");
    }
    core_->queue[1 - end_].push_back(frame);
    core_->cv.notify_all();
    return Status::OK();
  }

  Result<bool> Recv(std::string* frame) override {
    std::unique_lock<std::mutex> lock(core_->mu);
    core_->cv.wait(lock, [&] {
      return !core_->queue[end_].empty() || core_->closed[end_] ||
             core_->closed[1 - end_];
    });
    if (!core_->queue[end_].empty()) {
      *frame = std::move(core_->queue[end_].front());
      core_->queue[end_].pop_front();
      return true;
    }
    if (core_->closed[end_]) {
      return Status::FailedPrecondition("pipe transport: endpoint closed");
    }
    return false;  // peer closed, queue drained
  }

  Result<bool> TryRecv(std::string* frame) override {
    std::lock_guard<std::mutex> lock(core_->mu);
    if (core_->closed[end_]) {
      return Status::FailedPrecondition("pipe transport: endpoint closed");
    }
    if (core_->queue[end_].empty()) return false;
    *frame = std::move(core_->queue[end_].front());
    core_->queue[end_].pop_front();
    return true;
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(core_->mu);
    core_->closed[end_] = true;
    core_->cv.notify_all();
  }

 private:
  std::shared_ptr<PipeCore> core_;
  const int end_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreatePipePair() {
  auto core = std::make_shared<PipeCore>();
  return {std::make_unique<PipeEndpoint>(core, 0),
          std::make_unique<PipeEndpoint>(core, 1)};
}

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> base, std::uint64_t trigger_frame,
    TransportFaultKind kind)
    : base_(std::move(base)), trigger_frame_(trigger_frame), kind_(kind) {}

Status FaultInjectingTransport::Send(const std::string& frame) {
  if (dead_) {
    return Status::FailedPrecondition("fault transport: connection dead");
  }
  ++frames_;
  if (trigger_frame_ == 0 || frames_ != trigger_frame_) {
    if (have_held_) {
      // kReorder already fired: deliver this frame first, then the held one.
      have_held_ = false;
      Status s = base_->Send(frame);
      if (!s.ok()) return s;
      return base_->Send(held_);
    }
    return base_->Send(frame);
  }
  switch (kind_) {
    case TransportFaultKind::kDrop:
      dead_ = true;
      base_->Close();
      return Status::FailedPrecondition("fault transport: link cut (frame dropped)");
    case TransportFaultKind::kTruncate: {
      std::string prefix = frame.substr(0, frame.size() / 2);
      (void)base_->Send(prefix);
      dead_ = true;
      base_->Close();
      return Status::FailedPrecondition(
          "fault transport: link cut (frame truncated)");
    }
    case TransportFaultKind::kDuplicate: {
      Status s = base_->Send(frame);
      if (!s.ok()) return s;
      return base_->Send(frame);
    }
    case TransportFaultKind::kReorder:
      have_held_ = true;
      held_ = frame;
      return Status::OK();
  }
  return Status::Internal("fault transport: unreachable");
}

Result<bool> FaultInjectingTransport::Recv(std::string* frame) {
  return base_->Recv(frame);
}

Result<bool> FaultInjectingTransport::TryRecv(std::string* frame) {
  return base_->TryRecv(frame);
}

void FaultInjectingTransport::Close() {
  if (have_held_) {
    // A trailing held frame would silently vanish; deliver it on close so
    // kReorder at the last frame degrades to "delayed", not "dropped".
    have_held_ = false;
    (void)base_->Send(held_);
  }
  base_->Close();
}

}  // namespace replication
}  // namespace rtic
