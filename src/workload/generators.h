// Synthetic history generators for examples, tests, and the benchmark
// harness. Each generator is deterministic in its seed and produces a
// Workload bundle: table schemas, constraint texts, and a timestamped
// batch stream. Violation-injection probabilities default to small non-zero
// values; setting them to 0 yields violation-free histories (a property the
// test suite checks).

#ifndef RTIC_WORKLOAD_GENERATORS_H_
#define RTIC_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "storage/update_batch.h"
#include "types/schema.h"

namespace rtic {
namespace workload {

/// A ready-to-run scenario: schemas + constraints + update stream.
struct Workload {
  /// Tables to create before the first batch.
  std::map<std::string, Schema> schema;

  /// Constraints to register: (name, constraint-language text).
  std::vector<std::pair<std::string, std::string>> constraints;

  /// The history, timestamps strictly increasing.
  std::vector<UpdateBatch> batches;
};

/// Alarm monitoring: alarms are raised (event Raise, state Active) and must
/// be acknowledged (event Ack) within `deadline` time units. A fraction of
/// alarms miss the deadline, violating `alarm_acked_within_deadline`.
struct AlarmParams {
  int num_alarms = 50;          // alarm id space
  std::size_t length = 200;     // number of transitions
  Timestamp deadline = 10;      // ack deadline (the constraint's window)
  double raise_prob = 0.4;      // chance a new alarm is raised per state
  double late_prob = 0.05;      // chance a raised alarm overruns the deadline
  Timestamp max_gap = 3;        // clock gap per transition in [1, max_gap]
  std::uint64_t seed = 42;
};
Workload MakeAlarmWorkload(const AlarmParams& params);

/// Payroll auditing: Emp(id, salary) evolves; Raise(id) marks raises.
/// Constraints: salaries never decrease; raises are at least
/// `raise_window` apart. `cut_prob` / `early_raise_prob` inject violations.
struct PayrollParams {
  int num_employees = 100;
  std::size_t length = 200;
  double update_prob = 0.6;       // chance some salary changes per state
  double cut_prob = 0.02;         // violation: salary decreases
  double early_raise_prob = 0.02; // violation: raise too soon after raise
  Timestamp raise_window = 30;
  Timestamp max_gap = 3;
  std::uint64_t seed = 42;
};
Workload MakePayrollWorkload(const PayrollParams& params);

/// Library circulation: members borrow books (event Loan, state Out) and
/// must return them within 30 time units; the same (patron, book) pair may
/// not be re-borrowed within `reloan_window`; only members may borrow.
struct LibraryParams {
  int num_patrons = 50;
  int num_books = 200;
  std::size_t length = 200;
  double loan_prob = 0.7;        // chance of a loan per state
  double nonmember_prob = 0.02;  // violation: non-member borrows
  double late_return_prob = 0.03;  // violation: return past 30
  Timestamp reloan_window = 7;
  Timestamp max_gap = 3;
  std::uint64_t seed = 42;
};
Workload MakeLibraryWorkload(const LibraryParams& params);

/// Sensor freshness farm (validity intervals): sensors publish readings
/// (event Publish); a derived cache serves every published sensor (state
/// Serving) and must never serve a reading older than `validity` time
/// units. Retiring a sensor (state Decommissioned) requires a full quiet
/// interval first. `stale_prob` delays refreshes past the validity window;
/// `early_decommission_prob` retires sensors that are still fresh.
struct FreshnessParams {
  int num_sensors = 40;
  std::size_t length = 200;
  Timestamp validity = 12;        // a published reading is valid this long
  double stale_prob = 0.04;       // violation: refresh arrives past validity
  double decommission_prob = 0.02;  // chance per state a sensor starts drain
  double early_decommission_prob = 0.05;  // violation: retire while fresh
  Timestamp max_gap = 3;          // clock gap per transition in [1, max_gap]
  std::uint64_t seed = 42;
};
Workload MakeFreshnessWorkload(const FreshnessParams& params);

/// Commit-protocol traces (real-time commit deadlines): a coordinator opens
/// a transaction (event Begin, state Pending); each of `num_participants`
/// participants (state Part) must vote (event Vote) within `vote_window`,
/// and the coordinator must decide (event Decide) within `decide_window` of
/// the last vote. `late_vote_prob` / `late_decide_prob` inject deadline
/// misses.
struct CommitParams {
  int num_participants = 3;
  std::size_t length = 200;
  double begin_prob = 0.35;       // chance a new transaction begins per state
  Timestamp vote_window = 12;     // w1: Begin -> every Vote
  Timestamp decide_window = 12;   // w2: last Vote -> Decide
  double late_vote_prob = 0.03;   // violation: a vote misses w1
  double late_decide_prob = 0.03;  // violation: the decision misses w2
  Timestamp max_gap = 3;
  std::uint64_t seed = 42;
};
Workload MakeCommitProtocolWorkload(const CommitParams& params);

}  // namespace workload
}  // namespace rtic

#endif  // RTIC_WORKLOAD_GENERATORS_H_
