#include "workload/driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <utility>

#include "common/rng.h"

namespace rtic {
namespace workload {

namespace {

using Clock = std::chrono::steady_clock;

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1) + 0.5);
  return (*sorted_in_place)[std::min(idx, sorted_in_place->size() - 1)];
}

/// Per-connection tallies, merged after the join.
struct WorkerTally {
  std::size_t offered = 0;
  std::size_t accepted = 0;
  std::size_t overloaded = 0;
  std::size_t violations = 0;
  std::size_t violating_batches = 0;
  std::vector<double> apply_micros;
  std::vector<double> detect_micros;
  Status error = Status::OK();
};

void DriveIndices(const Workload& workload, const std::vector<double>& schedule,
                  const std::vector<std::size_t>& indices, DriveTarget* target,
                  const DriverOptions& options, Clock::time_point start,
                  WorkerTally* tally, std::vector<std::string>* transcript) {
  for (std::size_t i : indices) {
    if (options.pace) {
      auto due = start + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(schedule[i]));
      std::this_thread::sleep_until(due);
    }
    const UpdateBatch* batch = &workload.batches[i];
    UpdateBatch reassigned(0);
    if (options.server_timestamps) {
      // Timestamp 0 asks the server to assign current_time + 1; required
      // when interleaved connections would break the workload's
      // pre-assigned monotone timestamps.
      reassigned = *batch;
      reassigned.set_timestamp(0);
      batch = &reassigned;
    }
    auto before = Clock::now();
    Result<DriveOutcome> outcome = target->Apply(*batch);
    auto after = Clock::now();
    ++tally->offered;
    if (!outcome.ok()) {
      tally->error = outcome.status();
      return;
    }
    double micros =
        std::chrono::duration<double, std::micro>(after - before).count();
    tally->apply_micros.push_back(micros);
    if (outcome->overloaded) {
      ++tally->overloaded;
      continue;
    }
    ++tally->accepted;
    if (!outcome->violations.empty()) {
      ++tally->violating_batches;
      tally->violations += outcome->violations.size();
      tally->detect_micros.push_back(micros);
      if (transcript != nullptr) {
        for (const Violation& v : outcome->violations) {
          transcript->push_back(v.ToString());
        }
      }
    }
  }
}

Result<DriverReport> RunOverTargets(const Workload& workload,
                                    const std::vector<DriveTarget*>& targets,
                                    const DriverOptions& options) {
  if (targets.empty()) {
    return Status::InvalidArgument("driver needs at least one connection");
  }
  if (targets.size() > 1 && !options.server_timestamps) {
    return Status::InvalidArgument(
        "multi-connection driving requires server_timestamps: interleaved "
        "sends cannot carry the workload's pre-assigned timestamps");
  }
  std::vector<double> schedule =
      ArrivalSchedule(workload.batches.size(), options);
  std::vector<std::vector<std::size_t>> assignment(targets.size());
  for (std::size_t i = 0; i < workload.batches.size(); ++i) {
    assignment[i % targets.size()].push_back(i);
  }

  const bool capture =
      targets.size() == 1 && options.record_transcript;
  DriverReport report;
  std::vector<WorkerTally> tallies(targets.size());
  auto start = Clock::now();
  if (targets.size() == 1) {
    DriveIndices(workload, schedule, assignment[0], targets[0], options, start,
                 &tallies[0], capture ? &report.transcript : nullptr);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(targets.size());
    for (std::size_t c = 0; c < targets.size(); ++c) {
      threads.emplace_back(DriveIndices, std::cref(workload),
                           std::cref(schedule), std::cref(assignment[c]),
                           targets[c], std::cref(options), start, &tallies[c],
                           nullptr);
    }
    for (std::thread& t : threads) t.join();
  }
  auto end = Clock::now();

  std::vector<double> apply_micros;
  std::vector<double> detect_micros;
  for (WorkerTally& t : tallies) {
    if (!t.error.ok()) return t.error;
    report.offered += t.offered;
    report.accepted += t.accepted;
    report.overloaded += t.overloaded;
    report.violations += t.violations;
    report.violating_batches += t.violating_batches;
    apply_micros.insert(apply_micros.end(), t.apply_micros.begin(),
                        t.apply_micros.end());
    detect_micros.insert(detect_micros.end(), t.detect_micros.begin(),
                         t.detect_micros.end());
  }
  report.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  if (report.elapsed_seconds > 0) {
    report.accepted_per_sec =
        static_cast<double>(report.accepted) / report.elapsed_seconds;
  }
  report.apply_p50_micros = Percentile(&apply_micros, 0.50);
  report.apply_p99_micros = Percentile(&apply_micros, 0.99);
  report.detect_p50_micros = Percentile(&detect_micros, 0.50);
  report.detect_p99_micros = Percentile(&detect_micros, 0.99);
  return report;
}

}  // namespace

std::string DriverReport::ToString() const {
  std::ostringstream os;
  os << "offered=" << offered << " accepted=" << accepted
     << " overloaded=" << overloaded << " violations=" << violations << " ("
     << violating_batches << " batches)"
     << " elapsed=" << elapsed_seconds << "s"
     << " accepted/s=" << accepted_per_sec << " apply_p50=" << apply_p50_micros
     << "us apply_p99=" << apply_p99_micros
     << "us detect_p50=" << detect_p50_micros << "us";
  return os.str();
}

Status MonitorTarget::Install(const Workload& workload) {
  for (const auto& [name, schema] : workload.schema) {
    RTIC_RETURN_IF_ERROR(monitor_->CreateTable(name, schema));
  }
  for (const auto& [name, text] : workload.constraints) {
    RTIC_RETURN_IF_ERROR(monitor_->RegisterConstraint(name, text));
  }
  return Status::OK();
}

Result<DriveOutcome> MonitorTarget::Apply(const UpdateBatch& batch) {
  auto violations = monitor_->ApplyUpdate(batch);
  if (!violations.ok()) return violations.status();
  DriveOutcome outcome;
  outcome.violations = std::move(*violations);
  return outcome;
}

Status ClientTarget::Install(const Workload& workload) {
  for (const auto& [name, schema] : workload.schema) {
    RTIC_RETURN_IF_ERROR(client_->CreateTable(name, schema));
  }
  for (const auto& [name, text] : workload.constraints) {
    RTIC_RETURN_IF_ERROR(client_->RegisterConstraint(name, text));
  }
  return Status::OK();
}

Result<DriveOutcome> ClientTarget::Apply(const UpdateBatch& batch) {
  auto applied = client_->Apply(batch);
  if (!applied.ok()) return applied.status();
  DriveOutcome outcome;
  outcome.overloaded = applied->overloaded;
  outcome.violations = std::move(applied->violations);
  return outcome;
}

std::vector<double> ArrivalSchedule(std::size_t n,
                                    const DriverOptions& options) {
  std::vector<double> schedule;
  schedule.reserve(n);
  Rng rng(options.seed);
  const double rate = std::max(1e-9, options.rate_per_sec);
  // Inverse-CDF exponential sampling keeps the schedule platform-identical
  // (Rng::UniformDouble is deterministic in the seed).
  auto exponential = [&rng](double mean) {
    return -std::log(1.0 - rng.UniformDouble()) * mean;
  };
  if (options.arrival == ArrivalKind::kPoisson) {
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += exponential(1.0 / rate);
      schedule.push_back(t);
    }
    return schedule;
  }
  // Bursty on/off: exponential phase lengths; arrivals accrue only during
  // on-phases at a rate elevated so the long-run average stays rate_per_sec.
  const double on_mean = std::max(1e-6, options.burst_on_seconds);
  const double off_mean = std::max(0.0, options.burst_off_seconds);
  const double on_rate = rate * (on_mean + off_mean) / on_mean;
  double t = 0.0;
  double on_left = exponential(on_mean);
  for (std::size_t i = 0; i < n; ++i) {
    double gap = exponential(1.0 / on_rate);
    while (gap > on_left) {
      gap -= on_left;
      t += on_left;
      if (off_mean > 0) t += exponential(off_mean);
      on_left = exponential(on_mean);
    }
    t += gap;
    on_left -= gap;
    schedule.push_back(t);
  }
  return schedule;
}

Result<DriverReport> RunOpenLoop(const Workload& workload, DriveTarget* target,
                                 const DriverOptions& options) {
  if (options.connections > 1) {
    return Status::InvalidArgument(
        "single-target RunOpenLoop drives one connection; use the "
        "TargetFactory overload for connections > 1");
  }
  return RunOverTargets(workload, {target}, options);
}

Result<DriverReport> RunOpenLoop(const Workload& workload,
                                 const TargetFactory& factory,
                                 const DriverOptions& options) {
  std::size_t connections = std::max<std::size_t>(1, options.connections);
  std::vector<std::unique_ptr<DriveTarget>> owned;
  std::vector<DriveTarget*> targets;
  for (std::size_t c = 0; c < connections; ++c) {
    auto target = factory();
    if (!target.ok()) return target.status();
    targets.push_back(target->get());
    owned.push_back(std::move(*target));
  }
  return RunOverTargets(workload, targets, options);
}

}  // namespace workload
}  // namespace rtic
