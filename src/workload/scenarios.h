// Scenario registry: every workload family published under a stable name
// with a dial table (numeric knobs with defaults and documentation). The
// registry is the single entry point used by examples/scenario_runner, the
// scenario test battery, and bench_e19 — docs/SCENARIOS.md documents each
// family and is normative for the names listed here.

#ifndef RTIC_WORKLOAD_SCENARIOS_H_
#define RTIC_WORKLOAD_SCENARIOS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/generators.h"

namespace rtic {
namespace workload {

/// One tunable knob of a scenario family. Every dial is numeric (integral
/// dials are passed as doubles and truncated); `violation_dial` marks the
/// knobs that inject constraint violations — setting all of them to zero
/// yields a violation-free history, a property the test suite checks for
/// every family.
struct Dial {
  std::string name;
  double value;  // the family default
  std::string doc;
  bool violation_dial = false;
};

/// A registered scenario family.
struct ScenarioInfo {
  std::string name;     // stable registry key, e.g. "freshness"
  std::string summary;  // one-line description
  std::vector<Dial> dials;
};

/// All registered families, in registry order.
const std::vector<ScenarioInfo>& AllScenarios();

/// Looks up a family by name; nullptr when unknown.
const ScenarioInfo* FindScenario(const std::string& name);

/// Builds a workload from a family name and dial overrides. Unknown names
/// and unknown dial keys are InvalidArgument.
Result<Workload> MakeScenario(
    const std::string& name,
    const std::map<std::string, double>& overrides = {});

}  // namespace workload
}  // namespace rtic

#endif  // RTIC_WORKLOAD_SCENARIOS_H_
