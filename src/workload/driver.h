// Open-loop load driver: replays a Workload's batch stream against a
// checking back-end on a deterministic arrival schedule (Poisson or
// bursty-on/off inter-arrival times from a seeded PRNG), recording
// accepted/overloaded/violation counters and per-apply latencies. The
// back-end is either an in-process MonitorLike (library path) or a live
// RTIC server session via RticClient (server path) — both behind the
// DriveTarget interface, so every scenario in the registry doubles as a
// reusable load test.
//
// Determinism: the arrival schedule and the batch order depend only on the
// workload and DriverOptions::seed. With one connection and pacing off, a
// driver run over a MonitorTarget produces a violation transcript
// byte-identical to applying the batches directly (the test suite checks
// this per scenario family).

#ifndef RTIC_WORKLOAD_DRIVER_H_
#define RTIC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "monitor/monitor_iface.h"
#include "server/client.h"
#include "workload/generators.h"

namespace rtic {
namespace workload {

enum class ArrivalKind {
  kPoisson,  // exponential inter-arrival times at rate_per_sec
  kBursty,   // on/off phases; arrivals only during on-phases, at a rate
             // elevated so the long-run average is still rate_per_sec
};

struct DriverOptions {
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate_per_sec = 2000.0;    // mean offered arrival rate
  double burst_on_seconds = 0.05;  // bursty: mean on-phase length
  double burst_off_seconds = 0.05;  // bursty: mean off-phase length
  std::size_t connections = 1;  // concurrent sessions (server path); batch i
                                // goes to connection i % connections
  bool pace = true;  // false: ignore the schedule's wall-clock component and
                     // fire back-to-back (used by tests)
  bool server_timestamps = false;  // send timestamp 0 so the server assigns
                                   // current_time + 1 (required when
                                   // connections > 1 interleave sends)
  bool record_transcript = true;  // capture Violation::ToString() lines
                                  // (single-connection runs only)
  std::uint64_t seed = 42;
};

/// Counters and latency digests from one driver run. An open-loop driver
/// never retries: an OVERLOADED verdict counts the batch and moves on.
struct DriverReport {
  std::size_t offered = 0;     // batches sent
  std::size_t accepted = 0;    // admitted and checked
  std::size_t overloaded = 0;  // refused by admission control
  std::size_t violations = 0;  // violation reports across accepted batches
  std::size_t violating_batches = 0;
  double elapsed_seconds = 0.0;
  double accepted_per_sec = 0.0;
  double apply_p50_micros = 0.0;   // per-apply round-trip latency
  double apply_p99_micros = 0.0;
  double detect_p50_micros = 0.0;  // latency of applies that reported
  double detect_p99_micros = 0.0;  // violations (detection latency)

  /// Violation::ToString() lines in apply order (single-connection runs
  /// with record_transcript; empty otherwise).
  std::vector<std::string> transcript;

  std::string ToString() const;
};

/// One apply against a checking back-end.
struct DriveOutcome {
  bool overloaded = false;
  std::vector<Violation> violations;
};

/// A checking back-end the driver can load.
class DriveTarget {
 public:
  virtual ~DriveTarget() = default;

  /// Creates the workload's tables and registers its constraints.
  virtual Status Install(const Workload& workload) = 0;

  virtual Result<DriveOutcome> Apply(const UpdateBatch& batch) = 0;
};

/// Library path: drives an in-process monitor (never overloaded).
class MonitorTarget final : public DriveTarget {
 public:
  explicit MonitorTarget(MonitorLike* monitor) : monitor_(monitor) {}

  Status Install(const Workload& workload) override;
  Result<DriveOutcome> Apply(const UpdateBatch& batch) override;

 private:
  MonitorLike* monitor_;
};

/// Server path: drives one RTICSRV1 session.
class ClientTarget final : public DriveTarget {
 public:
  explicit ClientTarget(server::RticClient* client) : client_(client) {}

  Status Install(const Workload& workload) override;
  Result<DriveOutcome> Apply(const UpdateBatch& batch) override;

 private:
  server::RticClient* client_;
};

/// The deterministic arrival schedule: n offsets in seconds from run start,
/// non-decreasing, depending only on `options` (arrival kind, rate, seed).
std::vector<double> ArrivalSchedule(std::size_t n,
                                    const DriverOptions& options);

/// Drives the workload's batches through one target on the arrival
/// schedule. The caller installs schemas/constraints first (Install); the
/// driver only applies batches.
Result<DriverReport> RunOpenLoop(const Workload& workload, DriveTarget* target,
                                 const DriverOptions& options);

/// Multi-connection variant: the factory is called options.connections
/// times (e.g. one RticClient per connection); batch i goes to connection
/// i % connections, each connection pacing its own arrivals. Requires
/// server_timestamps (interleaved sends cannot carry the workload's
/// pre-assigned monotone timestamps).
using TargetFactory = std::function<Result<std::unique_ptr<DriveTarget>>()>;
Result<DriverReport> RunOpenLoop(const Workload& workload,
                                 const TargetFactory& factory,
                                 const DriverOptions& options);

}  // namespace workload
}  // namespace rtic

#endif  // RTIC_WORKLOAD_DRIVER_H_
