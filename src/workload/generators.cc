#include "workload/generators.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace rtic {
namespace workload {

namespace {

Schema IntSchema1(const std::string& a) {
  return Schema({Column{a, ValueType::kInt64}});
}

Schema IntSchema2(const std::string& a, const std::string& b) {
  return Schema({Column{a, ValueType::kInt64}, Column{b, ValueType::kInt64}});
}

Tuple T1(std::int64_t a) { return Tuple{Value::Int64(a)}; }
Tuple T2(std::int64_t a, std::int64_t b) {
  return Tuple{Value::Int64(a), Value::Int64(b)};
}

/// Tracks event-table rows inserted in the previous batch so the next batch
/// clears them (events are visible only in the state where they occur).
class EventClearer {
 public:
  void Emit(UpdateBatch* batch, const std::string& table, Tuple row) {
    batch->Insert(table, row);
    pending_.emplace_back(table, std::move(row));
  }

  void ClearInto(UpdateBatch* batch) {
    for (auto& [table, row] : pending_) {
      batch->Delete(table, std::move(row));
    }
    pending_.clear();
  }

 private:
  std::vector<std::pair<std::string, Tuple>> pending_;
};

}  // namespace

Workload MakeAlarmWorkload(const AlarmParams& params) {
  Workload w;
  w.schema["Raise"] = IntSchema1("alarm");
  w.schema["Ack"] = IntSchema1("alarm");
  w.schema["Active"] = IntSchema1("alarm");

  const std::string deadline = std::to_string(params.deadline);
  w.constraints = {
      // An alarm may stay active only while a Raise within the deadline
      // anchors it: Active continuously since a recent Raise.
      {"alarm_acked_within_deadline",
       "forall a: Active(a) implies Active(a) since[0, " + deadline +
           "] Raise(a)"},
      {"ack_has_recent_raise",
       "forall a: Ack(a) implies once[0, " +
           std::to_string(3 * params.deadline) + "] Raise(a)"},
      {"no_ack_without_raise",
       "forall a: Ack(a) implies once[0, inf] Raise(a)"},
      // The same deadline stated future-first (a response constraint with
      // delayed verdicts): every raise must be answered within the window.
      {"raise_gets_ack",
       "forall a: Raise(a) implies eventually[0, " +
           std::to_string(2 * params.deadline) + "] Ack(a)"},
  };

  Rng rng(params.seed);
  EventClearer events;
  Timestamp now = 0;
  std::map<std::int64_t, Timestamp> ack_due;  // active alarm -> ack time
  std::set<std::int64_t> active;

  for (std::size_t i = 0; i < params.length; ++i) {
    now += rng.UniformInt(1, std::max<Timestamp>(1, params.max_gap));
    UpdateBatch batch(now);
    events.ClearInto(&batch);

    // Acknowledge due alarms.
    std::vector<std::int64_t> due;
    for (const auto& [alarm, when] : ack_due) {
      if (when <= now) due.push_back(alarm);
    }
    for (std::int64_t alarm : due) {
      events.Emit(&batch, "Ack", T1(alarm));
      batch.Delete("Active", T1(alarm));
      active.erase(alarm);
      ack_due.erase(alarm);
    }

    // Possibly raise a new alarm.
    if (rng.Bernoulli(params.raise_prob) &&
        active.size() < static_cast<std::size_t>(params.num_alarms)) {
      std::int64_t alarm;
      do {
        alarm = rng.UniformInt(0, params.num_alarms - 1);
      } while (active.count(alarm) > 0);
      events.Emit(&batch, "Raise", T1(alarm));
      batch.Insert("Active", T1(alarm));
      active.insert(alarm);
      Timestamp delay =
          rng.Bernoulli(params.late_prob)
              ? rng.UniformInt(params.deadline + 1, 2 * params.deadline)
              : rng.UniformInt(1, std::max<Timestamp>(1, params.deadline - 1));
      ack_due[alarm] = now + delay;
    }

    w.batches.push_back(std::move(batch));
  }
  return w;
}

Workload MakePayrollWorkload(const PayrollParams& params) {
  Workload w;
  w.schema["Emp"] = IntSchema2("id", "salary");
  w.schema["Raise"] = IntSchema1("id");

  w.constraints = {
      {"no_pay_cut",
       "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies s >= s0"},
      {"raise_spacing",
       "forall e: Raise(e) implies not once[1, " +
           std::to_string(params.raise_window) + "] Raise(e)"},
  };

  Rng rng(params.seed);
  EventClearer events;
  Timestamp now = 0;
  std::map<std::int64_t, std::int64_t> salary;
  std::map<std::int64_t, Timestamp> last_raise;

  // Initial staffing happens in the first batch.
  for (std::size_t i = 0; i < params.length; ++i) {
    now += rng.UniformInt(1, std::max<Timestamp>(1, params.max_gap));
    UpdateBatch batch(now);
    events.ClearInto(&batch);

    if (i == 0) {
      for (int e = 0; e < params.num_employees; ++e) {
        std::int64_t s = 30000 + rng.UniformInt(0, 40000);
        salary[e] = s;
        batch.Insert("Emp", T2(e, s));
      }
    } else if (rng.Bernoulli(params.update_prob)) {
      std::int64_t e = rng.UniformInt(0, params.num_employees - 1);
      std::int64_t old = salary[e];
      bool cut = rng.Bernoulli(params.cut_prob);
      std::int64_t next =
          cut ? old - rng.UniformInt(1, 1000) : old + rng.UniformInt(1, 1000);
      batch.Delete("Emp", T2(e, old));
      batch.Insert("Emp", T2(e, next));
      salary[e] = next;
      if (!cut) {
        // Respect the raise window unless injecting an early-raise
        // violation.
        auto it = last_raise.find(e);
        bool too_soon =
            it != last_raise.end() && now - it->second <= params.raise_window;
        if (!too_soon || rng.Bernoulli(params.early_raise_prob)) {
          events.Emit(&batch, "Raise", T1(e));
          last_raise[e] = now;
        }
      }
    }
    w.batches.push_back(std::move(batch));
  }
  return w;
}

Workload MakeLibraryWorkload(const LibraryParams& params) {
  Workload w;
  w.schema["Member"] = IntSchema1("patron");
  w.schema["Loan"] = IntSchema2("patron", "book");
  w.schema["Out"] = IntSchema2("patron", "book");

  w.constraints = {
      {"members_only", "forall p, b: Loan(p, b) implies Member(p)"},
      {"no_quick_reloan",
       "forall p, b: Loan(p, b) implies not once[1, " +
           std::to_string(params.reloan_window) + "] Loan(p, b)"},
      {"return_deadline",
       "forall p, b: Out(p, b) implies Out(p, b) since[0, 30] Loan(p, b)"},
  };

  Rng rng(params.seed);
  EventClearer events;
  Timestamp now = 0;
  std::set<std::pair<std::int64_t, std::int64_t>> out;
  std::map<std::pair<std::int64_t, std::int64_t>, Timestamp> return_due;
  const int members = std::max(1, params.num_patrons / 2);

  for (std::size_t i = 0; i < params.length; ++i) {
    now += rng.UniformInt(1, std::max<Timestamp>(1, params.max_gap));
    UpdateBatch batch(now);
    events.ClearInto(&batch);

    if (i == 0) {
      // Patrons [0, members) are members; the rest are not.
      for (int p = 0; p < members; ++p) batch.Insert("Member", T1(p));
    }

    // Returns.
    std::vector<std::pair<std::int64_t, std::int64_t>> due;
    for (const auto& [key, when] : return_due) {
      if (when <= now) due.push_back(key);
    }
    for (const auto& key : due) {
      batch.Delete("Out", T2(key.first, key.second));
      out.erase(key);
      return_due.erase(key);
    }

    // A new loan.
    if (i > 0 && rng.Bernoulli(params.loan_prob)) {
      bool rogue = rng.Bernoulli(params.nonmember_prob);
      std::int64_t p = rogue
                           ? rng.UniformInt(members, params.num_patrons - 1)
                           : rng.UniformInt(0, members - 1);
      std::int64_t b = rng.UniformInt(0, params.num_books - 1);
      auto key = std::make_pair(p, b);
      if (out.count(key) == 0) {
        events.Emit(&batch, "Loan", T2(p, b));
        batch.Insert("Out", T2(p, b));
        out.insert(key);
        Timestamp delay = rng.Bernoulli(params.late_return_prob)
                              ? rng.UniformInt(31, 45)
                              : rng.UniformInt(1, 25);
        return_due[key] = now + delay;
      }
    }
    w.batches.push_back(std::move(batch));
  }
  return w;
}

Workload MakeFreshnessWorkload(const FreshnessParams& params) {
  Workload w;
  w.schema["Sensor"] = IntSchema1("sensor");
  w.schema["Publish"] = IntSchema1("sensor");
  w.schema["Serving"] = IntSchema1("sensor");
  w.schema["Decommissioned"] = IntSchema1("sensor");

  const std::string v = std::to_string(params.validity);
  w.constraints = {
      // A served reading must have been refreshed within the validity
      // interval: some Publish in the last `validity` time units.
      {"no_stale_reads",
       "forall s: Serving(s) implies once[0, " + v + "] Publish(s)"},
      // Only registered sensors may be served.
      {"serving_registered", "forall s: Serving(s) implies Sensor(s)"},
      // Retirement requires a full quiet interval: no Publish anywhere in
      // the last `validity` time units at (and after) decommission time.
      {"decommission_quiesced",
       "forall s: Decommissioned(s) implies historically[0, " + v +
           "] not Publish(s)"},
  };

  Rng rng(params.seed);
  EventClearer events;
  Timestamp now = 0;
  // The on-time refresh gap stays short of `validity` by `max_gap` so the
  // state-granularity overshoot (a refresh fires at the first state at or
  // past its due time) can never push a fresh sensor over the window.
  const Timestamp ontime_max =
      std::max<Timestamp>(1, params.validity - params.max_gap);
  struct Sensor {
    Timestamp last_pub = 0;
    Timestamp next_due = 0;
    bool draining = false;
    bool retired = false;
  };
  std::vector<Sensor> sensors(static_cast<std::size_t>(params.num_sensors));

  // Both delay candidates are always drawn so the RNG stream is identical
  // across dial settings; raising `stale_prob` only flips which candidate
  // is used, making the violation count monotone in the dial.
  auto schedule_refresh = [&](Sensor* s) {
    bool late = rng.UniformDouble() < params.stale_prob;
    Timestamp ontime = rng.UniformInt(1, ontime_max);
    Timestamp overdue =
        rng.UniformInt(params.validity + 1, 2 * params.validity);
    s->next_due = now + (late ? overdue : ontime);
  };

  for (std::size_t i = 0; i < params.length; ++i) {
    now += rng.UniformInt(1, std::max<Timestamp>(1, params.max_gap));
    UpdateBatch batch(now);
    events.ClearInto(&batch);

    if (i == 0) {
      for (int s = 0; s < params.num_sensors; ++s) {
        batch.Insert("Sensor", T1(s));
        batch.Insert("Serving", T1(s));
        events.Emit(&batch, "Publish", T1(s));
        sensors[s].last_pub = now;
        schedule_refresh(&sensors[s]);
      }
      w.batches.push_back(std::move(batch));
      continue;
    }

    for (int s = 0; s < params.num_sensors; ++s) {
      Sensor& sensor = sensors[s];
      if (sensor.retired) continue;
      if (sensor.draining) {
        // Quiesced: the last reading aged out of the validity window.
        if (now - sensor.last_pub > params.validity) {
          batch.Insert("Decommissioned", T1(s));
          sensor.retired = true;
        }
        continue;
      }
      if (sensor.next_due <= now) {
        events.Emit(&batch, "Publish", T1(s));
        sensor.last_pub = now;
        schedule_refresh(&sensor);
      }
    }

    // Possibly start draining one live sensor. An early decommission
    // retires it immediately, while its reading is still inside the
    // validity window — a guaranteed `decommission_quiesced` violation.
    if (rng.Bernoulli(params.decommission_prob)) {
      std::vector<int> live;
      for (int s = 0; s < params.num_sensors; ++s) {
        if (!sensors[s].draining && !sensors[s].retired) live.push_back(s);
      }
      bool early = rng.UniformDouble() < params.early_decommission_prob;
      if (!live.empty()) {
        int s = live[rng.Uniform(live.size())];
        batch.Delete("Serving", T1(s));
        sensors[s].draining = true;
        if (early) {
          batch.Insert("Decommissioned", T1(s));
          sensors[s].retired = true;
        }
      }
    }
    w.batches.push_back(std::move(batch));
  }
  return w;
}

Workload MakeCommitProtocolWorkload(const CommitParams& params) {
  Workload w;
  w.schema["Begin"] = IntSchema1("txn");
  w.schema["Vote"] = IntSchema2("txn", "part");
  w.schema["Decide"] = IntSchema1("txn");
  w.schema["Pending"] = IntSchema1("txn");
  w.schema["Part"] = IntSchema1("part");

  const std::string w1 = std::to_string(params.vote_window);
  const std::string w2 = std::to_string(params.decide_window);
  const std::string total =
      std::to_string(params.vote_window + params.decide_window);
  w.constraints = {
      // Every vote lands within w1 of its transaction's Begin.
      {"vote_in_window",
       "forall t, p: Vote(t, p) implies once[0, " + w1 + "] Begin(t)"},
      // The decision lands within w2 of the most recent vote: at decide
      // time, some vote is at most w2 old.
      {"decide_follows_last_vote",
       "forall t: Decide(t) implies once[0, " + w2 +
           "] (exists p: Vote(t, p))"},
      // Every participant voted before the decision, inside the end-to-end
      // window w1 + w2.
      {"decide_has_all_votes",
       "forall t, p: Decide(t) and Part(p) implies once[0, " + total +
           "] Vote(t, p)"},
      // A transaction may stay pending at most w1 + w2 after its Begin.
      {"pending_expires",
       "forall t: Pending(t) implies Pending(t) since[0, " + total +
           "] Begin(t)"},
      // The same end-to-end deadline stated future-first (response
      // constraint with delayed verdicts).
      {"begin_gets_decision",
       "forall t: Begin(t) implies eventually[0, " + total + "] Decide(t)"},
  };

  Rng rng(params.seed);
  EventClearer events;
  Timestamp now = 0;
  const Timestamp vote_ontime_max =
      std::max<Timestamp>(1, params.vote_window - params.max_gap);
  const Timestamp decide_ontime_max =
      std::max<Timestamp>(1, params.decide_window - params.max_gap);
  struct Txn {
    std::map<int, Timestamp> vote_due;  // participant -> due time
    Timestamp decide_due = -1;          // set once the last vote fires
  };
  std::map<std::int64_t, Txn> inflight;
  std::int64_t next_txn = 0;

  for (std::size_t i = 0; i < params.length; ++i) {
    now += rng.UniformInt(1, std::max<Timestamp>(1, params.max_gap));
    UpdateBatch batch(now);
    events.ClearInto(&batch);

    if (i == 0) {
      for (int p = 0; p < params.num_participants; ++p) {
        batch.Insert("Part", T1(p));
      }
    }

    // Advance in-flight transactions (in id order, for determinism).
    std::vector<std::int64_t> decided;
    for (auto& [txn, state] : inflight) {
      std::vector<int> voting;
      for (const auto& [p, due] : state.vote_due) {
        if (due <= now) voting.push_back(p);
      }
      for (int p : voting) {
        events.Emit(&batch, "Vote", T2(txn, p));
        state.vote_due.erase(p);
      }
      if (!voting.empty() && state.vote_due.empty()) {
        // Last vote just fired: schedule the decision relative to it. Both
        // candidates are drawn unconditionally (see schedule_refresh in the
        // freshness generator) so dials stay monotone.
        bool late = rng.UniformDouble() < params.late_decide_prob;
        Timestamp ontime = rng.UniformInt(1, decide_ontime_max);
        Timestamp overdue =
            rng.UniformInt(params.decide_window + 1, 2 * params.decide_window);
        state.decide_due = now + (late ? overdue : ontime);
      }
      if (state.decide_due >= 0 && state.decide_due <= now) {
        events.Emit(&batch, "Decide", T1(txn));
        batch.Delete("Pending", T1(txn));
        decided.push_back(txn);
      }
    }
    for (std::int64_t txn : decided) inflight.erase(txn);

    // Possibly open a new transaction.
    if (rng.Bernoulli(params.begin_prob)) {
      std::int64_t txn = next_txn++;
      events.Emit(&batch, "Begin", T1(txn));
      batch.Insert("Pending", T1(txn));
      Txn state;
      for (int p = 0; p < params.num_participants; ++p) {
        bool late = rng.UniformDouble() < params.late_vote_prob;
        Timestamp ontime = rng.UniformInt(1, vote_ontime_max);
        Timestamp overdue =
            rng.UniformInt(params.vote_window + 1, 2 * params.vote_window);
        state.vote_due[p] = now + (late ? overdue : ontime);
      }
      inflight[txn] = std::move(state);
    }
    w.batches.push_back(std::move(batch));
  }
  return w;
}

}  // namespace workload
}  // namespace rtic
