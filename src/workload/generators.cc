#include "workload/generators.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace rtic {
namespace workload {

namespace {

Schema IntSchema1(const std::string& a) {
  return Schema({Column{a, ValueType::kInt64}});
}

Schema IntSchema2(const std::string& a, const std::string& b) {
  return Schema({Column{a, ValueType::kInt64}, Column{b, ValueType::kInt64}});
}

Tuple T1(std::int64_t a) { return Tuple{Value::Int64(a)}; }
Tuple T2(std::int64_t a, std::int64_t b) {
  return Tuple{Value::Int64(a), Value::Int64(b)};
}

/// Tracks event-table rows inserted in the previous batch so the next batch
/// clears them (events are visible only in the state where they occur).
class EventClearer {
 public:
  void Emit(UpdateBatch* batch, const std::string& table, Tuple row) {
    batch->Insert(table, row);
    pending_.emplace_back(table, std::move(row));
  }

  void ClearInto(UpdateBatch* batch) {
    for (auto& [table, row] : pending_) {
      batch->Delete(table, std::move(row));
    }
    pending_.clear();
  }

 private:
  std::vector<std::pair<std::string, Tuple>> pending_;
};

}  // namespace

Workload MakeAlarmWorkload(const AlarmParams& params) {
  Workload w;
  w.schema["Raise"] = IntSchema1("alarm");
  w.schema["Ack"] = IntSchema1("alarm");
  w.schema["Active"] = IntSchema1("alarm");

  const std::string deadline = std::to_string(params.deadline);
  w.constraints = {
      // An alarm may stay active only while a Raise within the deadline
      // anchors it: Active continuously since a recent Raise.
      {"alarm_acked_within_deadline",
       "forall a: Active(a) implies Active(a) since[0, " + deadline +
           "] Raise(a)"},
      {"ack_has_recent_raise",
       "forall a: Ack(a) implies once[0, " +
           std::to_string(3 * params.deadline) + "] Raise(a)"},
      {"no_ack_without_raise",
       "forall a: Ack(a) implies once[0, inf] Raise(a)"},
      // The same deadline stated future-first (a response constraint with
      // delayed verdicts): every raise must be answered within the window.
      {"raise_gets_ack",
       "forall a: Raise(a) implies eventually[0, " +
           std::to_string(2 * params.deadline) + "] Ack(a)"},
  };

  Rng rng(params.seed);
  EventClearer events;
  Timestamp now = 0;
  std::map<std::int64_t, Timestamp> ack_due;  // active alarm -> ack time
  std::set<std::int64_t> active;

  for (std::size_t i = 0; i < params.length; ++i) {
    now += rng.UniformInt(1, std::max<Timestamp>(1, params.max_gap));
    UpdateBatch batch(now);
    events.ClearInto(&batch);

    // Acknowledge due alarms.
    std::vector<std::int64_t> due;
    for (const auto& [alarm, when] : ack_due) {
      if (when <= now) due.push_back(alarm);
    }
    for (std::int64_t alarm : due) {
      events.Emit(&batch, "Ack", T1(alarm));
      batch.Delete("Active", T1(alarm));
      active.erase(alarm);
      ack_due.erase(alarm);
    }

    // Possibly raise a new alarm.
    if (rng.Bernoulli(params.raise_prob) &&
        active.size() < static_cast<std::size_t>(params.num_alarms)) {
      std::int64_t alarm;
      do {
        alarm = rng.UniformInt(0, params.num_alarms - 1);
      } while (active.count(alarm) > 0);
      events.Emit(&batch, "Raise", T1(alarm));
      batch.Insert("Active", T1(alarm));
      active.insert(alarm);
      Timestamp delay =
          rng.Bernoulli(params.late_prob)
              ? rng.UniformInt(params.deadline + 1, 2 * params.deadline)
              : rng.UniformInt(1, std::max<Timestamp>(1, params.deadline - 1));
      ack_due[alarm] = now + delay;
    }

    w.batches.push_back(std::move(batch));
  }
  return w;
}

Workload MakePayrollWorkload(const PayrollParams& params) {
  Workload w;
  w.schema["Emp"] = IntSchema2("id", "salary");
  w.schema["Raise"] = IntSchema1("id");

  w.constraints = {
      {"no_pay_cut",
       "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies s >= s0"},
      {"raise_spacing",
       "forall e: Raise(e) implies not once[1, " +
           std::to_string(params.raise_window) + "] Raise(e)"},
  };

  Rng rng(params.seed);
  EventClearer events;
  Timestamp now = 0;
  std::map<std::int64_t, std::int64_t> salary;
  std::map<std::int64_t, Timestamp> last_raise;

  // Initial staffing happens in the first batch.
  for (std::size_t i = 0; i < params.length; ++i) {
    now += rng.UniformInt(1, std::max<Timestamp>(1, params.max_gap));
    UpdateBatch batch(now);
    events.ClearInto(&batch);

    if (i == 0) {
      for (int e = 0; e < params.num_employees; ++e) {
        std::int64_t s = 30000 + rng.UniformInt(0, 40000);
        salary[e] = s;
        batch.Insert("Emp", T2(e, s));
      }
    } else if (rng.Bernoulli(params.update_prob)) {
      std::int64_t e = rng.UniformInt(0, params.num_employees - 1);
      std::int64_t old = salary[e];
      bool cut = rng.Bernoulli(params.cut_prob);
      std::int64_t next =
          cut ? old - rng.UniformInt(1, 1000) : old + rng.UniformInt(1, 1000);
      batch.Delete("Emp", T2(e, old));
      batch.Insert("Emp", T2(e, next));
      salary[e] = next;
      if (!cut) {
        // Respect the raise window unless injecting an early-raise
        // violation.
        auto it = last_raise.find(e);
        bool too_soon =
            it != last_raise.end() && now - it->second <= params.raise_window;
        if (!too_soon || rng.Bernoulli(params.early_raise_prob)) {
          events.Emit(&batch, "Raise", T1(e));
          last_raise[e] = now;
        }
      }
    }
    w.batches.push_back(std::move(batch));
  }
  return w;
}

Workload MakeLibraryWorkload(const LibraryParams& params) {
  Workload w;
  w.schema["Member"] = IntSchema1("patron");
  w.schema["Loan"] = IntSchema2("patron", "book");
  w.schema["Out"] = IntSchema2("patron", "book");

  w.constraints = {
      {"members_only", "forall p, b: Loan(p, b) implies Member(p)"},
      {"no_quick_reloan",
       "forall p, b: Loan(p, b) implies not once[1, " +
           std::to_string(params.reloan_window) + "] Loan(p, b)"},
      {"return_deadline",
       "forall p, b: Out(p, b) implies Out(p, b) since[0, 30] Loan(p, b)"},
  };

  Rng rng(params.seed);
  EventClearer events;
  Timestamp now = 0;
  std::set<std::pair<std::int64_t, std::int64_t>> out;
  std::map<std::pair<std::int64_t, std::int64_t>, Timestamp> return_due;
  const int members = std::max(1, params.num_patrons / 2);

  for (std::size_t i = 0; i < params.length; ++i) {
    now += rng.UniformInt(1, std::max<Timestamp>(1, params.max_gap));
    UpdateBatch batch(now);
    events.ClearInto(&batch);

    if (i == 0) {
      // Patrons [0, members) are members; the rest are not.
      for (int p = 0; p < members; ++p) batch.Insert("Member", T1(p));
    }

    // Returns.
    std::vector<std::pair<std::int64_t, std::int64_t>> due;
    for (const auto& [key, when] : return_due) {
      if (when <= now) due.push_back(key);
    }
    for (const auto& key : due) {
      batch.Delete("Out", T2(key.first, key.second));
      out.erase(key);
      return_due.erase(key);
    }

    // A new loan.
    if (i > 0 && rng.Bernoulli(params.loan_prob)) {
      bool rogue = rng.Bernoulli(params.nonmember_prob);
      std::int64_t p = rogue
                           ? rng.UniformInt(members, params.num_patrons - 1)
                           : rng.UniformInt(0, members - 1);
      std::int64_t b = rng.UniformInt(0, params.num_books - 1);
      auto key = std::make_pair(p, b);
      if (out.count(key) == 0) {
        events.Emit(&batch, "Loan", T2(p, b));
        batch.Insert("Out", T2(p, b));
        out.insert(key);
        Timestamp delay = rng.Bernoulli(params.late_return_prob)
                              ? rng.UniformInt(31, 45)
                              : rng.UniformInt(1, 25);
        return_due[key] = now + delay;
      }
    }
    w.batches.push_back(std::move(batch));
  }
  return w;
}

}  // namespace workload
}  // namespace rtic
