#include "workload/scenarios.h"

#include <cstdint>
#include <functional>
#include <utility>

namespace rtic {
namespace workload {

namespace {

struct Family {
  ScenarioInfo info;
  std::function<Workload(const std::map<std::string, double>&)> build;
};

double Get(const std::map<std::string, double>& dials, const char* key) {
  return dials.at(key);
}

std::int64_t GetInt(const std::map<std::string, double>& dials,
                    const char* key) {
  return static_cast<std::int64_t>(dials.at(key));
}

// Dial defaults are read off default-constructed param structs so the
// registry can never drift from the generator headers.
Family AlarmFamily() {
  AlarmParams d;
  Family f;
  f.info.name = "alarm";
  f.info.summary =
      "alarm/ack fleet: raised alarms must be acknowledged within a "
      "deadline";
  f.info.dials = {
      {"num_alarms", static_cast<double>(d.num_alarms), "alarm id space"},
      {"length", static_cast<double>(d.length), "number of transitions"},
      {"deadline", static_cast<double>(d.deadline),
       "ack deadline (constraint window)"},
      {"raise_prob", d.raise_prob, "chance a new alarm is raised per state"},
      {"late_prob", d.late_prob, "chance an ack overruns the deadline", true},
      {"max_gap", static_cast<double>(d.max_gap),
       "clock gap per transition in [1, max_gap]"},
      {"seed", static_cast<double>(d.seed), "PRNG seed"},
  };
  f.build = [](const std::map<std::string, double>& v) {
    AlarmParams p;
    p.num_alarms = static_cast<int>(GetInt(v, "num_alarms"));
    p.length = static_cast<std::size_t>(GetInt(v, "length"));
    p.deadline = GetInt(v, "deadline");
    p.raise_prob = Get(v, "raise_prob");
    p.late_prob = Get(v, "late_prob");
    p.max_gap = GetInt(v, "max_gap");
    p.seed = static_cast<std::uint64_t>(GetInt(v, "seed"));
    return MakeAlarmWorkload(p);
  };
  return f;
}

Family PayrollFamily() {
  PayrollParams d;
  Family f;
  f.info.name = "payroll";
  f.info.summary =
      "salary ledger: pay never decreases, raises keep a minimum spacing";
  f.info.dials = {
      {"num_employees", static_cast<double>(d.num_employees),
       "employee id space"},
      {"length", static_cast<double>(d.length), "number of transitions"},
      {"update_prob", d.update_prob, "chance a salary changes per state"},
      {"cut_prob", d.cut_prob, "chance a change is a pay cut", true},
      {"early_raise_prob", d.early_raise_prob,
       "chance a raise ignores the spacing window", true},
      {"raise_window", static_cast<double>(d.raise_window),
       "minimum spacing between raises"},
      {"max_gap", static_cast<double>(d.max_gap),
       "clock gap per transition in [1, max_gap]"},
      {"seed", static_cast<double>(d.seed), "PRNG seed"},
  };
  f.build = [](const std::map<std::string, double>& v) {
    PayrollParams p;
    p.num_employees = static_cast<int>(GetInt(v, "num_employees"));
    p.length = static_cast<std::size_t>(GetInt(v, "length"));
    p.update_prob = Get(v, "update_prob");
    p.cut_prob = Get(v, "cut_prob");
    p.early_raise_prob = Get(v, "early_raise_prob");
    p.raise_window = GetInt(v, "raise_window");
    p.max_gap = GetInt(v, "max_gap");
    p.seed = static_cast<std::uint64_t>(GetInt(v, "seed"));
    return MakePayrollWorkload(p);
  };
  return f;
}

Family LibraryFamily() {
  LibraryParams d;
  Family f;
  f.info.name = "library";
  f.info.summary =
      "circulation ledger: members-only loans, return deadlines, reloan "
      "spacing";
  f.info.dials = {
      {"num_patrons", static_cast<double>(d.num_patrons), "patron id space"},
      {"num_books", static_cast<double>(d.num_books), "book id space"},
      {"length", static_cast<double>(d.length), "number of transitions"},
      {"loan_prob", d.loan_prob, "chance of a loan per state"},
      {"nonmember_prob", d.nonmember_prob,
       "chance a loan goes to a non-member", true},
      {"late_return_prob", d.late_return_prob,
       "chance a return misses the 30-unit deadline", true},
      {"reloan_window", static_cast<double>(d.reloan_window),
       "minimum spacing before the same pair re-borrows"},
      {"max_gap", static_cast<double>(d.max_gap),
       "clock gap per transition in [1, max_gap]"},
      {"seed", static_cast<double>(d.seed), "PRNG seed"},
  };
  f.build = [](const std::map<std::string, double>& v) {
    LibraryParams p;
    p.num_patrons = static_cast<int>(GetInt(v, "num_patrons"));
    p.num_books = static_cast<int>(GetInt(v, "num_books"));
    p.length = static_cast<std::size_t>(GetInt(v, "length"));
    p.loan_prob = Get(v, "loan_prob");
    p.nonmember_prob = Get(v, "nonmember_prob");
    p.late_return_prob = Get(v, "late_return_prob");
    p.reloan_window = GetInt(v, "reloan_window");
    p.max_gap = GetInt(v, "max_gap");
    p.seed = static_cast<std::uint64_t>(GetInt(v, "seed"));
    return MakeLibraryWorkload(p);
  };
  return f;
}

Family FreshnessFamily() {
  FreshnessParams d;
  Family f;
  f.info.name = "freshness";
  f.info.summary =
      "sensor farm: served readings expire unless refreshed within a "
      "validity interval";
  f.info.dials = {
      {"num_sensors", static_cast<double>(d.num_sensors), "sensor id space"},
      {"length", static_cast<double>(d.length), "number of transitions"},
      {"validity", static_cast<double>(d.validity),
       "a published reading is valid this long"},
      {"stale_prob", d.stale_prob,
       "chance a refresh arrives past the validity window", true},
      {"decommission_prob", d.decommission_prob,
       "chance per state a sensor starts draining"},
      {"early_decommission_prob", d.early_decommission_prob,
       "chance a draining sensor retires while still fresh", true},
      {"max_gap", static_cast<double>(d.max_gap),
       "clock gap per transition in [1, max_gap]"},
      {"seed", static_cast<double>(d.seed), "PRNG seed"},
  };
  f.build = [](const std::map<std::string, double>& v) {
    FreshnessParams p;
    p.num_sensors = static_cast<int>(GetInt(v, "num_sensors"));
    p.length = static_cast<std::size_t>(GetInt(v, "length"));
    p.validity = GetInt(v, "validity");
    p.stale_prob = Get(v, "stale_prob");
    p.decommission_prob = Get(v, "decommission_prob");
    p.early_decommission_prob = Get(v, "early_decommission_prob");
    p.max_gap = GetInt(v, "max_gap");
    p.seed = static_cast<std::uint64_t>(GetInt(v, "seed"));
    return MakeFreshnessWorkload(p);
  };
  return f;
}

Family CommitFamily() {
  CommitParams d;
  Family f;
  f.info.name = "commit";
  f.info.summary =
      "commit protocol: participants vote within w1, the coordinator "
      "decides within w2 of the last vote";
  f.info.dials = {
      {"num_participants", static_cast<double>(d.num_participants),
       "participants per transaction"},
      {"length", static_cast<double>(d.length), "number of transitions"},
      {"begin_prob", d.begin_prob,
       "chance a new transaction begins per state"},
      {"vote_window", static_cast<double>(d.vote_window),
       "w1: Begin -> every Vote"},
      {"decide_window", static_cast<double>(d.decide_window),
       "w2: last Vote -> Decide"},
      {"late_vote_prob", d.late_vote_prob, "chance a vote misses w1", true},
      {"late_decide_prob", d.late_decide_prob,
       "chance the decision misses w2", true},
      {"max_gap", static_cast<double>(d.max_gap),
       "clock gap per transition in [1, max_gap]"},
      {"seed", static_cast<double>(d.seed), "PRNG seed"},
  };
  f.build = [](const std::map<std::string, double>& v) {
    CommitParams p;
    p.num_participants = static_cast<int>(GetInt(v, "num_participants"));
    p.length = static_cast<std::size_t>(GetInt(v, "length"));
    p.begin_prob = Get(v, "begin_prob");
    p.vote_window = GetInt(v, "vote_window");
    p.decide_window = GetInt(v, "decide_window");
    p.late_vote_prob = Get(v, "late_vote_prob");
    p.late_decide_prob = Get(v, "late_decide_prob");
    p.max_gap = GetInt(v, "max_gap");
    p.seed = static_cast<std::uint64_t>(GetInt(v, "seed"));
    return MakeCommitProtocolWorkload(p);
  };
  return f;
}

const std::vector<Family>& Families() {
  static const std::vector<Family>* families = new std::vector<Family>{
      AlarmFamily(), PayrollFamily(), LibraryFamily(), FreshnessFamily(),
      CommitFamily()};
  return *families;
}

}  // namespace

const std::vector<ScenarioInfo>& AllScenarios() {
  static const std::vector<ScenarioInfo>* infos = [] {
    auto* v = new std::vector<ScenarioInfo>();
    for (const Family& f : Families()) v->push_back(f.info);
    return v;
  }();
  return *infos;
}

const ScenarioInfo* FindScenario(const std::string& name) {
  for (const ScenarioInfo& info : AllScenarios()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

Result<Workload> MakeScenario(const std::string& name,
                              const std::map<std::string, double>& overrides) {
  for (const Family& f : Families()) {
    if (f.info.name != name) continue;
    std::map<std::string, double> dials;
    for (const Dial& d : f.info.dials) dials[d.name] = d.value;
    for (const auto& [key, value] : overrides) {
      auto it = dials.find(key);
      if (it == dials.end()) {
        return Status::InvalidArgument("scenario '" + name +
                                       "' has no dial named '" + key + "'");
      }
      it->second = value;
    }
    return f.build(dials);
  }
  std::string known;
  for (const ScenarioInfo& info : AllScenarios()) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  return Status::InvalidArgument("unknown scenario '" + name +
                                 "' (known: " + known + ")");
}

}  // namespace workload
}  // namespace rtic
