#include "monitor/audit.h"

#include <memory>

#include "engines/checker_engine.h"
#include "engines/naive/naive_engine.h"
#include "engines/response/response_engine.h"
#include "tl/analyzer.h"
#include "tl/parser.h"

namespace rtic {

std::string AuditReport::ToString() const {
  if (violating_times.empty()) {
    return constraint_name + ": no violations in " +
           std::to_string(verdicts.size()) + " states";
  }
  std::string out = constraint_name + ": " +
                    std::to_string(violating_times.size()) +
                    " violating states at t=";
  for (std::size_t i = 0; i < violating_times.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(violating_times[i]);
  }
  return out;
}

Result<std::vector<AuditReport>> AuditHistory(
    const DeltaLog& log,
    const std::vector<std::pair<std::string, std::string>>& constraints) {
  tl::PredicateCatalog catalog;
  for (const std::string& table : log.initial().TableNames()) {
    catalog[table] = log.initial().GetTable(table).value()->schema();
  }

  std::vector<AuditReport> reports;
  std::vector<std::unique_ptr<CheckerEngine>> engines;
  for (const auto& [name, text] : constraints) {
    RTIC_ASSIGN_OR_RETURN(tl::FormulaPtr formula, tl::ParseFormula(text));
    std::unique_ptr<CheckerEngine> engine;
    if (ResponseEngine::LooksLikeResponseConstraint(*formula)) {
      RTIC_ASSIGN_OR_RETURN(engine,
                            ResponseEngine::Create(*formula, catalog));
    } else {
      RTIC_ASSIGN_OR_RETURN(engine, NaiveEngine::Create(*formula, catalog));
    }
    engines.push_back(std::move(engine));
    AuditReport report;
    report.constraint_name = name;
    reports.push_back(std::move(report));
  }

  Database db = log.initial();
  for (std::size_t i = 0; i < log.size(); ++i) {
    const UpdateBatch& batch = log.BatchAt(i);
    RTIC_RETURN_IF_ERROR(batch.Apply(&db));
    for (std::size_t c = 0; c < engines.size(); ++c) {
      RTIC_ASSIGN_OR_RETURN(bool holds,
                            engines[c]->OnTransition(db, batch.timestamp()));
      reports[c].verdicts.push_back(holds);
      if (!holds) {
        reports[c].violating_times.push_back(batch.timestamp());
      }
    }
  }
  return reports;
}

}  // namespace rtic
