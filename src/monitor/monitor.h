// ConstraintMonitor: the library's public entry point.
//
//   ConstraintMonitor monitor;                        // incremental engine
//   monitor.CreateTable("Emp", schema);
//   monitor.RegisterConstraint("no_pay_cut",
//       "forall e, s, s0: Emp(e, s) and previous Emp(e, s0) implies "
//       "s >= s0");
//   UpdateBatch batch(/*timestamp=*/17);
//   batch.Insert("Emp", {Value::Int64(1), Value::Int64(50000)});
//   auto violations = monitor.ApplyUpdate(batch);     // [] or reports
//
// Each ApplyUpdate commits one history state (timestamps strictly
// increasing) and checks every registered constraint at that state,
// returning violation reports with counterexample witnesses.

#ifndef RTIC_MONITOR_MONITOR_H_
#define RTIC_MONITOR_MONITOR_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engines/checker_engine.h"
#include "engines/incremental/pruning.h"
#include "monitor/monitor_iface.h"
#include "storage/update_batch.h"
#include "tl/analyzer.h"
#include "tl/ast.h"
#include "wal/recovery.h"

namespace rtic {

namespace replication {
class SegmentShipper;
class Transport;
}  // namespace replication

namespace inc {
class SubplanRegistry;
}  // namespace inc

/// Which checking strategy newly registered constraints use.
enum class EngineKind {
  kIncremental,  // bounded history encoding (default; the paper's method)
  kNaive,        // full-history re-evaluation (baseline)
  kActive,       // ECA trigger programs on the active-DBMS substrate
};

/// Stable engine-kind name ("incremental", "naive", "active").
const char* EngineKindToString(EngineKind kind);

/// Monitor-wide configuration.
struct MonitorOptions {
  EngineKind engine = EngineKind::kIncremental;

  /// Pruning policy for incremental/active engines.
  PruningPolicy pruning = PruningPolicy::kFull;

  /// Extra constants always part of the active domain (useful when a
  /// constraint must quantify over values not yet stored anywhere).
  std::vector<Value> domain_constants;

  /// Share temporal-subplan state across incremental engines whose
  /// subformulas canonicalize to identical text (and whose histories
  /// coincide — same registration epoch). Each shared equivalence class is
  /// evaluated once per transition; verdicts and checkpoints are
  /// byte-identical to the unshared path (see inc::SubplanRegistry).
  bool shared_subplans = true;

  /// Maximum counterexample rows reported per violation.
  std::size_t max_witnesses = 10;

  /// Threads used to check constraints per transition. 1 (the default)
  /// keeps the serial path: constraints are checked one after another on
  /// the calling thread. Values > 1 fan the registered constraints out
  /// across a fixed-size pool; each checker engine is still driven by
  /// exactly one thread per transition, the database snapshot is shared
  /// read-only, and violation reports are merged back in registration
  /// order, so results are identical to the serial path.
  std::size_t num_threads = 1;

  /// Durability. Empty (the default) keeps the purely in-memory monitor —
  /// no WAL, no checkpoint files, behavior byte-identical to before the
  /// durability subsystem existed. Non-empty names a directory for WAL
  /// segments and checkpoints; the monitor then requires one Recover()
  /// call (after tables and constraints are registered, before the first
  /// update) and logs every accepted batch before applying it.
  std::string wal_dir;

  /// When an accepted batch becomes durable (durable mode only).
  wal::SyncPolicy sync_policy = wal::SyncPolicy::kBatch;

  /// Group-commit gathering window in microseconds (durable mode only).
  /// 0 (the default) keeps today's per-append behavior. Non-zero makes
  /// sync_policy = kAlways amortize fsyncs: all batches appended within
  /// the window — or queued while a prior fsync is in flight — become
  /// durable through one shared fsync, and each ApplyUpdate still returns
  /// only once its own batch is durable. Worth roughly the storage
  /// device's fsync latency; it only pays off when several threads commit
  /// concurrently (each committer waits out the window, so a single
  /// serial writer sees added latency and no fewer fsyncs).
  std::uint64_t group_commit_window_micros = 0;

  /// Accepted batches between automatic checkpoints; 0 disables periodic
  /// checkpointing, leaving recovery to replay the whole log.
  std::size_t checkpoint_interval = 64;

  /// Maximum delta checkpoints chained onto one full snapshot before a new
  /// full snapshot is forced (durable mode only). With deltas enabled a
  /// periodic checkpoint serializes only what changed since the previous
  /// one — cost proportional to churn, not state size. 0 makes every
  /// checkpoint a full snapshot (the pre-delta behavior). Larger values
  /// amortize snapshots over more churn at the price of recovery
  /// installing a longer base+delta chain and the WAL being retained back
  /// to the base.
  std::size_t checkpoint_delta_chain = 8;

  /// Compress checkpoint payloads (durable mode only) with the built-in
  /// dictionary+RLE codec (see common/compress.h). Recovery auto-detects,
  /// so compressed and uncompressed checkpoints interoperate freely —
  /// flipping this option never invalidates existing files.
  bool checkpoint_compression = false;

  /// WAL segment rotation threshold in bytes.
  std::size_t wal_segment_bytes = 4u << 20;

  /// File system used by the durability subsystem; nullptr means the real
  /// one. Tests substitute a wal::FaultInjectingFs to crash on demand.
  wal::Fs* wal_fs = nullptr;

  /// Log-shipping replication (durable mode only). Empty (the default)
  /// disables it. A "host:port" address makes Recover() connect to a
  /// listening StandbyMonitor (see replication/standby.h) and start a
  /// background thread that ships sealed WAL segments and checkpoint
  /// files every ship_interval_micros. Connection failure fails
  /// Recover(); a connection lost later is logged and shipping stops (the
  /// persisted ship watermark keeps unacknowledged segments until a new
  /// session catches the standby up — see docs/OPERATIONS.md).
  std::string replication_standby;

  /// Pause between shipping passes of the background shipper thread.
  std::uint64_t ship_interval_micros = 50000;
};

// ConstraintStats and Violation moved to monitor/monitor_iface.h (the
// MonitorLike vocabulary); this header re-exports them via its include.

/// Cumulative checkpoint-write statistics (durable mode; the cost measure
/// of experiment E13). Bytes are the sizes actually written to disk, after
/// compression when enabled.
struct CheckpointStats {
  std::size_t bases = 0;          // full snapshots written
  std::size_t deltas = 0;         // delta checkpoints written
  std::size_t failures = 0;       // failed attempts (retried next interval)
  std::uint64_t base_bytes = 0;   // bytes across all full snapshots
  std::uint64_t delta_bytes = 0;  // bytes across all deltas
  std::int64_t total_micros = 0;  // cumulative build+write wall time
  std::int64_t max_micros = 0;    // worst single checkpoint pause
  std::int64_t last_micros = 0;   // most recent checkpoint pause
};

/// The monitor: owns the evolving database and one checker per constraint.
class ConstraintMonitor : public MonitorLike {
 public:
  explicit ConstraintMonitor(MonitorOptions options = {});
  ~ConstraintMonitor() override;

  ConstraintMonitor(const ConstraintMonitor&) = delete;
  ConstraintMonitor& operator=(const ConstraintMonitor&) = delete;

  /// Creates a monitored table.
  Status CreateTable(const std::string& name, Schema schema) override;

  /// Parses, analyzes, and compiles a constraint. Constraints registered
  /// after updates have been applied see only subsequent history (their
  /// temporal operators start from an empty past).
  Status RegisterConstraint(const std::string& name,
                            const std::string& text) override;

  /// Same, from an already-built formula.
  Status RegisterConstraintFormula(const std::string& name,
                                   const tl::Formula& formula);

  /// Registers a constraint backed by a caller-supplied checker engine
  /// instead of a compiled built-in one. The engine must honor the
  /// CheckerEngine contract; the constraint participates in stats,
  /// checkpoints, and violation reports like any other. This is the entry
  /// point for custom checking strategies and for tests that inject
  /// failing engines.
  Status RegisterConstraintEngine(const std::string& name,
                                  std::unique_ptr<CheckerEngine> engine);

  /// Stops checking a constraint and discards its auxiliary state.
  Status UnregisterConstraint(const std::string& name);

  /// Durable mode (wal_dir set) only: restores the newest checkpoint,
  /// replays the WAL tail through the normal ApplyUpdate path (torn or
  /// corrupt tails are truncated, logged, and never fatal), and arms the
  /// log for subsequent updates. Must be called exactly once, after every
  /// CreateTable/RegisterConstraint and before the first update. Requires
  /// a checkpointable engine configuration (see SaveState()).
  Result<wal::RecoveryStats> Recover() override;

  /// Commits one transition: applies the batch (timestamp must exceed the
  /// previous one), checks every constraint, returns the violations. In
  /// durable mode the batch is validated and appended to the WAL first; a
  /// logging failure means the batch was not applied (and, conversely, a
  /// reported failure may still leave the batch durable — after recovery
  /// the transition count is either side of such a failure).
  Result<std::vector<Violation>> ApplyUpdate(const UpdateBatch& batch) override;

  /// Pure clock tick: a transition that changes no tuples. Real-time
  /// constraints can newly fail as deadlines expire even without updates.
  Result<std::vector<Violation>> Tick(Timestamp t) override;

  /// The current database state.
  const Database& database() const { return db_; }

  /// Timestamp of the last committed transition (0 before the first).
  Timestamp current_time() const override { return current_time_; }

  /// Number of transitions committed.
  std::size_t transition_count() const override { return transition_count_; }

  /// Registered constraint names, in registration order.
  std::vector<std::string> ConstraintNames() const override;

  /// Analyzer warnings produced when `name` was registered.
  Result<std::vector<std::string>> WarningsFor(const std::string& name) const;

  /// Total auxiliary/history rows retained across all constraint checkers
  /// (the space metric of experiment E2).
  std::size_t TotalStorageRows() const override;

  /// Violations accumulated since construction (all constraints).
  std::size_t total_violations() const override { return total_violations_; }

  /// Per-constraint checking statistics, in registration order.
  std::vector<ConstraintStats> Stats() const override;

  /// Serializes the whole monitor — current database, clock, and every
  /// constraint checker's state — to a portable checkpoint. Requires every
  /// registered constraint to use a checkpointable engine (incremental or
  /// response); fails with Unimplemented otherwise.
  Result<std::string> SaveState() const;

  /// Restores a SaveState() checkpoint into a monitor with the SAME tables
  /// and constraints registered (names and schemas are validated).
  /// Replaces the database, all checker state, and the per-constraint
  /// transition/violation counters (so Stats() stays consistent with
  /// total_violations() across recovery); per-constraint timing statistics
  /// restart from zero. Accepts the current RTICMON3 format, legacy
  /// RTICMON2 checkpoints (recorded before delta checkpoints existed), and
  /// compressed frames of either; checkpoints from before RTICMON2 are
  /// rejected with InvalidArgument.
  Status LoadState(const std::string& data);

  /// Arms delta-checkpoint tracking: table-level change sets in the
  /// monitor plus per-engine dirty tracking. Recover() arms this
  /// automatically when checkpoint_delta_chain > 0; call it directly only
  /// to use SaveStateDelta()/LoadStateDelta() without a WAL. Idempotent.
  void BeginDeltaTracking();

  /// Serializes only what changed since the last checkpoint baseline
  /// (the last SaveStateDelta/LoadState/LoadStateDelta that reset
  /// tracking): table-level row deltas plus per-engine delta or full
  /// blobs. Requires BeginDeltaTracking(). Unlike the const SaveState(),
  /// a successful call makes the current state the new baseline.
  Result<std::string> SaveStateDelta();

  /// Applies a SaveStateDelta() blob on top of monitor state equal to the
  /// parent checkpoint's (validated via the transition count). Used by
  /// recovery to install base+delta chains.
  Status LoadStateDelta(const std::string& data);

  /// Checkpoint-write statistics (durable mode; zeros otherwise).
  const CheckpointStats& checkpoint_stats() const { return checkpoint_stats_; }

  /// The configuration this monitor runs with.
  const MonitorOptions& options() const { return options_; }

 private:
  struct Registered;
  struct CheckOutcome;

  /// Rows added to / removed from one table since the checkpoint baseline.
  /// Ordered sets so delta payloads are byte-deterministic.
  struct TableDelta {
    std::set<Tuple> removed;
    std::set<Tuple> added;
  };

  /// Folds one about-to-be-applied batch into the table delta trackers.
  /// Must run against the pre-Apply database: Apply()'s no-op semantics
  /// (deleting an absent row, inserting a present one) mean the effective
  /// change depends on what is currently stored.
  void TrackBatchDelta(const UpdateBatch& batch);

  /// Declares the current state the checkpoint baseline: clears table
  /// deltas, records the parent transition count, and marks every engine's
  /// state saved.
  void ResetCheckpointTracking();

  /// Builds and durably writes one periodic checkpoint (full or delta per
  /// the recovery manager's plan, compressed per options), updating
  /// checkpoint_stats_.
  Status WritePeriodicCheckpoint();

  /// Runs constraint `i`'s check against the just-committed state, filling
  /// `out`. Safe to call concurrently for distinct `i`: it touches only
  /// constraint i's engine plus const monitor state (db_, options_).
  void CheckConstraint(std::size_t i, CheckOutcome* out) const;

  MonitorOptions options_;
  Database db_;
  Timestamp current_time_ = 0;
  std::size_t transition_count_ = 0;
  std::size_t total_violations_ = 0;
  std::vector<std::unique_ptr<Registered>> constraints_;
  // Cross-constraint subplan sharing (non-null iff options_.shared_subplans
  // and the engine kind is incremental).
  std::shared_ptr<inc::SubplanRegistry> subplan_registry_;
  std::unique_ptr<ThreadPool> pool_;  // non-null iff num_threads > 1
  std::unique_ptr<wal::RecoveryManager> recovery_;  // non-null once durable
  bool recovering_ = false;  // Recover() is replaying through ApplyUpdate

  // Log-shipping replication (armed by Recover() when replication_standby
  // is set; see StartShipping/StopShipping in monitor.cc).
  std::unique_ptr<replication::Transport> ship_transport_;
  std::unique_ptr<replication::SegmentShipper> shipper_;
  std::thread ship_thread_;
  std::mutex ship_mu_;
  std::condition_variable ship_cv_;
  bool ship_stop_ = false;  // guarded by ship_mu_

  Status StartShipping();
  void StopShipping();

  // Delta-checkpoint tracking (armed by BeginDeltaTracking()).
  bool delta_tracking_ = false;
  bool force_base_checkpoint_ = false;  // a failed attempt burned the baseline
  std::map<std::string, TableDelta> table_deltas_;
  std::size_t checkpoint_parent_transitions_ = 0;
  CheckpointStats checkpoint_stats_;
};

}  // namespace rtic

#endif  // RTIC_MONITOR_MONITOR_H_
