// Offline auditing: retrospective constraint checking over a *recorded*
// history (a DeltaLog). Where the ConstraintMonitor answers "is the
// constraint violated NOW" as updates stream in, AuditHistory answers
// "at which past states was it violated" for forensics over a log —
// using the naive full-history engine as the executable semantics
// (response constraints route to the obligation engine).

#ifndef RTIC_MONITOR_AUDIT_H_
#define RTIC_MONITOR_AUDIT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "history/history.h"

namespace rtic {

/// Outcome of auditing one constraint across a history.
struct AuditReport {
  std::string constraint_name;

  /// Verdict per history state (index-aligned with the log's transitions).
  std::vector<bool> verdicts;

  /// Timestamps of the violating states, ascending.
  std::vector<Timestamp> violating_times;

  /// "name: 3 violations at t=..." / "name: no violations".
  std::string ToString() const;
};

/// Replays `log` from its initial database and evaluates every constraint
/// (name, source text) at every state. Schemas come from the log's initial
/// database.
Result<std::vector<AuditReport>> AuditHistory(
    const DeltaLog& log,
    const std::vector<std::pair<std::string, std::string>>& constraints);

}  // namespace rtic

#endif  // RTIC_MONITOR_AUDIT_H_
