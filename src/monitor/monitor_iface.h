// MonitorLike: the abstract surface a constraint monitor presents to
// callers that do not care how checking is organized behind it — the RTIC
// server drives tenants through this interface, so a tenant can be one
// ConstraintMonitor (a single sequential WAL) or a ShardedMonitor (N
// partitioned monitors behind a router and a cross-shard coordinator,
// see src/shard) without the front-end knowing.
//
// The Violation and ConstraintStats value types live here too: they are
// the interface's vocabulary, produced identically by every
// implementation (the sharded monitor's merge is byte-identical to the
// single monitor's output — see tests/sharded_monitor_test.cc).

#ifndef RTIC_MONITOR_MONITOR_IFACE_H_
#define RTIC_MONITOR_MONITOR_IFACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/update_batch.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "wal/recovery.h"

namespace rtic {

/// Cumulative checking statistics for one registered constraint.
struct ConstraintStats {
  std::string name;
  std::size_t transitions = 0;      // states this checker has processed
  std::size_t violations = 0;       // states at which it was violated
  std::int64_t total_check_micros = 0;  // cumulative OnTransition wall time
  std::int64_t max_check_micros = 0;    // worst single check
  std::int64_t last_check_micros = 0;   // most recent check's wall time
  std::size_t storage_rows = 0;     // aux/history rows currently retained
  std::size_t shared_subplans = 0;  // subplan handles coalesced with earlier
                                    // constraints (incremental engines with
                                    // sharing enabled; 0 otherwise)
  std::size_t aux_valuations = 0;   // distinct valuations in temporal aux
                                    // tables (0 for engines without them)
  std::size_t aux_anchors = 0;      // anchor timestamps retained in temporal
                                    // aux tables (bounded-history measure)

  /// Mean per-state check time in microseconds (0 before any state).
  double MeanCheckMicros() const {
    return transitions == 0
               ? 0.0
               : static_cast<double>(total_check_micros) /
                     static_cast<double>(transitions);
  }

  /// One-line report.
  std::string ToString() const;
};

/// One constraint violation at one history state.
struct Violation {
  std::string constraint_name;
  Timestamp timestamp = 0;

  /// Names of the violated constraint's outermost forall variables (empty
  /// when the constraint is not of `forall ...:` shape).
  std::vector<std::string> witness_columns;

  /// Up to MonitorOptions::max_witnesses counterexample valuations.
  std::vector<Tuple> witnesses;

  /// Human-readable one-line report.
  std::string ToString() const;
};

/// Abstract monitor: tables, constraints, transitions, verdicts. Every
/// method matches ConstraintMonitor's semantics (see monitor.h for the
/// authoritative contracts); implementations must return identical
/// verdicts for identical histories.
class MonitorLike {
 public:
  virtual ~MonitorLike() = default;

  /// Creates a monitored table (before the first update only).
  virtual Status CreateTable(const std::string& name, Schema schema) = 0;

  /// Parses, analyzes, and compiles a constraint.
  virtual Status RegisterConstraint(const std::string& name,
                                    const std::string& text) = 0;

  /// Durable mode only: restore + replay; must run after registration and
  /// before the first update.
  virtual Result<wal::RecoveryStats> Recover() = 0;

  /// Commits one transition and returns the violations at the new state.
  virtual Result<std::vector<Violation>> ApplyUpdate(
      const UpdateBatch& batch) = 0;

  /// Pure clock tick (a transition that changes no tuples).
  virtual Result<std::vector<Violation>> Tick(Timestamp t) = 0;

  /// Timestamp of the last committed transition (0 before the first).
  virtual Timestamp current_time() const = 0;

  /// Number of transitions committed.
  virtual std::size_t transition_count() const = 0;

  /// Violations accumulated since construction (all constraints).
  virtual std::size_t total_violations() const = 0;

  /// Registered constraint names, in registration order.
  virtual std::vector<std::string> ConstraintNames() const = 0;

  /// Per-constraint checking statistics, in registration order.
  virtual std::vector<ConstraintStats> Stats() const = 0;

  /// Total auxiliary/history rows retained across all checkers.
  virtual std::size_t TotalStorageRows() const = 0;
};

}  // namespace rtic

#endif  // RTIC_MONITOR_MONITOR_IFACE_H_
