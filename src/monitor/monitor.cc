#include "monitor/monitor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/compress.h"
#include "common/logging.h"
#include "engines/active/compiler.h"
#include "engines/incremental/engine.h"
#include "engines/naive/naive_engine.h"
#include "engines/response/response_engine.h"
#include "replication/shipper.h"
#include "replication/tcp_transport.h"
#include "storage/codec.h"
#include "tl/parser.h"

namespace rtic {

const char* EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kIncremental:
      return "incremental";
    case EngineKind::kNaive:
      return "naive";
    case EngineKind::kActive:
      return "active";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::string out = "violation of '" + constraint_name + "' at time " +
                    std::to_string(timestamp);
  if (!witnesses.empty()) {
    out += "; witnesses";
    if (!witness_columns.empty()) {
      out += " (";
      for (std::size_t i = 0; i < witness_columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += witness_columns[i];
      }
      out += ")";
    }
    out += ":";
    for (const Tuple& w : witnesses) {
      out += " " + w.ToString();
    }
  }
  return out;
}

std::string ConstraintStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: %zu states, %zu violations, mean %.1f us, max %lld us, "
                "%zu aux rows",
                name.c_str(), transitions, violations, MeanCheckMicros(),
                static_cast<long long>(max_check_micros), storage_rows);
  return buf;
}

/// A registered constraint: source text, formula, and its checker.
struct ConstraintMonitor::Registered {
  std::string name;
  std::string text;
  tl::FormulaPtr formula;
  std::vector<std::string> warnings;
  std::unique_ptr<CheckerEngine> engine;
  std::size_t transitions = 0;
  std::size_t violations = 0;
  std::int64_t total_check_micros = 0;
  std::int64_t max_check_micros = 0;
  std::int64_t last_check_micros = 0;
};

/// One constraint's check result for one transition, produced (possibly
/// concurrently) by CheckConstraint and merged serially in registration
/// order afterwards.
struct ConstraintMonitor::CheckOutcome {
  Status status = Status::OK();
  bool holds = true;
  std::int64_t micros = 0;
  Violation violation;  // populated iff status.ok() && !holds
};

ConstraintMonitor::ConstraintMonitor(MonitorOptions options)
    : options_(std::move(options)) {
  // The calling thread participates in the fan-out, so a num_threads
  // budget of N means N - 1 pool workers.
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1);
  }
}

ConstraintMonitor::~ConstraintMonitor() { StopShipping(); }

Status ConstraintMonitor::CreateTable(const std::string& name,
                                      Schema schema) {
  if (transition_count_ > 0) {
    return Status::FailedPrecondition(
        "tables must be created before the first update");
  }
  return db_.CreateTable(name, std::move(schema));
}

Status ConstraintMonitor::RegisterConstraint(const std::string& name,
                                             const std::string& text) {
  RTIC_ASSIGN_OR_RETURN(tl::FormulaPtr formula, tl::ParseFormula(text));
  RTIC_RETURN_IF_ERROR(RegisterConstraintFormula(name, *formula));
  constraints_.back()->text = text;
  return Status::OK();
}

Status ConstraintMonitor::RegisterConstraintFormula(
    const std::string& name, const tl::Formula& formula) {
  for (const auto& c : constraints_) {
    if (c->name == name) {
      return Status::AlreadyExists("constraint already registered: " + name);
    }
  }

  tl::PredicateCatalog catalog;
  for (const std::string& table : db_.TableNames()) {
    catalog[table] = db_.GetTable(table).value()->schema();
  }

  // Analyze once up front so registration reports language errors and
  // warnings even before an engine compiles its own clone.
  RTIC_ASSIGN_OR_RETURN(tl::Analysis analysis,
                        tl::Analyze(formula, catalog));
  if (!analysis.IsClosed(formula)) {
    return Status::InvalidArgument("constraint '" + name +
                                   "' must be a closed formula");
  }

  auto reg = std::make_unique<Registered>();
  reg->name = name;
  reg->formula = formula.Clone();
  reg->text = reg->formula->ToString();
  reg->warnings = analysis.warnings();

  // Bounded-future response constraints have a single engine regardless of
  // the configured kind: obligation tracking with delayed verdicts (the
  // violation is attributed to the state where the window closes unmet).
  if (ResponseEngine::LooksLikeResponseConstraint(formula)) {
    ResponseOptions opts;
    opts.extra_constants = options_.domain_constants;
    RTIC_ASSIGN_OR_RETURN(reg->engine,
                          ResponseEngine::Create(formula, catalog, opts));
    constraints_.push_back(std::move(reg));
    if (delta_tracking_) constraints_.back()->engine->BeginDeltaTracking();
    return Status::OK();
  }

  switch (options_.engine) {
    case EngineKind::kIncremental: {
      IncrementalOptions opts;
      opts.pruning = options_.pruning;
      opts.extra_constants = options_.domain_constants;
      if (options_.shared_subplans) {
        if (subplan_registry_ == nullptr) {
          subplan_registry_ = std::make_shared<inc::SubplanRegistry>();
        }
        opts.registry = subplan_registry_;
        // Only engines registered at the same transition count have seen
        // the same history, so the epoch is part of every sharing key.
        opts.registration_epoch = transition_count_;
      }
      RTIC_ASSIGN_OR_RETURN(
          reg->engine, IncrementalEngine::Create(formula, catalog, opts));
      break;
    }
    case EngineKind::kNaive: {
      RTIC_ASSIGN_OR_RETURN(
          reg->engine,
          NaiveEngine::Create(formula, catalog, options_.domain_constants));
      break;
    }
    case EngineKind::kActive: {
      ActiveOptions opts;
      opts.pruning = options_.pruning;
      opts.extra_constants = options_.domain_constants;
      RTIC_ASSIGN_OR_RETURN(reg->engine,
                            ActiveEngine::Create(formula, catalog, opts));
      break;
    }
  }
  constraints_.push_back(std::move(reg));
  if (delta_tracking_) constraints_.back()->engine->BeginDeltaTracking();
  return Status::OK();
}

Status ConstraintMonitor::RegisterConstraintEngine(
    const std::string& name, std::unique_ptr<CheckerEngine> engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("RegisterConstraintEngine needs an engine");
  }
  for (const auto& c : constraints_) {
    if (c->name == name) {
      return Status::AlreadyExists("constraint already registered: " + name);
    }
  }
  auto reg = std::make_unique<Registered>();
  reg->name = name;
  reg->text = std::string("<custom ") + engine->name() + " engine>";
  reg->engine = std::move(engine);
  constraints_.push_back(std::move(reg));
  if (delta_tracking_) constraints_.back()->engine->BeginDeltaTracking();
  return Status::OK();
}

Status ConstraintMonitor::UnregisterConstraint(const std::string& name) {
  for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
    if ((*it)->name == name) {
      constraints_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no such constraint: " + name);
}

namespace {

/// Adapts the monitor's public checkpoint/update surface to the
/// wal::ReplayTarget interface. Replayed batches take the normal
/// ApplyUpdate path (constraint checks included), so a recovered monitor's
/// auxiliary state is exactly what an uninterrupted run would hold.
class MonitorReplayTarget final : public wal::ReplayTarget {
 public:
  explicit MonitorReplayTarget(ConstraintMonitor* monitor)
      : monitor_(monitor) {}

  Status RestoreCheckpoint(const std::string& payload) override {
    return monitor_->LoadState(payload);
  }
  Status RestoreCheckpointDelta(const std::string& payload) override {
    return monitor_->LoadStateDelta(payload);
  }
  Status Replay(const UpdateBatch& batch) override {
    // Violations were already reported when the batch was first accepted.
    return monitor_->ApplyUpdate(batch).status();
  }
  Result<std::string> CaptureCheckpoint() override {
    RTIC_ASSIGN_OR_RETURN(std::string payload, monitor_->SaveState());
    if (monitor_->options().checkpoint_compression) return Compress(payload);
    return payload;
  }

 private:
  ConstraintMonitor* monitor_;
};

}  // namespace

Result<wal::RecoveryStats> ConstraintMonitor::Recover() {
  if (options_.wal_dir.empty()) {
    return Status::FailedPrecondition(
        "Recover() requires MonitorOptions::wal_dir");
  }
  if (recovery_ != nullptr) {
    return Status::FailedPrecondition("Recover() already ran");
  }
  if (transition_count_ > 0) {
    return Status::FailedPrecondition(
        "Recover() must run before the first update");
  }
  // Fail fast if this configuration cannot checkpoint (e.g. the naive
  // engine), before any WAL state is touched.
  RTIC_RETURN_IF_ERROR(SaveState().status());

  wal::WalOptions wal_options;
  wal_options.dir = options_.wal_dir;
  wal_options.sync_policy = options_.sync_policy;
  wal_options.group_commit_window_micros =
      options_.group_commit_window_micros;
  wal_options.checkpoint_interval = options_.checkpoint_interval;
  wal_options.delta_chain_limit = options_.checkpoint_delta_chain;
  wal_options.segment_bytes = options_.wal_segment_bytes;
  wal_options.fs = options_.wal_fs;

  // Arm delta tracking before recovery so the restore re-baselines it and
  // replayed tail batches accumulate exactly the changes since the
  // installed checkpoint.
  if (options_.checkpoint_delta_chain > 0) BeginDeltaTracking();

  MonitorReplayTarget target(this);
  recovering_ = true;
  Result<std::unique_ptr<wal::RecoveryManager>> manager =
      wal::RecoveryManager::Open(wal_options, &target);
  recovering_ = false;
  if (!manager.ok()) return manager.status();
  recovery_ = std::move(manager).value();
  // When the checkpoint already covers the whole log (no tail, or Open's
  // damaged-tail re-anchor just captured the live state), the current
  // state IS the baseline; replay-accumulated tracking would otherwise
  // leak into the next delta.
  if (recovery_->checkpoint_seq() == recovery_->last_seq()) {
    ResetCheckpointTracking();
  }
  if (!options_.replication_standby.empty()) {
    RTIC_RETURN_IF_ERROR(StartShipping());
  }
  return recovery_->stats();
}

Status ConstraintMonitor::StartShipping() {
  RTIC_ASSIGN_OR_RETURN(ship_transport_,
                        replication::TcpConnect(options_.replication_standby));
  replication::ShipperOptions ship_options;
  ship_options.dir = options_.wal_dir;
  ship_options.fs = options_.wal_fs;
  shipper_ = std::make_unique<replication::SegmentShipper>(
      ship_options, ship_transport_.get());
  RTIC_RETURN_IF_ERROR(shipper_->Start());
  ship_thread_ = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(ship_mu_);
        ship_cv_.wait_for(
            lock, std::chrono::microseconds(options_.ship_interval_micros),
            [this] { return ship_stop_; });
        if (ship_stop_) break;
      }
      Status s = shipper_->ShipOnce();
      if (!s.ok()) {
        RTIC_LOG(Warning) << "replication: shipping stopped: "
                          << s.ToString();
        break;
      }
    }
  });
  return Status::OK();
}

void ConstraintMonitor::StopShipping() {
  if (!ship_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(ship_mu_);
    ship_stop_ = true;
  }
  ship_cv_.notify_all();
  ship_thread_.join();
  // Flush the WAL's buffered tail first (the recovery manager's clean
  // shutdown), then ship it: a clean primary shutdown leaves the standby
  // holding every durable record.
  recovery_.reset();
  Status s = shipper_->ShipOnce();
  if (!s.ok()) {
    RTIC_LOG(Warning) << "replication: final shipping pass failed: "
                      << s.ToString();
  } else {
    // Wait for the standby to confirm the tail before closing: closing
    // immediately after the final send can reset the connection under the
    // standby's in-flight reply and discard its still-buffered frames.
    s = shipper_->WaitForAck(transition_count_, /*timeout_micros=*/5'000'000);
    if (!s.ok()) {
      RTIC_LOG(Warning) << "replication: standby did not confirm the tail: "
                        << s.ToString();
    }
  }
  ship_transport_->Close();
}

Result<std::vector<Violation>> ConstraintMonitor::ApplyUpdate(
    const UpdateBatch& batch) {
  if (transition_count_ > 0 && batch.timestamp() <= current_time_) {
    return Status::InvalidArgument(
        "batch timestamp " + std::to_string(batch.timestamp()) +
        " does not advance the clock past " + std::to_string(current_time_));
  }
  const bool durable_live = !options_.wal_dir.empty() && !recovering_;
  if (durable_live) {
    if (recovery_ == nullptr) {
      return Status::FailedPrecondition(
          "durable monitor: call Recover() before applying updates");
    }
    // Validate before logging so the WAL only ever holds batches that
    // Apply() below cannot reject.
    RTIC_RETURN_IF_ERROR(batch.Validate(db_));
    RTIC_RETURN_IF_ERROR(recovery_->AppendBatch(batch));
  }
  if (delta_tracking_) {
    // Tracking must never record a batch that fails to commit; Apply()
    // rejects exactly what Validate() rejects, so validating here (when
    // the durable path above has not already) makes Apply() infallible.
    if (!durable_live) RTIC_RETURN_IF_ERROR(batch.Validate(db_));
    TrackBatchDelta(batch);
  }
  RTIC_RETURN_IF_ERROR(batch.Apply(&db_));
  current_time_ = batch.timestamp();
  ++transition_count_;

  // Fan the constraints out (each engine is owned by exactly one
  // constraint; db_ and options_ are shared read-only), then merge the
  // per-constraint outcomes back in registration order so violations,
  // stats, and error precedence are identical to the serial path.
  // Every engine observes every committed transition, even when another
  // constraint's check errors: the parallel fan-out cannot stop sibling
  // checks that are already running, so the serial path must not either —
  // otherwise a 1-thread and an N-thread monitor would hold different
  // auxiliary state after an error. The first error in registration order
  // is surfaced by the merge below.
  std::vector<CheckOutcome> outcomes(constraints_.size());
  if (pool_ && constraints_.size() > 1) {
    pool_->ParallelFor(constraints_.size(), [this, &outcomes](
                                                std::size_t i) {
      CheckConstraint(i, &outcomes[i]);
    });
  } else {
    for (std::size_t i = 0; i < constraints_.size(); ++i) {
      CheckConstraint(i, &outcomes[i]);
    }
  }

  std::vector<Violation> violations;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    CheckOutcome& out = outcomes[i];
    if (!out.status.ok()) return out.status;
    Registered& c = *constraints_[i];
    ++c.transitions;
    c.total_check_micros += out.micros;
    c.max_check_micros = std::max(c.max_check_micros, out.micros);
    c.last_check_micros = out.micros;
    if (out.holds) continue;
    ++c.violations;
    ++total_violations_;
    violations.push_back(std::move(out.violation));
  }
  if (recovery_ != nullptr && !recovering_ && recovery_->ShouldCheckpoint()) {
    // The batch is applied, logged, and checked; a failed periodic
    // checkpoint must not discard its verdicts. Log the error and leave
    // the should-checkpoint state armed so the next accepted batch
    // retries. (If the file system is truly gone, the next batch's WAL
    // append will surface that as its own failure.)
    Status checkpoint = WritePeriodicCheckpoint();
    if (!checkpoint.ok()) {
      RTIC_LOG(Warning) << "monitor: periodic checkpoint failed (will retry "
                           "next interval): "
                        << checkpoint.ToString();
    }
  }
  return violations;
}

Status ConstraintMonitor::WritePeriodicCheckpoint() {
  auto started = std::chrono::steady_clock::now();
  wal::RecoveryManager::CheckpointPlan plan = recovery_->PlanCheckpoint();
  // A failed attempt may have burned the delta baseline (SaveStateDelta
  // resets it before the write lands), so after any failure the retry
  // falls back to a self-contained snapshot.
  if (!delta_tracking_ || force_base_checkpoint_) plan.delta = false;
  Result<std::string> payload = plan.delta ? SaveStateDelta() : SaveState();
  if (!payload.ok()) {
    ++checkpoint_stats_.failures;
    force_base_checkpoint_ = true;
    return payload.status();
  }
  const std::string blob = options_.checkpoint_compression
                               ? Compress(payload.value())
                               : std::move(payload).value();
  Status written = plan.delta
                       ? recovery_->WriteCheckpointDelta(blob, plan.parent_seq)
                       : recovery_->WriteCheckpoint(blob);
  if (!written.ok()) {
    ++checkpoint_stats_.failures;
    force_base_checkpoint_ = true;
    return written;
  }
  if (plan.delta) {
    ++checkpoint_stats_.deltas;
    checkpoint_stats_.delta_bytes += blob.size();
  } else {
    ++checkpoint_stats_.bases;
    checkpoint_stats_.base_bytes += blob.size();
    force_base_checkpoint_ = false;
  }
  ResetCheckpointTracking();
  const std::int64_t micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count();
  checkpoint_stats_.total_micros += micros;
  checkpoint_stats_.max_micros = std::max(checkpoint_stats_.max_micros, micros);
  checkpoint_stats_.last_micros = micros;
  return Status::OK();
}

void ConstraintMonitor::CheckConstraint(std::size_t i,
                                        CheckOutcome* out) const {
  Registered& c = *constraints_[i];
  auto started = std::chrono::steady_clock::now();
  Result<bool> holds = c.engine->OnTransition(db_, current_time_);
  out->micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  if (!holds.ok()) {
    out->status = holds.status();
    return;
  }
  out->holds = holds.value();
  if (out->holds) return;

  Violation& v = out->violation;
  v.constraint_name = c.name;
  v.timestamp = current_time_;
  Result<Relation> counterexamples = c.engine->CurrentCounterexamples(db_);
  if (!counterexamples.ok()) {
    out->status = counterexamples.status();
    return;
  }
  for (const Column& col : counterexamples.value().columns()) {
    v.witness_columns.push_back(col.name);
  }
  std::vector<Tuple> rows = counterexamples.value().SortedRows();
  if (rows.size() > options_.max_witnesses) {
    rows.resize(options_.max_witnesses);
  }
  v.witnesses = std::move(rows);
}

Result<std::vector<Violation>> ConstraintMonitor::Tick(Timestamp t) {
  return ApplyUpdate(UpdateBatch(t));
}

std::vector<std::string> ConstraintMonitor::ConstraintNames() const {
  std::vector<std::string> out;
  out.reserve(constraints_.size());
  for (const auto& c : constraints_) out.push_back(c->name);
  return out;
}

Result<std::vector<std::string>> ConstraintMonitor::WarningsFor(
    const std::string& name) const {
  for (const auto& c : constraints_) {
    if (c->name == name) return c->warnings;
  }
  return Status::NotFound("no such constraint: " + name);
}

std::vector<ConstraintStats> ConstraintMonitor::Stats() const {
  std::vector<ConstraintStats> out;
  out.reserve(constraints_.size());
  for (const auto& c : constraints_) {
    ConstraintStats s;
    s.name = c->name;
    s.transitions = c->transitions;
    s.violations = c->violations;
    s.total_check_micros = c->total_check_micros;
    s.max_check_micros = c->max_check_micros;
    s.last_check_micros = c->last_check_micros;
    s.storage_rows = c->engine->StorageRows();
    s.shared_subplans = c->engine->SharedSubplans();
    s.aux_valuations = c->engine->AuxValuationCount();
    s.aux_anchors = c->engine->AuxTimestampCount();
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t ConstraintMonitor::TotalStorageRows() const {
  std::size_t n = 0;
  for (const auto& c : constraints_) n += c->engine->StorageRows();
  return n;
}

namespace {
// Version history:
//   RTICMON1 — database + clock + engine states; per-constraint counters
//              were not persisted (restored monitors under-reported them).
//   RTICMON2 — adds per-constraint transition/violation counters so
//              Stats() survives recovery consistently with
//              total_violations().
//   RTICMON3 — adds a kind token after the magic: "base" (followed by the
//              unchanged RTICMON2 body) or "delta" (changes since the
//              parent checkpoint). RTICMON2 files still load.
// Checkpoint payloads of any version may additionally be wrapped in a
// compressed frame (common/compress.h); the loaders auto-detect that.
constexpr char kMonitorMagic[] = "RTICMON3";
constexpr char kMonitorMagicV2[] = "RTICMON2";
constexpr char kLegacyMonitorMagic[] = "RTICMON1";
constexpr char kKindBase[] = "base";
constexpr char kKindDelta[] = "delta";
}  // namespace

Result<std::string> ConstraintMonitor::SaveState() const {
  StateWriter w;
  w.WriteString(kMonitorMagic);
  w.WriteString(kKindBase);
  w.WriteInt(static_cast<std::int64_t>(transition_count_));
  w.WriteInt(current_time_);
  w.WriteInt(static_cast<std::int64_t>(total_violations_));

  // Database: tables with schema and rows.
  std::vector<std::string> tables = db_.TableNames();
  w.WriteSize(tables.size());
  for (const std::string& name : tables) {
    const Table* table = db_.GetTable(name).value();
    w.WriteString(name);
    w.WriteSize(table->schema().size());
    for (const Column& col : table->schema().columns()) {
      w.WriteString(col.name);
      w.WriteInt(static_cast<std::int64_t>(col.type));
    }
    w.WriteSize(table->size());
    std::vector<Tuple> rows(table->rows().begin(), table->rows().end());
    std::sort(rows.begin(), rows.end());
    for (const Tuple& row : rows) w.WriteTuple(row);
  }

  // Constraint checkers, each with its cumulative counters (timing stats
  // are process-local and deliberately not persisted).
  w.WriteSize(constraints_.size());
  for (const auto& c : constraints_) {
    w.WriteString(c->name);
    w.WriteSize(c->transitions);
    w.WriteSize(c->violations);
    RTIC_ASSIGN_OR_RETURN(std::string engine_state, c->engine->SaveState());
    w.WriteString(engine_state);
  }
  return w.str();
}

Status ConstraintMonitor::LoadState(const std::string& data) {
  const std::string* payload = &data;
  std::string decompressed;
  if (LooksCompressed(data)) {
    RTIC_ASSIGN_OR_RETURN(decompressed, Decompress(data));
    payload = &decompressed;
  }
  StateReader r(*payload);
  RTIC_ASSIGN_OR_RETURN(std::string magic, r.ReadString());
  if (magic == kLegacyMonitorMagic) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + magic +
        " (predates per-constraint counters); re-create the checkpoint "
        "with this build's SaveState()");
  }
  if (magic == kMonitorMagic) {
    // RTICMON3 carries a kind token; the body after "base" is the
    // unchanged RTICMON2 layout.
    RTIC_ASSIGN_OR_RETURN(std::string kind, r.ReadString());
    if (kind == kKindDelta) {
      return Status::InvalidArgument(
          "this is a delta checkpoint; apply it with LoadStateDelta() on "
          "top of its parent");
    }
    if (kind != kKindBase) {
      return Status::InvalidArgument("unknown checkpoint kind '" + kind +
                                     "'");
    }
  } else if (magic != kMonitorMagicV2) {
    return Status::InvalidArgument("not an rtic monitor checkpoint");
  }
  RTIC_ASSIGN_OR_RETURN(std::int64_t transition_count, r.ReadInt());
  RTIC_ASSIGN_OR_RETURN(Timestamp current_time, r.ReadInt());
  RTIC_ASSIGN_OR_RETURN(std::int64_t total_violations, r.ReadInt());

  // Rebuild the database against the registered schemas.
  Database restored_db;
  RTIC_ASSIGN_OR_RETURN(std::int64_t table_count, r.ReadInt());
  for (std::int64_t i = 0; i < table_count; ++i) {
    RTIC_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    RTIC_ASSIGN_OR_RETURN(std::int64_t col_count, r.ReadInt());
    std::vector<Column> columns;
    for (std::int64_t c = 0; c < col_count; ++c) {
      RTIC_ASSIGN_OR_RETURN(std::string col_name, r.ReadString());
      RTIC_ASSIGN_OR_RETURN(std::int64_t type, r.ReadInt());
      if (type < 0 || type > static_cast<std::int64_t>(ValueType::kBool)) {
        return Status::InvalidArgument("bad column type in checkpoint");
      }
      columns.push_back(Column{col_name, static_cast<ValueType>(type)});
    }
    RTIC_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));
    // Validate against the live catalog.
    RTIC_ASSIGN_OR_RETURN(const Table* live, db_.GetTable(name));
    if (!(live->schema() == schema)) {
      return Status::FailedPrecondition(
          "checkpoint schema for table " + name +
          " does not match the registered schema");
    }
    RTIC_RETURN_IF_ERROR(restored_db.CreateTable(name, schema));
    Table* table = restored_db.GetMutableTable(name).value();
    RTIC_ASSIGN_OR_RETURN(std::int64_t row_count, r.ReadInt());
    for (std::int64_t k = 0; k < row_count; ++k) {
      RTIC_ASSIGN_OR_RETURN(Tuple row, r.ReadTuple());
      Result<bool> ins = table->Insert(std::move(row));
      if (!ins.ok()) return ins.status();
    }
  }
  if (table_count != static_cast<std::int64_t>(db_.TableNames().size())) {
    return Status::FailedPrecondition(
        "checkpoint table count does not match the registered tables");
  }

  RTIC_ASSIGN_OR_RETURN(std::int64_t constraint_count, r.ReadInt());
  if (constraint_count != static_cast<std::int64_t>(constraints_.size())) {
    return Status::FailedPrecondition(
        "checkpoint constraint count does not match registration");
  }
  std::vector<std::string> engine_states;
  std::vector<std::pair<std::int64_t, std::int64_t>> counters;
  for (std::int64_t i = 0; i < constraint_count; ++i) {
    RTIC_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    if (name != constraints_[static_cast<std::size_t>(i)]->name) {
      return Status::FailedPrecondition(
          "checkpoint constraint order/name mismatch at '" + name + "'");
    }
    RTIC_ASSIGN_OR_RETURN(std::int64_t transitions, r.ReadInt());
    RTIC_ASSIGN_OR_RETURN(std::int64_t c_violations, r.ReadInt());
    if (transitions < 0 || c_violations < 0 || c_violations > transitions) {
      return Status::InvalidArgument(
          "implausible constraint counters in checkpoint for '" + name +
          "'");
    }
    counters.emplace_back(transitions, c_violations);
    RTIC_ASSIGN_OR_RETURN(std::string engine_state, r.ReadString());
    engine_states.push_back(std::move(engine_state));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in checkpoint");
  }

  // Validation done; apply engine states (these validate constraint texts
  // themselves) and only then commit the monitor-level fields. Counters
  // resume from the checkpoint; timing stats restart (they are wall-clock
  // measurements of this process, not monitor state).
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    RTIC_RETURN_IF_ERROR(
        constraints_[i]->engine->LoadState(engine_states[i]));
    constraints_[i]->transitions =
        static_cast<std::size_t>(counters[i].first);
    constraints_[i]->violations =
        static_cast<std::size_t>(counters[i].second);
    constraints_[i]->total_check_micros = 0;
    constraints_[i]->max_check_micros = 0;
    constraints_[i]->last_check_micros = 0;
  }
  db_ = std::move(restored_db);
  transition_count_ = static_cast<std::size_t>(transition_count);
  current_time_ = current_time;
  total_violations_ = static_cast<std::size_t>(total_violations);
  // The restored state is the new delta baseline.
  ResetCheckpointTracking();
  return Status::OK();
}

void ConstraintMonitor::BeginDeltaTracking() {
  if (delta_tracking_) return;
  delta_tracking_ = true;
  for (const auto& c : constraints_) c->engine->BeginDeltaTracking();
  ResetCheckpointTracking();
}

void ConstraintMonitor::ResetCheckpointTracking() {
  table_deltas_.clear();
  checkpoint_parent_transitions_ = transition_count_;
  for (const auto& c : constraints_) c->engine->MarkStateSaved();
}

void ConstraintMonitor::TrackBatchDelta(const UpdateBatch& batch) {
  // Mirror Apply(): per table, deletes land first, then inserts, and
  // no-ops (deleting an absent row, inserting a present one) change
  // nothing. Fold each *effective* operation into the running delta so a
  // row added and later removed (or vice versa) cancels out instead of
  // appearing in both sets.
  for (const std::string& name : batch.TouchedTables()) {
    Result<const Table*> table = db_.GetTable(name);
    if (!table.ok()) continue;  // Validate() upstream makes this unreachable
    TableDelta& delta = table_deltas_[name];

    std::set<Tuple> eff_deleted;  // rows present now that this batch drops
    auto deletes = batch.deletes().find(name);
    if (deletes != batch.deletes().end()) {
      for (const Tuple& row : deletes->second) {
        if (table.value()->Contains(row)) eff_deleted.insert(row);
      }
    }
    std::set<Tuple> eff_inserted;  // rows absent post-delete that it adds
    auto inserts = batch.inserts().find(name);
    if (inserts != batch.inserts().end()) {
      for (const Tuple& row : inserts->second) {
        if (!table.value()->Contains(row) || eff_deleted.count(row) > 0) {
          eff_inserted.insert(row);
        }
      }
    }
    for (const Tuple& row : eff_deleted) {
      if (delta.added.erase(row) == 0) delta.removed.insert(row);
    }
    for (const Tuple& row : eff_inserted) {
      if (delta.removed.erase(row) == 0) delta.added.insert(row);
    }
  }
}

Result<std::string> ConstraintMonitor::SaveStateDelta() {
  if (!delta_tracking_) {
    return Status::FailedPrecondition(
        "SaveStateDelta() requires BeginDeltaTracking()");
  }
  StateWriter w;
  w.WriteString(kMonitorMagic);
  w.WriteString(kKindDelta);
  w.WriteSize(checkpoint_parent_transitions_);
  w.WriteInt(static_cast<std::int64_t>(transition_count_));
  w.WriteInt(current_time_);
  w.WriteInt(static_cast<std::int64_t>(total_violations_));

  std::size_t changed_tables = 0;
  for (const auto& [name, delta] : table_deltas_) {
    if (!delta.removed.empty() || !delta.added.empty()) ++changed_tables;
  }
  w.WriteSize(changed_tables);
  for (const auto& [name, delta] : table_deltas_) {
    if (delta.removed.empty() && delta.added.empty()) continue;
    w.WriteString(name);
    w.WriteSize(delta.removed.size());
    for (const Tuple& row : delta.removed) w.WriteTuple(row);
    w.WriteSize(delta.added.size());
    for (const Tuple& row : delta.added) w.WriteTuple(row);
  }

  w.WriteSize(constraints_.size());
  for (const auto& c : constraints_) {
    w.WriteString(c->name);
    w.WriteSize(c->transitions);
    w.WriteSize(c->violations);
    if (!c->engine->StateDirty()) {
      w.WriteInt(0);  // unchanged since the parent checkpoint
    } else if (c->engine->SupportsStateDelta()) {
      RTIC_ASSIGN_OR_RETURN(std::string blob, c->engine->SaveStateDelta());
      w.WriteInt(1);  // engine-level delta
      w.WriteString(blob);
    } else {
      RTIC_ASSIGN_OR_RETURN(std::string blob, c->engine->SaveState());
      w.WriteInt(2);  // full engine blob (engine cannot delta)
      w.WriteString(blob);
    }
  }
  // This delta is now the baseline: the caller chains the next delta onto
  // it (a write failure downstream forces a base checkpoint instead).
  ResetCheckpointTracking();
  return w.str();
}

Status ConstraintMonitor::LoadStateDelta(const std::string& data) {
  const std::string* payload = &data;
  std::string decompressed;
  if (LooksCompressed(data)) {
    RTIC_ASSIGN_OR_RETURN(decompressed, Decompress(data));
    payload = &decompressed;
  }
  StateReader r(*payload);
  RTIC_ASSIGN_OR_RETURN(std::string magic, r.ReadString());
  if (magic != kMonitorMagic) {
    return Status::InvalidArgument("not an rtic delta checkpoint");
  }
  RTIC_ASSIGN_OR_RETURN(std::string kind, r.ReadString());
  if (kind != kKindDelta) {
    return Status::InvalidArgument("not a delta checkpoint (kind '" + kind +
                                   "'); use LoadState()");
  }
  RTIC_ASSIGN_OR_RETURN(std::int64_t parent_transitions, r.ReadInt());
  if (parent_transitions != static_cast<std::int64_t>(transition_count_)) {
    return Status::FailedPrecondition(
        "delta checkpoint chains to a different parent state (parent saw " +
        std::to_string(parent_transitions) + " transitions, this monitor " +
        std::to_string(transition_count_) + ")");
  }
  RTIC_ASSIGN_OR_RETURN(std::int64_t transition_count, r.ReadInt());
  RTIC_ASSIGN_OR_RETURN(Timestamp current_time, r.ReadInt());
  RTIC_ASSIGN_OR_RETURN(std::int64_t total_violations, r.ReadInt());
  if (transition_count < parent_transitions || total_violations < 0 ||
      current_time < current_time_) {
    return Status::InvalidArgument(
        "implausible counters in delta checkpoint");
  }

  // Stage table changes on copies so a rejected delta leaves the live
  // database untouched.
  RTIC_ASSIGN_OR_RETURN(std::int64_t table_count, r.ReadInt());
  if (table_count < 0) {
    return Status::InvalidArgument("bad table count in delta checkpoint");
  }
  std::vector<std::pair<std::string, Table>> staged_tables;
  for (std::int64_t i = 0; i < table_count; ++i) {
    RTIC_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    if (!staged_tables.empty() && name <= staged_tables.back().first) {
      return Status::InvalidArgument(
          "delta checkpoint tables out of order at '" + name + "'");
    }
    RTIC_ASSIGN_OR_RETURN(const Table* live, db_.GetTable(name));
    Table staged = *live;
    RTIC_ASSIGN_OR_RETURN(std::int64_t removed, r.ReadInt());
    if (removed < 0) {
      return Status::InvalidArgument("bad row count in delta checkpoint");
    }
    for (std::int64_t k = 0; k < removed; ++k) {
      RTIC_ASSIGN_OR_RETURN(Tuple row, r.ReadTuple());
      if (!staged.Erase(row)) {
        return Status::FailedPrecondition(
            "delta checkpoint removes a row not present in table " + name);
      }
    }
    RTIC_ASSIGN_OR_RETURN(std::int64_t added, r.ReadInt());
    if (added < 0) {
      return Status::InvalidArgument("bad row count in delta checkpoint");
    }
    for (std::int64_t k = 0; k < added; ++k) {
      RTIC_ASSIGN_OR_RETURN(Tuple row, r.ReadTuple());
      RTIC_ASSIGN_OR_RETURN(bool inserted, staged.Insert(std::move(row)));
      if (!inserted) {
        return Status::FailedPrecondition(
            "delta checkpoint adds a row already present in table " + name);
      }
    }
    staged_tables.emplace_back(std::move(name), std::move(staged));
  }

  RTIC_ASSIGN_OR_RETURN(std::int64_t constraint_count, r.ReadInt());
  if (constraint_count != static_cast<std::int64_t>(constraints_.size())) {
    return Status::FailedPrecondition(
        "delta checkpoint constraint count does not match registration");
  }
  struct StagedConstraint {
    std::int64_t transitions = 0;
    std::int64_t violations = 0;
    std::int64_t marker = 0;
    std::string blob;
  };
  std::vector<StagedConstraint> staged_constraints;
  for (std::int64_t i = 0; i < constraint_count; ++i) {
    RTIC_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    if (name != constraints_[static_cast<std::size_t>(i)]->name) {
      return Status::FailedPrecondition(
          "delta checkpoint constraint order/name mismatch at '" + name +
          "'");
    }
    StagedConstraint sc;
    RTIC_ASSIGN_OR_RETURN(sc.transitions, r.ReadInt());
    RTIC_ASSIGN_OR_RETURN(sc.violations, r.ReadInt());
    if (sc.transitions < 0 || sc.violations < 0 ||
        sc.violations > sc.transitions) {
      return Status::InvalidArgument(
          "implausible constraint counters in delta checkpoint for '" +
          name + "'");
    }
    RTIC_ASSIGN_OR_RETURN(sc.marker, r.ReadInt());
    if (sc.marker < 0 || sc.marker > 2) {
      return Status::InvalidArgument(
          "bad engine-state marker in delta checkpoint for '" + name + "'");
    }
    if (sc.marker != 0) {
      RTIC_ASSIGN_OR_RETURN(sc.blob, r.ReadString());
    }
    staged_constraints.push_back(std::move(sc));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in delta checkpoint");
  }

  // Monitor-level validation done. Engine loads validate (and install)
  // their own blobs; a failure here surfaces to the recovery manager,
  // which evicts this delta and reinstalls the chain from its base, so no
  // partially-applied state survives into a successful recovery.
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    const StagedConstraint& sc = staged_constraints[i];
    if (sc.marker == 1) {
      RTIC_RETURN_IF_ERROR(constraints_[i]->engine->LoadStateDelta(sc.blob));
    } else if (sc.marker == 2) {
      RTIC_RETURN_IF_ERROR(constraints_[i]->engine->LoadState(sc.blob));
    }
    constraints_[i]->transitions = static_cast<std::size_t>(sc.transitions);
    constraints_[i]->violations = static_cast<std::size_t>(sc.violations);
    constraints_[i]->total_check_micros = 0;
    constraints_[i]->max_check_micros = 0;
    constraints_[i]->last_check_micros = 0;
  }
  for (auto& [name, staged] : staged_tables) {
    *db_.GetMutableTable(name).value() = std::move(staged);
  }
  transition_count_ = static_cast<std::size_t>(transition_count);
  current_time_ = current_time;
  total_violations_ = static_cast<std::size_t>(total_violations);
  ResetCheckpointTracking();
  return Status::OK();
}

}  // namespace rtic
