// Database: a catalog of named tables — one logical database *state*.
// Histories are sequences of such states; Database is copyable so the naive
// engine can snapshot it.

#ifndef RTIC_STORAGE_DATABASE_H_
#define RTIC_STORAGE_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace rtic {

/// One database state: named tables plus schema catalog. Copy = deep
/// snapshot.
///
/// Thread safety: const methods perform no caching or other hidden
/// mutation, so any number of threads may read one Database concurrently
/// (the monitor's parallel constraint fan-out relies on this). Mutation
/// (CreateTable, GetMutableTable, DropTable) requires exclusive access.
class Database {
 public:
  Database() = default;

  /// Creates an empty table. Fails if the name already exists.
  Status CreateTable(const std::string& name, Schema schema);

  /// True iff a table with this name exists.
  bool HasTable(const std::string& name) const;

  /// Looks up a table; NotFound if absent.
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  /// Drops a table; NotFound if absent.
  Status DropTable(const std::string& name);

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  /// Total number of rows across all tables (storage-cost accounting).
  std::size_t TotalRows() const;

  /// All distinct values of the given type occurring anywhere in the
  /// database — the per-state active domain used by quantifier and negation
  /// semantics.
  std::vector<Value> ActiveDomain(ValueType type) const;

  bool operator==(const Database& o) const { return tables_ == o.tables_; }

  /// Multi-line debug dump of every table.
  std::string ToString() const;

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace rtic

#endif  // RTIC_STORAGE_DATABASE_H_
