// DomainTracker: the cumulative active domain of a history — every value
// that has appeared in any monitored state so far, bucketed by type.
//
// Quantifiers and negation in constraint formulas range over this set (plus
// the formula's constants). Using the *history's* domain rather than the
// current state's is essential: a temporal subformula's satisfaction
// relation may carry values that have since left the database (e.g. an old
// salary), and those valuations must still be able to falsify a constraint.
//
// For range-restricted (safe) constraints the evaluator never consults the
// tracker; it exists so that unsafe formulas get well-defined, engine-
// independent semantics. Its size grows with data diversity, not history
// length, and is excluded from the bounded-encoding space accounting.

#ifndef RTIC_STORAGE_DOMAIN_TRACKER_H_
#define RTIC_STORAGE_DOMAIN_TRACKER_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "storage/database.h"
#include "types/value.h"

namespace rtic {

/// Monotonically growing per-type value sets.
///
/// Thread safety: const methods (Values, AllValues, Contains, size) are
/// safe to call concurrently; Absorb/AbsorbValues require exclusive
/// access. Each checker engine owns its own tracker, so under the
/// monitor's parallel fan-out a tracker is only ever touched by the one
/// thread driving its engine.
class DomainTracker {
 public:
  /// Adds every value occurring in `db`. Tables whose (id, version) pair is
  /// unchanged since a prior Absorb are skipped — their values are already
  /// tracked, and the domain only grows.
  void Absorb(const Database& db);

  /// Adds explicit values (formula constants, registered domain values).
  void AbsorbValues(const std::vector<Value>& values);

  /// All tracked values of `type`, sorted.
  std::vector<Value> Values(ValueType type) const;

  /// Every tracked value, sorted (checkpoint serialization).
  std::vector<Value> AllValues() const;

  /// Membership test.
  bool Contains(const Value& v) const;

  /// Total tracked values across all types.
  std::size_t size() const;

  /// The values in the order they were first absorbed. Because the domain
  /// only grows, `additions()[k..]` is exactly what joined after any earlier
  /// moment at which size() was k — the basis of delta checkpoints, which
  /// serialize only the values absorbed since the parent checkpoint.
  const std::vector<Value>& additions() const { return additions_; }

 private:
  void Add(const Value& v);

  std::set<Value> values_;
  std::vector<Value> additions_;  // values_ in first-absorption order
  // Last absorbed version per table id: the skip check for Absorb.
  std::unordered_map<std::uint64_t, std::uint64_t> absorbed_versions_;
};

}  // namespace rtic

#endif  // RTIC_STORAGE_DOMAIN_TRACKER_H_
