// Table: an in-memory relation under set semantics with schema enforcement.

#ifndef RTIC_STORAGE_TABLE_H_
#define RTIC_STORAGE_TABLE_H_

#include <string>
#include <unordered_set>

#include "common/result.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace rtic {

/// A named, typed relation. Set semantics: inserting an existing tuple or
/// erasing a missing one is a no-op (reported via the bool return).
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts a tuple after type-checking it against the schema.
  /// Returns true if newly inserted, false if already present.
  Result<bool> Insert(Tuple tuple);

  /// Erases a tuple. Returns true if it was present.
  bool Erase(const Tuple& tuple);

  /// Membership test (exact match).
  bool Contains(const Tuple& tuple) const;

  /// Removes all rows.
  void Clear() { rows_.clear(); }

  /// Row iteration (unspecified order).
  const std::unordered_set<Tuple, TupleHash>& rows() const { return rows_; }

  bool operator==(const Table& o) const {
    return schema_ == o.schema_ && rows_ == o.rows_;
  }

  /// Multi-line debug dump: name, schema, rows in sorted order.
  std::string ToString() const;

 private:
  std::string name_;
  Schema schema_;
  std::unordered_set<Tuple, TupleHash> rows_;
};

}  // namespace rtic

#endif  // RTIC_STORAGE_TABLE_H_
