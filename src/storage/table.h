// Table: an in-memory relation under set semantics with schema enforcement.

#ifndef RTIC_STORAGE_TABLE_H_
#define RTIC_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_set>

#include "common/result.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace rtic {

/// A named, typed relation. Set semantics: inserting an existing tuple or
/// erasing a missing one is a no-op (reported via the bool return).
///
/// Every Table carries a process-unique `id` and a `version` that bumps on
/// each content change; (id, version) identifies one exact table content,
/// which lets evaluator caches and the domain tracker skip work for tables
/// that have not changed since they last looked. A copy gets a fresh id
/// (it is a distinct object that will diverge); a move keeps the id.
class Table {
 public:
  Table() : id_(NextId()) {}
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)), id_(NextId()) {}

  Table(const Table& o)
      : name_(o.name_), schema_(o.schema_), rows_(o.rows_), id_(NextId()) {}
  Table& operator=(const Table& o) {
    name_ = o.name_;
    schema_ = o.schema_;
    rows_ = o.rows_;
    id_ = NextId();
    version_ = 0;
    return *this;
  }
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Process-unique identity of this table object (fresh on copy).
  std::uint64_t id() const { return id_; }

  /// Bumped on every content change; (id, version) pins one exact content.
  std::uint64_t version() const { return version_; }

  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts a tuple after type-checking it against the schema.
  /// Returns true if newly inserted, false if already present.
  Result<bool> Insert(Tuple tuple);

  /// Erases a tuple. Returns true if it was present.
  bool Erase(const Tuple& tuple);

  /// Membership test (exact match).
  bool Contains(const Tuple& tuple) const;

  /// Removes all rows.
  void Clear() {
    if (!rows_.empty()) ++version_;
    rows_.clear();
  }

  /// Row iteration (unspecified order).
  const std::unordered_set<Tuple, TupleHash>& rows() const { return rows_; }

  bool operator==(const Table& o) const {
    return schema_ == o.schema_ && rows_ == o.rows_;
  }

  /// Multi-line debug dump: name, schema, rows in sorted order.
  std::string ToString() const;

 private:
  static std::uint64_t NextId();

  std::string name_;
  Schema schema_;
  std::unordered_set<Tuple, TupleHash> rows_;
  std::uint64_t id_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace rtic

#endif  // RTIC_STORAGE_TABLE_H_
