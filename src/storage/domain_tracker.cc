#include "storage/domain_tracker.h"

namespace rtic {

void DomainTracker::Add(const Value& v) {
  if (values_.insert(v).second) additions_.push_back(v);
}

void DomainTracker::Absorb(const Database& db) {
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.GetTable(name).value();
    auto it = absorbed_versions_.find(table->id());
    if (it != absorbed_versions_.end() && it->second == table->version()) {
      continue;  // content unchanged since the last absorb
    }
    for (const Tuple& row : table->rows()) {
      for (const Value& v : row.values()) Add(v);
    }
    absorbed_versions_[table->id()] = table->version();
  }
}

void DomainTracker::AbsorbValues(const std::vector<Value>& values) {
  for (const Value& v : values) Add(v);
}

std::vector<Value> DomainTracker::Values(ValueType type) const {
  std::vector<Value> out;
  for (const Value& v : values_) {
    if (v.type() == type) out.push_back(v);
  }
  return out;
}

std::vector<Value> DomainTracker::AllValues() const {
  return std::vector<Value>(values_.begin(), values_.end());
}

bool DomainTracker::Contains(const Value& v) const {
  return values_.find(v) != values_.end();
}

std::size_t DomainTracker::size() const { return values_.size(); }

}  // namespace rtic
