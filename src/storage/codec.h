// Token codec for checkpoints (engines and monitor).
//
// Bounded history encoding means a checker's complete state — auxiliary
// network, clock, cumulative domain — is small and self-contained, so a
// monitor can checkpoint it and resume after a restart WITHOUT replaying
// any history. This header provides the portable text encoding
// (whitespace-separated tokens; strings are length-prefixed and may contain
// any bytes; doubles use hex-float for exact round-trips).

#ifndef RTIC_STORAGE_CODEC_H_
#define RTIC_STORAGE_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "types/tuple.h"
#include "types/value.h"

namespace rtic {

/// Appends tokens to a checkpoint payload.
class StateWriter {
 public:
  void WriteInt(std::int64_t v);
  void WriteSize(std::size_t v) { WriteInt(static_cast<std::int64_t>(v)); }

  /// Tagged scalar: `i:<dec>`, `d:<hexfloat>`, `s:<len>:<raw>`, `b:<0|1>`.
  void WriteValue(const Value& v);

  /// Arity followed by each value.
  void WriteTuple(const Tuple& t);

  /// Raw (length-prefixed) string token.
  void WriteString(std::string_view s);

  const std::string& str() const { return out_; }

 private:
  std::string out_;
};

/// Consumes tokens from a checkpoint payload; every reader returns
/// InvalidArgument on malformed input.
class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  Result<std::int64_t> ReadInt();
  Result<Value> ReadValue();
  Result<Tuple> ReadTuple();
  Result<std::string> ReadString();

  /// True when all tokens are consumed.
  bool AtEnd();

 private:
  void SkipSpace();
  Result<std::string> NextToken();

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace rtic

#endif  // RTIC_STORAGE_CODEC_H_
