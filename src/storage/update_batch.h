// UpdateBatch: the delta that advances a history from one state to the next —
// a timestamp plus per-table insert and delete sets (a "transaction").

#ifndef RTIC_STORAGE_UPDATE_BATCH_H_
#define RTIC_STORAGE_UPDATE_BATCH_H_

#include <map>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/result.h"
#include "storage/codec.h"
#include "storage/database.h"

namespace rtic {

/// One transition's worth of changes. Semantics of Apply():
///   1. deletes are removed first (deleting an absent tuple is a no-op),
///   2. inserts are added (inserting a present tuple is a no-op).
/// A tuple listed in both sets therefore ends up present.
class UpdateBatch {
 public:
  UpdateBatch() = default;
  explicit UpdateBatch(Timestamp timestamp) : timestamp_(timestamp) {}

  Timestamp timestamp() const { return timestamp_; }
  void set_timestamp(Timestamp t) { timestamp_ = t; }

  /// Queues a tuple insertion into `table`.
  void Insert(const std::string& table, Tuple tuple);

  /// Queues a tuple deletion from `table`.
  void Delete(const std::string& table, Tuple tuple);

  /// True iff no changes are queued (a pure clock tick).
  bool IsEmpty() const;

  /// Total queued operations.
  std::size_t OperationCount() const;

  /// Tables this batch touches, sorted.
  std::vector<std::string> TouchedTables() const;

  const std::map<std::string, std::vector<Tuple>>& inserts() const {
    return inserts_;
  }
  const std::map<std::string, std::vector<Tuple>>& deletes() const {
    return deletes_;
  }

  /// Checks that every operation names a known table and matches its
  /// schema — exactly the preconditions under which Apply() cannot fail.
  /// The durable monitor validates before logging so the WAL only ever
  /// contains applicable batches.
  Status Validate(const Database& db) const;

  /// Applies the batch to `db` (deletes, then inserts). Fails without
  /// side effects on unknown tables or schema-mismatched tuples.
  Status Apply(Database* db) const;

  /// Serializes the batch as codec tokens (the WAL record payload).
  void EncodeTo(StateWriter* w) const;

  /// Inverse of EncodeTo. Fails with InvalidArgument on malformed input.
  static Result<UpdateBatch> DecodeFrom(StateReader* r);

  /// Debug form listing every operation.
  std::string ToString() const;

 private:
  Timestamp timestamp_ = 0;
  std::map<std::string, std::vector<Tuple>> inserts_;
  std::map<std::string, std::vector<Tuple>> deletes_;
};

}  // namespace rtic

#endif  // RTIC_STORAGE_UPDATE_BATCH_H_
