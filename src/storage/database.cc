#include "storage/database.h"

#include <set>

namespace rtic {

Status Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_.emplace(name, Table(name, std::move(schema)));
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

std::size_t Database::TotalRows() const {
  std::size_t n = 0;
  for (const auto& [name, table] : tables_) n += table.size();
  return n;
}

std::vector<Value> Database::ActiveDomain(ValueType type) const {
  std::set<Value> values;
  for (const auto& [name, table] : tables_) {
    const Schema& schema = table.schema();
    std::vector<std::size_t> cols;
    for (std::size_t i = 0; i < schema.size(); ++i) {
      if (schema.column(i).type == type) cols.push_back(i);
    }
    if (cols.empty()) continue;
    for (const Tuple& row : table.rows()) {
      for (std::size_t c : cols) values.insert(row.at(c));
    }
  }
  return std::vector<Value>(values.begin(), values.end());
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, table] : tables_) {
    out += table.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace rtic
