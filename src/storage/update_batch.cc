#include "storage/update_batch.h"

#include <set>

namespace rtic {

void UpdateBatch::Insert(const std::string& table, Tuple tuple) {
  inserts_[table].push_back(std::move(tuple));
}

void UpdateBatch::Delete(const std::string& table, Tuple tuple) {
  deletes_[table].push_back(std::move(tuple));
}

bool UpdateBatch::IsEmpty() const {
  return inserts_.empty() && deletes_.empty();
}

std::size_t UpdateBatch::OperationCount() const {
  std::size_t n = 0;
  for (const auto& [t, v] : inserts_) n += v.size();
  for (const auto& [t, v] : deletes_) n += v.size();
  return n;
}

std::vector<std::string> UpdateBatch::TouchedTables() const {
  std::set<std::string> names;
  for (const auto& [t, v] : inserts_) names.insert(t);
  for (const auto& [t, v] : deletes_) names.insert(t);
  return std::vector<std::string>(names.begin(), names.end());
}

Status UpdateBatch::Apply(Database* db) const {
  // Validate everything before mutating so a failed Apply has no effect.
  for (const auto& [name, tuples] : deletes_) {
    RTIC_ASSIGN_OR_RETURN(const Table* table, db->GetTable(name));
    for (const Tuple& t : tuples) {
      if (!t.Matches(table->schema())) {
        return Status::InvalidArgument(
            "delete tuple " + t.ToString() + " does not match schema of " +
            name);
      }
    }
  }
  for (const auto& [name, tuples] : inserts_) {
    RTIC_ASSIGN_OR_RETURN(const Table* table, db->GetTable(name));
    for (const Tuple& t : tuples) {
      if (!t.Matches(table->schema())) {
        return Status::InvalidArgument(
            "insert tuple " + t.ToString() + " does not match schema of " +
            name);
      }
    }
  }
  for (const auto& [name, tuples] : deletes_) {
    Table* table = db->GetMutableTable(name).value();
    for (const Tuple& t : tuples) table->Erase(t);
  }
  for (const auto& [name, tuples] : inserts_) {
    Table* table = db->GetMutableTable(name).value();
    for (const Tuple& t : tuples) {
      Result<bool> r = table->Insert(t);
      if (!r.ok()) return r.status();
    }
  }
  return Status::OK();
}

std::string UpdateBatch::ToString() const {
  std::string out = "batch@" + std::to_string(timestamp_) + " {\n";
  for (const auto& [name, tuples] : deletes_) {
    for (const Tuple& t : tuples) {
      out += "  -" + name + t.ToString() + "\n";
    }
  }
  for (const auto& [name, tuples] : inserts_) {
    for (const Tuple& t : tuples) {
      out += "  +" + name + t.ToString() + "\n";
    }
  }
  out += "}";
  return out;
}

}  // namespace rtic
