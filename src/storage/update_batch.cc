#include "storage/update_batch.h"

#include <set>

namespace rtic {
namespace {

constexpr char kBatchMagic[] = "RTICBAT1";

// Reads a non-negative count written by WriteSize.
Result<std::size_t> ReadCount(StateReader* r, const char* what) {
  RTIC_ASSIGN_OR_RETURN(std::int64_t n, r->ReadInt());
  if (n < 0) {
    return Status::InvalidArgument(std::string("negative ") + what +
                                   " count in update batch");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

void UpdateBatch::Insert(const std::string& table, Tuple tuple) {
  inserts_[table].push_back(std::move(tuple));
}

void UpdateBatch::Delete(const std::string& table, Tuple tuple) {
  deletes_[table].push_back(std::move(tuple));
}

bool UpdateBatch::IsEmpty() const {
  return inserts_.empty() && deletes_.empty();
}

std::size_t UpdateBatch::OperationCount() const {
  std::size_t n = 0;
  for (const auto& [t, v] : inserts_) n += v.size();
  for (const auto& [t, v] : deletes_) n += v.size();
  return n;
}

std::vector<std::string> UpdateBatch::TouchedTables() const {
  std::set<std::string> names;
  for (const auto& [t, v] : inserts_) names.insert(t);
  for (const auto& [t, v] : deletes_) names.insert(t);
  return std::vector<std::string>(names.begin(), names.end());
}

Status UpdateBatch::Validate(const Database& db) const {
  for (const auto& [name, tuples] : deletes_) {
    RTIC_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    for (const Tuple& t : tuples) {
      if (!t.Matches(table->schema())) {
        return Status::InvalidArgument(
            "delete tuple " + t.ToString() + " does not match schema of " +
            name);
      }
    }
  }
  for (const auto& [name, tuples] : inserts_) {
    RTIC_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    for (const Tuple& t : tuples) {
      if (!t.Matches(table->schema())) {
        return Status::InvalidArgument(
            "insert tuple " + t.ToString() + " does not match schema of " +
            name);
      }
    }
  }
  return Status::OK();
}

Status UpdateBatch::Apply(Database* db) const {
  // Validate everything before mutating so a failed Apply has no effect.
  RTIC_RETURN_IF_ERROR(Validate(*db));
  for (const auto& [name, tuples] : deletes_) {
    Table* table = db->GetMutableTable(name).value();
    for (const Tuple& t : tuples) table->Erase(t);
  }
  for (const auto& [name, tuples] : inserts_) {
    Table* table = db->GetMutableTable(name).value();
    for (const Tuple& t : tuples) {
      Result<bool> r = table->Insert(t);
      if (!r.ok()) return r.status();
    }
  }
  return Status::OK();
}

void UpdateBatch::EncodeTo(StateWriter* w) const {
  w->WriteString(kBatchMagic);
  w->WriteInt(timestamp_);
  for (const auto* ops : {&deletes_, &inserts_}) {
    w->WriteSize(ops->size());
    for (const auto& [name, tuples] : *ops) {
      w->WriteString(name);
      w->WriteSize(tuples.size());
      for (const Tuple& t : tuples) w->WriteTuple(t);
    }
  }
}

Result<UpdateBatch> UpdateBatch::DecodeFrom(StateReader* r) {
  RTIC_ASSIGN_OR_RETURN(std::string magic, r->ReadString());
  if (magic != kBatchMagic) {
    return Status::InvalidArgument("bad update-batch magic: " + magic);
  }
  RTIC_ASSIGN_OR_RETURN(std::int64_t ts, r->ReadInt());
  UpdateBatch batch(static_cast<Timestamp>(ts));
  for (auto* ops : {&batch.deletes_, &batch.inserts_}) {
    RTIC_ASSIGN_OR_RETURN(std::size_t n_tables, ReadCount(r, "table"));
    for (std::size_t i = 0; i < n_tables; ++i) {
      RTIC_ASSIGN_OR_RETURN(std::string name, r->ReadString());
      RTIC_ASSIGN_OR_RETURN(std::size_t n_tuples, ReadCount(r, "tuple"));
      std::vector<Tuple>& tuples = (*ops)[name];
      tuples.reserve(n_tuples);
      for (std::size_t j = 0; j < n_tuples; ++j) {
        RTIC_ASSIGN_OR_RETURN(Tuple t, r->ReadTuple());
        tuples.push_back(std::move(t));
      }
    }
  }
  return batch;
}

std::string UpdateBatch::ToString() const {
  std::string out = "batch@" + std::to_string(timestamp_) + " {\n";
  for (const auto& [name, tuples] : deletes_) {
    for (const Tuple& t : tuples) {
      out += "  -" + name + t.ToString() + "\n";
    }
  }
  for (const auto& [name, tuples] : inserts_) {
    for (const Tuple& t : tuples) {
      out += "  +" + name + t.ToString() + "\n";
    }
  }
  out += "}";
  return out;
}

}  // namespace rtic
