#include "storage/table.h"

#include <algorithm>
#include <vector>

namespace rtic {

Result<bool> Table::Insert(Tuple tuple) {
  if (!tuple.Matches(schema_)) {
    return Status::InvalidArgument("tuple " + tuple.ToString() +
                                   " does not match schema " +
                                   schema_.ToString() + " of table " + name_);
  }
  return rows_.insert(std::move(tuple)).second;
}

bool Table::Erase(const Tuple& tuple) { return rows_.erase(tuple) > 0; }

bool Table::Contains(const Tuple& tuple) const {
  return rows_.find(tuple) != rows_.end();
}

std::string Table::ToString() const {
  std::vector<Tuple> sorted(rows_.begin(), rows_.end());
  std::sort(sorted.begin(), sorted.end());
  std::string out = name_ + schema_.ToString() + " {\n";
  for (const Tuple& t : sorted) {
    out += "  " + t.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace rtic
