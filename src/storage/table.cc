#include "storage/table.h"

#include <algorithm>
#include <atomic>
#include <vector>

namespace rtic {

std::uint64_t Table::NextId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Result<bool> Table::Insert(Tuple tuple) {
  if (!tuple.Matches(schema_)) {
    return Status::InvalidArgument("tuple " + tuple.ToString() +
                                   " does not match schema " +
                                   schema_.ToString() + " of table " + name_);
  }
  bool inserted = rows_.insert(std::move(tuple)).second;
  if (inserted) ++version_;
  return inserted;
}

bool Table::Erase(const Tuple& tuple) {
  bool erased = rows_.erase(tuple) > 0;
  if (erased) ++version_;
  return erased;
}

bool Table::Contains(const Tuple& tuple) const {
  return rows_.find(tuple) != rows_.end();
}

std::string Table::ToString() const {
  std::vector<Tuple> sorted(rows_.begin(), rows_.end());
  std::sort(sorted.begin(), sorted.end());
  std::string out = name_ + schema_.ToString() + " {\n";
  for (const Tuple& t : sorted) {
    out += "  " + t.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace rtic
