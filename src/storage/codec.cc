#include "storage/codec.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace rtic {

void StateWriter::WriteInt(std::int64_t v) {
  out_ += std::to_string(v);
  out_ += ' ';
}

void StateWriter::WriteString(std::string_view s) {
  out_ += std::to_string(s.size());
  out_ += ':';
  out_ += s;
  out_ += ' ';
}

void StateWriter::WriteValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      out_ += "i:";
      out_ += std::to_string(v.AsInt64());
      break;
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "d:%a", v.AsDouble());
      out_ += buf;
      break;
    }
    case ValueType::kString:
      out_ += "s:";
      out_ += std::to_string(v.AsString().size());
      out_ += ':';
      out_ += v.AsString();
      break;
    case ValueType::kBool:
      out_ += v.AsBool() ? "b:1" : "b:0";
      break;
  }
  out_ += ' ';
}

void StateWriter::WriteTuple(const Tuple& t) {
  WriteSize(t.size());
  for (const Value& v : t.values()) WriteValue(v);
}

void StateReader::SkipSpace() {
  while (pos_ < data_.size() &&
         std::isspace(static_cast<unsigned char>(data_[pos_]))) {
    ++pos_;
  }
}

bool StateReader::AtEnd() {
  SkipSpace();
  return pos_ >= data_.size();
}

Result<std::string> StateReader::NextToken() {
  SkipSpace();
  if (pos_ >= data_.size()) {
    return Status::InvalidArgument("checkpoint truncated");
  }
  std::size_t start = pos_;
  while (pos_ < data_.size() &&
         !std::isspace(static_cast<unsigned char>(data_[pos_]))) {
    ++pos_;
  }
  return std::string(data_.substr(start, pos_ - start));
}

Result<std::int64_t> StateReader::ReadInt() {
  RTIC_ASSIGN_OR_RETURN(std::string token, NextToken());
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer token: " + token);
  }
  return static_cast<std::int64_t>(v);
}

Result<std::string> StateReader::ReadString() {
  // <len>:<raw bytes> — raw bytes may contain whitespace, so parse by
  // length, not by token.
  SkipSpace();
  std::size_t colon = data_.find(':', pos_);
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("bad string token (no length)");
  }
  std::string len_str(data_.substr(pos_, colon - pos_));
  errno = 0;
  char* end = nullptr;
  long long len = std::strtoll(len_str.c_str(), &end, 10);
  if (errno != 0 || end == len_str.c_str() || *end != '\0' || len < 0) {
    return Status::InvalidArgument("bad string length: " + len_str);
  }
  std::size_t body = colon + 1;
  if (body + static_cast<std::size_t>(len) > data_.size()) {
    return Status::InvalidArgument("string extends past checkpoint end");
  }
  pos_ = body + static_cast<std::size_t>(len);
  // The writer always delimits the raw bytes with whitespace; anything else
  // glued on means the declared length is wrong (corruption).
  if (pos_ < data_.size() &&
      !std::isspace(static_cast<unsigned char>(data_[pos_]))) {
    return Status::InvalidArgument("string not followed by a delimiter");
  }
  return std::string(data_.substr(body, static_cast<std::size_t>(len)));
}

Result<Value> StateReader::ReadValue() {
  SkipSpace();
  if (pos_ + 2 > data_.size() || data_[pos_ + 1] != ':') {
    return Status::InvalidArgument("bad value token");
  }
  char tag = data_[pos_];
  pos_ += 2;
  switch (tag) {
    case 'i': {
      std::size_t start = pos_;
      while (pos_ < data_.size() &&
             !std::isspace(static_cast<unsigned char>(data_[pos_]))) {
        ++pos_;
      }
      std::string token(data_.substr(start, pos_ - start));
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != 0 || end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int value: " + token);
      }
      return Value::Int64(v);
    }
    case 'd': {
      std::size_t start = pos_;
      while (pos_ < data_.size() &&
             !std::isspace(static_cast<unsigned char>(data_[pos_]))) {
        ++pos_;
      }
      std::string token(data_.substr(start, pos_ - start));
      char* end = nullptr;
      double v = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double value: " + token);
      }
      return Value::Double(v);
    }
    case 's': {
      RTIC_ASSIGN_OR_RETURN(std::string s, ReadString());
      return Value::String(std::move(s));
    }
    case 'b': {
      if (pos_ >= data_.size()) {
        return Status::InvalidArgument("bad bool value");
      }
      char c = data_[pos_++];
      if (c != '0' && c != '1') {
        return Status::InvalidArgument("bad bool value");
      }
      // Reject trailing garbage ("b:10") instead of leaving it as the
      // next token.
      if (pos_ < data_.size() &&
          !std::isspace(static_cast<unsigned char>(data_[pos_]))) {
        return Status::InvalidArgument("bad bool value");
      }
      return Value::Bool(c == '1');
    }
    default:
      return Status::InvalidArgument(std::string("unknown value tag: ") +
                                     tag);
  }
}

Result<Tuple> StateReader::ReadTuple() {
  RTIC_ASSIGN_OR_RETURN(std::int64_t arity, ReadInt());
  if (arity < 0 || arity > 1'000'000) {
    return Status::InvalidArgument("bad tuple arity");
  }
  std::vector<Value> values;
  values.reserve(static_cast<std::size_t>(arity));
  for (std::int64_t i = 0; i < arity; ++i) {
    RTIC_ASSIGN_OR_RETURN(Value v, ReadValue());
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

}  // namespace rtic
