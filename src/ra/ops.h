// Relational algebra over named-column Relations. All binary operators match
// columns *by name* (natural-join style); types of same-named columns must
// agree. Hash-based implementations throughout.

#ifndef RTIC_RA_OPS_H_
#define RTIC_RA_OPS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ra/relation.h"

namespace rtic {
namespace ra {

/// Natural join: rows agreeing on all same-named columns. Output columns:
/// a's columns, then b's columns not present in a. No common columns => cross
/// product (in particular joining with the zero-column TRUE relation is the
/// identity).
Result<Relation> NaturalJoin(const Relation& a, const Relation& b);

/// Anti-join (a ▷ b): rows of `a` with no b-row agreeing on the common
/// columns. No common columns: returns `a` if b is empty, else empty.
/// This is the negation workhorse: eval(φ ∧ ¬ψ) = eval(φ) ▷ eval(ψ).
Result<Relation> AntiJoin(const Relation& a, const Relation& b);

/// Semi-join (a ⋉ b): rows of `a` with at least one agreeing b-row.
Result<Relation> SemiJoin(const Relation& a, const Relation& b);

/// Union. `b`'s columns must be a (name+type) permutation of `a`'s; rows are
/// reordered to a's column order.
Result<Relation> Union(const Relation& a, const Relation& b);

/// Set difference (same column compatibility rule as Union).
Result<Relation> Difference(const Relation& a, const Relation& b);

/// Intersection (same column compatibility rule as Union).
Result<Relation> Intersect(const Relation& a, const Relation& b);

/// Projection onto `columns` (each must exist); duplicates collapse.
Result<Relation> Project(const Relation& a,
                         const std::vector<std::string>& columns);

/// Renames columns per `mapping` (old name -> new name); unmapped columns
/// keep their names. Fails if the result has duplicate names.
Result<Relation> Rename(const Relation& a,
                        const std::map<std::string, std::string>& mapping);

/// Filters rows by an arbitrary predicate.
Relation Select(const Relation& a,
                const std::function<bool(const Tuple&)>& pred);

/// Cross product; column sets must be disjoint.
Result<Relation> CrossProduct(const Relation& a, const Relation& b);

/// Single-column relation `name : type` holding `values` (the active-domain
/// building block).
Relation FromValues(const std::string& name, ValueType type,
                    const std::vector<Value>& values);

}  // namespace ra
}  // namespace rtic

#endif  // RTIC_RA_OPS_H_
