#include "ra/relation.h"

#include <algorithm>
#include <unordered_set>

namespace rtic {

Result<Relation> Relation::Make(std::vector<Column> columns) {
  std::unordered_set<std::string> seen;
  for (const Column& c : columns) {
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument("duplicate relation column: " + c.name);
    }
  }
  return Relation(std::move(columns));
}

Relation Relation::True() {
  Relation r;
  r.rows_.insert(Tuple{});
  return r;
}

std::optional<std::size_t> Relation::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> Relation::ColumnNames() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.name);
  return out;
}

Status Relation::Insert(Tuple row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match relation arity " + std::to_string(columns_.size()));
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (row.at(i).type() != columns_[i].type) {
      return Status::InvalidArgument(
          "row value " + row.at(i).ToString() + " at column " +
          columns_[i].name + " has wrong type");
    }
  }
  rows_.insert(std::move(row));
  return Status::OK();
}

std::vector<Tuple> Relation::SortedRows() const {
  std::vector<Tuple> out(rows_.begin(), rows_.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool Relation::operator==(const Relation& o) const {
  if (columns_.size() != o.columns_.size()) return false;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (!(columns_[i] == o.columns_[i])) return false;
  }
  return rows_ == o.rows_;
}

std::string Relation::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ": ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ") {\n";
  for (const Tuple& t : SortedRows()) {
    out += "  " + t.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace rtic
