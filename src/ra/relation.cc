#include "ra/relation.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"

namespace rtic {

std::size_t HashTupleKey(const Tuple& t,
                         const std::vector<std::size_t>& positions) {
  std::size_t seed = positions.size();
  for (std::size_t p : positions) {
    std::size_t h = t.at(p).Hash();
    HashCombine(&seed, h);
  }
  return seed;
}

const std::unordered_set<Tuple, TupleHash>& Relation::EmptyRows() {
  static const std::unordered_set<Tuple, TupleHash> kEmpty;
  return kEmpty;
}

const Relation::Index& Relation::EmptyIndex() {
  static const Index kEmpty;
  return kEmpty;
}

Relation::Rep& Relation::MutableRep() {
  if (!rep_) {
    rep_ = std::make_shared<Rep>();
  } else if (rep_.use_count() > 1) {
    // Copy-on-write detach: rows are copied (sharing tuple payloads);
    // cached indexes stay with the old storage.
    auto fresh = std::make_shared<Rep>();
    fresh->rows = rep_->rows;
    rep_ = std::move(fresh);
  }
  return *rep_;
}

Result<Relation> Relation::Make(std::vector<Column> columns) {
  std::unordered_set<std::string> seen;
  for (const Column& c : columns) {
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument("duplicate relation column: " + c.name);
    }
  }
  return Relation(std::move(columns));
}

Relation Relation::True() {
  Relation r;
  r.InsertUnchecked(Tuple{});
  return r;
}

std::optional<std::size_t> Relation::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> Relation::ColumnNames() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.name);
  return out;
}

Status Relation::Insert(Tuple row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match relation arity " + std::to_string(columns_.size()));
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (row.at(i).type() != columns_[i].type) {
      return Status::InvalidArgument(
          "row value " + row.at(i).ToString() + " at column " +
          columns_[i].name + " has wrong type");
    }
  }
  InsertUnchecked(std::move(row));
  return Status::OK();
}

void Relation::InsertUnchecked(Tuple row) {
  Rep& rep = MutableRep();
  auto r = rep.rows.insert(std::move(row));
  if (r.second && !rep.indexes.empty()) {
    // Maintain cached indexes incrementally; unordered_set nodes are stable,
    // so the stored pointer stays valid across later inserts.
    const Tuple& stored = *r.first;
    for (const auto& idx : rep.indexes) {
      idx->buckets[HashTupleKey(stored, idx->key)].push_back(&stored);
    }
  }
}

bool Relation::Erase(const Tuple& row) {
  if (!rep_ || rep_->rows.find(row) == rep_->rows.end()) return false;
  Rep& rep = MutableRep();  // may detach; re-find in the (possibly new) rep
  auto it = rep.rows.find(row);
  if (!rep.indexes.empty()) {
    const Tuple* stored = &*it;
    for (const auto& idx : rep.indexes) {
      auto bucket = idx->buckets.find(HashTupleKey(*stored, idx->key));
      if (bucket == idx->buckets.end()) continue;
      auto& ptrs = bucket->second;
      for (std::size_t i = 0; i < ptrs.size(); ++i) {
        if (ptrs[i] == stored) {
          ptrs[i] = ptrs.back();
          ptrs.pop_back();
          break;
        }
      }
      if (ptrs.empty()) idx->buckets.erase(bucket);
    }
  }
  rep.rows.erase(it);
  return true;
}

const Relation::Index& Relation::GetIndex(
    const std::vector<std::size_t>& key) const {
  if (!rep_) return EmptyIndex();
  std::lock_guard<std::mutex> lock(rep_->mu);
  for (const auto& idx : rep_->indexes) {
    if (idx->key == key) return *idx;
  }
  auto idx = std::make_unique<Index>();
  idx->key = key;
  idx->buckets.reserve(rep_->rows.size());
  for (const Tuple& row : rep_->rows) {
    idx->buckets[HashTupleKey(row, key)].push_back(&row);
  }
  rep_->indexes.push_back(std::move(idx));
  return *rep_->indexes.back();
}

std::vector<Tuple> Relation::SortedRows() const {
  const auto& rows_set = rows();
  std::vector<Tuple> out(rows_set.begin(), rows_set.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool Relation::operator==(const Relation& o) const {
  if (columns_.size() != o.columns_.size()) return false;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (!(columns_[i] == o.columns_[i])) return false;
  }
  if (rep_ == o.rep_) return true;
  return rows() == o.rows();
}

std::string Relation::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ": ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ") {\n";
  for (const Tuple& t : SortedRows()) {
    out += "  " + t.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace rtic
