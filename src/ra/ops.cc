#include "ra/ops.h"

#include <unordered_map>
#include <unordered_set>

namespace rtic {
namespace ra {

namespace {

/// Positions of the columns common to a and b, plus b's non-common columns.
struct JoinPlan {
  std::vector<std::size_t> a_key;       // key column positions in a
  std::vector<std::size_t> b_key;       // matching key positions in b
  std::vector<std::size_t> b_rest;      // b columns not in a
};

Result<JoinPlan> PlanJoin(const Relation& a, const Relation& b) {
  JoinPlan plan;
  std::unordered_set<std::size_t> b_used;
  for (std::size_t i = 0; i < a.columns().size(); ++i) {
    auto j = b.IndexOf(a.columns()[i].name);
    if (!j.has_value()) continue;
    if (a.columns()[i].type != b.columns()[*j].type) {
      return Status::InvalidArgument("join column " + a.columns()[i].name +
                                     " has mismatched types");
    }
    plan.a_key.push_back(i);
    plan.b_key.push_back(*j);
    b_used.insert(*j);
  }
  for (std::size_t j = 0; j < b.columns().size(); ++j) {
    if (b_used.find(j) == b_used.end()) plan.b_rest.push_back(j);
  }
  return plan;
}

Tuple ExtractKey(const Tuple& row, const std::vector<std::size_t>& positions) {
  std::vector<Value> vals;
  vals.reserve(positions.size());
  for (std::size_t p : positions) vals.push_back(row.at(p));
  return Tuple(std::move(vals));
}

/// Hash index: join key -> rows of b.
std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> BuildIndex(
    const Relation& b, const std::vector<std::size_t>& key) {
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
  for (const Tuple& row : b.rows()) {
    index[ExtractKey(row, key)].push_back(&row);
  }
  return index;
}

/// Maps b's column order onto a's order for Union/Difference/Intersect.
/// Fails unless b's columns are a name+type permutation of a's.
Result<std::vector<std::size_t>> AlignColumns(const Relation& a,
                                              const Relation& b) {
  if (a.columns().size() != b.columns().size()) {
    return Status::InvalidArgument(
        "relations have different arities: " +
        std::to_string(a.columns().size()) + " vs " +
        std::to_string(b.columns().size()));
  }
  std::vector<std::size_t> b_pos(a.columns().size());
  for (std::size_t i = 0; i < a.columns().size(); ++i) {
    auto j = b.IndexOf(a.columns()[i].name);
    if (!j.has_value()) {
      return Status::InvalidArgument("column " + a.columns()[i].name +
                                     " missing from right-hand relation");
    }
    if (b.columns()[*j].type != a.columns()[i].type) {
      return Status::InvalidArgument("column " + a.columns()[i].name +
                                     " has mismatched types");
    }
    b_pos[i] = *j;
  }
  return b_pos;
}

Tuple Reorder(const Tuple& row, const std::vector<std::size_t>& positions) {
  std::vector<Value> vals;
  vals.reserve(positions.size());
  for (std::size_t p : positions) vals.push_back(row.at(p));
  return Tuple(std::move(vals));
}

}  // namespace

Result<Relation> NaturalJoin(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(a, b));
  std::vector<Column> out_cols = a.columns();
  for (std::size_t j : plan.b_rest) out_cols.push_back(b.columns()[j]);
  Relation out(std::move(out_cols));

  // Iterate the smaller side against an index on the larger when keys exist.
  auto index = BuildIndex(b, plan.b_key);
  for (const Tuple& arow : a.rows()) {
    auto it = index.find(ExtractKey(arow, plan.a_key));
    if (it == index.end()) continue;
    for (const Tuple* brow : it->second) {
      std::vector<Value> vals = arow.values();
      vals.reserve(vals.size() + plan.b_rest.size());
      for (std::size_t j : plan.b_rest) vals.push_back(brow->at(j));
      out.InsertUnchecked(Tuple(std::move(vals)));
    }
  }
  return out;
}

Result<Relation> AntiJoin(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(a, b));
  Relation out(a.columns());
  std::unordered_set<Tuple, TupleHash> keys;
  for (const Tuple& brow : b.rows()) {
    keys.insert(ExtractKey(brow, plan.b_key));
  }
  for (const Tuple& arow : a.rows()) {
    if (keys.find(ExtractKey(arow, plan.a_key)) == keys.end()) {
      out.InsertUnchecked(arow);
    }
  }
  return out;
}

Result<Relation> SemiJoin(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(a, b));
  Relation out(a.columns());
  std::unordered_set<Tuple, TupleHash> keys;
  for (const Tuple& brow : b.rows()) {
    keys.insert(ExtractKey(brow, plan.b_key));
  }
  for (const Tuple& arow : a.rows()) {
    if (keys.find(ExtractKey(arow, plan.a_key)) != keys.end()) {
      out.InsertUnchecked(arow);
    }
  }
  return out;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::size_t> b_pos, AlignColumns(a, b));
  Relation out(a.columns());
  for (const Tuple& row : a.rows()) out.InsertUnchecked(row);
  for (const Tuple& row : b.rows()) out.InsertUnchecked(Reorder(row, b_pos));
  return out;
}

Result<Relation> Difference(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::size_t> b_pos, AlignColumns(a, b));
  std::unordered_set<Tuple, TupleHash> b_rows;
  for (const Tuple& row : b.rows()) b_rows.insert(Reorder(row, b_pos));
  Relation out(a.columns());
  for (const Tuple& row : a.rows()) {
    if (b_rows.find(row) == b_rows.end()) out.InsertUnchecked(row);
  }
  return out;
}

Result<Relation> Intersect(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::size_t> b_pos, AlignColumns(a, b));
  std::unordered_set<Tuple, TupleHash> b_rows;
  for (const Tuple& row : b.rows()) b_rows.insert(Reorder(row, b_pos));
  Relation out(a.columns());
  for (const Tuple& row : a.rows()) {
    if (b_rows.find(row) != b_rows.end()) out.InsertUnchecked(row);
  }
  return out;
}

Result<Relation> Project(const Relation& a,
                         const std::vector<std::string>& columns) {
  std::vector<std::size_t> positions;
  std::vector<Column> out_cols;
  positions.reserve(columns.size());
  for (const std::string& name : columns) {
    auto i = a.IndexOf(name);
    if (!i.has_value()) {
      return Status::InvalidArgument("project: no such column: " + name);
    }
    positions.push_back(*i);
    out_cols.push_back(a.columns()[*i]);
  }
  RTIC_ASSIGN_OR_RETURN(Relation out, Relation::Make(std::move(out_cols)));
  for (const Tuple& row : a.rows()) {
    out.InsertUnchecked(Reorder(row, positions));
  }
  return out;
}

Result<Relation> Rename(const Relation& a,
                        const std::map<std::string, std::string>& mapping) {
  std::vector<Column> out_cols = a.columns();
  for (auto& col : out_cols) {
    auto it = mapping.find(col.name);
    if (it != mapping.end()) col.name = it->second;
  }
  RTIC_ASSIGN_OR_RETURN(Relation out, Relation::Make(std::move(out_cols)));
  for (const Tuple& row : a.rows()) out.InsertUnchecked(row);
  return out;
}

Relation Select(const Relation& a,
                const std::function<bool(const Tuple&)>& pred) {
  Relation out(a.columns());
  for (const Tuple& row : a.rows()) {
    if (pred(row)) out.InsertUnchecked(row);
  }
  return out;
}

Result<Relation> CrossProduct(const Relation& a, const Relation& b) {
  for (const Column& c : b.columns()) {
    if (a.IndexOf(c.name).has_value()) {
      return Status::InvalidArgument("cross product: shared column " + c.name);
    }
  }
  return NaturalJoin(a, b);  // no common columns => cross product
}

Relation FromValues(const std::string& name, ValueType type,
                    const std::vector<Value>& values) {
  Relation out({Column{name, type}});
  for (const Value& v : values) {
    out.InsertUnchecked(Tuple{v});
  }
  return out;
}

}  // namespace ra
}  // namespace rtic
