#include "ra/ops.h"

#include <unordered_map>
#include <unordered_set>

namespace rtic {
namespace ra {

namespace {

/// Positions of the columns common to a and b, plus b's non-common columns.
struct JoinPlan {
  std::vector<std::size_t> a_key;       // key column positions in a
  std::vector<std::size_t> b_key;       // matching key positions in b
  std::vector<std::size_t> b_rest;      // b columns not in a
};

Result<JoinPlan> PlanJoin(const Relation& a, const Relation& b) {
  JoinPlan plan;
  std::unordered_set<std::size_t> b_used;
  for (std::size_t i = 0; i < a.columns().size(); ++i) {
    auto j = b.IndexOf(a.columns()[i].name);
    if (!j.has_value()) continue;
    if (a.columns()[i].type != b.columns()[*j].type) {
      return Status::InvalidArgument("join column " + a.columns()[i].name +
                                     " has mismatched types");
    }
    plan.a_key.push_back(i);
    plan.b_key.push_back(*j);
    b_used.insert(*j);
  }
  for (std::size_t j = 0; j < b.columns().size(); ++j) {
    if (b_used.find(j) == b_used.end()) plan.b_rest.push_back(j);
  }
  return plan;
}

/// Element-wise key equality for an index-probe hit (bucket hashes collide).
bool KeyEquals(const Tuple& a, const std::vector<std::size_t>& a_key,
               const Tuple& b, const std::vector<std::size_t>& b_key) {
  for (std::size_t i = 0; i < a_key.size(); ++i) {
    if (a.at(a_key[i]) != b.at(b_key[i])) return false;
  }
  return true;
}

/// True iff `positions` is 0, 1, ..., n-1 (reordering would be a no-op).
bool IsIdentity(const std::vector<std::size_t>& positions) {
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] != i) return false;
  }
  return true;
}

/// Maps b's column order onto a's order for Union/Difference/Intersect.
/// Fails unless b's columns are a name+type permutation of a's.
Result<std::vector<std::size_t>> AlignColumns(const Relation& a,
                                              const Relation& b) {
  if (a.columns().size() != b.columns().size()) {
    return Status::InvalidArgument(
        "relations have different arities: " +
        std::to_string(a.columns().size()) + " vs " +
        std::to_string(b.columns().size()));
  }
  std::vector<std::size_t> b_pos(a.columns().size());
  for (std::size_t i = 0; i < a.columns().size(); ++i) {
    auto j = b.IndexOf(a.columns()[i].name);
    if (!j.has_value()) {
      return Status::InvalidArgument("column " + a.columns()[i].name +
                                     " missing from right-hand relation");
    }
    if (b.columns()[*j].type != a.columns()[i].type) {
      return Status::InvalidArgument("column " + a.columns()[i].name +
                                     " has mismatched types");
    }
    b_pos[i] = *j;
  }
  return b_pos;
}

Tuple Reorder(const Tuple& row, const std::vector<std::size_t>& positions) {
  std::vector<Value> vals;
  vals.reserve(positions.size());
  for (std::size_t p : positions) vals.push_back(row.at(p));
  return Tuple(std::move(vals));
}

/// True when the join key is the full arity of both sides in identical
/// order: the probe row IS the key, so b's row set answers membership
/// directly and no index build is needed.
bool FullRowKey(const Relation& a, const Relation& b, const JoinPlan& plan) {
  return plan.a_key.size() == a.arity() && a.arity() == b.arity() &&
         IsIdentity(plan.a_key) && IsIdentity(plan.b_key);
}

/// "Does any b-row agree with `arow` on the join key?" via b's cached index.
bool HasKeyMatch(const Tuple& arow, const JoinPlan& plan,
                 const Relation::Index& index) {
  auto it = index.buckets.find(HashTupleKey(arow, plan.a_key));
  if (it == index.buckets.end()) return false;
  for (const Tuple* brow : it->second) {
    if (KeyEquals(arow, plan.a_key, *brow, plan.b_key)) return true;
  }
  return false;
}

}  // namespace

Result<Relation> NaturalJoin(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(a, b));
  // Zero-column sides are booleans: TRUE is the join identity, FALSE
  // annihilates. Returning the other operand outright shares its rows.
  if (a.arity() == 0) return a.AsBool() ? b : Relation(b.columns());
  if (b.arity() == 0) return b.AsBool() ? a : Relation(a.columns());

  std::vector<Column> out_cols = a.columns();
  for (std::size_t j : plan.b_rest) out_cols.push_back(b.columns()[j]);
  Relation out(std::move(out_cols));
  if (a.empty() || b.empty()) return out;

  if (plan.b_rest.empty() && FullRowKey(a, b, plan)) {
    // Same-schema join is an intersection; probe b's row set directly.
    for (const Tuple& arow : a.rows()) {
      if (b.Contains(arow)) out.InsertUnchecked(arow);
    }
    return out;
  }

  const Relation::Index& index = b.GetIndex(plan.b_key);
  for (const Tuple& arow : a.rows()) {
    auto it = index.buckets.find(HashTupleKey(arow, plan.a_key));
    if (it == index.buckets.end()) continue;
    for (const Tuple* brow : it->second) {
      if (!KeyEquals(arow, plan.a_key, *brow, plan.b_key)) continue;
      if (plan.b_rest.empty()) {
        // b adds no columns: the output row is arow itself (shared payload).
        out.InsertUnchecked(arow);
        break;
      }
      std::vector<Value> vals = arow.values();
      vals.reserve(vals.size() + plan.b_rest.size());
      for (std::size_t j : plan.b_rest) vals.push_back(brow->at(j));
      out.InsertUnchecked(Tuple(std::move(vals)));
    }
  }
  return out;
}

Result<Relation> AntiJoin(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(a, b));
  if (b.empty()) return a;
  Relation out(a.columns());
  if (a.empty()) return out;
  if (FullRowKey(a, b, plan)) {
    for (const Tuple& arow : a.rows()) {
      if (!b.Contains(arow)) out.InsertUnchecked(arow);
    }
    return out;
  }
  const Relation::Index& index = b.GetIndex(plan.b_key);
  for (const Tuple& arow : a.rows()) {
    if (!HasKeyMatch(arow, plan, index)) out.InsertUnchecked(arow);
  }
  return out;
}

Result<Relation> SemiJoin(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(JoinPlan plan, PlanJoin(a, b));
  Relation out(a.columns());
  if (a.empty() || b.empty()) return out;
  if (FullRowKey(a, b, plan)) {
    for (const Tuple& arow : a.rows()) {
      if (b.Contains(arow)) out.InsertUnchecked(arow);
    }
    return out;
  }
  const Relation::Index& index = b.GetIndex(plan.b_key);
  for (const Tuple& arow : a.rows()) {
    if (HasKeyMatch(arow, plan, index)) out.InsertUnchecked(arow);
  }
  return out;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::size_t> b_pos, AlignColumns(a, b));
  if (b.empty()) return a;
  bool identity = IsIdentity(b_pos);
  if (a.empty() && identity) return b;
  Relation out = a;  // shares a's rows until the first insert detaches
  for (const Tuple& row : b.rows()) {
    out.InsertUnchecked(identity ? row : Reorder(row, b_pos));
  }
  return out;
}

Result<Relation> Difference(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::size_t> b_pos, AlignColumns(a, b));
  if (b.empty()) return a;
  Relation out(a.columns());
  if (a.empty()) return out;
  if (IsIdentity(b_pos)) {
    for (const Tuple& row : a.rows()) {
      if (!b.Contains(row)) out.InsertUnchecked(row);
    }
    return out;
  }
  std::unordered_set<Tuple, TupleHash> b_rows;
  b_rows.reserve(b.size());
  for (const Tuple& row : b.rows()) b_rows.insert(Reorder(row, b_pos));
  for (const Tuple& row : a.rows()) {
    if (b_rows.find(row) == b_rows.end()) out.InsertUnchecked(row);
  }
  return out;
}

Result<Relation> Intersect(const Relation& a, const Relation& b) {
  RTIC_ASSIGN_OR_RETURN(std::vector<std::size_t> b_pos, AlignColumns(a, b));
  Relation out(a.columns());
  if (a.empty() || b.empty()) return out;
  if (IsIdentity(b_pos)) {
    for (const Tuple& row : a.rows()) {
      if (b.Contains(row)) out.InsertUnchecked(row);
    }
    return out;
  }
  std::unordered_set<Tuple, TupleHash> b_rows;
  b_rows.reserve(b.size());
  for (const Tuple& row : b.rows()) b_rows.insert(Reorder(row, b_pos));
  for (const Tuple& row : a.rows()) {
    if (b_rows.find(row) != b_rows.end()) out.InsertUnchecked(row);
  }
  return out;
}

Result<Relation> Project(const Relation& a,
                         const std::vector<std::string>& columns) {
  std::vector<std::size_t> positions;
  std::vector<Column> out_cols;
  positions.reserve(columns.size());
  for (const std::string& name : columns) {
    auto i = a.IndexOf(name);
    if (!i.has_value()) {
      return Status::InvalidArgument("project: no such column: " + name);
    }
    positions.push_back(*i);
    out_cols.push_back(a.columns()[*i]);
  }
  // Projecting onto all columns in order is the identity.
  if (positions.size() == a.arity() && IsIdentity(positions)) return a;
  RTIC_ASSIGN_OR_RETURN(Relation out, Relation::Make(std::move(out_cols)));
  for (const Tuple& row : a.rows()) {
    out.InsertUnchecked(Reorder(row, positions));
  }
  return out;
}

Result<Relation> Rename(const Relation& a,
                        const std::map<std::string, std::string>& mapping) {
  std::vector<Column> out_cols = a.columns();
  for (auto& col : out_cols) {
    auto it = mapping.find(col.name);
    if (it != mapping.end()) col.name = it->second;
  }
  RTIC_ASSIGN_OR_RETURN(Relation out, Relation::Make(std::move(out_cols)));
  // Per-position types are unchanged, so the row storage can be shared.
  return a.WithColumns(out.columns());
}

Relation Select(const Relation& a,
                const std::function<bool(const Tuple&)>& pred) {
  Relation out(a.columns());
  for (const Tuple& row : a.rows()) {
    if (pred(row)) out.InsertUnchecked(row);
  }
  return out;
}

Result<Relation> CrossProduct(const Relation& a, const Relation& b) {
  for (const Column& c : b.columns()) {
    if (a.IndexOf(c.name).has_value()) {
      return Status::InvalidArgument("cross product: shared column " + c.name);
    }
  }
  return NaturalJoin(a, b);  // no common columns => cross product
}

Relation FromValues(const std::string& name, ValueType type,
                    const std::vector<Value>& values) {
  Relation out({Column{name, type}});
  for (const Value& v : values) {
    out.InsertUnchecked(Tuple{v});
  }
  return out;
}

}  // namespace ra
}  // namespace rtic
